package roundtriprank

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/testgraphs"
)

func TestRequestValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// untyped wraps the toy graph so it no longer satisfies TypedView.
	untyped, err := NewEngine(struct{ View }{toy.Graph})
	if err != nil {
		t.Fatalf("NewEngine(untyped): %v", err)
	}
	valid := Request{Query: SingleNode(toy.T1), K: 3}

	cases := []struct {
		name    string
		engine  *Engine
		mutate  func(*Request)
		wantErr string
	}{
		{"valid", engine, func(r *Request) {}, ""},
		{"zero K", engine, func(r *Request) { r.K = 0 }, "K must be positive"},
		{"negative K", engine, func(r *Request) { r.K = -2 }, "K must be positive"},
		{"empty query", engine, func(r *Request) { r.Query = Query{} }, "invalid query"},
		{"negative weight", engine, func(r *Request) {
			r.Query = Query{Nodes: []NodeID{toy.T1}, Weights: []float64{-1}}
		}, "invalid query"},
		{"node out of range", engine, func(r *Request) { r.Query = SingleNode(9999) }, "out of range"},
		{"negative alpha", engine, func(r *Request) { r.Alpha = -0.1 }, "alpha"},
		{"alpha one", engine, func(r *Request) { r.Alpha = 1 }, "alpha"},
		{"beta below range", engine, func(r *Request) { r.Beta = Float64(-0.5) }, "beta"},
		{"beta above range", engine, func(r *Request) { r.Beta = Float64(1.5) }, "beta"},
		{"negative epsilon", engine, func(r *Request) { r.Epsilon = -0.01 }, "epsilon"},
		{"negative tolerance", engine, func(r *Request) { r.Tolerance = -1e-9 }, "tolerance"},
		{"type filter on untyped view", untyped, func(r *Request) {
			r.Filter = &Filter{Types: []NodeType{testgraphs.TypeVenue}}
		}, "typed graph view"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid
			tc.mutate(&req)
			_, err := tc.engine.Rank(context.Background(), req)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestAutoPlanning(t *testing.T) {
	toy := testgraphs.NewToy()
	req := Request{Query: SingleNode(toy.T1), K: 3}

	cases := []struct {
		name      string
		view      View
		opts      []Option
		wantExact bool
	}{
		{"small in-memory graph plans exact", toy.Graph, nil, true},
		{"zero exact limit plans online", toy.Graph, []Option{WithExactLimit(0)}, false},
		{"limit below graph size plans online", toy.Graph, []Option{WithExactLimit(toy.Graph.NumNodes() - 1)}, false},
		{"non-Graph view plans online", struct{ View }{toy.Graph}, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engine, err := NewEngine(tc.view, tc.opts...)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			resp, err := engine.Rank(context.Background(), req)
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			if resp.Method.IsExact() != tc.wantExact {
				t.Errorf("resolved method %s, want exact=%v", resp.Method, tc.wantExact)
			}
			if len(resp.Results) == 0 {
				t.Errorf("no results")
			}
		})
	}
}

// TestFilterParityToy checks the acceptance criterion on the toy bibliographic
// network: a type filter plus ε = 0 returns the same top-K from the exact and
// the online path, for several specificity biases.
func TestFilterParityToy(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	filter := &Filter{Types: []NodeType{testgraphs.TypeVenue}, ExcludeQuery: true}
	for _, beta := range []float64{0, 0.3, 0.5, 1} {
		req := Request{Query: SingleNode(toy.T1), K: 3, Filter: filter, Beta: Float64(beta)}

		req.Method = Exact
		exact, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("beta=%g exact: %v", beta, err)
		}
		req.Method = TwoSBound
		online, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("beta=%g online: %v", beta, err)
		}
		if len(exact.Results) != 3 || len(online.Results) != 3 {
			t.Fatalf("beta=%g: want 3 venues from both paths, got %d and %d",
				beta, len(exact.Results), len(online.Results))
		}
		for i := range exact.Results {
			if exact.Results[i].Node != online.Results[i].Node {
				t.Errorf("beta=%g rank %d: exact %d != online %d",
					beta, i, exact.Results[i].Node, online.Results[i].Node)
			}
		}
	}
}

// TestFilterParityBibNet runs the paper's "find authors for this paper"
// scenario on a synthetic bibliographic network: exact and 2SBound at ε = 0
// must select the same author set.
func TestFilterParityBibNet(t *testing.T) {
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(0.15))
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	engine, err := NewEngine(net.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	filter := &Filter{Types: []NodeType{datasets.TypeAuthor}, ExcludeQuery: true}
	for qi := 0; qi < 3; qi++ {
		paper := net.Papers[(qi*131)%len(net.Papers)]
		req := Request{Query: SingleNode(paper), K: 5, Filter: filter}

		req.Method = Exact
		exact, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("query %d exact: %v", qi, err)
		}
		req.Method = TwoSBound
		online, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("query %d online: %v", qi, err)
		}
		if len(exact.Results) != len(online.Results) {
			t.Fatalf("query %d: exact returned %d, online %d", qi, len(exact.Results), len(online.Results))
		}
		exactSet := make(map[NodeID]bool, len(exact.Results))
		for _, r := range exact.Results {
			exactSet[r.Node] = true
			if net.Graph.Type(r.Node) != datasets.TypeAuthor {
				t.Errorf("query %d: exact result %d is not an author", qi, r.Node)
			}
		}
		for _, r := range online.Results {
			if !exactSet[r.Node] {
				t.Errorf("query %d: online result %d not in exact top-K", qi, r.Node)
			}
		}
	}
}

// cancellingView wraps a View and cancels a context on the first edge
// traversal, counting traversals so the test can assert the solver stopped
// within one power iteration.
type cancellingView struct {
	View
	cancel context.CancelFunc
	calls  atomic.Int64
}

func (c *cancellingView) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	if c.calls.Add(1) == 1 {
		c.cancel()
	}
	c.View.EachOut(v, fn)
}

func TestCancellationAbortsExactSolve(t *testing.T) {
	// A long cycle keeps the power iteration busy for many iterations.
	g := testgraphs.Cycle(5000)
	ctx, cancel := context.WithCancel(context.Background())
	view := &cancellingView{View: g, cancel: cancel}
	engine, err := NewEngine(view)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = engine.Rank(ctx, Request{
		Query:     SingleNode(0),
		K:         10,
		Method:    Exact,
		Tolerance: 1e-15, // force many iterations if cancellation were ignored
	})
	if err != context.Canceled {
		t.Fatalf("Rank error = %v, want context.Canceled", err)
	}
	// The cancel fired during the first sweep; each solver may finish that
	// iteration but must stop at the next per-iteration check, i.e. after at
	// most one more full sweep over the graph. F-Rank and T-Rank run
	// concurrently, so the budget is two sweeps for each of the two solvers.
	if calls := view.calls.Load(); calls > int64(4*g.NumNodes()) {
		t.Errorf("solvers traversed %d adjacency lists after cancellation, want <= %d (one iteration each)",
			calls, 4*g.NumNodes())
	}

	// A pre-cancelled context aborts the online path before any expansion.
	_, err = engine.Rank(ctx, Request{Query: SingleNode(0), K: 10, Method: TwoSBound})
	if err != context.Canceled {
		t.Fatalf("online Rank error = %v, want context.Canceled", err)
	}
}

// TestRankBatchMatchesSingle verifies that the batch path (single-node score
// vectors combined by the Linearity Theorem) reproduces the one-shot exact
// path, and that online requests ride along unchanged.
func TestRankBatchMatchesSingle(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	filter := &Filter{Types: []NodeType{testgraphs.TypeVenue}}
	reqs := []Request{
		{Query: SingleNode(toy.T1), K: 3, Method: Exact, Filter: filter},
		{Query: MultiNode(toy.T1, toy.T2), K: 4, Method: Exact},
		{Query: SingleNode(toy.T1), K: 3, Method: Exact, Filter: filter, Beta: Float64(0.2)},
		{Query: SingleNode(toy.T2), K: 3, Method: TwoSBound, Epsilon: 0.001},
	}
	batch, err := engine.RankBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("RankBatch: %v", err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("RankBatch returned %d responses, want %d", len(batch), len(reqs))
	}
	for i, req := range reqs {
		single, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(single.Results) != len(batch[i].Results) {
			t.Fatalf("request %d: batch %d results, single %d", i, len(batch[i].Results), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j].Node != batch[i].Results[j].Node {
				t.Errorf("request %d rank %d: batch node %d != single node %d",
					i, j, batch[i].Results[j].Node, single.Results[j].Node)
			}
			if diff := single.Results[j].Score - batch[i].Results[j].Score; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("request %d rank %d: batch score %g != single score %g",
					i, j, batch[i].Results[j].Score, single.Results[j].Score)
			}
		}
	}

	// An invalid request anywhere in the batch fails the whole batch up-front.
	if _, err := engine.RankBatch(context.Background(), []Request{
		{Query: SingleNode(toy.T1), K: 3},
		{Query: SingleNode(toy.T1), K: 0},
	}); err == nil || !strings.Contains(err.Error(), "request 1") {
		t.Errorf("RankBatch with invalid request: error = %v, want request index", err)
	}
}

func TestPerRequestOverrides(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph) // defaults: alpha 0.25, beta 0.5
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// beta = 1 must reproduce an engine whose default bias is pure
	// specificity.
	specEngine, err := NewEngine(toy.Graph, WithBeta(1))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := Request{Query: SingleNode(toy.T1), K: 5, Method: Exact}
	want, err := specEngine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	req.Beta = Float64(1)
	got, err := engine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	for i := range want.Results {
		if want.Results[i] != got.Results[i] {
			t.Errorf("rank %d: override %+v != default-engine %+v", i, got.Results[i], want.Results[i])
		}
	}
	if engine.Beta() != 0.5 {
		t.Errorf("request override must not mutate engine defaults: beta = %g", engine.Beta())
	}
}

func TestMethodString(t *testing.T) {
	cases := map[string]Method{
		"auto":    Auto,
		"exact":   Exact,
		"2SBound": TwoSBound,
		"Gupta":   BoundScheme(SchemeGupta),
	}
	for want, m := range cases {
		if m.String() != want {
			t.Errorf("Method.String() = %q, want %q", m.String(), want)
		}
	}
	var zero Method
	if zero.String() != "auto" {
		t.Errorf("zero Method should be Auto, got %q", zero.String())
	}
}
