// Command gpserver runs one stripe worker of a distributed RoundTripRank
// deployment. It serves the coordinator/worker wire protocol over HTTP (see
// docs/API.md): stateless per-iteration multiply RPCs plus topology metadata,
// which an Engine configured with WithWorkers fans exact solves out to.
//
// The worker gets its stripe in one of three ways:
//
//   - extracted from a graph it loads itself (-graph or -dataset with
//     -stripe/-of),
//   - loaded from a stripe file in the binary codec format (-stripe-file),
//   - received over the network: started with no stripe flags, it waits for
//     a coordinator (or operator) to POST one to /v1/stripe — see
//     roundtriprank.DeployStripes.
//
// With -register, the worker additionally joins a self-organizing fleet: it
// registers with the coordinator daemon (rtrankd -fleet-stripes) under a
// stable identity and heartbeats every -heartbeat-interval; the coordinator
// places replicated stripes on the live members and ships them over the
// normal /v1/stripe endpoint, so a registered worker usually starts empty. A
// worker that misses heartbeats is suspected, then evicted and its stripes
// re-placed; when it comes back, it re-registers automatically and unchanged
// retained stripes are revalidated by content fingerprint instead of
// re-shipped (see docs/OPERATIONS.md).
//
// Workers serve immutable stripe snapshots. When the source graph commits a
// new epoch, the coordinator side (roundtriprank.RedeployStripes, or an
// rtrankd front end applying POST /v1/edges) reconciles the fleet: stripes
// whose rows the commit changed are re-shipped to /v1/stripe, unchanged ones
// are rebound to the new epoch via the cheap POST /v1/stripe/retag endpoint.
// GET /healthz and /v1/info report the served epoch and fingerprints, so an
// operator can watch a rollover land (see docs/OPERATIONS.md).
//
// Example (3-worker deployment of a synthetic BibNet, each worker extracting
// its own stripe):
//
//	gpserver -dataset bibnet -scale 1.0 -stripe 0 -of 3 -listen :7001 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 1 -of 3 -listen :7002 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 2 -of 3 -listen :7003 &
//
// Requests are served with read/write timeouts, and SIGINT/SIGTERM trigger a
// graceful drain before exit. GET /metrics serves the worker's Prometheus
// exposition (request counts and latency by route, stripe/epoch gauges); an
// optional -max-inflight gate sheds excess load with 429 + Retry-After. The
// -legacy-gob flag additionally serves the AP/GP adjacency protocol over TCP
// for the online-search path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/fleet"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/obs"
)

// workerRoutes are the wire-protocol paths the middleware may label; other
// paths collapse into path="other".
var workerRoutes = []string{
	"/healthz", "/metrics", "/v1/info", "/v1/outsums", "/v1/outdegs",
	"/v1/multiply", "/v1/rows", "/v1/stripe", "/v1/stripe/retag",
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to a gob-encoded graph to extract the stripe from (exclusive with -dataset and -stripe-file)")
		dataset    = flag.String("dataset", "", "synthetic dataset to generate and stripe: bibnet or qlog")
		scale      = flag.Float64("scale", 1.0, "scale factor for synthetic datasets")
		stripeFile = flag.String("stripe-file", "", "path to a binary stripe file (graph.EncodeStripe format)")
		stripe     = flag.Int("stripe", 0, "stripe index served by this worker (with -graph/-dataset)")
		of         = flag.Int("of", 1, "total number of workers in the deployment (with -graph/-dataset)")
		listen     = flag.String("listen", "127.0.0.1:7001", "HTTP listen address")
		legacyGob  = flag.String("legacy-gob", "", "optional TCP listen address for the legacy AP/GP gob adjacency protocol")
		writeTmo   = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest multiply)")
		readTmo    = flag.Duration("read-timeout", time.Minute, "HTTP request read timeout (must cover a stripe upload)")
		maxInflt   = flag.Int("max-inflight", 0, "admitted concurrent requests before shedding with 429 (0, the default, disables the gate: a worker's load is its coordinator's concurrency)")
		register   = flag.String("register", "", "coordinator base URL to register with and heartbeat (enables fleet membership; see docs/OPERATIONS.md)")
		advertise  = flag.String("advertise", "", "wire-protocol base URL advertised to the coordinator (default: derived from the bound listen address — set it when the worker is behind NAT or a proxy)")
		workerID   = flag.String("worker-id", "", "stable member identity used with -register (default: the advertised host:port)")
		beatEvery  = flag.Duration("heartbeat-interval", time.Second, "heartbeat period of the -register loop; the coordinator's miss thresholds are counted in its own tick units, so keep this shorter than the coordinator's -fleet-tick")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	s, err := loadStripe(*graphPath, *dataset, *scale, *stripeFile, *stripe, *of)
	if err != nil {
		log.Fatal(err)
	}
	worker := distributed.NewWorker(s)
	if s != nil {
		log.Printf("worker serving stripe %d/%d (%d of %d nodes, %.1f MB)",
			s.Index, s.Count, s.OwnedNodes(), s.NumNodes, float64(s.SizeBytes())/(1<<20))
	} else {
		log.Printf("worker starting empty; POST a stripe to /v1/stripe to begin serving")
	}

	if *legacyGob != "" {
		if s == nil {
			log.Fatal("-legacy-gob needs a stripe at startup (the gob protocol has no install endpoint)")
		}
		gp, err := distributed.ServeGP(*legacyGob, s)
		if err != nil {
			log.Fatal(err)
		}
		defer gp.Close()
		log.Printf("legacy AP/GP adjacency protocol on %s", gp.Addr())
	}

	reg := obs.NewRegistry("gpserver")
	registerWorkerGauges(reg, worker)
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", worker.Handler())
	handler := cliutil.WrapHTTP(mux, reg, cliutil.HTTPOptions{
		Routes:      workerRoutes,
		Exempt:      []string{"/healthz", "/metrics"},
		MaxInFlight: *maxInflt,
	})

	cfg := cliutil.HTTPServerConfig{ReadTimeout: *readTmo, WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, handler, cfg, func(a net.Addr) {
		log.Printf("worker wire protocol on %s", a)
		if *register == "" {
			return
		}
		addr := *advertise
		if addr == "" {
			addr = "http://" + a.String()
		}
		id := *workerID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(addr, "https://"), "http://")
		}
		reg := &fleet.Registrar{
			Coordinator: *register,
			ID:          id,
			Addr:        addr,
			Interval:    *beatEvery,
			OnError:     func(err error) { log.Printf("fleet membership: %v", err) },
		}
		log.Printf("registering with %s as %q (advertising %s, heartbeat every %s)",
			*register, id, addr, *beatEvery)
		go reg.Run(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

// registerWorkerGauges exposes the served stripes' identity on /metrics:
// epoch (the lag signal an rtrankd front end alerts on), stripe index/count
// and row/edge sizes. All read the worker's stripe set at scrape time, so a
// stripe swap or retag shows up on the next scrape; an empty worker reports
// zeros. A replicated fleet member holds several stripes at once, so the
// size gauges sum over the held set, the epoch gauge reports the laggard
// (minimum) epoch, and stripe_index degrades to -1 when more than one stripe
// is held (the per-stripe identities are on /v1/info?stripe=N).
func registerWorkerGauges(reg *obs.Registry, worker *distributed.Worker) {
	sum := func(f func(distributed.WorkerInfo) float64) func() float64 {
		return func() float64 {
			var total float64
			for _, s := range worker.Stripes() {
				wi, err := worker.InfoAt(s.Index)
				if err != nil {
					continue
				}
				total += f(wi)
			}
			return total
		}
	}
	reg.Gauge("stripe_epoch", "Minimum epoch across the served stripes (0 when empty).", "",
		func() float64 {
			stripes := worker.Stripes()
			if len(stripes) == 0 {
				return 0
			}
			min := stripes[0].Epoch()
			for _, s := range stripes[1:] {
				if e := s.Epoch(); e < min {
					min = e
				}
			}
			return float64(min)
		})
	reg.Gauge("stripe_index", "Index of the served stripe (-1 when several stripes are held).", "",
		func() float64 {
			stripes := worker.Stripes()
			switch len(stripes) {
			case 0:
				return 0
			case 1:
				return float64(stripes[0].Index)
			default:
				return -1
			}
		})
	reg.Gauge("stripe_count", "Total stripes in the deployment the served stripes belong to.", "",
		func() float64 {
			stripes := worker.Stripes()
			if len(stripes) == 0 {
				return 0
			}
			return float64(stripes[0].Count)
		})
	reg.Gauge("stripes_held", "Number of stripes this worker currently serves.", "",
		func() float64 { return float64(len(worker.Stripes())) })
	reg.Gauge("stripe_rows", "Rows owned across the served stripes.", "",
		sum(func(wi distributed.WorkerInfo) float64 { return float64(wi.Rows) }))
	reg.Gauge("stripe_out_edges", "Out-edges stored across the served stripes.", "",
		sum(func(wi distributed.WorkerInfo) float64 { return float64(wi.OutEdges) }))
}

// loadStripe resolves the stripe-source flags; it returns nil when the worker
// should start empty and wait to receive a stripe.
func loadStripe(graphPath, dataset string, scale float64, stripeFile string, stripe, of int) (*distributed.Stripe, error) {
	fromGraph := graphPath != "" || dataset != ""
	if fromGraph && stripeFile != "" {
		return nil, fmt.Errorf("use either -stripe-file or -graph/-dataset, not both")
	}
	switch {
	case stripeFile != "":
		d, err := graph.ReadStripeFile(stripeFile)
		if err != nil {
			return nil, err
		}
		return distributed.StripeFromData(d)
	case fromGraph:
		g, err := cliutil.LoadGraph(graphPath, dataset, scale)
		if err != nil {
			return nil, err
		}
		return distributed.BuildStripe(g, stripe, of)
	default:
		return nil, nil
	}
}
