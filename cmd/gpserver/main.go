// Command gpserver runs one stripe worker of a distributed RoundTripRank
// deployment. It serves the coordinator/worker wire protocol over HTTP (see
// docs/API.md): stateless per-iteration multiply RPCs plus topology metadata,
// which an Engine configured with WithWorkers fans exact solves out to.
//
// The worker gets its stripe in one of three ways:
//
//   - extracted from a graph it loads itself (-graph or -dataset with
//     -stripe/-of),
//   - loaded from a stripe file in the binary codec format (-stripe-file),
//   - received over the network: started with no stripe flags, it waits for
//     a coordinator (or operator) to POST one to /v1/stripe — see
//     roundtriprank.DeployStripes.
//
// Workers serve immutable stripe snapshots. When the source graph commits a
// new epoch, the coordinator side (roundtriprank.RedeployStripes, or an
// rtrankd front end applying POST /v1/edges) reconciles the fleet: stripes
// whose rows the commit changed are re-shipped to /v1/stripe, unchanged ones
// are rebound to the new epoch via the cheap POST /v1/stripe/retag endpoint.
// GET /healthz and /v1/info report the served epoch and fingerprints, so an
// operator can watch a rollover land (see docs/OPERATIONS.md).
//
// Example (3-worker deployment of a synthetic BibNet, each worker extracting
// its own stripe):
//
//	gpserver -dataset bibnet -scale 1.0 -stripe 0 -of 3 -listen :7001 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 1 -of 3 -listen :7002 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 2 -of 3 -listen :7003 &
//
// Requests are served with read/write timeouts, and SIGINT/SIGTERM trigger a
// graceful drain before exit. GET /metrics serves the worker's Prometheus
// exposition (request counts and latency by route, stripe/epoch gauges); an
// optional -max-inflight gate sheds excess load with 429 + Retry-After. The
// -legacy-gob flag additionally serves the AP/GP adjacency protocol over TCP
// for the online-search path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/obs"
)

// workerRoutes are the wire-protocol paths the middleware may label; other
// paths collapse into path="other".
var workerRoutes = []string{
	"/healthz", "/metrics", "/v1/info", "/v1/outsums", "/v1/outdegs",
	"/v1/multiply", "/v1/rows", "/v1/stripe", "/v1/stripe/retag",
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to a gob-encoded graph to extract the stripe from (exclusive with -dataset and -stripe-file)")
		dataset    = flag.String("dataset", "", "synthetic dataset to generate and stripe: bibnet or qlog")
		scale      = flag.Float64("scale", 1.0, "scale factor for synthetic datasets")
		stripeFile = flag.String("stripe-file", "", "path to a binary stripe file (graph.EncodeStripe format)")
		stripe     = flag.Int("stripe", 0, "stripe index served by this worker (with -graph/-dataset)")
		of         = flag.Int("of", 1, "total number of workers in the deployment (with -graph/-dataset)")
		listen     = flag.String("listen", "127.0.0.1:7001", "HTTP listen address")
		legacyGob  = flag.String("legacy-gob", "", "optional TCP listen address for the legacy AP/GP gob adjacency protocol")
		writeTmo   = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest multiply)")
		readTmo    = flag.Duration("read-timeout", time.Minute, "HTTP request read timeout (must cover a stripe upload)")
		maxInflt   = flag.Int("max-inflight", 0, "admitted concurrent requests before shedding with 429 (0, the default, disables the gate: a worker's load is its coordinator's concurrency)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	s, err := loadStripe(*graphPath, *dataset, *scale, *stripeFile, *stripe, *of)
	if err != nil {
		log.Fatal(err)
	}
	worker := distributed.NewWorker(s)
	if s != nil {
		log.Printf("worker serving stripe %d/%d (%d of %d nodes, %.1f MB)",
			s.Index, s.Count, s.OwnedNodes(), s.NumNodes, float64(s.SizeBytes())/(1<<20))
	} else {
		log.Printf("worker starting empty; POST a stripe to /v1/stripe to begin serving")
	}

	if *legacyGob != "" {
		if s == nil {
			log.Fatal("-legacy-gob needs a stripe at startup (the gob protocol has no install endpoint)")
		}
		gp, err := distributed.ServeGP(*legacyGob, s)
		if err != nil {
			log.Fatal(err)
		}
		defer gp.Close()
		log.Printf("legacy AP/GP adjacency protocol on %s", gp.Addr())
	}

	reg := obs.NewRegistry("gpserver")
	registerWorkerGauges(reg, worker)
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", worker.Handler())
	handler := cliutil.WrapHTTP(mux, reg, cliutil.HTTPOptions{
		Routes:      workerRoutes,
		Exempt:      []string{"/healthz", "/metrics"},
		MaxInFlight: *maxInflt,
	})

	cfg := cliutil.HTTPServerConfig{ReadTimeout: *readTmo, WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, handler, cfg, func(a net.Addr) {
		log.Printf("worker wire protocol on %s", a)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

// registerWorkerGauges exposes the served stripe's identity on /metrics:
// epoch (the lag signal an rtrankd front end alerts on), stripe index/count
// and row/edge sizes. All read Worker.Info at scrape time, so a stripe
// swap or retag shows up on the next scrape; an empty worker reports zeros.
func registerWorkerGauges(reg *obs.Registry, worker *distributed.Worker) {
	info := func(f func(distributed.WorkerInfo) float64) func() float64 {
		return func() float64 {
			wi, err := worker.Info()
			if err != nil {
				return 0
			}
			return f(wi)
		}
	}
	reg.Gauge("stripe_epoch", "Epoch of the served stripe (0 when empty).", "",
		info(func(wi distributed.WorkerInfo) float64 { return float64(wi.Epoch) }))
	reg.Gauge("stripe_index", "Index of the served stripe within its deployment.", "",
		info(func(wi distributed.WorkerInfo) float64 { return float64(wi.Index) }))
	reg.Gauge("stripe_count", "Total stripes in the deployment the served stripe belongs to.", "",
		info(func(wi distributed.WorkerInfo) float64 { return float64(wi.Count) }))
	reg.Gauge("stripe_rows", "Rows owned by the served stripe.", "",
		info(func(wi distributed.WorkerInfo) float64 { return float64(wi.Rows) }))
	reg.Gauge("stripe_out_edges", "Out-edges stored by the served stripe.", "",
		info(func(wi distributed.WorkerInfo) float64 { return float64(wi.OutEdges) }))
}

// loadStripe resolves the stripe-source flags; it returns nil when the worker
// should start empty and wait to receive a stripe.
func loadStripe(graphPath, dataset string, scale float64, stripeFile string, stripe, of int) (*distributed.Stripe, error) {
	fromGraph := graphPath != "" || dataset != ""
	if fromGraph && stripeFile != "" {
		return nil, fmt.Errorf("use either -stripe-file or -graph/-dataset, not both")
	}
	switch {
	case stripeFile != "":
		d, err := graph.ReadStripeFile(stripeFile)
		if err != nil {
			return nil, err
		}
		return distributed.StripeFromData(d)
	case fromGraph:
		g, err := cliutil.LoadGraph(graphPath, dataset, scale)
		if err != nil {
			return nil, err
		}
		return distributed.BuildStripe(g, stripe, of)
	default:
		return nil, nil
	}
}
