// Command gpserver runs a Graph Processor (Sect. V-B2): it loads a graph,
// extracts one round-robin stripe of its nodes and edges, and serves adjacency
// requests over TCP for an Active Processor to assemble active sets from.
//
// Example (3-GP deployment of a synthetic BibNet):
//
//	gpserver -dataset bibnet -scale 1.0 -stripe 0 -of 3 -listen :7001 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 1 -of 3 -listen :7002 &
//	gpserver -dataset bibnet -scale 1.0 -stripe 2 -of 3 -listen :7003 &
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale     = flag.Float64("scale", 1.0, "scale factor for synthetic datasets")
		stripe    = flag.Int("stripe", 0, "stripe index served by this GP")
		of        = flag.Int("of", 1, "total number of GPs in the deployment")
		listen    = flag.String("listen", "127.0.0.1:7001", "listen address")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.ReadFile(*graphPath)
	case *dataset == "bibnet":
		var net *datasets.BibNet
		net, err = datasets.GenerateBibNet(datasets.ScaledBibNetConfig(*scale))
		if err == nil {
			g = net.Graph
		}
	case *dataset == "qlog":
		var qlog *datasets.QLog
		qlog, err = datasets.GenerateQLog(datasets.ScaledQLogConfig(*scale))
		if err == nil {
			g = qlog.Graph
		}
	default:
		err = fmt.Errorf("provide either -graph or -dataset bibnet|qlog")
	}
	if err != nil {
		log.Fatal(err)
	}

	s, err := distributed.BuildStripe(g, *stripe, *of)
	if err != nil {
		log.Fatal(err)
	}
	gp, err := distributed.ServeGP(*listen, s)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph processor serving stripe %d/%d (%.1f MB) on %s — %d nodes total",
		*stripe, *of, float64(s.SizeBytes())/(1<<20), gp.Addr(), g.NumNodes())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := gp.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
