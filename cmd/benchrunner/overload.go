package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/serve"
)

// overloadPassResult is one pass of the overload scenario: the same client
// swarm against one serving stack, gated or not.
type overloadPassResult struct {
	Pass        string `json:"pass"` // "unlimited" or "limited"
	MaxInFlight int    `json:"max_in_flight"`
	Clients     int    `json:"clients"`
	Requests    int    `json:"requests"`
	Admitted    int    `json:"admitted"`
	Shed        int    `json:"shed"`
	// ShedRate is shed/requests: the fraction of offered load the gate
	// rejected with 429 + Retry-After.
	ShedRate float64 `json:"shed_rate"`
	// QPS counts admitted (200) responses only.
	QPS float64 `json:"admitted_qps"`
	// P50Us/P99Us are latency quantiles of admitted responses: the number
	// the gate exists to keep bounded while load exceeds capacity.
	P50Us int64 `json:"admitted_p50_us"`
	P99Us int64 `json:"admitted_p99_us"`
}

// overloadReport is the schema of BENCH_PR7.json.
type overloadReport struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Dataset     string               `json:"dataset"`
	Scale       float64              `json:"scale"`
	Nodes       int                  `json:"nodes"`
	Edges       int                  `json:"edges"`
	K           int                  `json:"k"`
	Passes      []overloadPassResult `json:"passes"`
	// P99LimitedOverUnlimited compares the admitted tail under the gate to
	// the ungated tail at the same offered load; under saturation the gated
	// stack should hold a lower (bounded) admitted p99.
	P99LimitedOverUnlimited float64 `json:"admitted_p99_limited_over_unlimited"`
	// MetricsSamples are the shed-relevant lines scraped from the gated
	// stack's own /metrics after the pass, proving the exposition carries
	// the counters the docs promise.
	MetricsSamples []string `json:"metrics_samples"`
}

// overload drives the production serving stack past its admission limit and
// records how it degrades: shed rate and admitted-tail latency with the gate
// on, versus queueing with the gate off, at the same offered load.
func (r *runner) overload(outPath string, scale float64, limit int) error {
	if limit < 1 {
		return fmt.Errorf("-overload-inflight must be at least 1, got %d", limit)
	}
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
	if err != nil {
		return err
	}
	g := net.Graph
	clients := 8 * runtime.GOMAXPROCS(0)
	if clients < 16 {
		clients = 16
	}
	perClient := r.effQueries
	if perClient < 3 {
		perClient = 3
	}
	const k = 50
	fmt.Printf("Overload BibNet: %d nodes, %d edges, %d clients x %d requests, gate limit %d\n",
		g.NumNodes(), g.NumEdges(), clients, perClient, limit)

	// Every request ranks a distinct query node, so no cross-query state
	// amortizes the work: each admitted request costs a full online search.
	queries := make([]graph.NodeID, 0, clients*perClient)
	for i := 0; i < clients*perClient; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}

	report := overloadReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "bibnet",
		Scale:       scale,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		K:           k,
	}

	for _, pass := range []struct {
		name  string
		limit int
	}{{"unlimited", 0}, {"limited", limit}} {
		res, samples, err := r.overloadPass(g, queries, pass.name, pass.limit, clients, perClient, k)
		if err != nil {
			return err
		}
		report.Passes = append(report.Passes, res)
		if pass.limit > 0 {
			report.MetricsSamples = samples
		}
		fmt.Printf("  %-10s %5d requests  %5d admitted  %5d shed (%.1f%%)  %8.1f q/s  p50 %7d µs  p99 %7d µs\n",
			res.Pass, res.Requests, res.Admitted, res.Shed, 100*res.ShedRate, res.QPS, res.P50Us, res.P99Us)
	}

	limited := report.Passes[1]
	if limited.Shed == 0 {
		return fmt.Errorf("gated pass shed nothing: %d clients never exceeded limit %d", clients, limit)
	}
	if unlimitedP99 := report.Passes[0].P99Us; unlimitedP99 > 0 {
		report.P99LimitedOverUnlimited = float64(limited.P99Us) / float64(unlimitedP99)
	}
	fmt.Printf("  admitted p99 limited/unlimited: %.2fx\n", report.P99LimitedOverUnlimited)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// overloadPass boots one full serving stack (engine + serve handlers +
// middleware) and fires the client swarm at POST /rank. Every 429 must carry
// Retry-After; every other response must be 200. Returns the pass result
// and, for gated passes, the shed-related /metrics lines.
func (r *runner) overloadPass(g *graph.Graph, queries []graph.NodeID, name string, limit, clients, perClient, k int) (overloadPassResult, []string, error) {
	res := overloadPassResult{Pass: name, MaxInFlight: limit, Clients: clients}

	metrics := serve.NewMetrics()
	engine, err := roundtriprank.NewEngine(g, roundtriprank.WithQueryStatsHook(metrics.RecordQuery))
	if err != nil {
		return res, nil, err
	}
	s := serve.New(engine, metrics, serve.Config{})
	srv := httptest.NewServer(cliutil.WrapHTTP(s.Handler(), metrics.Registry(), cliutil.HTTPOptions{
		Routes:      serve.Routes(),
		Exempt:      serve.ExemptRoutes(),
		MaxInFlight: limit,
	}))
	defer srv.Close()
	// The swarm needs one connection per concurrent client or the transport
	// itself becomes the bottleneck.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		// "epsilon": 0 demands the exact top-K guarantee, so every query
		// does enough refinement work to actually contend for the server —
		// a swarm of sub-millisecond requests would drain faster than it
		// can pile up against the admission gate.
		bodies[i] = []byte(fmt.Sprintf(`{"nodes":[%d],"k":%d,"method":"2sbound","epsilon":0}`, q, k))
	}

	type clientTally struct {
		lats []time.Duration
		shed int
		err  error
	}
	tallies := make([]clientTally, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := 0; i < perClient; i++ {
				body := bodies[(c*perClient+i)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(srv.URL+"/rank", "application/json", bytes.NewReader(body))
				if err != nil {
					t.err = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					t.lats = append(t.lats, time.Since(t0))
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.err = fmt.Errorf("429 response without Retry-After")
						return
					}
					t.shed++
				default:
					t.err = fmt.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	for c := range tallies {
		if tallies[c].err != nil {
			return res, nil, fmt.Errorf("%s pass, client %d: %w", name, c, tallies[c].err)
		}
		lats = append(lats, tallies[c].lats...)
		res.Shed += tallies[c].shed
	}
	res.Requests = clients * perClient
	res.Admitted = len(lats)
	res.ShedRate = float64(res.Shed) / float64(res.Requests)
	res.QPS = float64(res.Admitted) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50Us = lats[len(lats)/2].Microseconds()
		res.P99Us = lats[len(lats)*99/100].Microseconds()
	}

	var samples []string
	if limit > 0 {
		resp, err := client.Get(srv.URL + "/metrics")
		if err != nil {
			return res, nil, fmt.Errorf("scrape /metrics: %w", err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return res, nil, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, "rtrank_http_requests_shed_total") ||
				strings.HasPrefix(line, `rtrank_http_requests_total{path="/rank"`) ||
				strings.HasPrefix(line, `rtrank_engine_query_latency_seconds{method="2sbound"`) {
				samples = append(samples, line)
			}
		}
		want := fmt.Sprintf("rtrank_http_requests_shed_total %d", res.Shed)
		if !strings.Contains(string(raw), want) {
			return res, nil, fmt.Errorf("/metrics shed counter disagrees with the client tally: want %q", want)
		}
	}
	return res, samples, nil
}
