package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"roundtriprank"
	"roundtriprank/internal/chaos"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/fleet"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// chaosPassResult is one query sweep through the fleet under one fault
// condition, with the failovers it cost.
type chaosPassResult struct {
	Pass    string  `json:"pass"` // "healthy", "one-dead", "post-recovery"
	Queries int     `json:"queries"`
	QPS     float64 `json:"queries_per_sec"`
	P50Us   int64   `json:"p50_us"`
	P99Us   int64   `json:"p99_us"`
	// Failovers is how many calls of this pass succeeded only by routing
	// around a failed replica.
	Failovers int64 `json:"failovers"`
}

// chaosRecoveryResult traces the incident arc from kill to steady state.
type chaosRecoveryResult struct {
	// FirstQueryAfterKillUs is the latency of the first query issued the
	// instant after the kill — the failover detection + retry cost a live
	// query pays before any membership machinery has noticed.
	FirstQueryAfterKillUs int64 `json:"first_query_after_kill_us"`
	// FailoversOnKill is how many replica groups that first query had to route
	// around the corpse for; afterwards the survivors are promoted to
	// preferred and later queries pay nothing (see the one-dead pass).
	FailoversOnKill int64 `json:"failovers_on_kill"`
	// TicksToSuspect / TicksToDead are the liveness bound actually observed.
	TicksToSuspect int `json:"ticks_to_suspect"`
	TicksToDead    int `json:"ticks_to_dead"`
	// ReconcileUs is the recovery reconcile's wall time; StripesShipped what
	// it had to move (== the dead member's placements).
	ReconcileUs         int64 `json:"reconcile_us"`
	StripesShipped      int   `json:"stripes_shipped"`
	StripesHeldByVictim int   `json:"stripes_held_by_victim"`
	// RejoinShipped must be zero: the restarted member's retained payload
	// fingerprint-matches. RejoinRemoved counts the covering copies dropped.
	RejoinShipped     int   `json:"rejoin_shipped"`
	RejoinRemoved     int   `json:"rejoin_removed"`
	RejoinReconcileUs int64 `json:"rejoin_reconcile_us"`
}

// chaosChurnResult is a query sweep with a kill and a restart landing in the
// middle of it.
type chaosChurnResult struct {
	Queries   int     `json:"queries"`
	QPS       float64 `json:"queries_per_sec"`
	P50Us     int64   `json:"p50_us"`
	P99Us     int64   `json:"p99_us"`
	Errors    int     `json:"errors"`
	Failovers int64   `json:"failovers"`
}

// chaosReport is the schema of BENCH_PR8.json.
type chaosReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Dataset     string  `json:"dataset"`
	Scale       float64 `json:"scale"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Workers     int     `json:"workers"`
	Replication int     `json:"replication"`
	K           int     `json:"k"`

	Passes   []chaosPassResult   `json:"passes"`
	Recovery chaosRecoveryResult `json:"recovery"`
	Churn    chaosChurnResult    `json:"churn"`
	// FailoverP50Overhead is the one-dead p50 over the healthy p50: what
	// serving through the replicas of a dead member costs per query.
	FailoverP50Overhead float64 `json:"one_dead_p50_over_healthy"`
}

// chaosFig measures the fleet's behavior under worker churn: query throughput
// and tail latency healthy vs with a member dead vs after recovery, the
// tick-bounded detection and delta-proportional recovery reconcile, the free
// fingerprint-validated rejoin, and a sweep with a kill and restart landing
// mid-stream. Every response under fault is checked bit-identical to the
// in-process exact solver before any number is reported; queries go through
// the Distributed method, whose per-round fan-out touches every stripe, so a
// dead member cannot hide behind a cache.
func (r *runner) chaosFig(outPath string, scale float64) error {
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
	if err != nil {
		return err
	}
	g := net.Graph
	const nWorkers, replication, k = 3, 2, 10

	m, err := roundtriprank.NewFleet(roundtriprank.FleetOptions{
		Stripes: nWorkers, Replication: replication,
		Table: fleet.Options{SuspectMisses: 1, DeadMisses: 2},
	})
	if err != nil {
		return err
	}
	ids := make([]string, nWorkers)
	workers := make([]*chaos.HTTPWorker, nWorkers)
	for i := range workers {
		hw, err := chaos.StartHTTPWorker(distributed.NewWorker(nil))
		if err != nil {
			return err
		}
		defer hw.Close()
		workers[i] = hw
		ids[i] = fmt.Sprintf("w%d", i)
		m.Table().Register(ids[i], hw.URL())
	}
	if _, err := m.Reconcile(r.ctx, g); err != nil {
		return err
	}
	engine, err := roundtriprank.NewEngine(g, roundtriprank.WithFleet(m))
	if err != nil {
		return err
	}
	fmt.Printf("Chaos benchmark BibNet: %d nodes, %d edges, %d workers, R=%d\n",
		g.NumNodes(), g.NumEdges(), nWorkers, replication)

	queries := make([]graph.NodeID, 0, r.effQueries)
	for i := 0; i < r.effQueries; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}
	rankOne := func(q graph.NodeID, method roundtriprank.Method) (*roundtriprank.Response, error) {
		return engine.Rank(r.ctx, roundtriprank.Request{
			Query: walk.SingleNode(q), K: k, Method: method,
		})
	}
	// The exact in-process answers every fault pass is checked against.
	want := make([]*roundtriprank.Response, len(queries))
	for i, q := range queries {
		if want[i], err = rankOne(q, roundtriprank.Exact); err != nil {
			return err
		}
	}
	verify := func(pass string, i int, got *roundtriprank.Response) error {
		if len(got.Results) != len(want[i].Results) {
			return fmt.Errorf("%s pass, query %d: %d results, exact has %d", pass, i, len(got.Results), len(want[i].Results))
		}
		for j := range want[i].Results {
			if got.Results[j] != want[i].Results[j] {
				return fmt.Errorf("%s pass, query %d rank %d: %+v, exact %+v (not bit-identical)",
					pass, i, j, got.Results[j], want[i].Results[j])
			}
		}
		return nil
	}
	percentile := func(lats []time.Duration, p float64) int64 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		idx := int(p * float64(len(lats)-1))
		return lats[idx].Microseconds()
	}
	runPass := func(name string) (chaosPassResult, error) {
		res := chaosPassResult{Pass: name, Queries: len(queries)}
		before := engine.ClusterHealth().Failovers
		lats := make([]time.Duration, 0, len(queries))
		start := time.Now()
		for i, q := range queries {
			t0 := time.Now()
			resp, err := rankOne(q, roundtriprank.Distributed)
			if err != nil {
				return res, fmt.Errorf("%s pass, query %d: %w", name, i, err)
			}
			lats = append(lats, time.Since(t0))
			if err := verify(name, i, resp); err != nil {
				return res, err
			}
		}
		res.QPS = float64(len(queries)) / time.Since(start).Seconds()
		res.P50Us, res.P99Us = percentile(lats, 0.5), percentile(lats, 0.99)
		res.Failovers = engine.ClusterHealth().Failovers - before
		return res, nil
	}

	report := chaosReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "bibnet",
		Scale:       scale,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Workers:     nWorkers,
		Replication: replication,
		K:           k,
	}

	healthy, err := runPass("healthy")
	if err != nil {
		return err
	}

	// Kill stripe 0's preferred replica (rendezvous placement is a pure
	// function of the member set, so it is computable up front) and time the
	// first query through the fresh corpse — the failover cost a live query
	// actually pays.
	victim := fleet.Place(nWorkers, replication, ids)[0][0]
	victimIdx := -1
	heldByVictim := 0
	for i, id := range ids {
		if id == victim {
			victimIdx = i
		}
	}
	for _, group := range m.Placement() {
		for _, id := range group {
			if id == victim {
				heldByVictim++
			}
		}
	}
	workers[victimIdx].Kill()
	failoversBefore := engine.ClusterHealth().Failovers
	t0 := time.Now()
	resp, err := rankOne(queries[0], roundtriprank.Distributed)
	if err != nil {
		return fmt.Errorf("first query after kill: %w", err)
	}
	report.Recovery.FirstQueryAfterKillUs = time.Since(t0).Microseconds()
	report.Recovery.FailoversOnKill = engine.ClusterHealth().Failovers - failoversBefore
	if err := verify("first-after-kill", 0, resp); err != nil {
		return err
	}
	oneDead, err := runPass("one-dead")
	if err != nil {
		return err
	}

	// Tick-driven detection, then the recovery reconcile: survivors absorb
	// exactly the dead member's placements.
	for tick := 1; ; tick++ {
		for _, id := range ids {
			if id != victim {
				m.Table().Heartbeat(id)
			}
		}
		m.Table().Tick()
		mem, ok := m.Table().Lookup(victim)
		if !ok {
			return fmt.Errorf("victim %s vanished from the table", victim)
		}
		if mem.State == fleet.StateSuspect && report.Recovery.TicksToSuspect == 0 {
			report.Recovery.TicksToSuspect = tick
		}
		if mem.State == fleet.StateDead {
			report.Recovery.TicksToDead = tick
			break
		}
		if tick > 100 {
			return fmt.Errorf("victim %s never reached dead (state %v)", victim, mem.State)
		}
	}
	t0 = time.Now()
	st, err := m.Reconcile(r.ctx, g)
	if err != nil {
		return fmt.Errorf("recovery reconcile: %w", err)
	}
	report.Recovery.ReconcileUs = time.Since(t0).Microseconds()
	report.Recovery.StripesShipped = st.Shipped
	report.Recovery.StripesHeldByVictim = heldByVictim
	postRecovery, err := runPass("post-recovery")
	if err != nil {
		return err
	}

	// Rejoin: restart with retained payload, re-register, reconcile. The
	// fingerprint check makes this free (zero ships).
	if err := workers[victimIdx].Restart(); err != nil {
		return fmt.Errorf("restart victim: %w", err)
	}
	m.Table().Register(victim, workers[victimIdx].URL())
	t0 = time.Now()
	st, err = m.Reconcile(r.ctx, g)
	if err != nil {
		return fmt.Errorf("rejoin reconcile: %w", err)
	}
	report.Recovery.RejoinReconcileUs = time.Since(t0).Microseconds()
	report.Recovery.RejoinShipped = st.Shipped
	report.Recovery.RejoinRemoved = st.Removed

	// Churn sweep: a kill lands a third of the way in, the member rejoins at
	// two thirds, and every answer must still be bit-identical with zero
	// errors.
	churnVictim := (victimIdx + 1) % nWorkers
	churn := chaosChurnResult{Queries: 3 * len(queries)}
	before := engine.ClusterHealth().Failovers
	lats := make([]time.Duration, 0, churn.Queries)
	start := time.Now()
	for i := 0; i < churn.Queries; i++ {
		switch i {
		case churn.Queries / 3:
			workers[churnVictim].Kill()
		case 2 * churn.Queries / 3:
			if err := workers[churnVictim].Restart(); err == nil {
				m.Table().Register(ids[churnVictim], workers[churnVictim].URL())
				if _, err := m.Reconcile(r.ctx, g); err != nil {
					return fmt.Errorf("churn rejoin reconcile: %w", err)
				}
			}
		}
		qi := i % len(queries)
		t0 := time.Now()
		resp, err := rankOne(queries[qi], roundtriprank.Distributed)
		if err != nil {
			churn.Errors++
			continue
		}
		lats = append(lats, time.Since(t0))
		if err := verify("churn", qi, resp); err != nil {
			return err
		}
	}
	churn.QPS = float64(churn.Queries) / time.Since(start).Seconds()
	churn.P50Us, churn.P99Us = percentile(lats, 0.5), percentile(lats, 0.99)
	churn.Failovers = engine.ClusterHealth().Failovers - before
	report.Churn = churn

	report.Passes = []chaosPassResult{healthy, oneDead, postRecovery}
	if healthy.P50Us > 0 {
		report.FailoverP50Overhead = float64(oneDead.P50Us) / float64(healthy.P50Us)
	}

	for _, p := range report.Passes {
		fmt.Printf("  %-14s %4d queries  %8.1f q/s  p50 %7d µs  p99 %7d µs  failovers %4d\n",
			p.Pass, p.Queries, p.QPS, p.P50Us, p.P99Us, p.Failovers)
	}
	fmt.Printf("  churn          %4d queries  %8.1f q/s  p50 %7d µs  p99 %7d µs  failovers %4d  errors %d\n",
		churn.Queries, churn.QPS, churn.P50Us, churn.P99Us, churn.Failovers, churn.Errors)
	fmt.Printf("  recovery: first query after kill %d µs (%d failovers), suspect@tick %d, dead@tick %d, "+
		"reconcile %d µs shipping %d/%d stripes, rejoin %d µs shipping %d (removed %d)\n",
		report.Recovery.FirstQueryAfterKillUs, report.Recovery.FailoversOnKill, report.Recovery.TicksToSuspect, report.Recovery.TicksToDead,
		report.Recovery.ReconcileUs, report.Recovery.StripesShipped, report.Recovery.StripesHeldByVictim,
		report.Recovery.RejoinReconcileUs, report.Recovery.RejoinShipped, report.Recovery.RejoinRemoved)
	fmt.Printf("  one-dead p50 overhead over healthy: %.2fx\n", report.FailoverP50Overhead)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
