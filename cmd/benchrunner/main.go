// Command benchrunner regenerates every table and figure of the paper's
// evaluation section (Sect. VI) on the synthetic datasets:
//
//	Fig. 4        toy-graph round-trip probabilities
//	Fig. 5        RoundTripRank vs mono-sensed baselines (NDCG@K, Tasks 1–4)
//	Fig. 6, 7     illustrative venue rankings for two topic queries
//	Fig. 8        effect of the specificity bias β
//	Fig. 9        RoundTripRank+ vs dual-sensed baselines
//	Fig. 10       RoundTripRank+ vs customized (β-tuned) dual-sensed baselines
//	Fig. 11a/11b  query time and approximation quality of 2SBound vs baselines
//	Fig. 12       active-set size and query time on growing snapshots
//	Fig. 13       rate of growth of snapshot, active set and query time
//
// Select one experiment with -fig (e.g. -fig 5) or run everything with
// -fig all. Scale and query counts default to values sized for a laptop; the
// paper-scale settings are -scale 1.0 -queries 1000.
//
// -fig kernels is not a paper figure: it benchmarks the walk kernels
// (F-Rank, T-Rank, global PageRank) on the benchmark BibNet in both the CSR
// fast path and the generic interface path (the pre-CSR implementation) and
// writes ns/op, B/op and allocs/op to -bench-out (default BENCH_PR2.json).
//
// -fig online is likewise not a paper figure: it benchmarks one online top-K
// query per bound scheme in both execution modes — the pooled scratch-state
// path ("flat", the serving default) and the pre-flat map-based path ("map",
// forced by hiding the CSR) — plus concurrent queries/sec through
// Engine.Rank, and writes the results to -online-out (default
// BENCH_PR5.json).
//
// -fig remote compares the online 2SBound path local vs remote: the same
// queries through Engine.Rank against the in-process CSR and against a
// 2-worker HTTP fleet via the row-serving path (TwoSBoundRemote), on a cold
// and a warm row cache. It records rows fetched, row-fetch RPCs, the cache
// hit rate and qps/p50 per pass, and writes the report to -remote-out
// (default BENCH_PR6.json). It shares -online-scale and -eff-queries with
// -fig online.
//
// -fig scale is the million-node sweep: synthetic R-MAT graphs at 10^4, 10^5
// and 10^6 nodes (10^7 when -scale-max allows it), recording generator build
// time, resident bytes/edge flat vs packed CSR, exact-solve time per
// representation, and online 2SBound qps/p50/p99 per representation, written
// to -scale-out (default BENCH_PR9.json). It aborts unless every exact vector
// and online response is bit-identical across representations and the packed
// footprint stays ≤70% of flat. It is excluded from -fig all — the sweep is
// sized in minutes, not laptop-default seconds; run it explicitly.
//
// -fig anytime is the budget-vs-quality sweep behind the anytime execution
// layer: R-MAT hub queries (the online search's adversarial case) under a
// ladder of query budgets, recording recall@10 against the exact answer, the
// degraded fraction, certificate sizes and the latency distribution per
// budget point, written to -anytime-out (default BENCH_PR10.json). Every
// certified prefix is verified against the exact top-K and every budgeted
// query is replayed to prove determinism; the figure fails if the combined
// budget point's p99 exceeds 2× its median, and it finishes by driving the
// real serving stack: a budgeted request and a deadline-racing ε=0 request,
// both of which must return 200. Like -fig scale it is excluded from
// -fig all (the default -anytime-nodes builds a 10^5-node graph); the CI
// smoke runs it with small -anytime-nodes / -anytime-queries.
//
// -fig overload drives the real rtrankd serving stack (internal/serve plus
// the cliutil middleware) past its admission limit: one pass with the gate
// off, one with a small -overload-inflight cap under many concurrent HTTP
// clients. It verifies every shed response is a 429 bearing Retry-After,
// checks the gate keeps the admitted tail latency bounded, scrapes the
// stack's own /metrics for the shed counter, and writes the report to
// -overload-out (default BENCH_PR7.json). It shares -online-scale and
// -eff-queries with -fig online.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"roundtriprank"
	"roundtriprank/internal/baselines"
	"roundtriprank/internal/core"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/eval"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/tasks"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

type runner struct {
	ctx        context.Context
	scale      float64
	queries    int
	devQueries int
	effScale   float64
	effQueries int
	seed       int64

	bibnet *datasets.BibNet
	qlog   *datasets.QLog
	wp     walk.Params
}

func main() {
	var (
		fig         = flag.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,10,11a,11b,12,13, kernels, online, remote, overload, chaos, scale, anytime, or all (scale and anytime run only when named)")
		scale       = flag.Float64("scale", 0.5, "effectiveness dataset scale (1.0 = paper-subgraph scale)")
		queries     = flag.Int("queries", 120, "test queries per task (paper: 1000)")
		devQueries  = flag.Int("dev-queries", 60, "development queries per task for beta tuning (paper: 1000)")
		effScale    = flag.Float64("eff-scale", 1.0, "efficiency dataset scale (Fig. 11-13)")
		effQueries  = flag.Int("eff-queries", 15, "queries per setting for the efficiency study (paper: 1000)")
		seed        = flag.Int64("seed", 42, "random seed for query sampling")
		benchOut    = flag.String("bench-out", "BENCH_PR2.json", "output file of -fig kernels")
		onlineOut   = flag.String("online-out", "BENCH_PR5.json", "output file of -fig online")
		onlineScale = flag.Float64("online-scale", onlineBenchScale, "BibNet scale of -fig online and -fig remote (default matches go test -bench Online)")
		remoteOut   = flag.String("remote-out", "BENCH_PR6.json", "output file of -fig remote")
		overloadOut = flag.String("overload-out", "BENCH_PR7.json", "output file of -fig overload")
		overloadCap = flag.Int("overload-inflight", 2, "admission limit of the gated -fig overload pass")
		chaosOut    = flag.String("chaos-out", "BENCH_PR8.json", "output file of -fig chaos")
		scaleOut    = flag.String("scale-out", "BENCH_PR9.json", "output file of -fig scale")
		scaleMax    = flag.Int("scale-max", 1_000_000, "largest node count of the -fig scale sweep (10^7 points need ≥ 10000000)")
		scaleQs     = flag.Int("scale-queries", 16, "online queries per size and representation in -fig scale")
		scaleEF     = flag.Int("scale-edgefactor", 8, "directed edge draws per node of the -fig scale R-MAT graphs")
		anytimeOut  = flag.String("anytime-out", "BENCH_PR10.json", "output file of -fig anytime")
		anytimeN    = flag.Int("anytime-nodes", 100_000, "R-MAT node count of the -fig anytime budget sweep")
		anytimeQs   = flag.Int("anytime-queries", 8, "hub queries per budget point in -fig anytime")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	r := &runner{
		ctx:   ctx,
		scale: *scale, queries: *queries, devQueries: *devQueries,
		effScale: *effScale, effQueries: *effQueries, seed: *seed,
		wp: walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 150},
	}
	want := strings.ToLower(*fig)
	run := func(name string, fn func() error) {
		if want != "all" && want != name {
			return
		}
		// The scale and anytime sweeps run only when named: at their default
		// sizes they build 10^6- and 10^5-node graphs, which have no place in
		// -fig all.
		if (name == "scale" || name == "anytime") && want != name {
			return
		}
		start := time.Now()
		fmt.Printf("==== Figure %s ====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
		fmt.Printf("(figure %s done in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("kernels", func() error { return r.kernels(*benchOut) })
	run("online", func() error { return r.online(*onlineOut, *onlineScale) })
	run("remote", func() error { return r.remote(*remoteOut, *onlineScale) })
	run("overload", func() error { return r.overload(*overloadOut, *onlineScale, *overloadCap) })
	run("chaos", func() error { return r.chaosFig(*chaosOut, *onlineScale) })
	run("scale", func() error { return r.scaleFig(*scaleOut, *scaleMax, *scaleQs, *scaleEF) })
	run("anytime", func() error { return r.anytime(*anytimeOut, *anytimeN, *anytimeQs, *scaleEF) })
	run("4", r.fig4)
	run("5", r.fig5)
	run("6", func() error { return r.illustrative("spatio temporal data") })
	run("7", func() error { return r.illustrative("semantic web") })
	run("8", r.fig8)
	run("9", r.fig9)
	run("10", r.fig10)
	run("11a", r.fig11)
	run("11b", r.fig11)
	run("12", r.fig12and13)
	run("13", r.fig12and13)
}

func (r *runner) bibNet() (*datasets.BibNet, error) {
	if r.bibnet == nil {
		net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(r.scale))
		if err != nil {
			return nil, err
		}
		r.bibnet = net
		fmt.Printf("BibNet: %d nodes, %d edges\n", net.Graph.NumNodes(), net.Graph.NumEdges())
	}
	return r.bibnet, nil
}

func (r *runner) qLog() (*datasets.QLog, error) {
	if r.qlog == nil {
		q, err := datasets.GenerateQLog(datasets.ScaledQLogConfig(r.scale))
		if err != nil {
			return nil, err
		}
		r.qlog = q
		fmt.Printf("QLog: %d nodes, %d edges\n", q.Graph.NumNodes(), q.Graph.NumEdges())
	}
	return r.qlog, nil
}

func (r *runner) fig4() error {
	toy := testgraphs.NewToy()
	probs, err := core.EnumerateRoundTrips(r.ctx, toy.Graph, toy.T1, 2, 2)
	if err != nil {
		return err
	}
	fmt.Println("Round-trip probabilities from t1 with constant L = L' = 2 (paper: v1=0.05, v2=0.1, v3=0.05, t1=0.25):")
	fmt.Printf("  v1=%.4f v2=%.4f v3=%.4f t1=%.4f\n", probs[toy.V1], probs[toy.V2], probs[toy.V3], probs[toy.T1])
	return nil
}

// sampleAll returns test instances for all four tasks.
func (r *runner) sampleAll(n int, seedOffset int64) (map[tasks.Task][]tasks.Instance, error) {
	net, err := r.bibNet()
	if err != nil {
		return nil, err
	}
	qlog, err := r.qLog()
	if err != nil {
		return nil, err
	}
	out := make(map[tasks.Task][]tasks.Instance, 4)
	for _, task := range tasks.BibNetTasks() {
		inst, err := tasks.SampleBibNet(net, task, n, r.seed+seedOffset+int64(task))
		if err != nil {
			return nil, err
		}
		out[task] = inst
	}
	for _, task := range tasks.QLogTasks() {
		inst, err := tasks.SampleQLog(qlog, task, n, r.seed+seedOffset+int64(task))
		if err != nil {
			return nil, err
		}
		out[task] = inst
	}
	return out, nil
}

func (r *runner) graphFor(task tasks.Task) *graph.Graph {
	switch task {
	case tasks.TaskAuthor, tasks.TaskVenue:
		return r.bibnet.Graph
	default:
		return r.qlog.Graph
	}
}

func (r *runner) runMeasureTable(title string, measuresFor func(task tasks.Task) []baselines.Measure) error {
	instances, err := r.sampleAll(r.queries, 0)
	if err != nil {
		return err
	}
	taskLabels := []string{}
	results := map[string][]eval.MeasureResult{}
	for _, task := range tasks.AllTasks() {
		res, err := eval.EvaluateTask(r.ctx, r.graphFor(task), instances[task], measuresFor(task), eval.KValues, r.wp, nil)
		if err != nil {
			return err
		}
		taskLabels = append(taskLabels, task.String())
		results[task.String()] = res
	}
	fmt.Print(eval.RenderNDCGTable(title, taskLabels, results, eval.KValues))
	// Significance of the proposed measure (row 0) over the best baseline.
	for _, task := range tasks.AllTasks() {
		res := results[task.String()]
		if len(res) < 2 {
			continue
		}
		bestBaseline, bestScore := 1, -1.0
		for i := 1; i < len(res); i++ {
			if res[i].MeanNDCG[5] > bestScore {
				bestBaseline, bestScore = i, res[i].MeanNDCG[5]
			}
		}
		if p, err := eval.SignificanceP(res[0], res[bestBaseline], 5); err == nil {
			fmt.Printf("  %s: %s vs runner-up %s at NDCG@5, paired t-test p = %.4f\n",
				task, res[0].Name, res[bestBaseline].Name, p)
		}
	}
	return nil
}

func (r *runner) fig5() error {
	return r.runMeasureTable("Fig. 5 — RoundTripRank vs mono-sensed baselines (NDCG@K)",
		func(tasks.Task) []baselines.Measure {
			return []baselines.Measure{
				baselines.NewRoundTripRank(),
				baselines.NewFRank(),
				baselines.NewTRank(),
				baselines.NewSimRank(),
				baselines.NewAdamicAdar(),
			}
		})
}

func (r *runner) tunedBetas() (map[tasks.Task]float64, error) {
	dev, err := r.sampleAll(r.devQueries, 10_000)
	if err != nil {
		return nil, err
	}
	out := make(map[tasks.Task]float64, 4)
	for _, task := range tasks.AllTasks() {
		beta, err := eval.TuneBeta(r.ctx, r.graphFor(task), dev[task], eval.DefaultBetaGrid(), 5, r.wp)
		if err != nil {
			return nil, err
		}
		out[task] = beta
	}
	return out, nil
}

func (r *runner) fig8() error {
	instances, err := r.sampleAll(r.queries, 0)
	if err != nil {
		return err
	}
	for _, task := range tasks.AllTasks() {
		sweep, err := eval.SweepBeta(r.ctx, r.graphFor(task), instances[task], eval.DefaultBetaGrid(), 5, r.wp)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderBetaSweep(task.String(), sweep))
	}
	return nil
}

func (r *runner) fig9() error {
	betas, err := r.tunedBetas()
	if err != nil {
		return err
	}
	fmt.Printf("Tuned specificity biases: ")
	for _, task := range tasks.AllTasks() {
		fmt.Printf("%s beta*=%.1f  ", task, betas[task])
	}
	fmt.Println()
	return r.runMeasureTable("Fig. 9 — RoundTripRank+ vs dual-sensed baselines (NDCG@K)",
		func(task tasks.Task) []baselines.Measure {
			return []baselines.Measure{
				baselines.NewRoundTripRankPlus(betas[task]),
				baselines.NewTCommute(10),
				baselines.NewObjSqrtInv(0.25),
				baselines.NewHarmonic(),
				baselines.NewArithmetic(),
			}
		})
}

func (r *runner) fig10() error {
	// Customized baselines: tune beta per task for every dual-sensed measure
	// on development queries, then compare on the test queries (NDCG@5).
	dev, err := r.sampleAll(r.devQueries, 10_000)
	if err != nil {
		return err
	}
	test, err := r.sampleAll(r.queries, 0)
	if err != nil {
		return err
	}
	families := []struct {
		name string
		make func(beta float64) baselines.Measure
	}{
		{"RoundTripRank+", func(b float64) baselines.Measure { return baselines.NewRoundTripRankPlus(b) }},
		{"TCommute+", func(b float64) baselines.Measure { return baselines.NewTCommutePlus(10, b) }},
		{"ObjSqrtInv+", func(b float64) baselines.Measure { return baselines.NewObjSqrtInvPlus(0.25, b) }},
		{"Harmonic+", func(b float64) baselines.Measure { return baselines.NewHarmonicPlus(b) }},
		{"Arithmetic+", func(b float64) baselines.Measure { return baselines.NewArithmeticPlus(b) }},
	}
	grid := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	fmt.Println("Fig. 10 — customized dual-sensed baselines, NDCG@5 per task")
	fmt.Printf("%-16s", "Measure")
	for _, task := range tasks.AllTasks() {
		fmt.Printf(" %10s", strings.Split(task.String(), " (")[0])
	}
	fmt.Printf(" %10s\n", "Average")
	for _, fam := range families {
		fmt.Printf("%-16s", fam.name)
		sum := 0.0
		for _, task := range tasks.AllTasks() {
			// Tune beta on dev queries for this family and task.
			bestBeta, bestScore := 0.5, -1.0
			for _, b := range grid {
				res, err := eval.EvaluateTask(r.ctx, r.graphFor(task), dev[task],
					[]baselines.Measure{fam.make(b)}, []int{5}, r.wp, nil)
				if err != nil {
					return err
				}
				if res[0].MeanNDCG[5] > bestScore {
					bestBeta, bestScore = b, res[0].MeanNDCG[5]
				}
			}
			res, err := eval.EvaluateTask(r.ctx, r.graphFor(task), test[task],
				[]baselines.Measure{fam.make(bestBeta)}, []int{5}, r.wp, nil)
			if err != nil {
				return err
			}
			score := res[0].MeanNDCG[5]
			sum += score
			fmt.Printf(" %10.4f", score)
		}
		fmt.Printf(" %10.4f\n", sum/float64(len(tasks.AllTasks())))
	}
	return nil
}

func (r *runner) illustrative(topic string) error {
	net, err := r.bibNet()
	if err != nil {
		return err
	}
	terms := net.QueryTermsFor(topic)
	measures := []baselines.Measure{baselines.NewFRank(), baselines.NewTRank(), baselines.NewRoundTripRank()}
	columns := map[string][]string{}
	var order []string
	for _, m := range measures {
		venues, err := eval.IllustrativeRanking(r.ctx, net.Graph, terms, m, datasets.TypeVenue, 5, r.wp)
		if err != nil {
			return err
		}
		columns[m.Name()] = venues
		order = append(order, m.Name())
	}
	fmt.Print(eval.RenderIllustrative(topic, columns, order))
	return nil
}

func (r *runner) efficiencyGraph() (*datasets.BibNet, error) {
	return datasets.GenerateBibNet(datasets.ScaledBibNetConfig(r.effScale))
}

func (r *runner) fig11() error {
	net, err := r.efficiencyGraph()
	if err != nil {
		return err
	}
	fmt.Printf("Efficiency graph: %d nodes, %d edges\n", net.Graph.NumNodes(), net.Graph.NumEdges())
	queries := make([]graph.NodeID, 0, r.effQueries)
	for i := 0; i < r.effQueries; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}
	rows, err := eval.EvaluateEfficiency(r.ctx, net.Graph, eval.EfficiencyConfig{
		K:            10,
		Queries:      queries,
		Epsilons:     []float64{0.01, 0.02, 0.03},
		IncludeNaive: true,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig. 11(a)/(b) — query time and approximation quality by scheme and slack")
	fmt.Print(eval.RenderEfficiencyTable(rows))
	return nil
}

// kernelBenchScale matches benchScale in bench_test.go, so the JSON numbers
// are comparable with `go test -bench BenchmarkWalkKernels`.
const kernelBenchScale = 0.12

// kernelResult is one solver benchmarked in one execution mode.
type kernelResult struct {
	Kernel           string  `json:"kernel"`
	Mode             string  `json:"mode"` // "csr" (parallel flat arrays) or "generic" (pre-CSR interface path)
	NsPerOp          int64   `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	Iterations       int     `json:"iterations"`
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

// benchReport is the schema of BENCH_PR2.json.
type benchReport struct {
	GeneratedAt string         `json:"generated_at"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Dataset     string         `json:"dataset"`
	Scale       float64        `json:"scale"`
	Nodes       int            `json:"nodes"`
	Edges       int            `json:"edges"`
	Kernels     []kernelResult `json:"kernels"`
	// PrePRNote and PrePR are a one-off recorded artifact, not a live
	// measurement: the seed-commit BenchmarkExactRoundTripRank numbers from
	// the machine the CSR PR was developed on. For an apples-to-apples
	// before/after on the current machine, compare the live "generic" rows
	// (the pre-CSR implementation) against the "csr" rows instead.
	PrePRNote string           `json:"pre_pr_note"`
	PrePR     map[string]int64 `json:"pre_pr_exact_roundtriprank_recorded"`
}

// kernels benchmarks the walk kernels on the benchmark BibNet in the CSR and
// generic modes and writes the results to outPath.
func (r *runner) kernels(outPath string) error {
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(kernelBenchScale))
	if err != nil {
		return err
	}
	g := net.Graph
	fmt.Printf("Kernel benchmark BibNet: %d nodes, %d edges, GOMAXPROCS=%d\n",
		g.NumNodes(), g.NumEdges(), runtime.GOMAXPROCS(0))
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 120}
	q := walk.SingleNode(net.Papers[0])
	generic := struct{ graph.View }{g} // hides the CSR: forces the pre-CSR path

	type target struct {
		name string
		run  func(view graph.View) error
	}
	targets := []target{
		{"FRank", func(view graph.View) error {
			_, err := walk.FRank(r.ctx, view, q, wp)
			return err
		}},
		{"TRank", func(view graph.View) error {
			_, err := walk.TRank(r.ctx, view, q, wp)
			return err
		}},
		{"GlobalPageRank", func(view graph.View) error {
			_, err := walk.GlobalPageRank(r.ctx, view, 0.15, wp.Tol, wp.MaxIter)
			return err
		}},
		{"ExactRoundTripRank", func(view graph.View) error {
			_, err := core.Compute(r.ctx, view, q, core.Params{Walk: wp, Beta: 0.5})
			return err
		}},
	}

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "bibnet",
		Scale:       kernelBenchScale,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		PrePRNote: "recorded once on the seed commit before the CSR kernels (single core); " +
			"not measured on this machine — use the generic-mode rows for a live baseline",
		PrePR: map[string]int64{
			"ns_per_op":     22460625,
			"bytes_per_op":  7416469,
			"allocs_per_op": 404063,
		},
	}
	for _, tg := range targets {
		var genericNs int64
		for _, mode := range []struct {
			name string
			view graph.View
		}{{"generic", generic}, {"csr", g}} {
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := tg.run(mode.view); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("kernel %s (%s): %w", tg.name, mode.name, benchErr)
			}
			kr := kernelResult{
				Kernel:      tg.name,
				Mode:        mode.name,
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			if mode.name == "generic" {
				genericNs = kr.NsPerOp
			} else if kr.NsPerOp > 0 {
				kr.SpeedupVsGeneric = float64(genericNs) / float64(kr.NsPerOp)
			}
			report.Kernels = append(report.Kernels, kr)
			fmt.Printf("  %-20s %-8s %12d ns/op %10d B/op %8d allocs/op",
				tg.name, mode.name, kr.NsPerOp, kr.BytesPerOp, kr.AllocsPerOp)
			if kr.SpeedupVsGeneric > 0 {
				fmt.Printf("  (%.2fx vs generic)", kr.SpeedupVsGeneric)
			}
			fmt.Println()
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// onlineBenchScale matches benchScale in bench_test.go, so the JSON numbers
// are comparable with `go test -bench Online`.
const onlineBenchScale = 0.12

// onlineResult is one bound scheme benchmarked in one execution mode.
type onlineResult struct {
	Scheme       string  `json:"scheme"`
	Mode         string  `json:"mode"` // "flat" (pooled scratch state) or "map" (pre-flat baseline)
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Iterations   int     `json:"iterations"`
	SpeedupVsMap float64 `json:"speedup_vs_map,omitempty"`
	// AllocsReductionVsMap is map allocs/op divided by flat allocs/op (with
	// a floor of one flat alloc to keep the ratio finite).
	AllocsReductionVsMap float64 `json:"allocs_reduction_vs_map,omitempty"`
}

// engineRankResult records concurrent throughput through Engine.Rank.
type engineRankResult struct {
	Workers     int     `json:"workers"`
	FlatQueries int     `json:"flat_queries_measured"`
	MapQueries  int     `json:"map_queries_measured"`
	FlatQPS     float64 `json:"flat_queries_per_sec"`
	MapQPS      float64 `json:"map_queries_per_sec"`
	Speedup     float64 `json:"speedup_vs_map"`
}

// onlineReport is the schema of BENCH_PR5.json.
type onlineReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Dataset     string           `json:"dataset"`
	Scale       float64          `json:"scale"`
	Nodes       int              `json:"nodes"`
	Edges       int              `json:"edges"`
	K           int              `json:"k"`
	Epsilon     float64          `json:"epsilon"`
	Schemes     []onlineResult   `json:"schemes"`
	EngineRank  engineRankResult `json:"engine_rank_concurrent"`
}

// online benchmarks the online top-K hot path per bound scheme in the flat
// (pooled scratch-state) and map (pre-flat baseline) modes, measures
// concurrent Engine.Rank throughput in both, and writes the report.
func (r *runner) online(outPath string, scale float64) error {
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
	if err != nil {
		return err
	}
	g := net.Graph
	fmt.Printf("Online benchmark BibNet: %d nodes, %d edges, GOMAXPROCS=%d\n",
		g.NumNodes(), g.NumEdges(), runtime.GOMAXPROCS(0))
	queries := make([]graph.NodeID, 0, r.effQueries)
	for i := 0; i < r.effQueries; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}
	const k, eps = 10, 0.01
	report := onlineReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "bibnet",
		Scale:       scale,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		K:           k,
		Epsilon:     eps,
	}

	// The "map" mode forces the pre-flat map-based searcher via
	// Options.ForceMap (rather than hiding the CSR behind a wrapper), so the
	// baseline keeps the CSR-streaming BCA fast path it always had on CSR
	// views: the A/B isolates exactly the scratch-state rewrite.
	schemes := []topk.Scheme{topk.Scheme2SBound, topk.SchemeGS, topk.SchemeGupta, topk.SchemeSarkar}
	modes := []struct {
		name     string
		forceMap bool
	}{{"map", true}, {"flat", false}}
	for _, scheme := range schemes {
		var mapNs, mapAllocs int64
		for _, mode := range modes {
			opt := topk.Options{K: k, Epsilon: eps, Alpha: 0.25, Beta: 0.5, Scheme: scheme, ForceMap: mode.forceMap}
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					if _, err := topk.TopK(r.ctx, g, walk.SingleNode(q), opt); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("online %s (%s): %w", scheme, mode.name, benchErr)
			}
			or := onlineResult{
				Scheme:      scheme.String(),
				Mode:        mode.name,
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			if mode.name == "map" {
				mapNs, mapAllocs = or.NsPerOp, or.AllocsPerOp
			} else {
				if or.NsPerOp > 0 {
					or.SpeedupVsMap = float64(mapNs) / float64(or.NsPerOp)
				}
				flatAllocs := or.AllocsPerOp
				if flatAllocs < 1 {
					flatAllocs = 1
				}
				or.AllocsReductionVsMap = float64(mapAllocs) / float64(flatAllocs)
			}
			report.Schemes = append(report.Schemes, or)
			fmt.Printf("  %-8s %-5s %12d ns/op %10d B/op %8d allocs/op",
				or.Scheme, or.Mode, or.NsPerOp, or.BytesPerOp, or.AllocsPerOp)
			if or.SpeedupVsMap > 0 {
				fmt.Printf("  (%.2fx vs map, %.0fx fewer allocs)", or.SpeedupVsMap, or.AllocsReductionVsMap)
			}
			fmt.Println()
		}
	}

	// Concurrent serving throughput through the public Engine.Rank path:
	// GOMAXPROCS goroutines sharing one engine (and, on the flat path, the
	// scratch pool).
	report.EngineRank.Workers = runtime.GOMAXPROCS(0)
	for _, mode := range modes {
		var opts []roundtriprank.Option
		if mode.forceMap {
			opts = append(opts, roundtriprank.WithOnlineMapBaseline())
		}
		engine, err := roundtriprank.NewEngine(g, opts...)
		if err != nil {
			return err
		}
		qps, measured, err := concurrentRankQPS(r.ctx, engine, queries, k, eps, report.EngineRank.Workers)
		if err != nil {
			return fmt.Errorf("online engine-rank (%s): %w", mode.name, err)
		}
		if mode.name == "map" {
			report.EngineRank.MapQPS, report.EngineRank.MapQueries = qps, measured
		} else {
			report.EngineRank.FlatQPS, report.EngineRank.FlatQueries = qps, measured
		}
		fmt.Printf("  Engine.Rank %-5s %d workers: %.0f queries/sec (over %d queries)\n",
			mode.name, report.EngineRank.Workers, qps, measured)
	}
	if report.EngineRank.MapQPS > 0 {
		report.EngineRank.Speedup = report.EngineRank.FlatQPS / report.EngineRank.MapQPS
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// concurrentRankQPS issues queries round-robin from workers goroutines
// sharing one engine and returns the measured throughput plus the number of
// queries the returned figure was actually measured over (the timed block is
// repeated until it runs long enough to trust). It warms the scratch pool
// (and plans) with one query before timing.
func concurrentRankQPS(ctx context.Context, engine *roundtriprank.Engine, queries []graph.NodeID, k int, eps float64, workers int) (float64, int, error) {
	total := workers * 16
	req := func(i int) roundtriprank.Request {
		return roundtriprank.Request{
			Query:   walk.SingleNode(queries[i%len(queries)]),
			K:       k,
			Epsilon: eps,
			Method:  roundtriprank.TwoSBound,
		}
	}
	if _, err := engine.Rank(ctx, req(0)); err != nil {
		return 0, 0, err
	}
	// Repeat the timed block until it runs long enough to trust.
	rounds := 1
	for {
		var (
			wg       sync.WaitGroup
			next     atomic.Int64
			errOnce  sync.Once
			firstErr error
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= total*rounds {
						return
					}
					if _, err := engine.Rank(ctx, req(i)); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, 0, firstErr
		}
		if elapsed >= 500*time.Millisecond || rounds >= 64 {
			return float64(total*rounds) / elapsed.Seconds(), total * rounds, nil
		}
		rounds *= 2
	}
}

// remotePassResult is one pass of the remote-vs-local comparison: the same
// query set through one engine path, with its latency distribution and (on
// the remote path) its row-serving footprint.
type remotePassResult struct {
	Pass    string  `json:"pass"` // "local", "remote-cold" or "remote-warm"
	Queries int     `json:"queries"`
	QPS     float64 `json:"queries_per_sec"`
	P50Us   int64   `json:"p50_us"`
	// Row-serving footprint of the pass, zero on the local pass.
	RowsFetched int64 `json:"rows_fetched,omitempty"`
	RowRPCs     int64 `json:"row_rpcs,omitempty"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// remoteReport is the schema of BENCH_PR6.json.
type remoteReport struct {
	GeneratedAt string             `json:"generated_at"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Dataset     string             `json:"dataset"`
	Scale       float64            `json:"scale"`
	Nodes       int                `json:"nodes"`
	Edges       int                `json:"edges"`
	K           int                `json:"k"`
	Epsilon     float64            `json:"epsilon"`
	Workers     int                `json:"workers"`
	Passes      []remotePassResult `json:"passes"`
	// WarmHitRate is cache hits / probes of the warm pass: the fraction of
	// row reads the second identical query sweep answered without any RPC.
	WarmHitRate float64 `json:"warm_cache_hit_rate"`
	CachedRows  int     `json:"cached_rows"`
	// SlowdownCold and SlowdownWarm are the remote p50 over the local p50.
	SlowdownCold float64 `json:"remote_p50_over_local_cold"`
	SlowdownWarm float64 `json:"remote_p50_over_local_warm"`
}

// remote compares the online 2SBound hot path local vs remote: one engine
// ranking against the in-process CSR, one against a 2-worker HTTP fleet
// through the row-serving path, over the same queries. The remote sweep runs
// twice — cold row cache, then warm — and every remote response is checked
// bit-identical to the local one before any number is reported.
func (r *runner) remote(outPath string, scale float64) error {
	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
	if err != nil {
		return err
	}
	g := net.Graph
	const workers = 2
	ts := make([]roundtriprank.Transport, workers)
	for i := 0; i < workers; i++ {
		s, err := distributed.BuildStripe(g, i, workers)
		if err != nil {
			return err
		}
		srv := httptest.NewServer(distributed.NewWorker(s).Handler())
		defer srv.Close()
		ts[i] = roundtriprank.DialWorker(srv.URL)
	}
	local, err := roundtriprank.NewEngine(g)
	if err != nil {
		return err
	}
	remote, err := roundtriprank.NewEngine(g, roundtriprank.WithWorkers(ts...))
	if err != nil {
		return err
	}
	fmt.Printf("Remote benchmark BibNet: %d nodes, %d edges, %d HTTP workers\n",
		g.NumNodes(), g.NumEdges(), workers)
	queries := make([]graph.NodeID, 0, r.effQueries)
	for i := 0; i < r.effQueries; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}
	const k, eps = 10, 0.01

	pass := func(name string, e *roundtriprank.Engine, m roundtriprank.Method) (remotePassResult, []*roundtriprank.Response, error) {
		res := remotePassResult{Pass: name, Queries: len(queries)}
		lats := make([]time.Duration, 0, len(queries))
		resps := make([]*roundtriprank.Response, 0, len(queries))
		start := time.Now()
		for _, q := range queries {
			t0 := time.Now()
			resp, err := e.Rank(r.ctx, roundtriprank.Request{
				Query: walk.SingleNode(q), K: k, Epsilon: eps, Method: m,
			})
			if err != nil {
				return res, nil, fmt.Errorf("%s pass, query %d: %w", name, q, err)
			}
			lats = append(lats, time.Since(t0))
			resps = append(resps, resp)
			if resp.Rows != nil {
				res.RowsFetched += resp.Rows.Fetched
				res.RowRPCs += resp.Rows.RPCs
				res.CacheHits += resp.Rows.CacheHits
				res.CacheMisses += resp.Rows.CacheMisses
			}
		}
		res.QPS = float64(len(queries)) / time.Since(start).Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.P50Us = lats[len(lats)/2].Microseconds()
		return res, resps, nil
	}

	localPass, localResps, err := pass("local", local, roundtriprank.TwoSBound)
	if err != nil {
		return err
	}
	coldPass, coldResps, err := pass("remote-cold", remote, roundtriprank.TwoSBoundRemote)
	if err != nil {
		return err
	}
	warmPass, warmResps, err := pass("remote-warm", remote, roundtriprank.TwoSBoundRemote)
	if err != nil {
		return err
	}
	// The comparison is only meaningful if the remote path is exact: every
	// response, both passes, must match the local one bit for bit.
	for qi := range localResps {
		for _, remoteResps := range [][]*roundtriprank.Response{coldResps, warmResps} {
			want, got := localResps[qi], remoteResps[qi]
			if len(got.Results) != len(want.Results) {
				return fmt.Errorf("query %d: remote returned %d results, local %d", qi, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					return fmt.Errorf("query %d rank %d: remote %+v, local %+v (not bit-identical)",
						qi, i, got.Results[i], want.Results[i])
				}
			}
		}
	}

	st := remote.RowServeStats()
	report := remoteReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "bibnet",
		Scale:       scale,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		K:           k,
		Epsilon:     eps,
		Workers:     workers,
		Passes:      []remotePassResult{localPass, coldPass, warmPass},
		CachedRows:  st.CachedRows,
	}
	if probes := warmPass.CacheHits + warmPass.CacheMisses; probes > 0 {
		report.WarmHitRate = float64(warmPass.CacheHits) / float64(probes)
	}
	if localPass.P50Us > 0 {
		report.SlowdownCold = float64(coldPass.P50Us) / float64(localPass.P50Us)
		report.SlowdownWarm = float64(warmPass.P50Us) / float64(localPass.P50Us)
	}
	for _, p := range report.Passes {
		fmt.Printf("  %-12s %4d queries  %8.1f q/s  p50 %7d µs  rows %6d  rpcs %5d  hits %6d  misses %6d\n",
			p.Pass, p.Queries, p.QPS, p.P50Us, p.RowsFetched, p.RowRPCs, p.CacheHits, p.CacheMisses)
	}
	fmt.Printf("  warm cache hit rate %.3f, %d rows cached, remote/local p50: cold %.2fx warm %.2fx\n",
		report.WarmHitRate, report.CachedRows, report.SlowdownCold, report.SlowdownWarm)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func (r *runner) fig12and13() error {
	for _, ds := range []string{"BibNet", "QLog"} {
		var snaps []*graph.Subgraph
		var err error
		if ds == "BibNet" {
			net, gerr := r.efficiencyGraph()
			if gerr != nil {
				return gerr
			}
			snaps, err = net.Snapshots(5)
		} else {
			qlog, gerr := datasets.GenerateQLog(datasets.ScaledQLogConfig(r.effScale))
			if gerr != nil {
				return gerr
			}
			snaps, err = qlog.Snapshots(5)
		}
		if err != nil {
			return err
		}
		labels := []string{"t1", "t2", "t3", "t4", "t5"}
		rows, err := eval.EvaluateScalability(r.ctx, snaps, labels, r.effQueries, 0.01, 10, r.seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderSnapshotTable(ds, rows))
		gr, err := eval.ComputeGrowthRates(rows)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderGrowthRates(ds, gr))
		fmt.Println()
	}
	return nil
}
