package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"roundtriprank/internal/core"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// The scale figure is not a paper figure: it sweeps synthetic R-MAT graphs
// from 10^4 to 10^6 nodes (10^7 behind -scale-max) and records, per size, the
// generator build time, the resident bytes/edge of the flat CSR vs the packed
// CSR, the exact-solve time on both representations, and the online 2SBound
// qps/p50/p99 on both. Every number is only reported after the packed path
// proved itself: the exact vectors and every online response must be
// bit-identical across representations, and the packed footprint must stay
// under scalePackedMaxRatio of the flat one (the CI scale-smoke job runs the
// 10^4 point as a regression guard on both properties).

// scalePackedMaxRatio is the packed/flat bytes-per-edge ceiling: the packed
// representation must stay at least 30% below flat (the PR's acceptance
// threshold), with a little slack consumed by per-row headers on very sparse
// rows.
const scalePackedMaxRatio = 0.70

// scaleOnlineEpsilon and scaleK match the efficiency study (Fig. 11).
// scaleMaxRounds bounds each online query through a topk.Budget. Hub queries
// on R-MAT graphs grow their active neighborhoods every round, so per-round
// cost rises with the round number and an unlucky near-tie query runs minutes
// (at 10^5 nodes, node 0 costs 13s at 100 rounds, 52s at 300, ~4min at 1000).
// 100 rounds is where the active set reaches ~10^4 nodes — past the point the
// sweep is measuring representation throughput rather than bound-convergence
// luck. Capped queries return the budget's certified best-effort ranking with
// Converged=false and Degraded=true; the report carries the converged and
// degraded counts per representation, and the cross-representation parity
// check covers capped responses exactly like converged ones (round counts and
// certificates must match too).
const (
	scaleK             = 10
	scaleOnlineEpsilon = 0.01
	scaleMaxRounds     = 100
)

// scaleLatencies is one representation's online measurement.
type scaleLatencies struct {
	Queries int `json:"queries"`
	// Converged counts queries that certified their top-K within
	// scaleMaxRounds rounds; Degraded counts the rest, which returned
	// best-effort rankings with a certificate (the two always sum to
	// Queries: the round cap is the only budget dimension in play).
	Converged int     `json:"converged"`
	Degraded  int     `json:"degraded"`
	QPS       float64 `json:"queries_per_sec"`
	P50Us     int64   `json:"p50_us"`
	P99Us     int64   `json:"p99_us"`
}

// scaleSizeResult is one sweep point of BENCH_PR9.json.
type scaleSizeResult struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// GenerateSeconds covers RMATEdges plus the CSR build; PackSeconds the
	// flat → packed conversion of both directions.
	GenerateSeconds float64 `json:"generate_seconds"`
	PackSeconds     float64 `json:"pack_seconds"`
	FlatBytes       int64   `json:"flat_bytes"`
	PackedBytes     int64   `json:"packed_bytes"`
	FlatBytesEdge   float64 `json:"flat_bytes_per_edge"`
	PackedBytesEdge float64 `json:"packed_bytes_per_edge"`
	// PackedOverFlat is the packed/flat footprint ratio; the sweep aborts if
	// it exceeds scalePackedMaxRatio.
	PackedOverFlat     float64        `json:"packed_over_flat"`
	ExactFlatSeconds   float64        `json:"exact_flat_seconds"`
	ExactPackedSeconds float64        `json:"exact_packed_seconds"`
	OnlineFlat         scaleLatencies `json:"online_2sbound_flat"`
	OnlinePacked       scaleLatencies `json:"online_2sbound_packed"`
}

// scaleReport is the schema of BENCH_PR9.json.
type scaleReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Dataset     string  `json:"dataset"`
	EdgeFactor  int     `json:"edge_factor"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	Epsilon     float64 `json:"epsilon"`
	// ParityChecked counts the online responses compared bit for bit across
	// the two representations (every query at every size).
	ParityChecked int               `json:"online_responses_parity_checked"`
	Sizes         []scaleSizeResult `json:"sizes"`
}

// scaleSweepSizes returns the decade sweep capped at maxNodes.
func scaleSweepSizes(maxNodes int) []int {
	var out []int
	for _, n := range []int{10_000, 100_000, 1_000_000, 10_000_000} {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	return out
}

// scaleFig runs the R-MAT size sweep and writes BENCH_PR9.json.
func (r *runner) scaleFig(outPath string, maxNodes, queries, edgeFactor int) error {
	report := scaleReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "rmat",
		EdgeFactor:  edgeFactor,
		Seed:        r.seed,
		K:           scaleK,
		Epsilon:     scaleOnlineEpsilon,
	}
	sizes := scaleSweepSizes(maxNodes)
	if len(sizes) == 0 {
		return fmt.Errorf("scale: -scale-max %d is below the smallest sweep size (10^4)", maxNodes)
	}
	for _, n := range sizes {
		res, checked, err := r.scaleOne(n, queries, edgeFactor)
		if err != nil {
			return fmt.Errorf("scale %d nodes: %w", n, err)
		}
		report.ParityChecked += checked
		report.Sizes = append(report.Sizes, *res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d online responses parity-checked)\n", outPath, report.ParityChecked)
	return nil
}

func (r *runner) scaleOne(n, queries, edgeFactor int) (*scaleSizeResult, int, error) {
	cfg := datasets.DefaultRMATConfig(n)
	cfg.Seed = r.seed
	cfg.EdgeFactor = edgeFactor

	start := time.Now()
	rm, err := datasets.GenerateRMAT(cfg)
	if err != nil {
		return nil, 0, err
	}
	g := rm.Graph
	res := &scaleSizeResult{
		Nodes:           g.NumNodes(),
		Edges:           g.NumEdges(),
		GenerateSeconds: time.Since(start).Seconds(),
	}

	start = time.Now()
	packed := graph.Pack(g)
	res.PackSeconds = time.Since(start).Seconds()
	res.FlatBytes = g.OutCSR().SizeBytes() + g.InCSR().SizeBytes()
	res.PackedBytes = packed.SizeBytes()
	res.FlatBytesEdge = float64(res.FlatBytes) / float64(res.Edges)
	res.PackedBytesEdge = float64(res.PackedBytes) / float64(res.Edges)
	res.PackedOverFlat = float64(res.PackedBytes) / float64(res.FlatBytes)
	fmt.Printf("  %9d nodes %9d edges  gen %6.2fs  pack %5.2fs  bytes/edge flat %5.1f packed %5.1f (%.0f%% of flat)\n",
		res.Nodes, res.Edges, res.GenerateSeconds, res.PackSeconds,
		res.FlatBytesEdge, res.PackedBytesEdge, 100*res.PackedOverFlat)
	if res.PackedOverFlat > scalePackedMaxRatio {
		return nil, 0, fmt.Errorf("packed footprint regression: %.3f of flat, limit %.2f", res.PackedOverFlat, scalePackedMaxRatio)
	}

	// Query nodes: deterministic stride through the ID space, skipping
	// isolated nodes (R-MAT rejection leaves some, especially in the tail).
	qnodes := make([]graph.NodeID, 0, queries)
	for i := 0; len(qnodes) < queries; i++ {
		v := graph.NodeID((i * 7919) % n)
		if g.OutDegree(v) > 0 && g.InDegree(v) > 0 {
			qnodes = append(qnodes, v)
		}
		if i > 100*queries {
			return nil, 0, fmt.Errorf("could not find %d non-isolated query nodes", queries)
		}
	}

	// Exact solve, timed once per representation and compared bit for bit:
	// the packed kernels must replay the flat reduction order exactly.
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 150}
	q := walk.SingleNode(qnodes[0])
	cp := core.Params{Walk: wp, Beta: 0.5}
	start = time.Now()
	exactFlat, err := core.Compute(r.ctx, g, q, cp)
	if err != nil {
		return nil, 0, err
	}
	res.ExactFlatSeconds = time.Since(start).Seconds()
	start = time.Now()
	exactPacked, err := core.Compute(r.ctx, packed, q, cp)
	if err != nil {
		return nil, 0, err
	}
	res.ExactPackedSeconds = time.Since(start).Seconds()
	for v := range exactFlat.R {
		if math.Float64bits(exactFlat.R[v]) != math.Float64bits(exactPacked.R[v]) {
			return nil, 0, fmt.Errorf("exact solve diverges at node %d: flat %g, packed %g", v, exactFlat.R[v], exactPacked.R[v])
		}
	}
	fmt.Printf("  %9s exact %6.2fs flat / %6.2fs packed (vectors bit-identical)\n",
		"", res.ExactFlatSeconds, res.ExactPackedSeconds)

	// Online 2SBound sweep per representation, with per-query cross-checks.
	opt := topk.Options{
		K: scaleK, Epsilon: scaleOnlineEpsilon, Alpha: 0.25, Beta: 0.5,
		Scheme: topk.Scheme2SBound,
		Budget: &topk.Budget{MaxRounds: scaleMaxRounds},
	}
	run := func(view graph.View) ([]*topk.Result, scaleLatencies, error) {
		lat := scaleLatencies{Queries: len(qnodes)}
		if _, err := topk.TopK(r.ctx, view, walk.SingleNode(qnodes[0]), opt); err != nil {
			return nil, lat, err // warm the scratch pool before timing
		}
		outs := make([]*topk.Result, 0, len(qnodes))
		lats := make([]time.Duration, 0, len(qnodes))
		start := time.Now()
		for _, v := range qnodes {
			t0 := time.Now()
			out, err := topk.TopK(r.ctx, view, walk.SingleNode(v), opt)
			if err != nil {
				return nil, lat, err
			}
			lats = append(lats, time.Since(t0))
			outs = append(outs, out)
			if out.Converged {
				lat.Converged++
			}
			if out.Degraded {
				lat.Degraded++
			}
		}
		lat.QPS = float64(len(qnodes)) / time.Since(start).Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		lat.P50Us = lats[len(lats)/2].Microseconds()
		lat.P99Us = lats[len(lats)*99/100].Microseconds()
		return outs, lat, nil
	}
	flatOuts, flatLat, err := run(g)
	if err != nil {
		return nil, 0, fmt.Errorf("online flat: %w", err)
	}
	packedOuts, packedLat, err := run(packed)
	if err != nil {
		return nil, 0, fmt.Errorf("online packed: %w", err)
	}
	res.OnlineFlat, res.OnlinePacked = flatLat, packedLat
	for i := range flatOuts {
		if err := sameTopK(flatOuts[i], packedOuts[i]); err != nil {
			return nil, 0, fmt.Errorf("online query %d (node %d): %w", i, qnodes[i], err)
		}
	}
	fmt.Printf("  %9s online 2SBound flat %7.1f q/s p50 %6dµs p99 %6dµs (%d/%d conv) | packed %7.1f q/s p50 %6dµs p99 %6dµs (%d/%d conv)\n",
		"", flatLat.QPS, flatLat.P50Us, flatLat.P99Us, flatLat.Converged, flatLat.Queries,
		packedLat.QPS, packedLat.P50Us, packedLat.P99Us, packedLat.Converged, packedLat.Queries)
	return res, len(flatOuts), nil
}

// sameTopK fails unless the two online results are bit-identical: same
// convergence, same rounds, same certificate, same nodes in the same order,
// same score bits.
func sameTopK(want, got *topk.Result) error {
	if got.Converged != want.Converged || got.Rounds != want.Rounds {
		return fmt.Errorf("converged/rounds %v/%d vs %v/%d", got.Converged, got.Rounds, want.Converged, want.Rounds)
	}
	if got.Degraded != want.Degraded || got.Stop != want.Stop {
		return fmt.Errorf("degraded/stop %v/%s vs %v/%s", got.Degraded, got.Stop, want.Degraded, want.Stop)
	}
	if got.CertifiedK != want.CertifiedK ||
		math.Float64bits(got.AchievedEpsilon) != math.Float64bits(want.AchievedEpsilon) {
		return fmt.Errorf("certificate %d/%g vs %d/%g (not bit-identical)",
			got.CertifiedK, got.AchievedEpsilon, want.CertifiedK, want.AchievedEpsilon)
	}
	if len(got.TopK) != len(want.TopK) {
		return fmt.Errorf("%d results vs %d", len(got.TopK), len(want.TopK))
	}
	for i := range want.TopK {
		if got.TopK[i].Node != want.TopK[i].Node ||
			math.Float64bits(got.TopK[i].Score) != math.Float64bits(want.TopK[i].Score) {
			return fmt.Errorf("rank %d: packed %d/%g vs flat %d/%g (not bit-identical)",
				i, got.TopK[i].Node, got.TopK[i].Score, want.TopK[i].Node, want.TopK[i].Score)
		}
	}
	return nil
}
