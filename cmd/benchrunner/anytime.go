package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/core"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/serve"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// The anytime figure is not a paper figure: it sweeps query budgets over
// R-MAT hub queries — the adversarial case for the online search, whose
// active neighborhoods grow every round — and records, per budget point, the
// latency distribution, the degraded fraction, recall@K against the exact
// answer, and the certificate sizes. Every certified prefix is verified
// against the exact top-K (position by position) before any number is
// reported, and every budgeted query is replayed once to prove the degraded
// path deterministic. The figure closes with the serving stack: a budgeted
// request and a deadline-bearing request through the real rtrankd handlers,
// both of which must come back 200 (the degraded result is an answer, not an
// error).

// anytimeK and anytimeEpsilon match the efficiency study (Fig. 11).
const (
	anytimeK       = 10
	anytimeEpsilon = 0.01
)

// anytimeTailGuardSlack is absolute slack for the p99 ≤ 2×p50 tail guard:
// on CI-sized graphs budgeted hub queries run in microseconds, where a single
// scheduler hiccup can double a latency without meaning anything. The guard
// only trips when the tail exceeds the ratio by more than this margin.
const anytimeTailGuardSlack = 2 * time.Millisecond

// anytimeBudgets is the sweep: a round-cap ladder, plus one combined point
// exercising every budget dimension at once (the touched-node cap is what
// actually clamps per-query work on large graphs, so the tail-latency guard
// is checked there).
func anytimeBudgets() []topk.Budget {
	return []topk.Budget{
		{MaxRounds: 5},
		{MaxRounds: 10},
		{MaxRounds: 20},
		{MaxRounds: 40},
		{MaxRounds: 80},
		{MaxRounds: 40, MaxTouched: 25_000, FrontierCap: 4096},
	}
}

// anytimeBudgetResult is one budget point of the sweep.
type anytimeBudgetResult struct {
	MaxRounds   int `json:"max_rounds"`
	MaxTouched  int `json:"max_touched,omitempty"`
	FrontierCap int `json:"frontier_cap,omitempty"`
	Queries     int `json:"queries"`
	Converged   int `json:"converged"`
	Degraded    int `json:"degraded"`
	// RecallAt10 is the mean |budgeted top-10 ∩ exact top-10| / 10.
	RecallAt10 float64 `json:"recall_at_10"`
	// CertifiedKMean is the mean certified-prefix length; every certified
	// position was verified identical to the exact top-K before reporting.
	CertifiedKMean     float64 `json:"certified_k_mean"`
	CertifiedChecked   int     `json:"certified_positions_checked"`
	MaxAchievedEpsilon float64 `json:"max_achieved_epsilon"`
	TouchedMean        float64 `json:"touched_mean"`
	QPS                float64 `json:"queries_per_sec"`
	P50Us              int64   `json:"p50_us"`
	P99Us              int64   `json:"p99_us"`
}

// anytimeServeResult is the serving-stack demo: both requests must be 200.
type anytimeServeResult struct {
	// Budgeted request: explicit {"budget":{"max_rounds":5}} on the top hub.
	BudgetStatus     int  `json:"budget_status"`
	BudgetDegraded   bool `json:"budget_degraded"`
	BudgetCertifiedK int  `json:"budget_certified_k"`
	BudgetResults    int  `json:"budget_results"`
	// Deadline request: an exact-guarantee (ε=0) query under the middleware's
	// request timeout, with the server's degrade margin armed. On a large
	// graph the deadline-derived soft stop fires and the response is a 200
	// with a certified partial result instead of a 504.
	DeadlineStatus     int  `json:"deadline_status"`
	DeadlineDegraded   bool `json:"deadline_degraded"`
	DeadlineConverged  bool `json:"deadline_converged"`
	DeadlineCertifiedK int  `json:"deadline_certified_k"`
	// DegradedMetric is the summed engine_query_degraded_total across methods
	// scraped from the stack's own /metrics after both requests.
	DegradedMetric float64 `json:"degraded_metric_total"`
}

// anytimeReport is the schema of BENCH_PR10.json.
type anytimeReport struct {
	GeneratedAt string                `json:"generated_at"`
	GoMaxProcs  int                   `json:"gomaxprocs"`
	Dataset     string                `json:"dataset"`
	Nodes       int                   `json:"nodes"`
	Edges       int                   `json:"edges"`
	EdgeFactor  int                   `json:"edge_factor"`
	Seed        int64                 `json:"seed"`
	K           int                   `json:"k"`
	Epsilon     float64               `json:"epsilon"`
	HubNodes    []graph.NodeID        `json:"hub_nodes"`
	ExactSecs   float64               `json:"exact_reference_seconds"`
	Budgets     []anytimeBudgetResult `json:"budgets"`
	// TailGuardRatio is p99/p50 of the combined budget point, which the
	// figure requires ≤ 2 (modulo the absolute CI-noise slack).
	TailGuardRatio float64            `json:"tail_guard_p99_over_p50"`
	Serve          anytimeServeResult `json:"serve"`
}

// anytime runs the budget sweep and writes BENCH_PR10.json.
func (r *runner) anytime(outPath string, nodes, queries, edgeFactor int) error {
	cfg := datasets.DefaultRMATConfig(nodes)
	cfg.Seed = r.seed
	cfg.EdgeFactor = edgeFactor
	rm, err := datasets.GenerateRMAT(cfg)
	if err != nil {
		return err
	}
	g := rm.Graph
	hubs := anytimeHubs(g, queries)
	if len(hubs) == 0 {
		return fmt.Errorf("anytime: no connected hub nodes in a %d-node graph", g.NumNodes())
	}
	fmt.Printf("Anytime R-MAT: %d nodes, %d edges, %d hub queries (top degree %d)\n",
		g.NumNodes(), g.NumEdges(), len(hubs), g.OutDegree(hubs[0])+g.InDegree(hubs[0]))

	report := anytimeReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "rmat",
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		EdgeFactor:  edgeFactor,
		Seed:        r.seed,
		K:           anytimeK,
		Epsilon:     anytimeEpsilon,
		HubNodes:    hubs,
	}

	// Exact reference rankings, one per hub. The exact solve is
	// rank-equivalent to the online search's squared-scale bounds, so prefix
	// and recall comparisons go by node identity.
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 150}
	exact := make([][]core.Ranked, len(hubs))
	start := time.Now()
	for i, v := range hubs {
		sc, err := core.Compute(r.ctx, g, walk.SingleNode(v), core.Params{Walk: wp, Beta: 0.5})
		if err != nil {
			return fmt.Errorf("exact reference for hub %d: %w", v, err)
		}
		exact[i] = core.TopN(sc.R, anytimeK, nil)
	}
	report.ExactSecs = time.Since(start).Seconds()
	fmt.Printf("  exact reference: %d queries in %.2fs\n", len(hubs), report.ExactSecs)

	for _, b := range anytimeBudgets() {
		b := b
		row, err := r.anytimeBudgetPass(g, hubs, exact, &b)
		if err != nil {
			return err
		}
		report.Budgets = append(report.Budgets, *row)
		fmt.Printf("  budget rounds=%-3d touched=%-6d cap=%-5d  %2d/%d degraded  recall@10 %.3f  certK %.1f  p50 %6dµs p99 %6dµs\n",
			b.MaxRounds, b.MaxTouched, b.FrontierCap, row.Degraded, row.Queries,
			row.RecallAt10, row.CertifiedKMean, row.P50Us, row.P99Us)
	}

	// Tail guard on the combined point (the last budget row): the whole point
	// of a budget is a bounded tail, so p99 must stay within 2× the median.
	guard := report.Budgets[len(report.Budgets)-1]
	if guard.P50Us > 0 {
		report.TailGuardRatio = float64(guard.P99Us) / float64(guard.P50Us)
	}
	if report.TailGuardRatio > 2 && guard.P99Us-2*guard.P50Us > anytimeTailGuardSlack.Microseconds() {
		return fmt.Errorf("tail guard: budgeted p99 %dµs exceeds 2× median %dµs (ratio %.2f)",
			guard.P99Us, guard.P50Us, report.TailGuardRatio)
	}
	fmt.Printf("  tail guard (combined budget): p99/p50 = %.2f (limit 2.00 + noise slack)\n", report.TailGuardRatio)

	sv, err := r.anytimeServe(g, hubs[0])
	if err != nil {
		return err
	}
	report.Serve = *sv

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// anytimeHubs returns the n highest-degree connected nodes (degree desc,
// node asc — deterministic for a fixed graph).
func anytimeHubs(g *graph.Graph, n int) []graph.NodeID {
	type hub struct {
		node graph.NodeID
		deg  int
	}
	hubs := make([]hub, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		out, in := g.OutDegree(id), g.InDegree(id)
		if out > 0 && in > 0 {
			hubs = append(hubs, hub{node: id, deg: out + in})
		}
	}
	sort.Slice(hubs, func(i, j int) bool {
		if hubs[i].deg != hubs[j].deg {
			return hubs[i].deg > hubs[j].deg
		}
		return hubs[i].node < hubs[j].node
	})
	if len(hubs) > n {
		hubs = hubs[:n]
	}
	out := make([]graph.NodeID, len(hubs))
	for i, h := range hubs {
		out[i] = h.node
	}
	return out
}

// anytimeBudgetPass runs every hub query under one budget, verifies the
// certificate and the degraded path's determinism, and aggregates the row.
func (r *runner) anytimeBudgetPass(g *graph.Graph, hubs []graph.NodeID, exact [][]core.Ranked, b *topk.Budget) (*anytimeBudgetResult, error) {
	row := &anytimeBudgetResult{
		MaxRounds:   b.MaxRounds,
		MaxTouched:  b.MaxTouched,
		FrontierCap: b.FrontierCap,
		Queries:     len(hubs),
	}
	opt := topk.Options{
		K: anytimeK, Epsilon: anytimeEpsilon, Alpha: 0.25, Beta: 0.5,
		Scheme: topk.Scheme2SBound, Budget: b,
	}
	// Warm the scratch pool before timing.
	if _, err := topk.TopK(r.ctx, g, walk.SingleNode(hubs[0]), opt); err != nil {
		return nil, err
	}
	lats := make([]time.Duration, 0, len(hubs))
	var recallSum, certSum, touchedSum float64
	start := time.Now()
	for i, v := range hubs {
		t0 := time.Now()
		out, err := topk.TopK(r.ctx, g, walk.SingleNode(v), opt)
		if err != nil {
			return nil, fmt.Errorf("budget rounds=%d hub %d: %w", b.MaxRounds, v, err)
		}
		lats = append(lats, time.Since(t0))
		if out.Converged {
			row.Converged++
		}
		if out.Degraded {
			row.Degraded++
		}
		// Certificate soundness: every certified position must hold exactly
		// the node the exact solve ranks there.
		if out.CertifiedK > len(exact[i]) {
			return nil, fmt.Errorf("hub %d: certified %d positions but exact has %d", v, out.CertifiedK, len(exact[i]))
		}
		for j := 0; j < out.CertifiedK; j++ {
			if out.TopK[j].Node != exact[i][j].Node {
				return nil, fmt.Errorf("hub %d: certified position %d holds node %d, exact holds %d",
					v, j, out.TopK[j].Node, exact[i][j].Node)
			}
		}
		row.CertifiedChecked += out.CertifiedK
		certSum += float64(out.CertifiedK)
		recallSum += recallAtK(out.TopK, exact[i], anytimeK)
		touchedSum += float64(out.FSeen + out.TSeen)
		if out.AchievedEpsilon > row.MaxAchievedEpsilon {
			row.MaxAchievedEpsilon = out.AchievedEpsilon
		}
		// Determinism: the degraded path must replay bit-identically.
		if i == 0 {
			again, err := topk.TopK(r.ctx, g, walk.SingleNode(v), opt)
			if err != nil {
				return nil, err
			}
			if err := sameTopK(out, again); err != nil {
				return nil, fmt.Errorf("budget rounds=%d hub %d not deterministic: %w", b.MaxRounds, v, err)
			}
		}
	}
	row.QPS = float64(len(hubs)) / time.Since(start).Seconds()
	row.RecallAt10 = recallSum / float64(len(hubs))
	row.CertifiedKMean = certSum / float64(len(hubs))
	row.TouchedMean = touchedSum / float64(len(hubs))
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.P50Us = lats[len(lats)/2].Microseconds()
	row.P99Us = lats[len(lats)*99/100].Microseconds()
	return row, nil
}

// recallAtK is |got[:k] ∩ want[:k]| / min(k, len(want)) by node identity.
func recallAtK(got []core.Ranked, want []core.Ranked, k int) float64 {
	if len(want) > k {
		want = want[:k]
	}
	if len(want) == 0 {
		return 1
	}
	wantSet := make(map[graph.NodeID]bool, len(want))
	for _, w := range want {
		wantSet[w.Node] = true
	}
	hit := 0
	for i, g := range got {
		if i >= k {
			break
		}
		if wantSet[g.Node] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// anytimeServe boots the real serving stack (handlers + middleware) with the
// degrade margin armed and replays the two anytime request shapes: an
// explicitly budgeted query and an exact-guarantee query racing the request
// timeout. Both must return 200 — degraded results are answers, not errors.
func (r *runner) anytimeServe(g *graph.Graph, hub graph.NodeID) (*anytimeServeResult, error) {
	metrics := serve.NewMetrics()
	engine, err := roundtriprank.NewEngine(g, roundtriprank.WithQueryStatsHook(metrics.RecordQuery))
	if err != nil {
		return nil, err
	}
	s := serve.New(engine, metrics, serve.Config{DegradeMargin: 50 * time.Millisecond})
	srv := httptest.NewServer(cliutil.WrapHTTP(s.Handler(), metrics.Registry(), cliutil.HTTPOptions{
		Routes:         serve.Routes(),
		Exempt:         serve.ExemptRoutes(),
		// Wide enough that the explicitly budgeted request below stops on its
		// own rounds budget (not the deadline-derived one) even on a 10^5-node
		// hub, yet still short enough to truncate the ε=0 exact demand.
		RequestTimeout: 5 * time.Second,
	}))
	defer srv.Close()

	res := &anytimeServeResult{}
	post := func(body string) (int, serveRankView, error) {
		resp, err := http.Post(srv.URL+"/rank", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, serveRankView{}, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, serveRankView{}, err
		}
		var v serveRankView
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &v); err != nil {
				return 0, serveRankView{}, err
			}
		}
		return resp.StatusCode, v, nil
	}

	status, v, err := post(fmt.Sprintf(
		`{"nodes":[%d],"k":%d,"method":"2sbound","budget":{"max_rounds":5}}`, hub, anytimeK))
	if err != nil {
		return nil, err
	}
	res.BudgetStatus, res.BudgetDegraded = status, v.Degraded
	res.BudgetCertifiedK, res.BudgetResults = v.CertifiedK, len(v.Results)
	if status != http.StatusOK {
		return nil, fmt.Errorf("budgeted /rank returned %d, want 200", status)
	}
	if v.CertifiedK > len(v.Results) {
		return nil, fmt.Errorf("budgeted /rank certified %d of %d results", v.CertifiedK, len(v.Results))
	}

	// ε=0 demands the exact guarantee, so the hub query refines long enough
	// for the request timeout to matter on any non-toy graph; the 50ms
	// degrade margin converts the overrun into a 200 with a certificate.
	status, v, err = post(fmt.Sprintf(
		`{"nodes":[%d],"k":%d,"method":"2sbound","epsilon":0}`, hub, anytimeK))
	if err != nil {
		return nil, err
	}
	res.DeadlineStatus, res.DeadlineDegraded = status, v.Degraded
	res.DeadlineConverged, res.DeadlineCertifiedK = v.Converged, v.CertifiedK
	if status != http.StatusOK {
		return nil, fmt.Errorf("deadline-racing /rank returned %d, want 200 (degraded or converged)", status)
	}
	if !v.Degraded && !v.Converged {
		return nil, fmt.Errorf("deadline-racing /rank neither converged nor degraded")
	}

	res.DegradedMetric, err = scrapeDegradedTotal(srv.URL)
	if err != nil {
		return nil, err
	}
	if v.Degraded && res.DegradedMetric == 0 {
		return nil, fmt.Errorf("degraded response served but engine_query_degraded_total is 0")
	}
	fmt.Printf("  serve: budgeted %d (degraded=%v certK=%d/%d), deadline %d (degraded=%v), degraded_total=%g\n",
		res.BudgetStatus, res.BudgetDegraded, res.BudgetCertifiedK, res.BudgetResults,
		res.DeadlineStatus, res.DeadlineDegraded, res.DegradedMetric)
	return res, nil
}

// serveRankView is the subset of the wire response the anytime figure reads.
type serveRankView struct {
	Results    []json.RawMessage `json:"results"`
	Converged  bool              `json:"converged"`
	Degraded   bool              `json:"degraded"`
	CertifiedK int               `json:"certified_k"`
}

// scrapeDegradedTotal sums engine_query_degraded_total across methods from
// the stack's /metrics exposition.
func scrapeDegradedTotal(baseURL string) (float64, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("rtrank_engine_query_degraded_total")) {
			continue
		}
		fields := bytes.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(string(fields[1]), "%g", &v); err == nil {
			total += v
		}
	}
	return total, nil
}
