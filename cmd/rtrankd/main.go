// Command rtrankd serves RoundTripRank queries over HTTP. It loads a graph (a
// gob file or a generated synthetic dataset), builds an Engine, and exposes
//
//	POST /rank      — execute one ranking request (JSON in, JSON out)
//	GET  /healthz   — liveness plus graph stats
//	GET  /metrics   — Prometheus text exposition (see docs/OPERATIONS.md)
//	GET  /v1/epoch  — the serving snapshot: epoch, fingerprint, sizes
//	POST /v1/edges  — batched graph mutation: stage a delta, commit a new
//	                  epoch, swap the engine (and redeploy worker stripes)
//
// Example:
//
//	rtrankd -dataset bibnet -scale 0.3 -listen :8080 &
//	curl -s localhost:8080/rank -d '{
//	    "query": ["term:spatio", "term:temporal", "term:data"],
//	    "k": 5, "type": "venue", "method": "auto"
//	}'
//	curl -s localhost:8080/v1/edges -d '{
//	    "add_nodes": [{"type": "term", "label": "term:streaming"}],
//	    "set": [{"from": "term:streaming", "to": "paper:p0",
//	             "weight": 1, "undirected": true}]
//	}'
//
// With -workers, rtrankd also acts as the coordinator front end of a
// gpserver cluster: the listed workers must serve the stripes of the same
// graph, and requests may then select "method": "distributed" to fan the
// exact solve out across them, or "method": "2sbound-remote" to run the
// online search against the fleet's rows through the row cache (see
// docs/API.md). A mutation then also
// reconciles the fleet before the new epoch serves, shipping only stripes
// the commit changed (docs/OPERATIONS.md walks through the lifecycle).
//
// With -fleet-stripes, the worker set self-organizes instead of being listed
// on the command line: rtrankd mounts the membership endpoints
// (POST /v1/register, POST /v1/heartbeat, POST /v1/drain, GET /v1/fleet),
// gpservers started with -register join and heartbeat, and a tick loop
// (-fleet-tick) counts missed heartbeats, evicts dead members, and
// reconciles R-way replicated stripe placement (-replication) over the live
// ones. Queries fail over between a stripe's replicas, so killing any single
// worker mid-query changes no answers; a rejoining worker whose retained
// stripes still fingerprint-match is revalidated without re-shipping. See
// docs/OPERATIONS.md for the fleet runbook.
//
// The server applies bounded-in-flight admission control (-max-inflight;
// excess load is shed with 429 + Retry-After), a per-request deadline
// (-request-timeout), and read/write timeouts; it shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight queries. Queries run under the HTTP
// request context, so a disconnecting client cancels its in-flight
// computation; mutations detach onto a server-scoped context so a commit
// finishes coherently regardless of the caller. The serving logic itself
// lives in internal/serve; this command only parses flags and wires the
// stack together.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/serve"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset     = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale       = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		listen      = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers     = flag.String("workers", "", "comma-separated gpserver base URLs serving this graph's stripes; enables \"method\": \"distributed\"")
		writeTmo    = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest query)")
		maxInflight = flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "admitted concurrent requests before shedding with 429 (0 disables the gate)")
		requestTmo  = flag.Duration("request-timeout", 0, "per-request deadline for admitted requests (0 leaves only the write timeout)")
		mutationTmo = flag.Duration("mutation-timeout", serve.DefaultMutationTimeout, "server-side bound on one mutation commit + fleet redeploy")
		degradeMgn  = flag.Duration("degrade-margin", 50*time.Millisecond, "deadline-aware degradation: stop a deadline-bearing query this early and return the certified partial result with 200 instead of timing out with 504 (0 disables)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint written on shed (429) responses")
		fleetN      = flag.Int("fleet-stripes", 0, "stripe count of a self-organizing worker fleet; enables /v1/register + /v1/heartbeat and replicated placement over registered gpservers (exclusive with -workers)")
		replication = flag.Int("replication", 2, "replica count per stripe of the -fleet-stripes fleet")
		fleetTick   = flag.Duration("fleet-tick", 2*time.Second, "membership tick period: each tick counts a missed heartbeat against silent members and reconciles placement when membership changed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := cliutil.LoadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	metrics := serve.NewMetrics()
	opts := []roundtriprank.Option{roundtriprank.WithQueryStatsHook(metrics.RecordQuery)}
	var transports []roundtriprank.Transport
	var fleetMgr *roundtriprank.Fleet
	switch {
	case *fleetN > 0 && *workers != "":
		log.Fatal("-fleet-stripes and -workers are mutually exclusive: a fleet discovers its workers through registration")
	case *fleetN > 0:
		fleetMgr, err = roundtriprank.NewFleet(roundtriprank.FleetOptions{
			Stripes: *fleetN, Replication: *replication,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, roundtriprank.WithFleet(fleetMgr))
	case *workers != "":
		for _, u := range strings.Split(*workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			transports = append(transports, roundtriprank.DialWorker(u))
		}
		opts = append(opts, roundtriprank.WithWorkers(transports...))
	}
	engine, err := roundtriprank.NewEngine(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	workerCount := len(transports)
	if fleetMgr != nil {
		workerCount = *fleetN
	}
	s := serve.New(engine, metrics, serve.Config{
		Workers:         workerCount,
		MutationTimeout: *mutationTmo,
		BaseContext:     ctx,
		DegradeMargin:   *degradeMgn,
	})
	mux := s.Handler()
	routes, exempt := serve.Routes(), serve.ExemptRoutes()
	if fleetMgr != nil {
		mux = mountFleet(mux, fleetMgr)
		routes = append(routes, fleetRoutes...)
		// Membership traffic must bypass admission control: a saturated
		// coordinator shedding heartbeats with 429 would evict live workers
		// and make the overload worse by re-placing their stripes.
		exempt = append(exempt, fleetRoutes...)
		go fleetLoop(ctx, engine, fleetMgr, *fleetTick)
	}
	var handler http.Handler = cliutil.WrapHTTP(mux, metrics.Registry(), cliutil.HTTPOptions{
		Routes:         routes,
		Exempt:         exempt,
		MaxInFlight:    *maxInflight,
		RetryAfter:     *retryAfter,
		RequestTimeout: *requestTmo,
	})

	cfg := cliutil.HTTPServerConfig{WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, handler, cfg, func(a net.Addr) {
		if fleetMgr != nil {
			log.Printf("rtrankd serving %d nodes, %d edges on %s (fleet of %d stripes, R=%d, max %d in flight)",
				g.NumNodes(), g.NumEdges(), a, *fleetN, *replication, *maxInflight)
			return
		}
		log.Printf("rtrankd serving %d nodes, %d edges on %s (%d stripe workers, max %d in flight)",
			g.NumNodes(), g.NumEdges(), a, len(transports), *maxInflight)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

// fleetRoutes are the membership endpoints mounted in -fleet-stripes mode.
var fleetRoutes = []string{"/v1/register", "/v1/heartbeat", "/v1/drain", "/v1/fleet"}

// mountFleet layers the fleet manager's membership endpoints over the serving
// mux; everything else falls through to the serving routes.
func mountFleet(inner http.Handler, m *roundtriprank.Fleet) http.Handler {
	mux := http.NewServeMux()
	fh := m.Handler()
	for _, route := range fleetRoutes {
		mux.Handle(route, fh)
	}
	mux.Handle("/", inner)
	return mux
}

// fleetLoop drives the fleet's liveness clock: every tick counts a missed
// heartbeat against members that stayed silent since the previous tick, and
// whenever the membership table's generation moved (a registration, a state
// transition, a drain) it reconciles placement against the currently served
// snapshot — shipping stripes to new members, re-placing the stripes of dead
// ones, and fingerprint-revalidating rejoiners. Mutations reconcile through
// Engine.Apply on their own; this loop only reacts to membership changes.
func fleetLoop(ctx context.Context, engine *roundtriprank.Engine, m *roundtriprank.Fleet, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var reconciled uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.Table().Tick()
			gen := m.Table().Gen()
			if gen == reconciled {
				continue
			}
			g, ok := engine.View().(*roundtriprank.Graph)
			if !ok {
				log.Printf("fleet: cannot reconcile a %T view", engine.View())
				return
			}
			st, err := m.Reconcile(ctx, g)
			if err != nil {
				// Transient by nature (a member died mid-ship); the next tick
				// retries against the then-current membership.
				log.Printf("fleet reconcile: %v", err)
				continue
			}
			reconciled = gen
			h := engine.ClusterHealth()
			log.Printf("fleet reconciled (gen %d): %d shipped, %d retagged, %d removed; members %d alive / %d suspect / %d dead",
				gen, st.Shipped, st.Retagged, st.Removed, h.MembersAlive, h.MembersSuspect, h.MembersDead)
		}
	}
}
