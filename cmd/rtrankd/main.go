// Command rtrankd serves RoundTripRank queries over HTTP. It loads a graph (a
// gob file or a generated synthetic dataset), builds an Engine, and exposes
//
//	POST /rank      — execute one ranking request (JSON in, JSON out)
//	GET  /healthz   — liveness plus graph stats
//	GET  /metrics   — Prometheus text exposition (see docs/OPERATIONS.md)
//	GET  /v1/epoch  — the serving snapshot: epoch, fingerprint, sizes
//	POST /v1/edges  — batched graph mutation: stage a delta, commit a new
//	                  epoch, swap the engine (and redeploy worker stripes)
//
// Example:
//
//	rtrankd -dataset bibnet -scale 0.3 -listen :8080 &
//	curl -s localhost:8080/rank -d '{
//	    "query": ["term:spatio", "term:temporal", "term:data"],
//	    "k": 5, "type": "venue", "method": "auto"
//	}'
//	curl -s localhost:8080/v1/edges -d '{
//	    "add_nodes": [{"type": "term", "label": "term:streaming"}],
//	    "set": [{"from": "term:streaming", "to": "paper:p0",
//	             "weight": 1, "undirected": true}]
//	}'
//
// With -workers, rtrankd also acts as the coordinator front end of a
// gpserver cluster: the listed workers must serve the stripes of the same
// graph, and requests may then select "method": "distributed" to fan the
// exact solve out across them, or "method": "2sbound-remote" to run the
// online search against the fleet's rows through the row cache (see
// docs/API.md). A mutation then also
// reconciles the fleet before the new epoch serves, shipping only stripes
// the commit changed (docs/OPERATIONS.md walks through the lifecycle).
//
// The server applies bounded-in-flight admission control (-max-inflight;
// excess load is shed with 429 + Retry-After), a per-request deadline
// (-request-timeout), and read/write timeouts; it shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight queries. Queries run under the HTTP
// request context, so a disconnecting client cancels its in-flight
// computation; mutations detach onto a server-scoped context so a commit
// finishes coherently regardless of the caller. The serving logic itself
// lives in internal/serve; this command only parses flags and wires the
// stack together.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/serve"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset     = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale       = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		listen      = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers     = flag.String("workers", "", "comma-separated gpserver base URLs serving this graph's stripes; enables \"method\": \"distributed\"")
		writeTmo    = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest query)")
		maxInflight = flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "admitted concurrent requests before shedding with 429 (0 disables the gate)")
		requestTmo  = flag.Duration("request-timeout", 0, "per-request deadline for admitted requests (0 leaves only the write timeout)")
		mutationTmo = flag.Duration("mutation-timeout", serve.DefaultMutationTimeout, "server-side bound on one mutation commit + fleet redeploy")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint written on shed (429) responses")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := cliutil.LoadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	metrics := serve.NewMetrics()
	opts := []roundtriprank.Option{roundtriprank.WithQueryStatsHook(metrics.RecordQuery)}
	var transports []roundtriprank.Transport
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			transports = append(transports, roundtriprank.DialWorker(u))
		}
		opts = append(opts, roundtriprank.WithWorkers(transports...))
	}
	engine, err := roundtriprank.NewEngine(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	s := serve.New(engine, metrics, serve.Config{
		Workers:         len(transports),
		MutationTimeout: *mutationTmo,
		BaseContext:     ctx,
	})
	var handler http.Handler = cliutil.WrapHTTP(s.Handler(), metrics.Registry(), cliutil.HTTPOptions{
		Routes:         serve.Routes(),
		Exempt:         serve.ExemptRoutes(),
		MaxInFlight:    *maxInflight,
		RetryAfter:     *retryAfter,
		RequestTimeout: *requestTmo,
	})

	cfg := cliutil.HTTPServerConfig{WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, handler, cfg, func(a net.Addr) {
		log.Printf("rtrankd serving %d nodes, %d edges on %s (%d stripe workers, max %d in flight)",
			g.NumNodes(), g.NumEdges(), a, len(transports), *maxInflight)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}
