// Command rtrankd serves RoundTripRank queries over HTTP. It loads a graph (a
// gob file or a generated synthetic dataset), builds an Engine, and exposes
//
//	POST /rank     — execute one ranking request (JSON in, JSON out)
//	GET  /healthz  — liveness plus graph stats
//
// Example:
//
//	rtrankd -dataset bibnet -scale 0.3 -listen :8080 &
//	curl -s localhost:8080/rank -d '{
//	    "query": ["term:spatio", "term:temporal", "term:data"],
//	    "k": 5, "type": "venue", "method": "auto"
//	}'
//
// With -workers, rtrankd also acts as the coordinator front end of a
// gpserver cluster: the listed workers must serve the stripes of the same
// graph, and requests may then select "method": "distributed" to fan the
// exact solve out across them (see docs/API.md).
//
// Every request runs under the HTTP request context, so a disconnecting
// client cancels its in-flight computation; per-request alpha/beta/epsilon
// override the engine defaults. The server enforces read/write timeouts and
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight queries.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
)

// rankRequest is the JSON body of POST /rank.
type rankRequest struct {
	// Query lists query node labels; Nodes lists raw node IDs. At least one
	// of the two must be non-empty; they are combined when both are given.
	Query []string               `json:"query,omitempty"`
	Nodes []roundtriprank.NodeID `json:"nodes,omitempty"`
	K     int                    `json:"k"`
	// Method is auto (default), exact, distributed (requires -workers),
	// 2sbound, gs, gupta or sarkar.
	Method string `json:"method,omitempty"`
	// Type restricts results to the named node type (as registered on the
	// graph, e.g. "venue"); empty keeps all types.
	Type string `json:"type,omitempty"`
	// KeepQuery keeps the query nodes in the results (default: excluded).
	KeepQuery bool     `json:"keep_query,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Beta      *float64 `json:"beta,omitempty"`
	Epsilon   float64  `json:"epsilon,omitempty"`
}

type rankResult struct {
	Node  roundtriprank.NodeID `json:"node"`
	Label string               `json:"label"`
	Score float64              `json:"score"`
}

type rankResponse struct {
	Results   []rankResult `json:"results"`
	Method    string       `json:"method"`
	Converged bool         `json:"converged"`
	Rounds    int          `json:"rounds,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// maxRequestBytes caps the /rank request body; a ranking request is a few
// labels and scalars, so 1 MiB is generous.
const maxRequestBytes = 1 << 20

type server struct {
	g       *roundtriprank.Graph
	engine  *roundtriprank.Engine
	workers int
}

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale     = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers   = flag.String("workers", "", "comma-separated gpserver base URLs serving this graph's stripes; enables \"method\": \"distributed\"")
		writeTmo  = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest query)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := cliutil.LoadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	var opts []roundtriprank.Option
	var transports []roundtriprank.Transport
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			transports = append(transports, roundtriprank.DialWorker(u))
		}
		opts = append(opts, roundtriprank.WithWorkers(transports...))
	}
	engine, err := roundtriprank.NewEngine(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{g: g, engine: engine, workers: len(transports)}

	mux := http.NewServeMux()
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/healthz", s.handleHealthz)

	cfg := cliutil.HTTPServerConfig{WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, mux, cfg, func(a net.Addr) {
		log.Printf("rtrankd serving %d nodes, %d edges on %s (%d stripe workers)",
			g.NumNodes(), g.NumEdges(), a, len(transports))
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rpcs, retries := s.engine.ClusterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"nodes":   s.g.NumNodes(),
		"edges":   s.g.NumEdges(),
		"workers": s.workers,
		"cluster": map[string]any{"rpcs": rpcs, "retries": retries},
	})
}

func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON request to /rank")
		return
	}
	var in rankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := s.buildRequest(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.engine.Rank(r.Context(), req)
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away; nothing useful to write.
			return
		}
		// Cluster trouble is a backend condition, not a caller mistake:
		// answer 502 so clients and load balancers treat it as retryable.
		var ce *roundtriprank.ClusterError
		if errors.As(err, &ce) {
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := rankResponse{
		Results:   make([]rankResult, len(resp.Results)),
		Method:    resp.Method.String(),
		Converged: resp.Converged,
		Rounds:    resp.Rounds,
		ElapsedMS: float64(resp.Elapsed.Microseconds()) / 1000.0,
	}
	for i, res := range resp.Results {
		out.Results[i] = rankResult{Node: res.Node, Label: s.g.Label(res.Node), Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// buildRequest translates the wire request into an Engine request.
func (s *server) buildRequest(in rankRequest) (roundtriprank.Request, error) {
	var nodes []roundtriprank.NodeID
	for _, label := range in.Query {
		v := s.g.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			return roundtriprank.Request{}, fmt.Errorf("query node %q not found", label)
		}
		nodes = append(nodes, v)
	}
	nodes = append(nodes, in.Nodes...)
	if len(nodes) == 0 {
		return roundtriprank.Request{}, fmt.Errorf("empty query: provide \"query\" labels or \"nodes\" IDs")
	}
	method, err := roundtriprank.ParseMethod(in.Method)
	if err != nil {
		return roundtriprank.Request{}, err
	}
	filter := &roundtriprank.Filter{ExcludeQuery: !in.KeepQuery}
	if in.Type != "" {
		t, err := cliutil.TypeByName(s.g, in.Type)
		if err != nil {
			return roundtriprank.Request{}, err
		}
		filter.Types = []roundtriprank.NodeType{t}
	}
	k := in.K
	if k == 0 {
		k = 10
	}
	return roundtriprank.Request{
		Query:   roundtriprank.MultiNode(nodes...),
		K:       k,
		Method:  method,
		Filter:  filter,
		Alpha:   in.Alpha,
		Beta:    in.Beta,
		Epsilon: in.Epsilon,
	}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
