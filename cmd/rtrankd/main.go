// Command rtrankd serves RoundTripRank queries over HTTP. It loads a graph (a
// gob file or a generated synthetic dataset), builds an Engine, and exposes
//
//	POST /rank      — execute one ranking request (JSON in, JSON out)
//	GET  /healthz   — liveness plus graph stats
//	GET  /v1/epoch  — the serving snapshot: epoch, fingerprint, sizes
//	POST /v1/edges  — batched graph mutation: stage a delta, commit a new
//	                  epoch, swap the engine (and redeploy worker stripes)
//
// Example:
//
//	rtrankd -dataset bibnet -scale 0.3 -listen :8080 &
//	curl -s localhost:8080/rank -d '{
//	    "query": ["term:spatio", "term:temporal", "term:data"],
//	    "k": 5, "type": "venue", "method": "auto"
//	}'
//	curl -s localhost:8080/v1/edges -d '{
//	    "add_nodes": [{"type": "term", "label": "term:streaming"}],
//	    "set": [{"from": "term:streaming", "to": "paper:p0",
//	             "weight": 1, "undirected": true}]
//	}'
//
// With -workers, rtrankd also acts as the coordinator front end of a
// gpserver cluster: the listed workers must serve the stripes of the same
// graph, and requests may then select "method": "distributed" to fan the
// exact solve out across them, or "method": "2sbound-remote" to run the
// online search against the fleet's rows through the row cache (see
// docs/API.md). A mutation then also
// reconciles the fleet before the new epoch serves, shipping only stripes
// the commit changed (docs/OPERATIONS.md walks through the lifecycle).
//
// Every request runs under the HTTP request context, so a disconnecting
// client cancels its in-flight computation; per-request alpha/beta/epsilon
// override the engine defaults. The server enforces read/write timeouts and
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight queries.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"os/signal"
	"syscall"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
)

// rankRequest is the JSON body of POST /rank.
type rankRequest struct {
	// Query lists query node labels; Nodes lists raw node IDs. At least one
	// of the two must be non-empty; they are combined when both are given.
	Query []string               `json:"query,omitempty"`
	Nodes []roundtriprank.NodeID `json:"nodes,omitempty"`
	K     int                    `json:"k"`
	// Method is auto (default), exact, distributed or 2sbound-remote (both
	// require -workers), 2sbound, gs, gupta or sarkar.
	Method string `json:"method,omitempty"`
	// Type restricts results to the named node type (as registered on the
	// graph, e.g. "venue"); empty keeps all types.
	Type string `json:"type,omitempty"`
	// KeepQuery keeps the query nodes in the results (default: excluded).
	KeepQuery bool     `json:"keep_query,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Beta      *float64 `json:"beta,omitempty"`
	Epsilon   float64  `json:"epsilon,omitempty"`
}

type rankResult struct {
	Node  roundtriprank.NodeID `json:"node"`
	Label string               `json:"label"`
	Score float64              `json:"score"`
}

// rankRows mirrors roundtriprank.RowQueryStats on the wire: the row-serving
// footprint of a 2sbound-remote query.
type rankRows struct {
	Fetched     int64 `json:"fetched"`
	RPCs        int64 `json:"rpcs"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

type rankResponse struct {
	Results   []rankResult `json:"results"`
	Method    string       `json:"method"`
	Converged bool         `json:"converged"`
	Rounds    int          `json:"rounds,omitempty"`
	Rows      *rankRows    `json:"rows,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// maxRequestBytes caps the /rank request body; a ranking request is a few
// labels and scalars, so 1 MiB is generous.
const maxRequestBytes = 1 << 20

// maxMutationBytes caps the /v1/edges request body. An ingestion batch is
// bounded JSON, not a graph upload; bulk loads go through -graph files.
const maxMutationBytes = 64 << 20

type server struct {
	engine  *roundtriprank.Engine
	workers int

	// mutateMu serializes /v1/edges: each batch stages its delta against the
	// snapshot it resolved labels on, so two concurrent batches must not
	// interleave between staging and Apply.
	mutateMu sync.Mutex
}

// graph returns the currently served snapshot. Label resolution and result
// labeling go through it; the engine itself pins a snapshot per query.
func (s *server) graph() *roundtriprank.Graph {
	return s.engine.View().(*roundtriprank.Graph)
}

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale     = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers   = flag.String("workers", "", "comma-separated gpserver base URLs serving this graph's stripes; enables \"method\": \"distributed\"")
		writeTmo  = flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (must cover the slowest query)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := cliutil.LoadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	var opts []roundtriprank.Option
	var transports []roundtriprank.Transport
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			transports = append(transports, roundtriprank.DialWorker(u))
		}
		opts = append(opts, roundtriprank.WithWorkers(transports...))
	}
	engine, err := roundtriprank.NewEngine(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{engine: engine, workers: len(transports)}

	mux := http.NewServeMux()
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/epoch", s.handleEpoch)
	mux.HandleFunc("POST /v1/edges", s.handleEdges)

	cfg := cliutil.HTTPServerConfig{WriteTimeout: *writeTmo}
	err = cliutil.ListenAndServe(ctx, *listen, mux, cfg, func(a net.Addr) {
		log.Printf("rtrankd serving %d nodes, %d edges on %s (%d stripe workers)",
			g.NumNodes(), g.NumEdges(), a, len(transports))
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rpcs, retries := s.engine.ClusterStats()
	rs := s.engine.RowServeStats()
	g := s.graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"nodes":   g.NumNodes(),
		"edges":   g.NumEdges(),
		"epoch":   g.Epoch(),
		"workers": s.workers,
		"cluster": map[string]any{"rpcs": rpcs, "retries": retries},
		"rows": map[string]any{
			"fetched":      rs.RowsFetched,
			"rpcs":         rs.RowRPCs,
			"retries":      rs.RowRetries,
			"cache_hits":   rs.CacheHits,
			"cache_misses": rs.CacheMisses,
			"evictions":    rs.CacheEvictions,
			"cached":       rs.CachedRows,
		},
	})
}

// handleEpoch reports the serving snapshot, so operators and deploy scripts
// can watch an epoch rollover land.
func (s *server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	g := s.graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":       g.Epoch(),
		"fingerprint": fmt.Sprintf("%08x", roundtriprank.GraphFingerprint(g)),
		"nodes":       g.NumNodes(),
		"edges":       g.NumEdges(),
	})
}

// nodeSpec names a node to add: a label plus an optional registered type name.
type nodeSpec struct {
	Type  string `json:"type,omitempty"`
	Label string `json:"label"`
}

// edgeSpec names one edge op by endpoint labels. Weight defaults to 1 on set
// and is ignored on remove; Undirected applies the op in both directions.
type edgeSpec struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Weight     float64 `json:"weight,omitempty"`
	Undirected bool    `json:"undirected,omitempty"`
}

// mutateRequest is the JSON body of POST /v1/edges: one atomic ingestion
// batch, applied as a single commit (all ops land in one new epoch, or none).
type mutateRequest struct {
	AddNodes    []nodeSpec `json:"add_nodes,omitempty"`
	Set         []edgeSpec `json:"set,omitempty"`
	Remove      []edgeSpec `json:"remove,omitempty"`
	RemoveNodes []string   `json:"remove_nodes,omitempty"`
}

type mutateResponse struct {
	Epoch           uint64  `json:"epoch"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	AddedNodes      int     `json:"added_nodes"`
	SetEdges        int     `json:"set_edges"`
	RemovedEdges    int     `json:"removed_edges"`
	RemovedNodes    int     `json:"removed_nodes"`
	StripesShipped  int     `json:"stripes_shipped"`
	StripesRetagged int     `json:"stripes_retagged"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// handleEdges stages one mutation batch as a Delta and applies it: the engine
// commits a fresh snapshot one epoch later and swaps to it atomically, after
// reconciling any configured worker fleet. In-flight queries are unaffected
// (they finish on their epoch).
func (s *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var in mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutationBytes)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(in.AddNodes) == 0 && len(in.Set) == 0 && len(in.Remove) == 0 && len(in.RemoveNodes) == 0 {
		httpError(w, http.StatusBadRequest, "empty mutation: provide add_nodes, set, remove or remove_nodes")
		return
	}
	start := time.Now()
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	d, err := s.buildDelta(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.engine.Apply(r.Context(), d)
	if err != nil {
		var ce *roundtriprank.ClusterError
		if errors.As(err, &ce) {
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	an, se, re, rn := d.Ops()
	writeJSON(w, http.StatusOK, mutateResponse{
		Epoch:           res.Epoch,
		Nodes:           res.Graph.NumNodes(),
		Edges:           res.Graph.NumEdges(),
		AddedNodes:      an,
		SetEdges:        se,
		RemovedEdges:    re,
		RemovedNodes:    rn,
		StripesShipped:  res.StripesShipped,
		StripesRetagged: res.StripesRetagged,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

// buildDelta translates a wire mutation batch into a staged Delta against the
// current snapshot. Caller holds mutateMu.
func (s *server) buildDelta(in mutateRequest) (*roundtriprank.Delta, error) {
	g := s.graph()
	d := roundtriprank.NewDelta(g)
	for _, ns := range in.AddNodes {
		if ns.Label == "" {
			return nil, fmt.Errorf("add_nodes entry is missing a label")
		}
		var t roundtriprank.NodeType
		if ns.Type != "" {
			var err error
			if t, err = cliutil.TypeByName(g, ns.Type); err != nil {
				return nil, err
			}
		}
		d.AddNode(t, ns.Label)
	}
	node := func(label string) (roundtriprank.NodeID, error) {
		v := d.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			return v, fmt.Errorf("node %q not found (add it via add_nodes first)", label)
		}
		return v, nil
	}
	for _, es := range in.Set {
		from, err := node(es.From)
		if err != nil {
			return nil, err
		}
		to, err := node(es.To)
		if err != nil {
			return nil, err
		}
		w := es.Weight
		if w == 0 {
			w = 1
		}
		if es.Undirected {
			err = d.SetUndirectedEdge(from, to, w)
		} else {
			err = d.SetEdge(from, to, w)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, es := range in.Remove {
		from, err := node(es.From)
		if err != nil {
			return nil, err
		}
		to, err := node(es.To)
		if err != nil {
			return nil, err
		}
		if es.Undirected {
			err = d.RemoveUndirectedEdge(from, to)
		} else {
			err = d.RemoveEdge(from, to)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, label := range in.RemoveNodes {
		v, err := node(label)
		if err != nil {
			return nil, err
		}
		if err := d.RemoveNode(v); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON request to /rank")
		return
	}
	var in rankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := s.buildRequest(s.graph(), in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.engine.Rank(r.Context(), req)
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away; nothing useful to write.
			return
		}
		// Cluster trouble is a backend condition, not a caller mistake:
		// answer 502 so clients and load balancers treat it as retryable.
		var ce *roundtriprank.ClusterError
		if errors.As(err, &ce) {
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := rankResponse{
		Results:   make([]rankResult, len(resp.Results)),
		Method:    resp.Method.String(),
		Converged: resp.Converged,
		Rounds:    resp.Rounds,
		ElapsedMS: float64(resp.Elapsed.Microseconds()) / 1000.0,
	}
	if resp.Rows != nil {
		out.Rows = &rankRows{
			Fetched:     resp.Rows.Fetched,
			RPCs:        resp.Rows.RPCs,
			CacheHits:   resp.Rows.CacheHits,
			CacheMisses: resp.Rows.CacheMisses,
		}
	}
	// Labels come from the snapshot current *after* the ranking: it is at
	// least as new as the one the query ran on, and labels are append-only
	// across epochs, so every result ID resolves even if a mutation landed
	// mid-query.
	g := s.graph()
	for i, res := range resp.Results {
		out.Results[i] = rankResult{Node: res.Node, Label: g.Label(res.Node), Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// buildRequest translates the wire request into an Engine request, resolving
// labels against the given snapshot.
func (s *server) buildRequest(g *roundtriprank.Graph, in rankRequest) (roundtriprank.Request, error) {
	var nodes []roundtriprank.NodeID
	for _, label := range in.Query {
		v := g.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			return roundtriprank.Request{}, fmt.Errorf("query node %q not found", label)
		}
		nodes = append(nodes, v)
	}
	nodes = append(nodes, in.Nodes...)
	if len(nodes) == 0 {
		return roundtriprank.Request{}, fmt.Errorf("empty query: provide \"query\" labels or \"nodes\" IDs")
	}
	method, err := roundtriprank.ParseMethod(in.Method)
	if err != nil {
		return roundtriprank.Request{}, err
	}
	filter := &roundtriprank.Filter{ExcludeQuery: !in.KeepQuery}
	if in.Type != "" {
		t, err := cliutil.TypeByName(g, in.Type)
		if err != nil {
			return roundtriprank.Request{}, err
		}
		filter.Types = []roundtriprank.NodeType{t}
	}
	k := in.K
	if k == 0 {
		k = 10
	}
	return roundtriprank.Request{
		Query:   roundtriprank.MultiNode(nodes...),
		K:       k,
		Method:  method,
		Filter:  filter,
		Alpha:   in.Alpha,
		Beta:    in.Beta,
		Epsilon: in.Epsilon,
	}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
