// Command rtrank is a command-line query tool for RoundTripRank. It loads a
// graph (a gob file written with graph.WriteFile, or a generated synthetic
// dataset), resolves query node labels, and prints the top-K ranking either by
// exact computation or online with 2SBound.
//
// Examples:
//
//	rtrank -dataset bibnet -scale 0.3 -query term:spatio,term:temporal,term:data -type venue -k 5
//	rtrank -graph mygraph.gob -query node:42 -k 10 -online -epsilon 0.01
//	rtrank -dataset qlog -query "phrase:cheap flight ticket" -type url -beta 0.3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"roundtriprank"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale     = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		querySpec = flag.String("query", "", "comma-separated query node labels")
		typeName  = flag.String("type", "", "restrict results to this node type name (paper, author, term, venue, phrase, url)")
		k         = flag.Int("k", 10, "number of results")
		alpha     = flag.Float64("alpha", 0.25, "teleport probability")
		beta      = flag.Float64("beta", 0.5, "specificity bias (0 = importance only, 1 = specificity only)")
		online    = flag.Bool("online", false, "use the 2SBound online top-K algorithm instead of exact computation")
		epsilon   = flag.Float64("epsilon", 0.01, "approximation slack for -online")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	if *querySpec == "" {
		log.Fatal("missing -query: provide one or more node labels separated by commas")
	}
	var queryNodes []roundtriprank.NodeID
	for _, label := range strings.Split(*querySpec, ",") {
		label = strings.TrimSpace(label)
		v := g.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			log.Fatalf("query node %q not found", label)
		}
		queryNodes = append(queryNodes, v)
	}
	query := roundtriprank.MultiNode(queryNodes...)

	ranker, err := roundtriprank.NewRanker(g, roundtriprank.WithAlpha(*alpha), roundtriprank.WithBeta(*beta))
	if err != nil {
		log.Fatal(err)
	}

	var filter func(roundtriprank.NodeID) bool
	if *typeName != "" {
		t, err := typeByName(*typeName)
		if err != nil {
			log.Fatal(err)
		}
		filter = roundtriprank.TypeFilter(g, t, queryNodes...)
	}

	var results []roundtriprank.Result
	if *online {
		results, err = ranker.TopK(query, *k, *epsilon)
	} else {
		results, err = ranker.Rank(query, *k, filter)
	}
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%2d. %-50s %.6g\n", i+1, g.Label(r.Node), r.Score)
	}
}

func loadGraph(path, dataset string, scale float64) (*roundtriprank.Graph, error) {
	switch {
	case path != "":
		return graph.ReadFile(path)
	case dataset == "bibnet":
		net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	case dataset == "qlog":
		qlog, err := datasets.GenerateQLog(datasets.ScaledQLogConfig(scale))
		if err != nil {
			return nil, err
		}
		return qlog.Graph, nil
	default:
		return nil, fmt.Errorf("provide either -graph or -dataset bibnet|qlog")
	}
}

func typeByName(name string) (roundtriprank.NodeType, error) {
	switch strings.ToLower(name) {
	case "paper":
		return datasets.TypePaper, nil
	case "author":
		return datasets.TypeAuthor, nil
	case "term":
		return datasets.TypeTerm, nil
	case "venue":
		return datasets.TypeVenue, nil
	case "phrase":
		return datasets.TypePhrase, nil
	case "url":
		return datasets.TypeURL, nil
	default:
		return 0, fmt.Errorf("unknown node type %q", name)
	}
}
