// Command rtrank is a command-line query tool for RoundTripRank. It loads a
// graph (a gob file written with graph.WriteFile, or a generated synthetic
// dataset), resolves query node labels, and runs one request through the
// Engine, printing the top-K ranking.
//
// Examples:
//
//	rtrank -dataset bibnet -scale 0.3 -query term:spatio,term:temporal,term:data -type venue -k 5
//	rtrank -graph mygraph.gob -query node:42 -k 10 -method 2sbound -epsilon 0.01
//	rtrank -dataset qlog -query "phrase:cheap flight ticket" -type url -beta 0.3
//
// The -method flag selects the execution path: auto (the default planner),
// exact, distributed (fan the exact solve out to the gpserver workers listed
// in -workers), 2sbound, or one of the baseline bound schemes gs, gupta,
// sarkar. Interrupting the process (Ctrl-C) cancels the in-flight query.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to a gob-encoded graph (exclusive with -dataset)")
		dataset    = flag.String("dataset", "", "synthetic dataset to generate: bibnet or qlog")
		scale      = flag.Float64("scale", 0.3, "scale factor for synthetic datasets")
		querySpec  = flag.String("query", "", "comma-separated query node labels")
		typeName   = flag.String("type", "", "restrict results to this node type name as registered on the graph (e.g. paper, author, venue)")
		k          = flag.Int("k", 10, "number of results")
		alpha      = flag.Float64("alpha", 0.25, "teleport probability")
		beta       = flag.Float64("beta", 0.5, "specificity bias (0 = importance only, 1 = specificity only)")
		methodName = flag.String("method", "auto", "execution method: auto, exact, distributed, 2sbound, gs, gupta, sarkar")
		epsilon    = flag.Float64("epsilon", 0.01, "approximation slack for the online methods")
		keepQuery  = flag.Bool("keep-query", false, "keep the query nodes themselves in the results")
		workers    = flag.String("workers", "", "comma-separated gpserver base URLs serving this graph's stripes (for -method distributed)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := cliutil.LoadGraph(*graphPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	if *querySpec == "" {
		log.Fatal("missing -query: provide one or more node labels separated by commas")
	}
	var queryNodes []roundtriprank.NodeID
	for _, label := range strings.Split(*querySpec, ",") {
		label = strings.TrimSpace(label)
		v := g.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			log.Fatalf("query node %q not found", label)
		}
		queryNodes = append(queryNodes, v)
	}

	method, err := roundtriprank.ParseMethod(*methodName)
	if err != nil {
		log.Fatal(err)
	}
	filter := &roundtriprank.Filter{ExcludeQuery: !*keepQuery}
	if *typeName != "" {
		t, err := cliutil.TypeByName(g, *typeName)
		if err != nil {
			log.Fatal(err)
		}
		filter.Types = []roundtriprank.NodeType{t}
	}

	var opts []roundtriprank.Option
	if *workers != "" {
		var transports []roundtriprank.Transport
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				transports = append(transports, roundtriprank.DialWorker(u))
			}
		}
		opts = append(opts, roundtriprank.WithWorkers(transports...))
	}
	engine, err := roundtriprank.NewEngine(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := engine.Rank(ctx, roundtriprank.Request{
		Query:   roundtriprank.MultiNode(queryNodes...),
		K:       *k,
		Method:  method,
		Filter:  filter,
		Alpha:   *alpha,
		Beta:    roundtriprank.Float64(*beta),
		Epsilon: *epsilon,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "method: %s, converged: %v, elapsed: %s\n",
		resp.Method, resp.Converged, resp.Elapsed.Round(resp.Elapsed/100+1))
	for i, r := range resp.Results {
		fmt.Printf("%2d. %-50s %.6g\n", i+1, g.Label(r.Node), r.Score)
	}
}
