package roundtriprank

import (
	"fmt"

	"roundtriprank/internal/fleet"
)

// This file is the public surface of fleet self-organization: instead of a
// static WithWorkers list (one transport per stripe, one dead worker stalls
// the fleet), an Engine configured with WithFleet serves through a Fleet
// manager — workers register and heartbeat, stripes are R-way replicated
// over the live members by rendezvous placement, and every multiply/row RPC
// fails over between replicas. See docs/OPERATIONS.md for the runbook.

// Fleet is the coordinator-side fleet manager: membership table, replica
// placement, and reconciliation. Create one with NewFleet, let workers
// register (fleet HTTP endpoints, or Table().Register for in-process
// fixtures), call Reconcile to place stripes, and hand it to an Engine with
// WithFleet.
type Fleet = fleet.Manager

// FleetOptions configures a Fleet; see fleet.ManagerOptions.
type FleetOptions = fleet.ManagerOptions

// NewFleet returns a fleet manager for a Stripes-way striped deployment with
// R-way replication (FleetOptions.Replication, default 2).
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.NewManager(opts) }

// WithFleet configures the engine to serve its distributed and remote-online
// methods through a self-organizing worker fleet: the engine's stripe
// transports become the manager's per-stripe replica groups (stable objects
// whose member lists the manager swaps as workers come and go), and
// Engine.Apply reconciles membership and placement instead of walking a
// static worker list. Mutually exclusive with WithWorkers.
func WithFleet(m *Fleet) Option {
	return func(e *Engine) error {
		if m == nil {
			return fmt.Errorf("roundtriprank: WithFleet needs a manager")
		}
		if len(e.workers) > 0 {
			return fmt.Errorf("roundtriprank: WithFleet and WithWorkers are mutually exclusive")
		}
		e.fleetMgr = m
		e.workers = m.Transports()
		return nil
	}
}

// ClusterHealth is the fleet-aware serving health snapshot: RPC/retry
// counters of the current epoch's coordinator and row view (like
// ClusterStats), failover/hedge counters of the replica groups, and the
// membership table's liveness census. Engines configured with WithWorkers
// report the RPC counters only.
type ClusterHealth struct {
	// RPCs and Retries mirror ClusterStats.
	RPCs, Retries int64
	// Failovers counts calls that succeeded only after routing around a
	// failed replica; Hedges counts row fetches whose hedge fired. Both zero
	// without a fleet manager.
	Failovers, Hedges int64
	// MembersAlive/Suspect/Dead/Draining are the membership census; all zero
	// without a fleet manager.
	MembersAlive, MembersSuspect, MembersDead, MembersDraining int
	// Replication is the configured replica count (zero without a fleet).
	Replication int
}

// ClusterHealth reports the engine's distributed serving health. It is cheap
// (atomic counter reads plus one mutex'd table scan) and safe to call from a
// metrics scrape.
func (e *Engine) ClusterHealth() ClusterHealth {
	var h ClusterHealth
	h.RPCs, h.Retries = e.ClusterStats()
	if e.fleetMgr == nil {
		return h
	}
	h.Failovers, h.Hedges = e.fleetMgr.Failovers()
	st := e.fleetMgr.Table().Stats()
	h.MembersAlive, h.MembersSuspect, h.MembersDead, h.MembersDraining =
		st.Alive, st.Suspect, st.Dead, st.Draining
	h.Replication = e.fleetMgr.Replication()
	return h
}
