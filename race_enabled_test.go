//go:build race

package roundtriprank

// raceEnabled reports whether the race detector is compiled in; a few tests
// scale their heaviest inputs down under it.
const raceEnabled = true
