// Package roundtriprank is the public API of this repository: a from-scratch
// Go implementation of RoundTripRank and RoundTripRank+ (Fang, Chang, Lauw —
// "RoundTripRank: Graph-based Proximity with Importance and Specificity",
// ICDE 2013) together with the 2SBound online top-K algorithm.
//
// RoundTripRank measures the proximity of a node v to a query q as the
// probability that a random round trip starting and ending at q passes through
// v, which integrates importance (reachability from the query, as in
// Personalized PageRank) with specificity (reachability back to the query) in
// one coherent random walk. RoundTripRank+ exposes a specificity bias β ∈
// [0, 1] that trades the two senses off: β = 0 is pure importance, β = 1 pure
// specificity, β = 0.5 the balanced RoundTripRank. docs/TUNING.md develops
// the operational intuition for α, β, ε and the convergence tolerance.
//
// # Queries
//
// The entry point is the Engine, which executes Requests — each carrying the
// query distribution, K, per-query α/β/ε overrides, a declarative Filter and
// an execution Method — and returns Responses. The default Method, Auto,
// plans exact full-vector solves on small in-memory graphs and the online
// 2SBound branch-and-bound search on large (or remote, AP/GP-distributed)
// ones; Exact, TwoSBound and BoundScheme select a path explicitly, and
// Distributed fans the exact solve out to a cluster of stripe workers
// configured with WithWorkers (see distributed.go and ARCHITECTURE.md).
// Engine.RankBatch amortizes a batch of queries by sharing single-node score
// vectors through the Linearity Theorem, and every computation honors context
// cancellation. The Ranker type is the deprecated pre-Engine API, kept as a
// thin shim.
//
// # Live graphs
//
// Graphs are immutable snapshots versioned by an epoch. A Delta stages a
// batch of mutations (node additions, edge upserts, edge and node removals)
// against one snapshot; Commit merges it into a fresh Graph one epoch later,
// and Engine.Apply commits and swaps the engine's serving snapshot
// atomically — in-flight queries finish on the epoch they planned against,
// the epoch-keyed vector cache drops superseded entries, and a configured
// worker fleet is reconciled stripe by stripe (RedeployStripes ships only
// stripes the commit changed). docs/OPERATIONS.md covers the rollover
// lifecycle from an operator's perspective.
package roundtriprank
