package roundtriprank

import (
	"strings"
	"testing"
)

// FuzzParseMethod checks that method parsing never panics, accepts names
// case-insensitively, and round-trips through Method.String for every name it
// accepts.
func FuzzParseMethod(f *testing.F) {
	for _, seed := range []string{
		"", "auto", "exact", "2sbound", "2SBound", "gs", "g+s", "G+S",
		"gupta", "sarkar", "AUTO", "Exact", "bogus", "2sbound ", "g +s",
		"distributed", "Distributed",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		m, err := ParseMethod(name)
		if err != nil {
			// Rejected names must be rejected consistently regardless of case.
			if _, err2 := ParseMethod(strings.ToLower(name)); err2 == nil {
				t.Fatalf("ParseMethod(%q) failed but lowercase succeeded", name)
			}
			return
		}
		printed := m.String()
		rt, err := ParseMethod(printed)
		if err != nil {
			t.Fatalf("ParseMethod(%q) = %v, but its String %q does not parse: %v", name, m, printed, err)
		}
		if rt != m {
			t.Fatalf("round trip changed method: %q -> %v -> %q -> %v", name, m, printed, rt)
		}
		// Unicode case mapping is not always an involution (Kelvin sign, final
		// sigma, ...), so only assert case-insensitivity when uppercasing
		// preserves the lowercase form.
		if upper := strings.ToUpper(name); strings.ToLower(upper) == strings.ToLower(name) {
			if got, err := ParseMethod(upper); err != nil || got != m {
				t.Fatalf("ParseMethod is not case-insensitive for %q", name)
			}
		}
	})
}
