package roundtriprank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// Remote-online parity suite: the acceptance gate of the row-serving
// subsystem. 2SBound over a RemoteCSR must return the identical top-K —
// nodes and bit-identical scores — as the local flat path on every test
// graph for any worker count, while the coordinator fetches no more rows
// than the searcher touches and answers repeats from cache without RPCs.

// localTouched runs the local flat searcher with the engine-default
// parameters and returns how many rows its working set could have read. The
// remote searcher executes the same arithmetic, so its fetch count must stay
// within this bound.
func localTouched(t *testing.T, g *Graph, q NodeID, k int, beta float64) int {
	t.Helper()
	res, err := topk.TopK(context.Background(), g, walk.SingleNode(q), topk.Options{
		K: k, Epsilon: 0, Alpha: 0.25, Beta: beta, Scheme: topk.Scheme2SBound,
	})
	if err != nil {
		t.Fatalf("local flat search: %v", err)
	}
	return res.Touched
}

// TestRemoteParityAgainstLocalOnline pins, for every test graph and 2 and 3
// HTTP workers, that TwoSBoundRemote equals local TwoSBound bit for bit at
// eps=0, that the query's network footprint stays within the searcher's
// touched set, and that an identical repeat costs zero RPCs.
func TestRemoteParityAgainstLocalOnline(t *testing.T) {
	for _, pg := range parityGraphs() {
		for _, workers := range []int{2, 3} {
			engine, err := NewEngine(pg.graph, WithWorkers(httpWorkerCluster(t, pg.graph, workers)...))
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", pg.name, err)
			}
			for _, q := range pg.queries {
				for _, beta := range []float64{0.3, 0.5} {
					t.Run(fmt.Sprintf("%s/w%d/q%d/beta%.1f", pg.name, workers, q, beta), func(t *testing.T) {
						exact, err := engine.Rank(context.Background(), Request{
							Query: SingleNode(q), K: pg.graph.NumNodes(), Method: Exact, Beta: Float64(beta),
						})
						if err != nil {
							t.Fatalf("exact: %v", err)
						}
						k := gapK(exact.Results, 10)
						if k < 1 {
							t.Skip("top ranks tie exactly; top-K set not well defined at eps=0")
						}
						req := Request{Query: SingleNode(q), K: k, Epsilon: 0, Beta: Float64(beta)}
						req.Method = TwoSBound
						local, err := engine.Rank(context.Background(), req)
						if err != nil {
							t.Fatalf("local 2SBound: %v", err)
						}
						req.Method = TwoSBoundRemote
						remote, err := engine.Rank(context.Background(), req)
						if err != nil {
							t.Fatalf("remote 2SBound: %v", err)
						}
						requireBitIdentical(t, "remote-vs-local", remote, local)
						if remote.Method != TwoSBoundRemote || remote.Converged != local.Converged || remote.Rounds != local.Rounds {
							t.Fatalf("remote response meta differs: %+v vs %+v", remote, local)
						}
						if remote.Rows == nil {
							t.Fatalf("remote response carries no row stats")
						}
						if local.Rows != nil {
							t.Fatalf("local response carries row stats: %+v", local.Rows)
						}

						// O(touched) serving: the cold-cache footprint of this
						// query (all rows it fetched, ever, across engines'
						// shared cache) stays within the searcher's touched
						// set. The cache may have served some rows from
						// earlier queries, so Fetched is a lower fraction.
						touched := localTouched(t, pg.graph, q, k, beta)
						if remote.Rows.Fetched > int64(touched) {
							t.Errorf("fetched %d rows, searcher touches only %d", remote.Rows.Fetched, touched)
						}
						if remote.Rows.CacheMisses != remote.Rows.Fetched {
							t.Errorf("misses %d != fetched %d", remote.Rows.CacheMisses, remote.Rows.Fetched)
						}

						// A repeat of the identical query is answered entirely
						// from cache: zero RPCs, zero fetches, bit-identical.
						again, err := engine.Rank(context.Background(), req)
						if err != nil {
							t.Fatalf("repeat remote query: %v", err)
						}
						requireBitIdentical(t, "repeat", again, remote)
						if again.Rows.RPCs != 0 || again.Rows.Fetched != 0 {
							t.Errorf("repeat query issued %d RPCs / %d fetches, want 0/0", again.Rows.RPCs, again.Rows.Fetched)
						}
						if again.Rows.CacheHits == 0 {
							t.Errorf("repeat query recorded no cache hits")
						}
					})
				}
			}
			if rpcs, _ := engine.ClusterStats(); rpcs == 0 {
				t.Errorf("%s: no row RPCs folded into ClusterStats", pg.name)
			}
		}
	}
}

// TestRemoteTinyCacheStaysCorrect squeezes remote queries through a 2-row
// cache: evictions must not corrupt results.
func TestRemoteTinyCacheStaysCorrect(t *testing.T) {
	pg := parityGraphs()[0]
	engine, err := NewEngine(pg.graph,
		WithWorkers(httpWorkerCluster(t, pg.graph, 2)...), WithRowCacheRows(2))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := Request{Query: SingleNode(pg.queries[0]), K: 5, Epsilon: 0}
	req.Method = TwoSBound
	local, err := engine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	req.Method = TwoSBoundRemote
	remote, err := engine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("remote: %v", err)
	}
	requireBitIdentical(t, "tiny-cache", remote, local)
	st := engine.RowServeStats()
	if st.CacheEvictions == 0 {
		t.Errorf("2-row cache recorded no evictions (stats %+v)", st)
	}
	if st.CachedRows > 2 {
		t.Errorf("cache holds %d rows, capacity 2", st.CachedRows)
	}
}

// TestRemoteRequiresWorkers pins the planning error on an engine without a
// fleet.
func TestRemoteRequiresWorkers(t *testing.T) {
	pg := parityGraphs()[0]
	engine, err := NewEngine(pg.graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3, Method: TwoSBoundRemote})
	if err == nil || !strings.Contains(err.Error(), "WithWorkers") {
		t.Fatalf("expected a WithWorkers planning error, got %v", err)
	}
}

// TestRemoteAutoPlansFleet pins Auto's preference order: a graph beyond the
// exact limit with a fleet configured is served remotely.
func TestRemoteAutoPlansFleet(t *testing.T) {
	pg := parityGraphs()[0]
	workers, err := LoopbackWorkers(pg.graph, 2)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(workers...), WithExactLimit(1))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	resp, err := engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if resp.Method != TwoSBoundRemote || resp.Rows == nil {
		t.Fatalf("Auto planned %s (rows %v), want %s", resp.Method, resp.Rows, TwoSBoundRemote)
	}
}

// TestRemoteRejectsForeignFleet pins the graph-identity check on the row
// path, mirroring the exact-path test.
func TestRemoteRejectsForeignFleet(t *testing.T) {
	pg := parityGraphs()[0]
	impostor := testgraphsCycle(t, pg.graph.NumNodes())
	workers, err := LoopbackWorkers(impostor, 2)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(workers...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3, Method: TwoSBoundRemote})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign fleet accepted (err=%v)", err)
	}
	var ce *ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("fleet mismatch not wrapped in ClusterError: %v", err)
	}
}

// TestRemoteSurvivesWorkerRestart is the chaos gate of the row path: a worker
// answering 503 for its first row fetches (dying and restarting mid-query)
// must be retried and the query must succeed bit-identically; a worker that
// never recovers must fail the query with a classified, stripe-attributed
// ClusterError instead of hanging the searcher.
func TestRemoteSurvivesWorkerRestart(t *testing.T) {
	pg := parityGraphs()[2] // cycle: every query touches both stripes
	var rowCalls, fail atomic.Int32
	fail.Store(2)
	cluster := make([]Transport, 2)
	for i := 0; i < 2; i++ {
		s, err := distributed.BuildStripe(pg.graph, i, 2)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		h := distributed.NewWorker(s).Handler()
		if i == 1 {
			inner := h
			h = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/v1/rows") {
					rowCalls.Add(1)
					if fail.Add(-1) >= 0 {
						http.Error(rw, `{"error":"worker restarting"}`, http.StatusServiceUnavailable)
						return
					}
				}
				inner.ServeHTTP(rw, r)
			})
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		cluster[i] = DialWorker(srv.URL)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(cluster...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := Request{Query: SingleNode(pg.queries[0]), K: 5, Epsilon: 0}
	req.Method = TwoSBound
	local, err := engine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	req.Method = TwoSBoundRemote
	remote, err := engine.Rank(context.Background(), req)
	if err != nil {
		t.Fatalf("remote query through a restarting worker: %v", err)
	}
	requireBitIdentical(t, "restarted-worker", remote, local)
	if _, retries := engine.ClusterStats(); retries < 2 {
		t.Errorf("restart absorbed with %d retries, want >= 2", retries)
	}
	if rowCalls.Load() < 3 {
		t.Errorf("row endpoint saw %d calls, expected the failed and retried fetches", rowCalls.Load())
	}

	// The worker dies for good: a fresh engine (cold cache) must fail loudly
	// with stripe attribution, classified transient so callers know a retry
	// after the worker returns is worthwhile.
	fail.Store(1 << 30)
	dead, err := NewEngine(pg.graph, WithWorkers(cluster...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = dead.Rank(context.Background(), req)
	if err == nil {
		t.Fatalf("remote query through a dead worker succeeded")
	}
	var ce *ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("dead worker not reported as ClusterError: %v", err)
	}
	if !distributed.IsTransient(err) {
		t.Errorf("dead worker not classified transient: %v", err)
	}
	if !strings.Contains(err.Error(), "stripe 1") {
		t.Errorf("error does not attribute the failing stripe: %v", err)
	}
}

// TestRemoteEpochRollover pins the rollover contract of the row path: a
// query pinned to the old epoch keeps finishing with bit-identical results —
// served from cache, zero new RPCs — while Engine.Apply commits and
// redeploys; and the first query of the new epoch carries the unchanged
// stripes' cached rows over.
func TestRemoteEpochRollover(t *testing.T) {
	ctx := context.Background()
	base := epochBase(t)
	const workers = 3
	engine, err := NewEngine(base, WithWorkers(httpWorkerCluster(t, base, workers)...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	qnode := base.NodeByLabel("paper:0")
	req := Request{Query: SingleNode(qnode), K: 5, Method: TwoSBoundRemote}
	before, err := engine.Rank(ctx, req)
	if err != nil {
		t.Fatalf("pre-rollover remote query: %v", err)
	}

	// The epoch-0 row view a long-running query would be pinned to.
	oldView := engine.snap.Load().rows.Load()
	if oldView == nil || oldView.Epoch() != 0 {
		t.Fatalf("no epoch-0 row view connected")
	}
	tkOpts := topk.Options{K: 5, Epsilon: 0, Alpha: engine.Alpha(), Beta: engine.Beta(), Scheme: topk.Scheme2SBound}
	preSess := oldView.Session(ctx)
	pre, err := topk.TopKRows(ctx, preSess, walk.SingleNode(qnode), tkOpts)
	if err != nil {
		t.Fatalf("pre-rollover pinned query: %v", err)
	}

	// Commit a single reweight: 2 stripes change content, 1 is retagged.
	d := NewDelta(base)
	if err := d.SetEdge(qnode, base.NodeByLabel("author:0"), 5); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Apply(ctx, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.StripesShipped != 2 || res.StripesRetagged != 1 {
		t.Fatalf("redeploy shipped %d / retagged %d, want 2/1", res.StripesShipped, res.StripesRetagged)
	}

	// The old-epoch query finishes after the fleet moved on: bit-identical,
	// entirely from cache.
	postSess := oldView.Session(ctx)
	post, err := topk.TopKRows(ctx, postSess, walk.SingleNode(qnode), tkOpts)
	if err != nil {
		t.Fatalf("pinned query after rollover: %v", err)
	}
	if len(post.TopK) != len(pre.TopK) {
		t.Fatalf("pinned query returned %d results after rollover, %d before", len(post.TopK), len(pre.TopK))
	}
	for i := range pre.TopK {
		if post.TopK[i].Node != pre.TopK[i].Node ||
			math.Float64bits(post.TopK[i].Score) != math.Float64bits(pre.TopK[i].Score) {
			t.Fatalf("pinned query rank %d changed across the rollover: %+v vs %+v", i, post.TopK[i], pre.TopK[i])
		}
	}
	if st := postSess.Stats(); st.RPCs != 0 || st.Fetched != 0 {
		t.Fatalf("pinned query after rollover issued %d RPCs / %d fetches, want 0/0", st.RPCs, st.Fetched)
	}

	// The new epoch answers remotely, agrees with the local path on the
	// committed graph, and the retagged stripe's rows come from cache.
	after, err := engine.Rank(ctx, req)
	if err != nil {
		t.Fatalf("post-rollover remote query: %v", err)
	}
	reqLocal := req
	reqLocal.Method = TwoSBound
	localAfter, err := engine.Rank(ctx, reqLocal)
	if err != nil {
		t.Fatalf("post-rollover local query: %v", err)
	}
	requireBitIdentical(t, "post-rollover", after, localAfter)
	if after.Rows.CacheHits == 0 {
		t.Errorf("new epoch carried no cached rows over (stats %+v)", after.Rows)
	}
	// The reweight must actually change the ranking somewhere (otherwise the
	// rollover proved nothing).
	changed := len(after.Results) != len(before.Results)
	for i := 0; !changed && i < len(before.Results); i++ {
		changed = after.Results[i] != before.Results[i]
	}
	if !changed {
		t.Errorf("rankings identical across a reweighting commit")
	}
}

// TestRemoteConcurrentRank runs TwoSBoundRemote queries from many goroutines
// against one engine — the -race matrix exercises the row cache's
// single-flight and LRU paths here — and pins every answer to the serial
// baseline.
func TestRemoteConcurrentRank(t *testing.T) {
	pg := parityGraphs()[0]
	workers, err := LoopbackWorkers(pg.graph, 3)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	// A tiny cache keeps evictions racing the single-flight dedup.
	engine, err := NewEngine(pg.graph, WithWorkers(workers...), WithRowCacheRows(4))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	reqs := make([]Request, len(pg.queries))
	want := make([]*Response, len(pg.queries))
	for i, q := range pg.queries {
		reqs[i] = Request{Query: SingleNode(q), K: 5, Epsilon: 0, Method: TwoSBoundRemote}
		want[i], err = engine.Rank(context.Background(), reqs[i])
		if err != nil {
			t.Fatalf("serial baseline q%d: %v", q, err)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				i := (gi + round) % len(reqs)
				resp, err := engine.Rank(context.Background(), reqs[i])
				if err != nil {
					errs[gi] = err
					return
				}
				if len(resp.Results) != len(want[i].Results) {
					errs[gi] = fmt.Errorf("q%d: %d results, want %d", i, len(resp.Results), len(want[i].Results))
					return
				}
				for j := range want[i].Results {
					if resp.Results[j] != want[i].Results[j] {
						errs[gi] = fmt.Errorf("q%d rank %d: %+v, want %+v", i, j, resp.Results[j], want[i].Results[j])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", gi, err)
		}
	}
}

// TestRemoteRowViewReusesRowserveConnect pins that the engine's lazy row view
// is connected once per epoch and shared across queries (the connect-time
// metadata RPCs happen once, not per query).
func TestRemoteRowViewReusesRowserveConnect(t *testing.T) {
	pg := parityGraphs()[1]
	workers, err := LoopbackWorkers(pg.graph, 2)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(workers...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := Request{Query: SingleNode(pg.queries[0]), K: 3, Method: TwoSBoundRemote}
	if _, err := engine.Rank(context.Background(), req); err != nil {
		t.Fatalf("first query: %v", err)
	}
	first := engine.snap.Load().rows.Load()
	if first == nil {
		t.Fatalf("no row view after the first query")
	}
	if _, err := engine.Rank(context.Background(), req); err != nil {
		t.Fatalf("second query: %v", err)
	}
	if engine.snap.Load().rows.Load() != first {
		t.Fatalf("second query reconnected the row view")
	}
}
