package roundtriprank

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// vkey builds a cache key for node n at the given epoch with fixed walk
// parameters.
func vkey(n NodeID, epoch uint64) vecKey {
	return vecKey{node: n, epoch: epoch, alpha: 0.25, tol: 1e-9}
}

// vecOf returns a compute func yielding a recognizable one-element vector.
func vecOf(v float64, calls *atomic.Int64) func() ([]float64, []float64, error) {
	return func() ([]float64, []float64, error) {
		if calls != nil {
			calls.Add(1)
		}
		return []float64{v}, []float64{-v}, nil
	}
}

func TestVecCacheEvictsLRUWhenFull(t *testing.T) {
	c := newVecCache(2)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.get(ctx, vkey(NodeID(i), 0), vecOf(float64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := c.stats(); size != 2 {
		t.Fatalf("size %d after overflow, want 2", size)
	}
	// Node 0 was least recently used and must have been evicted: getting it
	// again recomputes.
	var calls atomic.Int64
	if _, _, err := c.get(ctx, vkey(0, 0), vecOf(0, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("evicted key served from cache (%d computes)", calls.Load())
	}
	// Node 2 is hot and must still be cached.
	calls.Store(0)
	if _, _, err := c.get(ctx, vkey(2, 0), vecOf(2, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("hot key recomputed")
	}
}

// TestVecCacheZeroCapacity pins the degenerate cache: every completed entry
// is evicted immediately, yet gets still return correct values and in-flight
// deduplication still works (the entry lives in the map until its compute
// finishes).
func TestVecCacheZeroCapacity(t *testing.T) {
	c := newVecCache(0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		f, _, err := c.get(ctx, vkey(7, 0), vecOf(42, nil))
		if err != nil {
			t.Fatal(err)
		}
		if f[0] != 42 {
			t.Fatalf("got %v, want 42", f[0])
		}
		if _, _, size := c.stats(); size != 0 {
			t.Fatalf("zero-capacity cache retained %d entries", size)
		}
	}

	// In-flight dedup at capacity zero: concurrent getters of one key must
	// share a single compute.
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := func() ([]float64, []float64, error) {
		calls.Add(1)
		close(started)
		<-release
		return []float64{1}, []float64{1}, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.get(ctx, vkey(8, 0), blocked); err != nil {
			t.Error(err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.get(ctx, vkey(8, 0), vecOf(99, &calls)); err != nil {
			t.Error(err)
		}
	}()
	// The waiter registers a cache hit before blocking on the in-flight
	// entry; only then may the owner's compute be released, or the waiter
	// could arrive after the zero-capacity eviction and recompute.
	for {
		if hits, _, _ := c.stats(); hits > 0 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("%d computes for one key, want 1 (dedup)", calls.Load())
	}
}

func TestVecCacheEpochKeysDoNotAlias(t *testing.T) {
	c := newVecCache(8)
	ctx := context.Background()
	f0, _, err := c.get(ctx, vkey(1, 0), vecOf(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := c.get(ctx, vkey(1, 1), vecOf(11, nil))
	if err != nil {
		t.Fatal(err)
	}
	if f0[0] != 10 || f1[0] != 11 {
		t.Fatalf("epochs aliased: %v %v", f0[0], f1[0])
	}
	hits, misses, size := c.stats()
	if hits != 0 || misses != 2 || size != 2 {
		t.Fatalf("stats %d/%d/%d, want 0 hits, 2 misses, 2 entries", hits, misses, size)
	}

	c.invalidateExcept(1)
	if _, _, size := c.stats(); size != 1 {
		t.Fatalf("invalidateExcept left %d entries, want 1", size)
	}
	var calls atomic.Int64
	if _, _, err := c.get(ctx, vkey(1, 1), vecOf(0, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatal("current epoch's entry was invalidated")
	}
	if _, _, err := c.get(ctx, vkey(1, 0), vecOf(12, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatal("stale epoch's entry survived invalidation")
	}
}

// TestVecCacheInvalidateDuringFill races invalidateExcept against an
// in-flight compute: the in-flight entry must not be detached from its
// waiters (both getters see the computed value exactly once), and a
// subsequent invalidation drops the completed stale entry.
func TestVecCacheInvalidateDuringFill(t *testing.T) {
	c := newVecCache(4)
	ctx := context.Background()
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := func() ([]float64, []float64, error) {
		calls.Add(1)
		close(started)
		<-release
		return []float64{5}, []float64{5}, nil
	}

	var wg sync.WaitGroup
	results := make([]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute := blocked
			if i == 1 {
				compute = vecOf(999, &calls) // must never run: dedup on the owner
			}
			f, _, err := c.get(ctx, vkey(3, 0), compute)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = f[0]
		}()
		if i == 0 {
			<-started
		}
	}

	// The fill is in flight on epoch 0; an Apply-style invalidation for epoch
	// 1 must skip it.
	c.invalidateExcept(1)
	close(release)
	wg.Wait()
	if results[0] != 5 || results[1] != 5 {
		t.Fatalf("waiters got %v, want the in-flight value 5", results)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d computes, want 1", calls.Load())
	}

	// Now completed and stale: the next invalidation removes it.
	if _, _, size := c.stats(); size != 1 {
		t.Fatalf("size %d after fill, want 1", size)
	}
	c.invalidateExcept(1)
	if _, _, size := c.stats(); size != 0 {
		t.Fatalf("completed stale entry survived invalidation (size %d)", size)
	}
}
