package roundtriprank

import (
	"context"
	"math"
	"testing"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
)

// Cross-representation parity suite: the packed CSR (graph.Pack) must be a
// drop-in replacement for the flat representation, not merely an approximate
// one. On every golden test graph plus a 10^4-node R-MAT instance, the exact
// solver and the online 2SBound search at ε = 0 return bit-identical results
// through an engine over the packed view, and the distributed path — whose
// stripes now travel the wire in the packed v3 encoding — stays bit-identical
// to exact. Together with the kernel- and topk-level suites this pins the
// equivalence at every layer the packed representation slots under.

// packedParityGraphs is the golden set extended with a 10^4-node R-MAT graph:
// big enough for real power-law hubs and rejected duplicates, small enough for
// exact solves in test time.
func packedParityGraphs(t testing.TB) []parityGraph {
	t.Helper()
	cfg := datasets.DefaultRMATConfig(10_000)
	cfg.Seed = 1309
	r, err := datasets.GenerateRMAT(cfg)
	if err != nil {
		t.Fatalf("GenerateRMAT: %v", err)
	}
	// Query the hub corner, the mid-range and the sparse tail, skipping
	// isolated nodes (a query there ranks nothing and degenerates the test).
	var queries []NodeID
	for _, start := range []NodeID{0, 4999, 9300} {
		for v := start; v < NodeID(r.Graph.NumNodes()); v++ {
			if r.Graph.OutDegree(v) > 0 && r.Graph.InDegree(v) > 0 {
				queries = append(queries, v)
				break
			}
		}
	}
	if len(queries) != 3 {
		t.Fatalf("found %d usable R-MAT query nodes, want 3", len(queries))
	}
	return append(parityGraphs(), parityGraph{"rmat-10k", r.Graph, queries})
}

// assertSameResults fails unless the two responses carry the same nodes in
// the same order with bitwise-equal scores.
func assertSameResults(t *testing.T, label string, want, got *Response) {
	t.Helper()
	if got.Converged != want.Converged {
		t.Fatalf("%s: converged %v, want %v", label, got.Converged, want.Converged)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Node != want.Results[i].Node {
			t.Fatalf("%s rank %d: node %d, want %d", label, i, got.Results[i].Node, want.Results[i].Node)
		}
		if math.Float64bits(got.Results[i].Score) != math.Float64bits(want.Results[i].Score) {
			t.Fatalf("%s rank %d (node %d): score %g, want %g (not bit-identical)",
				label, i, got.Results[i].Node, got.Results[i].Score, want.Results[i].Score)
		}
	}
}

// TestPackedRepresentationParity runs the exact solver and the ε = 0 online
// 2SBound search through two engines — one over the flat graph, one over
// graph.Pack of the same graph — and requires bit-identical responses.
func TestPackedRepresentationParity(t *testing.T) {
	ctx := context.Background()
	for _, pg := range packedParityGraphs(t) {
		flat, err := NewEngine(pg.graph)
		if err != nil {
			t.Fatalf("%s: NewEngine(flat): %v", pg.name, err)
		}
		packed, err := NewEngine(graph.Pack(pg.graph))
		if err != nil {
			t.Fatalf("%s: NewEngine(packed): %v", pg.name, err)
		}
		for qi, q := range pg.queries {
			exactReq := Request{Query: SingleNode(q), K: 25, Method: Exact}
			exactFlat, err := flat.Rank(ctx, exactReq)
			if err != nil {
				t.Fatalf("%s q%d: exact flat: %v", pg.name, q, err)
			}
			exactPacked, err := packed.Rank(ctx, exactReq)
			if err != nil {
				t.Fatalf("%s q%d: exact packed: %v", pg.name, q, err)
			}
			assertSameResults(t, pg.name+"/exact", exactFlat, exactPacked)

			// The ε = 0 search must prove exact separation, which on the
			// 10^4-node graph takes tens of seconds per query (minutes under
			// the race detector); one query there pins the property, the
			// golden graphs keep full coverage in every mode.
			if pg.graph.NumNodes() > 1000 && (qi > 0 || raceEnabled) {
				continue
			}
			k := gapK(exactFlat.Results, 5)
			if k < 1 {
				continue // top ranks tie exactly; ε = 0 top-K not well defined
			}
			onlineReq := Request{Query: SingleNode(q), K: k, Method: TwoSBound, Epsilon: 0}
			onlineFlat, err := flat.Rank(ctx, onlineReq)
			if err != nil {
				t.Fatalf("%s q%d: 2sbound flat: %v", pg.name, q, err)
			}
			onlinePacked, err := packed.Rank(ctx, onlineReq)
			if err != nil {
				t.Fatalf("%s q%d: 2sbound packed: %v", pg.name, q, err)
			}
			if !onlineFlat.Converged {
				t.Fatalf("%s q%d: flat 2sbound did not converge at eps=0", pg.name, q)
			}
			assertSameResults(t, pg.name+"/2sbound", onlineFlat, onlinePacked)
		}
	}
}

// TestPackedDistributedParity covers the wire layer: worker stripes are
// encoded in the packed v3 stripe format, so a distributed solve against an
// HTTP cluster exercises pack → encode → decode → unpack end to end and must
// still match the local exact solver bit for bit — including on the R-MAT
// graph, whose size and skew a hand-written golden graph cannot reach.
func TestPackedDistributedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP worker clusters")
	}
	ctx := context.Background()
	for _, pg := range packedParityGraphs(t) {
		engine, err := NewEngine(pg.graph, WithWorkers(httpWorkerCluster(t, pg.graph, 2)...))
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", pg.name, err)
		}
		for _, q := range pg.queries {
			req := Request{Query: SingleNode(q), K: 10, Method: Exact}
			exact, err := engine.Rank(ctx, req)
			if err != nil {
				t.Fatalf("%s q%d: exact: %v", pg.name, q, err)
			}
			req.Method = Distributed
			dist, err := engine.Rank(ctx, req)
			if err != nil {
				t.Fatalf("%s q%d: distributed: %v", pg.name, q, err)
			}
			assertSameResults(t, pg.name+"/distributed", exact, dist)
		}
	}
}
