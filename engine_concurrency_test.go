package roundtriprank

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/testgraphs"
)

// TestConcurrentRank fires many Rank calls at one Engine from parallel
// goroutines and checks every response against the serial answer. Run with
// -race this doubles as the data-race check for the shared kernels, pool and
// cache.
func TestConcurrentRank(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	reqs := []Request{
		{Query: SingleNode(toy.T1), K: 5, Method: Exact},
		{Query: SingleNode(toy.T2), K: 5, Method: Exact, Beta: Float64(0.3)},
		{Query: MultiNode(toy.T1, toy.T2), K: 4, Method: Exact},
		{Query: SingleNode(toy.P[0]), K: 5, Method: TwoSBound, Epsilon: 0.001},
	}
	want := make([]*Response, len(reqs))
	for i, req := range reqs {
		w, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("serial Rank %d: %v", i, err)
		}
		want[i] = w
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % len(reqs)
				resp, err := engine.Rank(context.Background(), reqs[i])
				if err != nil {
					errCh <- err
					return
				}
				if len(resp.Results) != len(want[i].Results) {
					errCh <- errors.New("result length mismatch under concurrency")
					return
				}
				for j := range resp.Results {
					if resp.Results[j].Node != want[i].Results[j].Node ||
						math.Abs(resp.Results[j].Score-want[i].Results[j].Score) > 1e-9 {
						errCh <- errors.New("result mismatch under concurrency")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestRankBatchCacheHitsAndMisses pins the vector cache behavior: the first
// batch misses once per distinct (node, α, tol) key, repeats within and
// across batches hit, and WithVectorCache(0) disables the cache entirely.
func TestRankBatchCacheHitsAndMisses(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	reqs := []Request{
		{Query: SingleNode(toy.T1), K: 3, Method: Exact},
		{Query: SingleNode(toy.T1), K: 5, Method: Exact},             // same key as above
		{Query: MultiNode(toy.T1, toy.T2), K: 3, Method: Exact},      // T1 shared, T2 new
		{Query: SingleNode(toy.T1), K: 3, Method: Exact, Alpha: 0.5}, // alpha override: new key
	}
	if _, err := engine.RankBatch(context.Background(), reqs); err != nil {
		t.Fatalf("RankBatch: %v", err)
	}
	hits, misses, size := engine.CacheStats()
	if misses != 3 { // T1@default, T2@default, T1@alpha=0.5
		t.Errorf("first batch misses = %d, want 3", misses)
	}
	if hits != 2 { // T1 reused by request 1 and by the multi-node mixture
		t.Errorf("first batch hits = %d, want 2", hits)
	}
	if size != 3 {
		t.Errorf("cache size = %d, want 3", size)
	}

	// A second identical batch is answered from cache alone.
	if _, err := engine.RankBatch(context.Background(), reqs); err != nil {
		t.Fatalf("second RankBatch: %v", err)
	}
	hits2, misses2, _ := engine.CacheStats()
	if misses2 != misses {
		t.Errorf("second batch added %d misses, want 0", misses2-misses)
	}
	if hits2 != hits+5 { // T1, T1, T1+T2 mixture, T1@0.5
		t.Errorf("second batch hits = %d, want %d", hits2-hits, 5)
	}

	// Eviction: capacity 1 keeps only the most recent entry.
	small, err := NewEngine(toy.Graph, WithVectorCache(1))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := small.RankBatch(context.Background(), reqs); err != nil {
		t.Fatalf("RankBatch: %v", err)
	}
	if _, _, size := small.CacheStats(); size != 1 {
		t.Errorf("capacity-1 cache holds %d entries", size)
	}

	// Disabled cache: zero stats, identical results.
	uncached, err := NewEngine(toy.Graph, WithVectorCache(0))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	got, err := uncached.RankBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("uncached RankBatch: %v", err)
	}
	if h, m, s := uncached.CacheStats(); h != 0 || m != 0 || s != 0 {
		t.Errorf("disabled cache reports stats %d/%d/%d", h, m, s)
	}
	cached, err := engine.RankBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("cached RankBatch: %v", err)
	}
	for i := range got {
		if len(got[i].Results) != len(cached[i].Results) {
			t.Fatalf("request %d: cached and uncached disagree on result count", i)
		}
		for j := range got[i].Results {
			if got[i].Results[j].Node != cached[i].Results[j].Node {
				t.Errorf("request %d rank %d: cached %d != uncached %d",
					i, j, cached[i].Results[j].Node, got[i].Results[j].Node)
			}
		}
	}
}

// TestConcurrentRankBatches runs several identical batches in parallel on one
// engine: the in-flight deduplication must produce consistent responses and
// solve each distinct key once (no duplicated misses).
func TestConcurrentRankBatches(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	reqs := []Request{
		{Query: SingleNode(toy.T1), K: 4, Method: Exact},
		{Query: SingleNode(toy.T2), K: 4, Method: Exact},
		{Query: SingleNode(toy.V1), K: 4, Method: Exact},
	}
	want, err := engine.RankBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("RankBatch: %v", err)
	}
	const parallel = 8
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := engine.RankBatch(context.Background(), reqs)
			if err != nil {
				mismatches.Add(1)
				return
			}
			for i := range got {
				for j := range got[i].Results {
					if got[i].Results[j].Node != want[i].Results[j].Node {
						mismatches.Add(1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d of %d concurrent batches disagreed", n, parallel)
	}
	_, misses, _ := engine.CacheStats()
	if misses != 3 {
		t.Errorf("concurrent batches performed %d solves, want 3 (in-flight dedup)", misses)
	}
}

// slowCancellingView cancels a context after a fixed number of adjacency
// traversals, hiding the CSR so the solvers take the generic interface path
// where every traversal is observable.
type slowCancellingView struct {
	View
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (s *slowCancellingView) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	if s.calls.Add(1) == s.after {
		s.cancel()
	}
	s.View.EachOut(v, fn)
}

// TestRankBatchCancellation cancels the context mid-batch and checks the
// batch aborts with ctx.Err() instead of running the remaining requests.
func TestRankBatchCancellation(t *testing.T) {
	g := testgraphs.Cycle(2000)
	ctx, cancel := context.WithCancel(context.Background())
	view := &slowCancellingView{View: g, cancel: cancel, after: 3 * int64(g.NumNodes())}
	engine, err := NewEngine(view)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			Query:     SingleNode(NodeID(i)),
			K:         5,
			Method:    Exact,
			Tolerance: 1e-15, // many iterations, so the cancel lands mid-solve
		})
	}
	resp, err := engine.RankBatch(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RankBatch error = %v, want context.Canceled", err)
	}
	if resp != nil {
		t.Errorf("cancelled batch returned responses")
	}

	// A pre-cancelled context aborts immediately.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := engine.RankBatch(done, reqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RankBatch error = %v, want context.Canceled", err)
	}
}
