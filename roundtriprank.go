// This file collects the graph-construction re-exports and the deprecated
// Ranker shim; the package documentation lives in doc.go.
package roundtriprank

import (
	"context"
	"fmt"

	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Re-exported graph construction types. A Graph is an immutable directed
// weighted graph with typed, labelled nodes; build one with NewGraphBuilder.
type (
	// Graph is the immutable graph structure queries run against.
	Graph = graph.Graph
	// GraphBuilder accumulates nodes and edges.
	GraphBuilder = graph.Builder
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// NodeType is a small integer node type (paper, author, venue, ...).
	NodeType = graph.Type
	// Query is a distribution over one or more query nodes.
	Query = walk.Query
	// View is the read-only graph interface accepted by all ranking entry
	// points; *Graph implements it.
	View = graph.View
	// Delta is a staged batch of mutations against one Graph snapshot: node
	// additions, edge upserts, edge and node removals. Stage with NewDelta
	// and apply with Engine.Apply (or Commit for a standalone merge).
	Delta = graph.Delta
)

// NoNode is returned by lookups that fail.
const NoNode = graph.NoNode

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// GraphFingerprint returns the checksum identifying a graph snapshot (its
// adjacency arrays plus its epoch). Stripes record it, coordinators validate
// it, and operators can compare it against GET /v1/epoch on a serving
// rtrankd.
func GraphFingerprint(g *Graph) uint32 { return graph.GraphFingerprint(g) }

// NewDelta returns an empty mutation batch staged against base. See
// graph.Delta for the staging semantics (stable node IDs, set-like ops).
func NewDelta(base *Graph) *Delta { return graph.NewDelta(base) }

// Commit merges a staged Delta into a fresh immutable Graph one epoch after
// base, leaving base untouched. Engines serving base are not affected; use
// Engine.Apply to commit and swap an engine in one step.
func Commit(base *Graph, d *Delta) (*Graph, error) { return graph.Commit(base, d) }

// SingleNode returns a query consisting of one node.
func SingleNode(v NodeID) Query { return walk.SingleNode(v) }

// MultiNode returns a uniformly weighted multi-node query (the Linearity
// Theorem makes multi-node RoundTripRank the mixture of single-node scores).
func MultiNode(nodes ...NodeID) Query { return walk.MultiNode(nodes...) }

// Result is one ranked node.
type Result struct {
	Node  NodeID
	Score float64
}

// Option configures the default parameters of an Engine (and of the
// deprecated Ranker, which wraps one). Per-query overrides on the Request take
// precedence over these defaults.
type Option func(*Engine) error

// WithAlpha sets the default teleport probability α of the underlying
// geometric random walks (default 0.25, the paper's setting).
func WithAlpha(alpha float64) Option {
	return func(e *Engine) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("roundtriprank: alpha must be in (0,1), got %g", alpha)
		}
		e.params.Walk.Alpha = alpha
		return nil
	}
}

// WithBeta sets the default specificity bias β of RoundTripRank+ (default
// 0.5, the balanced RoundTripRank).
func WithBeta(beta float64) Option {
	return func(e *Engine) error {
		if beta < 0 || beta > 1 {
			return fmt.Errorf("roundtriprank: beta must be in [0,1], got %g", beta)
		}
		e.params.Beta = beta
		return nil
	}
}

// WithSurferComposition sets β from a hybrid-random-surfer composition
// (Definition 3): balanced surfers walk full round trips, importance-only
// surfers shortcut the return leg, specificity-only surfers shortcut the
// outbound leg.
func WithSurferComposition(balanced, importanceOnly, specificityOnly int) Option {
	return func(e *Engine) error {
		beta, err := core.SpecificityBiasFromSurfers(balanced, importanceOnly, specificityOnly)
		if err != nil {
			return err
		}
		e.params.Beta = beta
		return nil
	}
}

// WithTolerance sets the default convergence tolerance of the exact iterative
// solvers.
func WithTolerance(tol float64) Option {
	return func(e *Engine) error {
		if tol <= 0 {
			return fmt.Errorf("roundtriprank: tolerance must be positive")
		}
		e.params.Walk.Tol = tol
		return nil
	}
}

// WithExactLimit sets the graph size up to which the Auto method plans the
// exact path (default DefaultExactLimit). Zero forces Auto to always choose
// the online search.
func WithExactLimit(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("roundtriprank: exact limit must be non-negative, got %d", n)
		}
		e.exactLimit = n
		return nil
	}
}

// WithVectorCache sets the capacity, in single-node vector pairs, of the
// engine's LRU score-vector cache (default DefaultVectorCacheSize). RankBatch
// answers repeated exact-path query nodes from it across batches; each entry
// holds two float64 vectors of NumNodes length, so the worst-case footprint
// is entries × 16 × NumNodes bytes. Zero disables caching.
func WithVectorCache(entries int) Option {
	return func(e *Engine) error {
		if entries < 0 {
			return fmt.Errorf("roundtriprank: vector cache size must be non-negative, got %d", entries)
		}
		if entries == 0 {
			e.cache = nil
			return nil
		}
		e.cache = newVecCache(entries)
		return nil
	}
}

// WithOnlineMapBaseline forces the engine's online methods (TwoSBound and
// the BoundScheme baselines) onto the map-based searcher even when the view
// is CSR-capable, instead of the pooled flat scratch-state path. It exists
// for the flat-vs-map benchmarks (cmd/benchrunner -fig online measures both
// configurations through Engine.Rank) and as an operational escape hatch;
// the map path allocates per query, so serving engines should not set it.
func WithOnlineMapBaseline() Option {
	return func(e *Engine) error {
		e.onlineMapBaseline = true
		return nil
	}
}

// Ranker computes RoundTripRank(+) scores and rankings over one graph view.
//
// Deprecated: Ranker is the pre-Engine API. It freezes parameters at
// construction, has no context support and splits inconsistent entry points
// (Rank takes a filter but no ε, TopK takes ε but no filter). Use Engine with
// a Request instead; Ranker remains as a thin shim over it.
type Ranker struct {
	engine *Engine
}

// NewRanker creates a Ranker over the given graph view with the paper's
// default parameters (α = 0.25, β = 0.5), modified by the options.
//
// Deprecated: use NewEngine.
func NewRanker(view View, opts ...Option) (*Ranker, error) {
	e, err := NewEngine(view, opts...)
	if err != nil {
		return nil, err
	}
	return &Ranker{engine: e}, nil
}

// Beta returns the ranker's specificity bias.
func (r *Ranker) Beta() float64 { return r.engine.Beta() }

// Alpha returns the ranker's teleport probability.
func (r *Ranker) Alpha() float64 { return r.engine.Alpha() }

// Scores computes the full score vectors for a query: F-Rank (importance),
// T-Rank (specificity) and the combined RoundTripRank+.
type Scores struct {
	Importance    []float64
	Specificity   []float64
	RoundTripRank []float64
}

// Scores computes exact scores for every node using the iterative solvers.
func (r *Ranker) Scores(q Query) (*Scores, error) {
	s, err := core.Compute(context.Background(), r.engine.View(), q, r.engine.params)
	if err != nil {
		return nil, err
	}
	return &Scores{Importance: s.F, Specificity: s.T, RoundTripRank: s.R}, nil
}

// Rank returns the top n nodes by exact RoundTripRank+ score. A nil filter
// keeps every node; otherwise only nodes for which filter returns true are
// ranked (use this to restrict to a target type and exclude the query).
//
// Unlike the pre-Engine implementation, zero-score nodes are no longer
// returned (the Engine's result contract), so fewer than n results may come
// back on sparsely connected graphs.
//
// Deprecated: use Engine.Rank with Method Exact and a declarative Filter.
func (r *Ranker) Rank(q Query, n int, filter ...func(NodeID) bool) ([]Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("roundtriprank: n must be positive")
	}
	p, err := r.engine.plan(Request{Query: q, K: n, Method: Exact})
	if err != nil {
		return nil, err
	}
	if len(filter) > 0 {
		p.keep = filter[0]
	}
	resp, err := r.engine.rankExact(context.Background(), p)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// TopK runs the online 2SBound algorithm and returns an ε-approximate top-K
// ranking without computing scores for the whole graph. epsilon = 0 demands
// the exact top K; the paper's efficiency study uses ε between 0.01 and 0.03.
//
// Unlike the pre-Engine implementation, scores are normalized onto the exact
// path's f^(1−β)·t^β scale (the square root of the raw squared-scale lower
// bounds); the ranking order is unchanged.
//
// Deprecated: use Engine.Rank with Method TwoSBound.
func (r *Ranker) TopK(q Query, k int, epsilon float64) ([]Result, error) {
	resp, err := r.engine.Rank(context.Background(), Request{
		Query: q, K: k, Epsilon: epsilon, Method: TwoSBound,
	})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// TypeFilter builds a filter usable with Ranker.Rank that keeps only nodes of
// the given type and drops the listed nodes (typically the query itself).
//
// Deprecated: use the declarative Filter on a Request.
func TypeFilter(g *Graph, t NodeType, exclude ...NodeID) func(NodeID) bool {
	return core.TypeFilter(g, t, exclude...)
}

func toResults(in []core.Ranked) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = Result{Node: r.Node, Score: r.Score}
	}
	return out
}
