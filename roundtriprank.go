// Package roundtriprank is the public API of this repository: a from-scratch
// Go implementation of RoundTripRank and RoundTripRank+ (Fang, Chang, Lauw —
// "RoundTripRank: Graph-based Proximity with Importance and Specificity",
// ICDE 2013) together with the 2SBound online top-K algorithm.
//
// RoundTripRank measures the proximity of a node v to a query q as the
// probability that a random round trip starting and ending at q passes through
// v, which integrates importance (reachability from the query, as in
// Personalized PageRank) with specificity (reachability back to the query) in
// one coherent random walk. RoundTripRank+ exposes a specificity bias β ∈
// [0, 1] that trades the two senses off: β = 0 is pure importance, β = 1 pure
// specificity, β = 0.5 the balanced RoundTripRank.
//
// Basic usage:
//
//	b := roundtriprank.NewGraphBuilder()
//	alice := b.AddNode(1, "author:alice")
//	paper := b.AddNode(2, "paper:p1")
//	b.MustAddUndirectedEdge(alice, paper, 1)
//	g := b.MustBuild()
//
//	ranker, _ := roundtriprank.NewRanker(g)
//	results, _ := ranker.Rank(roundtriprank.SingleNode(paper), 10)
//
// For online queries on large graphs use Ranker.TopK, which runs the 2SBound
// branch-and-bound algorithm and returns an ε-approximate top-K without
// touching most of the graph.
package roundtriprank

import (
	"fmt"

	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// Re-exported graph construction types. A Graph is an immutable directed
// weighted graph with typed, labelled nodes; build one with NewGraphBuilder.
type (
	// Graph is the immutable graph structure queries run against.
	Graph = graph.Graph
	// GraphBuilder accumulates nodes and edges.
	GraphBuilder = graph.Builder
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// NodeType is a small integer node type (paper, author, venue, ...).
	NodeType = graph.Type
	// Query is a distribution over one or more query nodes.
	Query = walk.Query
	// View is the read-only graph interface accepted by all ranking entry
	// points; *Graph implements it.
	View = graph.View
)

// NoNode is returned by lookups that fail.
const NoNode = graph.NoNode

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// SingleNode returns a query consisting of one node.
func SingleNode(v NodeID) Query { return walk.SingleNode(v) }

// MultiNode returns a uniformly weighted multi-node query (the Linearity
// Theorem makes multi-node RoundTripRank the mixture of single-node scores).
func MultiNode(nodes ...NodeID) Query { return walk.MultiNode(nodes...) }

// Result is one ranked node.
type Result struct {
	Node  NodeID
	Score float64
}

// Option configures a Ranker.
type Option func(*Ranker) error

// WithAlpha sets the teleport probability α of the underlying geometric random
// walks (default 0.25, the paper's setting).
func WithAlpha(alpha float64) Option {
	return func(r *Ranker) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("roundtriprank: alpha must be in (0,1), got %g", alpha)
		}
		r.params.Walk.Alpha = alpha
		return nil
	}
}

// WithBeta sets the specificity bias β of RoundTripRank+ (default 0.5, the
// balanced RoundTripRank).
func WithBeta(beta float64) Option {
	return func(r *Ranker) error {
		if beta < 0 || beta > 1 {
			return fmt.Errorf("roundtriprank: beta must be in [0,1], got %g", beta)
		}
		r.params.Beta = beta
		return nil
	}
}

// WithSurferComposition sets β from a hybrid-random-surfer composition
// (Definition 3): balanced surfers walk full round trips, importance-only
// surfers shortcut the return leg, specificity-only surfers shortcut the
// outbound leg.
func WithSurferComposition(balanced, importanceOnly, specificityOnly int) Option {
	return func(r *Ranker) error {
		beta, err := core.SpecificityBiasFromSurfers(balanced, importanceOnly, specificityOnly)
		if err != nil {
			return err
		}
		r.params.Beta = beta
		return nil
	}
}

// WithTolerance sets the convergence tolerance of the exact iterative solvers.
func WithTolerance(tol float64) Option {
	return func(r *Ranker) error {
		if tol <= 0 {
			return fmt.Errorf("roundtriprank: tolerance must be positive")
		}
		r.params.Walk.Tol = tol
		return nil
	}
}

// Ranker computes RoundTripRank(+) scores and rankings over one graph view.
type Ranker struct {
	view   View
	params core.Params
}

// NewRanker creates a Ranker over the given graph view with the paper's
// default parameters (α = 0.25, β = 0.5), modified by the options.
func NewRanker(view View, opts ...Option) (*Ranker, error) {
	if view == nil || view.NumNodes() == 0 {
		return nil, fmt.Errorf("roundtriprank: empty graph")
	}
	r := &Ranker{view: view, params: core.DefaultParams()}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Beta returns the ranker's specificity bias.
func (r *Ranker) Beta() float64 { return r.params.Beta }

// Alpha returns the ranker's teleport probability.
func (r *Ranker) Alpha() float64 { return r.params.Walk.Alpha }

// Scores computes the full score vectors for a query: F-Rank (importance),
// T-Rank (specificity) and the combined RoundTripRank+.
type Scores struct {
	Importance    []float64
	Specificity   []float64
	RoundTripRank []float64
}

// Scores computes exact scores for every node using the iterative solvers.
func (r *Ranker) Scores(q Query) (*Scores, error) {
	s, err := core.Compute(r.view, q, r.params)
	if err != nil {
		return nil, err
	}
	return &Scores{Importance: s.F, Specificity: s.T, RoundTripRank: s.R}, nil
}

// Rank returns the top n nodes by exact RoundTripRank+ score. A nil filter
// keeps every node; otherwise only nodes for which filter returns true are
// ranked (use this to restrict to a target type and exclude the query).
func (r *Ranker) Rank(q Query, n int, filter ...func(NodeID) bool) ([]Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("roundtriprank: n must be positive")
	}
	s, err := core.Compute(r.view, q, r.params)
	if err != nil {
		return nil, err
	}
	var keep func(NodeID) bool
	if len(filter) > 0 {
		keep = filter[0]
	}
	top := core.TopN(s.R, n, keep)
	return toResults(top), nil
}

// TopK runs the online 2SBound algorithm and returns an ε-approximate top-K
// ranking without computing scores for the whole graph. epsilon = 0 demands
// the exact top K; the paper's efficiency study uses ε between 0.01 and 0.03.
func (r *Ranker) TopK(q Query, k int, epsilon float64) ([]Result, error) {
	res, err := topk.TopK(r.view, q, topk.Options{
		K:       k,
		Epsilon: epsilon,
		Alpha:   r.params.Walk.Alpha,
		Beta:    r.params.Beta,
	})
	if err != nil {
		return nil, err
	}
	return toResults(res.TopK), nil
}

// TypeFilter builds a filter usable with Rank that keeps only nodes of the
// given type and drops the listed nodes (typically the query itself).
func TypeFilter(g *Graph, t NodeType, exclude ...NodeID) func(NodeID) bool {
	return core.TypeFilter(g, t, exclude...)
}

func toResults(in []core.Ranked) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = Result{Node: r.Node, Score: r.Score}
	}
	return out
}
