package roundtriprank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roundtriprank/internal/core"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/fleet"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/rowserve"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// Scheme selects the bound-updating machinery of the online top-K search; the
// values mirror the efficiency baselines of Fig. 11(a).
type Scheme = topk.Scheme

// Re-exported bound schemes, usable with BoundScheme.
const (
	// Scheme2SBound is the paper's two-stage framework on both sides.
	Scheme2SBound Scheme = topk.Scheme2SBound
	// SchemeGS uses Gupta bounds for F-Rank and Sarkar bounds for T-Rank.
	SchemeGS Scheme = topk.SchemeGS
	// SchemeGupta uses Gupta bounds for F-Rank only.
	SchemeGupta Scheme = topk.SchemeGupta
	// SchemeSarkar uses Sarkar bounds for T-Rank only.
	SchemeSarkar Scheme = topk.SchemeSarkar
)

type methodKind int

const (
	methodAuto methodKind = iota
	methodExact
	methodOnline
	methodDistributed
	methodRemoteOnline
)

// Method selects how a Request is executed. The zero value is Auto.
type Method struct {
	kind   methodKind
	scheme Scheme
}

// The built-in execution methods.
var (
	// Auto lets the engine plan: exact full-vector solves for small in-memory
	// graphs, the online 2SBound search otherwise (large or remote graphs).
	Auto = Method{kind: methodAuto}
	// Exact runs the iterative F-Rank/T-Rank solvers over the whole graph.
	Exact = Method{kind: methodExact}
	// TwoSBound runs the online branch-and-bound top-K search (Algorithm 1).
	// On CSR-capable views (any *Graph) the search executes on pooled flat
	// scratch state — dense generation-stamped arrays recycled across
	// queries — so steady-state serving performs a small constant number of
	// allocations per query; each concurrently executing query holds one
	// O(NumNodes) scratch instance (see docs/TUNING.md for sizing).
	TwoSBound = Method{kind: methodOnline, scheme: Scheme2SBound}
	// Distributed runs the exact solvers across the engine's worker cluster
	// (configured with WithWorkers): the coordinator fans each power
	// iteration out to the stripe workers and merges the partial vectors into
	// the same top-K path the local exact solver uses. Scores are
	// bit-identical to Exact.
	Distributed = Method{kind: methodDistributed}
	// TwoSBoundRemote runs the online 2SBound search against the engine's
	// worker cluster (configured with WithWorkers) without a local copy of
	// the graph: the searcher streams only the CSR rows it touches from the
	// stripe workers through the engine's row cache (batched POST /v1/rows
	// fetches, one per stripe per expansion wave). Every row arrives
	// bit-exact from the stripe that owns it, so results are bit-identical
	// to TwoSBound on a local view for any worker count. This is the paper's
	// AP/GP serving architecture: the coordinator's working set is O(rows
	// touched), never O(edges).
	TwoSBoundRemote = Method{kind: methodRemoteOnline, scheme: Scheme2SBound}
)

// BoundScheme returns an online method using the given bound scheme, for
// reproducing the efficiency baselines (G+S, Gupta, Sarkar) of Sect. VI-B.
func BoundScheme(s Scheme) Method { return Method{kind: methodOnline, scheme: s} }

// String names the method; online methods are named after their scheme.
func (m Method) String() string {
	switch m.kind {
	case methodAuto:
		return "auto"
	case methodExact:
		return "exact"
	case methodDistributed:
		return "distributed"
	case methodRemoteOnline:
		return m.scheme.String() + "-remote"
	default:
		return m.scheme.String()
	}
}

// IsExact reports whether the method runs the exact full-vector solvers.
func (m Method) IsExact() bool { return m.kind == methodExact }

// ParseMethod parses a method name (case-insensitive) as printed by
// Method.String: "auto" (or empty), "exact", "distributed", "2sbound",
// "2sbound-remote" (or "remote"), or a baseline bound scheme — "gs"/"g+s",
// "gupta", "sarkar".
func ParseMethod(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return Auto, nil
	case "exact":
		return Exact, nil
	case "distributed":
		return Distributed, nil
	case "2sbound":
		return TwoSBound, nil
	case "2sbound-remote", "remote":
		return TwoSBoundRemote, nil
	case "gs", "g+s":
		return BoundScheme(SchemeGS), nil
	case "gupta":
		return BoundScheme(SchemeGupta), nil
	case "sarkar":
		return BoundScheme(SchemeSarkar), nil
	default:
		return Method{}, invalidf("roundtriprank: unknown method %q", name)
	}
}

// ValidationError wraps a request-validation failure: the caller's Request
// (or Delta) was malformed — a non-positive K, an out-of-range parameter, a
// query node the view does not have, a stale mutation. It distinguishes
// caller mistakes from internal faults, so servers can answer 4xx instead
// of 5xx; unwrap with errors.As. Its counterpart for backend trouble is
// ClusterError.
type ValidationError struct {
	Err error
}

// Error implements error.
func (e *ValidationError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying validation failure.
func (e *ValidationError) Unwrap() error { return e.Err }

// invalidf builds a ValidationError from a format string.
func invalidf(format string, args ...any) error {
	return &ValidationError{Err: fmt.Errorf(format, args...)}
}

// QueryStat describes one executed ranking plan, delivered to the
// WithQueryStatsHook callback when the execution finishes: the resolved
// method (Auto already planned), the wall-clock execution time, and the
// outcome. Requests that fail validation never reach the hook — they have
// no resolved method; a serving layer counts those at its own boundary.
type QueryStat struct {
	// Method is the execution method actually used.
	Method Method
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// Err is nil on success; context.Canceled / DeadlineExceeded indicate a
	// cancelled query, a ClusterError backend trouble.
	Err error
	// Degraded reports a budget-degraded (anytime) response; CertifiedK is
	// its certified prefix length. Both zero when Err is non-nil.
	Degraded bool
	// CertifiedK mirrors Response.CertifiedK.
	CertifiedK int
}

// WithQueryStatsHook installs a callback invoked after every executed Rank
// (and RankBatch) plan with its method, duration and outcome — the feed for
// a serving layer's per-method latency histograms and outcome counters. The
// hook runs synchronously on the query goroutine, so it must be fast and
// must not block; it may be invoked concurrently.
func WithQueryStatsHook(fn func(QueryStat)) Option {
	return func(e *Engine) error {
		if fn == nil {
			return fmt.Errorf("roundtriprank: WithQueryStatsHook needs a non-nil callback")
		}
		e.statsHook = fn
		return nil
	}
}

// TypedView is a graph view that also knows node types; *Graph implements it.
// Type filters require the engine's view to be typed.
type TypedView interface {
	View
	Type(v NodeID) NodeType
}

// Filter declaratively restricts the result set of a Request. It compiles to
// the same keep-predicate on both the exact and the online path, so filtered
// queries return consistent top-K sets regardless of execution method (both
// paths rank exactly the round-trip-reachable nodes the filter admits).
type Filter struct {
	// Types, when non-empty, keeps only nodes whose type is listed (the
	// paper's "find authors for this paper" target-type restriction).
	Types []NodeType
	// Exclude drops the listed nodes from the results.
	Exclude []NodeID
	// ExcludeQuery drops the query nodes themselves, the usual setting since
	// the query trivially ranks first under any round-trip measure.
	ExcludeQuery bool
}

// Budget bounds the work an online-method Request may spend before returning
// a best-effort, certified partial result (Response.Degraded, CertifiedK,
// AchievedEpsilon) instead of running to convergence — the anytime execution
// contract for hub queries whose active set grows every round. Zero-valued
// fields are unset; a nil Request.Budget keeps the run-to-convergence
// behavior. Ignored by the exact and distributed methods, which always
// compute the full answer.
//
// Rounds- and touched-capped budgets are deterministic: the same budget on
// the same graph returns the same results and certificate bit for bit on the
// local, packed and remote execution paths. FlushMargin-derived deadlines
// depend on the wall clock and carry no such guarantee.
type Budget struct {
	// MaxRounds caps the online search's expansion rounds.
	MaxRounds int
	// MaxTouched stops the search once its working set (|Sf| + |St|) reaches
	// this many nodes; on the remote path this also caps rows fetched.
	MaxTouched int
	// FrontierCap bounds T-side node admissions per round, keeping per-round
	// cost flat on hub queries; deferred nodes remain covered by the unseen
	// upper bound so certificates stay sound.
	FrontierCap int
	// FlushMargin, when positive and the request context carries a deadline,
	// derives a soft wall-clock stop at (deadline − margin): the search
	// finishes its current round, certifies what it has, and leaves the
	// margin for normalization and response flushing — a 200 with a degraded
	// result instead of burning into the deadline for a 504.
	FlushMargin time.Duration
}

// Request is a single ranking query against an Engine. Zero-valued fields fall
// back to the engine's defaults.
type Request struct {
	// Query is the distribution over query nodes (SingleNode / MultiNode).
	Query Query
	// K is the number of results wanted. Required, must be positive.
	K int
	// Method selects the execution path; the zero value is Auto.
	Method Method
	// Filter optionally restricts the result set; nil keeps every node.
	Filter *Filter
	// Alpha overrides the engine's teleport probability; zero keeps the
	// engine default.
	Alpha float64
	// Beta overrides the engine's specificity bias; nil keeps the engine
	// default (a pointer because 0, pure importance, is a meaningful value).
	Beta *float64
	// Epsilon is the approximation slack of the online search; zero demands
	// the exact top K. Ignored by the exact path.
	Epsilon float64
	// Tolerance overrides the convergence tolerance of the exact solvers;
	// zero keeps the engine default. Ignored by the online path.
	Tolerance float64
	// Budget, when non-nil, bounds the online search's work and switches it
	// into anytime mode; see Budget. Ignored by exact-family methods.
	Budget *Budget
}

// Float64 returns a pointer to v, for the Request.Beta override.
func Float64(v float64) *float64 { return &v }

// Response is the outcome of one Engine.Rank call.
type Response struct {
	// Results lists the ranked nodes, best first. Scores are on the
	// f^(1−β)·t^β scale on every execution path (the online search's
	// squared-scale lower bounds are normalized), and zero-score nodes —
	// nodes with no round trip through them — are never returned, so the
	// result set does not change shape when Auto switches paths.
	Results []Result
	// Method is the execution method actually used (Auto resolved).
	Method Method
	// Converged reports whether the ε-relaxed top-K conditions were met;
	// always true on the exact path.
	Converged bool
	// Degraded reports the online search stopped on a budget (or the round
	// valve) with work remaining: the results are best-effort, qualified by
	// CertifiedK and AchievedEpsilon. Always false on the exact path and on
	// converged or graph-exhausted online queries.
	Degraded bool
	// CertifiedK is the length of the leading prefix of Results proven exact
	// by the online search's bounds at termination (every certified position
	// strictly dominates all other nodes). The exact and distributed paths
	// certify everything they return.
	CertifiedK int
	// AchievedEpsilon is the online search's residual bound gap: the smallest
	// ε its ranking satisfies at termination (0 on the exact path). Converged
	// responses report at most the requested epsilon; degraded ones report
	// how far the budget let them get. Note it is on the searcher's squared
	// score scale, like Request.Epsilon.
	AchievedEpsilon float64
	// Rounds is the number of expansion rounds of the online search (zero on
	// the exact path).
	Rounds int
	// FSeen, TSeen and RSeen are the final neighborhood sizes |Sf|, |St| and
	// |Sf ∩ St| of the online search (zero on the exact path).
	FSeen, TSeen, RSeen int
	// Rows is the row-serving footprint of a TwoSBoundRemote query — rows
	// fetched over the network, row-fetch RPCs issued, row-cache hits and
	// misses. Nil on every other path. A repeat of a fully cached query shows
	// RPCs == 0.
	Rows *RowQueryStats
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// DefaultExactLimit is the graph size up to which Auto plans the exact path:
// a full-vector solve over tens of thousands of nodes is cheaper than the
// online search's bookkeeping, while beyond it 2SBound touches only the
// query's neighborhood.
const DefaultExactLimit = 50_000

// DefaultVectorCacheSize is the default capacity (in single-node vector
// pairs) of the engine's score-vector cache used by RankBatch.
const DefaultVectorCacheSize = 64

// snapshot is one immutable epoch of the engine's serving state: the graph
// view, its epoch, and the (lazily connected) coordinator pinned to that
// epoch's stripes. Apply swaps the engine's snapshot pointer atomically;
// queries capture the snapshot once at plan time and run on it to completion,
// so in-flight queries finish on their epoch while new queries see the next.
type snapshot struct {
	view  View
	epoch uint64

	// connectMu serializes this snapshot's coordinator connect only; a stale
	// epoch's slow connect never blocks the next epoch's first distributed
	// query. Readers go through the atomic pointer and never take it.
	connectMu sync.Mutex
	coord     atomic.Pointer[distributed.Coordinator]

	// rowMu and rows are the same lazy-connect discipline for the epoch's
	// row-serving view (the TwoSBoundRemote method). The RemoteCSR is pinned
	// to this snapshot's fleet epoch at connect time; it reads through the
	// engine's shared row cache, whose content-fingerprint keys carry
	// unchanged stripes' rows across an Apply rollover and strand the changed
	// stripes' rows (see internal/rowserve).
	rowMu sync.Mutex
	rows  atomic.Pointer[rowserve.RemoteCSR]
}

// Engine executes ranking requests over one graph view. It is safe for
// concurrent use: per-query state lives in the request execution, the current
// snapshot is read through an atomic pointer, and the shared vector cache
// synchronizes internally.
type Engine struct {
	snap       atomic.Pointer[snapshot]
	params     core.Params
	exactLimit int
	cache      *vecCache // nil when the cache is disabled
	// onlineMapBaseline forces the online methods onto the map-based
	// searcher (WithOnlineMapBaseline); serving engines leave it false.
	onlineMapBaseline bool
	// statsHook, when set, observes every executed plan (WithQueryStatsHook).
	statsHook func(QueryStat)

	// workers are the stripe transports of the Distributed method; each
	// snapshot's coordinator over them is built lazily on the first
	// distributed query of that epoch, so engine construction (and Apply)
	// never block on the network.
	workers []distributed.Transport
	// fleetMgr, when set (WithFleet), self-organizes the workers: they are
	// the manager's per-stripe replica groups, and Apply reconciles
	// membership/placement instead of the static RedeployStripes walk.
	fleetMgr *fleet.Manager
	// rowCache is the engine-wide row cache of the TwoSBoundRemote method,
	// shared by every epoch's RemoteCSR (created when workers are
	// configured; sized by WithRowCacheRows). rowCacheRows only carries the
	// option value until NewEngine builds the cache.
	rowCache     *rowserve.Cache
	rowCacheRows int

	// applyMu serializes Apply: commits are rare and strictly ordered.
	applyMu sync.Mutex
}

// NewEngine creates an Engine over the given graph view with the paper's
// default parameters (α = 0.25, β = 0.5), modified by the options.
func NewEngine(view View, opts ...Option) (*Engine, error) {
	if view == nil || view.NumNodes() == 0 {
		return nil, fmt.Errorf("roundtriprank: empty graph")
	}
	e := &Engine{
		params:     core.DefaultParams(),
		exactLimit: DefaultExactLimit,
		cache:      newVecCache(DefaultVectorCacheSize),
	}
	e.snap.Store(newSnapshot(view))
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	// One row cache per engine, across every epoch's row-serving view; built
	// after the options so WithWorkers and WithRowCacheRows compose in any
	// order.
	if len(e.workers) > 0 {
		e.rowCache = rowserve.NewCache(e.rowCacheRows)
	}
	return e, nil
}

// newSnapshot wraps a view in a snapshot, adopting the view's own epoch when
// it carries one (a committed *Graph does).
func newSnapshot(view View) *snapshot {
	s := &snapshot{view: view}
	if ep, ok := view.(graph.Epocher); ok {
		s.epoch = ep.Epoch()
	}
	return s
}

// CacheStats reports the cumulative hit and miss counts of the engine's
// single-node vector cache and its current number of entries. All zeros when
// the cache is disabled.
func (e *Engine) CacheStats() (hits, misses uint64, size int) {
	if e.cache == nil {
		return 0, 0, 0
	}
	return e.cache.stats()
}

// Alpha returns the engine's default teleport probability.
func (e *Engine) Alpha() float64 { return e.params.Walk.Alpha }

// Beta returns the engine's default specificity bias.
func (e *Engine) Beta() float64 { return e.params.Beta }

// View returns the graph view of the engine's current snapshot. After an
// Apply it returns the new snapshot's view; queries planned earlier keep
// executing on the view they captured.
func (e *Engine) View() View { return e.snap.Load().view }

// Epoch returns the epoch of the engine's current snapshot: the Epoch of the
// served *Graph, bumped by every Apply (zero for unversioned views).
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// plan is a validated, default-resolved request ready to execute. It pins the
// snapshot it was planned against, so the execution is immune to concurrent
// Apply calls.
type plan struct {
	snap    *snapshot
	query   walk.Query // normalized
	k       int
	method  Method // resolved: Exact or an online method
	params  core.Params
	epsilon float64
	keep    func(NodeID) bool
	budget  *Budget
}

// topkBudget converts the plan's budget into the searcher's form, deriving
// the soft deadline from the request context's deadline minus the flush
// margin. Called at execution time (the context is not known at plan time).
func (p *plan) topkBudget(ctx context.Context) *topk.Budget {
	b := p.budget
	if b == nil {
		return nil
	}
	tb := &topk.Budget{
		MaxRounds:   b.MaxRounds,
		MaxTouched:  b.MaxTouched,
		FrontierCap: b.FrontierCap,
	}
	if b.FlushMargin > 0 {
		if dl, ok := ctx.Deadline(); ok {
			tb.Deadline = dl.Add(-b.FlushMargin)
		}
	}
	return tb
}

// plan validates the request and resolves defaults and the Auto method.
// Every validation failure is wrapped in ValidationError, so callers can
// distinguish caller mistakes from execution faults.
func (e *Engine) plan(req Request) (*plan, error) {
	if req.K <= 0 {
		return nil, invalidf("roundtriprank: K must be positive, got %d", req.K)
	}
	nq, err := req.Query.Normalize()
	if err != nil {
		return nil, &ValidationError{Err: fmt.Errorf("roundtriprank: invalid query: %w", err)}
	}
	snap := e.snap.Load()
	n := snap.view.NumNodes()
	for _, v := range nq.Nodes {
		if int(v) < 0 || int(v) >= n {
			return nil, invalidf("roundtriprank: query node %d out of range [0,%d)", v, n)
		}
	}
	p := e.params
	if req.Alpha != 0 {
		if req.Alpha <= 0 || req.Alpha >= 1 {
			return nil, invalidf("roundtriprank: alpha must be in (0,1), got %g", req.Alpha)
		}
		p.Walk.Alpha = req.Alpha
	}
	if req.Beta != nil {
		if *req.Beta < 0 || *req.Beta > 1 {
			return nil, invalidf("roundtriprank: beta must be in [0,1], got %g", *req.Beta)
		}
		p.Beta = *req.Beta
	}
	if req.Epsilon < 0 {
		return nil, invalidf("roundtriprank: epsilon must be non-negative, got %g", req.Epsilon)
	}
	if req.Tolerance < 0 {
		return nil, invalidf("roundtriprank: tolerance must be non-negative, got %g", req.Tolerance)
	}
	if req.Tolerance > 0 {
		p.Walk.Tol = req.Tolerance
	}
	keep, err := req.Filter.compile(snap.view, nq)
	if err != nil {
		return nil, err
	}
	if b := req.Budget; b != nil {
		if b.MaxRounds < 0 || b.MaxTouched < 0 || b.FrontierCap < 0 || b.FlushMargin < 0 {
			return nil, invalidf("roundtriprank: budget fields must be non-negative, got %+v", *b)
		}
	}
	method := req.Method
	if (method.kind == methodDistributed || method.kind == methodRemoteOnline) && len(e.workers) == 0 {
		return nil, invalidf("roundtriprank: the %s method needs workers (configure with WithWorkers)", method)
	}
	if method.kind == methodAuto {
		if _, local := snap.view.(*Graph); local && n <= e.exactLimit {
			method = Exact
		} else if len(e.workers) > 0 {
			// Too big for a local exact solve and a striped fleet is
			// configured: serve online against the fleet, touching only the
			// query's neighborhood.
			method = TwoSBoundRemote
		} else {
			method = TwoSBound
		}
	}
	return &plan{snap: snap, query: nq, k: req.K, method: method, params: p, epsilon: req.Epsilon, keep: keep, budget: req.Budget}, nil
}

// compile turns the declarative filter into a keep-predicate over node IDs.
func (f *Filter) compile(view View, nq walk.Query) (func(NodeID) bool, error) {
	if f == nil {
		return nil, nil
	}
	var typed TypedView
	if len(f.Types) > 0 {
		var ok bool
		typed, ok = view.(TypedView)
		if !ok {
			return nil, invalidf("roundtriprank: filtering by node type requires a typed graph view")
		}
	}
	excluded := make(map[NodeID]bool, len(f.Exclude)+len(nq.Nodes))
	for _, v := range f.Exclude {
		excluded[v] = true
	}
	if f.ExcludeQuery {
		for _, v := range nq.Nodes {
			excluded[v] = true
		}
	}
	types := append([]NodeType(nil), f.Types...)
	return func(v NodeID) bool {
		if excluded[v] {
			return false
		}
		if typed == nil {
			return true
		}
		t := typed.Type(v)
		for _, want := range types {
			if t == want {
				return true
			}
		}
		return false
	}, nil
}

// Rank executes one request and returns the ranked results. Cancelling the
// context aborts the computation within one solver iteration (exact path) or
// one expansion round (online path) and returns ctx.Err().
func (e *Engine) Rank(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := e.plan(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var resp *Response
	switch p.method.kind {
	case methodExact:
		resp, err = e.rankExact(ctx, p)
	case methodDistributed:
		resp, err = e.rankDistributed(ctx, p)
	case methodRemoteOnline:
		resp, err = e.rankRemote(ctx, p)
	default:
		resp, err = e.rankOnline(ctx, p)
	}
	e.recordStat(p, start, resp, err)
	if err != nil {
		return nil, err
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// recordStat delivers one executed plan to the stats hook, if installed.
func (e *Engine) recordStat(p *plan, start time.Time, resp *Response, err error) {
	if e.statsHook == nil {
		return
	}
	st := QueryStat{Method: p.method, Elapsed: time.Since(start), Err: err}
	if resp != nil && err == nil {
		st.Degraded = resp.Degraded
		st.CertifiedK = resp.CertifiedK
	}
	e.statsHook(st)
}

func (e *Engine) rankExact(ctx context.Context, p *plan) (*Response, error) {
	s, err := core.Compute(ctx, p.snap.view, p.query, p.params)
	if err != nil {
		return nil, err
	}
	top := trimZeroScores(core.TopN(s.R, p.k, p.keep))
	return &Response{Results: toResults(top), Method: Exact, Converged: true, CertifiedK: len(top)}, nil
}

// trimZeroScores cuts the zero-score tail of a descending ranking: a zero
// RoundTripRank+ score means no round trip passes through the node, and the
// online path never surfaces such nodes, so dropping them keeps the exact and
// online result sets consistent.
func trimZeroScores(in []core.Ranked) []core.Ranked {
	for i, r := range in {
		if r.Score <= 0 {
			return in[:i]
		}
	}
	return in
}

// coordinator returns the worker coordinator of the given snapshot,
// connecting and validating the cluster topology on first use. A failed
// connection attempt is not cached, so a query issued after the workers come
// up succeeds. Each snapshot gets its own coordinator: after an Apply, the
// next distributed query connects afresh and validates the workers against
// the new epoch's fingerprint.
func (e *Engine) coordinator(ctx context.Context, snap *snapshot) (*distributed.Coordinator, error) {
	if c := snap.coord.Load(); c != nil {
		return c, nil
	}
	snap.connectMu.Lock()
	defer snap.connectMu.Unlock()
	if c := snap.coord.Load(); c != nil {
		return c, nil
	}
	c, err := distributed.NewCoordinator(ctx, e.workers, nil)
	if err != nil {
		return nil, err
	}
	if c.NumNodes() != snap.view.NumNodes() {
		return nil, fmt.Errorf("roundtriprank: workers serve a %d-node graph, the engine view has %d nodes",
			c.NumNodes(), snap.view.NumNodes())
	}
	// When the snapshot's view exposes CSR arrays, require the workers to
	// have been striped from the very same graph: equal node counts with
	// different adjacency would return plausible-looking but wrong rankings.
	// The fingerprint folds the epoch in, so a cluster still serving the
	// previous epoch's stripes is rejected here until it is redeployed.
	if cv, ok := snap.view.(graph.CSRView); ok {
		if local := graph.GraphFingerprint(cv); local != c.GraphFingerprint() {
			return nil, fmt.Errorf("roundtriprank: workers were striped from a different graph (fingerprint %08x epoch %d, engine view has %08x epoch %d)",
				c.GraphFingerprint(), c.Epoch(), local, snap.epoch)
		}
	}
	snap.coord.Store(c)
	return c, nil
}

// rankDistributed executes the exact solve across the worker cluster. The
// coordinator's F-Rank/T-Rank iterations are bit-identical to the local
// kernels, and the results merge into the same combine/top-K path as the
// exact method, so a distributed response equals an Exact one node for node
// and score for score. Cluster failures (connect, worker RPCs) are wrapped
// in ClusterError so servers can report them as backend trouble rather than
// caller mistakes.
func (e *Engine) rankDistributed(ctx context.Context, p *plan) (*Response, error) {
	c, err := e.coordinator(ctx, p.snap)
	if err != nil {
		return nil, &ClusterError{Err: err}
	}
	// The two solves run concurrently; the first failure cancels the sibling
	// so a dead worker surfaces immediately instead of after the healthy
	// solve finishes its remaining iterations.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		t    []float64
		terr error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		t, terr = c.TRank(dctx, p.query, p.params.Walk)
		if terr != nil {
			cancel()
		}
	}()
	f, ferr := c.FRank(dctx, p.query, p.params.Walk)
	if ferr != nil {
		cancel()
	}
	<-done
	// Prefer the root cause over the sibling's cancellation casualty, and
	// the caller's own cancellation over both.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, solveErr := range []error{ferr, terr} {
		if solveErr != nil && !errors.Is(solveErr, context.Canceled) {
			return nil, &ClusterError{Err: solveErr}
		}
	}
	if ferr != nil || terr != nil {
		return nil, &ClusterError{Err: errors.Join(ferr, terr)}
	}
	top := trimZeroScores(core.TopN(core.Combine(f, t, p.params.Beta), p.k, p.keep))
	return &Response{Results: toResults(top), Method: Distributed, Converged: true, CertifiedK: len(top)}, nil
}

// rowView returns the row-serving view of the given snapshot, connecting to
// the worker fleet and validating it against the snapshot on first use — the
// same lazy, per-epoch discipline as coordinator(). A failed connect is not
// cached. The view reads through the engine's shared row cache, so rows of
// stripes an Apply left untouched stay warm across epochs.
func (e *Engine) rowView(ctx context.Context, snap *snapshot) (*rowserve.RemoteCSR, error) {
	if r := snap.rows.Load(); r != nil {
		return r, nil
	}
	snap.rowMu.Lock()
	defer snap.rowMu.Unlock()
	if r := snap.rows.Load(); r != nil {
		return r, nil
	}
	r, err := rowserve.Connect(ctx, e.workers, &rowserve.Options{Cache: e.rowCache})
	if err != nil {
		return nil, err
	}
	if r.NumNodes() != snap.view.NumNodes() {
		return nil, fmt.Errorf("roundtriprank: workers serve a %d-node graph, the engine view has %d nodes",
			r.NumNodes(), snap.view.NumNodes())
	}
	// Same safeguard as the exact-path coordinator: when the snapshot's view
	// exposes CSR arrays, the fleet must have been striped from that exact
	// graph (the fingerprint folds the epoch in, so a fleet still serving the
	// previous epoch is rejected until redeployed).
	if cv, ok := snap.view.(graph.CSRView); ok {
		if local := graph.GraphFingerprint(cv); local != r.GraphFingerprint() {
			return nil, fmt.Errorf("roundtriprank: workers were striped from a different graph (fingerprint %08x epoch %d, engine view has %08x epoch %d)",
				r.GraphFingerprint(), r.Epoch(), local, snap.epoch)
		}
	}
	snap.rows.Store(r)
	return r, nil
}

// rankRemote executes an online-method plan against the worker fleet: the
// pooled flat 2SBound searcher runs on the coordinator, streaming only the
// rows it touches from the stripe workers through the row cache. Scores are
// bit-identical to the local online path (rankOnline on the same snapshot);
// the response additionally carries the query's row-serving footprint in
// Rows. Fleet failures are wrapped in ClusterError, like rankDistributed.
func (e *Engine) rankRemote(ctx context.Context, p *plan) (*Response, error) {
	r, err := e.rowView(ctx, p.snap)
	if err != nil {
		return nil, &ClusterError{Err: err}
	}
	sess := r.Session(ctx)
	res, err := topk.TopKRows(ctx, sess, p.query, topk.Options{
		K:       p.k,
		Epsilon: p.epsilon,
		Alpha:   p.params.Walk.Alpha,
		Beta:    p.params.Beta,
		Scheme:  p.method.scheme,
		Keep:    p.keep,
		Budget:  p.topkBudget(ctx),
	})
	if err != nil {
		// The caller's own cancellation is not backend trouble.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, &ClusterError{Err: err}
	}
	// Same normalization as rankOnline: square roots map the squared-scale
	// lower bounds onto the exact path's f^(1−β)·t^β scale.
	results := toResults(trimZeroScores(res.TopK))
	for i := range results {
		results[i].Score = math.Sqrt(results[i].Score)
	}
	st := sess.Stats()
	return &Response{
		Results:         results,
		Method:          p.method,
		Converged:       res.Converged,
		Degraded:        res.Degraded,
		CertifiedK:      certifiedLen(res, results),
		AchievedEpsilon: res.AchievedEpsilon,
		Rounds:          res.Rounds,
		FSeen:           res.FSeen,
		TSeen:           res.TSeen,
		RSeen:           res.RSeen,
		Rows: &RowQueryStats{
			Fetched:     st.Fetched,
			RPCs:        st.RPCs,
			CacheHits:   st.CacheHits,
			CacheMisses: st.CacheMisses,
		},
	}, nil
}

// certifiedLen clamps the searcher's certified prefix to the trimmed result
// length. Certified positions always have strictly positive lower bounds, so
// the zero-score trim never cuts into the certified prefix; the clamp only
// guards the public CertifiedK ≤ len(Results) invariant.
func certifiedLen(res *topk.Result, results []Result) int {
	ck := res.CertifiedK
	if ck > len(results) {
		ck = len(results)
	}
	return ck
}

// rankOnline executes an online-method plan through topk.TopK, which picks
// the pooled scratch-state searcher for CSR-capable snapshot views and the
// map-based fallback otherwise. The scratch pool is process-wide: queries
// racing an Apply simply re-size the recycled arrays to their own snapshot's
// NumNodes on acquisition, so epoch swaps need no pool coordination.
func (e *Engine) rankOnline(ctx context.Context, p *plan) (*Response, error) {
	res, err := topk.TopK(ctx, p.snap.view, p.query, topk.Options{
		K:        p.k,
		Epsilon:  p.epsilon,
		Alpha:    p.params.Walk.Alpha,
		Beta:     p.params.Beta,
		Scheme:   p.method.scheme,
		Keep:     p.keep,
		ForceMap: e.onlineMapBaseline,
		Budget:   p.topkBudget(ctx),
	})
	if err != nil {
		return nil, err
	}
	// The online search ranks by lower bounds on the squared-scale measure
	// f^(2(1−β))·t^(2β); the square root maps them (order-preserving) onto the
	// exact path's f^(1−β)·t^β scale so scores are comparable across methods.
	// Zero-lower-bound candidates (possible on a non-converged best-effort
	// result) are trimmed, matching the exact path's contract.
	results := toResults(trimZeroScores(res.TopK))
	for i := range results {
		results[i].Score = math.Sqrt(results[i].Score)
	}
	return &Response{
		Results:         results,
		Method:          p.method,
		Converged:       res.Converged,
		Degraded:        res.Degraded,
		CertifiedK:      certifiedLen(res, results),
		AchievedEpsilon: res.AchievedEpsilon,
		Rounds:          res.Rounds,
		FSeen:           res.FSeen,
		TSeen:           res.TSeen,
		RSeen:           res.RSeen,
	}, nil
}

// RankBatch executes a batch of requests concurrently, sharing work across
// the exact-path requests: by the Linearity Theorem (Jeh & Widom), the F-Rank
// and T-Rank vectors of any query distribution are the query-weighted
// mixtures of the single-node vectors, so the batch solves each distinct
// (query node, α, tolerance) pair once — through the engine's LRU vector
// cache, which also persists across batches — and combines per request.
// Online-path requests run independently on the same bounded worker set,
// sized by GOMAXPROCS.
//
// The whole batch is validated before any work starts. The first execution
// error cancels the remaining requests and aborts the batch; cancelling ctx
// does the same and returns ctx.Err().
//
// On graphs without dangling nodes the mixture is identical to a direct
// solve; with dangling nodes the F-Rank side can differ slightly because the
// dangling-mass restart is query-dependent (each single-node solve restarts
// its dangling mass at its own node rather than at the mixture).
func (e *Engine) RankBatch(ctx context.Context, reqs []Request) ([]*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plans := make([]*plan, len(reqs))
	for i, req := range reqs {
		p, err := e.plan(req)
		if err != nil {
			return nil, fmt.Errorf("roundtriprank: request %d: %w", i, err)
		}
		plans[i] = p
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// With the engine cache disabled, a batch-local cache still guarantees
	// each distinct (node, α, tol) pair is solved once within this batch.
	cache := e.cache
	if cache == nil {
		nodes := 0
		for _, p := range plans {
			nodes += len(p.query.Nodes)
		}
		cache = newVecCache(nodes + 1)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(plans) {
		workers = len(plans)
	}
	out := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	var (
		wg      sync.WaitGroup
		nextIdx atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(plans) || bctx.Err() != nil {
					return
				}
				resp, err := e.execPlan(bctx, plans[i], cache)
				if err != nil {
					errs[i] = err
					cancel() // first failure aborts the rest of the batch
					return
				}
				out[i] = resp
			}
		}()
	}
	wg.Wait()

	// Report the lowest-indexed root-cause error; requests that died of the
	// batch-wide cancellation are only blamed when nothing else failed.
	var firstErr error
	firstIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr, firstIdx = err, i
		}
	}
	if firstErr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("roundtriprank: request %d: %w", firstIdx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// execPlan runs one validated plan: online plans directly, exact plans as a
// cached-vector mixture.
func (e *Engine) execPlan(ctx context.Context, p *plan, cache *vecCache) (*Response, error) {
	start := time.Now()
	var (
		resp *Response
		err  error
	)
	switch p.method.kind {
	case methodExact:
		resp, err = e.rankExactShared(ctx, p, cache)
	case methodDistributed:
		resp, err = e.rankDistributed(ctx, p)
	case methodRemoteOnline:
		resp, err = e.rankRemote(ctx, p)
	default:
		resp, err = e.rankOnline(ctx, p)
	}
	if err != nil {
		return nil, err
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// rankExactShared answers an exact-path plan from single-node vectors,
// fetching each through the given cache.
func (e *Engine) rankExactShared(ctx context.Context, p *plan, cache *vecCache) (*Response, error) {
	n := p.snap.view.NumNodes()
	f := make([]float64, n)
	t := make([]float64, n)
	for j, node := range p.query.Nodes {
		fv, tv, err := singleNodeVectors(ctx, p.snap, node, p.params.Walk, cache)
		if err != nil {
			return nil, err
		}
		w := p.query.Weights[j]
		for v := range f {
			f[v] += w * fv[v]
			t[v] += w * tv[v]
		}
	}
	top := trimZeroScores(core.TopN(core.Combine(f, t, p.params.Beta), p.k, p.keep))
	return &Response{Results: toResults(top), Method: Exact, Converged: true, CertifiedK: len(top)}, nil
}

// ApplyResult reports the outcome of one Engine.Apply: the committed graph
// snapshot and, when the engine fronts a worker cluster, how the redeploy
// reconciled the fleet (full stripe ships vs. cheap retags of stripes the
// commit did not touch).
type ApplyResult struct {
	// Graph is the committed snapshot the engine now serves.
	Graph *Graph
	// Epoch is the new serving epoch (Graph.Epoch()).
	Epoch uint64
	// StripesShipped and StripesRetagged count the worker reconciliation:
	// shipped stripes had content changed by the commit (or empty/mismatched
	// workers), retagged stripes were identical and only had their graph
	// fingerprint and epoch rebound. Both zero without workers. Under a
	// fleet manager they count per-member placements, not stripes (one
	// stripe on R members can retag R times).
	StripesShipped, StripesRetagged int
	// StripesRemoved counts stripes dropped from members that placement
	// moved them off (fleet engines only).
	StripesRemoved int
}

// Apply commits a staged Delta against the engine's current graph and swaps
// the engine to the resulting snapshot atomically. In-flight queries finish
// on the epoch they were planned against (their snapshot, vector-cache keys
// and coordinator are all pinned); queries planned after Apply returns see
// the new epoch. The vector cache drops every entry from older epochs.
//
// When the engine is configured with workers, Apply first reconciles the
// fleet with the new snapshot — shipping stripes whose content the commit
// changed and retagging the rest — and only then swaps, so a distributed
// query never plans against a graph its cluster does not serve yet. In-flight
// distributed queries of the previous epoch fail their pinned-fingerprint
// check once their worker's stripe moves (a 409/ClusterError); callers
// should retry, which re-plans on the new epoch. See docs/OPERATIONS.md.
//
// Apply calls are serialized; each Delta must have been staged against the
// snapshot it is applied to (stage with NewDelta(engine.View().(*Graph)) and
// apply promptly, or retry on the staleness error).
func (e *Engine) Apply(ctx context.Context, d *Delta) (*ApplyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	cur := e.snap.Load()
	base, ok := cur.view.(*Graph)
	if !ok {
		return nil, fmt.Errorf("roundtriprank: Apply needs the engine to serve a *Graph, not %T", cur.view)
	}
	ng, err := graph.Commit(base, d)
	if err != nil {
		// Commit failures are caller faults: a stale Delta, an unknown node, a
		// malformed edge. Mark them so HTTP layers can answer 4xx, not 5xx.
		return nil, &ValidationError{Err: err}
	}
	res := &ApplyResult{Graph: ng, Epoch: ng.Epoch()}
	switch {
	case e.fleetMgr != nil:
		st, err := e.fleetMgr.Reconcile(ctx, ng)
		if err != nil {
			return nil, &ClusterError{Err: fmt.Errorf("fleet reconcile for epoch %d: %w", ng.Epoch(), err)}
		}
		res.StripesShipped, res.StripesRetagged, res.StripesRemoved = st.Shipped, st.Retagged, st.Removed
	case len(e.workers) > 0:
		res.StripesShipped, res.StripesRetagged, err = RedeployStripes(ctx, ng, e.workers)
		if err != nil {
			return nil, &ClusterError{Err: fmt.Errorf("redeploy for epoch %d: %w", ng.Epoch(), err)}
		}
	}
	e.snap.Store(newSnapshot(ng))
	if e.cache != nil {
		e.cache.invalidateExcept(ng.Epoch())
	}
	return res, nil
}

// singleNodeVectors returns the exact F-Rank and T-Rank vectors of one query
// node through the given cache. The snapshot's epoch is part of the cache
// key, so vectors computed against one epoch are never served for another;
// an in-flight query keeps hitting (or repopulating) its own epoch's entries
// even while Apply swaps the engine forward. Callers must not modify the
// returned slices.
func singleNodeVectors(ctx context.Context, snap *snapshot, node NodeID, wp walk.Params, cache *vecCache) ([]float64, []float64, error) {
	return cache.get(ctx, vecKey{node: node, epoch: snap.epoch, alpha: wp.Alpha, tol: wp.Tol}, func() ([]float64, []float64, error) {
		single := walk.SingleNode(node)
		fv, err := walk.FRank(ctx, snap.view, single, wp)
		if err != nil {
			return nil, nil, err
		}
		tv, err := walk.TRank(ctx, snap.view, single, wp)
		if err != nil {
			return nil, nil, err
		}
		return fv, tv, nil
	})
}
