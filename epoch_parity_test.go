package roundtriprank

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"roundtriprank/internal/distributed"
)

// Cross-epoch parity suite: the acceptance gate of the live-graph subsystem.
// A graph mutated through Delta/Commit must be indistinguishable — node for
// node, bit for bit — from the same graph built from scratch, on every
// execution method; and an epoch rollover across a worker fleet must ship
// only the stripes whose content the commit actually changed.

// epochBase builds the 12-node typed base graph the cross-epoch tests mutate.
func epochBase(t testing.TB) *Graph {
	t.Helper()
	b := NewGraphBuilder()
	b.RegisterType(1, "paper")
	b.RegisterType(2, "author")
	b.RegisterType(3, "venue")
	var papers, authors [4]NodeID
	for i := 0; i < 4; i++ {
		papers[i] = b.AddNode(1, "paper:"+string(rune('0'+i)))
		authors[i] = b.AddNode(2, "author:"+string(rune('0'+i)))
	}
	v0 := b.AddNode(3, "venue:icde")
	v1 := b.AddNode(3, "venue:kdd")
	for i := 0; i < 4; i++ {
		b.MustAddUndirectedEdge(papers[i], authors[i], 1+0.25*float64(i))
		b.MustAddUndirectedEdge(papers[i], authors[(i+1)%4], 0.5)
	}
	b.MustAddUndirectedEdge(papers[0], v0, 2)
	b.MustAddUndirectedEdge(papers[1], v0, 1)
	b.MustAddUndirectedEdge(papers[2], v1, 1.5)
	b.MustAddUndirectedEdge(papers[3], v1, 1)
	b.MustAddEdge(papers[1], papers[0], 0.75)
	b.MustAddEdge(papers[2], papers[0], 0.25)
	b.MustAddEdge(papers[3], papers[2], 0.5)
	return b.MustBuild()
}

// stageEpochDelta stages the canonical mutation batch against base: a new
// paper and author wired in, a reweight, a directed and an undirected
// removal, and a node isolation.
func stageEpochDelta(t testing.TB, base *Graph) *Delta {
	t.Helper()
	d := NewDelta(base)
	p4 := d.AddNode(1, "paper:4")
	a4 := d.AddNode(2, "author:4")
	mustStage := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("stage: %v", err)
		}
	}
	mustStage(d.SetUndirectedEdge(p4, a4, 2))
	mustStage(d.SetUndirectedEdge(p4, d.NodeByLabel("venue:kdd"), 1))
	mustStage(d.SetEdge(p4, d.NodeByLabel("paper:0"), 0.5))
	mustStage(d.SetUndirectedEdge(d.NodeByLabel("paper:0"), d.NodeByLabel("author:0"), 3)) // reweight
	mustStage(d.RemoveEdge(d.NodeByLabel("paper:2"), d.NodeByLabel("paper:0")))
	mustStage(d.RemoveUndirectedEdge(d.NodeByLabel("paper:1"), d.NodeByLabel("author:2")))
	mustStage(d.RemoveNode(d.NodeByLabel("author:3")))
	return d
}

// epochScratch builds, from scratch, the graph that committing
// stageEpochDelta against epochBase must equal.
func epochScratch(t testing.TB) *Graph {
	t.Helper()
	b := NewGraphBuilder()
	b.RegisterType(1, "paper")
	b.RegisterType(2, "author")
	b.RegisterType(3, "venue")
	var papers, authors [4]NodeID
	for i := 0; i < 4; i++ {
		papers[i] = b.AddNode(1, "paper:"+string(rune('0'+i)))
		authors[i] = b.AddNode(2, "author:"+string(rune('0'+i)))
	}
	v0 := b.AddNode(3, "venue:icde")
	v1 := b.AddNode(3, "venue:kdd")
	p4 := b.AddNode(1, "paper:4")
	a4 := b.AddNode(2, "author:4")
	b.MustAddUndirectedEdge(papers[0], authors[0], 3) // reweighted
	b.MustAddUndirectedEdge(papers[0], authors[1], 0.5)
	b.MustAddUndirectedEdge(papers[1], authors[1], 1.25)
	// papers[1]<->authors[2] removed
	b.MustAddUndirectedEdge(papers[2], authors[2], 1.5)
	// authors[3] isolated: its papers[2]/papers[3] edges are gone
	b.MustAddUndirectedEdge(papers[3], authors[0], 0.5)
	b.MustAddUndirectedEdge(papers[0], v0, 2)
	b.MustAddUndirectedEdge(papers[1], v0, 1)
	b.MustAddUndirectedEdge(papers[2], v1, 1.5)
	b.MustAddUndirectedEdge(papers[3], v1, 1)
	b.MustAddEdge(papers[1], papers[0], 0.75)
	// papers[2]->papers[0] removed
	b.MustAddEdge(papers[3], papers[2], 0.5)
	b.MustAddUndirectedEdge(p4, a4, 2)
	b.MustAddUndirectedEdge(p4, v1, 1)
	b.MustAddEdge(p4, papers[0], 0.5)
	return b.MustBuild()
}

// requireBitIdentical asserts two responses rank the same nodes with
// bit-identical scores.
func requireBitIdentical(t *testing.T, label string, got, want *Response) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Node != want.Results[i].Node {
			t.Fatalf("%s rank %d: node %d, want %d", label, i, got.Results[i].Node, want.Results[i].Node)
		}
		if math.Float64bits(got.Results[i].Score) != math.Float64bits(want.Results[i].Score) {
			t.Fatalf("%s rank %d: score %v, want %v (not bit-identical)",
				label, i, got.Results[i].Score, want.Results[i].Score)
		}
	}
}

// TestCrossEpochParityAllMethods commits a delta through Engine.Apply and
// pins, for every Method, that ranking on the committed snapshot is
// bit-identical to ranking on the equivalent graph built from scratch. The
// mutated engine's worker fleet is rolled forward by Apply itself; the
// scratch engine gets its own fleet.
func TestCrossEpochParityAllMethods(t *testing.T) {
	base := epochBase(t)
	scratch := epochScratch(t)

	const workers = 3
	mutWorkers, err := LoopbackWorkers(base, workers)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	mutEngine, err := NewEngine(base, WithWorkers(mutWorkers...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	scratchWorkers, err := LoopbackWorkers(scratch, workers)
	if err != nil {
		t.Fatalf("LoopbackWorkers(scratch): %v", err)
	}
	scratchEngine, err := NewEngine(scratch, WithWorkers(scratchWorkers...))
	if err != nil {
		t.Fatalf("NewEngine(scratch): %v", err)
	}

	// Connect the mutated engine's coordinator on epoch 0 first, so the test
	// also covers reconnection across the rollover.
	if _, err := mutEngine.Rank(context.Background(), Request{
		Query: SingleNode(0), K: 3, Method: Distributed,
	}); err != nil {
		t.Fatalf("pre-rollover distributed query: %v", err)
	}

	res, err := mutEngine.Apply(context.Background(), stageEpochDelta(t, base))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Epoch != 1 || mutEngine.Epoch() != 1 {
		t.Fatalf("epoch after Apply: result %d, engine %d, want 1", res.Epoch, mutEngine.Epoch())
	}
	if res.StripesShipped+res.StripesRetagged != workers {
		t.Fatalf("redeploy covered %d of %d workers", res.StripesShipped+res.StripesRetagged, workers)
	}
	if g := res.Graph; g.NumNodes() != scratch.NumNodes() || g.NumEdges() != scratch.NumEdges() {
		t.Fatalf("committed graph %d nodes/%d edges, scratch %d/%d",
			g.NumNodes(), g.NumEdges(), scratch.NumNodes(), scratch.NumEdges())
	}

	queries := []Query{
		SingleNode(res.Graph.NodeByLabel("paper:0")),
		SingleNode(res.Graph.NodeByLabel("paper:4")), // a node born in the delta
		MultiNode(res.Graph.NodeByLabel("author:1"), res.Graph.NodeByLabel("venue:kdd")),
	}
	methods := []Method{Exact, TwoSBound, Distributed}
	for qi, q := range queries {
		for _, m := range methods {
			req := Request{Query: q, K: 6, Method: m, Beta: Float64(0.4)}
			got, err := mutEngine.Rank(context.Background(), req)
			if err != nil {
				t.Fatalf("q%d %s on committed: %v", qi, m, err)
			}
			want, err := scratchEngine.Rank(context.Background(), req)
			if err != nil {
				t.Fatalf("q%d %s on scratch: %v", qi, m, err)
			}
			requireBitIdentical(t, m.String(), got, want)
			if len(got.Results) == 0 {
				t.Fatalf("q%d %s: empty result set", qi, m)
			}
		}
	}

	// The isolated node must have dropped out of every ranking.
	removed := res.Graph.NodeByLabel("author:3")
	full, err := mutEngine.Rank(context.Background(), Request{
		Query: SingleNode(res.Graph.NodeByLabel("paper:0")), K: res.Graph.NumNodes(), Method: Exact,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range full.Results {
		if r.Node == removed {
			t.Fatalf("isolated node %d still ranked", removed)
		}
	}
}

// TestApplyRedeploysOnlyChangedStripes rolls a worker fleet through a commit
// that touches a single stripe's rows and asserts the redeploy ships exactly
// that stripe, retagging the rest — over HTTP workers, exercising the retag
// endpoint end to end.
func TestApplyRedeploysOnlyChangedStripes(t *testing.T) {
	base := epochBase(t)
	const workers = 3
	ts := httpWorkerCluster(t, base, workers)
	engine, err := NewEngine(base, WithWorkers(ts...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	// paper:0 is node 0, author:0 is node 1: reweighting the directed edge
	// 0->1 touches stripe 0's out-rows (node 0) and stripe 1's in-rows
	// (node 1); stripe 2's content is untouched.
	d := NewDelta(base)
	if err := d.SetEdge(base.NodeByLabel("paper:0"), base.NodeByLabel("author:0"), 5); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Apply(context.Background(), d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.StripesShipped != 2 || res.StripesRetagged != 1 {
		t.Fatalf("shipped %d, retagged %d; want 2 shipped, 1 retagged",
			res.StripesShipped, res.StripesRetagged)
	}

	// The rolled-forward cluster must agree with the local exact solve.
	for _, m := range []Method{Exact, Distributed} {
		resp, err := engine.Rank(context.Background(), Request{
			Query: SingleNode(base.NodeByLabel("paper:0")), K: 5, Method: m,
		})
		if err != nil {
			t.Fatalf("%s after rollover: %v", m, err)
		}
		if len(resp.Results) == 0 {
			t.Fatalf("%s after rollover: no results", m)
		}
	}
	exact, _ := engine.Rank(context.Background(), Request{Query: SingleNode(0), K: 5, Method: Exact})
	dist, err := engine.Rank(context.Background(), Request{Query: SingleNode(0), K: 5, Method: Distributed})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "distributed-vs-exact", dist, exact)

	// A worker still serving the old epoch must be rejected, not silently
	// mixed in: point a fresh engine's cluster at one stale worker.
	stale := httpWorkerCluster(t, base, workers) // epoch-0 stripes
	staleEngine, err := NewEngine(res.Graph, WithWorkers(stale...))
	if err != nil {
		t.Fatal(err)
	}
	_, err = staleEngine.Rank(context.Background(), Request{Query: SingleNode(0), K: 3, Method: Distributed})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("stale-epoch cluster accepted (err=%v)", err)
	}
}

// TestApplyAddingNodesShipsAllStripes pins the conservative side of stale
// detection: adding a node changes every stripe's row assignment, so nothing
// may be retagged.
func TestApplyAddingNodesShipsAllStripes(t *testing.T) {
	base := epochBase(t)
	workers, err := LoopbackWorkers(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(base, WithWorkers(workers...))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta(base)
	n := d.AddNode(1, "paper:new")
	if err := d.SetUndirectedEdge(n, base.NodeByLabel("venue:icde"), 1); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.StripesShipped != 2 || res.StripesRetagged != 0 {
		t.Fatalf("shipped %d, retagged %d; want 2 shipped, 0 retagged", res.StripesShipped, res.StripesRetagged)
	}
}

// TestApplySwapsSnapshotsAtomically pins the copy-on-write serving contract:
// a ranking that planned before the Apply keeps its snapshot (results and
// labels of epoch 0), while requests planned after see epoch 1, and the
// vector cache never crosses the epochs.
func TestApplySwapsSnapshotsAtomically(t *testing.T) {
	base := epochBase(t)
	engine, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	q := Request{Query: SingleNode(base.NodeByLabel("paper:0")), K: 4, Method: Exact}

	// RankBatch populates the epoch-keyed vector cache; the Apply below must
	// purge those entries.
	batch, err := engine.RankBatch(context.Background(), []Request{q})
	if err != nil {
		t.Fatal(err)
	}
	before := batch[0]
	if _, _, size := engine.CacheStats(); size == 0 {
		t.Fatal("batch did not populate the vector cache")
	}
	oldView := engine.View()
	res, err := engine.Apply(context.Background(), stageEpochDelta(t, base))
	if err != nil {
		t.Fatal(err)
	}
	if engine.View() == oldView {
		t.Fatal("Apply did not swap the view")
	}
	if _, _, size := engine.CacheStats(); size != 0 {
		t.Fatalf("vector cache kept %d stale entries across the epoch swap", size)
	}
	after, err := engine.Rank(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// The reweight around paper:0 changes its neighborhood's scores: the two
	// epochs must answer differently, and a scratch engine over the committed
	// graph must agree with the post-swap answer exactly.
	scratchEngine, err := NewEngine(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratchEngine.Rank(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "post-swap", after, want)
	same := len(before.Results) == len(after.Results)
	if same {
		for i := range before.Results {
			if before.Results[i] != after.Results[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("rankings identical across a mutating commit; the swap did nothing")
	}
	// Old epoch's view still answers (snapshots are immutable): an engine
	// over the old view is unaffected by the commit.
	oldEngine, err := NewEngine(oldView)
	if err != nil {
		t.Fatal(err)
	}
	againBefore, err := oldEngine.Rank(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "old-epoch", againBefore, before)
}

// TestWorkerRetagEndToEnd drives the retag RPC directly over HTTP: a matching
// content fingerprint rebinds the stripe, a mismatch answers 409 and leaves
// the worker serving its old identity.
func TestWorkerRetagEndToEnd(t *testing.T) {
	base := epochBase(t)
	s, err := distributed.BuildStripe(base, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(distributed.NewWorker(s).Handler())
	t.Cleanup(srv.Close)
	tr := DialWorker(srv.URL)
	rt := tr.(distributed.StripeRetagger)

	if err := rt.RetagStripe(context.Background(), 0xdeadbeef, 7, s.ContentFingerprint()); err != nil {
		t.Fatalf("matching retag failed: %v", err)
	}
	info, err := tr.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Graph != 0xdeadbeef || info.Epoch != 7 {
		t.Fatalf("retag did not rebind: %+v", info)
	}
	if err := rt.RetagStripe(context.Background(), 1, 8, s.ContentFingerprint()+1); err == nil {
		t.Fatal("mismatched retag accepted")
	}
	info, err = tr.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Graph != 0xdeadbeef || info.Epoch != 7 {
		t.Fatalf("failed retag had side effects: %+v", info)
	}
}
