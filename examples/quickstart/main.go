// Command quickstart builds the toy bibliographic network of Fig. 2 in the
// RoundTripRank paper and ranks its venues for the query term "spatio" under
// importance only (F-Rank), specificity only (T-Rank) and the balanced
// RoundTripRank, reproducing the intuition of Fig. 1: the venue v2 that is
// both important and specific wins under RoundTripRank.
package main

import (
	"context"
	"fmt"
	"log"

	"roundtriprank"
)

const (
	typeTerm  roundtriprank.NodeType = 1
	typePaper roundtriprank.NodeType = 2
	typeVenue roundtriprank.NodeType = 3
)

func main() {
	b := roundtriprank.NewGraphBuilder()
	b.RegisterType(typeTerm, "term")
	b.RegisterType(typePaper, "paper")
	b.RegisterType(typeVenue, "venue")

	t1 := b.AddNode(typeTerm, "term:spatio")
	t2 := b.AddNode(typeTerm, "term:transaction")
	papers := make([]roundtriprank.NodeID, 7)
	for i := range papers {
		papers[i] = b.AddNode(typePaper, fmt.Sprintf("paper:p%d", i+1))
	}
	v1 := b.AddNode(typeVenue, "venue:v1 (important, broad)")
	v2 := b.AddNode(typeVenue, "venue:v2 (important and specific)")
	v3 := b.AddNode(typeVenue, "venue:v3 (specific, small)")

	// Term-paper edges: t1 appears in p1..p5, t2 in p6, p7.
	for i := 0; i < 5; i++ {
		b.MustAddUndirectedEdge(t1, papers[i], 1)
	}
	b.MustAddUndirectedEdge(t2, papers[5], 1)
	b.MustAddUndirectedEdge(t2, papers[6], 1)
	// Paper-venue edges: v1 accepts p1, p2 plus the off-topic p6, p7; v2
	// accepts p3, p4; v3 accepts p5.
	for _, p := range []int{0, 1, 5, 6} {
		b.MustAddUndirectedEdge(papers[p], v1, 1)
	}
	b.MustAddUndirectedEdge(papers[2], v2, 1)
	b.MustAddUndirectedEdge(papers[3], v2, 1)
	b.MustAddUndirectedEdge(papers[4], v3, 1)
	g := b.MustBuild()

	// One Engine serves every query; the specificity bias is a per-request
	// override, and the venue restriction is a declarative filter applied
	// identically by the exact and online execution paths.
	ctx := context.Background()
	engine, err := roundtriprank.NewEngine(g)
	if err != nil {
		log.Fatal(err)
	}
	query := roundtriprank.SingleNode(t1)
	venueFilter := &roundtriprank.Filter{
		Types:        []roundtriprank.NodeType{typeVenue},
		ExcludeQuery: true,
	}

	for _, setting := range []struct {
		name string
		beta float64
	}{
		{"Importance only (F-Rank/PPR, beta=0)", 0},
		{"Specificity only (T-Rank, beta=1)", 1},
		{"RoundTripRank (balanced, beta=0.5)", 0.5},
	} {
		resp, err := engine.Rank(ctx, roundtriprank.Request{
			Query:  query,
			K:      3,
			Method: roundtriprank.Exact,
			Filter: venueFilter,
			Beta:   roundtriprank.Float64(setting.beta),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", setting.name)
		for i, r := range resp.Results {
			fmt.Printf("  %d. %-35s score=%.5f\n", i+1, g.Label(r.Node), r.Score)
		}
	}

	// Online top-K with 2SBound touches only a small neighborhood.
	resp, err := engine.Rank(ctx, roundtriprank.Request{
		Query:   query,
		K:       5,
		Method:  roundtriprank.TwoSBound,
		Epsilon: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Online top-5 (2SBound, eps=0.001, %d rounds):\n", resp.Rounds)
	for i, r := range resp.Results {
		fmt.Printf("  %d. %-35s lower bound=%.5f\n", i+1, g.Label(r.Node), r.Score)
	}
}
