// Command distributed demonstrates the AP/GP architecture of Sect. V-B: it
// stripes a synthetic bibliographic network across several in-process graph
// processors reachable over loopback TCP, runs online 2SBound top-K queries
// through the active processor, and reports how small the assembled active set
// is compared to the full graph — the observation that makes the distributed
// deployment practical.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"roundtriprank"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/distributed"
)

func main() {
	gps := flag.Int("gps", 3, "number of graph processors to stripe the graph across")
	scale := flag.Float64("scale", 0.2, "dataset scale relative to the default BibNet configuration")
	queries := flag.Int("queries", 5, "number of top-K queries to run")
	flag.Parse()

	net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(*scale))
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	fmt.Printf("Graph: %d nodes, %d edges (%.1f MB)\n", g.NumNodes(), g.NumEdges(),
		float64(g.SizeBytes())/(1<<20))

	cluster, err := distributed.StartCluster(g, *gps)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("Started %d graph processors:\n", len(cluster.GPs))
	for i, gp := range cluster.GPs {
		fmt.Printf("  GP %d at %s\n", i, gp.Addr())
	}

	// The Engine runs unchanged over the AP view: Auto sees a remote (untyped)
	// view and plans the online 2SBound search, which touches only the active
	// set.
	engine, err := roundtriprank.NewEngine(cluster.AP)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *queries && i < len(net.Papers); i++ {
		q := net.Papers[i*17%len(net.Papers)]
		resp, err := engine.Rank(context.Background(), roundtriprank.Request{
			Query:   roundtriprank.SingleNode(q),
			K:       10,
			Epsilon: 0.01,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQuery %s: top-%d via %s assembled from %d GP round trips\n",
			g.Label(q), len(resp.Results), resp.Method, cluster.AP.Requests())
		for rank, r := range resp.Results[:min(3, len(resp.Results))] {
			fmt.Printf("  %d. %s\n", rank+1, g.Label(r.Node))
		}
	}
	fmt.Printf("\nActive set after %d queries: %d nodes (%.1f KB) — %.2f%% of the graph\n",
		*queries, cluster.AP.ActiveNodes(), float64(cluster.AP.ActiveSetBytes())/1024,
		100*float64(cluster.AP.ActiveNodes())/float64(g.NumNodes()))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
