// Command distributed demonstrates both multi-process execution paths over a
// striped graph.
//
// First the coordinator/worker path: the graph is striped across several
// gpserver-protocol workers served over loopback HTTP, and the Engine's
// Distributed method fans exact power iterations out to them, returning
// bit-identical results to the local exact solver.
//
// Then the AP/GP path of Sect. V-B: the same stripes answer adjacency
// requests over TCP while the active processor runs the online 2SBound
// search, assembling only the query's active set — the observation that makes
// the distributed deployment practical.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/distributed"
)

func main() {
	gps := flag.Int("gps", 3, "number of workers to stripe the graph across")
	scale := flag.Float64("scale", 0.2, "dataset scale relative to the default BibNet configuration")
	queries := flag.Int("queries", 5, "number of top-K queries to run")
	flag.Parse()

	net_, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(*scale))
	if err != nil {
		log.Fatal(err)
	}
	g := net_.Graph
	fmt.Printf("Graph: %d nodes, %d edges (%.1f MB)\n", g.NumNodes(), g.NumEdges(),
		float64(g.SizeBytes())/(1<<20))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- Part 1: exact solves through the coordinator/worker subsystem. ---
	// Each worker serves one stripe over the real HTTP wire protocol, exactly
	// as a cmd/gpserver process would.
	transports, stop := startHTTPWorkers(ctx, g, *gps)
	defer stop()
	engine, err := roundtriprank.NewEngine(g, roundtriprank.WithWorkers(transports...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStarted %d HTTP stripe workers; comparing Distributed against Exact:\n", *gps)
	for i := 0; i < *queries && i < len(net_.Papers); i++ {
		q := net_.Papers[i*17%len(net_.Papers)]
		req := roundtriprank.Request{Query: roundtriprank.SingleNode(q), K: 5}
		req.Method = roundtriprank.Distributed
		dist, err := engine.Rank(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		req.Method = roundtriprank.Exact
		exact, err := engine.Rank(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		match := "IDENTICAL"
		if len(dist.Results) != len(exact.Results) {
			match = "DIVERGED"
		} else {
			for j := range exact.Results {
				if dist.Results[j] != exact.Results[j] {
					match = "DIVERGED"
					break
				}
			}
		}
		fmt.Printf("  %-28s top-%d %s (distributed %v, exact %v)\n",
			g.Label(q)+":", len(dist.Results), match, dist.Elapsed.Round(1000), exact.Elapsed.Round(1000))
		if i == 0 {
			for rank, r := range dist.Results[:min(3, len(dist.Results))] {
				fmt.Printf("      %d. %s\n", rank+1, g.Label(r.Node))
			}
		}
	}
	rpcs, retries := engine.ClusterStats()
	fmt.Printf("  Cluster: %d worker RPCs, %d retries\n", rpcs, retries)

	// --- Part 2: the online 2SBound search over the AP/GP active set. ---
	cluster, err := distributed.StartCluster(g, *gps)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	apEngine, err := roundtriprank.NewEngine(cluster.AP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStarted %d TCP graph processors for the online path:\n", len(cluster.GPs))
	for i := 0; i < *queries && i < len(net_.Papers); i++ {
		q := net_.Papers[i*17%len(net_.Papers)]
		resp, err := apEngine.Rank(ctx, roundtriprank.Request{
			Query:   roundtriprank.SingleNode(q),
			K:       10,
			Epsilon: 0.01,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s top-%d via %s from %d GP round trips\n",
			g.Label(q)+":", len(resp.Results), resp.Method, cluster.AP.Requests())
	}
	fmt.Printf("\nActive set after %d queries: %d nodes (%.1f KB) — %.2f%% of the graph\n",
		*queries, cluster.AP.ActiveNodes(), float64(cluster.AP.ActiveSetBytes())/1024,
		100*float64(cluster.AP.ActiveNodes())/float64(g.NumNodes()))
}

// startHTTPWorkers stripes g across n workers, each serving the gpserver
// wire protocol on an ephemeral loopback port, and dials a transport to each.
func startHTTPWorkers(ctx context.Context, g *roundtriprank.Graph, n int) ([]roundtriprank.Transport, func()) {
	transports := make([]roundtriprank.Transport, n)
	for i := 0; i < n; i++ {
		stripe, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		handler := distributed.NewWorker(stripe).Handler()
		go func() {
			if err := cliutil.Serve(ctx, ln, handler, cliutil.HTTPServerConfig{}); err != nil && err != http.ErrServerClosed {
				log.Printf("worker: %v", err)
			}
		}()
		transports[i] = roundtriprank.DialWorker("http://" + ln.Addr().String())
	}
	return transports, func() {
		for _, t := range transports {
			t.Close()
		}
	}
}
