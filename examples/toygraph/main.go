// Command toygraph reproduces Fig. 4 of the paper exactly: it enumerates all
// round trips of constant length L = L' = 2 on the toy bibliographic network
// of Fig. 2 and prints the per-target probabilities (v1 = 0.05, v2 = 0.1,
// v3 = 0.05, t1 = 0.25), then shows that the geometric-length RoundTripRank of
// Proposition 2 produces the same qualitative ordering.
package main

import (
	"context"
	"fmt"
	"log"

	"roundtriprank/internal/core"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func main() {
	toy := testgraphs.NewToy()
	g := toy.Graph

	probs, err := core.EnumerateRoundTrips(context.Background(), g, toy.T1, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 4 — round-trip probabilities from t1 with constant L = L' = 2:")
	for _, entry := range []struct {
		label string
		node  int
	}{
		{"v1", int(toy.V1)}, {"v2", int(toy.V2)}, {"v3", int(toy.V3)}, {"t1", int(toy.T1)},
	} {
		fmt.Printf("  target %-3s  probability %.4f\n", entry.label, probs[entry.node])
	}

	scores, err := core.Compute(context.Background(), g, walk.SingleNode(toy.T1), core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGeometric-length RoundTripRank (Proposition 2, alpha = 0.25):")
	fmt.Printf("  r(v1) = %.5f   (important, not specific)\n", scores.R[toy.V1])
	fmt.Printf("  r(v2) = %.5f   (important and specific — the winner)\n", scores.R[toy.V2])
	fmt.Printf("  r(v3) = %.5f   (specific, not important)\n", scores.R[toy.V3])
	fmt.Printf("\n  f(v1)=%.5f t(v1)=%.5f | f(v2)=%.5f t(v2)=%.5f | f(v3)=%.5f t(v3)=%.5f\n",
		scores.F[toy.V1], scores.T[toy.V1], scores.F[toy.V2], scores.T[toy.V2], scores.F[toy.V3], scores.T[toy.V3])
}
