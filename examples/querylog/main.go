// Command querylog runs the query-log tasks of the paper (Task 3: relevant
// URL, Task 4: equivalent search) on the synthetic click graph and compares
// RoundTripRank+ against the importance-only and specificity-only rankings,
// demonstrating the customizable trade-off: finding clicked URLs benefits from
// importance (small β) while finding equivalent phrasings of the same concept
// is inherently a specificity task (large β).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"roundtriprank/internal/baselines"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/eval"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/tasks"
	"roundtriprank/internal/walk"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale relative to the default QLog configuration")
	queries := flag.Int("queries", 60, "test queries per task")
	flag.Parse()

	cfg := datasets.ScaledQLogConfig(*scale)
	fmt.Printf("Generating QLog (%d concepts)...\n", cfg.Concepts)
	qlog, err := datasets.GenerateQLog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graph: %d nodes, %d directed edges\n\n", qlog.Graph.NumNodes(), qlog.Graph.NumEdges())

	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 150}
	measures := []baselines.Measure{
		baselines.NewFRank(),
		baselines.NewTRank(),
		baselines.NewRoundTripRank(),
		baselines.NewRoundTripRankPlus(0.3),
		baselines.NewRoundTripRankPlus(0.7),
	}

	for _, task := range tasks.QLogTasks() {
		instances, err := tasks.SampleQLog(qlog, task, *queries, 11)
		if err != nil {
			log.Fatal(err)
		}
		results, err := eval.EvaluateTask(context.Background(), qlog.Graph, instances, measures, []int{5, 10}, wp, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d queries)\n", task, len(instances))
		for _, r := range results {
			fmt.Printf("  %-20s NDCG@5=%.4f  NDCG@10=%.4f\n", r.Name, r.MeanNDCG[5], r.MeanNDCG[10])
		}
		fmt.Println()
	}

	// An example lookup: the phrases ranked closest to one query phrase under
	// a specificity-leaning RoundTripRank+.
	if len(qlog.Phrases) > 0 {
		q := qlog.Phrases[0]
		fmt.Printf("Example: phrases most similar to %q under RoundTripRank+ (beta=0.7)\n",
			qlog.Graph.Label(q))
		similar, err := eval.IllustrativeRanking(context.Background(), qlog.Graph, []graph.NodeID{q},
			baselines.NewRoundTripRankPlus(0.7), datasets.TypePhrase, 5, wp)
		if err != nil {
			log.Fatal(err)
		}
		for i, label := range similar {
			fmt.Printf("  %d. %s\n", i+1, label)
		}
	}
}
