// Command bibliographic reproduces the qualitative venue-ranking study of
// Fig. 1, 6 and 7: it generates the synthetic bibliographic network, issues
// the multi-term topic queries "spatio temporal data" and "semantic web", and
// prints the top venues under F-Rank/PPR (importance), T-Rank (specificity)
// and RoundTripRank (balanced), illustrating how broad venues dominate the
// importance-only ranking while RoundTripRank surfaces venues that are both
// important and tailored to the topic.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"roundtriprank/internal/baselines"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/eval"
	"roundtriprank/internal/walk"
)

func main() {
	scale := flag.Float64("scale", 0.3, "dataset scale relative to the default BibNet configuration")
	topK := flag.Int("k", 5, "venues to show per measure")
	flag.Parse()

	cfg := datasets.ScaledBibNetConfig(*scale)
	fmt.Printf("Generating BibNet (%d papers, %d authors)...\n", cfg.Papers, cfg.Authors)
	net, err := datasets.GenerateBibNet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graph: %d nodes, %d directed edges\n\n", net.Graph.NumNodes(), net.Graph.NumEdges())

	measures := []baselines.Measure{
		baselines.NewFRank(),
		baselines.NewTRank(),
		baselines.NewRoundTripRank(),
	}
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 150}

	for _, topic := range []string{"spatio temporal data", "semantic web"} {
		terms := net.QueryTermsFor(topic)
		if len(terms) == 0 {
			log.Fatalf("unknown topic %q", topic)
		}
		columns := map[string][]string{}
		order := []string{}
		for _, m := range measures {
			venues, err := eval.IllustrativeRanking(context.Background(), net.Graph, terms, m, datasets.TypeVenue, *topK, wp)
			if err != nil {
				log.Fatal(err)
			}
			columns[m.Name()] = venues
			order = append(order, m.Name())
		}
		fmt.Print(eval.RenderIllustrative(topic, columns, order))
		fmt.Println()
	}
}
