package roundtriprank

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"roundtriprank/internal/chaos"
	"roundtriprank/internal/distributed"
	"roundtriprank/internal/fleet"
)

// Chaos parity suite: the acceptance gate of fleet self-organization. With
// R=2 replication, killing any single worker — before or in the middle of a
// query — must leave Distributed and TwoSBoundRemote answers bit-identical
// to the local solvers at eps=0; recovery must complete within the pinned
// liveness bound and ship only the dead member's stripes; a rejoining member
// whose retained payload still fingerprint-matches costs zero re-ships; and
// every injected fault schedule is seed-deterministic, so the whole suite
// replays under -race.

// chaosFleetCluster boots n empty chaos-restartable HTTP workers, registers
// them with a fresh R=2 fleet manager, and reconciles g onto them.
func chaosFleetCluster(t testing.TB, g *Graph, n int, topts fleet.Options) (*Fleet, []*chaos.HTTPWorker) {
	t.Helper()
	m, err := NewFleet(FleetOptions{Stripes: n, Replication: 2, Table: topts})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	workers := make([]*chaos.HTTPWorker, n)
	for i := range workers {
		hw, err := chaos.StartHTTPWorker(distributed.NewWorker(nil))
		if err != nil {
			t.Fatalf("StartHTTPWorker: %v", err)
		}
		t.Cleanup(hw.Close)
		workers[i] = hw
		m.Table().Register(fmt.Sprintf("w%d", i), hw.URL())
	}
	if _, err := m.Reconcile(context.Background(), g); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	return m, workers
}

// restartWorker restarts hw, retrying briefly in case the OS has not released
// the port yet. A port stolen by another process is an environment flake, not
// a product bug, so the caller skips.
func restartWorker(t *testing.T, hw *chaos.HTTPWorker) {
	t.Helper()
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if err = hw.Restart(); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Skipf("could not restart worker on its port: %v", err)
}

// TestChaosKillAnyWorkerParity kills each worker of an R=2 fleet in turn and
// pins, on every test graph, that Distributed and TwoSBoundRemote stay
// bit-identical to the local Exact and TwoSBound paths while the fleet
// serves with the member down.
func TestChaosKillAnyWorkerParity(t *testing.T) {
	ctx := context.Background()
	for _, pg := range parityGraphs() {
		const n = 3
		m, workers := chaosFleetCluster(t, pg.graph, n, fleet.Options{})
		// Local baselines never touch the fleet, so one engine serves them all.
		base, err := NewEngine(pg.graph, WithFleet(m))
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", pg.name, err)
		}
		q := pg.queries[0]
		exact, err := base.Rank(ctx, Request{Query: SingleNode(q), K: 10, Epsilon: 0, Method: Exact})
		if err != nil {
			t.Fatalf("%s: exact baseline: %v", pg.name, err)
		}
		// The 2SBound comparison needs a K below the first exact-tie boundary
		// (the top-K set is otherwise not well defined at eps=0, and the bound
		// grinds for seconds trying to separate ties) — same gapK discipline as
		// the remote parity suite.
		full, err := base.Rank(ctx, Request{Query: SingleNode(q), K: pg.graph.NumNodes(), Epsilon: 0, Method: Exact})
		if err != nil {
			t.Fatalf("%s: full exact ranking: %v", pg.name, err)
		}
		k := gapK(full.Results, 10)
		var local *Response
		if k >= 1 {
			local, err = base.Rank(ctx, Request{Query: SingleNode(q), K: k, Epsilon: 0, Method: TwoSBound})
			if err != nil {
				t.Fatalf("%s: local 2sbound baseline: %v", pg.name, err)
			}
		}

		kills := 0
		for victim, hw := range workers {
			t.Run(fmt.Sprintf("%s/kill-w%d", pg.name, victim), func(t *testing.T) {
				hw.Kill()
				defer restartWorker(t, hw)
				kills++
				// A fresh engine keeps the remote row cache cold, so the query
				// below actually crosses the network with the member down.
				engine, err := NewEngine(pg.graph, WithFleet(m))
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				dist, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: 10, Epsilon: 0, Method: Distributed})
				if err != nil {
					t.Fatalf("distributed query with w%d dead: %v", victim, err)
				}
				requireBitIdentical(t, "distributed-vs-exact", dist, exact)
				if k >= 1 {
					remote, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: k, Epsilon: 0, Method: TwoSBoundRemote})
					if err != nil {
						t.Fatalf("remote query with w%d dead: %v", victim, err)
					}
					requireBitIdentical(t, "remote-vs-local", remote, local)
				}
			})
		}
		// Every member was dead at some point while every stripe was queried,
		// so each group must have routed around its preferred replica at least
		// once. (Guarded on kills so -run filtering of subtests stays green.)
		if h := base.ClusterHealth(); kills == n && h.Failovers == 0 {
			t.Errorf("%s: no failovers recorded while killing every member in turn", pg.name)
		} else if h.Replication != 2 || h.MembersAlive != n {
			t.Errorf("%s: health census off: %+v", pg.name, h)
		}
	}
}

// loopbackChaosFleet builds an R=2 fleet over in-process multi-stripe workers
// whose transports are chaos-wrapped, keyed per (member, stripe) so the
// schedule stays deterministic regardless of cross-stripe goroutine
// interleaving. It returns the per-member transport lists for kill control.
func loopbackChaosFleet(t testing.TB, g *Graph, n int, sched *chaos.Schedule) (*Fleet, map[string][]*chaos.Transport) {
	t.Helper()
	members := make(map[string]*distributed.Worker, n)
	for i := 0; i < n; i++ {
		members[fmt.Sprintf("w%d", i)] = distributed.NewWorker(nil)
	}
	var mu sync.Mutex
	byMember := make(map[string][]*chaos.Transport)
	dial := func(addr string, stripe int) distributed.Transport {
		id := strings.TrimPrefix(addr, "loop://")
		ct := sched.Wrap(distributed.NewLoopbackAt(members[id], stripe), fmt.Sprintf("%s/s%d", id, stripe))
		mu.Lock()
		byMember[id] = append(byMember[id], ct)
		mu.Unlock()
		return ct
	}
	m, err := NewFleet(FleetOptions{Stripes: n, Replication: 2, Dial: dial})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	for id := range members {
		m.Table().Register(id, "loop://"+id)
	}
	// The schedule's faults hit deploy RPCs too; retrying the reconcile is
	// itself deterministic (each attempt advances the schedule the same way).
	var rerr error
	for attempt := 0; attempt < 20; attempt++ {
		if _, rerr = m.Reconcile(context.Background(), g); rerr == nil {
			break
		}
	}
	if rerr != nil {
		t.Fatalf("Reconcile: %v", rerr)
	}
	return m, byMember
}

// TestChaosMidQueryKillParity arms deterministic mid-query kills: each member
// in turn dies after serving k more RPCs — for several k, so the death lands
// at different points inside the query's RPC stream — and both networked
// methods must fail over mid-flight and still answer bit-identically.
func TestChaosMidQueryKillParity(t *testing.T) {
	ctx := context.Background()
	pg := parityGraphs()[2] // cycle: every query's walk crosses all stripes
	const n = 3
	m, byMember := loopbackChaosFleet(t, pg.graph, n, chaos.NewSchedule(chaos.Config{Seed: 11}))
	base, err := NewEngine(pg.graph, WithFleet(m))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	q := pg.queries[0]
	exact, err := base.Rank(ctx, Request{Query: SingleNode(q), K: 10, Epsilon: 0, Method: Exact})
	if err != nil {
		t.Fatalf("exact baseline: %v", err)
	}
	full, err := base.Rank(ctx, Request{Query: SingleNode(q), K: pg.graph.NumNodes(), Epsilon: 0, Method: Exact})
	if err != nil {
		t.Fatalf("full exact ranking: %v", err)
	}
	k := gapK(full.Results, 10)
	var local *Response
	if k >= 1 {
		local, err = base.Rank(ctx, Request{Query: SingleNode(q), K: k, Epsilon: 0, Method: TwoSBound})
		if err != nil {
			t.Fatalf("local baseline: %v", err)
		}
	}

	for victim := 0; victim < n; victim++ {
		id := fmt.Sprintf("w%d", victim)
		for _, after := range []int{0, 1, 3, 7} {
			t.Run(fmt.Sprintf("kill-%s-after-%d", id, after), func(t *testing.T) {
				for _, tr := range byMember[id] {
					tr.KillAfter(after)
				}
				defer func() {
					for _, tr := range byMember[id] {
						tr.Revive()
					}
				}()
				engine, err := NewEngine(pg.graph, WithFleet(m))
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				dist, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: 10, Epsilon: 0, Method: Distributed})
				if err != nil {
					t.Fatalf("distributed query with %s dying mid-stream: %v", id, err)
				}
				requireBitIdentical(t, "mid-query-distributed", dist, exact)
				if k >= 1 {
					remote, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: k, Epsilon: 0, Method: TwoSBoundRemote})
					if err != nil {
						t.Fatalf("remote query with %s dying mid-stream: %v", id, err)
					}
					requireBitIdentical(t, "mid-query-remote", remote, local)
				}
			})
		}
	}
}

// TestChaosRecoveryAndRejoin walks the full incident arc under the pinned
// liveness bound (SuspectMisses=1, DeadMisses=2): a killed member is routed
// around immediately, turns suspect on the second tick and dead on the third,
// the recovery reconcile ships exactly the stripes the member held and
// nothing else, and the member's restart + re-registration converges with
// zero re-ships because its retained payload still fingerprint-matches.
func TestChaosRecoveryAndRejoin(t *testing.T) {
	ctx := context.Background()
	pg := parityGraphs()[0]
	m, workers := chaosFleetCluster(t, pg.graph, 3, fleet.Options{SuspectMisses: 1, DeadMisses: 2})
	engine, err := NewEngine(pg.graph, WithFleet(m))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	q := pg.queries[0]
	exact, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: 5, Epsilon: 0, Method: Exact})
	if err != nil {
		t.Fatalf("exact baseline: %v", err)
	}
	distReq := Request{Query: SingleNode(q), K: 5, Epsilon: 0, Method: Distributed}

	// The victim is stripe 0's preferred replica (rendezvous placement is a
	// pure function of the member set, so this is computable up front): a
	// Distributed query multiplies against every stripe, so killing it
	// guarantees at least one recorded failover.
	victim := fleet.Place(m.Stripes(), m.Replication(), []string{"w0", "w1", "w2"})[0][0]
	victimIdx := int(victim[1] - '0')
	heldByVictim := 0
	for _, group := range m.Placement() {
		for _, id := range group {
			if id == victim {
				heldByVictim++
			}
		}
	}

	// Phase 1 — failover: the instant after the kill, before any liveness
	// machinery has noticed, queries already succeed via the replicas.
	workers[victimIdx].Kill()
	during, err := engine.Rank(ctx, distReq)
	if err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	requireBitIdentical(t, "during-outage", during, exact)
	if h := engine.ClusterHealth(); h.Failovers == 0 {
		t.Errorf("outage absorbed without a recorded failover: %+v", h)
	}

	// Phase 2 — detection, pinned to the tick bound: alive on the first tick
	// (it consumes the registration's seen-mark), suspect on the second, dead
	// on the third. No wall clock anywhere.
	wantStates := []fleet.State{fleet.StateAlive, fleet.StateSuspect, fleet.StateDead}
	for tick, want := range wantStates {
		for i := range workers {
			if i != victimIdx {
				m.Table().Heartbeat(fmt.Sprintf("w%d", i))
			}
		}
		m.Table().Tick()
		mem, ok := m.Table().Lookup(victim)
		if !ok || mem.State != want {
			t.Fatalf("tick %d: %s state %v, want %v", tick+1, victim, mem.State, want)
		}
	}

	// Phase 3 — recovery reconcile: the survivors absorb exactly the dead
	// member's placements; nothing already in place moves.
	st, err := m.Reconcile(ctx, pg.graph)
	if err != nil {
		t.Fatalf("recovery reconcile: %v", err)
	}
	if st.Shipped != heldByVictim {
		t.Errorf("recovery shipped %d stripes, want exactly the dead member's %d", st.Shipped, heldByVictim)
	}
	if st.Retagged != 0 {
		t.Errorf("recovery retagged %d stripes; content never changed", st.Retagged)
	}
	for i, group := range m.Placement() {
		for _, id := range group {
			if id == victim {
				t.Errorf("stripe %d still placed on the dead member", i)
			}
		}
	}
	steady, err := engine.Rank(ctx, distReq)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	requireBitIdentical(t, "post-recovery", steady, exact)

	// Phase 4 — rejoin: the worker restarts with its stripe payload intact
	// (an on-disk stripe cache surviving a process restart). Fingerprint
	// validation makes the rejoin free: zero ships, and the members that
	// covered for it drop the extra copies.
	restartWorker(t, workers[victimIdx])
	m.Table().Register(victim, workers[victimIdx].URL())
	st, err = m.Reconcile(ctx, pg.graph)
	if err != nil {
		t.Fatalf("rejoin reconcile: %v", err)
	}
	if st.Shipped != 0 {
		t.Errorf("rejoin shipped %d stripes; retained payload should cost zero", st.Shipped)
	}
	if st.Removed != heldByVictim {
		t.Errorf("rejoin removed %d covering copies, want %d", st.Removed, heldByVictim)
	}
	back := 0
	for _, group := range m.Placement() {
		for _, id := range group {
			if id == victim {
				back++
			}
		}
	}
	if back != heldByVictim {
		t.Errorf("rejoined member serves %d stripes, held %d before the outage", back, heldByVictim)
	}
	after, err := engine.Rank(ctx, distReq)
	if err != nil {
		t.Fatalf("query after rejoin: %v", err)
	}
	requireBitIdentical(t, "post-rejoin", after, exact)
}

// TestChaosSeededScheduleIsDeterministic replays an identical fault schedule
// twice — random transient failures injected under every multiply — and pins
// that both runs answer bit-identically AND inject the identical per-target
// fault counts. This is the property that makes every other chaos test
// replayable under -race: goroutine interleavings may differ, the schedule
// may not.
func TestChaosSeededScheduleIsDeterministic(t *testing.T) {
	ctx := context.Background()
	pg := parityGraphs()[1] // line graph

	type runResult struct {
		answers string
		faults  map[string]int64
	}
	run := func() runResult {
		sched := chaos.NewSchedule(chaos.Config{Seed: 5, FailRate: 0.1})
		m, byMember := loopbackChaosFleet(t, pg.graph, 3, sched)
		engine, err := NewEngine(pg.graph, WithFleet(m))
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		var answers strings.Builder
		for round := 0; round < 3; round++ {
			for _, q := range pg.queries {
				resp, err := engine.Rank(ctx, Request{Query: SingleNode(q), K: 5, Epsilon: 0, Method: Distributed})
				if err != nil {
					t.Fatalf("round %d q%d: %v", round, q, err)
				}
				fmt.Fprintf(&answers, "%d/%d:%+v\n", round, q, resp.Results)
			}
		}
		faults := make(map[string]int64)
		for id, trs := range byMember {
			for _, tr := range trs {
				f, s := tr.InjectedFaults()
				faults[id] += f + s
			}
		}
		return runResult{answers.String(), faults}
	}

	a, b := run(), run()
	if a.answers != b.answers {
		t.Errorf("same seed, different answers:\nrun1:\n%s\nrun2:\n%s", a.answers, b.answers)
	}
	total := int64(0)
	for id, n := range a.faults {
		if b.faults[id] != n {
			t.Errorf("member %s: run1 injected %d faults, run2 %d", id, n, b.faults[id])
		}
		total += n
	}
	if total == 0 {
		t.Errorf("schedule injected no faults; the determinism claim is vacuous")
	}
}
