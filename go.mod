module roundtriprank

go 1.24
