package datasets

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"roundtriprank/internal/graph"
)

// QLogConfig controls the synthetic query-log (click graph) generator.
type QLogConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Concepts is the number of underlying search intents.
	Concepts int
	// MaxPhrasesPerConcept caps the equivalent phrasings of one concept
	// (word permutations and stop-word variants); at least one per concept.
	MaxPhrasesPerConcept int
	// URLsPerConcept is the number of concept-specific URLs.
	URLsPerConcept int
	// HubClickProb is the probability that a phrase also has clicks on one of
	// the broadly popular hub URLs, which injects the popularity skew that
	// makes importance-only ranking insufficient.
	HubClickProb float64
	// MaxClicks is the maximum click count on an edge (weights are 1..MaxClicks).
	MaxClicks int
}

// DefaultQLogConfig returns the effectiveness-scale configuration (roughly the
// size of the paper's 23k-node QLog subgraph).
func DefaultQLogConfig() QLogConfig {
	return QLogConfig{
		Seed:                 2,
		Concepts:             4200,
		MaxPhrasesPerConcept: 4,
		URLsPerConcept:       3,
		HubClickProb:         0.55,
		MaxClicks:            30,
	}
}

// SmallQLogConfig returns a small configuration for unit tests.
func SmallQLogConfig() QLogConfig {
	cfg := DefaultQLogConfig()
	cfg.Concepts = 150
	return cfg
}

// ScaledQLogConfig scales the default configuration for the scalability
// experiments.
func ScaledQLogConfig(factor float64) QLogConfig {
	cfg := DefaultQLogConfig()
	cfg.Concepts = int(float64(cfg.Concepts) * factor)
	if cfg.Concepts < 20 {
		cfg.Concepts = 20
	}
	return cfg
}

// QLog is a generated click graph plus the metadata used by Tasks 3 and 4.
type QLog struct {
	Graph   *graph.Graph
	Phrases []graph.NodeID
	URLs    []graph.NodeID
	// ConceptOf maps a phrase node to its concept index; phrases with the same
	// concept are the Task 4 ground truth ("equivalent searches").
	ConceptOf map[graph.NodeID]int
	// PhrasesOfConcept is the inverse mapping, in phrase insertion order.
	PhrasesOfConcept map[int][]graph.NodeID
	// ClickedURLs maps a phrase node to the URLs it has clicks on (the Task 3
	// ground-truth candidates).
	ClickedURLs map[graph.NodeID][]graph.NodeID
}

// GenerateQLog builds a synthetic phrase-URL click graph.
func GenerateQLog(cfg QLogConfig) (*QLog, error) {
	if cfg.Concepts <= 0 {
		return nil, fmt.Errorf("datasets: QLog needs a positive concept count")
	}
	if cfg.MaxPhrasesPerConcept <= 0 {
		cfg.MaxPhrasesPerConcept = 1
	}
	if cfg.URLsPerConcept <= 0 {
		cfg.URLsPerConcept = 2
	}
	if cfg.MaxClicks <= 0 {
		cfg.MaxClicks = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	RegisterTypes(b)
	q := &QLog{
		ConceptOf:        make(map[graph.NodeID]int),
		PhrasesOfConcept: make(map[int][]graph.NodeID),
		ClickedURLs:      make(map[graph.NodeID][]graph.NodeID),
	}

	// Hub URLs shared across many concepts.
	hubs := make([]graph.NodeID, len(hubURLHosts))
	for i, host := range hubURLHosts {
		hubs[i] = b.AddNode(TypeURL, "url:http://www."+host+"/")
		q.URLs = append(q.URLs, hubs[i])
	}
	hubPick := zipfWeights(len(hubs), 1.0)

	addClick := func(phrase, url graph.NodeID, clicks float64) {
		b.MustAddUndirectedEdge(phrase, url, clicks)
		q.ClickedURLs[phrase] = append(q.ClickedURLs[phrase], url)
	}

	usedConcepts := map[string]bool{}
	for c := 0; c < cfg.Concepts; c++ {
		// Concept = 2-4 distinct non-stop words from the vocabulary, unique as
		// a set across concepts so that Task 4 equivalence classes are exactly
		// the per-concept phrase groups.
		var words []string
		for attempt := 0; ; attempt++ {
			nWords := 2 + rng.Intn(3)
			words = words[:0]
			used := map[string]bool{}
			for len(words) < nWords {
				w := conceptVocabulary[rng.Intn(len(conceptVocabulary))]
				if !used[w] {
					used[w] = true
					words = append(words, w)
				}
			}
			key := NormalizePhrase(strings.Join(words, " "))
			if !usedConcepts[key] {
				usedConcepts[key] = true
				break
			}
			if attempt > 200 {
				// Vocabulary exhausted for this size; extend with a unique
				// disambiguating token.
				words = append(words, fmt.Sprintf("v%d", c))
				usedConcepts[NormalizePhrase(strings.Join(words, " "))] = true
				break
			}
		}

		// Concept-specific URLs.
		urls := make([]graph.NodeID, 0, cfg.URLsPerConcept)
		for u := 0; u < cfg.URLsPerConcept; u++ {
			id := b.AddNode(TypeURL, fmt.Sprintf("url:http://%s%d-%d.com/", strings.Join(words, "-"), c, u))
			urls = append(urls, id)
			q.URLs = append(q.URLs, id)
		}

		// Equivalent phrases: permutations and stop-word decorated variants of
		// the same word set.
		nPhrases := 1 + rng.Intn(cfg.MaxPhrasesPerConcept)
		seenPhrase := map[string]bool{}
		for p := 0; p < nPhrases; p++ {
			variant := phraseVariant(rng, words, p)
			if seenPhrase[variant] {
				continue
			}
			seenPhrase[variant] = true
			phrase := b.AddNode(TypePhrase, "phrase:"+variant)
			q.Phrases = append(q.Phrases, phrase)
			q.ConceptOf[phrase] = c
			q.PhrasesOfConcept[c] = append(q.PhrasesOfConcept[c], phrase)

			// Clicks on the concept URLs (Zipf-skewed) ...
			for ui, url := range urls {
				if ui > 0 && rng.Float64() < 0.3 {
					continue
				}
				clicks := 1 + rng.Intn(cfg.MaxClicks/(ui+1)+1)
				addClick(phrase, url, float64(clicks))
			}
			// ... and sometimes on a popular hub URL.
			if rng.Float64() < cfg.HubClickProb {
				hub := hubs[sample(rng, hubPick)]
				addClick(phrase, hub, float64(1+rng.Intn(cfg.MaxClicks)))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	q.Graph = g
	return q, nil
}

// phraseVariant renders an equivalent phrasing of the concept's word set:
// variant 0 is the canonical order, later variants shuffle the words and may
// insert stop words, preserving the non-stop word set that defines Task 4
// equivalence.
func phraseVariant(rng *rand.Rand, words []string, variant int) string {
	perm := append([]string(nil), words...)
	if variant > 0 {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	if variant >= 2 {
		stops := []string{"the", "best", "how", "to", "for"}
		pos := rng.Intn(len(perm) + 1)
		stop := stops[rng.Intn(len(stops))]
		perm = append(perm[:pos], append([]string{stop}, perm[pos:]...)...)
	}
	return strings.Join(perm, " ")
}

// NormalizePhrase returns the canonical concept key of a phrase label: its
// sorted non-stop words joined by spaces. Two phrases are Task-4 equivalent
// iff their normalized forms are equal ("the apple ipod" ~ "ipod of apple").
func NormalizePhrase(label string) string {
	label = strings.TrimPrefix(label, "phrase:")
	fields := strings.Fields(label)
	var kept []string
	for _, f := range fields {
		if !stopWords[strings.ToLower(f)] {
			kept = append(kept, strings.ToLower(f))
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, " ")
}

// Snapshots returns cumulative snapshots of the click graph, modelling log
// growth over time: the i-th snapshot keeps the phrases of the first
// (i+1)/count fraction of concepts and every URL they click.
func (q *QLog) Snapshots(count int) ([]*graph.Subgraph, error) {
	if count <= 0 {
		return nil, fmt.Errorf("datasets: snapshot count must be positive")
	}
	maxConcept := 0
	for _, c := range q.ConceptOf {
		if c > maxConcept {
			maxConcept = c
		}
	}
	out := make([]*graph.Subgraph, 0, count)
	for i := 1; i <= count; i++ {
		cut := (maxConcept + 1) * i / count
		keep := make(map[graph.NodeID]bool)
		for c := 0; c < cut; c++ {
			for _, phrase := range q.PhrasesOfConcept[c] {
				keep[phrase] = true
				for _, url := range q.ClickedURLs[phrase] {
					keep[url] = true
				}
			}
		}
		nodes := make([]graph.NodeID, 0, len(keep))
		for v := range keep {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		out = append(out, graph.Induced(q.Graph, nodes))
	}
	return out, nil
}
