package datasets

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"roundtriprank/internal/graph"
)

// This file implements the scale harness's synthetic graph generator: R-MAT
// (recursive matrix) graphs in the Graph500 parameterization. R-MAT drops
// each edge into the adjacency matrix by recursively descending into one of
// four quadrants with probabilities A, B, C, D; skewed probabilities yield
// the power-law degree distributions and community structure of real web and
// social graphs, at any node count, from a single seed. The generator is
// deliberately single-threaded and indexes no global state, so the same
// config produces a byte-identical edge list on every run and at every
// GOMAXPROCS (rmat_test.go pins this).

// RMATConfig parameterizes GenerateRMAT.
type RMATConfig struct {
	// Seed is the deterministic random seed; equal configs generate equal
	// graphs.
	Seed int64
	// Nodes is the node count (≥ 2). Unlike classic R-MAT the count need not
	// be a power of two: candidates outside [0, Nodes) are rejected and
	// redrawn.
	Nodes int
	// EdgeFactor is the number of directed edge draws per node (Graph500
	// convention); the distinct edge count comes out slightly lower after
	// duplicate collapse.
	EdgeFactor int
	// A, B, C, D are the quadrant probabilities (top-left, top-right,
	// bottom-left, bottom-right); they must be non-negative and sum to 1.
	// A > D skews mass toward low-numbered nodes, producing the power-law
	// hubs; A = B = C = D = 0.25 degenerates to an Erdős–Rényi graph.
	A, B, C, D float64
	// TypePeriod assigns node types cyclically: node v gets
	// TypePeriod[v % len(TypePeriod)], making generated graphs exercise the
	// same Filter machinery as the bibliographic networks. Empty means every
	// node is graph.Untyped.
	TypePeriod []graph.Type
	// Weight is the weight of every edge; zero means 1.
	Weight float64
}

// DefaultRMATConfig returns the Graph500 reference parameters (skew
// 0.57/0.19/0.19/0.05, edge factor 8 — half the Graph500 16 because these
// graphs are directed rather than symmetrized) for the given node count.
func DefaultRMATConfig(nodes int) RMATConfig {
	return RMATConfig{
		Nodes:      nodes,
		EdgeFactor: 8,
		A:          0.57,
		B:          0.19,
		C:          0.19,
		D:          0.05,
		TypePeriod: []graph.Type{TypePaper, TypeAuthor, TypeTerm, TypeVenue},
	}
}

func (cfg RMATConfig) validate() error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("datasets: rmat: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Nodes > 1<<31-1 {
		return fmt.Errorf("datasets: rmat: %d nodes exceeds the int32 node-ID space", cfg.Nodes)
	}
	if cfg.EdgeFactor < 1 {
		return fmt.Errorf("datasets: rmat: edge factor must be ≥ 1, got %d", cfg.EdgeFactor)
	}
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || cfg.D < 0 {
		return fmt.Errorf("datasets: rmat: quadrant probabilities must be non-negative")
	}
	if sum := cfg.A + cfg.B + cfg.C + cfg.D; sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("datasets: rmat: quadrant probabilities sum to %g, want 1", sum)
	}
	// Written to reject NaN too; zero means the default weight of 1.
	if !(cfg.Weight >= 0) || math.IsInf(cfg.Weight, 1) {
		return fmt.Errorf("datasets: rmat: weight must be finite and non-negative (zero means 1), got %g", cfg.Weight)
	}
	return nil
}

// Edge is one directed edge of a generated edge list.
type Edge struct {
	From, To graph.NodeID
}

// RMATEdges generates the deduplicated, sorted edge list of an R-MAT graph.
// Self-loops and duplicate draws are discarded, so the result typically holds
// slightly fewer than Nodes×EdgeFactor edges. The output is sorted by
// (From, To) and fully determined by the config.
func RMATEdges(cfg RMATConfig) ([]Edge, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	levels := 0
	for 1<<levels < cfg.Nodes {
		levels++
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	target := cfg.Nodes * cfg.EdgeFactor
	keys := make([]uint64, 0, target)
	// Each draw descends the quadrant tree once; out-of-range endpoints (node
	// counts that are not powers of two) and self-loops are rejected and
	// redrawn. The attempt cap only guards degenerate configs (e.g. A≈1 on a
	// 2-node graph, where nearly every draw is the self-loop 0→0).
	maxAttempts := 100 * target
	drawn := 0
	for attempt := 0; drawn < target && attempt < maxAttempts; attempt++ {
		from, to := 0, 0
		for l := 0; l < levels; l++ {
			u := rng.Float64()
			from <<= 1
			to <<= 1
			switch {
			case u < cfg.A:
			case u < cfg.A+cfg.B:
				to |= 1
			case u < cfg.A+cfg.B+cfg.C:
				from |= 1
			default:
				from |= 1
				to |= 1
			}
		}
		if from >= cfg.Nodes || to >= cfg.Nodes || from == to {
			continue
		}
		keys = append(keys, uint64(from)<<32|uint64(to))
		drawn++
	}
	if drawn < target {
		return nil, fmt.Errorf("datasets: rmat: only %d of %d draws landed in range after %d attempts", drawn, target, maxAttempts)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	edges := make([]Edge, 0, len(keys))
	var prev uint64
	for i, k := range keys {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		edges = append(edges, Edge{From: graph.NodeID(k >> 32), To: graph.NodeID(uint32(k))})
	}
	return edges, nil
}

// RMAT is a generated R-MAT graph together with its provenance.
type RMAT struct {
	Graph *graph.Graph
	// Config is the generating configuration.
	Config RMATConfig
	// Edges is the number of distinct directed edges.
	Edges int
}

// GenerateRMAT generates the R-MAT graph for cfg: RMATEdges assembled into an
// immutable CSR graph through the bulk Builder path (no per-node labels), with
// types assigned cyclically from cfg.TypePeriod. Same config, same graph,
// bit for bit.
func GenerateRMAT(cfg RMATConfig) (*RMAT, error) {
	edges, err := RMATEdges(cfg)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder()
	RegisterTypes(b)
	var typeAt func(i int) graph.Type
	if len(cfg.TypePeriod) > 0 {
		period := cfg.TypePeriod
		typeAt = func(i int) graph.Type { return period[i%len(period)] }
	}
	b.AddNodes(cfg.Nodes, typeAt)
	w := cfg.Weight
	if w == 0 {
		w = 1
	}
	for _, e := range edges {
		b.MustAddEdge(e.From, e.To, w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &RMAT{Graph: g, Config: cfg, Edges: len(edges)}, nil
}

// WriteEdgeList writes edges in the SNAP text format LoadEdgeList reads: a
// comment header, then one tab-separated "from to" pair per line. The output
// is a pure function of the edge slice, which is what makes "same seed ⇒
// byte-identical edge list" testable end to end.
func WriteEdgeList(w io.Writer, edges []Edge) error {
	if _, err := fmt.Fprintf(w, "# Directed edge list: %d edges\n", len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return nil
}
