package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"roundtriprank/internal/graph"
)

// BibNetConfig controls the synthetic bibliographic network generator.
type BibNetConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Papers is the number of paper nodes.
	Papers int
	// Authors is the size of the author population.
	Authors int
	// ExtraTermsPerTopic adds generic vocabulary terms per topic beyond the
	// named characteristic terms.
	ExtraTermsPerTopic int
	// TermsPerPaper is the number of term edges per paper.
	TermsPerPaper int
	// MaxAuthorsPerPaper caps the authors per paper (at least one).
	MaxAuthorsPerPaper int
	// CitationsPerPaper is the expected number of outgoing citations.
	CitationsPerPaper int
	// BroadVenueBias is the probability that a paper is published in one of
	// its area's broad venues rather than its topic's specific venue. Broad
	// venues therefore accumulate papers from every topic (important but not
	// specific), while specific venues stay focused.
	BroadVenueBias float64
}

// DefaultBibNetConfig returns the effectiveness-scale configuration used by
// the Fig. 5–10 reproductions: roughly the size of the paper's hand-picked
// 28-venue subgraph (about 20k nodes, 250k directed edges).
func DefaultBibNetConfig() BibNetConfig {
	return BibNetConfig{
		Seed:               1,
		Papers:             9000,
		Authors:            5200,
		ExtraTermsPerTopic: 28,
		TermsPerPaper:      9,
		MaxAuthorsPerPaper: 4,
		CitationsPerPaper:  6,
		BroadVenueBias:     0.62,
	}
}

// SmallBibNetConfig returns a small configuration for unit tests.
func SmallBibNetConfig() BibNetConfig {
	cfg := DefaultBibNetConfig()
	cfg.Papers = 400
	cfg.Authors = 250
	cfg.ExtraTermsPerTopic = 8
	cfg.TermsPerPaper = 6
	cfg.CitationsPerPaper = 3
	return cfg
}

// ScaledBibNetConfig scales the default configuration by the given factor,
// used by the efficiency and scalability experiments (Fig. 11–13).
func ScaledBibNetConfig(factor float64) BibNetConfig {
	cfg := DefaultBibNetConfig()
	cfg.Papers = int(float64(cfg.Papers) * factor)
	cfg.Authors = int(float64(cfg.Authors) * factor)
	if cfg.Papers < 50 {
		cfg.Papers = 50
	}
	if cfg.Authors < 30 {
		cfg.Authors = 30
	}
	return cfg
}

// BibNet is a generated bibliographic network together with the metadata the
// evaluation tasks need.
type BibNet struct {
	Graph *graph.Graph
	// Papers, Authors, Terms, Venues list the node IDs of each type in
	// generation order (papers are ordered by publication time, which the
	// snapshot builder relies on).
	Papers  []graph.NodeID
	Authors []graph.NodeID
	Terms   []graph.NodeID
	Venues  []graph.NodeID
	// AuthorsOf and VenueOf record the ground-truth associations used by
	// Task 1 (Author) and Task 2 (Venue).
	AuthorsOf map[graph.NodeID][]graph.NodeID
	VenueOf   map[graph.NodeID]graph.NodeID
	// TopicTerms maps a topic name ("spatio temporal data") to its
	// characteristic term node IDs, used by the illustrative venue-ranking
	// examples of Fig. 6 and Fig. 7.
	TopicTerms map[string][]graph.NodeID
}

// GenerateBibNet builds a synthetic bibliographic network.
func GenerateBibNet(cfg BibNetConfig) (*BibNet, error) {
	if cfg.Papers <= 0 || cfg.Authors <= 0 {
		return nil, fmt.Errorf("datasets: BibNet needs positive paper and author counts")
	}
	if cfg.TermsPerPaper <= 0 {
		cfg.TermsPerPaper = 6
	}
	if cfg.MaxAuthorsPerPaper <= 0 {
		cfg.MaxAuthorsPerPaper = 3
	}
	if cfg.BroadVenueBias < 0 || cfg.BroadVenueBias > 1 {
		return nil, fmt.Errorf("datasets: BroadVenueBias must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	areas := defaultAreas()

	b := graph.NewBuilder()
	RegisterTypes(b)
	net := &BibNet{
		AuthorsOf:  make(map[graph.NodeID][]graph.NodeID),
		VenueOf:    make(map[graph.NodeID]graph.NodeID),
		TopicTerms: make(map[string][]graph.NodeID),
	}

	// Venues: broad venues per area plus one specific venue per topic.
	type venueInfo struct {
		id    graph.NodeID
		area  int
		topic int // -1 for broad venues
	}
	var venues []venueInfo
	for ai, area := range areas {
		for _, name := range area.BroadVenues {
			id := b.AddNode(TypeVenue, "venue:"+name)
			venues = append(venues, venueInfo{id: id, area: ai, topic: -1})
			net.Venues = append(net.Venues, id)
		}
		for ti, topic := range area.Topics {
			id := b.AddNode(TypeVenue, "venue:"+topic.SpecificVenue)
			venues = append(venues, venueInfo{id: id, area: ai, topic: ti})
			net.Venues = append(net.Venues, id)
		}
	}

	// Terms: named characteristic terms (shared across topics when repeated)
	// plus generic per-topic vocabulary and a pool of common filler terms.
	seenTerms := make(map[graph.NodeID]bool)
	termID := func(word string) graph.NodeID {
		id := b.AddNode(TypeTerm, "term:"+word)
		if !seenTerms[id] {
			seenTerms[id] = true
			net.Terms = append(net.Terms, id)
		}
		return id
	}
	topicTermIDs := make([][][]graph.NodeID, len(areas)) // [area][topic][]
	for ai, area := range areas {
		topicTermIDs[ai] = make([][]graph.NodeID, len(area.Topics))
		for ti, topic := range area.Topics {
			ids := make([]graph.NodeID, 0, len(topic.Terms)+cfg.ExtraTermsPerTopic)
			for _, w := range topic.Terms {
				ids = append(ids, termID(w))
			}
			for e := 0; e < cfg.ExtraTermsPerTopic; e++ {
				ids = append(ids, termID(fmt.Sprintf("%s-%s-x%d", area.Name, topic.Name[:3], e)))
			}
			topicTermIDs[ai][ti] = ids
			net.TopicTerms[topic.Name] = append([]graph.NodeID(nil), ids[:len(topic.Terms)]...)
		}
	}
	commonTerms := make([]graph.NodeID, 0, 40)
	for i := 0; i < 40; i++ {
		commonTerms = append(commonTerms, termID(fmt.Sprintf("common-%d", i)))
	}

	// Authors: each has a home (area, topic) and Zipf productivity.
	type authorInfo struct {
		id    graph.NodeID
		area  int
		topic int
	}
	authors := make([]authorInfo, cfg.Authors)
	for i := range authors {
		ai := rng.Intn(len(areas))
		ti := rng.Intn(len(areas[ai].Topics))
		id := b.AddNode(TypeAuthor, fmt.Sprintf("author:a%05d", i))
		authors[i] = authorInfo{id: id, area: ai, topic: ti}
		net.Authors = append(net.Authors, id)
	}
	authorPick := zipfWeights(cfg.Authors, 1.1)

	// Group authors and venues by area/topic for affine selection.
	authorsByTopic := map[[2]int][]int{}
	for i, a := range authors {
		key := [2]int{a.area, a.topic}
		authorsByTopic[key] = append(authorsByTopic[key], i)
	}
	broadVenuesByArea := map[int][]int{}
	specificVenueByTopic := map[[2]int]int{}
	for vi, v := range venues {
		if v.topic < 0 {
			broadVenuesByArea[v.area] = append(broadVenuesByArea[v.area], vi)
		} else {
			specificVenueByTopic[[2]int{v.area, v.topic}] = vi
		}
	}

	// Papers.
	termPickCache := map[[2]int][]float64{}
	papersByTopic := map[[2]int][]graph.NodeID{}
	for p := 0; p < cfg.Papers; p++ {
		ai := rng.Intn(len(areas))
		ti := rng.Intn(len(areas[ai].Topics))
		key := [2]int{ai, ti}
		paper := b.AddNode(TypePaper, fmt.Sprintf("paper:p%06d", p))
		net.Papers = append(net.Papers, paper)

		// Venue: broad with probability BroadVenueBias, otherwise the topic's
		// specific venue.
		var vi int
		if rng.Float64() < cfg.BroadVenueBias {
			cands := broadVenuesByArea[ai]
			vi = cands[rng.Intn(len(cands))]
		} else {
			vi = specificVenueByTopic[key]
		}
		venue := venues[vi].id
		b.MustAddUndirectedEdge(paper, venue, 1)
		net.VenueOf[paper] = venue

		// Terms: Zipf over the topic vocabulary plus occasional common terms.
		vocab := topicTermIDs[ai][ti]
		weights, ok := termPickCache[key]
		if !ok {
			weights = zipfWeights(len(vocab), 1.05)
			termPickCache[key] = weights
		}
		for _, idx := range sampleDistinct(rng, weights, cfg.TermsPerPaper-1) {
			b.MustAddUndirectedEdge(paper, vocab[idx], 1)
		}
		b.MustAddUndirectedEdge(paper, commonTerms[rng.Intn(len(commonTerms))], 1)

		// Authors: 1..MaxAuthorsPerPaper, mostly from the paper's topic.
		nAuth := 1 + rng.Intn(cfg.MaxAuthorsPerPaper)
		seen := map[graph.NodeID]bool{}
		for a := 0; a < nAuth; a++ {
			var cand int
			if topicAuthors := authorsByTopic[key]; len(topicAuthors) > 0 && rng.Float64() < 0.8 {
				cand = topicAuthors[rng.Intn(len(topicAuthors))]
			} else {
				cand = sample(rng, authorPick)
			}
			id := authors[cand].id
			if seen[id] {
				continue
			}
			seen[id] = true
			b.MustAddUndirectedEdge(paper, id, 1)
			net.AuthorsOf[paper] = append(net.AuthorsOf[paper], id)
		}

		// Citations: directed edges to earlier papers, biased to the same
		// topic (preferential to recent ones).
		if prior := papersByTopic[key]; len(prior) > 0 && cfg.CitationsPerPaper > 0 {
			nCite := rng.Intn(cfg.CitationsPerPaper + 1)
			for c := 0; c < nCite; c++ {
				target := prior[len(prior)-1-rng.Intn(min(len(prior), 50))]
				if target != paper {
					b.MustAddEdge(paper, target, 1)
				}
			}
		}
		papersByTopic[key] = append(papersByTopic[key], paper)
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	net.Graph = g
	return net, nil
}

// Snapshots returns n cumulative snapshots of the network, modelling its
// growth over time as in Fig. 12: the i-th snapshot contains the first
// (i+1)/n fraction of the papers (papers are generated in publication order)
// together with every author, term and venue incident to them.
func (n *BibNet) Snapshots(count int) ([]*graph.Subgraph, error) {
	if count <= 0 {
		return nil, fmt.Errorf("datasets: snapshot count must be positive")
	}
	out := make([]*graph.Subgraph, 0, count)
	for i := 1; i <= count; i++ {
		cut := len(n.Papers) * i / count
		keep := make(map[graph.NodeID]bool)
		for _, p := range n.Papers[:cut] {
			keep[p] = true
			// Undirected edges are stored in both directions, and citations
			// only point to earlier papers (already in the cut), so the
			// out-adjacency alone covers all incident non-paper nodes.
			n.Graph.EachOut(p, func(to graph.NodeID, _ float64) bool {
				if n.Graph.Type(to) != TypePaper {
					keep[to] = true
				}
				return true
			})
		}
		nodes := make([]graph.NodeID, 0, len(keep))
		for v := range keep {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		out = append(out, graph.Induced(n.Graph, nodes))
	}
	return out, nil
}

// QueryTermsFor returns the characteristic term node IDs of a named topic
// (e.g. "spatio temporal data"), for use as a multi-node query.
func (n *BibNet) QueryTermsFor(topic string) []graph.NodeID {
	return n.TopicTerms[topic]
}
