// Package datasets provides synthetic stand-ins for the two real-world graphs
// of the paper's evaluation (Sect. VI): BibNet, a heterogeneous bibliographic
// network of papers, authors, terms and venues extracted from DBLP/Citeseer,
// and QLog, a search-engine click graph of phrases and URLs.
//
// The originals are not redistributable, so the generators reproduce the
// structural properties the proximity measures are sensitive to — topical
// locality, popularity skew (broad venues / hub URLs versus narrowly focused
// ones, the importance-specificity tension of Fig. 1), power-law degrees, and
// growth over time for the scalability snapshots — as documented in the
// substitution table of DESIGN.md.
package datasets

import (
	"math"
	"math/rand"

	"roundtriprank/internal/graph"
)

// Node types shared by the generated graphs.
const (
	TypePaper graph.Type = iota + 1
	TypeAuthor
	TypeTerm
	TypeVenue
	TypePhrase
	TypeURL
)

// RegisterTypes names the node types on a builder so generated graphs are
// self-describing.
func RegisterTypes(b *graph.Builder) {
	b.RegisterType(TypePaper, "paper")
	b.RegisterType(TypeAuthor, "author")
	b.RegisterType(TypeTerm, "term")
	b.RegisterType(TypeVenue, "venue")
	b.RegisterType(TypePhrase, "phrase")
	b.RegisterType(TypeURL, "url")
}

// zipfWeights returns n weights following a Zipf-like distribution with the
// given exponent, normalized to sum to one.
func zipfWeights(n int, exponent float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w[i] = 1.0 / math.Pow(float64(i+1), exponent)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// sample draws an index from a normalized weight vector.
func sample(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

// sampleDistinct draws up to k distinct indices from a weight vector.
func sampleDistinct(rng *rand.Rand, weights []float64, k int) []int {
	if k >= len(weights) {
		out := make([]int, len(weights))
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for attempts := 0; len(out) < k && attempts < 20*k; attempts++ {
		i := sample(rng, weights)
		if !chosen[i] {
			chosen[i] = true
			out = append(out, i)
		}
	}
	return out
}
