package datasets

// areaSpec describes one research area of the synthetic bibliographic network:
// its broad ("important") venues, and its topics, each with a specific venue
// and characteristic terms. The DB area mirrors the running examples of the
// paper (Fig. 1, Fig. 6, Fig. 7) so the illustrative rankings are directly
// comparable: broad venues such as VLDB/SIGMOD/ICDE accept papers on every DB
// topic, while Spatio-Temporal Databases or ACM GIS concentrate on one topic.
type areaSpec struct {
	Name        string
	BroadVenues []string
	Topics      []topicSpec
}

type topicSpec struct {
	Name          string
	SpecificVenue string
	Terms         []string
}

func defaultAreas() []areaSpec {
	return []areaSpec{
		{
			Name:        "DB",
			BroadVenues: []string{"SIGMOD", "VLDB", "ICDE"},
			Topics: []topicSpec{
				{Name: "spatio temporal data", SpecificVenue: "Spatio-Temporal Databases",
					Terms: []string{"spatio", "temporal", "data", "moving", "trajectory", "gis"}},
				{Name: "geographic information systems", SpecificVenue: "ACM GIS",
					Terms: []string{"spatial", "geographic", "gis", "map", "location", "spatio"}},
				{Name: "temporal reasoning", SpecificVenue: "Temporal Representation and Reasoning",
					Terms: []string{"temporal", "reasoning", "interval", "time", "logic"}},
				{Name: "information integration", SpecificVenue: "Workshop on Information Integration",
					Terms: []string{"information", "integration", "schema", "mapping", "mediation"}},
				{Name: "transaction processing", SpecificVenue: "Transaction Processing Systems",
					Terms: []string{"transaction", "concurrency", "locking", "recovery", "logging"}},
				{Name: "query optimization", SpecificVenue: "Workshop on Query Processing",
					Terms: []string{"query", "optimization", "join", "plan", "cost"}},
			},
		},
		{
			Name:        "IR",
			BroadVenues: []string{"SIGIR", "CIKM", "WWW"},
			Topics: []topicSpec{
				{Name: "semantic web", SpecificVenue: "International Semantic Web Conference",
					Terms: []string{"semantic", "web", "ontology", "rdf", "linked"}},
				{Name: "web services", SpecificVenue: "International Conference on Web Services",
					Terms: []string{"web", "service", "soap", "composition", "rest"}},
				{Name: "web search", SpecificVenue: "Workshop on Web Search and Mining",
					Terms: []string{"search", "ranking", "web", "click", "relevance"}},
				{Name: "question answering", SpecificVenue: "Question Answering Workshop",
					Terms: []string{"question", "answering", "passage", "answer", "retrieval"}},
				{Name: "entity retrieval", SpecificVenue: "Entity Retrieval Track",
					Terms: []string{"entity", "retrieval", "linking", "knowledge", "graph"}},
			},
		},
		{
			Name:        "DM",
			BroadVenues: []string{"KDD", "ICDM", "SDM"},
			Topics: []topicSpec{
				{Name: "spatio temporal data mining", SpecificVenue: "Spatio-Temporal Data Mining Workshop",
					Terms: []string{"spatio", "temporal", "mining", "pattern", "trajectory"}},
				{Name: "graph mining", SpecificVenue: "Workshop on Mining Graphs",
					Terms: []string{"graph", "mining", "subgraph", "network", "pattern"}},
				{Name: "clustering", SpecificVenue: "Clustering Workshop",
					Terms: []string{"clustering", "kmeans", "density", "partition", "similarity"}},
				{Name: "frequent patterns", SpecificVenue: "Frequent Itemset Mining Implementations",
					Terms: []string{"frequent", "itemset", "association", "rule", "support"}},
				{Name: "anomaly detection", SpecificVenue: "Outlier Detection Workshop",
					Terms: []string{"anomaly", "outlier", "detection", "fraud", "deviation"}},
			},
		},
		{
			Name:        "AI",
			BroadVenues: []string{"AAAI", "IJCAI", "NIPS"},
			Topics: []topicSpec{
				{Name: "machine learning", SpecificVenue: "Machine Learning Journal",
					Terms: []string{"learning", "model", "training", "classification", "feature"}},
				{Name: "probabilistic reasoning", SpecificVenue: "Uncertainty in Artificial Intelligence",
					Terms: []string{"probabilistic", "bayesian", "inference", "graphical", "belief"}},
				{Name: "planning", SpecificVenue: "International Conference on Planning and Scheduling",
					Terms: []string{"planning", "scheduling", "search", "heuristic", "domain"}},
				{Name: "natural language", SpecificVenue: "Computational Linguistics Workshop",
					Terms: []string{"language", "parsing", "semantics", "corpus", "translation"}},
				{Name: "knowledge representation", SpecificVenue: "Knowledge Representation and Reasoning",
					Terms: []string{"knowledge", "representation", "logic", "ontology", "reasoning"}},
			},
		},
	}
}

// stopWords are ignored when normalizing search phrases into concepts; the
// Task 4 ground truth treats two phrases as equivalent when they contain the
// same non-stop words (Sect. VI-A).
var stopWords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "for": true, "to": true,
	"in": true, "on": true, "and": true, "with": true, "how": true, "best": true,
}

// conceptVocabulary is the word pool used to assemble QLog concepts.
var conceptVocabulary = []string{
	"hotel", "booking", "cheap", "flight", "ticket", "weather", "forecast",
	"apple", "ipod", "google", "mail", "gmail", "yahoo", "maps", "driving",
	"directions", "recipe", "chicken", "pasta", "movie", "times", "review",
	"car", "insurance", "quote", "mortgage", "rate", "calculator", "news",
	"sports", "score", "music", "lyrics", "download", "game", "online",
	"university", "admission", "job", "resume", "salary", "tax", "return",
	"phone", "number", "lookup", "address", "zip", "code", "dictionary",
	"translate", "spanish", "french", "pizza", "delivery", "coupon", "deal",
}

// hubURLHosts are the broadly popular ("important") sites linked from many
// concepts, giving QLog the popularity skew that makes importance-only ranking
// insufficiently specific.
var hubURLHosts = []string{
	"wikipedia.org", "amazon.com", "youtube.com", "facebook.com", "yahoo.com",
	"about.com", "answers.com", "ebay.com",
}
