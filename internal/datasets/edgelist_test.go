package datasets

import (
	"strings"
	"testing"

	"roundtriprank/internal/graph"
)

func TestLoadEdgeListBasics(t *testing.T) {
	const input = `# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 5 Edges: 6
0	1
0	2	2.5
1	2
3	3
2	0
0	1
`
	g, err := LoadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Node 3's self-loop is skipped but its ID still sizes the graph; node 4
	// from the header hint does not exist (hints only preallocate).
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	// 0→1 appears twice and merges by summing; the self-loop is dropped.
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	cols, wts := g.OutCSR().Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 || wts[0] != 2 || wts[1] != 2.5 {
		t.Fatalf("row 0 = %v %v, want [1 2] [2 2.5]", cols, wts)
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 0 {
		t.Fatalf("node 3 should be isolated after self-loop skip")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# Nodes: 10 Edges: 10\n",
		"one field":      "7\n",
		"four fields":    "0 1 2 3\n",
		"bad from":       "x 1\n",
		"bad to":         "0 y\n",
		"negative id":    "-1 2\n",
		"huge id":        "0 4294967296\n",
		"bad weight":     "0 1 w\n",
		"zero weight":    "0 1 0\n",
		"negative w":     "0 1 -2\n",
		"nan weight":     "0 1 NaN\n",
		"inf weight":     "0 1 +Inf\n",
		"float node":     "0.5 1\n",
		"sparse ids":     "0 2000000\n",
		"only self-loop": "3 3\n2 2\n",
	}
	for name, input := range cases {
		if g, err := LoadEdgeList(strings.NewReader(input)); err == nil {
			// "only self-loop" yields a graph with zero edges — that is
			// rejected too? No: IDs size the graph; zero-edge graphs are
			// legal. Everything else must error.
			if name == "only self-loop" {
				if g.NumEdges() != 0 || g.NumNodes() != 4 {
					t.Errorf("%s: got %d nodes %d edges", name, g.NumNodes(), g.NumEdges())
				}
				continue
			}
			t.Errorf("%s: accepted", name)
		} else if name == "only self-loop" {
			t.Errorf("%s: rejected: %v", name, err)
		}
	}
}

// TestLoadEdgeListHintClamp feeds a header declaring an absurd edge count and
// checks ingestion still works (the hint is clamped before any allocation, so
// this must not OOM or fail).
func TestLoadEdgeListHintClamp(t *testing.T) {
	input := "# Nodes: 99999999999999 Edges: 99999999999999\n0 1\n1 2\n"
	g, err := LoadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges, want 3/2", g.NumNodes(), g.NumEdges())
	}
}

func FuzzLoadEdgeList(f *testing.F) {
	f.Add("# Nodes: 5 Edges: 6\n0\t1\n0\t2\t2.5\n1 2\n2 0\n")
	f.Add("0 1\n1 0\n")
	f.Add("# Edges: 184000000\n3 3\n")
	f.Add("0 1 1e308\n")
	f.Add("10 2147483647\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		g, err := LoadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever the ingester accepts must be a fully valid graph.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		if g.NumNodes() < 1 {
			t.Fatalf("accepted graph has no nodes")
		}
		for v := 0; v < g.NumNodes(); v++ {
			g.EachOut(graph.NodeID(v), func(to graph.NodeID, w float64) bool {
				if to == graph.NodeID(v) {
					t.Fatalf("self-loop on %d survived ingestion", v)
				}
				if !(w > 0) {
					t.Fatalf("non-positive weight %g on %d→%d", w, v, to)
				}
				return true
			})
		}
	})
}
