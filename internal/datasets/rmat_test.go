package datasets

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"roundtriprank/internal/graph"
)

// TestRMATDeterministic pins the generator's seed contract: the same config
// must produce a byte-identical edge list on repeated runs and at every
// GOMAXPROCS setting (the generator is single-threaded by design; this test
// keeps it that way).
func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMATConfig(3000)
	cfg.Seed = 42
	want := edgeListBytes(t, cfg)
	for run := 0; run < 3; run++ {
		if got := edgeListBytes(t, cfg); !bytes.Equal(want, got) {
			t.Fatalf("run %d: edge list differs from first run", run)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if got := edgeListBytes(t, cfg); !bytes.Equal(want, got) {
		t.Fatalf("edge list differs at GOMAXPROCS=1")
	}
	runtime.GOMAXPROCS(max(2, prev))
	if got := edgeListBytes(t, cfg); !bytes.Equal(want, got) {
		t.Fatalf("edge list differs at GOMAXPROCS=2")
	}

	// A different seed must actually change the output.
	other := cfg
	other.Seed = 43
	if got := edgeListBytes(t, other); bytes.Equal(want, got) {
		t.Fatalf("different seeds produced identical edge lists")
	}
}

func edgeListBytes(t *testing.T, cfg RMATConfig) []byte {
	t.Helper()
	edges, err := RMATEdges(cfg)
	if err != nil {
		t.Fatalf("RMATEdges: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edges); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	return buf.Bytes()
}

// TestRMATSkewMonotone is the degree-distribution sanity property: increasing
// the A-quadrant skew (at fixed B and C, with D absorbing the remainder)
// concentrates edges on low-numbered nodes, so the heavy tail of the degree
// distribution must grow monotonically with A. The sweep starts at the
// balanced point A = D = 0.35 — below it D exceeds A and the matrix is just
// mirror-skewed toward high-numbered nodes, so the tail would grow again.
func TestRMATSkewMonotone(t *testing.T) {
	skews := []float64{0.35, 0.45, 0.57, 0.70}
	maxDegs := make([]int, len(skews))
	p99s := make([]int, len(skews))
	for i, a := range skews {
		cfg := RMATConfig{Seed: 7, Nodes: 4096, EdgeFactor: 8, A: a, B: 0.15, C: 0.15, D: 1 - a - 0.30}
		r, err := GenerateRMAT(cfg)
		if err != nil {
			t.Fatalf("A=%g: %v", a, err)
		}
		degs := make([]int, r.Graph.NumNodes())
		for v := range degs {
			degs[v] = r.Graph.OutDegree(graph.NodeID(v))
		}
		sort.Ints(degs)
		maxDegs[i] = degs[len(degs)-1]
		p99s[i] = degs[len(degs)*99/100]
	}
	for i := 1; i < len(skews); i++ {
		if maxDegs[i] < maxDegs[i-1] {
			t.Errorf("max degree not monotone in skew: A=%g gives %d, A=%g gives %d",
				skews[i-1], maxDegs[i-1], skews[i], maxDegs[i])
		}
	}
	// The extremes must separate decisively, not just by tie-breaking noise.
	if maxDegs[len(skews)-1] < 2*maxDegs[0] {
		t.Errorf("skew has too little effect on the tail: max degree %v", maxDegs)
	}
	if p99s[len(skews)-1] < p99s[0] {
		t.Errorf("p99 degree shrank with skew: %v", p99s)
	}
}

// TestRMATGraphsAlwaysValid quick-checks the generator against the graph
// invariants: across a spread of seeded random configs, the generated graph
// must pass CSR validation, carry the cyclic type assignment, and match its
// reported edge count.
func TestRMATGraphsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		cfg := DefaultRMATConfig(2 + rng.Intn(3000))
		cfg.Seed = rng.Int63()
		cfg.EdgeFactor = 1 + rng.Intn(12)
		if trial%3 == 0 {
			cfg.TypePeriod = nil
		}
		if trial%4 == 0 {
			cfg.Weight = 0.5 + rng.Float64()
		}
		r, err := GenerateRMAT(cfg)
		if err != nil {
			t.Fatalf("trial %d (nodes=%d): %v", trial, cfg.Nodes, err)
		}
		if err := r.Graph.Validate(); err != nil {
			t.Fatalf("trial %d: generated graph invalid: %v", trial, err)
		}
		if r.Graph.NumNodes() != cfg.Nodes {
			t.Fatalf("trial %d: %d nodes, want %d", trial, r.Graph.NumNodes(), cfg.Nodes)
		}
		if r.Edges != r.Graph.NumEdges() {
			t.Fatalf("trial %d: reported %d edges, graph has %d", trial, r.Edges, r.Graph.NumEdges())
		}
		for v := 0; v < min(cfg.Nodes, 64); v++ {
			want := graph.Untyped
			if len(cfg.TypePeriod) > 0 {
				want = cfg.TypePeriod[v%len(cfg.TypePeriod)]
			}
			if got := r.Graph.Type(graph.NodeID(v)); got != want {
				t.Fatalf("trial %d: node %d type %d, want %d", trial, v, got, want)
			}
		}
	}
}

// TestRMATRejectsBadConfigs pins the validation errors.
func TestRMATRejectsBadConfigs(t *testing.T) {
	bad := []RMATConfig{
		{Nodes: 1, EdgeFactor: 8, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Nodes: 100, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Nodes: 100, EdgeFactor: 8, A: 0.9, B: 0.25, C: 0.25, D: 0.25},
		{Nodes: 100, EdgeFactor: 8, A: -0.1, B: 0.45, C: 0.45, D: 0.2},
		{Nodes: 100, EdgeFactor: 8, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Weight: -1},
	}
	for i, cfg := range bad {
		if _, err := RMATEdges(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestRMATEdgeListRoundTrip feeds a generated edge list through the SNAP
// ingester and checks the adjacency arrives unchanged: same edges, same
// weights (unit, since the text format carries none here), duplicates already
// collapsed by the generator.
func TestRMATEdgeListRoundTrip(t *testing.T) {
	cfg := DefaultRMATConfig(500)
	cfg.Seed = 5
	r, err := GenerateRMAT(cfg)
	if err != nil {
		t.Fatalf("GenerateRMAT: %v", err)
	}
	var buf bytes.Buffer
	edges, err := RMATEdges(cfg)
	if err != nil {
		t.Fatalf("RMATEdges: %v", err)
	}
	if err := WriteEdgeList(&buf, edges); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	// The ingested graph spans [0, maxID]; trailing isolated generator nodes
	// may be absent, but every row that exists must match bit for bit.
	if g.NumNodes() > r.Graph.NumNodes() || g.NumEdges() != r.Graph.NumEdges() {
		t.Fatalf("ingested %d nodes / %d edges, generated %d / %d",
			g.NumNodes(), g.NumEdges(), r.Graph.NumNodes(), r.Graph.NumEdges())
	}
	want, got := r.Graph.OutCSR(), g.OutCSR()
	if !reflect.DeepEqual(want.RowPtr[:g.NumNodes()+1], got.RowPtr) ||
		!reflect.DeepEqual(want.Col, got.Col) ||
		!reflect.DeepEqual(want.Weight, got.Weight) {
		t.Fatalf("adjacency changed across the edge-list round trip")
	}
}
