package datasets

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"roundtriprank/internal/graph"
)

// Limits of the edge-list ingester. Node IDs must fit the int32 NodeID space;
// the hint clamp bounds what a "# Nodes: …" comment can preallocate, so a
// forged header cannot force a huge allocation before any real data arrives;
// and the node count inferred from the IDs may exceed the record count by at
// most maxEdgeListSpread (so one short line claiming node 2^31−1 cannot
// allocate two billion nodes either — per-node state must be justified by
// records actually read).
const (
	maxEdgeListNodeID  = 1<<31 - 1
	maxEdgeListPrelloc = 1 << 20
	maxEdgeListLine    = 1 << 20
	maxEdgeListSpread  = 64
)

// LoadEdgeList reads a graph in the SNAP text edge-list format: one
// whitespace-separated "from to" or "from to weight" record per line, with
// '#' comment lines ignored (a "# Nodes: N Edges: M" header, when present, is
// used as a preallocation hint, clamped so huge declared counts cannot force
// an allocation). Node IDs are non-negative integers and become graph node
// IDs directly; the graph spans [0, maxID] including any isolated IDs in
// between (the format therefore assumes reasonably dense IDs: the inferred
// node count may exceed the record count at most 64-fold, which every real
// SNAP graph satisfies by orders of magnitude). A missing weight means 1;
// explicit weights must be positive and finite. Self-loops are skipped (the
// solvers' neighborhood bounds assume a surfer cannot stay in place) and
// duplicate edges merge by summing weights, both matching the Builder's
// semantics. Malformed records fail with their line number.
//
// The reader streams: memory is proportional to the edge count, never the
// input size, so piping a multi-gigabyte SNAP file through it works.
func LoadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxEdgeListLine)

	var from, to []graph.NodeID
	var weights []float64
	maxID := -1
	line := 0
	records := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' {
			if hint := parseNodeHint(text); hint > 0 && from == nil {
				from = make([]graph.NodeID, 0, hint)
				to = make([]graph.NodeID, 0, hint)
				weights = make([]float64, 0, hint)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("datasets: edge list line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		f, err := parseNodeID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("datasets: edge list line %d: from: %w", line, err)
		}
		t, err := parseNodeID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("datasets: edge list line %d: to: %w", line, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: edge list line %d: weight: %w", line, err)
			}
			if !(w > 0) || math.IsInf(w, 1) {
				return nil, fmt.Errorf("datasets: edge list line %d: weight must be positive and finite, got %g", line, w)
			}
		}
		records++
		if int(f) > maxID {
			maxID = int(f)
		}
		if int(t) > maxID {
			maxID = int(t)
		}
		if f == t {
			continue // self-loop
		}
		from = append(from, f)
		to = append(to, t)
		weights = append(weights, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: edge list: %w", err)
	}
	if maxID < 0 {
		return nil, fmt.Errorf("datasets: edge list: no records")
	}
	if cap := records*maxEdgeListSpread + 1024; maxID >= cap {
		return nil, fmt.Errorf("datasets: edge list: node ID %d implies %d nodes from only %d records (IDs too sparse)", maxID, maxID+1, records)
	}

	b := graph.NewBuilder()
	b.AddNodes(maxID+1, nil)
	for i := range from {
		if err := b.AddEdge(from[i], to[i], weights[i]); err != nil {
			return nil, fmt.Errorf("datasets: edge list: %w", err)
		}
	}
	return b.Build()
}

// parseNodeID parses a non-negative node ID within the int32 NodeID space.
func parseNodeID(s string) (graph.NodeID, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > maxEdgeListNodeID {
		return 0, fmt.Errorf("node ID %d outside [0, %d]", v, maxEdgeListNodeID)
	}
	return graph.NodeID(v), nil
}

// parseNodeHint extracts the edge count from a SNAP "# Nodes: N Edges: M"
// header comment, clamped to the preallocation cap. Zero means no hint.
func parseNodeHint(comment string) int {
	fields := strings.Fields(comment)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i] == "Edges:" {
			if m, err := strconv.Atoi(fields[i+1]); err == nil && m > 0 {
				return min(m, maxEdgeListPrelloc)
			}
		}
	}
	return 0
}
