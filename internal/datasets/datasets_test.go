package datasets

import (
	"testing"

	"roundtriprank/internal/graph"
)

func TestGenerateBibNetSmall(t *testing.T) {
	cfg := SmallBibNetConfig()
	net, err := GenerateBibNet(cfg)
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	g := net.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if len(net.Papers) != cfg.Papers {
		t.Errorf("papers = %d, want %d", len(net.Papers), cfg.Papers)
	}
	if g.CountOfType(TypePaper) != cfg.Papers {
		t.Errorf("paper node count mismatch")
	}
	if g.CountOfType(TypeVenue) != len(net.Venues) || len(net.Venues) == 0 {
		t.Errorf("venue bookkeeping mismatch: %d vs %d", g.CountOfType(TypeVenue), len(net.Venues))
	}
	if g.CountOfType(TypeAuthor) != cfg.Authors {
		t.Errorf("author count mismatch")
	}
	if len(net.Terms) != g.CountOfType(TypeTerm) {
		t.Errorf("term bookkeeping mismatch: %d vs %d", len(net.Terms), g.CountOfType(TypeTerm))
	}
	// Every paper has a venue and at least one author recorded, and the graph
	// contains the corresponding edges.
	for _, p := range net.Papers[:50] {
		v, ok := net.VenueOf[p]
		if !ok || !g.HasEdge(p, v) || !g.HasEdge(v, p) {
			t.Fatalf("paper %d venue association broken", p)
		}
		authors := net.AuthorsOf[p]
		if len(authors) == 0 {
			t.Fatalf("paper %d has no authors", p)
		}
		for _, a := range authors {
			if !g.HasEdge(p, a) {
				t.Fatalf("paper %d missing author edge", p)
			}
		}
	}
	// The named query topics exist.
	for _, topic := range []string{"spatio temporal data", "semantic web"} {
		terms := net.QueryTermsFor(topic)
		if len(terms) == 0 {
			t.Errorf("topic %q has no query terms", topic)
		}
		for _, id := range terms {
			if g.Type(id) != TypeTerm {
				t.Errorf("query term %d is not a term node", id)
			}
		}
	}
	// Type names registered.
	if g.TypeName(TypeVenue) != "venue" || g.TypeName(TypePaper) != "paper" {
		t.Errorf("type names not registered")
	}
	// Determinism: same seed, same graph.
	net2, err := GenerateBibNet(cfg)
	if err != nil {
		t.Fatalf("second GenerateBibNet: %v", err)
	}
	if net2.Graph.NumNodes() != g.NumNodes() || net2.Graph.NumEdges() != g.NumEdges() {
		t.Errorf("generation is not deterministic: %d/%d vs %d/%d",
			net2.Graph.NumNodes(), net2.Graph.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestBibNetBroadVenuesAreLarger(t *testing.T) {
	net, err := GenerateBibNet(SmallBibNetConfig())
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	g := net.Graph
	broad := g.NodeByLabel("venue:VLDB")
	specific := g.NodeByLabel("venue:Spatio-Temporal Databases")
	if broad == graph.NoNode || specific == graph.NoNode {
		t.Fatalf("expected named venues to exist")
	}
	if g.Degree(broad) <= g.Degree(specific) {
		t.Errorf("broad venue should accept more papers: VLDB degree %d vs specific %d",
			g.Degree(broad), g.Degree(specific))
	}
}

func TestBibNetSnapshotsGrow(t *testing.T) {
	net, err := GenerateBibNet(SmallBibNetConfig())
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	snaps, err := net.Snapshots(5)
	if err != nil {
		t.Fatalf("Snapshots: %v", err)
	}
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Graph.NumNodes() < snaps[i-1].Graph.NumNodes() {
			t.Errorf("snapshot %d shrank in nodes", i)
		}
		if snaps[i].Graph.NumEdges() < snaps[i-1].Graph.NumEdges() {
			t.Errorf("snapshot %d shrank in edges", i)
		}
	}
	last := snaps[len(snaps)-1].Graph
	if last.CountOfType(TypePaper) != len(net.Papers) {
		t.Errorf("final snapshot should contain all papers: %d vs %d",
			last.CountOfType(TypePaper), len(net.Papers))
	}
	if _, err := net.Snapshots(0); err == nil {
		t.Errorf("zero snapshot count should error")
	}
}

func TestGenerateBibNetValidation(t *testing.T) {
	if _, err := GenerateBibNet(BibNetConfig{}); err == nil {
		t.Errorf("zero config should error")
	}
	bad := SmallBibNetConfig()
	bad.BroadVenueBias = 2
	if _, err := GenerateBibNet(bad); err == nil {
		t.Errorf("invalid BroadVenueBias should error")
	}
}

func TestScaledConfigs(t *testing.T) {
	small := ScaledBibNetConfig(0.001)
	if small.Papers < 50 || small.Authors < 30 {
		t.Errorf("scaled config should respect minimums: %+v", small)
	}
	big := ScaledBibNetConfig(2)
	if big.Papers != DefaultBibNetConfig().Papers*2 {
		t.Errorf("scaling factor not applied")
	}
	qs := ScaledQLogConfig(0.0001)
	if qs.Concepts < 20 {
		t.Errorf("scaled QLog config should respect minimum concepts")
	}
}

func TestGenerateQLogSmall(t *testing.T) {
	cfg := SmallQLogConfig()
	q, err := GenerateQLog(cfg)
	if err != nil {
		t.Fatalf("GenerateQLog: %v", err)
	}
	g := q.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if len(q.Phrases) == 0 || len(q.URLs) == 0 {
		t.Fatalf("empty phrase or URL set")
	}
	if g.CountOfType(TypePhrase) != len(q.Phrases) {
		t.Errorf("phrase bookkeeping mismatch")
	}
	// Every phrase has at least one clicked URL and the edges exist with
	// positive click weights.
	for _, p := range q.Phrases[:50] {
		urls := q.ClickedURLs[p]
		if len(urls) == 0 {
			t.Fatalf("phrase %d has no clicked URLs", p)
		}
		for _, u := range urls {
			w, ok := g.EdgeWeight(p, u)
			if !ok || w < 1 {
				t.Fatalf("phrase %d missing click edge to %d", p, u)
			}
		}
		if _, ok := q.ConceptOf[p]; !ok {
			t.Fatalf("phrase %d has no concept", p)
		}
	}
	// Phrases of the same concept normalize to the same key; phrases of
	// different concepts normally do not.
	for c, phrases := range q.PhrasesOfConcept {
		if len(phrases) < 2 {
			continue
		}
		key := NormalizePhrase(g.Label(phrases[0]))
		for _, p := range phrases[1:] {
			if NormalizePhrase(g.Label(p)) != key {
				t.Errorf("concept %d phrases normalize differently: %q vs %q",
					c, key, NormalizePhrase(g.Label(p)))
			}
		}
	}
	// Hub URLs should have much higher degree than concept URLs.
	hub := g.NodeByLabel("url:http://www.wikipedia.org/")
	if hub == graph.NoNode {
		t.Fatalf("hub URL missing")
	}
	if g.Degree(hub) < 5 {
		t.Errorf("hub URL degree suspiciously low: %d", g.Degree(hub))
	}
	// Determinism.
	q2, _ := GenerateQLog(cfg)
	if q2.Graph.NumNodes() != g.NumNodes() || q2.Graph.NumEdges() != g.NumEdges() {
		t.Errorf("QLog generation is not deterministic")
	}
}

func TestQLogSnapshotsGrow(t *testing.T) {
	q, err := GenerateQLog(SmallQLogConfig())
	if err != nil {
		t.Fatalf("GenerateQLog: %v", err)
	}
	snaps, err := q.Snapshots(4)
	if err != nil {
		t.Fatalf("Snapshots: %v", err)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Graph.NumNodes() < snaps[i-1].Graph.NumNodes() {
			t.Errorf("QLog snapshot %d shrank", i)
		}
	}
	if _, err := q.Snapshots(-1); err == nil {
		t.Errorf("negative snapshot count should error")
	}
}

func TestGenerateQLogValidation(t *testing.T) {
	if _, err := GenerateQLog(QLogConfig{}); err == nil {
		t.Errorf("zero config should error")
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := []struct{ a, b string }{
		{"the apple ipod", "ipod of apple"},
		{"phrase:cheap flight ticket", "ticket flight cheap"},
		{"how to best pasta recipe", "recipe pasta"},
	}
	for _, c := range cases {
		if NormalizePhrase(c.a) != NormalizePhrase(c.b) {
			t.Errorf("%q and %q should normalize equally: %q vs %q",
				c.a, c.b, NormalizePhrase(c.a), NormalizePhrase(c.b))
		}
	}
	if NormalizePhrase("apple ipod") == NormalizePhrase("apple macbook") {
		t.Errorf("different concepts should not collide")
	}
}

func TestZipfAndSampling(t *testing.T) {
	w := zipfWeights(10, 1.0)
	total := 0.0
	for i, x := range w {
		total += x
		if i > 0 && x > w[i-1] {
			t.Errorf("zipf weights should be non-increasing")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("zipf weights should sum to 1, got %g", total)
	}
}
