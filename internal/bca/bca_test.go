package bca

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func TestNewValidation(t *testing.T) {
	g := testgraphs.Cycle(4)
	if _, err := New(g, walk.SingleNode(0), 0); err == nil {
		t.Errorf("alpha 0 should error")
	}
	if _, err := New(g, walk.SingleNode(0), 1); err == nil {
		t.Errorf("alpha 1 should error")
	}
	if _, err := New(g, walk.Query{}, 0.25); err == nil {
		t.Errorf("empty query should error")
	}
	if _, err := New(g, walk.SingleNode(99), 0.25); err == nil {
		t.Errorf("out-of-range query node should error")
	}
}

func TestInitialState(t *testing.T) {
	g := testgraphs.Cycle(4)
	s, err := New(g, walk.SingleNode(2), 0.25)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Alpha() != 0.25 {
		t.Errorf("Alpha = %g", s.Alpha())
	}
	if got := s.TotalResidual(); math.Abs(got-1) > 1e-12 {
		t.Errorf("initial total residual = %g, want 1", got)
	}
	if got := s.Residual(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("initial residual at query = %g, want 1", got)
	}
	if s.MaxResidual() != s.Residual(2) {
		t.Errorf("MaxResidual should equal the query residual initially")
	}
	if s.SeenCount() != 0 {
		t.Errorf("no node should be seen before processing")
	}
	if s.Rho(2) != 0 {
		t.Errorf("rho should start at zero")
	}
}

func TestProcessSpreadsResidual(t *testing.T) {
	toy := testgraphs.NewToy()
	s, err := New(toy.Graph, walk.SingleNode(toy.T1), 0.25)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Process(toy.T1)
	if got := s.Rho(toy.T1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("rho(q) after one process = %g, want 0.25", got)
	}
	// t1 has 5 neighbors (p1..p5), each receives 0.75/5 = 0.15 residual.
	for i := 0; i < 5; i++ {
		if got := s.Residual(toy.P[i]); math.Abs(got-0.15) > 1e-12 {
			t.Errorf("residual at p%d = %g, want 0.15", i+1, got)
		}
	}
	if got := s.TotalResidual(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("total residual = %g, want 0.75", got)
	}
	if s.SeenCount() != 1 {
		t.Errorf("SeenCount = %d, want 1", s.SeenCount())
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	// Processing a node without residual is a no-op.
	before := s.Processed()
	s.Process(toy.V1)
	if s.Processed() != before {
		t.Errorf("processing a zero-residual node should be a no-op")
	}
}

func TestRunConvergesToExactPPR(t *testing.T) {
	toy := testgraphs.NewToy()
	alpha := 0.25
	q := walk.SingleNode(toy.T1)
	exact, err := walk.FRank(context.Background(), toy.Graph, q, walk.Params{Alpha: alpha, Tol: 1e-12, MaxIter: 1000})
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	s, err := New(toy.Graph, q, alpha)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run(context.Background(), 1e-10, 0)
	if s.TotalResidual() > 1e-10 {
		t.Fatalf("Run did not reach tolerance: residual %g", s.TotalResidual())
	}
	est := s.Estimates(toy.Graph.NumNodes())
	for v := range est {
		if math.Abs(est[v]-exact[v]) > 1e-8 {
			t.Errorf("node %d: BCA %g vs exact %g", v, est[v], exact[v])
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant after Run: %v", err)
	}
}

func TestRhoIsAlwaysLowerBound(t *testing.T) {
	toy := testgraphs.NewToy()
	alpha := 0.25
	q := walk.SingleNode(toy.T1)
	exact, _ := walk.FRank(context.Background(), toy.Graph, q, walk.Params{Alpha: alpha, Tol: 1e-12, MaxIter: 1000})
	s, err := New(toy.Graph, q, alpha)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for step := 0; step < 200; step++ {
		if s.ProcessBest(1) == 0 {
			break
		}
		bad := false
		s.EachSeen(func(v graph.NodeID, rho float64) {
			if rho > exact[v]+1e-9 {
				bad = true
			}
		})
		if bad {
			t.Fatalf("rho exceeded exact PPR at step %d", step)
		}
	}
}

func TestProcessBestStopsWhenExhausted(t *testing.T) {
	// On a line graph the residual eventually drains into the restart cycle;
	// with a dangling end, residual restarts at the query.
	g := testgraphs.Line(3)
	s, err := New(g, walk.SingleNode(0), 0.5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run(context.Background(), 1e-12, 100000)
	if s.TotalResidual() > 1e-12 {
		t.Fatalf("residual should drain, got %g", s.TotalResidual())
	}
	// Processing further must never increase the residual, and the residual
	// only ever becomes exactly zero asymptotically (Berkhin), so ProcessBest
	// may still perform a few vanishing steps.
	before := s.TotalResidual()
	s.ProcessBest(5)
	if s.TotalResidual() > before+1e-15 {
		t.Errorf("ProcessBest increased residual: %g -> %g", before, s.TotalResidual())
	}
	// The dangling correction keeps total estimates at 1.
	est := s.Estimates(g.NumNodes())
	total := 0.0
	for _, e := range est {
		total += e
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("estimates should sum to 1 with dangling restart, got %g", total)
	}
	// And must agree with the iterative solver, which uses the same
	// dangling-node convention.
	exact, _ := walk.FRank(context.Background(), g, walk.SingleNode(0), walk.Params{Alpha: 0.5, Tol: 1e-13, MaxIter: 2000})
	for v := range est {
		if math.Abs(est[v]-exact[v]) > 1e-8 {
			t.Errorf("node %d: BCA %g vs iterative %g", v, est[v], exact[v])
		}
	}
}

func TestMultiNodeQuery(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.MultiNode(toy.T1, toy.T2)
	s, err := New(toy.Graph, q, 0.25)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if math.Abs(s.Residual(toy.T1)-0.5) > 1e-12 || math.Abs(s.Residual(toy.T2)-0.5) > 1e-12 {
		t.Fatalf("initial residual should split evenly across query nodes")
	}
	s.Run(context.Background(), 1e-10, 0)
	exact, _ := walk.FRank(context.Background(), toy.Graph, q, walk.Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 1000})
	est := s.Estimates(toy.Graph.NumNodes())
	for v := range est {
		if math.Abs(est[v]-exact[v]) > 1e-8 {
			t.Errorf("node %d: %g vs %g", v, est[v], exact[v])
		}
	}
}

func TestEachResidualAndSeen(t *testing.T) {
	toy := testgraphs.NewToy()
	s, _ := New(toy.Graph, walk.SingleNode(toy.T1), 0.25)
	s.ProcessBest(3)
	seen := 0
	s.EachSeen(func(graph.NodeID, float64) { seen++ })
	if seen != s.SeenCount() {
		t.Errorf("EachSeen visited %d, SeenCount %d", seen, s.SeenCount())
	}
	resTotal := 0.0
	s.EachResidual(func(_ graph.NodeID, mu float64) { resTotal += mu })
	if math.Abs(resTotal-s.TotalResidual()) > 1e-9 {
		t.Errorf("EachResidual total %g vs TotalResidual %g", resTotal, s.TotalResidual())
	}
}

// Property: at any point during BCA, every rho is a lower bound of exact PPR,
// residuals are non-negative, total residual decreases monotonically, and the
// invariant check passes.
func TestQuickBCAInvariants(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('A'+i)))
		}
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.5+rng.Float64())
		}
		g := b.MustBuild()
		alpha := 0.15 + 0.6*rng.Float64()
		q := ids[rng.Intn(n)]
		exact, err := walk.FRank(context.Background(), g, walk.SingleNode(q), walk.Params{Alpha: alpha, Tol: 1e-12, MaxIter: 1000})
		if err != nil {
			return false
		}
		s, err := New(g, walk.SingleNode(q), alpha)
		if err != nil {
			return false
		}
		prevResidual := s.TotalResidual()
		steps := 1 + int(stepsRaw%60)
		for i := 0; i < steps; i++ {
			if s.ProcessBest(1) == 0 {
				break
			}
			if s.TotalResidual() > prevResidual+1e-9 {
				return false
			}
			prevResidual = s.TotalResidual()
			if s.CheckInvariant() != nil {
				return false
			}
		}
		ok := true
		s.EachSeen(func(v graph.NodeID, rho float64) {
			if rho > exact[v]+1e-8 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
