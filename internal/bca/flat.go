package bca

import (
	"context"
	"fmt"
	"math"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/scratch"
	"roundtriprank/internal/walk"
)

// Flat is the scratch-state BCA engine behind the online serving path: the
// same algorithm as State, but with every map[NodeID]float64 replaced by a
// generation-stamped dense array and the lazy benefit heap replaced by an
// index-keyed heap with in-place decrease-key. A Flat is reusable: Init
// rebinds it to a new query in O(1) without freeing its arrays, so a pooled
// instance serves a stream of queries with no steady-state allocation (see
// internal/topk's searcher pool). It requires a CSR-capable view; wrapped
// views without flat adjacency keep using the map-based State.
//
// Differences from State worth knowing:
//
//   - MaxResidual is O(1): a second indexed heap orders nodes by raw
//     residual, maintained incrementally alongside the benefit heap, instead
//     of rescanning the residual map per call.
//   - ProcessBest never sees a stale priority: addResidual moves the node
//     within the benefit heap at update time, so the heap holds exactly the
//     nodes with positive residual (|heap| <= touched nodes) and the
//     pop-and-repush churn of the lazy heap is gone.
//   - The restart distribution is a deduplicated slice pair, so the
//     dangling-node spread iterates in deterministic first-occurrence order
//     rather than random map order.
type Flat struct {
	out graph.CSR
	// remote, when non-nil, replaces the CSR arrays with a row provider
	// (typically a stripe-backed remote view, see InitRows); pre is its
	// optional prefetch capability and prefetch the reusable frontier buffer
	// handed to it. The local path keeps reading the CSR fields directly so
	// the remote seam costs it one nil check per row access.
	remote   graph.Rows
	pre      graph.RowPrefetcher
	prefetch []graph.NodeID
	alpha    float64

	restartNodes   []graph.NodeID
	restartWeights []float64

	rho scratch.Floats
	mu  scratch.Floats

	// benefit orders live-residual nodes by mu(v)/max(1, outdeg(v)) for
	// greedy selection; resid orders the same nodes by mu(v) so MaxResidual
	// is a Peek.
	benefit scratch.Heap
	resid   scratch.Heap

	totalResidual float64
	processed     int
}

// Init starts (or restarts) a BCA computation for the given query with
// teleport probability alpha in (0, 1), reusing the Flat's internal arrays.
func (s *Flat) Init(view graph.CSRView, q walk.Query, alpha float64) error {
	s.out = view.OutCSR()
	s.remote, s.pre = nil, nil
	return s.init(view.NumNodes(), q, alpha)
}

// InitRows starts a computation against a row provider instead of local CSR
// arrays: adjacency is streamed row by row (OutRow), while degrees and
// out-sums come from the provider's dense per-node metadata. If rows also
// implements graph.RowPrefetcher, multi-node greedy waves announce their
// frontier ahead of processing so a remote provider can coalesce the fetches.
func (s *Flat) InitRows(rows graph.Rows, q walk.Query, alpha float64) error {
	s.out = graph.CSR{}
	s.remote = rows
	s.pre, _ = rows.(graph.RowPrefetcher)
	return s.init(rows.NumNodes(), q, alpha)
}

func (s *Flat) init(n int, q walk.Query, alpha float64) error {
	if alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("bca: alpha must be in (0,1), got %g", alpha)
	}
	var err error
	s.restartNodes, s.restartWeights, err =
		q.NormalizeInto(n, s.restartNodes[:0], s.restartWeights[:0])
	if err != nil {
		return fmt.Errorf("bca: %w", err)
	}
	s.alpha = alpha
	s.rho.Reset(n)
	s.mu.Reset(n)
	s.benefit.Reset(n)
	s.resid.Reset(n)
	s.totalResidual = 0
	s.processed = 0
	for i, v := range s.restartNodes {
		s.addResidual(v, s.restartWeights[i])
	}
	return nil
}

// Detach drops the engine's references to the graph's CSR arrays (or remote
// row provider) so a pooled instance does not pin a superseded snapshot in
// memory between queries. The scratch arrays (which are the point of pooling)
// are kept; Init or InitRows rebinds a source.
func (s *Flat) Detach() {
	s.out = graph.CSR{}
	s.remote, s.pre = nil, nil
}

// outDegree, outSum and outRow are the row-provider seam: one predictable
// nil check keeps the local CSR fast path branch-free in effect while the
// remote path routes through graph.Rows.
func (s *Flat) outDegree(v graph.NodeID) int {
	if s.remote != nil {
		return s.remote.OutDegree(v)
	}
	return s.out.Degree(v)
}

func (s *Flat) outSum(v graph.NodeID) float64 {
	if s.remote != nil {
		return s.remote.OutSum(v)
	}
	return s.out.Sum[v]
}

func (s *Flat) outRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	if s.remote != nil {
		return s.remote.OutRow(v)
	}
	return s.out.Row(v)
}

// Alpha returns the teleport probability of this computation.
func (s *Flat) Alpha() float64 { return s.alpha }

// Rho returns the current PPR estimate at v (a lower bound of the exact PPR).
func (s *Flat) Rho(v graph.NodeID) float64 { return s.rho.Get(v) }

// Residual returns the current residual at v.
func (s *Flat) Residual(v graph.NodeID) float64 { return s.mu.Get(v) }

// TotalResidual returns the total remaining residual mass.
func (s *Flat) TotalResidual() float64 {
	if s.totalResidual < 0 {
		return 0
	}
	return s.totalResidual
}

// MaxResidual returns the largest residual currently held by any node, in
// O(1) from the residual heap.
func (s *Flat) MaxResidual() float64 {
	_, pri, ok := s.resid.Peek()
	if !ok {
		return 0
	}
	return pri
}

// Processed returns the number of BCA processing operations performed.
func (s *Flat) Processed() int { return s.processed }

// SeenCount returns the number of nodes with a non-zero estimate (|Sf|).
func (s *Flat) SeenCount() int { return s.rho.Len() }

// LiveResidualCount returns the number of nodes currently holding positive
// residual, which is also the size of both internal heaps.
func (s *Flat) LiveResidualCount() int { return s.benefit.Len() }

// ResidualTouchedCount returns the number of distinct nodes that ever held
// residual during this query — the F-side share of the rows the searcher's
// working set can reach (processing, prefetching and Stage-II refinement all
// stay inside this set). The remote parity tests assert rows fetched never
// exceeds it plus the T-side neighborhood.
func (s *Flat) ResidualTouchedCount() int { return s.mu.Len() }

// ResidualTouched reports whether v ever held residual during this query.
func (s *Flat) ResidualTouched(v graph.NodeID) bool { return s.mu.Has(v) }

// EachSeen calls fn for every node with a non-zero PPR estimate.
func (s *Flat) EachSeen(fn func(v graph.NodeID, rho float64)) { s.rho.Each(fn) }

// EachRestart calls fn for every query node with its normalized weight.
func (s *Flat) EachRestart(fn func(v graph.NodeID, w float64)) {
	for i, v := range s.restartNodes {
		fn(v, s.restartWeights[i])
	}
}

// EachResidual calls fn for every node with a positive residual.
func (s *Flat) EachResidual(fn func(v graph.NodeID, mu float64)) {
	s.mu.Each(func(v graph.NodeID, m float64) {
		if m > 0 {
			fn(v, m)
		}
	})
}

func (s *Flat) addResidual(v graph.NodeID, amount float64) {
	if amount <= 0 {
		return
	}
	nm := s.mu.Add(v, amount)
	s.totalResidual += amount
	deg := s.outDegree(v)
	if deg < 1 {
		deg = 1
	}
	s.benefit.Update(v, nm/float64(deg))
	s.resid.Update(v, nm)
}

// Process applies one BCA processing step to node v, mirroring State.Process:
// alpha of the residual becomes estimate, the rest spreads along out-edges,
// and residual at dangling nodes restarts at the query.
func (s *Flat) Process(v graph.NodeID) {
	residual := s.mu.Get(v)
	if residual <= 0 {
		return
	}
	s.mu.Set(v, 0)
	s.benefit.Remove(v)
	s.resid.Remove(v)
	s.totalResidual -= residual
	s.processed++
	s.rho.Add(v, s.alpha*residual)
	spread := (1 - s.alpha) * residual
	outSum := s.outSum(v)
	if outSum <= 0 {
		for i, qv := range s.restartNodes {
			s.addResidual(qv, spread*s.restartWeights[i])
		}
		return
	}
	cols, wts := s.outRow(v)
	for i, to := range cols {
		s.addResidual(to, spread*wts[i]/outSum)
	}
}

// ProcessBest processes up to m nodes chosen greedily by benefit
// mu(v)/|Out(v)|. Because the benefit heap is updated in place there are no
// stale entries: the top of the heap is always the true best candidate.
func (s *Flat) ProcessBest(m int) int {
	if m > 1 && s.pre != nil {
		// Announce the whole live-residual frontier before a multi-node
		// greedy wave: the remote provider coalesces the misses into one RPC
		// per stripe. Single-node waves (Run's convergence loop) skip the
		// hint — re-announcing the frontier per processed node would scan it
		// quadratically for no batching gain.
		s.prefetch = s.prefetch[:0]
		s.mu.Each(func(v graph.NodeID, res float64) {
			if res > 0 {
				s.prefetch = append(s.prefetch, v)
			}
		})
		s.pre.Prefetch(s.prefetch)
	}
	done := 0
	for done < m {
		v, _, ok := s.benefit.Peek()
		if !ok {
			return done
		}
		s.Process(v)
		done++
	}
	return done
}

// Run processes best-benefit nodes until the total residual drops below tol,
// maxOps steps have been performed, or the context is cancelled.
func (s *Flat) Run(ctx context.Context, tol float64, maxOps int) error {
	ctx = walk.OrBackground(ctx)
	if tol <= 0 {
		tol = 1e-9
	}
	if maxOps <= 0 {
		maxOps = math.MaxInt32
	}
	for s.TotalResidual() > tol && s.processed < maxOps {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.ProcessBest(1) == 0 {
			return nil
		}
	}
	return nil
}

// Estimates returns a dense copy of the current PPR estimates.
func (s *Flat) Estimates(n int) []float64 {
	out := make([]float64, n)
	s.rho.Each(func(v graph.NodeID, r float64) { out[v] = r })
	return out
}

// CheckInvariant verifies the same mass-conservation invariants as
// State.CheckInvariant, plus the flat-specific ones: both heaps hold exactly
// the positive-residual nodes and the residual heap's top matches a full
// scan. Used by tests.
func (s *Flat) CheckInvariant() error {
	mass := 0.0
	s.rho.Each(func(_ graph.NodeID, r float64) { mass += r })
	if mass > 1+1e-9 {
		return fmt.Errorf("bca: estimates sum to %g > 1", mass)
	}
	if s.totalResidual < -1e-9 {
		return fmt.Errorf("bca: negative total residual %g", s.totalResidual)
	}
	recount, live, maxRes := 0.0, 0, 0.0
	var err error
	s.mu.Each(func(v graph.NodeID, m float64) {
		if m < -1e-12 {
			err = fmt.Errorf("bca: negative residual %g", m)
		}
		if m > 0 {
			live++
			if !s.benefit.Contains(v) || !s.resid.Contains(v) {
				err = fmt.Errorf("bca: node %d has residual %g but no heap entry", v, m)
			}
		} else if s.benefit.Contains(v) || s.resid.Contains(v) {
			err = fmt.Errorf("bca: node %d has no residual but a heap entry", v)
		}
		if m > maxRes {
			maxRes = m
		}
		recount += m
	})
	if err != nil {
		return err
	}
	if math.Abs(recount-s.TotalResidual()) > 1e-9*(1+recount) {
		return fmt.Errorf("bca: residual accounting drift: %g vs %g", recount, s.totalResidual)
	}
	if s.benefit.Len() != live || s.resid.Len() != live {
		return fmt.Errorf("bca: heap sizes %d/%d, want %d live residuals",
			s.benefit.Len(), s.resid.Len(), live)
	}
	if got := s.MaxResidual(); math.Abs(got-maxRes) > 1e-15*(1+maxRes) {
		return fmt.Errorf("bca: incremental max residual %g, scan says %g", got, maxRes)
	}
	return nil
}
