package bca

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func TestFlatInitValidation(t *testing.T) {
	g := testgraphs.Cycle(4)
	var s Flat
	if err := s.Init(g, walk.SingleNode(0), 0); err == nil {
		t.Errorf("alpha 0 should error")
	}
	if err := s.Init(g, walk.SingleNode(0), 1); err == nil {
		t.Errorf("alpha 1 should error")
	}
	if err := s.Init(g, walk.Query{}, 0.25); err == nil {
		t.Errorf("empty query should error")
	}
	if err := s.Init(g, walk.SingleNode(99), 0.25); err == nil {
		t.Errorf("out-of-range query node should error")
	}
	// A failed Init must not poison a later successful one.
	if err := s.Init(g, walk.SingleNode(2), 0.25); err != nil {
		t.Fatalf("Init after failures: %v", err)
	}
	if got := s.TotalResidual(); math.Abs(got-1) > 1e-12 {
		t.Errorf("initial total residual = %g, want 1", got)
	}
	if s.MaxResidual() != s.Residual(2) {
		t.Errorf("MaxResidual should equal the query residual initially")
	}
}

// TestFlatProcessMatchesMapState drives the flat and map engines through the
// same explicit processing sequence and checks estimates, residuals and
// counters stay bit-identical: Process performs the same arithmetic in the
// same order on both paths.
func TestFlatProcessMatchesMapState(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	ms, err := New(toy.Graph, q, 0.25)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var fs Flat
	if err := fs.Init(toy.Graph, q, 0.25); err != nil {
		t.Fatalf("Init: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	n := toy.Graph.NumNodes()
	for step := 0; step < 200; step++ {
		// Pick the map engine's best-benefit node by scan, so the choice is
		// implementation-independent, and process it on both engines.
		best, bestBenefit := graph.NoNode, -1.0
		ms.EachResidual(func(v graph.NodeID, mu float64) {
			deg := toy.Graph.OutDegree(v)
			if deg < 1 {
				deg = 1
			}
			if b := mu / float64(deg); b > bestBenefit {
				best, bestBenefit = v, b
			}
		})
		if best == graph.NoNode {
			break
		}
		// Occasionally process a random node instead (often a no-op),
		// exercising the zero-residual paths.
		if rng.Intn(4) == 0 {
			best = graph.NodeID(rng.Intn(n))
		}
		ms.Process(best)
		fs.Process(best)
		if ms.TotalResidual() != fs.TotalResidual() {
			t.Fatalf("step %d: total residual %g (map) != %g (flat)", step, ms.TotalResidual(), fs.TotalResidual())
		}
		if ms.Processed() != fs.Processed() || ms.SeenCount() != fs.SeenCount() {
			t.Fatalf("step %d: counters diverged", step)
		}
		for v := 0; v < n; v++ {
			node := graph.NodeID(v)
			if ms.Rho(node) != fs.Rho(node) {
				t.Fatalf("step %d: rho(%d) %g != %g", step, v, ms.Rho(node), fs.Rho(node))
			}
			if ms.Residual(node) != fs.Residual(node) {
				t.Fatalf("step %d: mu(%d) %g != %g", step, v, ms.Residual(node), fs.Residual(node))
			}
		}
		if err := fs.CheckInvariant(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestFlatRunConvergesToExactPPR(t *testing.T) {
	toy := testgraphs.NewToy()
	alpha := 0.25
	q := walk.SingleNode(toy.T1)
	exact, err := walk.FRank(context.Background(), toy.Graph, q, walk.Params{Alpha: alpha, Tol: 1e-12, MaxIter: 1000})
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	var s Flat
	if err := s.Init(toy.Graph, q, alpha); err != nil {
		t.Fatalf("Init: %v", err)
	}
	s.Run(context.Background(), 1e-10, 0)
	if s.TotalResidual() > 1e-10 {
		t.Fatalf("Run did not reach tolerance: residual %g", s.TotalResidual())
	}
	est := s.Estimates(toy.Graph.NumNodes())
	for v := range est {
		if math.Abs(est[v]-exact[v]) > 1e-8 {
			t.Errorf("node %d: flat BCA %g vs exact %g", v, est[v], exact[v])
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant after Run: %v", err)
	}
}

// TestFlatHeapNeverExceedsTouched pins the decrease-key property the lazy
// map heap lacked: the benefit heap holds exactly the live-residual nodes,
// so its size can never exceed the number of touched nodes.
func TestFlatHeapNeverExceedsTouched(t *testing.T) {
	toy := testgraphs.NewToy()
	var s Flat
	if err := s.Init(toy.Graph, walk.SingleNode(toy.T1), 0.25); err != nil {
		t.Fatalf("Init: %v", err)
	}
	for step := 0; step < 500; step++ {
		touched := 0
		s.mu.Each(func(graph.NodeID, float64) { touched++ })
		if s.LiveResidualCount() > touched {
			t.Fatalf("step %d: heap size %d exceeds %d touched nodes", step, s.LiveResidualCount(), touched)
		}
		live := 0
		s.EachResidual(func(graph.NodeID, float64) { live++ })
		if s.LiveResidualCount() != live {
			t.Fatalf("step %d: heap size %d, want exactly %d live residuals", step, s.LiveResidualCount(), live)
		}
		if s.ProcessBest(1) == 0 {
			break
		}
	}
	if s.Processed() == 0 {
		t.Fatalf("no processing happened")
	}
}

// TestFlatMaxResidualIncremental checks the O(1) MaxResidual against a full
// scan throughout a run (the map path rescanned the residual map per call).
func TestFlatMaxResidualIncremental(t *testing.T) {
	toy := testgraphs.NewToy()
	var s Flat
	if err := s.Init(toy.Graph, walk.MultiNode(toy.T1, toy.T2), 0.3); err != nil {
		t.Fatalf("Init: %v", err)
	}
	for step := 0; step < 300; step++ {
		scan := 0.0
		s.EachResidual(func(_ graph.NodeID, mu float64) {
			if mu > scan {
				scan = mu
			}
		})
		if got := s.MaxResidual(); got != scan {
			t.Fatalf("step %d: MaxResidual %g, scan %g", step, got, scan)
		}
		if s.ProcessBest(1) == 0 {
			break
		}
	}
}

// TestFlatReuseAcrossGraphs re-Inits one Flat across graphs of different
// sizes (the pool-resize situation after an engine epoch swap) and checks
// each run matches a fresh instance exactly.
func TestFlatReuseAcrossGraphs(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
		q    graph.NodeID
	}{
		{"toy", testgraphs.NewToy().Graph, testgraphs.NewToy().T1},
		{"line", testgraphs.Line(6), 0},
		{"cycle", testgraphs.Cycle(40), 7},
		{"star", testgraphs.Star(5), 0},
	}
	var reused Flat
	for round := 0; round < 2; round++ { // grow and shrink both ways
		for _, tc := range graphs {
			if err := reused.Init(tc.g, walk.SingleNode(tc.q), 0.25); err != nil {
				t.Fatalf("%s: reused Init: %v", tc.name, err)
			}
			var fresh Flat
			if err := fresh.Init(tc.g, walk.SingleNode(tc.q), 0.25); err != nil {
				t.Fatalf("%s: fresh Init: %v", tc.name, err)
			}
			reused.Run(context.Background(), 1e-9, 0)
			fresh.Run(context.Background(), 1e-9, 0)
			re := reused.Estimates(tc.g.NumNodes())
			fr := fresh.Estimates(tc.g.NumNodes())
			for v := range fr {
				if re[v] != fr[v] {
					t.Fatalf("%s: node %d reused %g != fresh %g", tc.name, v, re[v], fr[v])
				}
			}
			if err := reused.CheckInvariant(); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
	}
}

// Property: the flat engine upholds the same invariants as the map engine on
// random graphs (mirrors TestQuickBCAInvariants).
func TestQuickFlatInvariants(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('A'+i)))
		}
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.5+rng.Float64())
		}
		g := b.MustBuild()
		alpha := 0.15 + 0.6*rng.Float64()
		q := ids[rng.Intn(n)]
		exact, err := walk.FRank(context.Background(), g, walk.SingleNode(q), walk.Params{Alpha: alpha, Tol: 1e-12, MaxIter: 1000})
		if err != nil {
			return false
		}
		var s Flat
		if err := s.Init(g, walk.SingleNode(q), alpha); err != nil {
			return false
		}
		prevResidual := s.TotalResidual()
		steps := 1 + int(stepsRaw%60)
		for i := 0; i < steps; i++ {
			if s.ProcessBest(1) == 0 {
				break
			}
			if s.TotalResidual() > prevResidual+1e-9 {
				return false
			}
			prevResidual = s.TotalResidual()
			if s.CheckInvariant() != nil {
				return false
			}
		}
		ok := true
		s.EachSeen(func(v graph.NodeID, rho float64) {
			if rho > exact[v]+1e-8 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
