// Package bca implements the Bookmark-Coloring Algorithm (Berkhin, 2006) for
// Personalized PageRank, which is the Stage-I engine of 2SBound's F-Rank side
// (Sect. V-A3 of the RoundTripRank paper).
//
// BCA maintains, for a fixed query q, a sparse estimate rho(q, v) of PPR and a
// sparse residual mu(q, v). Initially all residual (one unit) sits at the
// query. Processing a node converts an alpha fraction of its residual into
// estimate and spreads the remaining (1-alpha) fraction to its out-neighbors
// proportionally to edge weights. The invariant
//
//	PPR(q, v) = rho(q, v) + sum_u mu(q, u) * PPR(u, v)
//
// implies rho is always a lower bound of PPR and that the total residual
// bounds the remaining error, which is exactly what the Proposition 4 bounds
// build on.
package bca

import (
	"context"
	"fmt"
	"math"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/heapx"
	"roundtriprank/internal/walk"
)

// State is a BCA computation in progress for one query.
type State struct {
	view    graph.View
	alpha   float64
	restart map[graph.NodeID]float64 // normalized query distribution

	// out is the view's forward CSR when it can expose one (hasCSR); the hot
	// Process loop then streams the flat row instead of calling through the
	// View interface per edge.
	out    graph.CSR
	hasCSR bool

	rho map[graph.NodeID]float64
	mu  map[graph.NodeID]float64

	totalResidual float64
	processed     int

	// benefit is a lazy max-heap over nodes keyed by mu(v)/max(1, outdeg(v)).
	benefit *heapx.Max[graph.NodeID]
}

// New starts a BCA computation for the given query with teleport probability
// alpha in (0, 1).
func New(view graph.View, q walk.Query, alpha float64) (*State, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("bca: alpha must be in (0,1), got %g", alpha)
	}
	nq, err := q.Normalize()
	if err != nil {
		return nil, fmt.Errorf("bca: %w", err)
	}
	s := &State{
		view:    view,
		alpha:   alpha,
		restart: make(map[graph.NodeID]float64, len(nq.Nodes)),
		rho:     make(map[graph.NodeID]float64),
		mu:      make(map[graph.NodeID]float64),
		benefit: heapx.NewMax[graph.NodeID](64),
	}
	if cv, ok := view.(graph.CSRView); ok {
		s.out = cv.OutCSR()
		s.hasCSR = true
	}
	for i, v := range nq.Nodes {
		if int(v) < 0 || int(v) >= view.NumNodes() {
			return nil, fmt.Errorf("bca: query node %d out of range", v)
		}
		s.restart[v] += nq.Weights[i]
	}
	for v, w := range s.restart {
		s.addResidual(v, w)
	}
	return s, nil
}

// Alpha returns the teleport probability of this computation.
func (s *State) Alpha() float64 { return s.alpha }

// Rho returns the current PPR estimate at v (a lower bound of the exact PPR).
func (s *State) Rho(v graph.NodeID) float64 { return s.rho[v] }

// Residual returns the current residual at v.
func (s *State) Residual(v graph.NodeID) float64 { return s.mu[v] }

// TotalResidual returns the total remaining residual mass; it decreases
// monotonically as nodes are processed and bounds the total estimation error.
func (s *State) TotalResidual() float64 {
	if s.totalResidual < 0 {
		return 0
	}
	return s.totalResidual
}

// MaxResidual returns the largest residual currently held by any node.
func (s *State) MaxResidual() float64 {
	max := 0.0
	for _, m := range s.mu {
		if m > max {
			max = m
		}
	}
	return max
}

// Processed returns the number of BCA processing operations performed.
func (s *State) Processed() int { return s.processed }

// SeenCount returns the number of nodes with a non-zero estimate, i.e. the
// size of the f-neighborhood Sf.
func (s *State) SeenCount() int { return len(s.rho) }

// EachSeen calls fn for every node with a non-zero PPR estimate.
func (s *State) EachSeen(fn func(v graph.NodeID, rho float64)) {
	for v, r := range s.rho {
		fn(v, r)
	}
}

// EachResidual calls fn for every node with a non-zero residual.
func (s *State) EachResidual(fn func(v graph.NodeID, mu float64)) {
	for v, m := range s.mu {
		if m > 0 {
			fn(v, m)
		}
	}
}

func (s *State) outDegree(v graph.NodeID) int {
	if s.hasCSR {
		return s.out.Degree(v)
	}
	return s.view.OutDegree(v)
}

func (s *State) addResidual(v graph.NodeID, amount float64) {
	if amount <= 0 {
		return
	}
	s.mu[v] += amount
	s.totalResidual += amount
	deg := s.outDegree(v)
	if deg < 1 {
		deg = 1
	}
	s.benefit.Push(v, s.mu[v]/float64(deg))
}

// Process applies one BCA processing step to node v: alpha of its residual is
// added to its estimate, the rest is spread to out-neighbors. Processing a
// node with no residual is a no-op. Residual at dangling nodes is restarted at
// the query, matching the dangling-node handling of the iterative F-Rank
// solver so that both converge to the same PPR vector.
func (s *State) Process(v graph.NodeID) {
	residual := s.mu[v]
	if residual <= 0 {
		return
	}
	s.mu[v] = 0
	s.totalResidual -= residual
	s.processed++
	s.rho[v] += s.alpha * residual
	spread := (1 - s.alpha) * residual
	var outSum float64
	if s.hasCSR {
		outSum = s.out.Sum[v]
	} else {
		outSum = s.view.OutWeightSum(v)
	}
	if outSum <= 0 {
		for qv, w := range s.restart {
			s.addResidual(qv, spread*w)
		}
		return
	}
	if s.hasCSR {
		cols, wts := s.out.Row(v)
		for i, to := range cols {
			s.addResidual(to, spread*wts[i]/outSum)
		}
		return
	}
	s.view.EachOut(v, func(to graph.NodeID, w float64) bool {
		s.addResidual(to, spread*w/outSum)
		return true
	})
}

// ProcessBest processes up to m nodes chosen greedily by benefit
// mu(v)/|Out(v)| (Sect. V-A3: large residual, few out-neighbors). It returns
// the number of nodes actually processed, which can be smaller than m when the
// residual frontier is exhausted.
func (s *State) ProcessBest(m int) int {
	done := 0
	for done < m {
		v, pri, ok := s.benefit.Pop()
		if !ok {
			return done
		}
		deg := s.outDegree(v)
		if deg < 1 {
			deg = 1
		}
		current := s.mu[v] / float64(deg)
		if s.mu[v] <= 0 {
			continue // stale heap entry
		}
		if current < pri-1e-15 {
			// Stale priority (residual was consumed since push); reinsert with
			// the fresh value and continue.
			s.benefit.Push(v, current)
			continue
		}
		s.Process(v)
		done++
	}
	return done
}

// Run processes best-benefit nodes until the total residual drops below tol,
// maxOps processing steps have been performed, or the context is cancelled
// (checked once per processing step). It is the standalone approximate-PPR
// mode of BCA, used by tests and by the Gupta baseline.
func (s *State) Run(ctx context.Context, tol float64, maxOps int) error {
	ctx = walk.OrBackground(ctx)
	if tol <= 0 {
		tol = 1e-9
	}
	if maxOps <= 0 {
		maxOps = math.MaxInt32
	}
	for s.TotalResidual() > tol && s.processed < maxOps {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.ProcessBest(1) == 0 {
			return nil
		}
	}
	return nil
}

// Estimates returns a dense copy of the current PPR estimates.
func (s *State) Estimates(n int) []float64 {
	out := make([]float64, n)
	for v, r := range s.rho {
		out[v] = r
	}
	return out
}

// CheckInvariant verifies the BCA mass-conservation invariant
// sum_v rho(v) + total residual == 1 up to floating-point error. It returns an
// error describing the violation, if any. Used by tests.
func (s *State) CheckInvariant() error {
	mass := 0.0
	for _, r := range s.rho {
		mass += r
	}
	// rho accumulates alpha per processed unit of residual; the remaining mass
	// of each processed unit stays as residual somewhere, so estimates plus
	// residual do not sum to 1 but to 1 in the limit. The conserved quantity
	// is: total residual + (estimates / alpha consumed share) ... The simplest
	// exact invariant is on expectation: rho lower-bounds PPR and
	// sum(rho) <= 1, and residual >= 0.
	if mass > 1+1e-9 {
		return fmt.Errorf("bca: estimates sum to %g > 1", mass)
	}
	if s.totalResidual < -1e-9 {
		return fmt.Errorf("bca: negative total residual %g", s.totalResidual)
	}
	recount := 0.0
	for _, m := range s.mu {
		if m < -1e-12 {
			return fmt.Errorf("bca: negative residual %g", m)
		}
		recount += m
	}
	if math.Abs(recount-s.TotalResidual()) > 1e-9*(1+recount) {
		return fmt.Errorf("bca: residual accounting drift: %g vs %g", recount, s.totalResidual)
	}
	return nil
}
