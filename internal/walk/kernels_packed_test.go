package walk

import (
	"context"
	"testing"

	"roundtriprank/internal/graph"
)

// TestPackedKernelsBitIdenticalToFlat pins the packed fast paths to the flat
// kernels exactly: FRank, TRank and GlobalPageRank on graph.Pack(g) must
// reproduce the flat-CSR results bit for bit, for every worker count. The
// packed kernels stream each row through PackedIter in the same entry order
// the flat kernels index it, so any divergence is an encoding bug, not
// floating-point noise.
func TestPackedKernelsBitIdenticalToFlat(t *testing.T) {
	p := Params{Alpha: 0.25, Tol: 1e-11, MaxIter: 300}
	for name, g := range kernelTestGraphs() {
		pg := graph.Pack(g)
		q := SingleNode(0)
		restart := make([]float64, g.NumNodes())
		if err := q.restart(restart); err != nil {
			t.Fatalf("%s: restart: %v", name, err)
		}
		for _, workers := range []int{1, 3, 8} {
			pool := NewPool(workers)
			wantF, err := fRankCSR(context.Background(), g, restart, p, pool)
			if err != nil {
				t.Fatalf("%s: fRankCSR: %v", name, err)
			}
			gotF, err := fRankPacked(context.Background(), pg, restart, p, pool)
			if err != nil {
				t.Fatalf("%s: fRankPacked: %v", name, err)
			}
			assertBitIdentical(t, name+"/frank", wantF, gotF)

			wantT, err := tRankCSR(context.Background(), g, restart, p, pool)
			if err != nil {
				t.Fatalf("%s: tRankCSR: %v", name, err)
			}
			gotT, err := tRankPacked(context.Background(), pg, restart, p, pool)
			if err != nil {
				t.Fatalf("%s: tRankPacked: %v", name, err)
			}
			assertBitIdentical(t, name+"/trank", wantT, gotT)

			wantPR, err := pageRankCSR(context.Background(), g, 0.15, 1e-11, 300, pool)
			if err != nil {
				t.Fatalf("%s: pageRankCSR: %v", name, err)
			}
			gotPR, err := pageRankPacked(context.Background(), pg, 0.15, 1e-11, 300, pool)
			if err != nil {
				t.Fatalf("%s: pageRankPacked: %v", name, err)
			}
			assertBitIdentical(t, name+"/pagerank", wantPR, gotPR)
			pool.Close()
		}
	}
}

// TestPackedSolverDispatch pins the public entry points: a *graph.Packed view
// must route to the packed kernels and return the flat results bit for bit.
func TestPackedSolverDispatch(t *testing.T) {
	p := Params{Alpha: 0.25, Tol: 1e-11, MaxIter: 300}
	for name, g := range kernelTestGraphs() {
		pg := graph.Pack(g)
		q := SingleNode(1)
		want, err := FRank(context.Background(), g, q, p)
		if err != nil {
			t.Fatalf("%s: FRank flat: %v", name, err)
		}
		got, err := FRank(context.Background(), pg, q, p)
		if err != nil {
			t.Fatalf("%s: FRank packed: %v", name, err)
		}
		assertBitIdentical(t, name+"/FRank", want, got)

		want, err = TRank(context.Background(), g, q, p)
		if err != nil {
			t.Fatalf("%s: TRank flat: %v", name, err)
		}
		got, err = TRank(context.Background(), pg, q, p)
		if err != nil {
			t.Fatalf("%s: TRank packed: %v", name, err)
		}
		assertBitIdentical(t, name+"/TRank", want, got)

		want, err = GlobalPageRank(context.Background(), g, 0.15, 1e-11, 300)
		if err != nil {
			t.Fatalf("%s: GlobalPageRank flat: %v", name, err)
		}
		got, err = GlobalPageRank(context.Background(), pg, 0.15, 1e-11, 300)
		if err != nil {
			t.Fatalf("%s: GlobalPageRank packed: %v", name, err)
		}
		assertBitIdentical(t, name+"/GlobalPageRank", want, got)
	}
}
