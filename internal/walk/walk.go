// Package walk implements the random-walk machinery underlying RoundTripRank:
// the query abstraction (single- or multi-node with the PPR Linearity
// Theorem), the iterative F-Rank solver (Eq. 5 of the paper, equivalent to
// Personalized PageRank by Proposition 1), the iterative T-Rank solver
// (Eq. 8), global PageRank (used by the ObjSqrtInv baseline), and Monte-Carlo
// walk sampling utilities used by the sampling-based baselines.
package walk

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"roundtriprank/internal/graph"
)

// OrBackground returns ctx, or context.Background when ctx is nil. Every
// solver entry point here and in the dependent packages (core, topk, bca)
// normalizes its context with it once, so the iteration loops can call
// ctx.Err() directly.
func OrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// DefaultAlpha is the teleport probability used throughout the paper's
// experiments (Sect. VI-A1): walk lengths are Geometric(0.25).
const DefaultAlpha = 0.25

// Params controls the iterative F-Rank / T-Rank solvers.
type Params struct {
	// Alpha is the teleport (restart) probability; the geometric walk-length
	// parameter of Proposition 1. Must be in (0, 1).
	Alpha float64
	// Tol is the L1 convergence tolerance of the power iteration. Zero means
	// DefaultTol.
	Tol float64
	// MaxIter caps the number of iterations. Zero means DefaultMaxIter.
	MaxIter int
	// Workers overrides the parallelism of the CSR kernels: zero or negative
	// uses the shared GOMAXPROCS-sized pool, one forces a serial solve on
	// the calling goroutine, higher counts run on a transient pool of that
	// size. Kernel results are identical for every worker count (each output
	// row is reduced sequentially by one worker), so this is a scheduling
	// knob, not a numerical one.
	Workers int
}

// Default tolerances for the iterative solvers.
const (
	DefaultTol     = 1e-9
	DefaultMaxIter = 200
)

// DefaultParams returns the parameters used in the paper's effectiveness
// experiments.
func DefaultParams() Params {
	return Params{Alpha: DefaultAlpha, Tol: DefaultTol, MaxIter: DefaultMaxIter}
}

// Normalized validates Alpha and substitutes the default tolerance and
// iteration cap for zero values; it is what every solver entry point (local
// and distributed) applies before iterating.
func (p Params) Normalized() (Params, error) { return p.normalized() }

func (p Params) normalized() (Params, error) {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return p, fmt.Errorf("walk: alpha must be in (0,1), got %g", p.Alpha)
	}
	if p.Tol <= 0 {
		p.Tol = DefaultTol
	}
	if p.MaxIter <= 0 {
		p.MaxIter = DefaultMaxIter
	}
	return p, nil
}

// Query is a probability distribution over query nodes. Per the Linearity
// Theorem (Jeh & Widom), F-Rank, T-Rank and hence RoundTripRank for a
// multi-node query are the corresponding mixtures of the single-node values,
// so the solvers simply start from the mixture.
type Query struct {
	Nodes   []graph.NodeID
	Weights []float64
}

// SingleNode returns a query concentrated on one node.
func SingleNode(v graph.NodeID) Query {
	return Query{Nodes: []graph.NodeID{v}, Weights: []float64{1}}
}

// MultiNode returns a uniformly weighted query over the given nodes.
// Duplicates accumulate weight.
func MultiNode(nodes ...graph.NodeID) Query {
	w := make([]float64, len(nodes))
	for i := range w {
		w[i] = 1
	}
	return Query{Nodes: nodes, Weights: w}
}

// Normalize returns a copy of q with weights scaled to sum to one. It returns
// an error if the query is empty or has non-positive total weight.
func (q Query) Normalize() (Query, error) {
	if len(q.Nodes) == 0 || len(q.Nodes) != len(q.Weights) {
		return Query{}, fmt.Errorf("walk: query must have matching non-empty nodes and weights")
	}
	total := 0.0
	for _, w := range q.Weights {
		if w < 0 {
			return Query{}, fmt.Errorf("walk: query weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		return Query{}, fmt.Errorf("walk: query weights sum to zero")
	}
	out := Query{Nodes: append([]graph.NodeID(nil), q.Nodes...), Weights: make([]float64, len(q.Weights))}
	for i, w := range q.Weights {
		out.Weights[i] = w / total
	}
	return out, nil
}

// NormalizeInto is the allocation-free Normalize used by the pooled online
// hot path: it validates the query against a graph of numNodes nodes and
// appends the normalized, duplicate-merged restart distribution to the
// caller's reusable nodes/weights buffers (pass them resliced to length
// zero). Unlike Normalize it also range-checks the query nodes and merges
// duplicates (first occurrence keeps the position), so the result is a
// deterministic sparse restart vector ready for flat-array iteration.
func (q Query) NormalizeInto(numNodes int, nodes []graph.NodeID, weights []float64) ([]graph.NodeID, []float64, error) {
	if len(q.Nodes) == 0 || len(q.Nodes) != len(q.Weights) {
		return nodes, weights, fmt.Errorf("walk: query must have matching non-empty nodes and weights")
	}
	total := 0.0
	for _, w := range q.Weights {
		if w < 0 {
			return nodes, weights, fmt.Errorf("walk: query weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		return nodes, weights, fmt.Errorf("walk: query weights sum to zero")
	}
outer:
	for i, v := range q.Nodes {
		if int(v) < 0 || int(v) >= numNodes {
			return nodes, weights, fmt.Errorf("walk: query node %d out of range [0,%d)", v, numNodes)
		}
		w := q.Weights[i] / total
		for j, u := range nodes {
			if u == v {
				weights[j] += w
				continue outer
			}
		}
		nodes = append(nodes, v)
		weights = append(weights, w)
	}
	return nodes, weights, nil
}

// Contains reports whether v is one of the query nodes.
func (q Query) Contains(v graph.NodeID) bool {
	for _, n := range q.Nodes {
		if n == v {
			return true
		}
	}
	return false
}

// restart fills dst with the normalized query distribution.
func (q Query) restart(dst []float64) error {
	nq, err := q.Normalize()
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range nq.Nodes {
		if int(v) < 0 || int(v) >= len(dst) {
			return fmt.Errorf("walk: query node %d out of range [0,%d)", v, len(dst))
		}
		dst[v] += nq.Weights[i]
	}
	return nil
}

// FRank computes f(q, v) for every node v: the probability that a walk of
// geometric length starting from the query ends at v (Eq. 1), equal to
// Personalized PageRank with teleport probability Alpha (Proposition 1). The
// returned slice sums to one. Mass at dangling nodes (zero out-degree) is
// restarted at the query, the standard PPR correction.
//
// On a graph.CSRView the solve runs as a parallel pull-style matvec over the
// transposed adjacency (see kernels.go); other views use the generic
// push-style sweep below. The context is checked once per power iteration:
// cancelling it makes FRank return ctx.Err() within one sweep over the edges.
func FRank(ctx context.Context, view graph.View, q Query, p Params) ([]float64, error) {
	ctx = OrBackground(ctx)
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	n := view.NumNodes()
	restart := make([]float64, n)
	if err := q.restart(restart); err != nil {
		return nil, err
	}
	if cv, ok := view.(graph.CSRView); ok {
		pool, release := p.pool()
		defer release()
		return fRankCSR(ctx, cv, restart, p, pool)
	}
	if pv, ok := view.(graph.PackedCSRView); ok {
		pool, release := p.pool()
		defer release()
		return fRankPacked(ctx, pv, restart, p, pool)
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, restart)

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range next {
			next[i] = p.Alpha * restart[i]
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			mass := cur[u]
			if mass == 0 {
				continue
			}
			sum := view.OutWeightSum(graph.NodeID(u))
			if sum <= 0 {
				dangling += mass
				continue
			}
			scale := (1 - p.Alpha) * mass / sum
			view.EachOut(graph.NodeID(u), func(to graph.NodeID, w float64) bool {
				next[to] += scale * w
				return true
			})
		}
		if dangling > 0 {
			scale := (1 - p.Alpha) * dangling
			for i := range restart {
				if restart[i] > 0 {
					next[i] += scale * restart[i]
				}
			}
		}
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// TRank computes t(q, v) for every node v: the probability that a walk of
// geometric length starting from v ends at the query (Eq. 8). Unlike F-Rank,
// t(q, ·) is not a distribution over v; each entry is a probability in [0, 1].
// For a multi-node query, t(q, v) is the query-weighted mixture of the
// single-node values, mirroring the linearity used for F-Rank.
//
// On a graph.CSRView the solve runs as a parallel row-partitioned matvec over
// the forward adjacency. The context is checked once per iteration, as in
// FRank.
func TRank(ctx context.Context, view graph.View, q Query, p Params) ([]float64, error) {
	ctx = OrBackground(ctx)
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	n := view.NumNodes()
	restart := make([]float64, n)
	if err := q.restart(restart); err != nil {
		return nil, err
	}
	if cv, ok := view.(graph.CSRView); ok {
		pool, release := p.pool()
		defer release()
		return tRankCSR(ctx, cv, restart, p, pool)
	}
	if pv, ok := view.(graph.PackedCSRView); ok {
		pool, release := p.pool()
		defer release()
		return tRankPacked(ctx, pv, restart, p, pool)
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = p.Alpha * restart[i]
	}
	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			acc := p.Alpha * restart[v]
			sum := view.OutWeightSum(graph.NodeID(v))
			if sum > 0 {
				s := 0.0
				view.EachOut(graph.NodeID(v), func(to graph.NodeID, w float64) bool {
					s += w * cur[to]
					return true
				})
				acc += (1 - p.Alpha) * s / sum
			}
			next[v] = acc
		}
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// GlobalPageRank computes the standard (non-personalized) PageRank with the
// given damping factor d: the stationary distribution of a surfer that
// teleports to a uniformly random node with probability d. It is used by the
// ObjSqrtInv baseline (global ObjectRank) and as a popularity prior in the
// dataset generators.
func GlobalPageRank(ctx context.Context, view graph.View, d float64, tol float64, maxIter int) ([]float64, error) {
	ctx = OrBackground(ctx)
	if d <= 0 || d >= 1 {
		return nil, fmt.Errorf("walk: damping must be in (0,1), got %g", d)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	n := view.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("walk: empty graph")
	}
	if cv, ok := view.(graph.CSRView); ok {
		pool := DefaultPool()
		return pageRankCSR(ctx, cv, d, tol, maxIter, pool)
	}
	if pv, ok := view.(graph.PackedCSRView); ok {
		return pageRankPacked(ctx, pv, d, tol, maxIter, DefaultPool())
	}
	uniform := 1.0 / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = uniform
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dangling := 0.0
		for i := range next {
			next[i] = d * uniform
		}
		for u := 0; u < n; u++ {
			mass := cur[u]
			if mass == 0 {
				continue
			}
			sum := view.OutWeightSum(graph.NodeID(u))
			if sum <= 0 {
				dangling += mass
				continue
			}
			scale := (1 - d) * mass / sum
			view.EachOut(graph.NodeID(u), func(to graph.NodeID, w float64) bool {
				next[to] += scale * w
				return true
			})
		}
		if dangling > 0 {
			add := (1 - d) * dangling * uniform
			for i := range next {
				next[i] += add
			}
		}
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}

func l1Diff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Sampler draws random-walk trajectories on a View. It is used by the
// Monte-Carlo baselines (SimRank, truncated commute time) and by tests that
// cross-validate the iterative solvers against simulation.
type Sampler struct {
	view graph.View
	rng  *rand.Rand
}

// NewSampler returns a Sampler using the given random source.
func NewSampler(view graph.View, rng *rand.Rand) *Sampler {
	return &Sampler{view: view, rng: rng}
}

// Step samples one forward random-walk step from v proportionally to edge
// weights. It returns the next node and false when v has no outgoing edges.
func (s *Sampler) Step(v graph.NodeID) (graph.NodeID, bool) {
	sum := s.view.OutWeightSum(v)
	if sum <= 0 {
		return v, false
	}
	target := s.rng.Float64() * sum
	var chosen graph.NodeID
	found := false
	acc := 0.0
	s.view.EachOut(v, func(to graph.NodeID, w float64) bool {
		acc += w
		if acc >= target {
			chosen = to
			found = true
			return false
		}
		return true
	})
	if !found {
		// Floating-point slack: fall back to the last edge.
		s.view.EachOut(v, func(to graph.NodeID, w float64) bool {
			chosen = to
			found = true
			return true
		})
	}
	return chosen, found
}

// StepBack samples one backward step (an in-edge) from v proportionally to
// edge weights, i.e. a forward step on the reversed graph.
func (s *Sampler) StepBack(v graph.NodeID) (graph.NodeID, bool) {
	sum := s.view.InWeightSum(v)
	if sum <= 0 {
		return v, false
	}
	target := s.rng.Float64() * sum
	var chosen graph.NodeID
	found := false
	acc := 0.0
	s.view.EachIn(v, func(from graph.NodeID, w float64) bool {
		acc += w
		if acc >= target {
			chosen = from
			found = true
			return false
		}
		return true
	})
	if !found {
		s.view.EachIn(v, func(from graph.NodeID, w float64) bool {
			chosen = from
			found = true
			return true
		})
	}
	return chosen, found
}

// GeometricWalk walks forward from start with a geometric number of steps
// (restart probability alpha) and returns the end node. The walk stops early
// at dangling nodes.
func (s *Sampler) GeometricWalk(start graph.NodeID, alpha float64) graph.NodeID {
	cur := start
	for s.rng.Float64() >= alpha {
		next, ok := s.Step(cur)
		if !ok {
			return cur
		}
		cur = next
	}
	return cur
}

// FixedWalk walks forward exactly steps steps (or until a dangling node) and
// returns the visited sequence including the start node.
func (s *Sampler) FixedWalk(start graph.NodeID, steps int) []graph.NodeID {
	path := make([]graph.NodeID, 1, steps+1)
	path[0] = start
	cur := start
	for i := 0; i < steps; i++ {
		next, ok := s.Step(cur)
		if !ok {
			break
		}
		cur = next
		path = append(path, cur)
	}
	return path
}
