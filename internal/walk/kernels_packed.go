package walk

import (
	"context"

	"roundtriprank/internal/graph"
)

// This file holds the packed-CSR fast paths: the same pull-style, row-
// partitioned matvecs as kernels.go, but streaming each row through
// graph.PackedIter instead of indexing flat arrays. Every loop mirrors its
// flat counterpart's operation order exactly — each output row is still a
// sequential reduction over the identical entry sequence — so the packed
// kernels are bit-identical to the flat ones for every worker count
// (kernels_packed_test.go pins this per node, per iteration budget).

// fRankPacked is fRankCSR over a packed view.
func fRankPacked(ctx context.Context, pv graph.PackedCSRView, restart []float64, p Params, pool *Pool) ([]float64, error) {
	n := len(restart)
	out, in := pv.OutPacked(), pv.InPacked()
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	copy(cur, restart)
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		dadd := oneMinus * dangling
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				it := in.Iter(graph.NodeID(v))
				for {
					col, w, ok := it.Next()
					if !ok {
						break
					}
					sum += w * scaled[col]
				}
				r := restart[v]
				nv := p.Alpha*r + oneMinus*sum
				if dadd > 0 && r > 0 {
					nv += dadd * r
				}
				next[v] = nv
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// tRankPacked is tRankCSR over a packed view.
func tRankPacked(ctx context.Context, pv graph.PackedCSRView, restart []float64, p Params, pool *Pool) ([]float64, error) {
	n := len(restart)
	out := pv.OutPacked()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = p.Alpha * restart[i]
	}
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				acc := p.Alpha * restart[v]
				if sum := out.Sum[v]; sum > 0 {
					s := 0.0
					it := out.Iter(graph.NodeID(v))
					for {
						col, w, ok := it.Next()
						if !ok {
							break
						}
						s += w * cur[col]
					}
					acc += oneMinus * s / sum
				}
				next[v] = acc
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// pageRankPacked is pageRankCSR over a packed view.
func pageRankPacked(ctx context.Context, pv graph.PackedCSRView, d, tol float64, maxIter int, pool *Pool) ([]float64, error) {
	n := pv.NumNodes()
	out, in := pv.OutPacked(), pv.InPacked()
	uniform := 1.0 / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	for i := range cur {
		cur[i] = uniform
	}
	oneMinus := 1 - d

	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		base := d*uniform + oneMinus*dangling*uniform
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				it := in.Iter(graph.NodeID(v))
				for {
					col, w, ok := it.Next()
					if !ok {
						break
					}
					sum += w * scaled[col]
				}
				next[v] = base + oneMinus*sum
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}
