package walk

import (
	"context"
	"math"
	"testing"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

// This file pins the CSR kernels to a serial reference implementation: the
// pull-style recurrences written as plain loops with no pool, no chunking and
// no dispatch. The kernels must reproduce the reference bit-for-bit with one
// worker, and — because each output row is reduced sequentially by exactly one
// worker — with every other worker count too.

// serialFRankReference is the pull-style F-Rank recurrence of fRankCSR as
// straight-line serial code.
func serialFRankReference(cv graph.CSRView, restart []float64, p Params) []float64 {
	n := len(restart)
	out, in := cv.OutCSR(), cv.InCSR()
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	copy(cur, restart)
	oneMinus := 1 - p.Alpha
	for iter := 0; iter < p.MaxIter; iter++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		dadd := oneMinus * dangling
		for v := 0; v < n; v++ {
			sum := 0.0
			for i := in.RowPtr[v]; i < in.RowPtr[v+1]; i++ {
				sum += in.Weight[i] * scaled[in.Col[i]]
			}
			r := restart[v]
			nv := p.Alpha*r + oneMinus*sum
			if dadd > 0 && r > 0 {
				nv += dadd * r
			}
			next[v] = nv
		}
		diff := 0.0
		for i := range cur {
			diff += math.Abs(cur[i] - next[i])
		}
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur
}

// serialTRankReference is the T-Rank recurrence of tRankCSR as straight-line
// serial code.
func serialTRankReference(cv graph.CSRView, restart []float64, p Params) []float64 {
	n := len(restart)
	out := cv.OutCSR()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = p.Alpha * restart[i]
	}
	oneMinus := 1 - p.Alpha
	for iter := 0; iter < p.MaxIter; iter++ {
		for v := 0; v < n; v++ {
			acc := p.Alpha * restart[v]
			if sum := out.Sum[v]; sum > 0 {
				s := 0.0
				for i := out.RowPtr[v]; i < out.RowPtr[v+1]; i++ {
					s += out.Weight[i] * cur[out.Col[i]]
				}
				acc += oneMinus * s / sum
			}
			next[v] = acc
		}
		diff := 0.0
		for i := range cur {
			diff += math.Abs(cur[i] - next[i])
		}
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur
}

// serialPageRankReference is the global PageRank recurrence of pageRankCSR as
// straight-line serial code.
func serialPageRankReference(cv graph.CSRView, d, tol float64, maxIter int) []float64 {
	n := cv.NumNodes()
	out, in := cv.OutCSR(), cv.InCSR()
	uniform := 1.0 / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	for i := range cur {
		cur[i] = uniform
	}
	oneMinus := 1 - d
	for iter := 0; iter < maxIter; iter++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		base := d*uniform + oneMinus*dangling*uniform
		for v := 0; v < n; v++ {
			sum := 0.0
			for i := in.RowPtr[v]; i < in.RowPtr[v+1]; i++ {
				sum += in.Weight[i] * scaled[in.Col[i]]
			}
			next[v] = base + oneMinus*sum
		}
		diff := 0.0
		for i := range cur {
			diff += math.Abs(cur[i] - next[i])
		}
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur
}

func kernelTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"toy":   testgraphs.NewToy().Graph,
		"line":  testgraphs.Line(17), // has a dangling tail node
		"cycle": testgraphs.Cycle(23),
		"star":  testgraphs.Star(9),
	}
}

func assertBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: node %d differs bit-for-bit: %v != %v (delta %g)",
				label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestKernelsMatchSerialReferenceBitForBit is the satellite acceptance test:
// the parallel kernels at Workers = 1 (and at every other worker count) must
// reproduce the serial reference exactly, not just within tolerance.
func TestKernelsMatchSerialReferenceBitForBit(t *testing.T) {
	p := Params{Alpha: 0.25, Tol: 1e-11, MaxIter: 300}
	for name, g := range kernelTestGraphs() {
		q := SingleNode(0)
		restart := make([]float64, g.NumNodes())
		if err := q.restart(restart); err != nil {
			t.Fatalf("%s: restart: %v", name, err)
		}
		wantF := serialFRankReference(g, restart, p)
		wantT := serialTRankReference(g, restart, p)
		wantPR := serialPageRankReference(g, 0.15, 1e-11, 300)
		for _, workers := range []int{1, 2, 3, 8} {
			pool := NewPool(workers)
			gotF, err := fRankCSR(context.Background(), g, restart, p, pool)
			if err != nil {
				t.Fatalf("%s workers=%d: fRankCSR: %v", name, workers, err)
			}
			assertBitIdentical(t, name+"/frank", wantF, gotF)
			gotT, err := tRankCSR(context.Background(), g, restart, p, pool)
			if err != nil {
				t.Fatalf("%s workers=%d: tRankCSR: %v", name, workers, err)
			}
			assertBitIdentical(t, name+"/trank", wantT, gotT)
			gotPR, err := pageRankCSR(context.Background(), g, 0.15, 1e-11, 300, pool)
			if err != nil {
				t.Fatalf("%s workers=%d: pageRankCSR: %v", name, workers, err)
			}
			assertBitIdentical(t, name+"/pagerank", wantPR, gotPR)
			pool.Close()
		}
	}
}

// TestPublicSolversUseKernelResults pins the exported entry points to the
// same values: FRank/TRank with a Workers override must equal the serial
// reference bit-for-bit on a CSR view.
func TestPublicSolversUseKernelResults(t *testing.T) {
	g := testgraphs.NewToy().Graph
	p := Params{Alpha: 0.25, Tol: 1e-11, MaxIter: 300, Workers: 1}
	restart := make([]float64, g.NumNodes())
	q := SingleNode(0)
	if err := q.restart(restart); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// The references run with normalized params, mirroring the entry points.
	np, err := p.normalized()
	if err != nil {
		t.Fatalf("normalized: %v", err)
	}
	f, err := FRank(context.Background(), g, q, p)
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	assertBitIdentical(t, "FRank", serialFRankReference(g, restart, np), f)
	tr, err := TRank(context.Background(), g, q, p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	assertBitIdentical(t, "TRank", serialTRankReference(g, restart, np), tr)
}

// TestKernelsMatchGenericSolvers cross-validates the CSR pull kernels against
// the generic push/interface solvers within floating-point tolerance (the
// summation orders differ, so bit equality is not expected). The generic path
// is exercised by hiding the CSR behind an opaque wrapper.
func TestKernelsMatchGenericSolvers(t *testing.T) {
	p := Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 500}
	for name, g := range kernelTestGraphs() {
		q := SingleNode(0)
		opaque := struct{ graph.View }{g}
		fCSR, err := FRank(context.Background(), g, q, p)
		if err != nil {
			t.Fatalf("%s: FRank csr: %v", name, err)
		}
		fGen, err := FRank(context.Background(), opaque, q, p)
		if err != nil {
			t.Fatalf("%s: FRank generic: %v", name, err)
		}
		for i := range fCSR {
			if math.Abs(fCSR[i]-fGen[i]) > 1e-9 {
				t.Fatalf("%s: FRank node %d: csr %g vs generic %g", name, i, fCSR[i], fGen[i])
			}
		}
		tCSR, err := TRank(context.Background(), g, q, p)
		if err != nil {
			t.Fatalf("%s: TRank csr: %v", name, err)
		}
		tGen, err := TRank(context.Background(), opaque, q, p)
		if err != nil {
			t.Fatalf("%s: TRank generic: %v", name, err)
		}
		for i := range tCSR {
			if math.Abs(tCSR[i]-tGen[i]) > 1e-9 {
				t.Fatalf("%s: TRank node %d: csr %g vs generic %g", name, i, tCSR[i], tGen[i])
			}
		}
		prCSR, err := GlobalPageRank(context.Background(), g, 0.15, 1e-12, 500)
		if err != nil {
			t.Fatalf("%s: GlobalPageRank csr: %v", name, err)
		}
		prGen, err := GlobalPageRank(context.Background(), opaque, 0.15, 1e-12, 500)
		if err != nil {
			t.Fatalf("%s: GlobalPageRank generic: %v", name, err)
		}
		for i := range prCSR {
			if math.Abs(prCSR[i]-prGen[i]) > 1e-9 {
				t.Fatalf("%s: PageRank node %d: csr %g vs generic %g", name, i, prCSR[i], prGen[i])
			}
		}
	}
}

// TestPoolRunCoversRange checks the pool partitioning: every index in [0, n)
// is visited exactly once for a spread of sizes and worker counts.
func TestPoolRunCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		pool := NewPool(workers)
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			visited := make([]int32, n) // no lock needed: ranges are disjoint
			pool.Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					visited[i]++
				}
			})
			for i, c := range visited {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		pool.Close()
	}
}
