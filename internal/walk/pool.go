package walk

import (
	"runtime"
	"sync"
)

// Pool is a reusable set of worker goroutines that execute contiguous
// row-range tasks for the parallel sparse kernels. A Pool with one worker
// runs everything inline on the calling goroutine and spawns nothing.
//
// Kernel results are independent of the worker count: each row of the matvec
// is reduced sequentially by exactly one worker, so partitioning changes only
// who computes a row, never the floating-point operation order within it.
type Pool struct {
	workers int
	tasks   chan rangeTask

	closeOnce sync.Once
}

type rangeTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// NewPool creates a pool with the given number of workers; zero or negative
// means GOMAXPROCS. workers-1 goroutines are spawned: the calling goroutine
// always executes the first chunk of every Run itself.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan rangeTask)
		for i := 0; i < workers-1; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

// Workers returns the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// Run partitions [0, n) into up to Workers contiguous ranges and executes
// fn(lo, hi) on each, blocking until all complete. The first range runs on the
// calling goroutine. fn must not call Run on the same pool (the workers would
// deadlock waiting on each other).
func (p *Pool) Run(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	k := p.workers
	if k > n {
		k = n
	}
	if k <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + k - 1) / k
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.tasks <- rangeTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}

// Close stops the pool's workers. Run must not be called after Close. Closing
// the shared default pool is not allowed; Close on it is a no-op there because
// DefaultPool never exposes it.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide kernel pool, created on first use and
// sized by GOMAXPROCS at that moment. It is never closed.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewPool(0)
	})
	return defaultPool
}

// pool resolves the Params.Workers override: the shared default pool when
// zero or negative, otherwise a transient pool that the returned release
// function tears down.
func (p Params) pool() (*Pool, func()) {
	if p.Workers <= 0 {
		return DefaultPool(), func() {}
	}
	tp := NewPool(p.Workers)
	return tp, tp.Close
}
