package walk

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// denseTransition builds the dense one-step transition matrix of a small view.
func denseTransition(v graph.View) [][]float64 {
	n := v.NumNodes()
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		s := v.OutWeightSum(graph.NodeID(i))
		if s <= 0 {
			continue
		}
		v.EachOut(graph.NodeID(i), func(to graph.NodeID, w float64) bool {
			m[i][to] += w / s
			return true
		})
	}
	return m
}

// denseGeometricReach computes sum_l alpha (1-alpha)^l (M^l)[src][dst] for all
// dst, truncated at enough terms for 1e-10 accuracy.
func denseGeometricReach(m [][]float64, src int, alpha float64) []float64 {
	n := len(m)
	cur := make([]float64, n)
	cur[src] = 1
	out := make([]float64, n)
	weight := alpha
	for l := 0; l < 400; l++ {
		for i := range out {
			out[i] += weight * cur[i]
		}
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			if cur[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if m[i][j] > 0 {
					next[j] += cur[i] * m[i][j]
				}
			}
		}
		cur = next
		weight *= 1 - alpha
		if weight < 1e-14 {
			break
		}
	}
	return out
}

func TestFRankMatchesDenseEnumeration(t *testing.T) {
	toy := testgraphs.NewToy()
	p := Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 500}
	f, err := FRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	m := denseTransition(toy.Graph)
	want := denseGeometricReach(m, int(toy.T1), 0.25)
	for v := range want {
		if math.Abs(f[v]-want[v]) > 1e-8 {
			t.Errorf("f(t1,%d) = %.10f, dense = %.10f", v, f[v], want[v])
		}
	}
	if math.Abs(sum(f)-1) > 1e-8 {
		t.Errorf("FRank should sum to 1, got %g", sum(f))
	}
}

func TestTRankMatchesDenseEnumeration(t *testing.T) {
	toy := testgraphs.NewToy()
	p := Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 500}
	tr, err := TRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	m := denseTransition(toy.Graph)
	for v := 0; v < toy.Graph.NumNodes(); v++ {
		want := denseGeometricReach(m, v, 0.25)[toy.T1]
		if math.Abs(tr[v]-want) > 1e-8 {
			t.Errorf("t(t1,%d) = %.10f, dense = %.10f", v, tr[v], want)
		}
	}
}

func TestFRankCycleClosedForm(t *testing.T) {
	n := 6
	alpha := 0.3
	g := testgraphs.Cycle(n)
	f, err := FRank(context.Background(), g, SingleNode(0), Params{Alpha: alpha, Tol: 1e-13, MaxIter: 1000})
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	// On a directed cycle, f(0, d) = alpha (1-alpha)^d / (1 - (1-alpha)^n).
	denom := 1 - math.Pow(1-alpha, float64(n))
	for d := 0; d < n; d++ {
		want := alpha * math.Pow(1-alpha, float64(d)) / denom
		if math.Abs(f[d]-want) > 1e-9 {
			t.Errorf("f(0,%d) = %.10f, want %.10f", d, f[d], want)
		}
	}
}

func TestTRankCycleClosedForm(t *testing.T) {
	n := 5
	alpha := 0.25
	g := testgraphs.Cycle(n)
	tr, err := TRank(context.Background(), g, SingleNode(0), Params{Alpha: alpha, Tol: 1e-13, MaxIter: 1000})
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	// Reaching node 0 from node v requires (n - v) mod n steps at a time the
	// geometric clock stops: t(0,v) = alpha (1-alpha)^dist / (1-(1-alpha)^n).
	denom := 1 - math.Pow(1-alpha, float64(n))
	for v := 0; v < n; v++ {
		dist := (n - v) % n
		want := alpha * math.Pow(1-alpha, float64(dist)) / denom
		if math.Abs(tr[v]-want) > 1e-9 {
			t.Errorf("t(0,%d) = %.10f, want %.10f", v, tr[v], want)
		}
	}
}

func TestToyGraphImportanceSpecificityOrdering(t *testing.T) {
	// The paper's qualitative claims on Fig. 2: v1, v2 are more important than
	// v3 (easier to reach from t1); v2, v3 are more specific than v1 (easier
	// to return to t1 from them).
	toy := testgraphs.NewToy()
	p := DefaultParams()
	f, err := FRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	tr, err := TRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	if !(f[toy.V1] > f[toy.V3]) || !(f[toy.V2] > f[toy.V3]) {
		t.Errorf("importance ordering violated: f(v1)=%g f(v2)=%g f(v3)=%g", f[toy.V1], f[toy.V2], f[toy.V3])
	}
	if !(tr[toy.V2] > tr[toy.V1]) || !(tr[toy.V3] > tr[toy.V1]) {
		t.Errorf("specificity ordering violated: t(v1)=%g t(v2)=%g t(v3)=%g", tr[toy.V1], tr[toy.V2], tr[toy.V3])
	}
}

func TestFRankDanglingMassRestartsAtQuery(t *testing.T) {
	// Line graph: node 3 is dangling; total mass must still sum to 1.
	g := testgraphs.Line(4)
	f, err := FRank(context.Background(), g, SingleNode(0), Params{Alpha: 0.2, Tol: 1e-12, MaxIter: 500})
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	if math.Abs(sum(f)-1) > 1e-9 {
		t.Errorf("FRank with dangling nodes should sum to 1, got %g", sum(f))
	}
	for v, x := range f {
		if x < 0 {
			t.Errorf("negative probability at %d: %g", v, x)
		}
	}
}

func TestTRankOnLineDirectionality(t *testing.T) {
	// On a directed line 0->1->2->3 with query 3, every node can reach the
	// query so t > 0 everywhere, but with query 0 only node 0 has t > 0.
	g := testgraphs.Line(4)
	p := DefaultParams()
	tEnd, err := TRank(context.Background(), g, SingleNode(3), p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	for v := 0; v < 4; v++ {
		if tEnd[v] <= 0 {
			t.Errorf("t(3,%d) should be positive, got %g", v, tEnd[v])
		}
	}
	tStart, err := TRank(context.Background(), g, SingleNode(0), p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	for v := 1; v < 4; v++ {
		if tStart[v] != 0 {
			t.Errorf("t(0,%d) should be zero on a forward line, got %g", v, tStart[v])
		}
	}
	if tStart[0] <= 0 {
		t.Errorf("t(0,0) should be positive")
	}
}

func TestMultiNodeQueryLinearity(t *testing.T) {
	toy := testgraphs.NewToy()
	p := Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 500}
	q := MultiNode(toy.T1, toy.T2)
	f, err := FRank(context.Background(), toy.Graph, q, p)
	if err != nil {
		t.Fatalf("FRank multi: %v", err)
	}
	f1, _ := FRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	f2, _ := FRank(context.Background(), toy.Graph, SingleNode(toy.T2), p)
	for v := range f {
		want := 0.5*f1[v] + 0.5*f2[v]
		if math.Abs(f[v]-want) > 1e-8 {
			t.Errorf("linearity violated at %d: %g vs %g", v, f[v], want)
		}
	}
	tr, err := TRank(context.Background(), toy.Graph, q, p)
	if err != nil {
		t.Fatalf("TRank multi: %v", err)
	}
	t1, _ := TRank(context.Background(), toy.Graph, SingleNode(toy.T1), p)
	t2, _ := TRank(context.Background(), toy.Graph, SingleNode(toy.T2), p)
	for v := range tr {
		want := 0.5*t1[v] + 0.5*t2[v]
		if math.Abs(tr[v]-want) > 1e-8 {
			t.Errorf("T-Rank linearity violated at %d: %g vs %g", v, tr[v], want)
		}
	}
}

func TestFRankMonteCarloAgreement(t *testing.T) {
	toy := testgraphs.NewToy()
	alpha := 0.25
	f, err := FRank(context.Background(), toy.Graph, SingleNode(toy.T1), Params{Alpha: alpha})
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	s := NewSampler(toy.Graph, rng)
	const samples = 200000
	counts := make([]float64, toy.Graph.NumNodes())
	for i := 0; i < samples; i++ {
		end := s.GeometricWalk(toy.T1, alpha)
		counts[end]++
	}
	for v := range counts {
		emp := counts[v] / samples
		if math.Abs(emp-f[v]) > 0.01 {
			t.Errorf("Monte-Carlo disagreement at node %d: empirical %.4f vs exact %.4f", v, emp, f[v])
		}
	}
}

func TestGlobalPageRank(t *testing.T) {
	g := testgraphs.Cycle(8)
	pr, err := GlobalPageRank(context.Background(), g, 0.15, 1e-12, 500)
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	if math.Abs(sum(pr)-1) > 1e-9 {
		t.Errorf("PageRank should sum to 1, got %g", sum(pr))
	}
	for v := range pr {
		if math.Abs(pr[v]-1.0/8) > 1e-9 {
			t.Errorf("cycle PageRank should be uniform, node %d = %g", v, pr[v])
		}
	}
	star := testgraphs.Star(10)
	prs, err := GlobalPageRank(context.Background(), star, 0.15, 1e-12, 500)
	if err != nil {
		t.Fatalf("GlobalPageRank star: %v", err)
	}
	if prs[0] <= prs[1] {
		t.Errorf("hub should outrank leaves: hub=%g leaf=%g", prs[0], prs[1])
	}
}

func TestGlobalPageRankErrors(t *testing.T) {
	g := testgraphs.Cycle(3)
	if _, err := GlobalPageRank(context.Background(), g, 0, 1e-9, 10); err == nil {
		t.Errorf("damping 0 should error")
	}
	if _, err := GlobalPageRank(context.Background(), g, 1.2, 1e-9, 10); err == nil {
		t.Errorf("damping > 1 should error")
	}
	empty := graph.NewBuilder().MustBuild()
	if _, err := GlobalPageRank(context.Background(), empty, 0.15, 1e-9, 10); err == nil {
		t.Errorf("empty graph should error")
	}
}

func TestParamsValidation(t *testing.T) {
	g := testgraphs.Cycle(3)
	if _, err := FRank(context.Background(), g, SingleNode(0), Params{Alpha: 0}); err == nil {
		t.Errorf("alpha 0 should error")
	}
	if _, err := TRank(context.Background(), g, SingleNode(0), Params{Alpha: 1}); err == nil {
		t.Errorf("alpha 1 should error")
	}
	if _, err := FRank(context.Background(), g, Query{}, DefaultParams()); err == nil {
		t.Errorf("empty query should error")
	}
	if _, err := FRank(context.Background(), g, Query{Nodes: []graph.NodeID{0}, Weights: []float64{-1}}, DefaultParams()); err == nil {
		t.Errorf("negative query weight should error")
	}
	if _, err := FRank(context.Background(), g, Query{Nodes: []graph.NodeID{0}, Weights: []float64{0}}, DefaultParams()); err == nil {
		t.Errorf("zero-total query should error")
	}
	if _, err := FRank(context.Background(), g, SingleNode(99), DefaultParams()); err == nil {
		t.Errorf("out-of-range query node should error")
	}
	if _, err := TRank(context.Background(), g, SingleNode(99), DefaultParams()); err == nil {
		t.Errorf("out-of-range query node should error for TRank")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := MultiNode(1, 2, 2)
	if !q.Contains(2) || q.Contains(5) {
		t.Errorf("Contains results wrong")
	}
	nq, err := q.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if math.Abs(sum(nq.Weights)-1) > 1e-12 {
		t.Errorf("normalized weights should sum to 1")
	}
	if _, err := (Query{Nodes: []graph.NodeID{1}, Weights: []float64{1, 2}}).Normalize(); err == nil {
		t.Errorf("mismatched lengths should error")
	}
}

func TestSamplerStepDistribution(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode(graph.Untyped, "a")
	x := b.AddNode(graph.Untyped, "x")
	y := b.AddNode(graph.Untyped, "y")
	b.MustAddEdge(a, x, 3)
	b.MustAddEdge(a, y, 1)
	g := b.MustBuild()
	rng := rand.New(rand.NewSource(7))
	s := NewSampler(g, rng)
	const n = 100000
	cx := 0
	for i := 0; i < n; i++ {
		to, ok := s.Step(a)
		if !ok {
			t.Fatalf("Step should succeed")
		}
		if to == x {
			cx++
		}
	}
	frac := float64(cx) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("weighted step fraction = %.3f, want ~0.75", frac)
	}
	if _, ok := s.Step(x); ok {
		t.Errorf("Step from dangling node should report failure")
	}
	if _, ok := s.StepBack(a); ok {
		t.Errorf("StepBack from source-only node should report failure")
	}
	if from, ok := s.StepBack(x); !ok || from != a {
		t.Errorf("StepBack(x) = %d,%v want %d,true", from, ok, a)
	}
	path := s.FixedWalk(a, 5)
	if len(path) < 2 || path[0] != a {
		t.Errorf("FixedWalk path wrong: %v", path)
	}
}

// Property: on random graphs, F-Rank is a probability distribution and T-Rank
// entries are probabilities in [0,1]; the query node always has positive
// scores in both.
func TestQuickRankInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('A'+i)))
		}
		m := n + rng.Intn(4*n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.5+rng.Float64())
		}
		g := b.MustBuild()
		q := ids[rng.Intn(n)]
		p := Params{Alpha: 0.1 + 0.8*rng.Float64(), Tol: 1e-10, MaxIter: 300}
		fr, err := FRank(context.Background(), g, SingleNode(q), p)
		if err != nil {
			return false
		}
		tr, err := TRank(context.Background(), g, SingleNode(q), p)
		if err != nil {
			return false
		}
		if math.Abs(sum(fr)-1) > 1e-6 {
			return false
		}
		if fr[q] <= 0 || tr[q] <= 0 {
			return false
		}
		for i := range fr {
			if fr[i] < -1e-12 || tr[i] < -1e-12 || tr[i] > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeInto pins the allocation-free normalizer of the online hot
// path: same validation as Normalize plus range checking and duplicate
// merging into caller-owned buffers.
func TestNormalizeInto(t *testing.T) {
	var nodes []graph.NodeID
	var weights []float64

	bad := []Query{
		{},
		{Nodes: []graph.NodeID{1}, Weights: []float64{1, 2}},
		{Nodes: []graph.NodeID{1}, Weights: []float64{-1}},
		{Nodes: []graph.NodeID{1}, Weights: []float64{0}},
		{Nodes: []graph.NodeID{10}, Weights: []float64{1}}, // out of range
		{Nodes: []graph.NodeID{-1}, Weights: []float64{1}},
	}
	for i, q := range bad {
		if _, _, err := q.NormalizeInto(10, nodes[:0], weights[:0]); err == nil {
			t.Errorf("case %d should error", i)
		}
	}

	q := Query{Nodes: []graph.NodeID{3, 5, 3}, Weights: []float64{1, 2, 1}}
	nodes, weights, err := q.NormalizeInto(10, nodes[:0], weights[:0])
	if err != nil {
		t.Fatalf("NormalizeInto: %v", err)
	}
	if len(nodes) != 2 || nodes[0] != 3 || nodes[1] != 5 {
		t.Fatalf("nodes = %v, want [3 5] (duplicates merged, first occurrence kept)", nodes)
	}
	if math.Abs(weights[0]-0.5) > 1e-15 || math.Abs(weights[1]-0.5) > 1e-15 {
		t.Fatalf("weights = %v, want [0.5 0.5]", weights)
	}

	// The result must agree with Normalize on the merged distribution.
	nq, err := q.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	merged := map[graph.NodeID]float64{}
	for i, v := range nq.Nodes {
		merged[v] += nq.Weights[i]
	}
	for i, v := range nodes {
		if math.Abs(merged[v]-weights[i]) > 1e-15 {
			t.Errorf("node %d: NormalizeInto %g, Normalize %g", v, weights[i], merged[v])
		}
	}

	// Buffers are reused: a second call with ample capacity must not grow.
	n2, w2, err := Query{Nodes: []graph.NodeID{1}, Weights: []float64{4}}.NormalizeInto(10, nodes[:0], weights[:0])
	if err != nil {
		t.Fatalf("reuse: %v", err)
	}
	if &n2[0] != &nodes[0] || &w2[0] != &weights[0] {
		t.Errorf("NormalizeInto should reuse caller buffers")
	}
	if len(n2) != 1 || n2[0] != 1 || w2[0] != 1 {
		t.Errorf("reuse result = %v/%v", n2, w2)
	}
}
