package walk

import (
	"context"

	"roundtriprank/internal/graph"
)

// This file holds the flat-CSR fast paths of the iterative solvers: pull-style
// (gather) sparse matvecs partitioned by contiguous row ranges across a worker
// pool. Pull form is what makes row partitioning race-free — next[v] is
// written by exactly one worker, which reduces v's CSR row sequentially — so
// results are bit-identical for every worker count, including the serial
// reference (see kernels_test.go). The generic View versions in walk.go remain
// as the fallback for views that cannot expose CSR arrays (masked, tracking,
// remote) and as the pre-CSR baseline for benchmarking.

// fRankCSR computes F-Rank by pulling over the transposed adjacency:
//
//	next[v] = α·restart[v] + (1−α)·Σ_{u→v} w(u,v)·cur[u]/outSum(u)
//
// with dangling mass restarted at the query, matching the push-style generic
// solver up to floating-point summation order.
func fRankCSR(ctx context.Context, cv graph.CSRView, restart []float64, p Params, pool *Pool) ([]float64, error) {
	n := len(restart)
	out, in := cv.OutCSR(), cv.InCSR()
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	copy(cur, restart)
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Scale by inverse out-weight and collect dangling mass. Serial so the
		// dangling reduction has a fixed summation order.
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		dadd := oneMinus * dangling
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				rowLo, rowHi := in.RowPtr[v], in.RowPtr[v+1]
				for i := rowLo; i < rowHi; i++ {
					sum += in.Weight[i] * scaled[in.Col[i]]
				}
				r := restart[v]
				nv := p.Alpha*r + oneMinus*sum
				if dadd > 0 && r > 0 {
					nv += dadd * r
				}
				next[v] = nv
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// tRankCSR computes T-Rank by reducing each node's own out-row:
//
//	next[v] = α·restart[v] + (1−α)·(Σ_{v→to} w(v,to)·cur[to]) / outSum(v)
//
// This is the same operation order as the generic solver, so on a CSRView the
// two are bit-identical.
func tRankCSR(ctx context.Context, cv graph.CSRView, restart []float64, p Params, pool *Pool) ([]float64, error) {
	n := len(restart)
	out := cv.OutCSR()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = p.Alpha * restart[i]
	}
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				acc := p.Alpha * restart[v]
				if sum := out.Sum[v]; sum > 0 {
					s := 0.0
					rowLo, rowHi := out.RowPtr[v], out.RowPtr[v+1]
					for i := rowLo; i < rowHi; i++ {
						s += out.Weight[i] * cur[out.Col[i]]
					}
					acc += oneMinus * s / sum
				}
				next[v] = acc
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// pageRankCSR computes global PageRank with the same pull-style gather as
// fRankCSR, but with a uniform restart and dangling mass spread uniformly.
func pageRankCSR(ctx context.Context, cv graph.CSRView, d, tol float64, maxIter int, pool *Pool) ([]float64, error) {
	n := cv.NumNodes()
	out, in := cv.OutCSR(), cv.InCSR()
	uniform := 1.0 / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	for i := range cur {
		cur[i] = uniform
	}
	oneMinus := 1 - d

	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			if out.Sum[u] > 0 {
				scaled[u] = cur[u] / out.Sum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		base := d*uniform + oneMinus*dangling*uniform
		pool.Run(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				rowLo, rowHi := in.RowPtr[v], in.RowPtr[v+1]
				for i := rowLo; i < rowHi; i++ {
					sum += in.Weight[i] * scaled[in.Col[i]]
				}
				next[v] = base + oneMinus*sum
			}
		})
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}
