package eval

import (
	"fmt"
	"sort"
	"strings"
)

// RenderNDCGTable renders a Fig. 5 / Fig. 9 style table: one row per measure,
// one column group per task, columns K = 5, 10, 20 plus the cross-task
// average. taskResults maps task label -> (one MeasureResult per measure, in
// the same measure order for every task).
func RenderNDCGTable(title string, taskLabels []string, taskResults map[string][]MeasureResult, ks []int) string {
	if len(ks) == 0 {
		ks = KValues
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	// Header.
	fmt.Fprintf(&sb, "%-18s", "Measure")
	for _, task := range taskLabels {
		for _, k := range ks {
			fmt.Fprintf(&sb, " %12s", fmt.Sprintf("%s@%d", shorten(task), k))
		}
	}
	for _, k := range ks {
		fmt.Fprintf(&sb, " %12s", fmt.Sprintf("Avg@%d", k))
	}
	sb.WriteString("\n")
	if len(taskLabels) == 0 {
		return sb.String()
	}
	nMeasures := len(taskResults[taskLabels[0]])
	for mi := 0; mi < nMeasures; mi++ {
		name := taskResults[taskLabels[0]][mi].Name
		fmt.Fprintf(&sb, "%-18s", name)
		avgs := make(map[int]float64, len(ks))
		for _, task := range taskLabels {
			res := taskResults[task][mi]
			for _, k := range ks {
				fmt.Fprintf(&sb, " %12.4f", res.MeanNDCG[k])
				avgs[k] += res.MeanNDCG[k]
			}
		}
		for _, k := range ks {
			fmt.Fprintf(&sb, " %12.4f", avgs[k]/float64(len(taskLabels)))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func shorten(task string) string {
	task = strings.TrimPrefix(task, "Task ")
	if i := strings.Index(task, " ("); i > 0 {
		return "T" + task[:i]
	}
	return task
}

// RenderBetaSweep renders the Fig. 8 series: NDCG@5 as a function of β for one
// task.
func RenderBetaSweep(task string, sweep map[float64]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Specificity bias sweep — %s (NDCG@5)\n", task)
	betas := make([]float64, 0, len(sweep))
	for b := range sweep {
		betas = append(betas, b)
	}
	sort.Float64s(betas)
	for _, b := range betas {
		fmt.Fprintf(&sb, "  beta=%.2f  %.4f\n", b, sweep[b])
	}
	return sb.String()
}

// RenderEfficiencyTable renders Fig. 11(a)/(b): query time per scheme and
// slack, plus quality metrics for the approximate results.
func RenderEfficiencyTable(rows []EfficiencyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %12s %12s %8s %10s %12s\n",
		"Scheme", "eps", "time(ms)", "±99%CI", "NDCG", "precision", "Kendall tau")
	for _, r := range rows {
		eps := "-"
		if r.Epsilon > 0 {
			eps = fmt.Sprintf("%.3f", r.Epsilon)
		}
		fmt.Fprintf(&sb, "%-10s %8s %12.2f %12.2f %8.3f %10.3f %12.3f\n",
			r.Scheme, eps, r.MeanTimeMS, r.CITimeMS, r.NDCG, r.Precision, r.KendallTau)
	}
	return sb.String()
}

// RenderSnapshotTable renders Fig. 12: snapshot size, active-set size and
// query time per snapshot.
func RenderSnapshotTable(name string, rows []SnapshotResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s snapshots\n", name)
	fmt.Fprintf(&sb, "%-14s %14s %18s %18s\n", "Snapshot", "size(MB)", "active set(KB)", "query time(ms)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %14.2f %11.1f±%-5.1f %12.1f±%-5.1f\n",
			r.Label, float64(r.SnapshotBytes)/(1<<20),
			r.ActiveSetBytes/1024, r.CIActiveSetBytes/1024,
			r.QueryTimeMS, r.CIQueryTimeMS)
	}
	return sb.String()
}

// RenderGrowthRates renders Fig. 13: growth of snapshot, active set and query
// time relative to the first snapshot.
func RenderGrowthRates(name string, gr *GrowthRates) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s rate of growth (relative to first snapshot)\n", name)
	fmt.Fprintf(&sb, "%-14s %10s %12s %12s\n", "Snapshot", "snapshot", "active set", "query time")
	for i := range gr.Labels {
		fmt.Fprintf(&sb, "%-14s %10.2f %12.2f %12.2f\n", gr.Labels[i], gr.Snapshot[i], gr.Active[i], gr.Time[i])
	}
	return sb.String()
}

// RenderIllustrative renders a Fig. 6 / Fig. 7 style side-by-side listing of
// per-measure top venues for a topic query.
func RenderIllustrative(topic string, columns map[string][]string, order []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Top venues for %q\n", topic)
	for _, name := range order {
		fmt.Fprintf(&sb, "  [%s]\n", name)
		for i, venue := range columns[name] {
			fmt.Fprintf(&sb, "    %d. %s\n", i+1, venue)
		}
	}
	return sb.String()
}
