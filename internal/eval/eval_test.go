package eval

import (
	"context"
	"strings"
	"testing"

	"roundtriprank/internal/baselines"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/tasks"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

func tinyBibNet(t *testing.T) *datasets.BibNet {
	t.Helper()
	cfg := datasets.SmallBibNetConfig()
	cfg.Papers = 250
	cfg.Authors = 150
	net, err := datasets.GenerateBibNet(cfg)
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	return net
}

func TestEvaluateTaskVenue(t *testing.T) {
	net := tinyBibNet(t)
	instances, err := tasks.SampleBibNet(net, tasks.TaskVenue, 15, 1)
	if err != nil {
		t.Fatalf("SampleBibNet: %v", err)
	}
	measures := []baselines.Measure{
		baselines.NewRoundTripRank(),
		baselines.NewFRank(),
		baselines.NewTRank(),
		baselines.NewAdamicAdar(),
	}
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 100}
	results, err := EvaluateTask(context.Background(), net.Graph, instances, measures, []int{5, 10}, wp, nil)
	if err != nil {
		t.Fatalf("EvaluateTask: %v", err)
	}
	if len(results) != len(measures) {
		t.Fatalf("got %d results, want %d", len(results), len(measures))
	}
	for _, r := range results {
		for _, k := range []int{5, 10} {
			if len(r.PerQuery[k]) != len(instances) {
				t.Errorf("%s: per-query length mismatch", r.Name)
			}
			if r.MeanNDCG[k] < 0 || r.MeanNDCG[k] > 1 {
				t.Errorf("%s: mean NDCG@%d out of range: %g", r.Name, k, r.MeanNDCG[k])
			}
		}
		if r.MeanNDCG[10] < r.MeanNDCG[5]-1e-9 {
			t.Errorf("%s: NDCG@10 (%g) should not be below NDCG@5 (%g)", r.Name, r.MeanNDCG[10], r.MeanNDCG[5])
		}
	}
	// The random-walk measures must recover venues far better than chance;
	// RoundTripRank and F-Rank should both be clearly positive.
	if results[0].MeanNDCG[5] <= 0.2 {
		t.Errorf("RoundTripRank NDCG@5 suspiciously low: %g", results[0].MeanNDCG[5])
	}
	// Significance helper runs.
	if _, err := SignificanceP(results[0], results[1], 5); err != nil {
		t.Errorf("SignificanceP: %v", err)
	}
	// Renderer includes every measure name.
	table := RenderNDCGTable("test", []string{"Task 2 (Venue)"},
		map[string][]MeasureResult{"Task 2 (Venue)": results}, []int{5, 10})
	for _, m := range measures {
		if !strings.Contains(table, m.Name()) {
			t.Errorf("table missing measure %s", m.Name())
		}
	}
}

func TestEvaluateTaskErrors(t *testing.T) {
	net := tinyBibNet(t)
	if _, err := EvaluateTask(context.Background(), net.Graph, nil, nil, nil, walk.DefaultParams(), nil); err == nil {
		t.Errorf("empty instances should error")
	}
}

func TestSweepAndTuneBeta(t *testing.T) {
	net := tinyBibNet(t)
	instances, err := tasks.SampleBibNet(net, tasks.TaskVenue, 10, 2)
	if err != nil {
		t.Fatalf("SampleBibNet: %v", err)
	}
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 100}
	betas := []float64{0, 0.5, 1}
	sweep, err := SweepBeta(context.Background(), net.Graph, instances, betas, 5, wp)
	if err != nil {
		t.Fatalf("SweepBeta: %v", err)
	}
	if len(sweep) != len(betas) {
		t.Fatalf("sweep size %d, want %d", len(sweep), len(betas))
	}
	best, err := TuneBeta(context.Background(), net.Graph, instances, betas, 5, wp)
	if err != nil {
		t.Fatalf("TuneBeta: %v", err)
	}
	if sweep[best] < sweep[0] || sweep[best] < sweep[1] || sweep[best] < sweep[0.5] {
		t.Errorf("TuneBeta did not pick the best beta: %g", best)
	}
	if len(DefaultBetaGrid()) != 11 {
		t.Errorf("default beta grid should have 11 points")
	}
	out := RenderBetaSweep("Task 2 (Venue)", sweep)
	if !strings.Contains(out, "beta=0.50") {
		t.Errorf("beta sweep rendering missing entries:\n%s", out)
	}
}

func TestEvaluateEfficiencyAndScalability(t *testing.T) {
	net := tinyBibNet(t)
	g := net.Graph
	queries := []graph.NodeID{net.Papers[0], net.Papers[5], net.Papers[10]}
	rows, err := EvaluateEfficiency(context.Background(), g, EfficiencyConfig{
		K:            5,
		Queries:      queries,
		Epsilons:     []float64{0.01},
		Schemes:      []topk.Scheme{topk.Scheme2SBound, topk.SchemeGS},
		IncludeNaive: true,
	})
	if err != nil {
		t.Fatalf("EvaluateEfficiency: %v", err)
	}
	if len(rows) != 3 { // naive + 2 schemes × 1 epsilon
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MeanTimeMS < 0 {
			t.Errorf("negative time for %s", r.Scheme)
		}
		if r.Scheme != "Naive" {
			if r.NDCG < 0.5 {
				t.Errorf("%s: approximation NDCG too low: %g", r.Scheme, r.NDCG)
			}
			if r.ActiveSetBytes <= 0 {
				t.Errorf("%s: active set should be positive", r.Scheme)
			}
		}
	}
	table := RenderEfficiencyTable(rows)
	if !strings.Contains(table, "2SBound") || !strings.Contains(table, "Naive") {
		t.Errorf("efficiency table missing schemes:\n%s", table)
	}

	snaps, err := net.Snapshots(3)
	if err != nil {
		t.Fatalf("Snapshots: %v", err)
	}
	srows, err := EvaluateScalability(context.Background(), snaps, []string{"s1", "s2", "s3"}, 3, 0.01, 5, 9)
	if err != nil {
		t.Fatalf("EvaluateScalability: %v", err)
	}
	if len(srows) != 3 {
		t.Fatalf("got %d snapshot rows", len(srows))
	}
	if srows[2].SnapshotBytes < srows[0].SnapshotBytes {
		t.Errorf("snapshot sizes should grow")
	}
	gr, err := ComputeGrowthRates(srows)
	if err != nil {
		t.Fatalf("ComputeGrowthRates: %v", err)
	}
	if gr.Snapshot[0] != 1 || gr.Active[0] != 1 || gr.Time[0] != 1 {
		t.Errorf("growth rates should be normalized to the first snapshot")
	}
	if !strings.Contains(RenderSnapshotTable("BibNet", srows), "active set") {
		t.Errorf("snapshot table missing header")
	}
	if !strings.Contains(RenderGrowthRates("BibNet", gr), "rate of growth") {
		t.Errorf("growth table missing header")
	}
	if _, err := ComputeGrowthRates(nil); err == nil {
		t.Errorf("empty rows should error")
	}
	if _, err := EvaluateEfficiency(context.Background(), g, EfficiencyConfig{}); err == nil {
		t.Errorf("no queries should error")
	}
	if _, err := EvaluateScalability(context.Background(), nil, nil, 1, 0.01, 5, 1); err == nil {
		t.Errorf("no snapshots should error")
	}
}

func TestIllustrativeRanking(t *testing.T) {
	net := tinyBibNet(t)
	terms := net.QueryTermsFor("spatio temporal data")
	if len(terms) == 0 {
		t.Fatalf("no query terms")
	}
	wp := walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 100}
	venuesF, err := IllustrativeRanking(context.Background(), net.Graph, terms, baselines.NewFRank(), datasets.TypeVenue, 5, wp)
	if err != nil {
		t.Fatalf("IllustrativeRanking: %v", err)
	}
	venuesR, err := IllustrativeRanking(context.Background(), net.Graph, terms, baselines.NewRoundTripRank(), datasets.TypeVenue, 5, wp)
	if err != nil {
		t.Fatalf("IllustrativeRanking: %v", err)
	}
	if len(venuesF) != 5 || len(venuesR) != 5 {
		t.Fatalf("expected 5 venues per measure")
	}
	out := RenderIllustrative("spatio temporal data",
		map[string][]string{"F-Rank/PPR": venuesF, "RoundTripRank": venuesR},
		[]string{"F-Rank/PPR", "RoundTripRank"})
	if !strings.Contains(out, "RoundTripRank") {
		t.Errorf("illustrative rendering missing measure")
	}
	if _, err := IllustrativeRanking(context.Background(), net.Graph, nil, baselines.NewFRank(), datasets.TypeVenue, 5, wp); err == nil {
		t.Errorf("empty query should error")
	}
}
