// Package eval is the experiment harness: it runs the paper's effectiveness
// evaluation (NDCG@K over the four tasks, Fig. 5 / 9 / 10), the specificity
// bias sweep (Fig. 8), the efficiency study of the online top-K schemes
// (Fig. 11) and the scalability study over growing snapshots (Fig. 12 / 13),
// and renders the results as the text tables reproduced in EXPERIMENTS.md.
package eval

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"roundtriprank/internal/baselines"
	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/metrics"
	"roundtriprank/internal/tasks"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// KValues are the ranking cutoffs reported by the paper.
var KValues = []int{5, 10, 20}

// MeasureResult holds one measure's per-query and aggregate NDCG for a task.
type MeasureResult struct {
	Name string
	// PerQuery maps K to the per-query NDCG@K values (aligned with the
	// instance order), used for paired significance tests.
	PerQuery map[int][]float64
	// MeanNDCG maps K to the mean NDCG@K.
	MeanNDCG map[int]float64
}

// EvaluateTask runs every measure on every instance and reports NDCG@K.
// The global PageRank of the underlying graph may be passed to avoid
// recomputing it for ObjSqrtInv; it may be nil.
func EvaluateTask(ctx context.Context, g *graph.Graph, instances []tasks.Instance, measures []baselines.Measure,
	ks []int, wp walk.Params, globalPR []float64) ([]MeasureResult, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("eval: no instances")
	}
	if len(ks) == 0 {
		ks = KValues
	}
	results := make([]MeasureResult, len(measures))
	for mi, m := range measures {
		results[mi] = MeasureResult{
			Name:     m.Name(),
			PerQuery: make(map[int][]float64, len(ks)),
			MeanNDCG: make(map[int]float64, len(ks)),
		}
		for _, k := range ks {
			results[mi].PerQuery[k] = make([]float64, len(instances))
		}
	}

	type job struct{ idx int }
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan job, len(instances))
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var mu sync.Mutex

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				inst := instances[jb.idx]
				mctx := &baselines.Context{
					Ctx:      ctx,
					View:     inst.View,
					Query:    inst.Query,
					Walk:     wp,
					GlobalPR: globalPR,
					Rand:     rand.New(rand.NewSource(int64(jb.idx) + 1)),
				}
				keep := core.TypeFilter(g, inst.TargetType, inst.QueryNode)
				for mi, m := range measures {
					scores, err := m.Score(mctx)
					if err != nil {
						errOnce.Do(func() { firstErr = fmt.Errorf("eval: %s: %w", m.Name(), err) })
						continue
					}
					ranked := core.Rank(scores, keep)
					ids := make([]graph.NodeID, len(ranked))
					for i, r := range ranked {
						ids[i] = r.Node
					}
					mu.Lock()
					for _, k := range ks {
						results[mi].PerQuery[k][jb.idx] = metrics.NDCGAtK(ids, inst.GroundTruth, k)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range instances {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for mi := range results {
		for _, k := range ks {
			results[mi].MeanNDCG[k] = metrics.Mean(results[mi].PerQuery[k])
		}
	}
	return results, nil
}

// SignificanceP returns the two-tailed paired t-test p-value comparing measure
// a and b on the same task at cutoff k.
func SignificanceP(a, b MeasureResult, k int) (float64, error) {
	_, p, err := metrics.PairedTTest(a.PerQuery[k], b.PerQuery[k])
	return p, err
}

// SweepBeta evaluates RoundTripRank+ over a grid of specificity biases and
// returns mean NDCG@k per β (Fig. 8).
func SweepBeta(ctx context.Context, g *graph.Graph, instances []tasks.Instance, betas []float64, k int, wp walk.Params) (map[float64]float64, error) {
	if len(betas) == 0 {
		betas = DefaultBetaGrid()
	}
	measures := make([]baselines.Measure, len(betas))
	for i, b := range betas {
		measures[i] = baselines.NewRoundTripRankPlus(b)
	}
	res, err := EvaluateTask(ctx, g, instances, measures, []int{k}, wp, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[float64]float64, len(betas))
	for i, b := range betas {
		out[b] = res[i].MeanNDCG[k]
	}
	return out, nil
}

// TuneBeta returns the β with the highest mean NDCG@k on the development
// instances, emulating the paper's per-task tuning with development queries.
func TuneBeta(ctx context.Context, g *graph.Graph, dev []tasks.Instance, betas []float64, k int, wp walk.Params) (float64, error) {
	sweep, err := SweepBeta(ctx, g, dev, betas, k, wp)
	if err != nil {
		return 0, err
	}
	best, bestScore := core.BalancedBeta, -1.0
	keys := make([]float64, 0, len(sweep))
	for b := range sweep {
		keys = append(keys, b)
	}
	sort.Float64s(keys)
	for _, b := range keys {
		if sweep[b] > bestScore {
			best, bestScore = b, sweep[b]
		}
	}
	return best, nil
}

// DefaultBetaGrid returns the β grid of Fig. 8.
func DefaultBetaGrid() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// EfficiencyResult aggregates query time and, for approximate schemes, the
// quality of the approximation against the exact ranking (Fig. 11).
type EfficiencyResult struct {
	Scheme     string
	Epsilon    float64
	MeanTimeMS float64
	CITimeMS   float64 // 99% confidence half-width
	NDCG       float64
	Precision  float64
	KendallTau float64
	// ActiveSetBytes is the mean active-set size (Fig. 12).
	ActiveSetBytes   float64
	CIActiveSetBytes float64
}

// EfficiencyConfig controls the efficiency experiments.
type EfficiencyConfig struct {
	K        int
	Alpha    float64
	Queries  []graph.NodeID
	Epsilons []float64
	Schemes  []topk.Scheme
	// IncludeNaive adds the exact iterative baseline timing.
	IncludeNaive bool
}

// EvaluateEfficiency measures the query time of the online top-K schemes at
// each slack and the approximation quality of 2SBound against the exact
// ranking (Fig. 11a and 11b).
func EvaluateEfficiency(ctx context.Context, g *graph.Graph, cfg EfficiencyConfig) ([]EfficiencyResult, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("eval: no queries")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = walk.DefaultAlpha
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = []float64{0.01, 0.02, 0.03}
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []topk.Scheme{topk.Scheme2SBound, topk.SchemeGS, topk.SchemeGupta, topk.SchemeSarkar}
	}
	var results []EfficiencyResult

	// Exact rankings (shared by the quality metrics and the Naive timing).
	exactTop := make([][]graph.NodeID, len(cfg.Queries))
	naiveTimes := make([]float64, len(cfg.Queries))
	for i, q := range cfg.Queries {
		start := time.Now()
		ranked, _, err := topk.Naive(ctx, g, walk.SingleNode(q), topk.Options{K: cfg.K, Alpha: cfg.Alpha, Beta: core.BalancedBeta})
		if err != nil {
			return nil, err
		}
		naiveTimes[i] = float64(time.Since(start).Microseconds()) / 1000.0
		ids := make([]graph.NodeID, len(ranked))
		for j, r := range ranked {
			ids[j] = r.Node
		}
		exactTop[i] = ids
	}
	if cfg.IncludeNaive {
		results = append(results, EfficiencyResult{
			Scheme:     "Naive",
			MeanTimeMS: metrics.Mean(naiveTimes),
			CITimeMS:   metrics.ConfidenceInterval(naiveTimes, 0.99),
			NDCG:       1, Precision: 1, KendallTau: 1,
		})
	}

	for _, scheme := range cfg.Schemes {
		for _, eps := range cfg.Epsilons {
			times := make([]float64, len(cfg.Queries))
			activeBytes := make([]float64, len(cfg.Queries))
			ndcgs := make([]float64, 0, len(cfg.Queries))
			precisions := make([]float64, 0, len(cfg.Queries))
			taus := make([]float64, 0, len(cfg.Queries))
			for i, q := range cfg.Queries {
				tracking := graph.NewTrackingView(g)
				opt := topk.Options{K: cfg.K, Epsilon: eps, Alpha: cfg.Alpha, Beta: core.BalancedBeta, Scheme: scheme}
				start := time.Now()
				res, err := topk.TopK(ctx, tracking, walk.SingleNode(q), opt)
				if err != nil {
					return nil, err
				}
				times[i] = float64(time.Since(start).Microseconds()) / 1000.0
				activeBytes[i] = float64(tracking.ActiveSetBytes())

				approx := make([]graph.NodeID, len(res.TopK))
				for j, r := range res.TopK {
					approx[j] = r.Node
				}
				truth := make(map[graph.NodeID]bool, len(exactTop[i]))
				for _, v := range exactTop[i] {
					truth[v] = true
				}
				ndcgs = append(ndcgs, metrics.NDCGAtK(approx, truth, cfg.K))
				precisions = append(precisions, metrics.PrecisionAtK(approx, truth, cfg.K))
				if tau, err := metrics.KendallTau(approx, exactTop[i]); err == nil {
					taus = append(taus, tau)
				}
			}
			results = append(results, EfficiencyResult{
				Scheme:           scheme.String(),
				Epsilon:          eps,
				MeanTimeMS:       metrics.Mean(times),
				CITimeMS:         metrics.ConfidenceInterval(times, 0.99),
				NDCG:             metrics.Mean(ndcgs),
				Precision:        metrics.Mean(precisions),
				KendallTau:       metrics.Mean(taus),
				ActiveSetBytes:   metrics.Mean(activeBytes),
				CIActiveSetBytes: metrics.ConfidenceInterval(activeBytes, 0.99),
			})
		}
	}
	return results, nil
}

// SnapshotResult reports one growth snapshot (one row of Fig. 12).
type SnapshotResult struct {
	Label            string
	SnapshotBytes    int64
	ActiveSetBytes   float64
	CIActiveSetBytes float64
	QueryTimeMS      float64
	CIQueryTimeMS    float64
}

// EvaluateScalability runs 2SBound on each snapshot with the given slack and
// reports snapshot size, active-set size and query time (Fig. 12). Queries are
// sampled per snapshot from the provided seed.
func EvaluateScalability(ctx context.Context, snapshots []*graph.Subgraph, labels []string, queriesPerSnapshot int,
	epsilon float64, k int, seed int64) ([]SnapshotResult, error) {
	if len(snapshots) == 0 {
		return nil, fmt.Errorf("eval: no snapshots")
	}
	if queriesPerSnapshot <= 0 {
		queriesPerSnapshot = 20
	}
	if k <= 0 {
		k = 10
	}
	out := make([]SnapshotResult, 0, len(snapshots))
	for si, snap := range snapshots {
		g := snap.Graph
		rng := rand.New(rand.NewSource(seed + int64(si)))
		times := make([]float64, 0, queriesPerSnapshot)
		active := make([]float64, 0, queriesPerSnapshot)
		for qi := 0; qi < queriesPerSnapshot; qi++ {
			q := graph.NodeID(rng.Intn(g.NumNodes()))
			tracking := graph.NewTrackingView(g)
			opt := topk.Options{K: k, Epsilon: epsilon, Alpha: walk.DefaultAlpha, Beta: core.BalancedBeta}
			start := time.Now()
			if _, err := topk.TopK(ctx, tracking, walk.SingleNode(q), opt); err != nil {
				return nil, err
			}
			times = append(times, float64(time.Since(start).Microseconds())/1000.0)
			active = append(active, float64(tracking.ActiveSetBytes()))
		}
		label := fmt.Sprintf("snapshot-%d", si+1)
		if si < len(labels) {
			label = labels[si]
		}
		out = append(out, SnapshotResult{
			Label:            label,
			SnapshotBytes:    g.SizeBytes(),
			ActiveSetBytes:   metrics.Mean(active),
			CIActiveSetBytes: metrics.ConfidenceInterval(active, 0.99),
			QueryTimeMS:      metrics.Mean(times),
			CIQueryTimeMS:    metrics.ConfidenceInterval(times, 0.99),
		})
	}
	return out, nil
}

// GrowthRates normalizes snapshot size, active-set size and query time by the
// first snapshot's values (Fig. 13).
type GrowthRates struct {
	Labels   []string
	Snapshot []float64
	Active   []float64
	Time     []float64
}

// ComputeGrowthRates derives Fig. 13 from the Fig. 12 rows.
func ComputeGrowthRates(rows []SnapshotResult) (*GrowthRates, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("eval: no snapshot rows")
	}
	base := rows[0]
	if base.SnapshotBytes == 0 || base.ActiveSetBytes == 0 || base.QueryTimeMS == 0 {
		return nil, fmt.Errorf("eval: first snapshot has zero baselines")
	}
	gr := &GrowthRates{}
	for _, r := range rows {
		gr.Labels = append(gr.Labels, r.Label)
		gr.Snapshot = append(gr.Snapshot, float64(r.SnapshotBytes)/float64(base.SnapshotBytes))
		gr.Active = append(gr.Active, r.ActiveSetBytes/base.ActiveSetBytes)
		gr.Time = append(gr.Time, r.QueryTimeMS/base.QueryTimeMS)
	}
	return gr, nil
}

// IllustrativeRanking returns the top-k labels of a given node type for a
// multi-term topic query under a measure — the qualitative venue rankings of
// Fig. 1, 6 and 7.
func IllustrativeRanking(ctx context.Context, g *graph.Graph, queryNodes []graph.NodeID, m baselines.Measure,
	targetType graph.Type, k int, wp walk.Params) ([]string, error) {
	if len(queryNodes) == 0 {
		return nil, fmt.Errorf("eval: empty query")
	}
	mctx := &baselines.Context{Ctx: ctx, View: g, Query: walk.MultiNode(queryNodes...), Walk: wp,
		Rand: rand.New(rand.NewSource(1))}
	scores, err := m.Score(mctx)
	if err != nil {
		return nil, err
	}
	keep := core.TypeFilter(g, targetType, queryNodes...)
	top := core.TopN(scores, k, keep)
	out := make([]string, len(top))
	for i, r := range top {
		out[i] = strings.TrimPrefix(g.Label(r.Node), "venue:")
	}
	return out, nil
}
