// Package core implements the paper's primary contribution: RoundTripRank
// (Sect. III) and RoundTripRank+ (Sect. IV).
//
// RoundTripRank scores a target node v for a query q by the probability that
// a round trip starting and ending at q passes through v as its target
// (Definition 2). Proposition 2 shows the rank-equivalent decomposition
//
//	r(q, v)  ∝  f(q, v) · t(q, v)
//
// where f is F-Rank (reachability from the query, equal to Personalized
// PageRank) and t is T-Rank (reachability to the query). RoundTripRank+
// generalizes the combination with a specificity bias β derived from the
// hybrid-random-surfer scheme (Eq. 12):
//
//	r_β(q, v)  ∝  f(q, v)^(1−β) · t(q, v)^β
//
// β = 0 degenerates to F-Rank (pure importance), β = 1 to T-Rank (pure
// specificity), and β = 0.5 to RoundTripRank.
//
// The package also contains an exact round-trip path enumerator with constant
// walk lengths, used to validate the decomposition against the toy example of
// Fig. 2 / Fig. 4.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// BalancedBeta is the specificity bias at which RoundTripRank+ equals
// RoundTripRank: importance and specificity weigh equally.
const BalancedBeta = 0.5

// Params configures an exact RoundTripRank(+) computation.
type Params struct {
	// Walk holds the random-walk parameters (teleport probability α,
	// convergence tolerance, iteration cap) shared by F-Rank and T-Rank.
	Walk walk.Params
	// Beta is the specificity bias in [0, 1]. 0.5 is RoundTripRank.
	Beta float64
}

// DefaultParams returns the paper's default configuration: α = 0.25 and a
// balanced trade-off β = 0.5.
func DefaultParams() Params {
	return Params{Walk: walk.DefaultParams(), Beta: BalancedBeta}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.Beta < 0 || p.Beta > 1 {
		return fmt.Errorf("core: beta must be in [0,1], got %g", p.Beta)
	}
	if p.Walk.Alpha <= 0 || p.Walk.Alpha >= 1 {
		return fmt.Errorf("core: alpha must be in (0,1), got %g", p.Walk.Alpha)
	}
	return nil
}

// Scores holds the three per-node score vectors produced by an exact
// computation: F-Rank, T-Rank, and the combined RoundTripRank+ with the
// requested β.
type Scores struct {
	F    []float64
	T    []float64
	R    []float64
	Beta float64
}

// Compute runs the exact (iterative) F-Rank and T-Rank solvers for the query
// and combines them into RoundTripRank+ scores. The two solvers are
// independent and run concurrently. Cancelling the context aborts them within
// one power iteration and returns ctx.Err().
func Compute(ctx context.Context, view graph.View, q walk.Query, p Params) (*Scores, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var (
		t    []float64
		terr error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		t, terr = walk.TRank(ctx, view, q, p.Walk)
	}()
	f, ferr := walk.FRank(ctx, view, q, p.Walk)
	<-done
	if ferr != nil {
		return nil, ferr
	}
	if terr != nil {
		return nil, terr
	}
	return &Scores{F: f, T: t, R: Combine(f, t, p.Beta), Beta: p.Beta}, nil
}

// RoundTripRank computes the balanced (β = 0.5) RoundTripRank scores for the
// query: rank-equivalent to f·t by Proposition 2.
func RoundTripRank(ctx context.Context, view graph.View, q walk.Query, wp walk.Params) ([]float64, error) {
	s, err := Compute(ctx, view, q, Params{Walk: wp, Beta: BalancedBeta})
	if err != nil {
		return nil, err
	}
	return s.R, nil
}

// RoundTripRankPlus computes RoundTripRank+ scores with the given specificity
// bias β (Eq. 12).
func RoundTripRankPlus(ctx context.Context, view graph.View, q walk.Query, wp walk.Params, beta float64) ([]float64, error) {
	s, err := Compute(ctx, view, q, Params{Walk: wp, Beta: beta})
	if err != nil {
		return nil, err
	}
	return s.R, nil
}

// Combine merges F-Rank and T-Rank vectors into RoundTripRank+ scores
// f^(1−β)·t^β. β = 0 returns a copy of f, β = 1 a copy of t; intermediate
// values use the geometric weighting of Eq. 12. Zero scores stay zero.
func Combine(f, t []float64, beta float64) []float64 {
	out := make([]float64, len(f))
	switch {
	case beta == 0:
		copy(out, f)
	case beta == 1:
		copy(out, t)
	default:
		for i := range f {
			if f[i] <= 0 || t[i] <= 0 {
				out[i] = 0
				continue
			}
			out[i] = math.Pow(f[i], 1-beta) * math.Pow(t[i], beta)
		}
	}
	return out
}

// Ranked pairs a node with its score.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// Rank sorts nodes by descending score. Nodes for which keep returns false are
// dropped (pass nil to keep everything); ties are broken by node ID for
// deterministic output. Zero-score nodes are retained so that recall-oriented
// metrics can still find ground-truth nodes deep in the ranking.
func Rank(scores []float64, keep func(graph.NodeID) bool) []Ranked {
	out := make([]Ranked, 0, len(scores))
	for i, s := range scores {
		v := graph.NodeID(i)
		if keep != nil && !keep(v) {
			continue
		}
		out = append(out, Ranked{Node: v, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// TopN returns the first n entries of Rank(scores, keep).
func TopN(scores []float64, n int, keep func(graph.NodeID) bool) []Ranked {
	r := Rank(scores, keep)
	if len(r) > n {
		r = r[:n]
	}
	return r
}

// TypeFilter returns a keep-function that retains only nodes of the given type
// and drops the listed excluded nodes (typically the query itself), matching
// the evaluation protocol of Sect. VI-A ("we filter out the query node itself
// and nodes not of the target type").
func TypeFilter(g *graph.Graph, t graph.Type, exclude ...graph.NodeID) func(graph.NodeID) bool {
	ex := make(map[graph.NodeID]bool, len(exclude))
	for _, v := range exclude {
		ex[v] = true
	}
	return func(v graph.NodeID) bool {
		return g.Type(v) == t && !ex[v]
	}
}

// EnumerateRoundTrips computes, for every target node v, the exact probability
// that a round trip of constant length L + Lp starting and ending at q has v
// as its target (the numerator of Eq. 4). It materializes dense transition
// matrix powers and is intended for small validation graphs only (Fig. 4 uses
// L = Lp = 2 on the toy network of Fig. 2). The context is checked between
// matrix-power steps.
func EnumerateRoundTrips(ctx context.Context, view graph.View, q graph.NodeID, L, Lp int) ([]float64, error) {
	ctx = walk.OrBackground(ctx)
	n := view.NumNodes()
	if int(q) < 0 || int(q) >= n {
		return nil, fmt.Errorf("core: query node %d out of range", q)
	}
	if L < 0 || Lp < 0 {
		return nil, fmt.Errorf("core: walk lengths must be non-negative")
	}
	if n > 4096 {
		return nil, fmt.Errorf("core: EnumerateRoundTrips is restricted to small graphs (%d nodes)", n)
	}
	m := denseTransition(view)
	fromQ := unitRow(n, int(q)) // distribution after k steps starting at q
	for i := 0; i < L; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fromQ = mulRow(fromQ, m)
	}
	// For the return leg we need, for each v, the probability that Lp steps
	// from v end at q: column q of M^Lp, computed as a row of the transpose.
	toQ := unitRow(n, int(q))
	mt := transpose(m)
	for i := 0; i < Lp; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		toQ = mulRow(toQ, mt)
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = fromQ[v] * toQ[v]
	}
	return out, nil
}

func denseTransition(view graph.View) [][]float64 {
	n := view.NumNodes()
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		sum := view.OutWeightSum(graph.NodeID(i))
		if sum <= 0 {
			continue
		}
		view.EachOut(graph.NodeID(i), func(to graph.NodeID, w float64) bool {
			m[i][to] += w / sum
			return true
		})
	}
	return m
}

func transpose(m [][]float64) [][]float64 {
	n := len(m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

func unitRow(n, i int) []float64 {
	r := make([]float64, n)
	r[i] = 1
	return r
}

func mulRow(row []float64, m [][]float64) []float64 {
	n := len(row)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if row[i] == 0 {
			continue
		}
		mi := m[i]
		for j := 0; j < n; j++ {
			if mi[j] != 0 {
				out[j] += row[i] * mi[j]
			}
		}
	}
	return out
}

// SpecificityBiasFromSurfers converts a hybrid-surfer composition
// (|Ω11|, |Ω10|, |Ω01|) into the equivalent specificity bias β of Eq. 11–12:
// β = (|Ω11| + |Ω01|) / (|Ω| + |Ω11|). It errors when no surfers are given.
func SpecificityBiasFromSurfers(balanced, importanceOnly, specificityOnly int) (float64, error) {
	if balanced < 0 || importanceOnly < 0 || specificityOnly < 0 {
		return 0, fmt.Errorf("core: surfer counts must be non-negative")
	}
	total := balanced + importanceOnly + specificityOnly
	if total == 0 {
		return 0, fmt.Errorf("core: at least one surfer is required")
	}
	return float64(balanced+specificityOnly) / float64(total+balanced), nil
}
