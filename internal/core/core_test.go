package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params should validate: %v", err)
	}
	bad := []Params{
		{Walk: walk.DefaultParams(), Beta: -0.1},
		{Walk: walk.DefaultParams(), Beta: 1.1},
		{Walk: walk.Params{Alpha: 0}, Beta: 0.5},
		{Walk: walk.Params{Alpha: 1}, Beta: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestFig4ToyRoundTripEnumeration(t *testing.T) {
	// Fig. 4 of the paper: constant walk lengths L = L' = 2, query t1.
	// Expected unnormalized probabilities: v1 = 0.05, v2 = 0.1, v3 = 0.05,
	// t1 itself = 0.25, all other nodes' venues zero as listed.
	toy := testgraphs.NewToy()
	probs, err := EnumerateRoundTrips(context.Background(), toy.Graph, toy.T1, 2, 2)
	if err != nil {
		t.Fatalf("EnumerateRoundTrips: %v", err)
	}
	cases := []struct {
		name string
		node graph.NodeID
		want float64
	}{
		{"v1", toy.V1, 0.05},
		{"v2", toy.V2, 0.10},
		{"v3", toy.V3, 0.05},
		{"t1", toy.T1, 0.25},
		{"t2", toy.T2, 0.0},
	}
	for _, c := range cases {
		if math.Abs(probs[c.node]-c.want) > 1e-12 {
			t.Errorf("round-trip probability of %s = %.6f, want %.6f", c.name, probs[c.node], c.want)
		}
	}
	// Papers p1..p4 cannot be the target of a (2,2) round trip from t1 since
	// they sit at odd distance from t1.
	for i := 0; i < 4; i++ {
		if probs[toy.P[i]] != 0 {
			t.Errorf("paper p%d should have zero probability, got %g", i+1, probs[toy.P[i]])
		}
	}
	// Total probability of completing any round trip from t1 in 4 steps.
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if total <= 0 || total > 1 {
		t.Errorf("total round-trip probability %g out of range", total)
	}
}

func TestEnumerateRoundTripsErrors(t *testing.T) {
	toy := testgraphs.NewToy()
	if _, err := EnumerateRoundTrips(context.Background(), toy.Graph, -1, 2, 2); err == nil {
		t.Errorf("negative query node should error")
	}
	if _, err := EnumerateRoundTrips(context.Background(), toy.Graph, toy.T1, -1, 2); err == nil {
		t.Errorf("negative L should error")
	}
}

func TestComputeAndDegenerateCases(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	wp := walk.Params{Alpha: 0.25, Tol: 1e-12, MaxIter: 500}

	s, err := Compute(context.Background(), toy.Graph, q, Params{Walk: wp, Beta: 0.5})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// Paper's headline claim on the toy graph: v2 is both important and
	// specific, so it beats v1 (important only) and v3 (specific only).
	if !(s.R[toy.V2] > s.R[toy.V1]) || !(s.R[toy.V2] > s.R[toy.V3]) {
		t.Errorf("RoundTripRank should favor v2: r(v1)=%g r(v2)=%g r(v3)=%g",
			s.R[toy.V1], s.R[toy.V2], s.R[toy.V3])
	}

	// β = 0 reduces to F-Rank, β = 1 to T-Rank (Sect. IV-B special cases).
	r0, err := RoundTripRankPlus(context.Background(), toy.Graph, q, wp, 0)
	if err != nil {
		t.Fatalf("RoundTripRankPlus(context.Background(), 0): %v", err)
	}
	r1, err := RoundTripRankPlus(context.Background(), toy.Graph, q, wp, 1)
	if err != nil {
		t.Fatalf("RoundTripRankPlus(context.Background(), 1): %v", err)
	}
	for v := range r0 {
		if math.Abs(r0[v]-s.F[v]) > 1e-12 {
			t.Errorf("beta=0 should equal F-Rank at node %d", v)
		}
		if math.Abs(r1[v]-s.T[v]) > 1e-12 {
			t.Errorf("beta=1 should equal T-Rank at node %d", v)
		}
	}
	// β = 0.5 equals RoundTripRank (rank equivalent to f·t): compare via
	// explicit formula sqrt(f·t).
	rHalf, err := RoundTripRank(context.Background(), toy.Graph, q, wp)
	if err != nil {
		t.Fatalf("RoundTripRank: %v", err)
	}
	for v := range rHalf {
		want := math.Sqrt(s.F[v] * s.T[v])
		if math.Abs(rHalf[v]-want) > 1e-12 {
			t.Errorf("beta=0.5 combine mismatch at %d: %g vs %g", v, rHalf[v], want)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	if _, err := Compute(context.Background(), toy.Graph, walk.SingleNode(toy.T1), Params{Walk: walk.DefaultParams(), Beta: 2}); err == nil {
		t.Errorf("invalid beta should error")
	}
	if _, err := Compute(context.Background(), toy.Graph, walk.Query{}, DefaultParams()); err == nil {
		t.Errorf("empty query should error")
	}
}

func TestCombineZeroHandling(t *testing.T) {
	f := []float64{0.5, 0, 0.1}
	tr := []float64{0.2, 0.3, 0}
	r := Combine(f, tr, 0.5)
	if r[1] != 0 || r[2] != 0 {
		t.Errorf("zero f or t should give zero combined score: %v", r)
	}
	if math.Abs(r[0]-math.Sqrt(0.1)) > 1e-12 {
		t.Errorf("combined score wrong: %g", r[0])
	}
}

func TestRankTopNAndTypeFilter(t *testing.T) {
	toy := testgraphs.NewToy()
	scores := make([]float64, toy.Graph.NumNodes())
	scores[toy.V1] = 0.3
	scores[toy.V2] = 0.7
	scores[toy.V3] = 0.3
	scores[toy.T1] = 0.9

	keepVenues := TypeFilter(toy.Graph, testgraphs.TypeVenue, toy.T1)
	ranked := Rank(scores, keepVenues)
	if len(ranked) != 3 {
		t.Fatalf("venue ranking has %d entries, want 3", len(ranked))
	}
	if ranked[0].Node != toy.V2 {
		t.Errorf("top venue should be v2, got %d", ranked[0].Node)
	}
	// Tie between v1 and v3 broken by node ID.
	if ranked[1].Node != toy.V1 || ranked[2].Node != toy.V3 {
		t.Errorf("tie-break order wrong: %v", ranked)
	}
	top := TopN(scores, 2, keepVenues)
	if len(top) != 2 || top[0].Node != toy.V2 {
		t.Errorf("TopN wrong: %v", top)
	}
	all := Rank(scores, nil)
	if len(all) != toy.Graph.NumNodes() {
		t.Errorf("nil filter should keep all nodes")
	}
	if all[0].Node != toy.T1 {
		t.Errorf("global top should be t1")
	}
}

func TestSpecificityBiasFromSurfers(t *testing.T) {
	cases := []struct {
		b, i, s int
		want    float64
	}{
		{1, 0, 0, 0.5}, // Ω = Ω11 → RoundTripRank
		{0, 7, 0, 0},   // Ω = Ω10 → F-Rank
		{0, 0, 3, 1},   // Ω = Ω01 → T-Rank
		{2, 2, 0, 1.0 / 3},
		{1, 1, 2, 0.6},
	}
	for _, c := range cases {
		got, err := SpecificityBiasFromSurfers(c.b, c.i, c.s)
		if err != nil {
			t.Fatalf("SpecificityBiasFromSurfers(%d,%d,%d): %v", c.b, c.i, c.s, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("beta(%d,%d,%d) = %g, want %g", c.b, c.i, c.s, got, c.want)
		}
	}
	if _, err := SpecificityBiasFromSurfers(0, 0, 0); err == nil {
		t.Errorf("no surfers should error")
	}
	if _, err := SpecificityBiasFromSurfers(-1, 0, 1); err == nil {
		t.Errorf("negative surfer count should error")
	}
}

// Property: Combine is monotone in both arguments for any beta in (0,1): if a
// node dominates another in both f and t, it cannot rank lower.
func TestQuickCombineMonotone(t *testing.T) {
	f := func(seed int64, betaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		beta := float64(betaRaw%101) / 100.0
		f1, t1 := rng.Float64(), rng.Float64()
		f2, t2 := f1*rng.Float64(), t1*rng.Float64() // dominated pair
		r := Combine([]float64{f1, f2}, []float64{t1, t2}, beta)
		return r[0] >= r[1]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the ranking induced by RoundTripRank (β = 0.5) is identical to the
// ranking induced by the raw product f·t (rank equivalence of the normalized
// exponents in Eq. 11).
func TestQuickRankEquivalenceOfNormalization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		fs := make([]float64, n)
		ts := make([]float64, n)
		for i := range fs {
			fs[i] = rng.Float64()
			ts[i] = rng.Float64()
		}
		byProduct := Rank(Combine(fs, ts, 0.5), nil)
		prod := make([]float64, n)
		for i := range prod {
			prod[i] = fs[i] * ts[i]
		}
		byRaw := Rank(prod, nil)
		for i := range byProduct {
			if byProduct[i].Node != byRaw[i].Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: on random strongly connected graphs (cycles plus chords), the
// round-trip enumeration with constant lengths equals the product of the
// forward and backward constant-length reachabilities — the constant-length
// analogue of Proposition 2.
func TestQuickEnumerationMatchesDecomposition(t *testing.T) {
	f := func(seed int64, lRaw, lpRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('A'+i)))
		}
		for i := 0; i < n; i++ {
			b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.5+rng.Float64())
		}
		g := b.MustBuild()
		q := ids[rng.Intn(n)]
		L := int(lRaw % 4)
		Lp := int(lpRaw % 4)
		probs, err := EnumerateRoundTrips(context.Background(), g, q, L, Lp)
		if err != nil {
			return false
		}
		// Independent check via two separate enumerations against the same
		// node: forward distribution after L steps times probability of
		// returning in Lp steps, computed by brute-force path expansion.
		fwd := bruteForceDistribution(g, q, L)
		for v := 0; v < n; v++ {
			back := bruteForceReturn(g, graph.NodeID(v), q, Lp)
			want := fwd[v] * back
			if math.Abs(probs[v]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// bruteForceDistribution expands all walks of exactly L steps from q and
// accumulates endpoint probabilities.
func bruteForceDistribution(g *graph.Graph, q graph.NodeID, L int) []float64 {
	cur := make([]float64, g.NumNodes())
	cur[q] = 1
	for step := 0; step < L; step++ {
		next := make([]float64, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			if cur[v] == 0 {
				continue
			}
			sum := g.OutWeightSum(graph.NodeID(v))
			if sum <= 0 {
				continue
			}
			g.EachOut(graph.NodeID(v), func(to graph.NodeID, w float64) bool {
				next[to] += cur[v] * w / sum
				return true
			})
		}
		cur = next
	}
	return cur
}

// bruteForceReturn computes the probability that a walk of exactly L steps
// from v ends at q.
func bruteForceReturn(g *graph.Graph, v, q graph.NodeID, L int) float64 {
	dist := bruteForceDistribution(g, v, L)
	return dist[q]
}
