package chaos

import (
	"context"
	"testing"
	"time"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

func buildStripe(t *testing.T, g *graph.Graph, index, count int) *distributed.Stripe {
	t.Helper()
	s, err := distributed.BuildStripe(g, index, count)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	return s
}

// TestScheduleDeterminism pins the replay property: two schedules with the
// same seed make identical decisions for identical call sequences, and a
// different seed actually changes the schedule.
func TestScheduleDeterminism(t *testing.T) {
	const calls = 2000
	run := func(seed uint64) []decision {
		s := NewSchedule(Config{Seed: seed, FailRate: 0.2, SlowRate: 0.2})
		out := make([]decision, 0, calls)
		for i := 0; i < calls; i++ {
			out = append(out, s.decide("w1", "multiply"))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %+v != %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := 0
	fails := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
		if a[i].fail {
			fails++
		}
	}
	if same == calls {
		t.Errorf("different seeds produced an identical schedule")
	}
	// FailRate 0.2 over 2000 draws: expect ~400; anything wildly off means
	// the hash isn't uniform.
	if fails < 200 || fails > 600 {
		t.Errorf("FailRate 0.2 produced %d/%d failures", fails, calls)
	}

	// Per-target independence: a second target's sequence does not disturb
	// the first's.
	s1 := NewSchedule(Config{Seed: 7, FailRate: 0.2, SlowRate: 0.2})
	s2 := NewSchedule(Config{Seed: 7, FailRate: 0.2, SlowRate: 0.2})
	var interleaved []decision
	for i := 0; i < calls; i++ {
		s1.decide("w2", "multiply") // extra traffic on another target
		interleaved = append(interleaved, s1.decide("w1", "multiply"))
		_ = s2.decide("w9", "rows")
	}
	for i := range a {
		if a[i] != interleaved[i] {
			t.Fatalf("cross-target traffic perturbed w1's schedule at call %d", i)
		}
	}
}

func TestTransportInjectsTransientFaults(t *testing.T) {
	g := testgraphs.Cycle(12)
	s := buildStripe(t, g, 0, 2)
	inner := distributed.NewLoopbackAt(distributed.NewWorker(s), 0)
	tr := NewSchedule(Config{Seed: 1, FailRate: 1}).Wrap(inner, "w1")
	ctx := context.Background()

	if _, err := tr.Info(ctx); err == nil {
		t.Fatalf("FailRate=1 let a call through")
	} else if !distributed.IsTransient(err) {
		t.Fatalf("injected fault is not transient: %v", err)
	}
	fails, _ := tr.InjectedFaults()
	if fails == 0 {
		t.Errorf("fault counter did not move")
	}

	// FailRate=0: calls pass through untouched and answer correctly.
	clean := NewSchedule(Config{Seed: 1}).Wrap(inner, "w1")
	info, err := clean.Info(ctx)
	if err != nil {
		t.Fatalf("clean Info: %v", err)
	}
	if info.Index != 0 || info.Count != 2 {
		t.Errorf("clean Info = %+v", info)
	}
}

func TestTransportKillReviveAndKillAfter(t *testing.T) {
	g := testgraphs.Cycle(12)
	s := buildStripe(t, g, 0, 2)
	inner := distributed.NewLoopbackAt(distributed.NewWorker(s), 0)
	tr := NewSchedule(Config{Seed: 1}).Wrap(inner, "w1")
	ctx := context.Background()

	tr.Kill()
	if _, err := tr.Info(ctx); err == nil || !distributed.IsTransient(err) {
		t.Fatalf("killed transport answered (err=%v)", err)
	}
	tr.Revive()
	if _, err := tr.Info(ctx); err != nil {
		t.Fatalf("revived transport still down: %v", err)
	}

	// KillAfter(2): exactly two more calls succeed, then the process "dies".
	tr.KillAfter(2)
	for i := 0; i < 2; i++ {
		if _, err := tr.Info(ctx); err != nil {
			t.Fatalf("call %d before the armed kill failed: %v", i, err)
		}
	}
	if _, err := tr.Info(ctx); err == nil || !distributed.IsTransient(err) {
		t.Fatalf("armed kill did not fire (err=%v)", err)
	}
	if !tr.Down() {
		t.Errorf("transport not down after armed kill")
	}
	tr.Revive()
	if _, err := tr.Info(ctx); err != nil {
		t.Fatalf("revive after armed kill: %v", err)
	}

	tr.Partition()
	if _, err := tr.OutSums(ctx); err == nil || !distributed.IsTransient(err) {
		t.Fatalf("partitioned transport answered (err=%v)", err)
	}
	tr.Heal()
	if _, err := tr.OutSums(ctx); err != nil {
		t.Fatalf("healed transport still down: %v", err)
	}
}

// TestTransportUnderReplicaSet is the integration the harness exists for: a
// replica group where chaos kills the preferred member fails over and keeps
// answering bit-identically.
func TestTransportUnderReplicaSet(t *testing.T) {
	g := testgraphs.Cycle(12)
	s := buildStripe(t, g, 0, 2)
	sched := NewSchedule(Config{Seed: 3})
	a := sched.Wrap(distributed.NewLoopbackAt(distributed.NewWorker(s), 0), "a")
	b := sched.Wrap(distributed.NewLoopbackAt(distributed.NewWorker(s), 0), "b")
	rs := distributed.NewReplicaSet(0, []distributed.Transport{a, b}, 0)
	ctx := context.Background()

	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = 1
	}
	want, err := rs.Multiply(ctx, distributed.DirIn, s.GraphFingerprint(), x)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	a.Kill()
	got, err := rs.Multiply(ctx, distributed.DirIn, s.GraphFingerprint(), x)
	if err != nil {
		t.Fatalf("Multiply with preferred replica killed: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("failover changed the answer at row %d: %g != %g", i, got[i], want[i])
		}
	}
	if rs.Failovers() == 0 {
		t.Errorf("failover counter did not move")
	}
}

func TestHTTPWorkerKillRestart(t *testing.T) {
	g := testgraphs.Cycle(12)
	s := buildStripe(t, g, 0, 1)
	hw, err := StartHTTPWorker(distributed.NewWorker(s))
	if err != nil {
		t.Fatalf("StartHTTPWorker: %v", err)
	}
	t.Cleanup(hw.Close)
	tr := distributed.NewHTTPTransport(hw.URL(), nil)
	defer tr.Close()
	ctx := context.Background()

	info, err := tr.Info(ctx)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Index != 0 || info.Count != 1 {
		t.Fatalf("Info = %+v", info)
	}

	hw.Kill()
	if _, err := tr.Info(ctx); err == nil {
		t.Fatalf("Info against a killed worker succeeded")
	} else if !distributed.IsTransient(err) {
		t.Fatalf("killed-worker error is not transient: %v", err)
	}

	// Restart on the same address: the same transport (same URL) reconnects
	// and the stripe state survived the "process" death.
	var restartErr error
	for attempt := 0; attempt < 20; attempt++ {
		if restartErr = hw.Restart(); restartErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if restartErr != nil {
		t.Skipf("port was taken during restart: %v", restartErr)
	}
	again, err := tr.Info(ctx)
	if err != nil {
		t.Fatalf("Info after restart: %v", err)
	}
	if again != info {
		t.Fatalf("restarted worker serves a different identity: %+v != %+v", again, info)
	}
	if err := hw.Restart(); err == nil {
		t.Errorf("double Restart succeeded")
	}
}
