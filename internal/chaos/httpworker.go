package chaos

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"roundtriprank/internal/distributed"
)

// HTTPWorker is a worker HTTP server that tests can kill and restart on the
// same address — the process-level analogue of Transport.Kill. httptest
// servers cannot do this (a closed httptest server never re-binds its port),
// so HTTPWorker manages its own listener: Kill closes it abruptly, dropping
// in-flight connections the way a SIGKILL would, and Restart re-listens on
// the recorded address so coordinator-side transports dialing the old URL
// find the worker again.
//
// The wrapped *distributed.Worker outlives kills: a Restart serves the same
// in-memory stripes, modelling a process whose state survives (e.g. a worker
// restarted from a local stripe cache). To model a wiped restart, call
// Worker().RemoveStripe before Restart.
type HTTPWorker struct {
	worker *distributed.Worker

	mu   sync.Mutex
	addr string
	srv  *http.Server
	done chan struct{}
}

// StartHTTPWorker serves w on a fresh loopback port.
func StartHTTPWorker(w *distributed.Worker) (*HTTPWorker, error) {
	hw := &HTTPWorker{worker: w}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	hw.addr = lis.Addr().String()
	hw.serve(lis)
	return hw, nil
}

// serve starts the HTTP server on lis. Caller holds no locks; the server and
// done channel are published under hw.mu.
func (hw *HTTPWorker) serve(lis net.Listener) {
	srv := &http.Server{Handler: hw.worker.Handler()}
	done := make(chan struct{})
	hw.mu.Lock()
	hw.srv, hw.done = srv, done
	hw.mu.Unlock()
	go func() {
		defer close(done)
		// ErrServerClosed (and the listener-closed error on Kill) are the
		// expected shutdown paths; nothing to report.
		_ = srv.Serve(lis)
	}()
}

// URL returns the worker's base URL. Stable across Kill/Restart.
func (hw *HTTPWorker) URL() string {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return "http://" + hw.addr
}

// Worker returns the wrapped worker, whose stripe state persists across
// Kill/Restart.
func (hw *HTTPWorker) Worker() *distributed.Worker { return hw.worker }

// Kill stops the server abruptly: the listener and all open connections are
// closed without draining, so in-flight RPCs fail at the coordinator with
// transport errors — which classify transient and trigger failover. Safe to
// call twice.
func (hw *HTTPWorker) Kill() {
	hw.mu.Lock()
	srv, done := hw.srv, hw.done
	hw.srv, hw.done = nil, nil
	hw.mu.Unlock()
	if srv == nil {
		return
	}
	_ = srv.Close()
	<-done
}

// Restart re-listens on the worker's original address and serves again. It
// fails if the port was taken in the interim (rare on loopback, but possible
// in a busy test machine — callers should treat it as a skip-worthy flake,
// not a bug).
func (hw *HTTPWorker) Restart() error {
	hw.mu.Lock()
	if hw.srv != nil {
		hw.mu.Unlock()
		return fmt.Errorf("chaos: worker at %s is already running", hw.addr)
	}
	addr := hw.addr
	hw.mu.Unlock()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("chaos: re-listen %s: %w", addr, err)
	}
	hw.serve(lis)
	return nil
}

// Close shuts the worker down for good.
func (hw *HTTPWorker) Close() { hw.Kill() }
