// Package chaos is the fault-injection harness behind the distributed
// subsystem's resilience guarantees. It wraps worker transports with
// seed-deterministic fault schedules (transient failures, slow calls,
// partitions, mid-query kills) and runs restartable HTTP workers whose
// process-level death and rebirth tests can drive — so the chaos parity
// suite can assert that Distributed and TwoSBoundRemote results stay
// bit-identical to local under churn, and the chaos benchmark can measure
// recovery time with reproducible schedules.
//
// Determinism discipline: every injected decision is a pure function of
// (seed, target, op, per-target-op sequence number). There is no shared RNG
// stream, so concurrent calls cannot reorder each other's decisions — the
// multiset of faults a schedule injects over N calls is identical run to
// run, which is what lets CI replay a chaos schedule and get the same
// answer.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// Config tunes a Schedule's per-call fault rates. Rates are probabilities in
// [0, 1) evaluated independently per call from the deterministic hash.
type Config struct {
	// Seed selects the schedule; same seed, same faults.
	Seed uint64
	// FailRate is the probability a call fails with a transient error
	// before reaching the worker.
	FailRate float64
	// SlowRate is the probability a call is delayed by SlowBy first.
	SlowRate float64
	// SlowBy is the injected delay for slow calls (default 2ms).
	SlowBy time.Duration
}

// Schedule derives deterministic fault decisions for any number of wrapped
// transports. Safe for concurrent use.
type Schedule struct {
	cfg Config

	mu  sync.Mutex
	seq map[string]*atomic.Uint64
}

// NewSchedule returns a Schedule for the given config.
func NewSchedule(cfg Config) *Schedule {
	if cfg.SlowBy <= 0 {
		cfg.SlowBy = 2 * time.Millisecond
	}
	return &Schedule{cfg: cfg, seq: make(map[string]*atomic.Uint64)}
}

// next returns the sequence number of this (target, op) call.
func (s *Schedule) next(key string) uint64 {
	s.mu.Lock()
	c := s.seq[key]
	if c == nil {
		c = new(atomic.Uint64)
		s.seq[key] = c
	}
	s.mu.Unlock()
	return c.Add(1) - 1
}

// roll hashes (seed, target, op, seq) to a uniform value in [0, 1).
func (s *Schedule) roll(target, op string, seq uint64) float64 {
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(s.cfg.Seed >> (8 * i))
		b[8+i] = byte(seq >> (8 * i))
	}
	_, _ = h.Write(b[:8])
	_, _ = h.Write([]byte(target))
	_, _ = h.Write([]byte(op))
	_, _ = h.Write(b[8:])
	// splitmix64 finalizer: FNV's low bits are not uniform enough alone.
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// decision is one call's injected fate.
type decision struct {
	fail bool
	slow bool
}

// decide draws this call's fate. Two independent rolls so fail and slow
// rates compose without interacting.
func (s *Schedule) decide(target, op string) decision {
	seq := s.next(target + "\x00" + op)
	return decision{
		fail: s.cfg.FailRate > 0 && s.roll(target, op+"#fail", seq) < s.cfg.FailRate,
		slow: s.cfg.SlowRate > 0 && s.roll(target, op+"#slow", seq) < s.cfg.SlowRate,
	}
}

// Transport wraps a worker transport with the schedule's faults plus
// test-driven kill/partition state. It implements every coordinator-side
// interface the inner transport does (multiply, rows, stripe deploys), so it
// can stand between a ReplicaSet (or coordinator) and any real transport.
type Transport struct {
	inner  distributed.Transport
	target string
	sched  *Schedule

	// killed: every call fails transiently, as if the process died.
	killed atomic.Bool
	// killAfter, when armed (>= 0), counts calls down to a kill — the
	// deterministic "die mid-query" trigger. Negative = disarmed.
	killAfter atomic.Int64
	// partitioned: like killed, but named for network-level splits.
	partitioned atomic.Bool

	injectedFails atomic.Int64
	injectedSlows atomic.Int64
}

// Wrap returns a chaos transport over inner. target names the wrapped worker
// in the schedule's hash domain: same seed + same target = same faults.
func (s *Schedule) Wrap(inner distributed.Transport, target string) *Transport {
	t := &Transport{inner: inner, target: target, sched: s}
	t.killAfter.Store(-1)
	return t
}

// Kill makes every subsequent call fail transiently until Revive.
func (t *Transport) Kill() { t.killed.Store(true) }

// Revive undoes Kill (and any armed KillAfter).
func (t *Transport) Revive() {
	t.killed.Store(false)
	t.partitioned.Store(false)
	t.killAfter.Store(-1)
}

// KillAfter arms a countdown: the next n calls succeed (modulo scheduled
// faults), then the transport dies as if the process was SIGKILLed between
// RPCs. KillAfter(0) kills on the very next call.
func (t *Transport) KillAfter(n int) { t.killAfter.Store(int64(n)) }

// Partition makes every call fail transiently until Heal — semantically a
// network split rather than a dead process (the worker keeps its state).
func (t *Transport) Partition() { t.partitioned.Store(true) }

// Heal undoes Partition.
func (t *Transport) Heal() { t.partitioned.Store(false) }

// Down reports whether the transport is currently killed or partitioned.
func (t *Transport) Down() bool { return t.killed.Load() || t.partitioned.Load() }

// InjectedFaults returns how many calls the harness failed or slowed.
func (t *Transport) InjectedFaults() (fails, slows int64) {
	return t.injectedFails.Load(), t.injectedSlows.Load()
}

// gate runs the fault decision for one call; a nil return lets the call
// through to the inner transport.
func (t *Transport) gate(ctx context.Context, op string) error {
	if n := t.killAfter.Load(); n >= 0 {
		if t.killAfter.Add(-1) < 0 {
			t.killed.Store(true)
		}
	}
	if t.Down() {
		t.injectedFails.Add(1)
		return &distributed.TransientError{Err: fmt.Errorf("chaos: %s is down", t.target)}
	}
	d := t.sched.decide(t.target, op)
	if d.slow {
		t.injectedSlows.Add(1)
		select {
		case <-time.After(t.sched.cfg.SlowBy):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if d.fail {
		t.injectedFails.Add(1)
		return &distributed.TransientError{Err: fmt.Errorf("chaos: injected failure on %s %s", t.target, op)}
	}
	return nil
}

// Info implements distributed.Transport.
func (t *Transport) Info(ctx context.Context) (distributed.WorkerInfo, error) {
	if err := t.gate(ctx, "info"); err != nil {
		return distributed.WorkerInfo{}, err
	}
	return t.inner.Info(ctx)
}

// OutSums implements distributed.Transport.
func (t *Transport) OutSums(ctx context.Context) ([]float64, error) {
	if err := t.gate(ctx, "outsums"); err != nil {
		return nil, err
	}
	return t.inner.OutSums(ctx)
}

// Multiply implements distributed.Transport.
func (t *Transport) Multiply(ctx context.Context, dir distributed.Direction, graphSum uint32, x []float64) ([]float64, error) {
	if err := t.gate(ctx, "multiply"); err != nil {
		return nil, err
	}
	return t.inner.Multiply(ctx, dir, graphSum, x)
}

// FetchRows implements distributed.RowFetcher.
func (t *Transport) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (distributed.RowBatch, error) {
	if err := t.gate(ctx, "rows"); err != nil {
		return distributed.RowBatch{}, err
	}
	f, ok := t.inner.(distributed.RowFetcher)
	if !ok {
		return distributed.RowBatch{}, fmt.Errorf("chaos: inner transport %T serves no rows", t.inner)
	}
	return f.FetchRows(ctx, graphSum, nodes)
}

// OutDegrees implements distributed.RowFetcher.
func (t *Transport) OutDegrees(ctx context.Context) ([]int32, error) {
	if err := t.gate(ctx, "outdegs"); err != nil {
		return nil, err
	}
	f, ok := t.inner.(distributed.RowFetcher)
	if !ok {
		return nil, fmt.Errorf("chaos: inner transport %T serves no rows", t.inner)
	}
	return f.OutDegrees(ctx)
}

// SendStripe implements distributed.StripeSender. Deploy RPCs pass the gate
// too: reconciliation against a dead member must fail like any other call.
func (t *Transport) SendStripe(ctx context.Context, s *distributed.Stripe) error {
	if err := t.gate(ctx, "sendstripe"); err != nil {
		return err
	}
	sender, ok := t.inner.(distributed.StripeSender)
	if !ok {
		return fmt.Errorf("chaos: inner transport %T cannot receive stripes", t.inner)
	}
	return sender.SendStripe(ctx, s)
}

// RetagStripe implements distributed.StripeRetagger.
func (t *Transport) RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error {
	if err := t.gate(ctx, "retag"); err != nil {
		return err
	}
	rt, ok := t.inner.(distributed.StripeRetagger)
	if !ok {
		return fmt.Errorf("chaos: inner transport %T cannot retag", t.inner)
	}
	return rt.RetagStripe(ctx, graphSum, epoch, content)
}

// RemoveStripe implements distributed.StripeRemover.
func (t *Transport) RemoveStripe(ctx context.Context) error {
	if err := t.gate(ctx, "removestripe"); err != nil {
		return err
	}
	rem, ok := t.inner.(distributed.StripeRemover)
	if !ok {
		return fmt.Errorf("chaos: inner transport %T cannot remove stripes", t.inner)
	}
	return rem.RemoveStripe(ctx)
}

// Close implements distributed.Transport.
func (t *Transport) Close() error { return t.inner.Close() }
