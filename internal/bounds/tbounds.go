package bounds

import (
	"fmt"
	"math"
	"sort"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// TOptions configures a TBounds computation.
type TOptions struct {
	// Alpha is the teleport probability.
	Alpha float64
	// M is the number of border nodes whose in-neighborhoods are pulled into
	// the t-neighborhood per expansion (default DefaultTExpansion).
	M int
	// StageII enables the iterative refinement of Eq. 17–18 over the
	// t-neighborhood (true for 2SBound). When false, seen-node bounds are
	// updated with a single local application of the recursion at expansion
	// time only.
	StageII bool
	// TightenUnseenInRefine re-applies the Eq. 22 unseen bound after every
	// refinement sweep (true for 2SBound). The Sarkar-style baseline scheme
	// disables it, so the unseen bound is only updated at expansion time,
	// which is strictly looser and forces more expansions.
	TightenUnseenInRefine bool
	// RefineTol and RefineMaxIter control Stage II convergence.
	RefineTol     float64
	RefineMaxIter int
	// FrontierCap, when positive, bounds the number of nodes admitted into
	// St per expansion (the anytime budget's per-round frontier cap). Picked
	// border nodes whose in-neighborhoods are only partially admitted keep a
	// positive outside-in count, so they stay border nodes and the Eq. 22
	// unseen bound — computed over all border nodes — remains sound for every
	// deferred node; the cap trades rounds for bounded per-round cost.
	FrontierCap int
}

// DefaultTOptions returns the 2SBound configuration for the T-Rank side.
func DefaultTOptions(alpha float64) TOptions {
	return TOptions{
		Alpha:                 alpha,
		M:                     DefaultTExpansion,
		StageII:               true,
		TightenUnseenInRefine: true,
		RefineTol:             DefaultRefineTol,
		RefineMaxIter:         DefaultRefineMaxIter,
	}
}

func (o TOptions) normalized() TOptions {
	if o.M <= 0 {
		o.M = DefaultTExpansion
	}
	if o.RefineTol <= 0 {
		o.RefineTol = DefaultRefineTol
	}
	if o.RefineMaxIter <= 0 {
		o.RefineMaxIter = DefaultRefineMaxIter
	}
	return o
}

// TBounds maintains lower/upper bounds on T-Rank over the t-neighborhood St
// plus the unseen upper bound of Eq. 22. St grows by pulling in all
// in-neighbors of the border nodes with the largest upper bounds, which makes
// those nodes interior and therefore lowers the unseen bound.
type TBounds struct {
	view    graph.View
	opt     TOptions
	restart map[graph.NodeID]float64

	lower map[graph.NodeID]float64
	upper map[graph.NodeID]float64
	// outsideIn counts, for every node in St, how many of its in-neighbors are
	// still outside St; a node is a border node iff its count is positive.
	outsideIn map[graph.NodeID]int
	// order lists St in insertion order (query nodes first, then newcomers in
	// admission order) — the same order the flat tracker's touched list holds.
	// Border picking iterates it instead of the outsideIn map so that
	// upper-bound ties (all same-round newcomers share upper = prevUnseen)
	// break identically on both trackers; without it, map iteration order
	// would decide budget-capped (mid-search) results nondeterministically.
	order  []graph.NodeID
	unseen float64

	expansions int
}

// NewTBounds starts a T-Rank bounds computation for the query. The initial
// t-neighborhood contains exactly the query nodes with lower bound α·w(q_i)
// and upper bound 1; the initial unseen upper bound is 1−α (Stage I of the
// T-Rank realization).
func NewTBounds(view graph.View, q walk.Query, opt TOptions) (*TBounds, error) {
	opt = opt.normalized()
	if opt.Alpha <= 0 || opt.Alpha >= 1 {
		return nil, fmt.Errorf("bounds: alpha must be in (0,1), got %g", opt.Alpha)
	}
	nq, err := q.Normalize()
	if err != nil {
		return nil, fmt.Errorf("bounds: %w", err)
	}
	tb := &TBounds{
		view:      view,
		opt:       opt,
		restart:   make(map[graph.NodeID]float64, len(nq.Nodes)),
		lower:     make(map[graph.NodeID]float64),
		upper:     make(map[graph.NodeID]float64),
		outsideIn: make(map[graph.NodeID]int),
		unseen:    1 - opt.Alpha,
	}
	for i, v := range nq.Nodes {
		if int(v) < 0 || int(v) >= view.NumNodes() {
			return nil, fmt.Errorf("bounds: query node %d out of range", v)
		}
		if _, ok := tb.restart[v]; !ok {
			tb.order = append(tb.order, v)
		}
		tb.restart[v] += nq.Weights[i]
	}
	// Bounds first, border counts second: countOutsideIn must see the full
	// initial neighborhood, or a query node processed before an adjacent
	// query node would count it as outside — permanently, since query nodes
	// never re-join St — leaving a phantom border node whose (dis)appearance
	// depended on map iteration order. The flat tracker (TFlat.Init) does
	// the same two passes.
	for _, v := range tb.order {
		tb.lower[v] = opt.Alpha * tb.restart[v]
		tb.upper[v] = 1
	}
	for _, v := range tb.order {
		tb.outsideIn[v] = tb.countOutsideIn(v)
	}
	tb.expansions = 1 // the paper counts the initial St = {q} as the first expansion
	tb.recomputeUnseen()
	return tb, nil
}

func (tb *TBounds) countOutsideIn(v graph.NodeID) int {
	count := 0
	tb.view.EachIn(v, func(from graph.NodeID, _ float64) bool {
		if _, ok := tb.lower[from]; !ok {
			count++
		}
		return true
	})
	return count
}

// Expansions returns the number of Stage-I expansions performed (including the
// initial singleton neighborhood).
func (tb *TBounds) Expansions() int { return tb.expansions }

// SeenCount returns |St|.
func (tb *TBounds) SeenCount() int { return len(tb.lower) }

// Seen reports whether v is in the t-neighborhood.
func (tb *TBounds) Seen(v graph.NodeID) bool {
	_, ok := tb.lower[v]
	return ok
}

// Lower returns the lower bound for a seen node (zero for unseen nodes).
func (tb *TBounds) Lower(v graph.NodeID) float64 { return tb.lower[v] }

// Upper returns the upper bound for v: its individual bound when seen, the
// unseen upper bound otherwise.
func (tb *TBounds) Upper(v graph.NodeID) float64 {
	if u, ok := tb.upper[v]; ok {
		return u
	}
	return tb.unseen
}

// UnseenUpper returns the common upper bound for unseen nodes (Eq. 22).
func (tb *TBounds) UnseenUpper() float64 { return tb.unseen }

// EachSeen calls fn for every node in the t-neighborhood with its bounds.
func (tb *TBounds) EachSeen(fn func(v graph.NodeID, lower, upper float64)) {
	for v, lo := range tb.lower {
		fn(v, lo, tb.upper[v])
	}
}

// BorderCount returns the number of border nodes of St.
func (tb *TBounds) BorderCount() int {
	n := 0
	for _, c := range tb.outsideIn {
		if c > 0 {
			n++
		}
	}
	return n
}

// Exhausted reports whether the t-neighborhood has no border nodes left, i.e.
// every node that can reach the query is already seen.
func (tb *TBounds) Exhausted() bool { return tb.BorderCount() == 0 }

// Expand performs one Stage-I step: pick up to M border nodes with the largest
// upper bounds, pull all of their in-neighbors into St (up to the frontier
// cap), initialize the bounds of the newcomers, recompute the unseen upper
// bound, and (when enabled) run the Stage-II refinement. It returns the number
// of new nodes added.
func (tb *TBounds) Expand() int {
	// Select the M border nodes with the largest upper bounds, iterating the
	// insertion-ordered seen list with the same kept-sorted pick the flat
	// tracker uses (ties keep earlier insertion) so both trackers expand the
	// identical frontier every round.
	m := tb.opt.M
	pickN := make([]graph.NodeID, 0, m+1)
	pickP := make([]float64, 0, m+1)
	for _, v := range tb.order {
		if tb.outsideIn[v] <= 0 {
			continue
		}
		up := tb.upper[v]
		if len(pickN) == m && up <= pickP[m-1] {
			continue
		}
		pickN = append(pickN, v)
		pickP = append(pickP, up)
		for i := len(pickN) - 1; i > 0 && pickP[i] > pickP[i-1]; i-- {
			pickN[i], pickN[i-1] = pickN[i-1], pickN[i]
			pickP[i], pickP[i-1] = pickP[i-1], pickP[i]
		}
		if len(pickN) > m {
			pickN = pickN[:m]
			pickP = pickP[:m]
		}
	}
	if len(pickN) == 0 {
		return 0
	}
	limit := tb.opt.FrontierCap
	added := 0
	prevUnseen := tb.unseen
	for _, u := range pickN {
		if limit > 0 && added >= limit {
			break
		}
		tb.view.EachIn(u, func(from graph.NodeID, _ float64) bool {
			if limit > 0 && added >= limit {
				return false
			}
			if _, ok := tb.lower[from]; !ok {
				// Newly included node: lower bound zero, upper bound is the
				// unseen upper bound from the previous expansion.
				tb.lower[from] = 0
				tb.upper[from] = prevUnseen
				tb.order = append(tb.order, from)
				tb.outsideIn[from] = tb.countOutsideIn(from)
				// Every seen out-neighbor of the newcomer loses one outside
				// in-neighbor. (The newcomer itself already counted its own
				// membership, so it is skipped.)
				tb.view.EachOut(from, func(to graph.NodeID, _ float64) bool {
					if to == from {
						return true
					}
					if _, seen := tb.lower[to]; seen {
						tb.outsideIn[to]--
					}
					return true
				})
				added++
			}
			return true
		})
	}
	tb.expansions++
	tb.recomputeUnseen()
	if tb.opt.StageII {
		tb.Refine()
	} else {
		tb.localUpdate()
		tb.recomputeUnseen()
	}
	return added
}

// recomputeUnseen applies Eq. 22, keeping the bound monotone non-increasing.
func (tb *TBounds) recomputeUnseen() {
	maxBorder := 0.0
	for v, c := range tb.outsideIn {
		if c > 0 && tb.upper[v] > maxBorder {
			maxBorder = tb.upper[v]
		}
	}
	candidate := (1 - tb.opt.Alpha) * maxBorder
	if candidate < tb.unseen {
		tb.unseen = candidate
	}
}

// localUpdate applies a single pass of the recursion to the seen nodes. It is
// the Sarkar-style (expansion-only) realization used when Stage II is
// disabled.
func (tb *TBounds) localUpdate() {
	seen := tb.sortedSeen()
	tb.applyRecursion(seen)
}

// Refine runs the Stage-II iterative refinement of Eq. 17–18 over the
// t-neighborhood, also re-tightening the unseen upper bound (Eq. 22) after
// every sweep, until convergence or the iteration cap.
func (tb *TBounds) Refine() {
	seen := tb.sortedSeen()
	for iter := 0; iter < tb.opt.RefineMaxIter; iter++ {
		maxChange := tb.applyRecursion(seen)
		if tb.opt.TightenUnseenInRefine {
			tb.recomputeUnseen()
		}
		if maxChange < tb.opt.RefineTol {
			return
		}
	}
}

func (tb *TBounds) sortedSeen() []graph.NodeID {
	seen := make([]graph.NodeID, 0, len(tb.lower))
	for v := range tb.lower {
		seen = append(seen, v)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	return seen
}

// applyRecursion performs one sweep of Eq. 17–18 (T-Rank form: out-neighbors,
// transition M[v][v']) over the given nodes and returns the largest bound
// change.
func (tb *TBounds) applyRecursion(seen []graph.NodeID) float64 {
	alpha := tb.opt.Alpha
	maxChange := 0.0
	for _, v := range seen {
		restart := tb.restart[v]
		outSum := tb.view.OutWeightSum(v)
		sumLo, sumUp := 0.0, 0.0
		if outSum > 0 {
			tb.view.EachOut(v, func(to graph.NodeID, w float64) bool {
				m := w / outSum
				if lo, ok := tb.lower[to]; ok {
					sumLo += m * lo
					sumUp += m * tb.upper[to]
				} else {
					sumUp += m * tb.unseen
				}
				return true
			})
		}
		newLo := alpha*restart + (1-alpha)*sumLo
		newUp := alpha*restart + (1-alpha)*sumUp
		if newLo > tb.lower[v] {
			if d := newLo - tb.lower[v]; d > maxChange {
				maxChange = d
			}
			tb.lower[v] = newLo
		}
		if newUp < tb.upper[v] {
			if d := tb.upper[v] - newUp; d > maxChange {
				maxChange = d
			}
			tb.upper[v] = newUp
		}
	}
	return maxChange
}

// CheckConsistent verifies lower <= upper for every seen node and sane unseen
// bounds. Used by tests.
func (tb *TBounds) CheckConsistent() error {
	if tb.unseen < 0 || math.IsNaN(tb.unseen) || math.IsInf(tb.unseen, 0) {
		return fmt.Errorf("bounds: invalid unseen upper bound %g", tb.unseen)
	}
	for v, lo := range tb.lower {
		up := tb.upper[v]
		if lo > up+1e-12 {
			return fmt.Errorf("bounds: node %d lower %g exceeds upper %g", v, lo, up)
		}
		if lo < -1e-12 || up > 1+1e-9 {
			return fmt.Errorf("bounds: node %d bounds out of range [%g, %g]", v, lo, up)
		}
	}
	return nil
}
