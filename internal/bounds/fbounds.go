// Package bounds implements the two-stage bounds-updating framework of
// Sect. V-A of the RoundTripRank paper: per-node lower/upper bounds and an
// unseen upper bound for F-Rank (driven by Bookmark-Coloring expansion,
// Proposition 4) and for T-Rank (driven by border-node expansion, Eq. 22),
// each refined iteratively over the current neighborhood (Stage II,
// Eq. 17–18). The weaker Stage-I-only bound schemes used by the paper's
// efficiency baselines (Gupta et al. for F-Rank, Sarkar et al. for T-Rank) are
// provided as options.
package bounds

import (
	"fmt"
	"math"
	"sort"

	"roundtriprank/internal/bca"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Default expansion granularities from Sect. V-A3.
const (
	DefaultFExpansion = 100 // m for the f-neighborhood (BCA benefit selection)
	DefaultTExpansion = 5   // m for the t-neighborhood (border-node selection)
)

// Defaults for the Stage-II refinement loop.
const (
	DefaultRefineTol     = 1e-12
	DefaultRefineMaxIter = 60
)

// FOptions configures an FBounds computation.
type FOptions struct {
	// Alpha is the teleport probability.
	Alpha float64
	// M is the number of best-benefit nodes processed per expansion
	// (default DefaultFExpansion).
	M int
	// ImprovedBound selects the Proposition 4 unseen bound with the 1/(2−α)
	// tightening (true, used by 2SBound) or the weaker first-arrival-only
	// bound attributed to Gupta et al. [16] (false, used by the G+S and Gupta
	// baselines).
	ImprovedBound bool
	// StageII enables the iterative refinement of Eq. 17–18 over the
	// f-neighborhood after each expansion.
	StageII bool
	// RefineTol and RefineMaxIter control Stage II convergence.
	RefineTol     float64
	RefineMaxIter int
}

// DefaultFOptions returns the 2SBound configuration for the F-Rank side.
func DefaultFOptions(alpha float64) FOptions {
	return FOptions{
		Alpha:         alpha,
		M:             DefaultFExpansion,
		ImprovedBound: true,
		StageII:       true,
		RefineTol:     DefaultRefineTol,
		RefineMaxIter: DefaultRefineMaxIter,
	}
}

func (o FOptions) normalized() FOptions {
	if o.M <= 0 {
		o.M = DefaultFExpansion
	}
	if o.RefineTol <= 0 {
		o.RefineTol = DefaultRefineTol
	}
	if o.RefineMaxIter <= 0 {
		o.RefineMaxIter = DefaultRefineMaxIter
	}
	return o
}

// FBounds maintains lower/upper bounds on F-Rank over the f-neighborhood Sf
// (the nodes with a non-zero BCA estimate) plus a common upper bound for all
// unseen nodes.
type FBounds struct {
	view    graph.View
	opt     FOptions
	restart map[graph.NodeID]float64

	engine *bca.State

	lower  map[graph.NodeID]float64
	upper  map[graph.NodeID]float64
	unseen float64

	expansions int
}

// NewFBounds starts an F-Rank bounds computation for the query.
func NewFBounds(view graph.View, q walk.Query, opt FOptions) (*FBounds, error) {
	opt = opt.normalized()
	engine, err := bca.New(view, q, opt.Alpha)
	if err != nil {
		return nil, fmt.Errorf("bounds: %w", err)
	}
	nq, err := q.Normalize()
	if err != nil {
		return nil, fmt.Errorf("bounds: %w", err)
	}
	restart := make(map[graph.NodeID]float64, len(nq.Nodes))
	for i, v := range nq.Nodes {
		restart[v] += nq.Weights[i]
	}
	fb := &FBounds{
		view:    view,
		opt:     opt,
		restart: restart,
		engine:  engine,
		lower:   make(map[graph.NodeID]float64),
		upper:   make(map[graph.NodeID]float64),
		unseen:  1,
	}
	return fb, nil
}

// Expansions returns the number of Stage-I expansions performed so far.
func (fb *FBounds) Expansions() int { return fb.expansions }

// SeenCount returns |Sf|.
func (fb *FBounds) SeenCount() int { return len(fb.lower) }

// Seen reports whether v is in the f-neighborhood.
func (fb *FBounds) Seen(v graph.NodeID) bool {
	_, ok := fb.lower[v]
	return ok
}

// Lower returns the lower bound for a seen node (zero for unseen nodes).
func (fb *FBounds) Lower(v graph.NodeID) float64 { return fb.lower[v] }

// Upper returns the upper bound for v: its individual bound when seen, the
// unseen upper bound otherwise.
func (fb *FBounds) Upper(v graph.NodeID) float64 {
	if u, ok := fb.upper[v]; ok {
		return u
	}
	return fb.unseen
}

// UnseenUpper returns the common upper bound for all unseen nodes.
func (fb *FBounds) UnseenUpper() float64 { return fb.unseen }

// EachSeen calls fn for every node in the f-neighborhood with its current
// bounds.
func (fb *FBounds) EachSeen(fn func(v graph.NodeID, lower, upper float64)) {
	for v, lo := range fb.lower {
		fn(v, lo, fb.upper[v])
	}
}

// Exhausted reports whether further expansion cannot meaningfully tighten the
// bounds (the BCA residual has essentially drained).
func (fb *FBounds) Exhausted() bool {
	return fb.engine.TotalResidual() < 1e-15
}

// Expand performs one Stage-I step: process up to M best-benefit nodes with
// BCA, fold the new estimates into the bounds, and recompute the unseen upper
// bound. When StageII is enabled it then refines the bounds iteratively. It
// returns the number of BCA processing operations performed (zero when the
// computation is exhausted).
func (fb *FBounds) Expand() int {
	processed := fb.engine.ProcessBest(fb.opt.M)
	fb.expansions++
	fb.initializeBounds()
	if fb.opt.StageII {
		fb.Refine()
	}
	return processed
}

// initializeBounds applies the Stage-I bound initialization (Prop. 4 for the
// improved scheme, the first-arrival-only bound otherwise), keeping bounds
// monotone: lower bounds never decrease, upper bounds never increase.
func (fb *FBounds) initializeBounds() {
	alpha := fb.opt.Alpha
	maxRes := fb.engine.MaxResidual()
	totRes := fb.engine.TotalResidual()

	var unseen float64
	if fb.opt.ImprovedBound {
		// Eq. 19: α/(2−α)·max_u µ(u) + (1−α)/(2−α)·Σ_u µ(u).
		unseen = alpha/(2-alpha)*maxRes + (1-alpha)/(2-alpha)*totRes
	} else {
		// Weaker first-arrival bound (Gupta et al.): residual may reach an
		// unseen node once and convert entirely; no credit for the α-split of
		// repeated returns.
		unseen = maxRes + (1-alpha)*totRes
	}
	if unseen < fb.unseen {
		fb.unseen = unseen
	}

	fb.engine.EachSeen(func(v graph.NodeID, rho float64) {
		if lo, ok := fb.lower[v]; !ok || rho > lo {
			fb.lower[v] = rho // Eq. 20
		}
		up := rho + fb.unseen // Eq. 21
		if prev, ok := fb.upper[v]; !ok || up < prev {
			fb.upper[v] = up
		} else {
			fb.upper[v] = prev
		}
	})
}

// Refine runs the Stage-II iterative refinement of Eq. 17–18 over the
// f-neighborhood until the bounds converge or the iteration cap is reached.
func (fb *FBounds) Refine() {
	if len(fb.lower) == 0 {
		return
	}
	seen := make([]graph.NodeID, 0, len(fb.lower))
	for v := range fb.lower {
		seen = append(seen, v)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })

	alpha := fb.opt.Alpha
	for iter := 0; iter < fb.opt.RefineMaxIter; iter++ {
		maxChange := 0.0
		for _, v := range seen {
			restart := fb.restart[v]
			sumLo, sumUp := 0.0, 0.0
			fb.view.EachIn(v, func(from graph.NodeID, w float64) bool {
				outSum := fb.view.OutWeightSum(from)
				if outSum <= 0 {
					return true
				}
				m := w / outSum
				if lo, ok := fb.lower[from]; ok {
					sumLo += m * lo
					sumUp += m * fb.upper[from]
				} else {
					// Unseen in-neighbor: lower bound zero, upper bound is the
					// unseen upper bound.
					sumUp += m * fb.unseen
				}
				return true
			})
			newLo := alpha*restart + (1-alpha)*sumLo
			newUp := alpha*restart + (1-alpha)*sumUp
			if newLo > fb.lower[v] {
				if d := newLo - fb.lower[v]; d > maxChange {
					maxChange = d
				}
				fb.lower[v] = newLo
			}
			if newUp < fb.upper[v] {
				if d := fb.upper[v] - newUp; d > maxChange {
					maxChange = d
				}
				fb.upper[v] = newUp
			}
		}
		if maxChange < fb.opt.RefineTol {
			return
		}
	}
}

// CheckConsistent verifies lower <= upper for every seen node and that the
// unseen upper bound is finite and non-negative. Used by tests.
func (fb *FBounds) CheckConsistent() error {
	if fb.unseen < 0 || math.IsNaN(fb.unseen) || math.IsInf(fb.unseen, 0) {
		return fmt.Errorf("bounds: invalid unseen upper bound %g", fb.unseen)
	}
	for v, lo := range fb.lower {
		up := fb.upper[v]
		if lo > up+1e-12 {
			return fmt.Errorf("bounds: node %d lower %g exceeds upper %g", v, lo, up)
		}
		if lo < -1e-12 {
			return fmt.Errorf("bounds: node %d negative lower bound %g", v, lo)
		}
	}
	return nil
}
