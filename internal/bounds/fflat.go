package bounds

import (
	"fmt"
	"slices"

	"roundtriprank/internal/bca"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/scratch"
	"roundtriprank/internal/walk"
)

// FFlat is the scratch-state implementation of FBounds used on the online
// serving path: per-node bounds live in one generation-stamped dense
// structure, the Stage-II sweep streams the transposed CSR rows directly, and
// Init rebinds the whole tracker to a new query in O(1), so a pooled
// instance serves a stream of queries with no steady-state allocation. The
// map-based FBounds remains the fallback for views without CSR adjacency and
// the correctness baseline the parity tests compare against.
type FFlat struct {
	opt FOptions
	in  graph.CSR
	out graph.CSR
	// remote, when non-nil, replaces the CSR arrays with a row provider
	// (InitRows); the Stage-II sweep then streams cached in-rows from it.
	remote graph.Rows

	engine  bca.Flat
	restart scratch.Floats
	b       scratch.Bounds
	unseen  float64

	expansions int
	sweep      []graph.NodeID // reusable ID-sorted seen list for Stage II
}

// Init starts (or restarts) an F-Rank bounds computation for the query,
// reusing the tracker's internal arrays.
func (fb *FFlat) Init(view graph.CSRView, q walk.Query, opt FOptions) error {
	opt = opt.normalized()
	if err := fb.engine.Init(view, q, opt.Alpha); err != nil {
		return fmt.Errorf("bounds: %w", err)
	}
	fb.in = view.InCSR()
	fb.out = view.OutCSR()
	fb.remote = nil
	fb.reset(view.NumNodes(), opt)
	return nil
}

// InitRows starts a computation against a row provider instead of local CSR
// arrays; see bca.Flat.InitRows. The Stage-II sweep only revisits rows the
// BCA engine already processed, so on a caching provider Refine never causes
// a fetch of its own.
func (fb *FFlat) InitRows(rows graph.Rows, q walk.Query, opt FOptions) error {
	opt = opt.normalized()
	if err := fb.engine.InitRows(rows, q, opt.Alpha); err != nil {
		return fmt.Errorf("bounds: %w", err)
	}
	fb.in, fb.out = graph.CSR{}, graph.CSR{}
	fb.remote = rows
	fb.reset(rows.NumNodes(), opt)
	return nil
}

func (fb *FFlat) reset(n int, opt FOptions) {
	fb.opt = opt
	fb.restart.Reset(n)
	fb.engine.EachRestart(fb.restart.Set)
	fb.b.Reset(n)
	fb.unseen = 1
	fb.expansions = 0
	fb.sweep = fb.sweep[:0]
}

// Detach drops the tracker's references to the graph's CSR arrays so a
// pooled instance does not pin a superseded snapshot between queries; Init
// rebinds a view.
func (fb *FFlat) Detach() {
	fb.in, fb.out = graph.CSR{}, graph.CSR{}
	fb.remote = nil
	fb.engine.Detach()
}

func (fb *FFlat) inRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	if fb.remote != nil {
		return fb.remote.InRow(v)
	}
	return fb.in.Row(v)
}

func (fb *FFlat) outSum(v graph.NodeID) float64 {
	if fb.remote != nil {
		return fb.remote.OutSum(v)
	}
	return fb.out.Sum[v]
}

// ResidualTouchedCount forwards the BCA engine's count of rows its working
// set can reach; ResidualTouched the membership test. See bca.Flat.
func (fb *FFlat) ResidualTouchedCount() int { return fb.engine.ResidualTouchedCount() }

// ResidualTouched reports whether the BCA engine ever held residual at v.
func (fb *FFlat) ResidualTouched(v graph.NodeID) bool { return fb.engine.ResidualTouched(v) }

// Expansions returns the number of Stage-I expansions performed so far.
func (fb *FFlat) Expansions() int { return fb.expansions }

// SeenCount returns |Sf|.
func (fb *FFlat) SeenCount() int { return fb.b.Len() }

// Seen reports whether v is in the f-neighborhood.
func (fb *FFlat) Seen(v graph.NodeID) bool { return fb.b.Seen(v) }

// Lower returns the lower bound for a seen node (zero for unseen nodes).
func (fb *FFlat) Lower(v graph.NodeID) float64 { return fb.b.Lower(v) }

// Upper returns the upper bound for v: its individual bound when seen, the
// unseen upper bound otherwise.
func (fb *FFlat) Upper(v graph.NodeID) float64 {
	if u, ok := fb.b.Upper(v); ok {
		return u
	}
	return fb.unseen
}

// UnseenUpper returns the common upper bound for all unseen nodes.
func (fb *FFlat) UnseenUpper() float64 { return fb.unseen }

// SeenList returns the f-neighborhood in insertion order; the slice is valid
// until the next Init and must not be mutated.
func (fb *FFlat) SeenList() []graph.NodeID { return fb.b.Touched() }

// EachSeen calls fn for every node in the f-neighborhood with its bounds.
func (fb *FFlat) EachSeen(fn func(v graph.NodeID, lower, upper float64)) {
	fb.b.Each(fn)
}

// Exhausted reports whether further expansion cannot meaningfully tighten
// the bounds.
func (fb *FFlat) Exhausted() bool {
	return fb.engine.TotalResidual() < 1e-15
}

// Expand performs one Stage-I step exactly like FBounds.Expand.
func (fb *FFlat) Expand() int {
	processed := fb.engine.ProcessBest(fb.opt.M)
	fb.expansions++
	fb.initializeBounds()
	if fb.opt.StageII {
		fb.Refine()
	}
	return processed
}

// initializeBounds applies the Stage-I bound initialization (Prop. 4 or the
// first-arrival bound), keeping bounds monotone.
func (fb *FFlat) initializeBounds() {
	alpha := fb.opt.Alpha
	maxRes := fb.engine.MaxResidual()
	totRes := fb.engine.TotalResidual()

	var unseen float64
	if fb.opt.ImprovedBound {
		// Eq. 19: α/(2−α)·max_u µ(u) + (1−α)/(2−α)·Σ_u µ(u).
		unseen = alpha/(2-alpha)*maxRes + (1-alpha)/(2-alpha)*totRes
	} else {
		// Weaker first-arrival bound (Gupta et al.).
		unseen = maxRes + (1-alpha)*totRes
	}
	if unseen < fb.unseen {
		fb.unseen = unseen
	}

	fb.engine.EachSeen(func(v graph.NodeID, rho float64) {
		lo, up, seen := fb.b.Get(v)
		if !seen {
			fb.b.Set(v, rho, rho+fb.unseen) // Eq. 20–21
			return
		}
		if rho > lo {
			lo = rho
		}
		if u := rho + fb.unseen; u < up {
			up = u
		}
		fb.b.Set(v, lo, up)
	})
}

// Refine runs the Stage-II iterative refinement of Eq. 17–18 over the
// f-neighborhood, streaming the transposed CSR rows.
func (fb *FFlat) Refine() {
	if fb.b.Len() == 0 {
		return
	}
	fb.sweep = append(fb.sweep[:0], fb.b.Touched()...)
	slices.Sort(fb.sweep)

	alpha := fb.opt.Alpha
	for iter := 0; iter < fb.opt.RefineMaxIter; iter++ {
		maxChange := 0.0
		for _, v := range fb.sweep {
			restart := fb.restart.Get(v)
			sumLo, sumUp := 0.0, 0.0
			cols, wts := fb.inRow(v)
			for i, from := range cols {
				outSum := fb.outSum(from)
				if outSum <= 0 {
					continue
				}
				m := wts[i] / outSum
				if lo, up, seen := fb.b.Get(from); seen {
					sumLo += m * lo
					sumUp += m * up
				} else {
					sumUp += m * fb.unseen
				}
			}
			lo, up, _ := fb.b.Get(v)
			newLo := alpha*restart + (1-alpha)*sumLo
			newUp := alpha*restart + (1-alpha)*sumUp
			changed := false
			if newLo > lo {
				if d := newLo - lo; d > maxChange {
					maxChange = d
				}
				lo, changed = newLo, true
			}
			if newUp < up {
				if d := up - newUp; d > maxChange {
					maxChange = d
				}
				up, changed = newUp, true
			}
			if changed {
				fb.b.Set(v, lo, up)
			}
		}
		if maxChange < fb.opt.RefineTol {
			return
		}
	}
}

// CheckConsistent verifies the same invariants as FBounds.CheckConsistent.
// Used by tests.
func (fb *FFlat) CheckConsistent() error {
	return checkBounds(&fb.b, fb.unseen, false)
}
