package bounds

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// exactFT computes the exact F-Rank and T-Rank vectors for checking bounds.
func exactFT(t *testing.T, view graph.View, q walk.Query, alpha float64) ([]float64, []float64) {
	t.Helper()
	p := walk.Params{Alpha: alpha, Tol: 1e-13, MaxIter: 2000}
	f, err := walk.FRank(context.Background(), view, q, p)
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	tr, err := walk.TRank(context.Background(), view, q, p)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	return f, tr
}

func checkFSound(t *testing.T, fb *FBounds, exact []float64, label string) {
	t.Helper()
	if err := fb.CheckConsistent(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for v := 0; v < len(exact); v++ {
		node := graph.NodeID(v)
		if fb.Seen(node) {
			if exact[v] < fb.Lower(node)-1e-9 || exact[v] > fb.Upper(node)+1e-9 {
				t.Errorf("%s: seen node %d exact %.9f outside [%.9f, %.9f]",
					label, v, exact[v], fb.Lower(node), fb.Upper(node))
			}
		} else if exact[v] > fb.UnseenUpper()+1e-9 {
			t.Errorf("%s: unseen node %d exact %.9f above unseen bound %.9f",
				label, v, exact[v], fb.UnseenUpper())
		}
	}
}

func checkTSound(t *testing.T, tb *TBounds, exact []float64, label string) {
	t.Helper()
	if err := tb.CheckConsistent(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for v := 0; v < len(exact); v++ {
		node := graph.NodeID(v)
		if tb.Seen(node) {
			if exact[v] < tb.Lower(node)-1e-9 || exact[v] > tb.Upper(node)+1e-9 {
				t.Errorf("%s: seen node %d exact %.9f outside [%.9f, %.9f]",
					label, v, exact[v], tb.Lower(node), tb.Upper(node))
			}
		} else if exact[v] > tb.UnseenUpper()+1e-9 {
			t.Errorf("%s: unseen node %d exact %.9f above unseen bound %.9f",
				label, v, exact[v], tb.UnseenUpper())
		}
	}
}

func TestFBoundsSoundnessOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25
	exactF, _ := exactFT(t, toy.Graph, q, alpha)

	for _, improved := range []bool{true, false} {
		for _, stageII := range []bool{true, false} {
			opt := DefaultFOptions(alpha)
			opt.M = 2
			opt.ImprovedBound = improved
			opt.StageII = stageII
			fb, err := NewFBounds(toy.Graph, q, opt)
			if err != nil {
				t.Fatalf("NewFBounds: %v", err)
			}
			prevUnseen := fb.UnseenUpper()
			for round := 0; round < 12; round++ {
				fb.Expand()
				label := "improved=" + boolStr(improved) + " stageII=" + boolStr(stageII)
				checkFSound(t, fb, exactF, label)
				if fb.UnseenUpper() > prevUnseen+1e-12 {
					t.Errorf("%s: unseen upper bound increased", label)
				}
				prevUnseen = fb.UnseenUpper()
			}
			if fb.SeenCount() == 0 {
				t.Errorf("f-neighborhood should not be empty after expansions")
			}
		}
	}
}

func TestImprovedFBoundTighterThanWeak(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25

	strong, _ := NewFBounds(toy.Graph, q, FOptions{Alpha: alpha, M: 3, ImprovedBound: true, StageII: false})
	weak, _ := NewFBounds(toy.Graph, q, FOptions{Alpha: alpha, M: 3, ImprovedBound: false, StageII: false})
	for i := 0; i < 5; i++ {
		strong.Expand()
		weak.Expand()
	}
	if strong.UnseenUpper() > weak.UnseenUpper()+1e-12 {
		t.Errorf("Proposition 4 bound (%g) should not be looser than the first-arrival bound (%g)",
			strong.UnseenUpper(), weak.UnseenUpper())
	}
}

func TestStageIITightensFBounds(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25

	with, _ := NewFBounds(toy.Graph, q, FOptions{Alpha: alpha, M: 3, ImprovedBound: true, StageII: true})
	without, _ := NewFBounds(toy.Graph, q, FOptions{Alpha: alpha, M: 3, ImprovedBound: true, StageII: false})
	for i := 0; i < 4; i++ {
		with.Expand()
		without.Expand()
	}
	// Width of the interval at the query node should be no larger with
	// Stage II enabled.
	widthWith := with.Upper(toy.T1) - with.Lower(toy.T1)
	widthWithout := without.Upper(toy.T1) - without.Lower(toy.T1)
	if widthWith > widthWithout+1e-12 {
		t.Errorf("Stage II should tighten bounds: width %.9f vs %.9f", widthWith, widthWithout)
	}
}

func TestTBoundsSoundnessOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25
	_, exactT := exactFT(t, toy.Graph, q, alpha)

	for _, stageII := range []bool{true, false} {
		opt := DefaultTOptions(alpha)
		opt.M = 2
		opt.StageII = stageII
		tb, err := NewTBounds(toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("NewTBounds: %v", err)
		}
		checkTSound(t, tb, exactT, "initial stageII="+boolStr(stageII))
		if math.Abs(tb.Lower(toy.T1)-alpha) > 1e-12 {
			t.Errorf("initial lower bound at query should be alpha, got %g", tb.Lower(toy.T1))
		}
		if tb.Upper(toy.T1) != 1 {
			t.Errorf("initial upper bound at query should be 1, got %g", tb.Upper(toy.T1))
		}
		if math.Abs(tb.UnseenUpper()-(1-alpha)) > 1e-12 && tb.UnseenUpper() > 1-alpha {
			t.Errorf("initial unseen bound should be at most 1-alpha, got %g", tb.UnseenUpper())
		}
		prevUnseen := tb.UnseenUpper()
		for round := 0; round < 10; round++ {
			added := tb.Expand()
			checkTSound(t, tb, exactT, "stageII="+boolStr(stageII))
			if tb.UnseenUpper() > prevUnseen+1e-12 {
				t.Errorf("unseen upper bound increased")
			}
			prevUnseen = tb.UnseenUpper()
			if added == 0 && !tb.Exhausted() {
				t.Errorf("Expand added nothing but border nodes remain")
			}
			if tb.Exhausted() {
				break
			}
		}
		// The toy graph is strongly connected (undirected edges), so the
		// expansion eventually covers all nodes and the unseen bound drops.
		if !tb.Exhausted() {
			t.Errorf("t-neighborhood should eventually exhaust on the toy graph")
		}
		if tb.UnseenUpper() != 0 {
			t.Errorf("exhausted neighborhood should have zero unseen bound, got %g", tb.UnseenUpper())
		}
		if tb.SeenCount() != toy.Graph.NumNodes() {
			t.Errorf("exhausted neighborhood should contain all nodes: %d vs %d",
				tb.SeenCount(), toy.Graph.NumNodes())
		}
	}
}

func TestTBoundsDirectedLine(t *testing.T) {
	// On a directed line 0->1->2->3 with query 0, only node 0 can reach the
	// query; the t-neighborhood exhausts immediately with no border nodes
	// beyond the query's in-neighbors (there are none).
	g := testgraphs.Line(4)
	q := walk.SingleNode(0)
	tb, err := NewTBounds(g, q, DefaultTOptions(0.25))
	if err != nil {
		t.Fatalf("NewTBounds: %v", err)
	}
	if !tb.Exhausted() {
		t.Fatalf("query with no in-neighbors should exhaust immediately")
	}
	if tb.UnseenUpper() != 0 {
		t.Errorf("unseen bound should be 0, got %g", tb.UnseenUpper())
	}
	if tb.Expand() != 0 {
		t.Errorf("Expand on an exhausted neighborhood should add nothing")
	}
	_, exactT := exactFT(t, g, q, 0.25)
	checkTSound(t, tb, exactT, "line")
}

func TestBoundsValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	if _, err := NewFBounds(toy.Graph, walk.Query{}, DefaultFOptions(0.25)); err == nil {
		t.Errorf("empty query should error for FBounds")
	}
	if _, err := NewFBounds(toy.Graph, walk.SingleNode(toy.T1), DefaultFOptions(0)); err == nil {
		t.Errorf("alpha 0 should error for FBounds")
	}
	if _, err := NewTBounds(toy.Graph, walk.Query{}, DefaultTOptions(0.25)); err == nil {
		t.Errorf("empty query should error for TBounds")
	}
	if _, err := NewTBounds(toy.Graph, walk.SingleNode(toy.T1), DefaultTOptions(1.5)); err == nil {
		t.Errorf("alpha out of range should error for TBounds")
	}
	if _, err := NewTBounds(toy.Graph, walk.SingleNode(999), DefaultTOptions(0.25)); err == nil {
		t.Errorf("out-of-range query should error for TBounds")
	}
}

func TestMultiNodeQueryBounds(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.MultiNode(toy.T1, toy.T2)
	alpha := 0.25
	exactF, exactT := exactFT(t, toy.Graph, q, alpha)

	fb, err := NewFBounds(toy.Graph, q, DefaultFOptions(alpha))
	if err != nil {
		t.Fatalf("NewFBounds: %v", err)
	}
	tb, err := NewTBounds(toy.Graph, q, DefaultTOptions(alpha))
	if err != nil {
		t.Fatalf("NewTBounds: %v", err)
	}
	for i := 0; i < 6; i++ {
		fb.Expand()
		tb.Expand()
	}
	checkFSound(t, fb, exactF, "multi-node F")
	checkTSound(t, tb, exactT, "multi-node T")
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Property: on random strongly connected graphs, both bound frameworks always
// sandwich the exact F-Rank / T-Rank values after a random number of
// expansions, under every scheme combination.
func TestQuickBoundsSoundness(t *testing.T) {
	f := func(seed int64, roundsRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('0'+i%10))+string(rune('a'+i/10)))
		}
		// Base cycle guarantees strong connectivity, then random chords.
		for i := 0; i < n; i++ {
			b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
		}
		extra := rng.Intn(3 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.25+rng.Float64())
		}
		g := b.MustBuild()
		alpha := 0.15 + 0.5*rng.Float64()
		q := walk.SingleNode(ids[rng.Intn(n)])
		p := walk.Params{Alpha: alpha, Tol: 1e-13, MaxIter: 2000}
		exactF, err := walk.FRank(context.Background(), g, q, p)
		if err != nil {
			return false
		}
		exactT, err := walk.TRank(context.Background(), g, q, p)
		if err != nil {
			return false
		}
		rounds := 1 + int(roundsRaw%8)
		m := 1 + int(mRaw%6)

		improved := rng.Intn(2) == 0
		stageII := rng.Intn(2) == 0
		fb, err := NewFBounds(g, q, FOptions{Alpha: alpha, M: m, ImprovedBound: improved, StageII: stageII})
		if err != nil {
			return false
		}
		tb, err := NewTBounds(g, q, TOptions{Alpha: alpha, M: m, StageII: stageII})
		if err != nil {
			return false
		}
		for i := 0; i < rounds; i++ {
			fb.Expand()
			tb.Expand()
		}
		if fb.CheckConsistent() != nil || tb.CheckConsistent() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			node := graph.NodeID(v)
			if fb.Seen(node) {
				if exactF[v] < fb.Lower(node)-1e-8 || exactF[v] > fb.Upper(node)+1e-8 {
					return false
				}
			} else if exactF[v] > fb.UnseenUpper()+1e-8 {
				return false
			}
			if tb.Seen(node) {
				if exactT[v] < tb.Lower(node)-1e-8 || exactT[v] > tb.Upper(node)+1e-8 {
					return false
				}
			} else if exactT[v] > tb.UnseenUpper()+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
