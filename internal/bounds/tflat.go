package bounds

import (
	"fmt"
	"math"
	"slices"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/scratch"
	"roundtriprank/internal/walk"
)

// TFlat is the scratch-state implementation of TBounds used on the online
// serving path: the t-neighborhood, both bounds and the border counters live
// in generation-stamped dense arrays, expansions and the Stage-II sweep
// stream CSR rows directly, and Init rebinds the tracker to a new query in
// O(1). The map-based TBounds remains the fallback for views without CSR
// adjacency and the correctness baseline.
type TFlat struct {
	opt TOptions
	in  graph.CSR
	out graph.CSR
	// remote, when non-nil, replaces the CSR arrays with a row provider
	// (InitRows); pre is its optional prefetch capability and wave the
	// reusable buffer of rows each expansion announces to it.
	remote graph.Rows
	pre    graph.RowPrefetcher
	wave   []graph.NodeID

	restart      scratch.Floats
	restartNodes []graph.NodeID
	restartW     []float64

	b scratch.Bounds
	// outsideIn counts, for every node in St, how many of its in-neighbors
	// are still outside St; a node is a border node iff its count is
	// positive.
	outsideIn scratch.Ints
	unseen    float64

	expansions int
	sweep      []graph.NodeID // reusable ID-sorted seen list for Stage II
	// pickN/pickP are the reusable top-M border selection (descending by
	// upper bound, ties keep earlier insertion), replacing the per-expansion
	// heapx.TopK allocation.
	pickN []graph.NodeID
	pickP []float64
}

// Init starts (or restarts) a T-Rank bounds computation for the query,
// reusing the tracker's internal arrays.
func (tb *TFlat) Init(view graph.CSRView, q walk.Query, opt TOptions) error {
	tb.in = view.InCSR()
	tb.out = view.OutCSR()
	tb.remote, tb.pre = nil, nil
	return tb.init(view.NumNodes(), q, opt)
}

// InitRows starts a computation against a row provider instead of local CSR
// arrays; see bca.Flat.InitRows. Expansions announce each wave (the picked
// border rows, then the newcomer rows they pull in) to the provider's
// prefetcher before streaming them.
func (tb *TFlat) InitRows(rows graph.Rows, q walk.Query, opt TOptions) error {
	tb.in, tb.out = graph.CSR{}, graph.CSR{}
	tb.remote = rows
	tb.pre, _ = rows.(graph.RowPrefetcher)
	return tb.init(rows.NumNodes(), q, opt)
}

func (tb *TFlat) init(n int, q walk.Query, opt TOptions) error {
	opt = opt.normalized()
	if opt.Alpha <= 0 || opt.Alpha >= 1 {
		return fmt.Errorf("bounds: alpha must be in (0,1), got %g", opt.Alpha)
	}
	var err error
	tb.restartNodes, tb.restartW, err =
		q.NormalizeInto(n, tb.restartNodes[:0], tb.restartW[:0])
	if err != nil {
		return fmt.Errorf("bounds: %w", err)
	}
	tb.opt = opt
	if tb.pre != nil {
		tb.pre.Prefetch(tb.restartNodes)
	}
	tb.restart.Reset(n)
	tb.b.Reset(n)
	tb.outsideIn.Reset(n)
	tb.unseen = 1 - opt.Alpha
	tb.sweep = tb.sweep[:0]
	for i, v := range tb.restartNodes {
		w := tb.restartW[i]
		tb.restart.Set(v, w)
		tb.b.Set(v, opt.Alpha*w, 1)
	}
	// Border counts go in a second pass: countOutsideIn must see the full
	// initial neighborhood.
	for _, v := range tb.restartNodes {
		tb.outsideIn.Set(v, tb.countOutsideIn(v))
	}
	tb.expansions = 1 // the paper counts the initial St = {q} as the first expansion
	tb.recomputeUnseen()
	return nil
}

func (tb *TFlat) countOutsideIn(v graph.NodeID) int {
	count := 0
	cols, _ := tb.inRow(v)
	for _, from := range cols {
		if !tb.b.Seen(from) {
			count++
		}
	}
	return count
}

// Detach drops the tracker's references to the graph's CSR arrays so a
// pooled instance does not pin a superseded snapshot between queries; Init
// rebinds a view.
func (tb *TFlat) Detach() {
	tb.in, tb.out = graph.CSR{}, graph.CSR{}
	tb.remote, tb.pre = nil, nil
}

func (tb *TFlat) inRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	if tb.remote != nil {
		return tb.remote.InRow(v)
	}
	return tb.in.Row(v)
}

func (tb *TFlat) outRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	if tb.remote != nil {
		return tb.remote.OutRow(v)
	}
	return tb.out.Row(v)
}

func (tb *TFlat) outSum(v graph.NodeID) float64 {
	if tb.remote != nil {
		return tb.remote.OutSum(v)
	}
	return tb.out.Sum[v]
}

// Expansions returns the number of Stage-I expansions performed (including
// the initial singleton neighborhood).
func (tb *TFlat) Expansions() int { return tb.expansions }

// SeenCount returns |St|.
func (tb *TFlat) SeenCount() int { return tb.b.Len() }

// Seen reports whether v is in the t-neighborhood.
func (tb *TFlat) Seen(v graph.NodeID) bool { return tb.b.Seen(v) }

// Lower returns the lower bound for a seen node (zero for unseen nodes).
func (tb *TFlat) Lower(v graph.NodeID) float64 { return tb.b.Lower(v) }

// Upper returns the upper bound for v: its individual bound when seen, the
// unseen upper bound otherwise.
func (tb *TFlat) Upper(v graph.NodeID) float64 {
	if u, ok := tb.b.Upper(v); ok {
		return u
	}
	return tb.unseen
}

// UnseenUpper returns the common upper bound for unseen nodes (Eq. 22).
func (tb *TFlat) UnseenUpper() float64 { return tb.unseen }

// SeenList returns the t-neighborhood in insertion order; the slice is valid
// until the next Init and must not be mutated.
func (tb *TFlat) SeenList() []graph.NodeID { return tb.b.Touched() }

// EachSeen calls fn for every node in the t-neighborhood with its bounds.
func (tb *TFlat) EachSeen(fn func(v graph.NodeID, lower, upper float64)) {
	tb.b.Each(fn)
}

// BorderCount returns the number of border nodes of St.
func (tb *TFlat) BorderCount() int {
	n := 0
	for _, v := range tb.b.Touched() {
		if tb.outsideIn.Get(v) > 0 {
			n++
		}
	}
	return n
}

// Exhausted reports whether the t-neighborhood has no border nodes left.
func (tb *TFlat) Exhausted() bool { return tb.BorderCount() == 0 }

// Expand performs one Stage-I step exactly like TBounds.Expand: pull the
// in-neighborhoods of the M border nodes with the largest upper bounds into
// St, initialize the newcomers, retighten the unseen bound, and refine.
func (tb *TFlat) Expand() int {
	// Select the M border nodes with the largest upper bounds into the
	// reusable pick buffers (kept sorted descending, like heapx.TopK but
	// with deterministic insertion order from the touched list).
	m := tb.opt.M
	tb.pickN, tb.pickP = tb.pickN[:0], tb.pickP[:0]
	for _, v := range tb.b.Touched() {
		if tb.outsideIn.Get(v) <= 0 {
			continue
		}
		up, _ := tb.b.Upper(v)
		if len(tb.pickN) == m && up <= tb.pickP[m-1] {
			continue
		}
		tb.pickN = append(tb.pickN, v)
		tb.pickP = append(tb.pickP, up)
		for i := len(tb.pickN) - 1; i > 0 && tb.pickP[i] > tb.pickP[i-1]; i-- {
			tb.pickN[i], tb.pickN[i-1] = tb.pickN[i-1], tb.pickN[i]
			tb.pickP[i], tb.pickP[i-1] = tb.pickP[i-1], tb.pickP[i]
		}
		if len(tb.pickN) > m {
			tb.pickN = tb.pickN[:m]
			tb.pickP = tb.pickP[:m]
		}
	}
	if len(tb.pickN) == 0 {
		return 0
	}
	limit := tb.opt.FrontierCap
	if tb.pre != nil {
		// Announce the wave in two coalesced batches: the picked border rows,
		// then the newcomer rows those picks will pull in. The pre-pass below
		// only reads membership, so the mutation loop that follows runs
		// unchanged — same order, same bounds, bit-identical to local.
		//
		// Under a frontier cap the wave is truncated at the cap's raw entry
		// count: an unseen entry at raw index p has at most p admissions
		// before it in processing order, so every truncated-wave entry is
		// provably admitted — never an over-prefetch of an untouched row. A
		// node first admitted past the truncation point (possible when
		// duplicates precede it) is simply fetched on demand; it still joins
		// St, so "rows fetched ≤ rows touched" holds with or without the cap.
		tb.pre.Prefetch(tb.pickN)
		tb.wave = tb.wave[:0]
	collect:
		for _, u := range tb.pickN {
			cols, _ := tb.inRow(u)
			for _, from := range cols {
				if !tb.b.Seen(from) {
					if limit > 0 && len(tb.wave) >= limit {
						break collect
					}
					tb.wave = append(tb.wave, from)
				}
			}
		}
		tb.pre.Prefetch(tb.wave)
	}
	added := 0
	prevUnseen := tb.unseen
	for _, u := range tb.pickN {
		if limit > 0 && added >= limit {
			break
		}
		cols, _ := tb.inRow(u)
		for _, from := range cols {
			if limit > 0 && added >= limit {
				break
			}
			if tb.b.Seen(from) {
				continue
			}
			// Newly included node: lower bound zero, upper bound is the
			// unseen upper bound from the previous expansion.
			tb.b.Set(from, 0, prevUnseen)
			tb.outsideIn.Set(from, tb.countOutsideIn(from))
			// Every seen out-neighbor of the newcomer loses one outside
			// in-neighbor (the newcomer already counted its own membership).
			outCols, _ := tb.outRow(from)
			for _, to := range outCols {
				if to != from && tb.b.Seen(to) {
					tb.outsideIn.Add(to, -1)
				}
			}
			added++
		}
	}
	tb.expansions++
	tb.recomputeUnseen()
	if tb.opt.StageII {
		tb.Refine()
	} else {
		tb.localUpdate()
		tb.recomputeUnseen()
	}
	return added
}

// recomputeUnseen applies Eq. 22, keeping the bound monotone non-increasing.
func (tb *TFlat) recomputeUnseen() {
	maxBorder := 0.0
	for _, v := range tb.b.Touched() {
		if tb.outsideIn.Get(v) <= 0 {
			continue
		}
		if up, _ := tb.b.Upper(v); up > maxBorder {
			maxBorder = up
		}
	}
	candidate := (1 - tb.opt.Alpha) * maxBorder
	if candidate < tb.unseen {
		tb.unseen = candidate
	}
}

// localUpdate applies a single pass of the recursion to the seen nodes
// (Sarkar-style expansion-only realization).
func (tb *TFlat) localUpdate() {
	tb.sortSweep()
	tb.applyRecursion()
}

// Refine runs the Stage-II iterative refinement of Eq. 17–18 over the
// t-neighborhood, re-tightening the unseen bound after every sweep when the
// scheme asks for it.
func (tb *TFlat) Refine() {
	tb.sortSweep()
	for iter := 0; iter < tb.opt.RefineMaxIter; iter++ {
		maxChange := tb.applyRecursion()
		if tb.opt.TightenUnseenInRefine {
			tb.recomputeUnseen()
		}
		if maxChange < tb.opt.RefineTol {
			return
		}
	}
}

func (tb *TFlat) sortSweep() {
	tb.sweep = append(tb.sweep[:0], tb.b.Touched()...)
	slices.Sort(tb.sweep)
}

// applyRecursion performs one sweep of Eq. 17–18 (T-Rank form: out-neighbors)
// over the sorted seen list and returns the largest bound change.
func (tb *TFlat) applyRecursion() float64 {
	alpha := tb.opt.Alpha
	maxChange := 0.0
	for _, v := range tb.sweep {
		restart := tb.restart.Get(v)
		outSum := tb.outSum(v)
		sumLo, sumUp := 0.0, 0.0
		if outSum > 0 {
			cols, wts := tb.outRow(v)
			for i, to := range cols {
				m := wts[i] / outSum
				if lo, up, seen := tb.b.Get(to); seen {
					sumLo += m * lo
					sumUp += m * up
				} else {
					sumUp += m * tb.unseen
				}
			}
		}
		lo, up, _ := tb.b.Get(v)
		newLo := alpha*restart + (1-alpha)*sumLo
		newUp := alpha*restart + (1-alpha)*sumUp
		changed := false
		if newLo > lo {
			if d := newLo - lo; d > maxChange {
				maxChange = d
			}
			lo, changed = newLo, true
		}
		if newUp < up {
			if d := up - newUp; d > maxChange {
				maxChange = d
			}
			up, changed = newUp, true
		}
		if changed {
			tb.b.Set(v, lo, up)
		}
	}
	return maxChange
}

// CheckConsistent verifies the same invariants as TBounds.CheckConsistent.
// Used by tests.
func (tb *TFlat) CheckConsistent() error {
	return checkBounds(&tb.b, tb.unseen, true)
}

// checkBounds verifies lower <= upper for every seen node and a sane unseen
// bound; capped additionally requires upper <= 1 (the T-Rank invariant).
func checkBounds(b *scratch.Bounds, unseen float64, capped bool) error {
	if unseen < 0 || math.IsNaN(unseen) || math.IsInf(unseen, 0) {
		return fmt.Errorf("bounds: invalid unseen upper bound %g", unseen)
	}
	var err error
	b.Each(func(v graph.NodeID, lo, up float64) {
		if err != nil {
			return
		}
		if lo > up+1e-12 {
			err = fmt.Errorf("bounds: node %d lower %g exceeds upper %g", v, lo, up)
			return
		}
		if lo < -1e-12 {
			err = fmt.Errorf("bounds: node %d negative lower bound %g", v, lo)
			return
		}
		if capped && up > 1+1e-9 {
			err = fmt.Errorf("bounds: node %d bounds out of range [%g, %g]", v, lo, up)
		}
	})
	return err
}
