package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func checkFFlatSound(t *testing.T, fb *FFlat, exact []float64, label string) {
	t.Helper()
	if err := fb.CheckConsistent(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for v := 0; v < len(exact); v++ {
		node := graph.NodeID(v)
		if fb.Seen(node) {
			if exact[v] < fb.Lower(node)-1e-9 || exact[v] > fb.Upper(node)+1e-9 {
				t.Errorf("%s: seen node %d exact %.9f outside [%.9f, %.9f]",
					label, v, exact[v], fb.Lower(node), fb.Upper(node))
			}
		} else if exact[v] > fb.UnseenUpper()+1e-9 {
			t.Errorf("%s: unseen node %d exact %.9f above unseen bound %.9f",
				label, v, exact[v], fb.UnseenUpper())
		}
	}
}

func checkTFlatSound(t *testing.T, tb *TFlat, exact []float64, label string) {
	t.Helper()
	if err := tb.CheckConsistent(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for v := 0; v < len(exact); v++ {
		node := graph.NodeID(v)
		if tb.Seen(node) {
			if exact[v] < tb.Lower(node)-1e-9 || exact[v] > tb.Upper(node)+1e-9 {
				t.Errorf("%s: seen node %d exact %.9f outside [%.9f, %.9f]",
					label, v, exact[v], tb.Lower(node), tb.Upper(node))
			}
		} else if exact[v] > tb.UnseenUpper()+1e-9 {
			t.Errorf("%s: unseen node %d exact %.9f above unseen bound %.9f",
				label, v, exact[v], tb.UnseenUpper())
		}
	}
}

func TestFFlatSoundnessOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25
	exactF, _ := exactFT(t, toy.Graph, q, alpha)

	for _, improved := range []bool{true, false} {
		for _, stageII := range []bool{true, false} {
			opt := DefaultFOptions(alpha)
			opt.M = 2
			opt.ImprovedBound = improved
			opt.StageII = stageII
			var fb FFlat
			if err := fb.Init(toy.Graph, q, opt); err != nil {
				t.Fatalf("Init: %v", err)
			}
			prevUnseen := fb.UnseenUpper()
			for round := 0; round < 12; round++ {
				fb.Expand()
				label := "flat improved=" + boolStr(improved) + " stageII=" + boolStr(stageII)
				checkFFlatSound(t, &fb, exactF, label)
				if fb.UnseenUpper() > prevUnseen+1e-12 {
					t.Errorf("%s: unseen upper bound increased", label)
				}
				prevUnseen = fb.UnseenUpper()
			}
			if fb.SeenCount() == 0 {
				t.Errorf("f-neighborhood should not be empty after expansions")
			}
		}
	}
}

func TestTFlatSoundnessOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	alpha := 0.25
	_, exactT := exactFT(t, toy.Graph, q, alpha)

	for _, stageII := range []bool{true, false} {
		opt := DefaultTOptions(alpha)
		opt.M = 2
		opt.StageII = stageII
		var tb TFlat
		if err := tb.Init(toy.Graph, q, opt); err != nil {
			t.Fatalf("Init: %v", err)
		}
		checkTFlatSound(t, &tb, exactT, "flat initial stageII="+boolStr(stageII))
		if math.Abs(tb.Lower(toy.T1)-alpha) > 1e-12 {
			t.Errorf("initial lower bound at query should be alpha, got %g", tb.Lower(toy.T1))
		}
		if tb.Upper(toy.T1) != 1 {
			t.Errorf("initial upper bound at query should be 1, got %g", tb.Upper(toy.T1))
		}
		prevUnseen := tb.UnseenUpper()
		for round := 0; round < 10; round++ {
			added := tb.Expand()
			checkTFlatSound(t, &tb, exactT, "flat stageII="+boolStr(stageII))
			if tb.UnseenUpper() > prevUnseen+1e-12 {
				t.Errorf("unseen upper bound increased")
			}
			prevUnseen = tb.UnseenUpper()
			if added == 0 && !tb.Exhausted() {
				t.Errorf("Expand added nothing but border nodes remain")
			}
			if tb.Exhausted() {
				break
			}
		}
		if !tb.Exhausted() {
			t.Errorf("t-neighborhood should eventually exhaust on the toy graph")
		}
		if tb.UnseenUpper() != 0 {
			t.Errorf("exhausted neighborhood should have zero unseen bound, got %g", tb.UnseenUpper())
		}
		if tb.SeenCount() != toy.Graph.NumNodes() {
			t.Errorf("exhausted neighborhood should contain all nodes: %d vs %d",
				tb.SeenCount(), toy.Graph.NumNodes())
		}
	}
}

func TestTFlatDirectedLine(t *testing.T) {
	g := testgraphs.Line(4)
	q := walk.SingleNode(0)
	var tb TFlat
	if err := tb.Init(g, q, DefaultTOptions(0.25)); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if !tb.Exhausted() {
		t.Fatalf("query with no in-neighbors should exhaust immediately")
	}
	if tb.UnseenUpper() != 0 {
		t.Errorf("unseen bound should be 0, got %g", tb.UnseenUpper())
	}
	if tb.Expand() != 0 {
		t.Errorf("Expand on an exhausted neighborhood should add nothing")
	}
	_, exactT := exactFT(t, g, q, 0.25)
	checkTFlatSound(t, &tb, exactT, "flat line")
}

func TestFlatBoundsValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	var fb FFlat
	if err := fb.Init(toy.Graph, walk.Query{}, DefaultFOptions(0.25)); err == nil {
		t.Errorf("empty query should error for FFlat")
	}
	if err := fb.Init(toy.Graph, walk.SingleNode(toy.T1), DefaultFOptions(0)); err == nil {
		t.Errorf("alpha 0 should error for FFlat")
	}
	var tb TFlat
	if err := tb.Init(toy.Graph, walk.Query{}, DefaultTOptions(0.25)); err == nil {
		t.Errorf("empty query should error for TFlat")
	}
	if err := tb.Init(toy.Graph, walk.SingleNode(toy.T1), DefaultTOptions(1.5)); err == nil {
		t.Errorf("alpha out of range should error for TFlat")
	}
	if err := tb.Init(toy.Graph, walk.SingleNode(999), DefaultTOptions(0.25)); err == nil {
		t.Errorf("out-of-range query should error for TFlat")
	}
}

// TestTBoundsAdjacentMultiNodeBorderCount pins the two-pass initialization
// of both T-side trackers: with a multi-node query whose nodes are adjacent
// (cycle 0→1→2→0, query {0,1}), node 1's only in-neighbor is node 0 — also a
// query node — so node 1 must never be counted as a border node. The
// single-pass map initialization used to get this wrong nondeterministically
// (map iteration order decided whether node 0 was already seen when node 1's
// in-neighbors were counted, and the phantom border count was never
// repaired).
func TestTBoundsAdjacentMultiNodeBorderCount(t *testing.T) {
	g := testgraphs.Cycle(3)
	q := walk.MultiNode(0, 1)
	for i := 0; i < 50; i++ {
		tb, err := NewTBounds(g, q, DefaultTOptions(0.25))
		if err != nil {
			t.Fatalf("NewTBounds: %v", err)
		}
		var tf TFlat
		if err := tf.Init(g, q, DefaultTOptions(0.25)); err != nil {
			t.Fatalf("TFlat.Init: %v", err)
		}
		if tb.BorderCount() != 1 || tf.BorderCount() != 1 {
			t.Fatalf("run %d: BorderCount map=%d flat=%d, want 1 (node 1's in-neighbor is a query node)",
				i, tb.BorderCount(), tf.BorderCount())
		}
	}
}

// TestFlatBoundsReuseAcrossGraphs re-Inits one tracker pair across graphs of
// different sizes (the pool-resize situation after an engine epoch swap) and
// checks every reused run produces exactly the bounds of a fresh tracker.
func TestFlatBoundsReuseAcrossGraphs(t *testing.T) {
	toy := testgraphs.NewToy()
	cases := []struct {
		name string
		g    *graph.Graph
		q    graph.NodeID
	}{
		{"toy", toy.Graph, toy.T1},
		{"cycle", testgraphs.Cycle(50), 3},
		{"star", testgraphs.Star(6), 0},
	}
	var rfb FFlat
	var rtb TFlat
	for round := 0; round < 2; round++ {
		for _, tc := range cases {
			q := walk.SingleNode(tc.q)
			if err := rfb.Init(tc.g, q, DefaultFOptions(0.25)); err != nil {
				t.Fatalf("%s: FFlat Init: %v", tc.name, err)
			}
			if err := rtb.Init(tc.g, q, DefaultTOptions(0.25)); err != nil {
				t.Fatalf("%s: TFlat Init: %v", tc.name, err)
			}
			var ffb FFlat
			var ftb TFlat
			if err := ffb.Init(tc.g, q, DefaultFOptions(0.25)); err != nil {
				t.Fatalf("%s: fresh FFlat Init: %v", tc.name, err)
			}
			if err := ftb.Init(tc.g, q, DefaultTOptions(0.25)); err != nil {
				t.Fatalf("%s: fresh TFlat Init: %v", tc.name, err)
			}
			for i := 0; i < 4; i++ {
				rfb.Expand()
				ffb.Expand()
				rtb.Expand()
				ftb.Expand()
			}
			if rfb.SeenCount() != ffb.SeenCount() || rtb.SeenCount() != ftb.SeenCount() {
				t.Fatalf("%s: reused and fresh trackers grew different neighborhoods", tc.name)
			}
			for v := 0; v < tc.g.NumNodes(); v++ {
				node := graph.NodeID(v)
				if rfb.Lower(node) != ffb.Lower(node) || rfb.Upper(node) != ffb.Upper(node) {
					t.Fatalf("%s: F bounds at %d differ between reused and fresh", tc.name, v)
				}
				if rtb.Lower(node) != ftb.Lower(node) || rtb.Upper(node) != ftb.Upper(node) {
					t.Fatalf("%s: T bounds at %d differ between reused and fresh", tc.name, v)
				}
			}
		}
	}
}

// Property: the flat trackers sandwich the exact F-Rank / T-Rank values on
// random strongly connected graphs under every scheme combination (mirrors
// TestQuickBoundsSoundness).
func TestQuickFlatBoundsSoundness(t *testing.T) {
	f := func(seed int64, roundsRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('0'+i%10))+string(rune('a'+i/10)))
		}
		for i := 0; i < n; i++ {
			b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
		}
		extra := rng.Intn(3 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.25+rng.Float64())
		}
		g := b.MustBuild()
		alpha := 0.15 + 0.5*rng.Float64()
		q := walk.SingleNode(ids[rng.Intn(n)])
		p := walk.Params{Alpha: alpha, Tol: 1e-13, MaxIter: 2000}
		exactF, err := walk.FRank(nil, g, q, p)
		if err != nil {
			return false
		}
		exactT, err := walk.TRank(nil, g, q, p)
		if err != nil {
			return false
		}
		rounds := 1 + int(roundsRaw%8)
		m := 1 + int(mRaw%6)

		improved := rng.Intn(2) == 0
		stageII := rng.Intn(2) == 0
		var fb FFlat
		if err := fb.Init(g, q, FOptions{Alpha: alpha, M: m, ImprovedBound: improved, StageII: stageII}); err != nil {
			return false
		}
		var tb TFlat
		if err := tb.Init(g, q, TOptions{Alpha: alpha, M: m, StageII: stageII}); err != nil {
			return false
		}
		for i := 0; i < rounds; i++ {
			fb.Expand()
			tb.Expand()
		}
		if fb.CheckConsistent() != nil || tb.CheckConsistent() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			node := graph.NodeID(v)
			if fb.Seen(node) {
				if exactF[v] < fb.Lower(node)-1e-8 || exactF[v] > fb.Upper(node)+1e-8 {
					return false
				}
			} else if exactF[v] > fb.UnseenUpper()+1e-8 {
				return false
			}
			if tb.Seen(node) {
				if exactT[v] < tb.Lower(node)-1e-8 || exactT[v] > tb.Upper(node)+1e-8 {
					return false
				}
			} else if exactT[v] > tb.UnseenUpper()+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
