package rowserve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

// replacingFetcher delegates to the inner transport but corrupts the content
// fingerprint of the first FetchRows answer, modelling a stripe that was
// replaced on the worker while the RPC was in flight (the same signal the
// wire layer's retag 409 protects against: an answer from a snapshot the
// session is not pinned to). Hold, when set, blocks the poisoned call until
// released so a test can stage a concurrent waiter deterministically.
type replacingFetcher struct {
	distributed.Transport
	poisoned atomic.Bool
	entered  chan struct{}
	hold     chan struct{}
}

func (f *replacingFetcher) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (distributed.RowBatch, error) {
	inner := f.Transport.(distributed.RowFetcher)
	batch, err := inner.FetchRows(ctx, graphSum, nodes)
	if err != nil || !f.poisoned.CompareAndSwap(true, false) {
		return batch, err
	}
	if f.entered != nil {
		close(f.entered)
	}
	if f.hold != nil {
		<-f.hold
	}
	batch.Content ^= 0xdeadbeef
	return batch, nil
}

func (f *replacingFetcher) OutDegrees(ctx context.Context) ([]int32, error) {
	return f.Transport.(distributed.RowFetcher).OutDegrees(ctx)
}

// TestSingleFlightRacingStripeReplacement drives the single-flight cache
// through a mid-fetch stripe replacement: the owning query's answer arrives
// from the wrong snapshot and fails validation (non-transiently — retrying a
// worker that answered from the wrong snapshot cannot help), while a second
// query already waiting on the in-flight slot must NOT inherit that failure:
// the failed slot leaves the cache, the waiter re-claims it with its own
// retry budget, and the restored stripe serves it the bit-exact row.
func TestSingleFlightRacingStripeReplacement(t *testing.T) {
	g := testgraphs.Cycle(12)
	ctx := context.Background()
	s, err := distributed.BuildStripe(g, 0, 1)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	rf := &replacingFetcher{
		Transport: distributed.NewLoopback(distributed.NewWorker(s)),
		entered:   make(chan struct{}),
		hold:      make(chan struct{}),
	}
	r, err := Connect(ctx, []distributed.Transport{rf}, &Options{Retries: 0})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	rf.poisoned.Store(true)

	const v = graph.NodeID(3)
	ownerErr := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ownerErr <- p.(*graph.RowFetchError)
				return
			}
			ownerErr <- nil
		}()
		r.Session(ctx).OutRow(v)
	}()
	<-rf.entered // the owner claimed the slot and its RPC is in flight

	// The waiter races the owner on the same row. It must block on the
	// in-flight slot now and recover on its own after the owner fails.
	waiter := r.Session(ctx)
	if _, e, state := r.cache.probe(cacheKey{content: r.content[0], node: v}); state != probeWait {
		t.Fatalf("second probe got state %d, want probeWait", state)
	} else {
		_ = e
	}
	type rowPair struct {
		to []graph.NodeID
		w  []float64
	}
	waiterRow := make(chan rowPair, 1)
	go func() {
		to, w := waiter.OutRow(v)
		waiterRow <- rowPair{to, w}
	}()

	close(rf.hold) // deliver the wrong-snapshot answer
	err = <-ownerErr
	if err == nil {
		t.Fatalf("owner's wrong-snapshot answer validated")
	}
	var rfe *graph.RowFetchError
	if !errors.As(err, &rfe) {
		t.Fatalf("owner failed with %T, want *graph.RowFetchError", err)
	}
	if distributed.IsTransient(err) {
		t.Errorf("a wrong-snapshot answer classified transient: %v", err)
	}

	got := <-waiterRow
	wantTo, wantW := g.OutCSR().Row(v)
	requireRowEqual(t, "waiter row after owner's failure", got.to, got.w, wantTo, wantW)

	// The failure must not be cached: a fresh read is a plain hit on the
	// waiter's completed entry, with no new RPC.
	rpcsBefore, _, _ := r.Stats()
	fresh := r.Session(ctx)
	fresh.OutRow(v)
	if st := fresh.Stats(); st.CacheHits != 1 || st.RPCs != 0 {
		t.Errorf("post-churn read: %+v, want one free cache hit", st)
	}
	if rpcs, _, _ := r.Stats(); rpcs != rpcsBefore {
		t.Errorf("post-churn read cost %d RPCs", rpcs-rpcsBefore)
	}
}

// downableRows is a transport whose row-serving RPCs can be turned off,
// failing transiently like a dead process would; the exact-path RPCs stay up
// so Connect always succeeds.
type downableRows struct {
	distributed.Transport
	down atomic.Bool
}

func (d *downableRows) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (distributed.RowBatch, error) {
	if d.down.Load() {
		return distributed.RowBatch{}, &distributed.TransientError{Err: fmt.Errorf("rows down")}
	}
	return d.Transport.(distributed.RowFetcher).FetchRows(ctx, graphSum, nodes)
}

func (d *downableRows) OutDegrees(ctx context.Context) ([]int32, error) {
	return d.Transport.(distributed.RowFetcher).OutDegrees(ctx)
}

// TestEvictionDuringFailover runs a row sweep through per-stripe replica
// groups over a cache far smaller than the graph, killing every preferred
// replica mid-sweep: every row must keep arriving bit-exact (served by the
// surviving replicas), the failover counters must move, and the cache must
// keep evicting under pressure the whole time — eviction and failover
// interleaving is exactly the window where a stale or leaked in-flight slot
// would hang a later query.
func TestEvictionDuringFailover(t *testing.T) {
	g := testgraphs.Cycle(12)
	ctx := context.Background()
	const workers = 2

	preferred := make([]*downableRows, workers)
	transports := make([]distributed.Transport, workers)
	for i := 0; i < workers; i++ {
		s, err := distributed.BuildStripe(g, i, workers)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		preferred[i] = &downableRows{Transport: distributed.NewLoopback(distributed.NewWorker(s))}
		backup := distributed.NewLoopback(distributed.NewWorker(s))
		transports[i] = distributed.NewReplicaSet(i, []distributed.Transport{preferred[i], backup}, 0)
	}
	// Capacity 3 on a 12-node graph: the sweep must evict constantly.
	r, err := Connect(ctx, transports, &Options{Cache: NewCache(3), Retries: 1, RetryBackoff: 1})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}

	out, in := g.OutCSR(), g.InCSR()
	sweep := func(sess *Session) {
		for v := 0; v < g.NumNodes(); v++ {
			gotC, gotW := sess.OutRow(graph.NodeID(v))
			wantC, wantW := out.Row(graph.NodeID(v))
			requireRowEqual(t, fmt.Sprintf("out row %d", v), gotC, gotW, wantC, wantW)
			gotC, gotW = sess.InRow(graph.NodeID(v))
			wantC, wantW = in.Row(graph.NodeID(v))
			requireRowEqual(t, fmt.Sprintf("in row %d", v), gotC, gotW, wantC, wantW)

			if v == g.NumNodes()/2 {
				for _, p := range preferred {
					p.down.Store(true)
				}
			}
		}
	}
	sess := r.Session(ctx)
	sweep(sess)
	// Second sweep entirely through the backups, still under eviction
	// pressure (capacity 3 guarantees almost nothing survived the first).
	sweep(r.Session(ctx))

	var failovers int64
	for _, tr := range transports {
		failovers += tr.(*distributed.ReplicaSet).Failovers()
	}
	if failovers == 0 {
		t.Errorf("no failovers despite every preferred replica going down mid-sweep")
	}
	if _, _, evictions := r.cache.Stats(); evictions == 0 {
		t.Errorf("no evictions despite capacity 3 under a %d-row sweep", 2*g.NumNodes())
	}
	if r.cache.Len() > r.cache.Capacity() {
		t.Errorf("cache holds %d rows over capacity %d", r.cache.Len(), r.cache.Capacity())
	}
}
