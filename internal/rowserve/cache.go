package rowserve

import (
	"sync"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// DefaultCacheRows is the default row-cache capacity. A cached row costs
// roughly 12 bytes per stored edge (both directions) plus ~100 bytes of
// bookkeeping, so the default tops out around tens of megabytes on typical
// degree distributions; docs/TUNING.md discusses sizing.
const DefaultCacheRows = 1 << 16

// cacheKey identifies a cached row by the content fingerprint of the stripe
// snapshot that served it, not by epoch. Commits that leave a stripe's rows
// untouched keep its content fingerprint, so those cached rows survive an
// epoch rollover for free; rows of a stripe the commit did change key under
// the new fingerprint, which makes the stale generation unreachable (the
// required invalidation) while queries still pinned to the old snapshot keep
// reading it until LRU pressure reclaims it.
type cacheKey struct {
	content uint32
	node    graph.NodeID
}

// cacheEntry is one row slot. Between claim and resolution it is "in flight":
// present in the map (so concurrent requests for the same row dedup onto it,
// the single-flight discipline) but absent from the LRU list (so it cannot be
// evicted under the fetching query). complete/fail publish row/err before
// closing done; waiters read them without a lock after the channel closes.
type cacheEntry struct {
	key        cacheKey
	prev, next *cacheEntry
	done       chan struct{}
	resolved   bool // guarded by Cache.mu; true after complete (not fail)
	row        distributed.RowData
	err        error
}

// probeState classifies one cache probe.
type probeState int

const (
	// probeHit: the row is cached; the probe returned it.
	probeHit probeState = iota
	// probeWait: another fetch of this row is in flight; wait on its entry.
	probeWait
	// probeOwned: the probe claimed the slot; the caller MUST resolve the
	// entry with complete or fail, or every later request for the row hangs.
	probeOwned
)

// Cache is the concurrency-safe LRU row cache behind RemoteCSR. One Cache is
// typically shared by every RemoteCSR an engine connects across epochs
// (content-fingerprint keys make sharing safe, see cacheKey); it is the
// coordinator-side "active set" of the paper's AP, bounded instead of
// unbounded.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*cacheEntry
	lru      cacheEntry // sentinel of the completed-entry LRU ring
	size     int        // completed entries in the ring

	hits, misses, evictions int64
}

// NewCache returns a cache holding up to capacity rows (DefaultCacheRows when
// capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheRows
	}
	c := &Cache{capacity: capacity, entries: make(map[cacheKey]*cacheEntry)}
	c.lru.prev, c.lru.next = &c.lru, &c.lru
	return c
}

// Capacity returns the configured row capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of completed rows currently cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Stats returns the cumulative hit, miss and eviction counts. A miss is
// counted when a probe claims the slot (one per fetched row), a hit when a
// probe returns a cached row; waits on an in-flight fetch count as hits (they
// cost no RPC).
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// probe looks the key up and returns the row on a hit, or the entry to wait
// on (probeWait) or to resolve (probeOwned).
func (c *Cache) probe(k cacheKey) (distributed.RowData, *cacheEntry, probeState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if e.resolved {
			c.hits++
			c.moveToFront(e)
			return e.row, e, probeHit
		}
		return distributed.RowData{}, e, probeWait
	}
	c.misses++
	e := &cacheEntry{key: k, done: make(chan struct{})}
	c.entries[k] = e
	return distributed.RowData{}, e, probeOwned
}

// complete publishes the fetched row on a claimed entry, inserts it into the
// LRU and evicts past capacity.
func (c *Cache) complete(e *cacheEntry, row distributed.RowData) {
	c.mu.Lock()
	e.row = row
	e.resolved = true
	c.pushFront(e)
	for c.size > c.capacity {
		tail := c.lru.prev
		c.unlink(tail)
		if c.entries[tail.key] == tail {
			delete(c.entries, tail.key)
		}
		c.evictions++
	}
	c.mu.Unlock()
	close(e.done)
}

// fail resolves a claimed entry with an error and removes it from the map, so
// the next request for the row retries the fetch instead of caching failure.
func (c *Cache) fail(e *cacheEntry, err error) {
	c.mu.Lock()
	e.err = err
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.done)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = &c.lru
	e.next = c.lru.next
	e.prev.next = e
	e.next.prev = e
	c.size++
}

func (c *Cache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	c.size--
}

func (c *Cache) moveToFront(e *cacheEntry) {
	c.unlink(e)
	c.pushFront(e)
}
