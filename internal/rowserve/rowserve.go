// Package rowserve is the online-distributed serving layer: it lets the
// pooled flat 2SBound searcher (internal/topk) run against a striped worker
// fleet by streaming CSR rows on demand instead of holding the whole graph.
// This is the paper's AP/GP architecture in its final form — the coordinator
// is the active processor, the workers are the graph processors, and the
// coordinator's working set is O(rows touched), never O(edges).
//
// The pieces: RemoteCSR is one epoch-pinned connection to the fleet,
// validated the same way the exact-path Coordinator validates its workers and
// holding only dense per-node metadata (out-sums and out-degrees, the two
// arrays the searcher reads for arbitrary neighbors). Cache is the shared LRU
// row store with single-flight dedup. Session is one query's window onto a
// RemoteCSR: it implements graph.Rows (and graph.RowPrefetcher, which
// coalesces each expansion wave's missing rows into one batched /v1/rows RPC
// per stripe) and carries the query context and per-query counters.
//
// Because every row arrives bit-exact from the stripe that owns it and the
// searcher's arithmetic never changes, 2SBound over a RemoteCSR returns
// results bit-identical to the local flat path for any worker count.
package rowserve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// Options tune a RemoteCSR connection; the zero value gives defaults.
type Options struct {
	// Retries is how many times a failed transient row fetch is retried on
	// the same worker before the query fails (default 2).
	Retries int
	// RetryBackoff is the base delay before a retry; attempt k waits
	// k*RetryBackoff (default 50ms).
	RetryBackoff time.Duration
	// Cache is the row cache to serve from. Sharing one Cache across the
	// RemoteCSRs an engine connects over successive epochs is what carries
	// unchanged stripes' rows across an Engine.Apply rollover; nil creates a
	// private cache with DefaultCacheRows capacity.
	Cache *Cache
}

func (o Options) withDefaults() Options {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.Cache == nil {
		o.Cache = NewCache(0)
	}
	return o
}

// RemoteCSR is an epoch-pinned row-serving view of a striped worker fleet.
// Connect validates the fleet's topology exactly like the exact-path
// coordinator, then records each stripe's content fingerprint and assembles
// the dense out-sum and out-degree arrays; everything else is fetched row by
// row through Sessions. A RemoteCSR stays correct after the fleet rolls
// forward — its row fetches pin the connect-time graph fingerprint, so they
// either keep being served from cache or fail loudly — and it does not own
// its transports (the engine that dialed the workers closes them).
type RemoteCSR struct {
	fetchers []distributed.RowFetcher
	count    int
	n        int
	graphSum uint32
	epoch    uint64
	content  []uint32 // per-stripe payload fingerprint, the cache key space
	outSum   []float64
	outDeg   []int32
	cache    *Cache
	opts     Options

	rpcs, retries, fetched atomic.Int64
}

// Connect dials the fleet: transports[i] must serve stripe i of
// len(transports) and implement distributed.RowFetcher (both built-in
// transports do). opts may be nil for defaults.
func Connect(ctx context.Context, transports []distributed.Transport, opts *Options) (*RemoteCSR, error) {
	if len(transports) == 0 {
		return nil, fmt.Errorf("rowserve: need at least one worker")
	}
	r := &RemoteCSR{count: len(transports)}
	if opts != nil {
		r.opts = *opts
	}
	r.opts = r.opts.withDefaults()
	r.cache = r.opts.Cache

	r.fetchers = make([]distributed.RowFetcher, len(transports))
	for i, t := range transports {
		f, ok := t.(distributed.RowFetcher)
		if !ok {
			return nil, fmt.Errorf("rowserve: worker %d transport %T does not serve the row-fetch RPC", i, t)
		}
		r.fetchers[i] = f
	}

	// Validate the advertised topology, stripe by stripe, with the same
	// checks the exact-path coordinator performs: one inconsistent worker
	// fails the connect, not a later query.
	infos := make([]distributed.WorkerInfo, len(transports))
	rows := make([]int, len(transports))
	for i, t := range transports {
		info, err := retry(ctx, r, i, func(ctx context.Context) (distributed.WorkerInfo, error) {
			return t.Info(ctx)
		})
		if err != nil {
			return nil, err
		}
		infos[i] = info
	}
	for i, info := range infos {
		if info.Protocol != distributed.ProtocolVersion {
			return nil, fmt.Errorf("rowserve: worker %d speaks protocol %d, coordinator speaks %d", i, info.Protocol, distributed.ProtocolVersion)
		}
		if info.Index != i || info.Count != r.count {
			return nil, fmt.Errorf("rowserve: worker %d serves stripe %d of %d, want %d of %d",
				i, info.Index, info.Count, i, r.count)
		}
		if i == 0 {
			r.n = info.NumNodes
			r.graphSum = info.Graph
			r.epoch = info.Epoch
		} else {
			if info.NumNodes != r.n {
				return nil, fmt.Errorf("rowserve: worker %d serves a %d-node graph, worker 0 a %d-node one", i, info.NumNodes, r.n)
			}
			if info.Graph != r.graphSum {
				return nil, fmt.Errorf("rowserve: worker %d was striped from a different graph (fingerprint %08x, worker 0 has %08x)",
					i, info.Graph, r.graphSum)
			}
			if info.Epoch != r.epoch {
				return nil, fmt.Errorf("rowserve: worker %d serves epoch %d, worker 0 epoch %d (redeploy in progress?)",
					i, info.Epoch, r.epoch)
			}
		}
		wantRows := 0
		if r.n > i {
			wantRows = (r.n - i + r.count - 1) / r.count
		}
		if info.Rows != wantRows {
			return nil, fmt.Errorf("rowserve: worker %d advertises %d rows, stripe %d of %d over %d nodes owns %d",
				i, info.Rows, i, r.count, r.n, wantRows)
		}
		rows[i] = info.Rows
	}
	if r.n <= 0 {
		return nil, fmt.Errorf("rowserve: workers serve an empty graph")
	}
	r.content = make([]uint32, r.count)
	for i, info := range infos {
		r.content[i] = info.Content
	}

	// The two dense per-node arrays: O(n) floats+ints of metadata, the same
	// order as the searcher's own scratch arrays — NOT the CSR adjacency,
	// which stays on the workers.
	r.outSum = make([]float64, r.n)
	r.outDeg = make([]int32, r.n)
	for i := range transports {
		sums, err := retry(ctx, r, i, func(ctx context.Context) ([]float64, error) {
			return transports[i].OutSums(ctx)
		})
		if err != nil {
			return nil, err
		}
		degs, err := retry(ctx, r, i, func(ctx context.Context) ([]int32, error) {
			return r.fetchers[i].OutDegrees(ctx)
		})
		if err != nil {
			return nil, err
		}
		if len(sums) != rows[i] || len(degs) != rows[i] {
			return nil, fmt.Errorf("rowserve: worker %d returned %d out-sums and %d out-degrees for %d rows",
				i, len(sums), len(degs), rows[i])
		}
		for rr := range sums {
			r.outSum[i+rr*r.count] = sums[rr]
			r.outDeg[i+rr*r.count] = degs[rr]
		}
	}
	return r, nil
}

// NumNodes returns the node count of the striped graph.
func (r *RemoteCSR) NumNodes() int { return r.n }

// GraphFingerprint returns the fingerprint of the graph snapshot this view is
// pinned to.
func (r *RemoteCSR) GraphFingerprint() uint32 { return r.graphSum }

// Epoch returns the snapshot version this view is pinned to.
func (r *RemoteCSR) Epoch() uint64 { return r.epoch }

// Workers returns the stripe count.
func (r *RemoteCSR) Workers() int { return r.count }

// Cache returns the row cache this view serves from.
func (r *RemoteCSR) Cache() *Cache { return r.cache }

// Stats reports the cumulative row-fetch RPC count, how many of those were
// retries after a transient failure, and the total rows fetched.
func (r *RemoteCSR) Stats() (rpcs, retries, fetched int64) {
	return r.rpcs.Load(), r.retries.Load(), r.fetched.Load()
}

// retry runs one idempotent worker call with the connection's retry policy —
// the same linear-backoff discipline as the exact-path coordinator, with the
// failing stripe named in the error so operators know which worker to look
// at. Transient errors keep their classification in the chain.
func retry[T any](ctx context.Context, r *RemoteCSR, stripe int, f func(ctx context.Context) (T, error)) (T, error) {
	var lastErr error
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			case <-time.After(time.Duration(attempt) * r.opts.RetryBackoff):
			}
		}
		r.rpcs.Add(1)
		out, err := f(ctx)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !distributed.IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	var zero T
	return zero, fmt.Errorf("rowserve: stripe %d: %w", stripe, lastErr)
}

// QueryStats is one Session's row-serving footprint, surfaced to clients via
// the engine Response's debug field: together the numbers prove the
// O(touched) property per query (Fetched never exceeds the rows the searcher
// touched, and a fully cached re-run shows RPCs == 0).
type QueryStats struct {
	// Fetched is the number of rows this query pulled over the network.
	Fetched int64
	// RPCs is the number of row-fetch calls issued (including retries).
	RPCs int64
	// CacheHits and CacheMisses count this query's row-cache probes.
	CacheHits   int64
	CacheMisses int64
}

// Session is one query's window onto a RemoteCSR: it implements graph.Rows
// (the flat searcher's access pattern) and graph.RowPrefetcher (wave
// coalescing), carries the query's context — graph.Rows has none — and
// accumulates per-query stats. A Session is owned by the single goroutine
// running the query and must not be shared; create one per query.
//
// Row reads have no error channel, so a fetch that still fails after the
// retry budget panics with *graph.RowFetchError; topk.TopKRows recovers it
// into an ordinary error.
type Session struct {
	r     *RemoteCSR
	ctx   context.Context
	stats QueryStats

	// Reusable per-wave buffers: the wave's missing nodes and their claimed
	// cache entries, grouped by owning stripe.
	waveNodes   [][]graph.NodeID
	waveEntries [][]*cacheEntry
}

// Session returns a new per-query Session reading through ctx.
func (r *RemoteCSR) Session(ctx context.Context) *Session {
	return &Session{
		r:           r,
		ctx:         ctx,
		waveNodes:   make([][]graph.NodeID, r.count),
		waveEntries: make([][]*cacheEntry, r.count),
	}
}

// Stats returns the session's row-serving counters so far.
func (s *Session) Stats() QueryStats { return s.stats }

// NumNodes implements graph.Rows.
func (s *Session) NumNodes() int { return s.r.n }

// OutDegree implements graph.Rows from the dense connect-time array.
func (s *Session) OutDegree(v graph.NodeID) int { return int(s.r.outDeg[v]) }

// OutSum implements graph.Rows from the dense connect-time array.
func (s *Session) OutSum(v graph.NodeID) float64 { return s.r.outSum[v] }

// OutRow implements graph.Rows. The slices alias the cached row; they are
// valid while the row stays cached and must not be mutated.
func (s *Session) OutRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	row := s.row(v)
	return row.OutTo, row.OutW
}

// InRow implements graph.Rows, same contract as OutRow.
func (s *Session) InRow(v graph.NodeID) ([]graph.NodeID, []float64) {
	row := s.row(v)
	return row.InFrom, row.InW
}

// row returns v's cached row, fetching it from the owning stripe on a miss
// and waiting on a concurrent fetch when one is already in flight.
func (s *Session) row(v graph.NodeID) distributed.RowData {
	stripe := int(v) % s.r.count
	for {
		row, e, state := s.r.cache.probe(cacheKey{content: s.r.content[stripe], node: v})
		switch state {
		case probeHit:
			s.stats.CacheHits++
			return row
		case probeWait:
			// Another query is fetching this row; its completion is this
			// session's hit (no RPC of our own).
			select {
			case <-e.done:
			case <-s.ctx.Done():
				panic(&graph.RowFetchError{Err: s.ctx.Err()})
			}
			if e.err == nil {
				s.stats.CacheHits++
				return e.row
			}
			// The owning query's fetch failed — possibly its own
			// cancellation, which says nothing about this query. The failed
			// slot was removed from the cache, so loop and retry with this
			// session's own retry budget (unless we were cancelled too).
			if s.ctx.Err() != nil {
				panic(&graph.RowFetchError{Err: s.ctx.Err()})
			}
		default: // probeOwned
			s.stats.CacheMisses++
			if err := s.fetch(stripe, []graph.NodeID{v}, []*cacheEntry{e}); err != nil {
				panic(&graph.RowFetchError{Err: err})
			}
			return e.row
		}
	}
}

// Prefetch implements graph.RowPrefetcher: it claims every missing row of the
// wave and fetches each stripe's share in one batched RPC, stripes in
// parallel. Rows already cached or already in flight are skipped — in-flight
// fetches complete before the searcher reads the row, because the wave's
// subsequent OutRow/InRow calls wait on them. Duplicate nodes in the wave are
// fine. A fetch that fails after the retry budget panics with
// *graph.RowFetchError, like the read path.
func (s *Session) Prefetch(nodes []graph.NodeID) {
	if len(nodes) == 0 {
		return
	}
	for i := range s.waveNodes {
		s.waveNodes[i] = s.waveNodes[i][:0]
		s.waveEntries[i] = s.waveEntries[i][:0]
	}
	stripes := 0
	for _, v := range nodes {
		stripe := int(v) % s.r.count
		_, e, state := s.r.cache.probe(cacheKey{content: s.r.content[stripe], node: v})
		switch state {
		case probeHit:
			s.stats.CacheHits++
		case probeOwned:
			s.stats.CacheMisses++
			if len(s.waveNodes[stripe]) == 0 {
				stripes++
			}
			s.waveNodes[stripe] = append(s.waveNodes[stripe], v)
			s.waveEntries[stripe] = append(s.waveEntries[stripe], e)
		}
		// probeWait: another query's in-flight fetch covers it; skip.
	}
	if stripes == 0 {
		return
	}
	if stripes == 1 {
		for stripe := range s.waveNodes {
			if len(s.waveNodes[stripe]) > 0 {
				if err := s.fetch(stripe, s.waveNodes[stripe], s.waveEntries[stripe]); err != nil {
					panic(&graph.RowFetchError{Err: err})
				}
			}
		}
		return
	}
	var wg sync.WaitGroup
	errs := make([]error, s.r.count)
	for stripe := range s.waveNodes {
		if len(s.waveNodes[stripe]) == 0 {
			continue
		}
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			errs[stripe] = s.fetch(stripe, s.waveNodes[stripe], s.waveEntries[stripe])
		}(stripe)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(&graph.RowFetchError{Err: err})
		}
	}
}

// fetch pulls the given rows from one stripe in a single RPC (with retries),
// validates that the fleet still serves the pinned snapshot, and resolves
// every claimed entry — completed on success, failed on error, so no future
// request ever hangs on a leaked in-flight slot. Stats updates are atomic
// because Prefetch runs one fetch per stripe concurrently.
func (s *Session) fetch(stripe int, nodes []graph.NodeID, entries []*cacheEntry) error {
	batch, err := retry(s.ctx, s.r, stripe, func(ctx context.Context) (distributed.RowBatch, error) {
		atomic.AddInt64(&s.stats.RPCs, 1)
		return s.r.fetchers[stripe].FetchRows(ctx, s.r.graphSum, nodes)
	})
	if err == nil {
		err = s.validate(stripe, nodes, batch)
	}
	if err != nil {
		for _, e := range entries {
			s.r.cache.fail(e, err)
		}
		return err
	}
	for i, e := range entries {
		s.r.cache.complete(e, batch.Rows[i])
	}
	atomic.AddInt64(&s.stats.Fetched, int64(len(nodes)))
	s.r.fetched.Add(int64(len(nodes)))
	return nil
}

// validate cross-checks a batch against the pinned snapshot and the request;
// any mismatch is a protocol violation (non-transient) because retrying a
// worker that answered from the wrong snapshot cannot help.
func (s *Session) validate(stripe int, nodes []graph.NodeID, batch distributed.RowBatch) error {
	if batch.Epoch != s.r.epoch || batch.Content != s.r.content[stripe] {
		return fmt.Errorf("rowserve: stripe %d answered from epoch %d content %08x, pinned to epoch %d content %08x",
			stripe, batch.Epoch, batch.Content, s.r.epoch, s.r.content[stripe])
	}
	if len(batch.Rows) != len(nodes) {
		return fmt.Errorf("rowserve: stripe %d returned %d rows for %d requested", stripe, len(batch.Rows), len(nodes))
	}
	for i, row := range batch.Rows {
		if row.Node != nodes[i] {
			return fmt.Errorf("rowserve: stripe %d returned row %d at position %d, requested %d", stripe, row.Node, i, nodes[i])
		}
	}
	return nil
}
