package rowserve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

// fleet stripes g across n in-process workers; both built-in transports
// implement RowFetcher, so loopback exercises the full rowserve stack minus
// the wire codec (covered in internal/distributed).
func fleet(t testing.TB, g *graph.Graph, n int) []distributed.Transport {
	t.Helper()
	ts := make([]distributed.Transport, n)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			t.Fatalf("BuildStripe(%d,%d): %v", i, n, err)
		}
		ts[i] = distributed.NewLoopback(distributed.NewWorker(s))
	}
	return ts
}

func rowGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"toy":   testgraphs.NewToy().Graph,
		"line":  testgraphs.Line(9),
		"cycle": testgraphs.Cycle(12),
		"star":  testgraphs.Star(7),
	}
}

func TestConnectBuildsDenseMetadata(t *testing.T) {
	ctx := context.Background()
	for name, g := range rowGraphs() {
		for _, workers := range []int{1, 2, 3} {
			r, err := Connect(ctx, fleet(t, g, workers), nil)
			if err != nil {
				t.Fatalf("%s w%d: Connect: %v", name, workers, err)
			}
			if r.NumNodes() != g.NumNodes() || r.Workers() != workers {
				t.Fatalf("%s w%d: view is %d nodes / %d workers", name, workers, r.NumNodes(), r.Workers())
			}
			if r.GraphFingerprint() != graph.GraphFingerprint(g) || r.Epoch() != g.Epoch() {
				t.Fatalf("%s w%d: pinned identity %08x/%d, graph has %08x/%d",
					name, workers, r.GraphFingerprint(), r.Epoch(), graph.GraphFingerprint(g), g.Epoch())
			}
			// The dense metadata must be usable without any row fetch.
			sess := r.Session(ctx)
			out := g.OutCSR()
			for v := 0; v < g.NumNodes(); v++ {
				deg := int(out.RowPtr[v+1] - out.RowPtr[v])
				if sess.OutDegree(graph.NodeID(v)) != deg {
					t.Fatalf("%s w%d node %d: OutDegree %d, want %d", name, workers, v, sess.OutDegree(graph.NodeID(v)), deg)
				}
				if sess.OutSum(graph.NodeID(v)) != out.Sum[v] {
					t.Fatalf("%s w%d node %d: OutSum %g, want %g", name, workers, v, sess.OutSum(graph.NodeID(v)), out.Sum[v])
				}
			}
			if rpcs, _, fetched := r.Stats(); fetched != 0 {
				t.Fatalf("%s w%d: metadata sweep fetched %d rows over %d RPCs", name, workers, fetched, rpcs)
			}
		}
	}
}

func TestConnectRejectsBadFleet(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.NewToy().Graph

	if _, err := Connect(ctx, nil, nil); err == nil {
		t.Errorf("zero workers accepted")
	}
	ts := fleet(t, g, 2)
	if _, err := Connect(ctx, []distributed.Transport{ts[1], ts[0]}, nil); err == nil {
		t.Errorf("swapped stripes accepted")
	}
	other := fleet(t, testgraphs.Cycle(g.NumNodes()), 2)
	if _, err := Connect(ctx, []distributed.Transport{ts[0], other[1]}, nil); err == nil {
		t.Errorf("mixed graphs of equal size accepted")
	}
}

// TestSessionRowsMatchLocal is the core guarantee: every row a session serves
// is bit-identical to the local CSR row, for any worker count, and a full
// re-read is answered entirely from cache.
func TestSessionRowsMatchLocal(t *testing.T) {
	ctx := context.Background()
	for name, g := range rowGraphs() {
		for _, workers := range []int{1, 2, 3} {
			r, err := Connect(ctx, fleet(t, g, workers), nil)
			if err != nil {
				t.Fatalf("%s w%d: Connect: %v", name, workers, err)
			}
			sess := r.Session(ctx)
			out, in := g.OutCSR(), g.InCSR()
			sweep := func() {
				for v := 0; v < g.NumNodes(); v++ {
					gotC, gotW := sess.OutRow(graph.NodeID(v))
					wantC, wantW := out.Row(graph.NodeID(v))
					requireRowEqual(t, fmt.Sprintf("%s w%d out row %d", name, workers, v), gotC, gotW, wantC, wantW)
					gotC, gotW = sess.InRow(graph.NodeID(v))
					wantC, wantW = in.Row(graph.NodeID(v))
					requireRowEqual(t, fmt.Sprintf("%s w%d in row %d", name, workers, v), gotC, gotW, wantC, wantW)
				}
			}
			sweep()
			st := sess.Stats()
			n := int64(g.NumNodes())
			if st.Fetched != n || st.CacheMisses != n {
				t.Fatalf("%s w%d: first sweep fetched %d rows / %d misses, want %d both", name, workers, st.Fetched, st.CacheMisses, n)
			}
			rpcsAfter, _, _ := r.Stats()
			sweep()
			st = sess.Stats()
			if st.Fetched != n {
				t.Fatalf("%s w%d: re-read fetched %d more rows", name, workers, st.Fetched-n)
			}
			if rpcs, _, _ := r.Stats(); rpcs != rpcsAfter {
				t.Fatalf("%s w%d: re-read issued %d RPCs", name, workers, rpcs-rpcsAfter)
			}
		}
	}
}

func requireRowEqual(t *testing.T, label string, gotC []graph.NodeID, gotW []float64, wantC []graph.NodeID, wantW []float64) {
	t.Helper()
	if len(gotC) != len(wantC) || len(gotW) != len(wantW) {
		t.Fatalf("%s: %d/%d entries, want %d/%d", label, len(gotC), len(gotW), len(wantC), len(wantW))
	}
	for i := range wantC {
		if gotC[i] != wantC[i] || gotW[i] != wantW[i] {
			t.Fatalf("%s entry %d: (%d,%g), want (%d,%g)", label, i, gotC[i], gotW[i], wantC[i], wantW[i])
		}
	}
}

// TestPrefetchCoalescesWaves pins the batching contract: prefetching a wave
// spanning every stripe costs exactly one RPC per stripe, and the rows are
// then served without further fetches.
func TestPrefetchCoalescesWaves(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.Cycle(12)
	const workers = 3
	r, err := Connect(ctx, fleet(t, g, workers), nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	base, _, _ := r.Stats()
	sess := r.Session(ctx)
	wave := make([]graph.NodeID, g.NumNodes())
	for v := range wave {
		wave[v] = graph.NodeID(v)
	}
	wave = append(wave, wave[0]) // duplicates must be fine
	sess.Prefetch(wave)
	if rpcs, _, fetched := r.Stats(); rpcs-base != workers || fetched != int64(g.NumNodes()) {
		t.Fatalf("wave cost %d RPCs / %d rows, want %d RPCs / %d rows", rpcs-base, fetched, workers, g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		sess.OutRow(graph.NodeID(v))
	}
	if rpcs, _, _ := r.Stats(); rpcs-base != workers {
		t.Fatalf("reads after the wave issued %d extra RPCs", rpcs-base-workers)
	}
	st := sess.Stats()
	if st.CacheMisses != int64(g.NumNodes()) || st.CacheHits != int64(g.NumNodes()) {
		t.Fatalf("wave stats: %d misses / %d hits, want %d / %d", st.CacheMisses, st.CacheHits, g.NumNodes(), g.NumNodes())
	}
	// An all-cached wave is free.
	sess.Prefetch(wave)
	if rpcs, _, _ := r.Stats(); rpcs-base != workers {
		t.Fatalf("warm wave issued %d extra RPCs", rpcs-base-workers)
	}
}

// TestCacheEvictionKeepsServing squeezes the whole graph through a 2-row
// cache: rows must stay correct (re-fetched on demand), the cache must never
// exceed its capacity, and evictions must be counted.
func TestCacheEvictionKeepsServing(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.NewToy().Graph
	cache := NewCache(2)
	r, err := Connect(ctx, fleet(t, g, 2), &Options{Cache: cache})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	sess := r.Session(ctx)
	out := g.OutCSR()
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < g.NumNodes(); v++ {
			gotC, gotW := sess.OutRow(graph.NodeID(v))
			wantC, wantW := out.Row(graph.NodeID(v))
			requireRowEqual(t, fmt.Sprintf("pass %d row %d", pass, v), gotC, gotW, wantC, wantW)
			if cache.Len() > cache.Capacity() {
				t.Fatalf("cache holds %d rows, capacity %d", cache.Len(), cache.Capacity())
			}
		}
	}
	if _, _, evictions := cache.Stats(); evictions == 0 {
		t.Fatalf("no evictions under a 2-row cache on a %d-node graph", g.NumNodes())
	}
}

// TestCacheSingleFlight hammers one cold row from many goroutines: exactly one
// fetch may reach the workers, everyone else waits on it.
func TestCacheSingleFlight(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.Star(7)
	r, err := Connect(ctx, fleet(t, g, 2), nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	hubC, _ := g.OutCSR().Row(0)
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sess := r.Session(ctx)
			cols, _ := sess.OutRow(0)
			if len(cols) != len(hubC) {
				t.Errorf("star hub row has %d out-edges, want %d", len(cols), len(hubC))
			}
		}()
	}
	close(start)
	wg.Wait()
	if _, _, fetched := r.Stats(); fetched != 1 {
		t.Fatalf("%d goroutines fetched the row %d times, want 1", goroutines, fetched)
	}
}

// TestCacheFailureIsNotCached fails a claimed entry and checks the next probe
// claims the slot again instead of inheriting the failure.
func TestCacheFailureIsNotCached(t *testing.T) {
	c := NewCache(4)
	k := cacheKey{content: 1, node: 2}
	_, e, state := c.probe(k)
	if state != probeOwned {
		t.Fatalf("first probe: state %v, want owned", state)
	}
	c.fail(e, errors.New("boom"))
	_, e2, state := c.probe(k)
	if state != probeOwned {
		t.Fatalf("probe after failure: state %v, want owned (failure must not be cached)", state)
	}
	c.complete(e2, distributed.RowData{Node: 2})
	if row, _, state := c.probe(k); state != probeHit || row.Node != 2 {
		t.Fatalf("probe after completion: state %v row %v", state, row)
	}
}

// flakyFetcher wraps a transport and fails the first n FetchRows calls with a
// transient error, simulating a worker restarting mid-query.
type flakyFetcher struct {
	distributed.Transport
	fails int
}

func (f *flakyFetcher) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (distributed.RowBatch, error) {
	if f.fails > 0 {
		f.fails--
		return distributed.RowBatch{}, &distributed.TransientError{Err: errors.New("worker restarting")}
	}
	return f.Transport.(distributed.RowFetcher).FetchRows(ctx, graphSum, nodes)
}

func (f *flakyFetcher) OutDegrees(ctx context.Context) ([]int32, error) {
	return f.Transport.(distributed.RowFetcher).OutDegrees(ctx)
}

// TestTransientFetchRetried pins the chaos contract on the row path: a worker
// dying under a query is retried within the budget and the query succeeds;
// beyond the budget the query fails with a classified transient error naming
// the stripe, instead of hanging.
func TestTransientFetchRetried(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.Cycle(10)
	ts := fleet(t, g, 2)
	flaky := &flakyFetcher{Transport: ts[1], fails: 2}
	ts[1] = flaky
	r, err := Connect(ctx, ts, &Options{Retries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	sess := r.Session(ctx)
	cols, _ := sess.OutRow(1) // stripe 1 owns node 1
	wantC, _ := g.OutCSR().Row(1)
	if len(cols) != len(wantC) {
		t.Fatalf("retried row has %d entries, want %d", len(cols), len(wantC))
	}
	if _, retries, _ := r.Stats(); retries < 2 {
		t.Fatalf("flaky fetch recorded %d retries, want >= 2", retries)
	}

	// Beyond the budget: the panic must carry a transient, stripe-attributed
	// error for topk.TopKRows to surface.
	flaky.fails = 1 << 30
	func() {
		defer func() {
			fe, ok := recover().(*graph.RowFetchError)
			if !ok {
				t.Fatalf("persistent failure did not panic with RowFetchError")
			}
			if !distributed.IsTransient(fe.Err) {
				t.Errorf("persistent worker failure not classified transient: %v", fe.Err)
			}
			if !strings.Contains(fe.Err.Error(), "stripe 1") {
				t.Errorf("error does not name the failing stripe: %v", fe.Err)
			}
		}()
		sess2 := r.Session(ctx)
		sess2.OutRow(3) // stripe 1 owns node 3, not yet cached
	}()
}

// TestCancelledSessionPanicsCleanly pins the context path: a session whose
// context is dead fails its next fetch with the context error.
func TestCancelledSessionPanicsCleanly(t *testing.T) {
	g := testgraphs.Line(9)
	r, err := Connect(context.Background(), fleet(t, g, 2), nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer func() {
		fe, ok := recover().(*graph.RowFetchError)
		if !ok || !errors.Is(fe.Err, context.Canceled) {
			t.Fatalf("cancelled fetch recovered %v, want RowFetchError(context.Canceled)", fe)
		}
	}()
	r.Session(ctx).OutRow(0)
}

// TestStaleFleetFailsLoudly replaces the workers' stripes with another
// graph's and checks an uncached fetch on the old view fails with the pinned
// fingerprint instead of mixing snapshots, while cached rows keep serving.
func TestStaleFleetFailsLoudly(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.Cycle(12)
	const n = 2
	workers := make([]*distributed.Worker, n)
	ts := make([]distributed.Transport, n)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		workers[i] = distributed.NewWorker(s)
		ts[i] = distributed.NewLoopback(workers[i])
	}
	r, err := Connect(ctx, ts, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	sess := r.Session(ctx)
	sess.OutRow(0) // cache one row of stripe 0

	// The fleet moves on to a different graph (same node count).
	other := testgraphs.Star(g.NumNodes() - 1)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(other, i, n)
		if err != nil {
			t.Fatalf("BuildStripe(other): %v", err)
		}
		workers[i].SetStripe(s)
	}

	// Cached rows of the old snapshot keep serving the pinned view.
	if cols, _ := r.Session(ctx).OutRow(0); len(cols) != 1 {
		t.Fatalf("cached cycle row has %d out-edges, want 1", len(cols))
	}
	// An uncached row must fail loudly, not return the impostor's adjacency.
	func() {
		defer func() {
			fe, ok := recover().(*graph.RowFetchError)
			if !ok {
				t.Fatalf("stale fetch did not panic with RowFetchError")
			}
			if distributed.IsTransient(fe.Err) {
				t.Errorf("stripe replacement classified transient (would be retried forever): %v", fe.Err)
			}
		}()
		r.Session(ctx).OutRow(2)
	}()
}
