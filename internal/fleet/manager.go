package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// Dialer opens a transport to the member at addr, bound to one stripe.
type Dialer func(addr string, stripe int) distributed.Transport

// ManagerOptions tune a fleet Manager.
type ManagerOptions struct {
	// Stripes is the stripe count of the deployment (required, fixed for the
	// manager's lifetime; every graph snapshot is cut Stripes ways).
	Stripes int
	// Replication is the replica count per stripe (default 2). Fewer live
	// members than Replication degrades gracefully.
	Replication int
	// HedgeDelay arms hedged row fetches on the replica groups (see
	// distributed.NewReplicaSet); zero disables hedging.
	HedgeDelay time.Duration
	// Dial opens member transports (default: the gpserver HTTP protocol).
	Dial Dialer
	// Table tunes the membership table's liveness thresholds.
	Table Options
}

// ReconcileStats reports what one reconciliation had to move.
type ReconcileStats struct {
	// Shipped counts full stripe payloads sent over the wire.
	Shipped int
	// Retagged counts members converged with an identity-rebind RPC only.
	Retagged int
	// Unchanged counts members that already served the exact stripe.
	Unchanged int
	// Removed counts stripes uninstalled from members that lost them.
	Removed int
}

// Manager is the coordinator-side fleet brain: it owns the membership table,
// computes placement over the live members, reconciles what each member
// serves, and maintains one ReplicaSet per stripe whose replica lists it
// swaps as placement moves. The ReplicaSets are stable objects — hand
// Transports() to an Engine once; reconciliations update them in place and
// in-flight queries fail over naturally.
type Manager struct {
	opts  ManagerOptions
	table *Table

	mu     sync.Mutex
	groups []*distributed.ReplicaSet
	// conns caches member transports: member ID → stripe → transport.
	conns map[string]map[int]distributed.Transport
	// connAddr remembers the address each member's conns were dialed at, so
	// a member re-registering elsewhere is re-dialed.
	connAddr map[string]string
	// assigned is the placement last applied: member ID → stripe set.
	assigned map[string]map[int]bool
}

// NewManager returns a Manager with an empty membership table; workers
// register (directly via Table, or through the registration HTTP endpoint)
// and a Reconcile cuts and places the stripes.
func NewManager(opts ManagerOptions) (*Manager, error) {
	if opts.Stripes <= 0 {
		return nil, fmt.Errorf("fleet: need a positive stripe count, got %d", opts.Stripes)
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string, stripe int) distributed.Transport {
			return distributed.NewHTTPTransport(addr, nil).ForStripe(stripe)
		}
	}
	m := &Manager{
		opts:     opts,
		table:    NewTable(opts.Table),
		groups:   make([]*distributed.ReplicaSet, opts.Stripes),
		conns:    make(map[string]map[int]distributed.Transport),
		connAddr: make(map[string]string),
		assigned: make(map[string]map[int]bool),
	}
	for i := range m.groups {
		m.groups[i] = distributed.NewReplicaSet(i, nil, opts.HedgeDelay)
	}
	return m, nil
}

// Table returns the membership table (registration, heartbeats, ticks).
func (m *Manager) Table() *Table { return m.table }

// Stripes returns the deployment's stripe count.
func (m *Manager) Stripes() int { return m.opts.Stripes }

// Replication returns the configured replica count per stripe.
func (m *Manager) Replication() int { return m.opts.Replication }

// Transports returns the per-stripe replica groups as coordinator
// transports, in stripe order. The slice's elements are stable across
// reconciliations.
func (m *Manager) Transports() []distributed.Transport {
	out := make([]distributed.Transport, len(m.groups))
	for i, g := range m.groups {
		out[i] = g
	}
	return out
}

// Failovers sums the replica groups' failover counters; Hedges their fired
// hedges.
func (m *Manager) Failovers() (failovers, hedges int64) {
	for _, g := range m.groups {
		failovers += g.Failovers()
		hedges += g.Hedges()
	}
	return failovers, hedges
}

// ErrNoMembers reports a reconcile with nothing to place on.
var ErrNoMembers = errors.New("fleet: no placeable members registered")

// conn returns the cached transport for (member, stripe), dialing on demand
// and re-dialing when the member moved address. Caller holds m.mu.
func (m *Manager) conn(id, addr string, stripe int) distributed.Transport {
	if m.connAddr[id] != addr {
		m.conns[id] = nil
		m.connAddr[id] = addr
	}
	byStripe := m.conns[id]
	if byStripe == nil {
		byStripe = make(map[int]distributed.Transport)
		m.conns[id] = byStripe
	}
	t := byStripe[stripe]
	if t == nil {
		t = m.opts.Dial(addr, stripe)
		byStripe[stripe] = t
	}
	return t
}

// Reconcile converges the fleet onto g: placement is computed over the
// placeable members, each (stripe, member) pair is brought up to date with
// the cheapest sufficient RPC (nothing / retag / full ship — see
// distributed.EnsureStripe), members that lost a stripe drop it, and the
// replica groups' lists are swapped to the new placement. It is the fleet
// analogue of RedeployStripes and what Engine.Apply calls on epoch commits.
//
// A member that fails its ship is left out of its group's replica list for
// this round (queries route around it); the reconcile only errors when some
// stripe converged on zero members, since queries against that stripe cannot
// succeed at all.
func (m *Manager) Reconcile(ctx context.Context, g *graph.Graph) (ReconcileStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st ReconcileStats

	members := m.table.Placeable()
	if len(members) == 0 {
		return st, &distributed.TransientError{Err: ErrNoMembers}
	}
	ids := make([]string, len(members))
	addr := make(map[string]string, len(members))
	for i, mem := range members {
		ids[i] = mem.ID
		addr[mem.ID] = mem.Addr
	}
	placement := Place(m.opts.Stripes, m.opts.Replication, ids)

	newAssigned := make(map[string]map[int]bool, len(members))
	var firstErr error
	for i, group := range placement {
		d, err := graph.BuildStripeData(g, i, m.opts.Stripes)
		if err != nil {
			return st, err
		}
		s, err := distributed.StripeFromData(d)
		if err != nil {
			return st, err
		}
		var replicas []distributed.Transport
		for _, id := range group {
			t := m.conn(id, addr[id], i)
			act, err := distributed.EnsureStripe(ctx, t, s)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: stripe %d on member %s: %w", i, id, err)
				}
				continue
			}
			switch act {
			case distributed.DeployNone:
				st.Unchanged++
			case distributed.DeployRetag:
				st.Retagged++
			case distributed.DeployShip:
				st.Shipped++
			}
			if newAssigned[id] == nil {
				newAssigned[id] = make(map[int]bool)
			}
			newAssigned[id][i] = true
			replicas = append(replicas, t)
		}
		if len(replicas) == 0 {
			return st, fmt.Errorf("fleet: stripe %d has no serving member: %w", i, firstErr)
		}
		m.groups[i].SetReplicas(replicas)
	}

	// Members that lost an assignment drop the stripe — but only members
	// still expected to answer (alive, not draining): a draining member keeps
	// its payload for in-flight work and a dead one is not reachable anyway.
	for id, stripes := range m.assigned {
		mem, ok := m.table.Lookup(id)
		if !ok || mem.State != StateAlive || mem.Draining {
			continue
		}
		for i := range stripes {
			if newAssigned[id][i] {
				continue
			}
			if rem, ok := m.conn(id, mem.Addr, i).(distributed.StripeRemover); ok {
				if err := rem.RemoveStripe(ctx); err == nil {
					st.Removed++
				}
			}
		}
	}
	m.assigned = newAssigned
	return st, firstErr
}

// Placement returns the member IDs most recently assigned to each stripe (in
// replica-preference order), for operator introspection.
func (m *Manager) Placement() [][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]string, m.opts.Stripes)
	for id, stripes := range m.assigned {
		for i := range stripes {
			out[i] = append(out[i], id)
		}
	}
	for _, g := range out {
		sort.Strings(g)
	}
	return out
}
