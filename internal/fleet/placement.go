package fleet

import (
	"hash/fnv"
	"sort"
)

// Placement is deterministic rendezvous (highest-random-weight) hashing:
// every (stripe, member) pair gets a pseudo-random score from a hash of the
// two identities, and each stripe is served by the R highest-scoring live
// members. The property this buys over modular assignment is minimal
// movement: adding or removing one member only moves the stripes whose top-R
// set that member entered or left — every other assignment's scores are
// untouched — so reconciliation after churn ships a delta, not a reshuffle.

// score hashes one (member, stripe) pair. FNV-1a over the member ID and the
// stripe index: stable across processes and Go versions, no seed state.
func score(member string, stripe int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(stripe), byte(stripe>>8), byte(stripe>>16), byte(stripe>>24)
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// Place assigns r replicas of each of `stripes` stripes over members,
// returning per-stripe member ID lists in preference order (highest score
// first). Fewer members than r degrades gracefully to all of them; member
// input order does not matter. Ties (only possible with duplicate IDs) break
// by ID so the result is a pure function of the inputs.
func Place(stripes, r int, members []string) [][]string {
	out := make([][]string, stripes)
	if len(members) == 0 || r <= 0 {
		return out
	}
	if r > len(members) {
		r = len(members)
	}
	type scored struct {
		id string
		s  uint64
	}
	ranked := make([]scored, len(members))
	for i := 0; i < stripes; i++ {
		for j, id := range members {
			ranked[j] = scored{id: id, s: score(id, i)}
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].s != ranked[b].s {
				return ranked[a].s > ranked[b].s
			}
			return ranked[a].id < ranked[b].id
		})
		ids := make([]string, r)
		for j := 0; j < r; j++ {
			ids[j] = ranked[j].id
		}
		out[i] = ids
	}
	return out
}
