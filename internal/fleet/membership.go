// Package fleet is the self-organization layer of the distributed worker
// cluster: a coordinator-side membership table fed by worker registration and
// heartbeats, deterministic rendezvous placement of R-way replicated stripes
// over the live members, and a manager that reconciles what each member
// serves with what placement says it should — shipping, retagging or
// removing stripes so that rebalance cost stays proportional to the delta.
//
// Liveness is tracked with miss-count eviction, the k-bucket idiom from
// Kademlia-style node tables: every tick (one heartbeat interval), a member
// that has not been heard from accrues a miss; a few misses demote it to
// suspect (still placed, queries prefer its replicas), a few more declare it
// dead (unplaced, its stripes move). A heartbeat or re-registration resets
// the count, so flapping members rejoin cheaply — re-admission validates
// stripe content fingerprints and re-ships nothing that still matches.
package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// State is a member's liveness classification.
type State int

const (
	// StateAlive: heartbeats arriving on schedule.
	StateAlive State = iota
	// StateSuspect: missed SuspectMisses consecutive ticks; still placed,
	// but the replica call path will have promoted its replicas.
	StateSuspect
	// StateDead: missed DeadMisses consecutive ticks; evicted from
	// placement, its stripes move to the surviving members.
	StateDead
)

// String names the state for logs and metrics labels.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state-%d", int(s))
	}
}

// Member is one registered worker as the table sees it.
type Member struct {
	// ID is the worker's self-chosen stable identity (it survives restarts,
	// so a rejoining worker reclaims its row instead of growing the table).
	ID string
	// Addr is the worker's wire-protocol base URL.
	Addr string
	// State is the current liveness classification.
	State State
	// Misses is the consecutive tick count without a heartbeat.
	Misses int
	// Draining marks a member excluded from new placement while it finishes
	// in-flight work; it keeps heartbeating until it exits.
	Draining bool
}

// Options tune a membership table.
type Options struct {
	// SuspectMisses is the consecutive missed ticks before a member turns
	// suspect (default 2).
	SuspectMisses int
	// DeadMisses is the consecutive missed ticks before a member is declared
	// dead and evicted from placement (default 4).
	DeadMisses int
}

func (o Options) withDefaults() Options {
	if o.SuspectMisses <= 0 {
		o.SuspectMisses = 2
	}
	if o.DeadMisses <= o.SuspectMisses {
		o.DeadMisses = o.SuspectMisses + 2
	}
	return o
}

// Stats is the table's aggregate liveness view, exported on /metrics.
type Stats struct {
	Alive, Suspect, Dead, Draining int
}

// Table is the coordinator's membership table. Time is external: the owner
// calls Tick once per heartbeat interval, which makes liveness fully
// deterministic — a property the chaos tests lean on. All methods are safe
// for concurrent use.
type Table struct {
	mu      sync.Mutex
	opts    Options
	members map[string]*Member
	// seen marks members heard from since the last Tick.
	seen map[string]bool
	// gen increments whenever membership state changes in a way that can
	// change placement (register, drain, state transition, removal).
	gen uint64
}

// NewTable returns an empty membership table.
func NewTable(opts Options) *Table {
	return &Table{
		opts:    opts.withDefaults(),
		members: make(map[string]*Member),
		seen:    make(map[string]bool),
	}
}

// Register admits (or re-admits) a member: its state resets to alive, its
// miss count to zero, and a drain in progress is cancelled. Re-registering
// with a new address moves the member (a worker restarted on another port).
func (t *Table) Register(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	if m == nil {
		m = &Member{ID: id}
		t.members[id] = m
	}
	if m.State != StateAlive || m.Addr != addr || m.Draining {
		t.gen++
	}
	m.Addr = addr
	m.State = StateAlive
	m.Misses = 0
	m.Draining = false
	t.seen[id] = true
}

// Heartbeat records a sign of life and reports whether the member is known;
// an unknown member must re-register (the table may have evicted it, or the
// coordinator restarted). A heartbeat resurrects a suspect — and even a
// not-yet-forgotten dead member — back to alive.
func (t *Table) Heartbeat(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	if m == nil {
		return false
	}
	if m.State != StateAlive {
		t.gen++
	}
	m.State = StateAlive
	m.Misses = 0
	t.seen[id] = true
	return true
}

// Drain marks a member as draining: it stays off new placement while its
// in-flight RPCs finish. Reports whether the member is known.
func (t *Table) Drain(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	if m == nil {
		return false
	}
	if !m.Draining {
		m.Draining = true
		t.gen++
	}
	return true
}

// Remove forgets a member entirely (a drained worker that exited).
func (t *Table) Remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[id]; !ok {
		return false
	}
	delete(t.members, id)
	delete(t.seen, id)
	t.gen++
	return true
}

// Tick advances liveness by one heartbeat interval: every member not heard
// from since the previous Tick accrues a miss, crossing the suspect and dead
// thresholds as misses accumulate. The owner calls it on a timer; tests call
// it directly, which makes every liveness transition deterministic.
func (t *Table) Tick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, m := range t.members {
		if t.seen[id] {
			delete(t.seen, id)
			continue
		}
		m.Misses++
		want := m.State
		switch {
		case m.Misses >= t.opts.DeadMisses:
			want = StateDead
		case m.Misses >= t.opts.SuspectMisses:
			want = StateSuspect
		}
		if want != m.State {
			m.State = want
			t.gen++
		}
	}
}

// Gen returns the membership generation: it moves whenever something that
// can change placement changed, so a reconcile loop can cheaply detect "no
// change since last time".
func (t *Table) Gen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Members returns a snapshot of all members, sorted by ID.
func (t *Table) Members() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, *m)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Placeable returns the members eligible for stripe placement — alive or
// suspect (a suspect is probably coming back; moving its stripes on the
// first hiccup would thrash) and not draining — sorted by ID.
func (t *Table) Placeable() []Member {
	var out []Member
	for _, m := range t.Members() {
		if m.State != StateDead && !m.Draining {
			out = append(out, m)
		}
	}
	return out
}

// Lookup returns the member with the given ID.
func (t *Table) Lookup(id string) (Member, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	if m == nil {
		return Member{}, false
	}
	return *m, true
}

// Stats returns the aggregate liveness counts.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var st Stats
	for _, m := range t.members {
		switch m.State {
		case StateAlive:
			st.Alive++
		case StateSuspect:
			st.Suspect++
		case StateDead:
			st.Dead++
		}
		if m.Draining {
			st.Draining++
		}
	}
	return st
}
