package fleet

import (
	"context"
	"strings"
	"testing"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

func TestTableLivenessTransitions(t *testing.T) {
	tb := NewTable(Options{SuspectMisses: 2, DeadMisses: 4})
	tb.Register("w1", "http://w1")
	tb.Register("w2", "http://w2")

	// w2 heartbeats every tick, w1 goes silent: deterministic demotion. The
	// first tick consumes the registration itself as a sign of life.
	states := []State{StateAlive, StateAlive, StateAlive, StateSuspect, StateSuspect, StateDead}
	for i, want := range states {
		m, _ := tb.Lookup("w1")
		if m.State != want {
			t.Fatalf("tick %d: w1 state %v, want %v", i, m.State, want)
		}
		tb.Heartbeat("w2")
		tb.Tick()
	}
	if m, _ := tb.Lookup("w2"); m.State != StateAlive {
		t.Errorf("heartbeating member demoted to %v", m.State)
	}
	st := tb.Stats()
	if st.Alive != 1 || st.Dead != 1 {
		t.Errorf("stats = %+v, want 1 alive / 1 dead", st)
	}
	if got := len(tb.Placeable()); got != 1 {
		t.Errorf("placeable = %d, want 1 (dead member excluded)", got)
	}

	// A heartbeat resurrects even a dead member; an unknown one must
	// re-register.
	if !tb.Heartbeat("w1") {
		t.Fatalf("heartbeat for a known dead member rejected")
	}
	if m, _ := tb.Lookup("w1"); m.State != StateAlive || m.Misses != 0 {
		t.Errorf("resurrected member: %+v", m)
	}
	if tb.Heartbeat("ghost") {
		t.Errorf("heartbeat for an unknown member accepted")
	}
}

func TestTableDrainExcludesFromPlacement(t *testing.T) {
	tb := NewTable(Options{})
	tb.Register("w1", "http://w1")
	tb.Register("w2", "http://w2")
	if !tb.Drain("w1") {
		t.Fatalf("drain rejected")
	}
	pl := tb.Placeable()
	if len(pl) != 1 || pl[0].ID != "w2" {
		t.Fatalf("draining member still placeable: %+v", pl)
	}
	st := tb.Stats()
	if st.Draining != 1 || st.Alive != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Re-registration cancels the drain (the worker came back for real).
	tb.Register("w1", "http://w1")
	if len(tb.Placeable()) != 2 {
		t.Errorf("re-registered member still excluded")
	}
}

func TestTableGenTracksPlacementRelevantChanges(t *testing.T) {
	tb := NewTable(Options{SuspectMisses: 1, DeadMisses: 2})
	g0 := tb.Gen()
	tb.Register("w1", "http://w1")
	if tb.Gen() == g0 {
		t.Errorf("register did not bump gen")
	}
	g1 := tb.Gen()
	tb.Heartbeat("w1")
	tb.Tick() // heartbeated: no change
	if tb.Gen() != g1 {
		t.Errorf("no-op tick bumped gen")
	}
	tb.Tick() // miss 1 → suspect
	if tb.Gen() == g1 {
		t.Errorf("state transition did not bump gen")
	}
}

func TestPlaceDeterministicAndBalanced(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	a := Place(8, 2, members)
	b := Place(8, 2, []string{"w4", "w3", "w2", "w1"}) // order must not matter
	for i := range a {
		if len(a[i]) != 2 {
			t.Fatalf("stripe %d has %d replicas, want 2", i, len(a[i]))
		}
		if a[i][0] == a[i][1] {
			t.Fatalf("stripe %d placed twice on %s", i, a[i][0])
		}
		if strings.Join(a[i], ",") != strings.Join(b[i], ",") {
			t.Fatalf("placement depends on member order: %v vs %v", a[i], b[i])
		}
	}
	// Degraded: fewer members than replicas.
	short := Place(4, 3, []string{"solo"})
	for i := range short {
		if len(short[i]) != 1 || short[i][0] != "solo" {
			t.Fatalf("degraded placement: %v", short[i])
		}
	}
}

// TestPlaceMinimalMovement pins the rendezvous property the rebalance cost
// claim rests on: removing one member only moves the assignments that member
// held.
func TestPlaceMinimalMovement(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4", "w5"}
	const stripes, r = 32, 2
	before := Place(stripes, r, members)
	after := Place(stripes, r, []string{"w1", "w2", "w4", "w5"}) // w3 leaves

	for i := 0; i < stripes; i++ {
		keep := make(map[string]bool)
		for _, id := range before[i] {
			if id != "w3" {
				keep[id] = true
			}
		}
		// Every surviving assignment must persist...
		got := make(map[string]bool)
		for _, id := range after[i] {
			got[id] = true
		}
		for id := range keep {
			if !got[id] {
				t.Errorf("stripe %d: %s lost its assignment when w3 left", i, id)
			}
		}
		// ...and only stripes w3 held may gain a new member.
		if len(keep) == len(before[i]) {
			for id := range got {
				if !keep[id] {
					t.Errorf("stripe %d gained %s though w3 did not hold it", i, id)
				}
			}
		}
	}
}

// loopbackFleet is a test fixture: n workers reachable by fake addresses,
// dialed via stripe-bound loopbacks.
type loopbackFleet struct {
	workers map[string]*distributed.Worker
}

func newLoopbackFleet(ids ...string) *loopbackFleet {
	lf := &loopbackFleet{workers: make(map[string]*distributed.Worker)}
	for _, id := range ids {
		lf.workers[id] = distributed.NewWorker(nil)
	}
	return lf
}

func (lf *loopbackFleet) dial(addr string, stripe int) distributed.Transport {
	id := strings.TrimPrefix(addr, "http://")
	return distributed.NewLoopbackAt(lf.workers[id], stripe)
}

func (lf *loopbackFleet) register(m *Manager, ids ...string) {
	for _, id := range ids {
		m.Table().Register(id, "http://"+id)
	}
}

func newTestManager(t *testing.T, lf *loopbackFleet, stripes, r int) *Manager {
	t.Helper()
	m, err := NewManager(ManagerOptions{Stripes: stripes, Replication: r, Dial: lf.dial})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestManagerReconcilePlacesAndRebalances(t *testing.T) {
	g := testgraphs.Cycle(24)
	lf := newLoopbackFleet("w1", "w2", "w3")
	m := newTestManager(t, lf, 4, 2)
	lf.register(m, "w1", "w2", "w3")
	ctx := context.Background()

	st, err := m.Reconcile(ctx, g)
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if st.Shipped != 4*2 {
		t.Errorf("initial reconcile shipped %d, want 8", st.Shipped)
	}
	// Every stripe must be served by exactly 2 distinct members.
	served := make(map[int]int)
	for _, w := range lf.workers {
		for _, s := range w.Stripes() {
			served[s.Index]++
		}
	}
	for i := 0; i < 4; i++ {
		if served[i] != 2 {
			t.Errorf("stripe %d served by %d members, want 2", i, served[i])
		}
	}

	// Reconciling again with nothing changed must move nothing.
	st, err = m.Reconcile(ctx, g)
	if err != nil {
		t.Fatalf("second Reconcile: %v", err)
	}
	if st.Shipped+st.Retagged+st.Removed != 0 {
		t.Errorf("idle reconcile moved things: %+v", st)
	}
	if st.Unchanged != 8 {
		t.Errorf("idle reconcile unchanged = %d, want 8", st.Unchanged)
	}

	// A member dies: its stripes move to the survivors, the others' stay.
	tb := m.Table()
	tb.Heartbeat("w1")
	tb.Heartbeat("w2")
	for i := 0; i < 6; i++ { // drive w3 to dead
		tb.Tick()
		tb.Heartbeat("w1")
		tb.Heartbeat("w2")
	}
	if mem, _ := tb.Lookup("w3"); mem.State != StateDead {
		t.Fatalf("w3 not dead after ticks: %+v", mem)
	}
	lost := len(lf.workers["w3"].Stripes())
	st, err = m.Reconcile(ctx, g)
	if err != nil {
		t.Fatalf("post-death Reconcile: %v", err)
	}
	if st.Shipped != lost {
		t.Errorf("death of a member holding %d stripes shipped %d", lost, st.Shipped)
	}
	for i, group := range m.Placement() {
		for _, id := range group {
			if id == "w3" {
				t.Errorf("stripe %d still placed on the dead member", i)
			}
		}
	}
}

// TestManagerRejoinZeroReships pins the re-admission guarantee: a worker that
// comes back still holding its stripes (content fingerprints match) is
// re-admitted with retags at most — zero payload ships.
func TestManagerRejoinZeroReships(t *testing.T) {
	g := testgraphs.Cycle(24)
	lf := newLoopbackFleet("w1", "w2", "w3")
	m := newTestManager(t, lf, 4, 2)
	lf.register(m, "w1", "w2", "w3")
	ctx := context.Background()
	if _, err := m.Reconcile(ctx, g); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}

	// w3 "restarts" but keeps its payload (the Worker object survives in this
	// fixture, as a gpserver restarted from its stripe files would).
	tb := m.Table()
	for i := 0; i < 6; i++ {
		tb.Tick()
		tb.Heartbeat("w1")
		tb.Heartbeat("w2")
	}
	if _, err := m.Reconcile(ctx, g); err != nil {
		t.Fatalf("Reconcile with w3 dead: %v", err)
	}
	tb.Register("w3", "http://w3") // rejoin
	st, err := m.Reconcile(ctx, g)
	if err != nil {
		t.Fatalf("rejoin Reconcile: %v", err)
	}
	if st.Shipped != 0 {
		t.Errorf("rejoin with matching fingerprints shipped %d stripes, want 0", st.Shipped)
	}

	// Wiped rejoin: the worker lost its disk — now the payload must ship.
	for _, idx := range []int{0, 1, 2, 3} {
		lf.workers["w3"].RemoveStripe(idx)
	}
	st, err = m.Reconcile(ctx, g)
	if err != nil {
		t.Fatalf("wiped-rejoin Reconcile: %v", err)
	}
	want := 0
	for _, group := range m.Placement() {
		for _, id := range group {
			if id == "w3" {
				want++
			}
		}
	}
	if st.Shipped != want {
		t.Errorf("wiped rejoin shipped %d, want %d (w3's assignments)", st.Shipped, want)
	}
}

func TestManagerEpochRolloverRetags(t *testing.T) {
	tg := testgraphs.NewToy()
	g := tg.Graph
	lf := newLoopbackFleet("w1", "w2")
	m := newTestManager(t, lf, 2, 2)
	lf.register(m, "w1", "w2")
	ctx := context.Background()
	if _, err := m.Reconcile(ctx, g); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}

	// Commit a delta touching one node: its stripe re-ships, the other
	// retags on every member.
	d := graph.NewDelta(g)
	if err := d.SetEdge(0, 2, 0.5); err != nil {
		t.Fatalf("SetEdge: %v", err)
	}
	g2, err := graph.Commit(g, d)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st, err := m.Reconcile(ctx, g2)
	if err != nil {
		t.Fatalf("post-commit Reconcile: %v", err)
	}
	if st.Shipped == 0 || st.Retagged == 0 {
		t.Errorf("epoch rollover: %+v, want both ships (touched stripe) and retags (untouched)", st)
	}
	if st.Shipped+st.Retagged != 4 {
		t.Errorf("rollover did not converge all 4 placements: %+v", st)
	}
}

func TestManagerCoordinatorParityThroughFleet(t *testing.T) {
	g := testgraphs.NewToy().Graph
	lf := newLoopbackFleet("w1", "w2", "w3")
	m := newTestManager(t, lf, 2, 2)
	lf.register(m, "w1", "w2", "w3")
	ctx := context.Background()
	if _, err := m.Reconcile(ctx, g); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	c, err := distributed.NewCoordinator(ctx, m.Transports(), nil)
	if err != nil {
		t.Fatalf("NewCoordinator over fleet groups: %v", err)
	}
	defer c.Close()
}

func TestManagerNoMembers(t *testing.T) {
	m, err := NewManager(ManagerOptions{Stripes: 2})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	_, err = m.Reconcile(context.Background(), testgraphs.NewToy().Graph)
	if err == nil {
		t.Fatalf("Reconcile with no members succeeded")
	}
	if !distributed.IsTransient(err) {
		t.Errorf("no-members error not transient (workers may register any moment): %v", err)
	}
}
