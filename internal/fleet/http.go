package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Registration/heartbeat wire protocol, mounted on the coordinator daemon
// (see docs/API.md):
//
//	POST /v1/register   {"id": "...", "addr": "http://..."} → 200 {"ok":true, ...}
//	POST /v1/heartbeat  {"id": "..."}                       → 200, or 404 when
//	                    the member is unknown (evicted, or the coordinator
//	                    restarted) — the worker re-registers.
//	GET  /v1/fleet      membership snapshot (states, misses, placement)
//
// Bodies are strict JSON: unknown fields, oversized payloads, and malformed
// identities are rejected with 400 (see DecodeRegister, which is fuzzed).

// MaxRegisterBytes caps a registration or heartbeat body.
const MaxRegisterBytes = 4 << 10

// maxIDLen bounds member identities; IDs are metrics labels and map keys, so
// unbounded attacker-chosen strings are a memory grief vector.
const maxIDLen = 128

// RegisterRequest is the body of POST /v1/register. Heartbeats reuse the
// shape with Addr empty.
type RegisterRequest struct {
	// ID is the worker's stable self-chosen identity.
	ID string `json:"id"`
	// Addr is the worker's wire-protocol base URL, as reachable from the
	// coordinator.
	Addr string `json:"addr,omitempty"`
}

// DecodeRegister parses and validates a registration body: strict JSON (no
// unknown fields, no trailing garbage), a non-empty printable ID within
// maxIDLen, and — when present — an http(s) URL for Addr. It is the fuzzed
// entry point of the membership wire surface.
func DecodeRegister(raw []byte) (RegisterRequest, error) {
	var req RegisterRequest
	if len(raw) > MaxRegisterBytes {
		return req, fmt.Errorf("fleet: register body is %d bytes, cap is %d", len(raw), MaxRegisterBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return RegisterRequest{}, fmt.Errorf("fleet: decode register: %w", err)
	}
	if dec.More() {
		return RegisterRequest{}, fmt.Errorf("fleet: register body has trailing data")
	}
	if req.ID == "" {
		return RegisterRequest{}, fmt.Errorf("fleet: register needs a non-empty id")
	}
	if len(req.ID) > maxIDLen {
		return RegisterRequest{}, fmt.Errorf("fleet: id is %d bytes, cap is %d", len(req.ID), maxIDLen)
	}
	for _, r := range req.ID {
		if r < 0x21 || r > 0x7e {
			return RegisterRequest{}, fmt.Errorf("fleet: id contains non-printable or space character %q", r)
		}
	}
	if req.Addr != "" {
		u, err := url.Parse(req.Addr)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return RegisterRequest{}, fmt.Errorf("fleet: addr %q is not an http(s) URL", req.Addr)
		}
	}
	return req, nil
}

// memberJSON is the /v1/fleet representation of one member.
type memberJSON struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Misses   int    `json:"misses"`
	Draining bool   `json:"draining,omitempty"`
}

// Handler returns the membership endpoints, for mounting on the coordinator
// daemon's mux. Registration and state changes bump the table generation;
// the daemon's reconcile loop picks them up on its next tick.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", m.handleRegister)
	mux.HandleFunc("POST /v1/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("POST /v1/drain", m.handleDrain)
	mux.HandleFunc("GET /v1/fleet", m.handleFleet)
	return mux
}

func fleetJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func fleetError(rw http.ResponseWriter, status int, format string, args ...any) {
	fleetJSON(rw, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func readRegister(rw http.ResponseWriter, r *http.Request) (RegisterRequest, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, MaxRegisterBytes+1))
	if err != nil {
		fleetError(rw, http.StatusBadRequest, "fleet: read body: %v", err)
		return RegisterRequest{}, false
	}
	req, err := DecodeRegister(raw)
	if err != nil {
		fleetError(rw, http.StatusBadRequest, "%v", err)
		return RegisterRequest{}, false
	}
	return req, true
}

func (m *Manager) handleRegister(rw http.ResponseWriter, r *http.Request) {
	req, ok := readRegister(rw, r)
	if !ok {
		return
	}
	if req.Addr == "" {
		fleetError(rw, http.StatusBadRequest, "fleet: register needs an addr")
		return
	}
	m.table.Register(req.ID, req.Addr)
	fleetJSON(rw, http.StatusOK, map[string]any{
		"ok":          true,
		"replication": m.opts.Replication,
		"stripes":     m.opts.Stripes,
	})
}

func (m *Manager) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	req, ok := readRegister(rw, r)
	if !ok {
		return
	}
	if !m.table.Heartbeat(req.ID) {
		fleetError(rw, http.StatusNotFound, "fleet: unknown member %q, re-register", req.ID)
		return
	}
	fleetJSON(rw, http.StatusOK, map[string]any{"ok": true})
}

func (m *Manager) handleDrain(rw http.ResponseWriter, r *http.Request) {
	req, ok := readRegister(rw, r)
	if !ok {
		return
	}
	if !m.table.Drain(req.ID) {
		fleetError(rw, http.StatusNotFound, "fleet: unknown member %q", req.ID)
		return
	}
	fleetJSON(rw, http.StatusOK, map[string]any{"ok": true, "draining": req.ID})
}

func (m *Manager) handleFleet(rw http.ResponseWriter, r *http.Request) {
	members := m.table.Members()
	out := make([]memberJSON, 0, len(members))
	for _, mem := range members {
		out = append(out, memberJSON{
			ID: mem.ID, Addr: mem.Addr, State: mem.State.String(),
			Misses: mem.Misses, Draining: mem.Draining,
		})
	}
	st := m.table.Stats()
	fleetJSON(rw, http.StatusOK, map[string]any{
		"members":     out,
		"alive":       st.Alive,
		"suspect":     st.Suspect,
		"dead":        st.Dead,
		"draining":    st.Draining,
		"replication": m.opts.Replication,
		"placement":   m.Placement(),
	})
}

// Registrar is the worker-side client of the membership protocol: it
// registers with the coordinator and heartbeats until the context ends,
// re-registering whenever the coordinator forgets it (eviction after an
// outage, or a coordinator restart).
type Registrar struct {
	// Coordinator is the coordinator daemon's base URL.
	Coordinator string
	// ID is this worker's stable identity.
	ID string
	// Addr is this worker's advertised wire-protocol base URL.
	Addr string
	// Interval is the heartbeat period (default 1s).
	Interval time.Duration
	// Client overrides the HTTP client.
	Client *http.Client
	// OnError, when set, observes failed registration/heartbeat attempts
	// (for logging); the loop itself keeps retrying regardless.
	OnError func(error)
}

func (reg *Registrar) client() *http.Client {
	if reg.Client != nil {
		return reg.Client
	}
	return http.DefaultClient
}

func (reg *Registrar) post(ctx context.Context, path string, body RegisterRequest) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	url := strings.TrimRight(reg.Coordinator, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := reg.client().Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Register performs one registration attempt.
func (reg *Registrar) Register(ctx context.Context) error {
	status, err := reg.post(ctx, "/v1/register", RegisterRequest{ID: reg.ID, Addr: reg.Addr})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("fleet: register %s: HTTP %d", reg.Coordinator, status)
	}
	return nil
}

// Run registers and then heartbeats until ctx ends. Failures are reported to
// OnError and retried on the next beat; a 404 heartbeat triggers
// re-registration. It never returns before ctx is done.
func (reg *Registrar) Run(ctx context.Context) {
	interval := reg.Interval
	if interval <= 0 {
		interval = time.Second
	}
	report := func(err error) {
		if reg.OnError != nil && err != nil {
			reg.OnError(err)
		}
	}
	report(reg.Register(ctx))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			status, err := reg.post(ctx, "/v1/heartbeat", RegisterRequest{ID: reg.ID})
			switch {
			case err != nil:
				report(err)
			case status == http.StatusNotFound:
				report(reg.Register(ctx))
			case status != http.StatusOK:
				report(fmt.Errorf("fleet: heartbeat %s: HTTP %d", reg.Coordinator, status))
			}
		}
	}
}
