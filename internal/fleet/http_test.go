package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func newHTTPManager(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(ManagerOptions{Stripes: 2})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	return resp.StatusCode, payload
}

func TestRegistrationEndpoints(t *testing.T) {
	m, srv := newHTTPManager(t)

	status, payload := post(t, srv.URL+"/v1/register", `{"id":"w1","addr":"http://10.0.0.7:7001"}`)
	if status != http.StatusOK {
		t.Fatalf("register: HTTP %d %v", status, payload)
	}
	if payload["replication"] != float64(2) || payload["stripes"] != float64(2) {
		t.Errorf("register response missing deployment shape: %v", payload)
	}
	if mem, ok := m.Table().Lookup("w1"); !ok || mem.Addr != "http://10.0.0.7:7001" {
		t.Fatalf("member not registered: %+v ok=%v", mem, ok)
	}

	if status, _ := post(t, srv.URL+"/v1/heartbeat", `{"id":"w1"}`); status != http.StatusOK {
		t.Errorf("heartbeat known member: HTTP %d", status)
	}
	if status, _ := post(t, srv.URL+"/v1/heartbeat", `{"id":"ghost"}`); status != http.StatusNotFound {
		t.Errorf("heartbeat unknown member: HTTP %d, want 404", status)
	}
	if status, _ := post(t, srv.URL+"/v1/drain", `{"id":"w1"}`); status != http.StatusOK {
		t.Errorf("drain: HTTP %d", status)
	}
	if mem, _ := m.Table().Lookup("w1"); !mem.Draining {
		t.Errorf("drain endpoint did not mark the member draining")
	}

	// Malformed bodies are 400s.
	for _, body := range []string{
		``, `{`, `{"id":""}`, `{"id":"w1","extra":1}`,
		`{"id":"w1","addr":"not a url"}`, `{"id":"w#"}`,
	} {
		if status, _ := post(t, srv.URL+"/v1/register", body); status != http.StatusBadRequest {
			t.Errorf("register %q: HTTP %d, want 400", body, status)
		}
	}
	// Register without addr is also a 400 (heartbeats have their own path).
	if status, _ := post(t, srv.URL+"/v1/register", `{"id":"w9"}`); status != http.StatusBadRequest {
		t.Errorf("register without addr accepted")
	}

	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatalf("GET /v1/fleet: %v", err)
	}
	defer resp.Body.Close()
	var fleet struct {
		Members  []memberJSON `json:"members"`
		Alive    int          `json:"alive"`
		Draining int          `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatalf("decode fleet: %v", err)
	}
	if len(fleet.Members) != 1 || fleet.Members[0].ID != "w1" || fleet.Alive != 1 || fleet.Draining != 1 {
		t.Errorf("fleet snapshot: %+v", fleet)
	}
}

// TestRegistrarReRegistersAfterEviction runs the worker-side loop against a
// live manager: the registrar registers, heartbeats, and — when the
// coordinator forgets it — re-registers on the next beat.
func TestRegistrarReRegistersAfterEviction(t *testing.T) {
	m, srv := newHTTPManager(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reg := &Registrar{
		Coordinator: srv.URL,
		ID:          "w1",
		Addr:        "http://10.0.0.7:7001",
		Interval:    5 * time.Millisecond,
	}
	done := make(chan struct{})
	go func() { reg.Run(ctx); close(done) }()

	waitFor := func(desc string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("initial registration", func() bool {
		_, ok := m.Table().Lookup("w1")
		return ok
	})
	// Simulate a coordinator restart: the member vanishes from the table.
	m.Table().Remove("w1")
	waitFor("re-registration", func() bool {
		_, ok := m.Table().Lookup("w1")
		return ok
	})
	cancel()
	<-done
}

func TestDecodeRegister(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		ok   bool
	}{
		{"valid", `{"id":"w1","addr":"http://h:1"}`, true},
		{"heartbeat shape", `{"id":"w1"}`, true},
		{"https", `{"id":"w1","addr":"https://h:1"}`, true},
		{"empty", ``, false},
		{"not json", `nope`, false},
		{"empty id", `{"id":"","addr":"http://h:1"}`, false},
		{"missing id", `{"addr":"http://h:1"}`, false},
		{"unknown field", `{"id":"w1","port":7001}`, false},
		{"trailing garbage", `{"id":"w1"} {"id":"w2"}`, false},
		{"bad scheme", `{"id":"w1","addr":"ftp://h:1"}`, false},
		{"no host", `{"id":"w1","addr":"http://"}`, false},
		{"space in id", `{"id":"w 1"}`, false},
		{"control char id", "{\"id\":\"w\\u0007\"}", false},
		{"long id", `{"id":"` + strings.Repeat("x", 200) + `"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRegister([]byte(tc.raw))
			if tc.ok && err != nil {
				t.Fatalf("DecodeRegister(%q): %v", tc.raw, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("DecodeRegister(%q) accepted: %+v", tc.raw, req)
			}
		})
	}
}

// FuzzDecodeRegister hammers the membership wire decoder the same way
// FuzzDecodeStripe hammers the stripe codec: arbitrary bytes must either
// decode into a request that round-trips cleanly or fail — never panic, and
// never yield an identity that violates the documented bounds.
func FuzzDecodeRegister(f *testing.F) {
	f.Add([]byte(`{"id":"w1","addr":"http://10.0.0.7:7001"}`))
	f.Add([]byte(`{"id":"w1"}`))
	f.Add([]byte(`{"id":"` + strings.Repeat("a", maxIDLen) + `"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"id":"w1","addr":"ftp://x"}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeRegister(raw)
		if err != nil {
			return
		}
		if req.ID == "" || len(req.ID) > maxIDLen {
			t.Fatalf("accepted id violates bounds: %q", req.ID)
		}
		if !utf8.ValidString(req.ID) {
			t.Fatalf("accepted id is not valid UTF-8: %q", req.ID)
		}
		for _, r := range req.ID {
			if r < 0x21 || r > 0x7e {
				t.Fatalf("accepted id contains forbidden rune %q", r)
			}
		}
		// An accepted request must survive a marshal/decode round trip.
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		again, err := DecodeRegister(re)
		if err != nil {
			t.Fatalf("round trip rejected %q: %v", re, err)
		}
		if again != req {
			t.Fatalf("round trip changed the request: %+v != %+v", again, req)
		}
	})
}
