package obs

import (
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i holds
// observations with duration ≤ 2^i microseconds, so the finite range spans
// 1µs .. 2^25µs ≈ 33.6s in factor-of-two steps; anything slower lands in
// the +Inf overflow slot. That resolution (±2x) is what a log2 histogram
// trades for lock-free constant-space recording, and it is plenty for
// latency alerting.
const NumBuckets = 26

// Histogram is a log2-bucketed latency histogram. Observe is a few atomic
// adds — no locks, no allocation — so it is safe on the per-request hot
// path; readers (exposition, Quantile) see a slightly torn but monotonic
// view, which Prometheus scrape semantics tolerate.
type Histogram struct {
	buckets  [NumBuckets]atomic.Int64 // counts per finite bucket (non-cumulative)
	overflow atomic.Int64             // observations beyond the last finite bound
	count    atomic.Int64
	sumNanos atomic.Int64
}

// bucketBound returns the inclusive upper bound of finite bucket i.
func bucketBound(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// bucketFor returns the finite bucket index for d, or NumBuckets when d
// exceeds the last finite bound.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	// ceil(log2(us)): the smallest i with us <= 2^i.
	i := bits.Len64(uint64(us - 1))
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Observe records one duration (negative durations are clamped to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if i := bucketFor(d); i < NumBuckets {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed
// distribution: the upper bound of the bucket holding the q·count-th
// observation. The estimate is exact to within the bucket's factor-of-two
// width; with no observations it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketBound(i)
		}
	}
	// Overflow: report the last finite bound (the histogram cannot resolve
	// beyond it).
	return bucketBound(NumBuckets - 1)
}

// write renders the histogram as Prometheus `_bucket`/`_sum`/`_count`
// series under the given family name and label fragment.
func (h *Histogram) write(b *strings.Builder, name, labels string) {
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(bucketBound(i).Seconds(), 'g', -1, 64)
		writeSample(b, name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	cum += h.overflow.Load()
	writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", labels, h.Sum().Seconds())
	writeSample(b, name+"_count", labels, float64(h.count.Load()))
}
