package obs

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{1024 * time.Microsecond, 10},
		{time.Second, 20},
		{30 * time.Second, 25},
		{40 * time.Second, NumBuckets}, // beyond the last finite bound
		{time.Hour, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every finite bucket bound must map into its own bucket (inclusive
	// upper bound), and one nanosecond above it into the next.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketFor(bucketBound(i)); got != i {
			t.Errorf("bucketFor(bound %d) = %d, want %d", i, got, i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 fast observations, 10 slow ones: p50 must land in the fast
	// bucket's bound, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket bound 128µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond) // bucket bound 131.072ms
	}
	if got, want := h.Quantile(0.5), 128*time.Microsecond; got != want {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.99), 131072*time.Microsecond; got != want {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
	if got, want := h.Sum(), 90*100*time.Microsecond+10*80*time.Millisecond; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour)
	if got, want := h.Quantile(0.5), bucketBound(NumBuckets-1); got != want {
		t.Errorf("overflow quantile = %v, want %v", got, want)
	}
}

// sampleLine matches one Prometheus sample, e.g. `ns_name{a="b"} 12`.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$`)

func TestExpositionParses(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("http_requests_total", "Requests served.", `path="/rank",code="200"`)
	c.Add(3)
	r.Counter("http_requests_total", "Requests served.", `path="/rank",code="429"`).Inc()
	r.Gauge("in_flight", "Currently executing requests.", "", func() float64 { return 2 })
	r.CounterFunc("cache_hits_total", "Cache hits.", "", func() float64 { return 7 })
	h := r.Histogram("latency_seconds", "Request latency.", `path="/rank"`)
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Second)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		`test_http_requests_total{path="/rank",code="200"} 3`,
		`test_http_requests_total{path="/rank",code="429"} 1`,
		"# TYPE test_http_requests_total counter",
		"# TYPE test_in_flight gauge",
		"test_in_flight 2",
		"test_cache_hits_total 7",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{path="/rank",le="+Inf"} 2`,
		`test_latency_seconds_count{path="/rank"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	// Every non-comment line must be a well-formed sample, HELP/TYPE lines
	// must precede their family exactly once, and histogram buckets must be
	// cumulative (monotonically non-decreasing in le order).
	var lastCum float64 = -1
	helpSeen := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helpSeen[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
		if strings.HasPrefix(line, "test_latency_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < lastCum {
				t.Errorf("bucket counts not cumulative at %q (prev %g)", line, lastCum)
			}
			lastCum = v
		}
	}
	for name, n := range helpSeen {
		if n != 1 {
			t.Errorf("HELP for %s appears %d times, want 1", name, n)
		}
	}
}

// TestConcurrentObserve exercises the write path from many goroutines while
// a reader scrapes — meaningful under -race.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("latency_seconds", "h", "")
	c := r.Counter("ops_total", "c", "")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
				c.Inc()
				if i%100 == 0 {
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Errorf("WriteTo: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}
