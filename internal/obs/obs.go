// Package obs is the serving-observability layer shared by the repo's HTTP
// daemons (rtrankd, gpserver): lock-light atomic counters, log2-bucketed
// latency histograms, callback gauges, and a Registry that exposes them in
// the Prometheus text exposition format (no external dependencies).
//
// The hot path is write-only atomics: a Counter.Inc or Histogram.Observe is
// a handful of atomic adds with no locks, so instrumentation is safe on the
// per-query serving path. The Registry mutex guards only metric
// registration (setup time, or the first occurrence of a rare label value)
// and exposition (scrape time).
package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// metricKind is the Prometheus TYPE of a metric family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labeled series of a family.
type child struct {
	labels string // preformatted, e.g. `path="/rank",code="200"`; may be empty
	c      *Counter
	h      *Histogram
	ch     *CountHistogram
	fn     func() float64 // callback gauges / counters
}

// family is one metric name: its help, type and labeled children.
type family struct {
	name     string
	help     string
	kind     metricKind
	children []*child
}

// Registry holds a daemon's metric families and renders them in the
// Prometheus text exposition format. Create one per process with
// NewRegistry; registration is cheap but synchronized, so resolve metric
// handles once at setup (or on first use of a label value) and hold on to
// them.
type Registry struct {
	namespace string

	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry. Every metric name is prefixed with
// namespace + "_" (e.g. namespace "rtrank" → "rtrank_http_requests_total").
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace, byName: map[string]*family{}}
}

// register appends a child to the named family, creating the family on
// first use. Help and kind are taken from the first registration.
func (r *Registry) register(name, help string, kind metricKind, ch *child) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.children = append(f.children, ch)
}

// Counter registers and returns a counter with the given (possibly empty)
// preformatted label set, e.g. `path="/rank",code="200"`. Registering the
// same name with different labels grows the family.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &child{labels: labels, c: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for re-exposing cumulative counts an underlying subsystem already
// keeps (cache hits, cluster RPCs). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, kindCounter, &child{labels: labels, fn: fn})
}

// Gauge registers a gauge whose value is read from fn at scrape time. fn
// must be safe for concurrent use.
func (r *Registry) Gauge(name, help, labels string, fn func() float64) {
	r.register(name, help, kindGauge, &child{labels: labels, fn: fn})
}

// Histogram registers and returns a log2-bucketed latency histogram with
// the given label set.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, &child{labels: labels, h: h})
	return h
}

// CountHistogram registers and returns a log2-bucketed integer histogram
// (for cardinalities like certified-K, not durations) with the given label
// set.
func (r *Registry) CountHistogram(name, help, labels string) *CountHistogram {
	h := &CountHistogram{}
	r.register(name, help, kindHistogram, &child{labels: labels, ch: h})
	return h
}

// WriteTo renders every registered family in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order, children
// in registration order within a family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	// Snapshot the family slice; the metrics themselves are atomics or
	// concurrency-safe callbacks, so rendering proceeds without the lock.
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	childs := make([][]*child, len(fams))
	for i, f := range fams {
		childs[i] = append([]*child(nil), f.children...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		name := r.namespace + "_" + f.name
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind)
		for _, ch := range childs[i] {
			switch {
			case ch.h != nil:
				ch.h.write(&b, name, ch.labels)
			case ch.ch != nil:
				ch.ch.write(&b, name, ch.labels)
			case ch.c != nil:
				writeSample(&b, name, ch.labels, float64(ch.c.Value()))
			default:
				writeSample(&b, name, ch.labels, ch.fn())
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeSample writes one `name{labels} value` line.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// joinLabels merges two preformatted label fragments with a comma, either
// of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}
