package obs

import (
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
)

// NumCountBuckets is the number of finite buckets in a CountHistogram.
// Bucket i holds observations ≤ 2^i, so the finite range spans 1 .. 32768 in
// factor-of-two steps — wide enough for any per-query cardinality this repo
// records (certified-K, result sizes, touched-row counts) while keeping the
// exposition short.
const NumCountBuckets = 16

// CountHistogram is a log2-bucketed histogram over small non-negative integer
// observations (counts, not durations) — the integer sibling of Histogram.
// Observe is a few atomic adds with no locks or allocation, so it is safe on
// the per-request hot path. Zero observations land in the first bucket.
type CountHistogram struct {
	buckets  [NumCountBuckets]atomic.Int64 // counts per finite bucket (non-cumulative)
	overflow atomic.Int64                  // observations beyond the last finite bound
	count    atomic.Int64
	sum      atomic.Int64
}

// countBucketBound returns the inclusive upper bound of finite bucket i.
func countBucketBound(i int) int64 { return 1 << uint(i) }

// countBucketFor returns the finite bucket index for v, or NumCountBuckets
// when v exceeds the last finite bound.
func countBucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	// ceil(log2(v)): the smallest i with v <= 2^i.
	i := bits.Len64(uint64(v - 1))
	if i >= NumCountBuckets {
		return NumCountBuckets
	}
	return i
}

// Observe records one integer observation (negative values are clamped to
// zero).
func (h *CountHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if i := countBucketFor(v); i < NumCountBuckets {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *CountHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *CountHistogram) Sum() int64 { return h.sum.Load() }

// write renders the histogram as Prometheus `_bucket`/`_sum`/`_count` series
// under the given family name and label fragment.
func (h *CountHistogram) write(b *strings.Builder, name, labels string) {
	var cum int64
	for i := 0; i < NumCountBuckets; i++ {
		cum += h.buckets[i].Load()
		le := strconv.FormatInt(countBucketBound(i), 10)
		writeSample(b, name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	cum += h.overflow.Load()
	writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", labels, float64(h.sum.Load()))
	writeSample(b, name+"_count", labels, float64(h.count.Load()))
}
