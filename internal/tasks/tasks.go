// Package tasks implements the four evaluation tasks of Sect. VI-A and their
// automatic ground-truth construction: for each sampled query the known
// association (authors of a paper, venue of a paper, a clicked URL of a
// phrase, equivalent phrasings of a concept) is reserved as ground truth and
// the direct edges between the query and the ground-truth nodes are removed
// from the view the measures see, so the evaluation tests whether a proximity
// measure can re-discover the association.
package tasks

import (
	"fmt"
	"math/rand"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Task identifies one of the paper's four ranking tasks.
type Task int

const (
	// TaskAuthor (Task 1): given a paper, find its authors. BibNet.
	TaskAuthor Task = iota
	// TaskVenue (Task 2): given a paper, find its venue. BibNet.
	TaskVenue
	// TaskRelevantURL (Task 3): given a phrase, find a clicked URL. QLog.
	TaskRelevantURL
	// TaskEquivalentSearch (Task 4): given a phrase, find equivalent phrases.
	TaskEquivalentSearch
)

// String returns the paper's task label.
func (t Task) String() string {
	switch t {
	case TaskAuthor:
		return "Task 1 (Author)"
	case TaskVenue:
		return "Task 2 (Venue)"
	case TaskRelevantURL:
		return "Task 3 (Relevant URL)"
	case TaskEquivalentSearch:
		return "Task 4 (Equivalent search)"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// BibNetTasks lists the tasks evaluated on the bibliographic network.
func BibNetTasks() []Task { return []Task{TaskAuthor, TaskVenue} }

// QLogTasks lists the tasks evaluated on the query log.
func QLogTasks() []Task { return []Task{TaskRelevantURL, TaskEquivalentSearch} }

// AllTasks lists all four tasks in paper order.
func AllTasks() []Task {
	return []Task{TaskAuthor, TaskVenue, TaskRelevantURL, TaskEquivalentSearch}
}

// Instance is one evaluation query: the query distribution, the reserved
// ground truth, the node type rankings are filtered to, and the edge-masked
// view every measure scores on.
type Instance struct {
	Task        Task
	QueryNode   graph.NodeID
	Query       walk.Query
	GroundTruth map[graph.NodeID]bool
	TargetType  graph.Type
	View        graph.View
	// RemovedEdges lists the directed edges hidden from the view.
	RemovedEdges []graph.EdgeKey
}

// SampleBibNet samples up to n task instances from a bibliographic network.
// Queries are papers chosen uniformly at random among those with non-empty
// ground truth; the same seed yields the same queries.
func SampleBibNet(net *datasets.BibNet, task Task, n int, seed int64) ([]Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tasks: query count must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var eligible []graph.NodeID
	for _, p := range net.Papers {
		switch task {
		case TaskAuthor:
			if len(net.AuthorsOf[p]) > 0 {
				eligible = append(eligible, p)
			}
		case TaskVenue:
			if _, ok := net.VenueOf[p]; ok {
				eligible = append(eligible, p)
			}
		default:
			return nil, fmt.Errorf("tasks: %v is not a BibNet task", task)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("tasks: no eligible queries for %v", task)
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if n > len(eligible) {
		n = len(eligible)
	}
	out := make([]Instance, 0, n)
	for _, p := range eligible[:n] {
		var truth []graph.NodeID
		var targetType graph.Type
		switch task {
		case TaskAuthor:
			truth = net.AuthorsOf[p]
			targetType = datasets.TypeAuthor
		case TaskVenue:
			truth = []graph.NodeID{net.VenueOf[p]}
			targetType = datasets.TypeVenue
		}
		out = append(out, newInstance(net.Graph, task, p, truth, targetType))
	}
	return out, nil
}

// SampleQLog samples up to n task instances from a query log.
func SampleQLog(qlog *datasets.QLog, task Task, n int, seed int64) ([]Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tasks: query count must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var eligible []graph.NodeID
	for _, p := range qlog.Phrases {
		switch task {
		case TaskRelevantURL:
			if len(qlog.ClickedURLs[p]) > 0 {
				eligible = append(eligible, p)
			}
		case TaskEquivalentSearch:
			if len(qlog.PhrasesOfConcept[qlog.ConceptOf[p]]) > 1 {
				eligible = append(eligible, p)
			}
		default:
			return nil, fmt.Errorf("tasks: %v is not a QLog task", task)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("tasks: no eligible queries for %v", task)
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if n > len(eligible) {
		n = len(eligible)
	}
	out := make([]Instance, 0, n)
	for _, p := range eligible[:n] {
		var truth []graph.NodeID
		var targetType graph.Type
		switch task {
		case TaskRelevantURL:
			urls := qlog.ClickedURLs[p]
			truth = []graph.NodeID{urls[rng.Intn(len(urls))]}
			targetType = datasets.TypeURL
		case TaskEquivalentSearch:
			for _, other := range qlog.PhrasesOfConcept[qlog.ConceptOf[p]] {
				if other != p {
					truth = append(truth, other)
				}
			}
			targetType = datasets.TypePhrase
		}
		out = append(out, newInstance(qlog.Graph, task, p, truth, targetType))
	}
	return out, nil
}

// newInstance builds an Instance, removing all direct edges between the query
// node and each ground-truth node in both directions.
func newInstance(g *graph.Graph, task Task, query graph.NodeID, truth []graph.NodeID, targetType graph.Type) Instance {
	truthSet := make(map[graph.NodeID]bool, len(truth))
	var removed []graph.EdgeKey
	for _, tn := range truth {
		truthSet[tn] = true
		if g.HasEdge(query, tn) {
			removed = append(removed, graph.EdgeKey{From: query, To: tn})
		}
		if g.HasEdge(tn, query) {
			removed = append(removed, graph.EdgeKey{From: tn, To: query})
		}
	}
	var view graph.View = g
	if len(removed) > 0 {
		// Compact the masked view into flat CSR arrays: every measure runs
		// many solver iterations over this view, and the parallel walk
		// kernels require the CSRView layout, so the one-time O(edges)
		// flattening pays for itself immediately.
		view = graph.Compact(graph.NewMaskedView(g, removed))
	}
	return Instance{
		Task:         task,
		QueryNode:    query,
		Query:        walk.SingleNode(query),
		GroundTruth:  truthSet,
		TargetType:   targetType,
		View:         view,
		RemovedEdges: removed,
	}
}
