package tasks

import (
	"testing"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
)

func smallBibNet(t *testing.T) *datasets.BibNet {
	t.Helper()
	net, err := datasets.GenerateBibNet(datasets.SmallBibNetConfig())
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	return net
}

func smallQLog(t *testing.T) *datasets.QLog {
	t.Helper()
	q, err := datasets.GenerateQLog(datasets.SmallQLogConfig())
	if err != nil {
		t.Fatalf("GenerateQLog: %v", err)
	}
	return q
}

func TestTaskStrings(t *testing.T) {
	if TaskAuthor.String() != "Task 1 (Author)" || TaskEquivalentSearch.String() != "Task 4 (Equivalent search)" {
		t.Errorf("task labels wrong: %q %q", TaskAuthor.String(), TaskEquivalentSearch.String())
	}
	if Task(99).String() == "" {
		t.Errorf("unknown task should still render")
	}
	if len(AllTasks()) != 4 || len(BibNetTasks()) != 2 || len(QLogTasks()) != 2 {
		t.Errorf("task list sizes wrong")
	}
}

func TestSampleBibNetAuthorTask(t *testing.T) {
	net := smallBibNet(t)
	instances, err := SampleBibNet(net, TaskAuthor, 25, 7)
	if err != nil {
		t.Fatalf("SampleBibNet: %v", err)
	}
	if len(instances) != 25 {
		t.Fatalf("got %d instances, want 25", len(instances))
	}
	for _, inst := range instances {
		if net.Graph.Type(inst.QueryNode) != datasets.TypePaper {
			t.Fatalf("query should be a paper")
		}
		if inst.TargetType != datasets.TypeAuthor {
			t.Fatalf("target type should be author")
		}
		if len(inst.GroundTruth) == 0 {
			t.Fatalf("empty ground truth")
		}
		for truth := range inst.GroundTruth {
			if net.Graph.Type(truth) != datasets.TypeAuthor {
				t.Fatalf("ground truth %d is not an author", truth)
			}
			// Direct edges removed in the instance view.
			visible := false
			inst.View.EachOut(inst.QueryNode, func(to graph.NodeID, _ float64) bool {
				if to == truth {
					visible = true
				}
				return true
			})
			if visible {
				t.Fatalf("query-truth edge still visible")
			}
			// But present in the underlying graph.
			if !net.Graph.HasEdge(inst.QueryNode, truth) {
				t.Fatalf("underlying association missing")
			}
		}
		if len(inst.RemovedEdges) == 0 {
			t.Fatalf("expected removed edges")
		}
	}
	// Determinism.
	again, _ := SampleBibNet(net, TaskAuthor, 25, 7)
	for i := range again {
		if again[i].QueryNode != instances[i].QueryNode {
			t.Fatalf("sampling is not deterministic")
		}
	}
	// Different seed gives a different sample (with overwhelming probability).
	other, _ := SampleBibNet(net, TaskAuthor, 25, 8)
	same := 0
	for i := range other {
		if other[i].QueryNode == instances[i].QueryNode {
			same++
		}
	}
	if same == len(other) {
		t.Errorf("different seeds should give different query orders")
	}
}

func TestSampleBibNetVenueTask(t *testing.T) {
	net := smallBibNet(t)
	instances, err := SampleBibNet(net, TaskVenue, 10, 3)
	if err != nil {
		t.Fatalf("SampleBibNet: %v", err)
	}
	for _, inst := range instances {
		if len(inst.GroundTruth) != 1 {
			t.Fatalf("venue task should have exactly one ground-truth node")
		}
		if inst.TargetType != datasets.TypeVenue {
			t.Fatalf("target type should be venue")
		}
	}
}

func TestSampleBibNetErrors(t *testing.T) {
	net := smallBibNet(t)
	if _, err := SampleBibNet(net, TaskRelevantURL, 5, 1); err == nil {
		t.Errorf("QLog task on BibNet should error")
	}
	if _, err := SampleBibNet(net, TaskAuthor, 0, 1); err == nil {
		t.Errorf("zero query count should error")
	}
	// Asking for more queries than papers clips to the eligible set.
	many, err := SampleBibNet(net, TaskVenue, 10_000_000, 1)
	if err != nil {
		t.Fatalf("SampleBibNet: %v", err)
	}
	if len(many) != len(net.Papers) {
		t.Errorf("clipped sample size = %d, want %d", len(many), len(net.Papers))
	}
}

func TestSampleQLogTasks(t *testing.T) {
	qlog := smallQLog(t)
	urls, err := SampleQLog(qlog, TaskRelevantURL, 20, 5)
	if err != nil {
		t.Fatalf("SampleQLog: %v", err)
	}
	for _, inst := range urls {
		if inst.TargetType != datasets.TypeURL || len(inst.GroundTruth) != 1 {
			t.Fatalf("relevant-URL instance malformed")
		}
		for truth := range inst.GroundTruth {
			if !qlog.Graph.HasEdge(inst.QueryNode, truth) {
				t.Fatalf("ground-truth URL was never clicked by the query phrase")
			}
		}
		if len(inst.RemovedEdges) != 2 {
			t.Fatalf("expected both directions of the click edge removed, got %d", len(inst.RemovedEdges))
		}
	}

	equiv, err := SampleQLog(qlog, TaskEquivalentSearch, 20, 5)
	if err != nil {
		t.Fatalf("SampleQLog: %v", err)
	}
	for _, inst := range equiv {
		if inst.TargetType != datasets.TypePhrase || len(inst.GroundTruth) == 0 {
			t.Fatalf("equivalent-search instance malformed")
		}
		qKey := datasets.NormalizePhrase(qlog.Graph.Label(inst.QueryNode))
		for truth := range inst.GroundTruth {
			if datasets.NormalizePhrase(qlog.Graph.Label(truth)) != qKey {
				t.Fatalf("ground-truth phrase is not equivalent to the query")
			}
		}
	}

	if _, err := SampleQLog(qlog, TaskAuthor, 5, 1); err == nil {
		t.Errorf("BibNet task on QLog should error")
	}
	if _, err := SampleQLog(qlog, TaskRelevantURL, 0, 1); err == nil {
		t.Errorf("zero query count should error")
	}
}
