package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/testgraphs"
)

// newDegradeStack is newTestStack with a degrade margin armed, so requests
// that arrive with a context deadline get the deadline-aware soft budget.
func newDegradeStack(t *testing.T, margin time.Duration, opts cliutil.HTTPOptions) (*Server, *httptest.Server) {
	t.Helper()
	toy := testgraphs.NewToy()
	m := NewMetrics()
	engine, err := roundtriprank.NewEngine(toy.Graph, roundtriprank.WithQueryStatsHook(m.RecordQuery))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := New(engine, m, Config{DegradeMargin: margin})
	opts.Routes = Routes()
	opts.Exempt = ExemptRoutes()
	srv := httptest.NewServer(cliutil.WrapHTTP(s.Handler(), m.Registry(), opts))
	t.Cleanup(srv.Close)
	return s, srv
}

// TestBuildRequestBudget pins the wire → engine budget mapping: the three
// deterministic knobs pass through, the wall-clock margin stays server-side
// (a replayed request must not depend on when it was first sent), and an
// omitted budget plans none.
func TestBuildRequestBudget(t *testing.T) {
	g := testgraphs.NewToy().Graph
	base := rankRequest{Query: []string{"term:spatio"}, K: 3,
		Budget: &rankBudget{MaxRounds: 7, MaxTouched: 123, FrontierCap: 9}}
	req, err := buildRequest(g, base)
	if err != nil {
		t.Fatalf("buildRequest: %v", err)
	}
	if req.Budget == nil {
		t.Fatal("wire budget dropped")
	}
	if req.Budget.MaxRounds != 7 || req.Budget.MaxTouched != 123 || req.Budget.FrontierCap != 9 {
		t.Errorf("budget mapped to %+v, want 7/123/9", *req.Budget)
	}
	if req.Budget.FlushMargin != 0 {
		t.Errorf("wire budget set a flush margin %v; wall-clock policy is the server's", req.Budget.FlushMargin)
	}

	base.Budget = nil
	if req, err = buildRequest(g, base); err != nil {
		t.Fatalf("buildRequest: %v", err)
	}
	if req.Budget != nil {
		t.Errorf("omitted budget planned %+v, want none", *req.Budget)
	}
}

// TestRankBudgetDegradedServes200 drives a starved budget end to end: the
// query cannot converge in one round at eps=0, so the response must be a 200
// carrying the best-effort ranking with the degraded certificate — and the
// degradation must land in the metrics.
func TestRankBudgetDegradedServes200(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})
	resp, out := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0,"budget":{"max_rounds":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank status = %d, want 200 with a degraded result", resp.StatusCode)
	}
	if !out.Degraded || out.Converged {
		t.Errorf("degraded=%v converged=%v, want a degraded partial result", out.Degraded, out.Converged)
	}
	if len(out.Results) != 3 {
		t.Errorf("degraded response carries %d results, want the best-effort top-3", len(out.Results))
	}
	if out.CertifiedK < 0 || out.CertifiedK > len(out.Results) {
		t.Errorf("certified_k = %d outside [0, %d]", out.CertifiedK, len(out.Results))
	}
	if out.AchievedEpsilon <= 0 {
		t.Errorf("achieved_epsilon = %g, want the positive residual gap", out.AchievedEpsilon)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	for _, want := range []string{
		`rtrank_engine_query_degraded_total{method="2sbound"} 1`,
		`rtrank_engine_query_certified_k_count{method="2sbound"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRankBudgetNothingCertifiableIs504 pins the only case the anytime layer
// still times out: the budget died before any admissible result existed (the
// venue filter needs two hops; one round reaches none), so there is nothing
// best-effort to return.
func TestRankBudgetNothingCertifiableIs504(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})
	resp, _ := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0,"type":"venue","budget":{"max_rounds":1}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/rank with an empty degraded result = %d, want 504", resp.StatusCode)
	}
}

// TestRankConvergedCertifiesFullPrefix pins the certificate on the happy
// path: an eps=0 converged ranking is exact by definition, so the wire
// response certifies every returned position.
func TestRankConvergedCertifiesFullPrefix(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})
	resp, out := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0,"type":"venue"}`)
	if resp.StatusCode != http.StatusOK || !out.Converged {
		t.Fatalf("status=%d converged=%v, want a converged 200", resp.StatusCode, out.Converged)
	}
	if out.Degraded {
		t.Errorf("converged response marked degraded")
	}
	if out.CertifiedK != len(out.Results) {
		t.Errorf("converged eps=0 certified %d of %d positions", out.CertifiedK, len(out.Results))
	}
}

// TestDegradeMarginConvertsDeadline pins the deadline-aware degradation
// policy: with the margin armed and the request running under a deadline the
// margin exceeds, the handler converts the deadline into a soft budget and
// answers 200-with-degraded instead of racing into a 504. Without a request
// deadline the margin must stay inert.
func TestDegradeMarginConvertsDeadline(t *testing.T) {
	_, srv := newDegradeStack(t, time.Hour, cliutil.HTTPOptions{RequestTimeout: 30 * time.Second})
	resp, out := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank status = %d, want 200 (deadline converted to a soft stop)", resp.StatusCode)
	}
	if !out.Degraded || out.Converged || len(out.Results) == 0 {
		t.Errorf("degraded=%v converged=%v results=%d, want a degraded partial result",
			out.Degraded, out.Converged, len(out.Results))
	}

	_, plain := newDegradeStack(t, time.Hour, cliutil.HTTPOptions{})
	resp, out = postRank(t, plain, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0,"type":"venue"}`)
	if resp.StatusCode != http.StatusOK || !out.Converged || out.Degraded {
		t.Errorf("without a deadline the margin must stay inert: status=%d converged=%v degraded=%v",
			resp.StatusCode, out.Converged, out.Degraded)
	}
}

// TestApplyDegradeMargin unit-tests the policy edges the end-to-end paths
// cannot isolate: a client-supplied flush margin wins over the server's, and
// a zero margin disables the conversion entirely.
func TestApplyDegradeMargin(t *testing.T) {
	s := &Server{cfg: Config{DegradeMargin: 50 * time.Millisecond}}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Minute))
	defer cancel()

	req := roundtriprank.Request{}
	s.applyDegradeMargin(ctx, &req)
	if req.Budget == nil || req.Budget.FlushMargin != 50*time.Millisecond {
		t.Errorf("margin not applied under a deadline: %+v", req.Budget)
	}

	req = roundtriprank.Request{Budget: &roundtriprank.Budget{FlushMargin: time.Second}}
	s.applyDegradeMargin(ctx, &req)
	if req.Budget.FlushMargin != time.Second {
		t.Errorf("server margin overwrote the request's own flush margin: %v", req.Budget.FlushMargin)
	}

	req = roundtriprank.Request{}
	s.applyDegradeMargin(context.Background(), &req)
	if req.Budget != nil {
		t.Errorf("margin applied without a deadline: %+v", req.Budget)
	}

	off := &Server{}
	req = roundtriprank.Request{}
	off.applyDegradeMargin(ctx, &req)
	if req.Budget != nil {
		t.Errorf("zero margin must disable the conversion: %+v", req.Budget)
	}
}
