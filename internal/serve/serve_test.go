package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
	"roundtriprank/internal/testgraphs"
)

// newTestStack builds the full production stack over the toy graph: metrics,
// engine with the stats hook, server, and the shared middleware.
func newTestStack(t *testing.T, opts cliutil.HTTPOptions) (*roundtriprank.Engine, *Server, *httptest.Server) {
	t.Helper()
	toy := testgraphs.NewToy()
	m := NewMetrics()
	engine, err := roundtriprank.NewEngine(toy.Graph, roundtriprank.WithQueryStatsHook(m.RecordQuery))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := New(engine, m, Config{})
	opts.Routes = Routes()
	opts.Exempt = ExemptRoutes()
	srv := httptest.NewServer(cliutil.WrapHTTP(s.Handler(), m.Registry(), opts))
	t.Cleanup(srv.Close)
	return engine, s, srv
}

func postRank(t *testing.T, srv *httptest.Server, body string) (*http.Response, rankResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /rank: %v", err)
	}
	defer resp.Body.Close()
	var out rankResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode /rank response: %v", err)
		}
	}
	return resp, out
}

// TestBuildRequestEpsilon pins the zero-value fix: an omitted epsilon plans
// the paper's ε=0.01 default, an explicit 0 still demands the exact
// guarantee, and other explicit values pass through.
func TestBuildRequestEpsilon(t *testing.T) {
	g := testgraphs.NewToy().Graph
	base := rankRequest{Query: []string{"term:spatio"}, K: 3}

	req, err := buildRequest(g, base)
	if err != nil {
		t.Fatalf("buildRequest: %v", err)
	}
	if req.Epsilon != DefaultEpsilon {
		t.Errorf("omitted epsilon plans %g, want %g", req.Epsilon, DefaultEpsilon)
	}

	zero := 0.0
	base.Epsilon = &zero
	if req, err = buildRequest(g, base); err != nil {
		t.Fatalf("buildRequest: %v", err)
	}
	if req.Epsilon != 0 {
		t.Errorf("explicit zero epsilon plans %g, want 0 (exact demand)", req.Epsilon)
	}

	quarter := 0.25
	base.Epsilon = &quarter
	if req, err = buildRequest(g, base); err != nil {
		t.Fatalf("buildRequest: %v", err)
	}
	if req.Epsilon != 0.25 {
		t.Errorf("explicit epsilon plans %g, want 0.25", req.Epsilon)
	}
}

// TestExplicitZeroEpsilonIsExact pins the wire behavior end to end: a /rank
// with "epsilon": 0 must reach the engine unchanged — its response is
// bit-identical to a direct exact-demand Engine.Rank — and its ranking must
// agree with the exact method's top-K.
func TestExplicitZeroEpsilonIsExact(t *testing.T) {
	engine, _, srv := newTestStack(t, cliutil.HTTPOptions{})

	resp, got := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound","epsilon":0,"type":"venue"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank status = %d", resp.StatusCode)
	}
	if !got.Converged {
		t.Fatalf("eps=0 query did not converge")
	}

	// Mirror the request directly on the engine: the wire layer must not
	// have perturbed epsilon, so scores agree bit for bit.
	g := engine.View().(*roundtriprank.Graph)
	venue, err := cliutil.TypeByName(g, "venue")
	if err != nil {
		t.Fatalf("TypeByName: %v", err)
	}
	q := g.NodeByLabel("term:spatio")
	want, err := engine.Rank(context.Background(), roundtriprank.Request{
		Query:   roundtriprank.SingleNode(q),
		K:       3,
		Method:  roundtriprank.TwoSBound,
		Epsilon: 0,
		Filter:  &roundtriprank.Filter{ExcludeQuery: true, Types: []roundtriprank.NodeType{venue}},
	})
	if err != nil {
		t.Fatalf("engine Rank: %v", err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("HTTP returned %d results, engine %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Node != want.Results[i].Node || got.Results[i].Score != want.Results[i].Score {
			t.Errorf("result %d: HTTP (%d, %v) != engine (%d, %v)",
				i, got.Results[i].Node, got.Results[i].Score, want.Results[i].Node, want.Results[i].Score)
		}
	}

	// And the eps=0 ranking agrees with the exact method's node order.
	respEx, exact := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"exact","type":"venue"}`)
	if respEx.StatusCode != http.StatusOK {
		t.Fatalf("/rank exact status = %d", respEx.StatusCode)
	}
	for i := range exact.Results {
		if got.Results[i].Node != exact.Results[i].Node {
			t.Errorf("rank %d: eps=0 returned node %d, exact %d", i, got.Results[i].Node, exact.Results[i].Node)
		}
	}
}

// TestOmittedEpsilonServes checks a request without epsilon is served with
// the default precision (and converges on the toy graph).
func TestOmittedEpsilonServes(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})
	resp, got := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank status = %d", resp.StatusCode)
	}
	if !got.Converged || len(got.Results) != 3 {
		t.Errorf("converged=%v results=%d, want converged top-3", got.Converged, len(got.Results))
	}
}

// TestMutationSurvivesClientDisconnect pins the detached-context fix: a
// client that disconnects mid-mutation must not cancel the commit. The
// handler sees an already-cancelled request context; the epoch still rolls.
func TestMutationSurvivesClientDisconnect(t *testing.T) {
	engine, s, _ := newTestStack(t, cliutil.HTTPOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the commit starts
	body := `{"add_nodes":[{"type":"term","label":"term:streaming"}],` +
		`"set":[{"from":"term:streaming","to":"paper:p1","weight":1,"undirected":true}]}`
	req := httptest.NewRequest("POST", "/v1/edges", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("mutation with disconnected client = %d: %s", rec.Code, rec.Body.String())
	}
	if got := engine.Epoch(); got != 1 {
		t.Errorf("epoch = %d after mutation, want 1", got)
	}
	g := engine.View().(*roundtriprank.Graph)
	if g.NodeByLabel("term:streaming") == roundtriprank.NoNode {
		t.Error("mutation did not land: term:streaming missing from the served graph")
	}
}

// TestStatusForError pins the error→status mapping the handlers rely on.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&roundtriprank.ValidationError{Err: errors.New("bad k")}, http.StatusBadRequest},
		{fmt.Errorf("wrapped: %w", &roundtriprank.ValidationError{Err: errors.New("bad")}), http.StatusBadRequest},
		{&roundtriprank.ClusterError{Err: errors.New("worker down")}, http.StatusBadGateway},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("solver exploded"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusForError(c.err); got != c.want {
			t.Errorf("statusForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHandlerStatusCodes drives the classification end to end over the
// method-scoped mux.
func TestHandlerStatusCodes(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"invalid JSON", "POST", "/rank", `{"query":`, http.StatusBadRequest},
		{"unknown method", "POST", "/rank", `{"query":["term:spatio"],"method":"psychic"}`, http.StatusBadRequest},
		{"unknown label", "POST", "/rank", `{"query":["term:nope"]}`, http.StatusBadRequest},
		{"negative k", "POST", "/rank", `{"query":["term:spatio"],"k":-1}`, http.StatusBadRequest},
		{"workers missing", "POST", "/rank", `{"query":["term:spatio"],"method":"distributed"}`, http.StatusBadRequest},
		{"GET on /rank", "GET", "/rank", "", http.StatusMethodNotAllowed},
		{"POST on /healthz", "POST", "/healthz", "", http.StatusMethodNotAllowed},
		{"empty mutation", "POST", "/v1/edges", `{}`, http.StatusBadRequest},
		{"stale edge target", "POST", "/v1/edges", `{"set":[{"from":"term:ghost","to":"paper:p1"}]}`, http.StatusBadRequest},
		{"healthz", "GET", "/healthz", "", http.StatusOK},
		{"epoch", "GET", "/v1/epoch", "", http.StatusOK},
		{"metrics", "GET", "/metrics", "", http.StatusOK},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: NewRequest: %v", c.name, err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and asserts the
// documented families appear with the expected samples.
func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := newTestStack(t, cliutil.HTTPOptions{})

	for i := 0; i < 3; i++ {
		if resp, _ := postRank(t, srv, `{"query":["term:spatio"],"k":3,"method":"2sbound"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("/rank status = %d", resp.StatusCode)
		}
	}
	if resp, _ := postRank(t, srv, `{"query":["term:spatio"],"method":"psychic"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-method /rank status = %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		`rtrank_engine_queries_total{method="2sbound",outcome="ok"} 3`,
		`rtrank_engine_query_duration_seconds_count{method="2sbound"} 3`,
		`rtrank_engine_query_latency_seconds{method="2sbound",quantile="0.99"}`,
		`rtrank_http_requests_total{path="/rank",code="200"} 3`,
		`rtrank_http_requests_total{path="/rank",code="400"} 1`,
		`rtrank_http_request_duration_seconds_bucket{path="/rank"`,
		"rtrank_epoch 0",
		"rtrank_fleet_connected 0",
		"rtrank_fleet_epoch_lag 0",
		"rtrank_vector_cache_hits_total",
		"rtrank_row_cache_hits_total 0",
		"rtrank_cluster_rpcs_total 0",
		"rtrank_scratch_pool_in_use 0",
		"rtrank_scratch_pool_peak",
		"rtrank_http_in_flight 0", // the scrape itself is exempt from the gate
		"rtrank_http_requests_shed_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}
