package serve

import (
	"context"
	"errors"
	"strings"
	"sync"

	"roundtriprank"
	"roundtriprank/internal/obs"
	"roundtriprank/internal/topk"
)

// Metrics is rtrankd's metric surface: the obs.Registry behind GET /metrics,
// the engine-level gauges (epoch, caches, cluster, scratch pool), and the
// per-method query histograms fed by the engine's stats hook.
//
// Construction is two-phase because the hook and the engine need each other:
// create Metrics first, pass RecordQuery to the engine via
// roundtriprank.WithQueryStatsHook, then let serve.New bind the engine's
// gauges.
type Metrics struct {
	reg *obs.Registry

	mu       sync.Mutex
	byMethod map[string]*methodMetrics
	bound    bool
}

// methodMetrics is one ranking method's query instrumentation.
type methodMetrics struct {
	hist      *obs.Histogram
	outcomes  map[string]*obs.Counter
	degraded  *obs.Counter
	certified *obs.CountHistogram
}

// NewMetrics returns a Metrics over a fresh "rtrank"-namespaced registry.
func NewMetrics() *Metrics {
	return &Metrics{
		reg:      obs.NewRegistry("rtrank"),
		byMethod: map[string]*methodMetrics{},
	}
}

// Registry exposes the underlying registry, e.g. for the shared cliutil HTTP
// middleware to register its http_* families on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// RecordQuery is the engine stats hook: it counts the query under its
// resolved method and outcome and feeds the method's latency histogram.
// Outcomes are "ok", "canceled" (the caller's context ended the query —
// disconnect or deadline) and "error".
func (m *Metrics) RecordQuery(s roundtriprank.QueryStat) {
	// Lowercased to match the wire spelling ("2sbound", not "2SBound"); the
	// parser is case-insensitive, so the label round-trips into requests.
	mm := m.forMethod(strings.ToLower(s.Method.String()))
	outcome := "ok"
	switch {
	case s.Err == nil:
	case errors.Is(s.Err, context.Canceled), errors.Is(s.Err, context.DeadlineExceeded):
		outcome = "canceled"
	default:
		outcome = "error"
	}
	mm.outcomes[outcome].Inc()
	mm.hist.Observe(s.Elapsed)
	if s.Err == nil {
		if s.Degraded {
			mm.degraded.Inc()
		}
		mm.certified.Observe(int64(s.CertifiedK))
	}
}

// forMethod returns (creating on first use) one method's instrumentation.
// The method set is tiny and fixed, so families stay bounded.
func (m *Metrics) forMethod(method string) *methodMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mm := m.byMethod[method]
	if mm != nil {
		return mm
	}
	labels := `method="` + method + `"`
	mm = &methodMetrics{
		hist: m.reg.Histogram("engine_query_duration_seconds",
			"Ranking query latency, by resolved method.", labels),
		outcomes: map[string]*obs.Counter{},
	}
	for _, outcome := range []string{"ok", "canceled", "error"} {
		mm.outcomes[outcome] = m.reg.Counter("engine_queries_total",
			"Ranking queries executed, by resolved method and outcome.",
			labels+`,outcome="`+outcome+`"`)
	}
	mm.degraded = m.reg.Counter("engine_query_degraded_total",
		"Queries a budget or deadline-derived soft stop ended early (best-effort result returned).",
		labels)
	mm.certified = m.reg.CountHistogram("engine_query_certified_k",
		"Certified result-prefix length per successful query.", labels)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}} {
		h := mm.hist
		m.reg.Gauge("engine_query_latency_seconds",
			"Ranking query latency quantile estimates (log2-bucket resolution).",
			labels+`,quantile="`+q.label+`"`,
			func(qq float64) func() float64 {
				return func() float64 { return h.Quantile(qq).Seconds() }
			}(q.q))
	}
	m.byMethod[method] = mm
	return mm
}

// bindEngine registers the gauges and counter mirrors that read the engine's
// own cumulative stats at scrape time: epoch and fleet lag, vector- and
// row-cache traffic, cluster RPCs, and scratch-pool occupancy. Idempotent
// per Metrics (the second bind is ignored so tests can reuse a server).
func (m *Metrics) bindEngine(e *roundtriprank.Engine) {
	m.mu.Lock()
	if m.bound {
		m.mu.Unlock()
		return
	}
	m.bound = true
	m.mu.Unlock()

	m.reg.Gauge("epoch", "Epoch of the serving snapshot.", "",
		func() float64 { return float64(e.Epoch()) })
	m.reg.Gauge("fleet_connected", "1 when the current epoch has connected to its worker fleet.", "",
		func() float64 {
			if _, ok := e.FleetEpoch(); ok {
				return 1
			}
			return 0
		})
	m.reg.Gauge("fleet_epoch_lag", "Serving epoch minus the worker fleet's epoch; non-zero while a rollover is reconciling.", "",
		func() float64 {
			fleet, ok := e.FleetEpoch()
			if !ok {
				return 0
			}
			return float64(e.Epoch()) - float64(fleet)
		})

	m.reg.CounterFunc("vector_cache_hits_total", "Vector cache hits.", "",
		func() float64 { h, _, _ := e.CacheStats(); return float64(h) })
	m.reg.CounterFunc("vector_cache_misses_total", "Vector cache misses.", "",
		func() float64 { _, mi, _ := e.CacheStats(); return float64(mi) })
	m.reg.Gauge("vector_cache_entries", "Vectors currently cached.", "",
		func() float64 { _, _, n := e.CacheStats(); return float64(n) })

	m.reg.CounterFunc("row_cache_hits_total", "Row cache hits (2sbound-remote).", "",
		func() float64 { return float64(e.RowServeStats().CacheHits) })
	m.reg.CounterFunc("row_cache_misses_total", "Row cache misses (2sbound-remote).", "",
		func() float64 { return float64(e.RowServeStats().CacheMisses) })
	m.reg.CounterFunc("row_cache_evictions_total", "Row cache evictions.", "",
		func() float64 { return float64(e.RowServeStats().CacheEvictions) })
	m.reg.Gauge("row_cache_rows", "Rows currently cached.", "",
		func() float64 { return float64(e.RowServeStats().CachedRows) })
	m.reg.CounterFunc("rows_fetched_total", "Rows fetched from workers by the current epoch's row view.", "",
		func() float64 { return float64(e.RowServeStats().RowsFetched) })
	m.reg.CounterFunc("row_rpcs_total", "Row-fetch RPCs issued by the current epoch's row view.", "",
		func() float64 { return float64(e.RowServeStats().RowRPCs) })
	m.reg.CounterFunc("row_retries_total", "Row-fetch RPC retries by the current epoch's row view.", "",
		func() float64 { return float64(e.RowServeStats().RowRetries) })

	m.reg.CounterFunc("cluster_rpcs_total", "Worker RPCs issued by the current epoch's coordinator and row view.", "",
		func() float64 { r, _ := e.ClusterStats(); return float64(r) })
	m.reg.CounterFunc("cluster_retries_total", "Worker RPC retries by the current epoch's coordinator and row view.", "",
		func() float64 { _, r := e.ClusterStats(); return float64(r) })

	for _, s := range []struct {
		state string
		count func(roundtriprank.ClusterHealth) int
	}{
		{"alive", func(h roundtriprank.ClusterHealth) int { return h.MembersAlive }},
		{"suspect", func(h roundtriprank.ClusterHealth) int { return h.MembersSuspect }},
		{"dead", func(h roundtriprank.ClusterHealth) int { return h.MembersDead }},
		{"draining", func(h roundtriprank.ClusterHealth) int { return h.MembersDraining }},
	} {
		count := s.count
		m.reg.Gauge("fleet_members", "Registered fleet members by liveness state (zero without a fleet manager).",
			`state="`+s.state+`"`,
			func() float64 { return float64(count(e.ClusterHealth())) })
	}
	m.reg.CounterFunc("fleet_failovers_total", "Calls that succeeded only after routing around a failed replica.", "",
		func() float64 { return float64(e.ClusterHealth().Failovers) })
	m.reg.CounterFunc("fleet_hedges_total", "Row fetches whose hedge to a second replica fired.", "",
		func() float64 { return float64(e.ClusterHealth().Hedges) })
	m.reg.Gauge("fleet_replication", "Configured replica count per stripe (zero without a fleet manager).", "",
		func() float64 { return float64(e.ClusterHealth().Replication) })

	m.reg.Gauge("scratch_pool_in_use", "Pooled online-query scratch objects currently checked out.", "",
		func() float64 { n, _ := topk.PoolStats(); return float64(n) })
	m.reg.Gauge("scratch_pool_peak", "High-water mark of concurrently checked-out scratch objects.", "",
		func() float64 { _, p := topk.PoolStats(); return float64(p) })
}
