// Package serve is rtrankd's HTTP serving layer: the wire types, handlers
// and error classification behind POST /rank, GET /healthz, GET /v1/epoch,
// POST /v1/edges and GET /metrics. It lives outside cmd/rtrankd so the
// benchrunner overload scenario and the httptest suites drive the exact
// stack production serves, middleware included.
//
// Three serving rules are encoded here rather than in the handlers' callers:
//
//   - An omitted "epsilon" means the paper's default ε=0.01, while an
//     explicit "epsilon": 0 still demands the exact top-K guarantee (the
//     wire field is a pointer precisely to tell the two apart).
//   - Mutations detach from the client: POST /v1/edges applies its commit
//     (and any fleet redeploy) under a server-scoped context, so a client
//     disconnect mid-commit cannot strand the fleet between epochs.
//   - Engine errors map onto status codes by kind: validation → 400,
//     cluster trouble → 502, deadline → 504, anything else → 500.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"roundtriprank"
	"roundtriprank/internal/cliutil"
)

// DefaultEpsilon is the ε a /rank request gets when it omits the field: the
// paper's default precision for the 2SBound online search. Send
// "epsilon": 0 to demand the exact guarantee instead.
const DefaultEpsilon = 0.01

// DefaultMutationTimeout bounds a detached mutation (commit + fleet
// redeploy) when Config.MutationTimeout is zero.
const DefaultMutationTimeout = 5 * time.Minute

// maxRequestBytes caps the /rank request body; a ranking request is a few
// labels and scalars, so 1 MiB is generous.
const maxRequestBytes = 1 << 20

// maxMutationBytes caps the /v1/edges request body. An ingestion batch is
// bounded JSON, not a graph upload; bulk loads go through -graph files.
const maxMutationBytes = 64 << 20

// Config carries the serving policy that is not the engine's concern.
type Config struct {
	// Workers is the stripe-worker count reported by /healthz.
	Workers int
	// MutationTimeout bounds one detached mutation application (default
	// DefaultMutationTimeout). It must cover a full commit plus stripe
	// redeploy on the largest expected batch.
	MutationTimeout time.Duration
	// BaseContext scopes detached mutations to the server's lifetime
	// (default context.Background()). Shutting the server down cancels
	// mutations through it.
	BaseContext context.Context
	// DegradeMargin enables deadline-aware degradation: when positive and a
	// /rank request arrives with a context deadline (client timeout or
	// server-side middleware), the engine is told to stop expanding that
	// margin *before* the deadline and certify what it has, so the client
	// gets a 200 with a partial, certified prefix instead of a 504 with
	// nothing. Zero disables the policy (deadline overruns keep failing with
	// 504 as before).
	DegradeMargin time.Duration
}

// Server owns the handler state over one Engine.
type Server struct {
	engine  *roundtriprank.Engine
	metrics *Metrics
	cfg     Config

	// mutateMu serializes /v1/edges: each batch stages its delta against the
	// snapshot it resolved labels on, so two concurrent batches must not
	// interleave between staging and Apply.
	mutateMu sync.Mutex
}

// New returns a Server over engine. metrics may be nil (no /metrics route);
// when given, the engine's gauges are bound to it here.
func New(engine *roundtriprank.Engine, metrics *Metrics, cfg Config) *Server {
	if cfg.MutationTimeout <= 0 {
		cfg.MutationTimeout = DefaultMutationTimeout
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	if metrics != nil {
		metrics.bindEngine(engine)
	}
	return &Server{engine: engine, metrics: metrics, cfg: cfg}
}

// Routes lists the served path labels, for the middleware's cardinality
// allowlist.
func Routes() []string {
	return []string{"/rank", "/healthz", "/metrics", "/v1/epoch", "/v1/edges"}
}

// ExemptRoutes lists the paths that must bypass admission control: health
// probes and metric scrapes have to succeed on a saturated server.
func ExemptRoutes() []string {
	return []string{"/healthz", "/metrics"}
}

// Handler returns the method-scoped mux over the server's routes. Unmatched
// methods get 405 with an Allow header from the mux itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rank", s.handleRank)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/epoch", s.handleEpoch)
	mux.HandleFunc("POST /v1/edges", s.handleEdges)
	if s.metrics != nil {
		mux.Handle("GET /metrics", s.metrics.Registry().Handler())
	}
	return mux
}

// graph returns the currently served snapshot. Label resolution and result
// labeling go through it; the engine itself pins a snapshot per query.
func (s *Server) graph() *roundtriprank.Graph {
	return s.engine.View().(*roundtriprank.Graph)
}

// rankRequest is the JSON body of POST /rank.
type rankRequest struct {
	// Query lists query node labels; Nodes lists raw node IDs. At least one
	// of the two must be non-empty; they are combined when both are given.
	Query []string               `json:"query,omitempty"`
	Nodes []roundtriprank.NodeID `json:"nodes,omitempty"`
	K     int                    `json:"k"`
	// Method is auto (default), exact, distributed or 2sbound-remote (both
	// require workers), 2sbound, gs, gupta or sarkar.
	Method string `json:"method,omitempty"`
	// Type restricts results to the named node type (as registered on the
	// graph, e.g. "venue"); empty keeps all types.
	Type string `json:"type,omitempty"`
	// KeepQuery keeps the query nodes in the results (default: excluded).
	KeepQuery bool     `json:"keep_query,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Beta      *float64 `json:"beta,omitempty"`
	// Epsilon is a pointer so the zero value is distinguishable from an
	// omitted field: omitted means DefaultEpsilon, explicit 0 means exact.
	Epsilon *float64 `json:"epsilon,omitempty"`
	// Budget caps the online search (anytime execution); omitted means
	// unbudgeted. See rankBudget.
	Budget *rankBudget `json:"budget,omitempty"`
}

// rankBudget is the wire form of roundtriprank.Budget: deterministic caps on
// the online search. The wall-clock dimension is intentionally absent from
// the wire — it derives from the request deadline and the server's
// DegradeMargin, so a replayed request body stays deterministic.
type rankBudget struct {
	MaxRounds   int `json:"max_rounds,omitempty"`
	MaxTouched  int `json:"max_touched,omitempty"`
	FrontierCap int `json:"frontier_cap,omitempty"`
}

type rankResult struct {
	Node  roundtriprank.NodeID `json:"node"`
	Label string               `json:"label"`
	Score float64              `json:"score"`
}

// rankRows mirrors roundtriprank.RowQueryStats on the wire: the row-serving
// footprint of a 2sbound-remote query.
type rankRows struct {
	Fetched     int64 `json:"fetched"`
	RPCs        int64 `json:"rpcs"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

type rankResponse struct {
	Results   []rankResult `json:"results"`
	Method    string       `json:"method"`
	Converged bool         `json:"converged"`
	// Degraded reports that a budget (or the deadline-derived soft stop)
	// ended the search early; Results is then best-effort, with the first
	// CertifiedK entries guaranteed to match the exact top-K prefix.
	Degraded bool `json:"degraded,omitempty"`
	// CertifiedK is the length of the result prefix proven correct by the
	// search's live bounds (equals len(results) on a converged exact answer).
	CertifiedK int `json:"certified_k"`
	// AchievedEpsilon is the ε the returned ranking actually satisfies, on
	// the same squared-score scale as the request's epsilon field.
	AchievedEpsilon float64   `json:"achieved_epsilon,omitempty"`
	Rounds          int       `json:"rounds,omitempty"`
	Rows            *rankRows `json:"rows,omitempty"`
	ElapsedMS       float64   `json:"elapsed_ms"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var in rankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := buildRequest(s.graph(), in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDegradeMargin(r.Context(), &req)
	resp, err := s.engine.Rank(r.Context(), req)
	if err != nil {
		if r.Context().Err() == context.Canceled {
			// Client went away; nothing useful to write.
			return
		}
		httpError(w, statusForError(err), "%v", err)
		return
	}
	if resp.Degraded && len(resp.Results) == 0 {
		// The budget fired before the search surfaced anything: there is no
		// partial answer worth 200-ing, so report it like the timeout it is.
		httpError(w, http.StatusGatewayTimeout, "query budget exhausted before any result was found")
		return
	}
	out := rankResponse{
		Results:         make([]rankResult, len(resp.Results)),
		Method:          resp.Method.String(),
		Converged:       resp.Converged,
		Degraded:        resp.Degraded,
		CertifiedK:      resp.CertifiedK,
		AchievedEpsilon: resp.AchievedEpsilon,
		Rounds:          resp.Rounds,
		ElapsedMS:       float64(resp.Elapsed.Microseconds()) / 1000.0,
	}
	if resp.Rows != nil {
		out.Rows = &rankRows{
			Fetched:     resp.Rows.Fetched,
			RPCs:        resp.Rows.RPCs,
			CacheHits:   resp.Rows.CacheHits,
			CacheMisses: resp.Rows.CacheMisses,
		}
	}
	// Labels come from the snapshot current *after* the ranking: it is at
	// least as new as the one the query ran on, and labels are append-only
	// across epochs, so every result ID resolves even if a mutation landed
	// mid-query.
	g := s.graph()
	for i, res := range resp.Results {
		out.Results[i] = rankResult{Node: res.Node, Label: g.Label(res.Node), Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// applyDegradeMargin arms the deadline-aware soft stop: when the policy is
// enabled and the request context carries a deadline, the engine budget gets
// FlushMargin so the search stops expanding early enough to certify and
// serialize a partial result before the deadline kills the response. It never
// overrides a margin the request already carries (none can arrive on the
// wire today, but engine-embedding callers may set one).
func (s *Server) applyDegradeMargin(ctx context.Context, req *roundtriprank.Request) {
	if s.cfg.DegradeMargin <= 0 {
		return
	}
	if _, ok := ctx.Deadline(); !ok {
		return
	}
	if req.Budget == nil {
		req.Budget = &roundtriprank.Budget{}
	}
	if req.Budget.FlushMargin == 0 {
		req.Budget.FlushMargin = s.cfg.DegradeMargin
	}
}

// buildRequest translates the wire request into an Engine request, resolving
// labels against the given snapshot.
func buildRequest(g *roundtriprank.Graph, in rankRequest) (roundtriprank.Request, error) {
	var nodes []roundtriprank.NodeID
	for _, label := range in.Query {
		v := g.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			return roundtriprank.Request{}, fmt.Errorf("query node %q not found", label)
		}
		nodes = append(nodes, v)
	}
	nodes = append(nodes, in.Nodes...)
	if len(nodes) == 0 {
		return roundtriprank.Request{}, fmt.Errorf("empty query: provide \"query\" labels or \"nodes\" IDs")
	}
	method, err := roundtriprank.ParseMethod(in.Method)
	if err != nil {
		return roundtriprank.Request{}, err
	}
	filter := &roundtriprank.Filter{ExcludeQuery: !in.KeepQuery}
	if in.Type != "" {
		t, err := cliutil.TypeByName(g, in.Type)
		if err != nil {
			return roundtriprank.Request{}, err
		}
		filter.Types = []roundtriprank.NodeType{t}
	}
	k := in.K
	if k == 0 {
		k = 10
	}
	eps := DefaultEpsilon
	if in.Epsilon != nil {
		eps = *in.Epsilon
	}
	var budget *roundtriprank.Budget
	if in.Budget != nil {
		budget = &roundtriprank.Budget{
			MaxRounds:   in.Budget.MaxRounds,
			MaxTouched:  in.Budget.MaxTouched,
			FrontierCap: in.Budget.FrontierCap,
		}
	}
	return roundtriprank.Request{
		Query:   roundtriprank.MultiNode(nodes...),
		K:       k,
		Method:  method,
		Filter:  filter,
		Alpha:   in.Alpha,
		Beta:    in.Beta,
		Epsilon: eps,
		Budget:  budget,
	}, nil
}

// statusForError maps an engine error onto the response status: caller
// faults → 400, cluster/backend trouble → 502 (retryable through a load
// balancer), an expired per-request deadline → 504, anything else → 500.
func statusForError(err error) int {
	var ve *roundtriprank.ValidationError
	var ce *roundtriprank.ClusterError
	switch {
	case errors.As(err, &ve):
		return http.StatusBadRequest
	case errors.As(err, &ce):
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rpcs, retries := s.engine.ClusterStats()
	rs := s.engine.RowServeStats()
	g := s.graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"nodes":   g.NumNodes(),
		"edges":   g.NumEdges(),
		"epoch":   g.Epoch(),
		"workers": s.cfg.Workers,
		"cluster": map[string]any{"rpcs": rpcs, "retries": retries},
		"rows": map[string]any{
			"fetched":      rs.RowsFetched,
			"rpcs":         rs.RowRPCs,
			"retries":      rs.RowRetries,
			"cache_hits":   rs.CacheHits,
			"cache_misses": rs.CacheMisses,
			"evictions":    rs.CacheEvictions,
			"cached":       rs.CachedRows,
		},
	})
}

// handleEpoch reports the serving snapshot, so operators and deploy scripts
// can watch an epoch rollover land.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	g := s.graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":       g.Epoch(),
		"fingerprint": fmt.Sprintf("%08x", roundtriprank.GraphFingerprint(g)),
		"nodes":       g.NumNodes(),
		"edges":       g.NumEdges(),
	})
}

// nodeSpec names a node to add: a label plus an optional registered type name.
type nodeSpec struct {
	Type  string `json:"type,omitempty"`
	Label string `json:"label"`
}

// edgeSpec names one edge op by endpoint labels. Weight defaults to 1 on set
// and is ignored on remove; Undirected applies the op in both directions.
type edgeSpec struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Weight     float64 `json:"weight,omitempty"`
	Undirected bool    `json:"undirected,omitempty"`
}

// mutateRequest is the JSON body of POST /v1/edges: one atomic ingestion
// batch, applied as a single commit (all ops land in one new epoch, or none).
type mutateRequest struct {
	AddNodes    []nodeSpec `json:"add_nodes,omitempty"`
	Set         []edgeSpec `json:"set,omitempty"`
	Remove      []edgeSpec `json:"remove,omitempty"`
	RemoveNodes []string   `json:"remove_nodes,omitempty"`
}

type mutateResponse struct {
	Epoch           uint64  `json:"epoch"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	AddedNodes      int     `json:"added_nodes"`
	SetEdges        int     `json:"set_edges"`
	RemovedEdges    int     `json:"removed_edges"`
	RemovedNodes    int     `json:"removed_nodes"`
	StripesShipped  int     `json:"stripes_shipped"`
	StripesRetagged int     `json:"stripes_retagged"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// handleEdges stages one mutation batch as a Delta and applies it: the engine
// commits a fresh snapshot one epoch later and swaps to it atomically, after
// reconciling any configured worker fleet. In-flight queries are unaffected
// (they finish on their epoch).
//
// The Apply runs under a server-scoped context, NOT the request context: once
// a batch starts committing, a client disconnect must not cancel the fleet
// redeploy halfway through stripe shipping. The commit completes (or fails)
// coherently; the disconnected client simply never reads the response.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var in mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutationBytes)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(in.AddNodes) == 0 && len(in.Set) == 0 && len(in.Remove) == 0 && len(in.RemoveNodes) == 0 {
		httpError(w, http.StatusBadRequest, "empty mutation: provide add_nodes, set, remove or remove_nodes")
		return
	}
	start := time.Now()
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	d, err := s.buildDelta(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(s.cfg.BaseContext, s.cfg.MutationTimeout)
	defer cancel()
	res, err := s.engine.Apply(ctx, d)
	if err != nil {
		httpError(w, statusForError(err), "%v", err)
		return
	}
	an, se, re, rn := d.Ops()
	writeJSON(w, http.StatusOK, mutateResponse{
		Epoch:           res.Epoch,
		Nodes:           res.Graph.NumNodes(),
		Edges:           res.Graph.NumEdges(),
		AddedNodes:      an,
		SetEdges:        se,
		RemovedEdges:    re,
		RemovedNodes:    rn,
		StripesShipped:  res.StripesShipped,
		StripesRetagged: res.StripesRetagged,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

// buildDelta translates a wire mutation batch into a staged Delta against the
// current snapshot. Caller holds mutateMu.
func (s *Server) buildDelta(in mutateRequest) (*roundtriprank.Delta, error) {
	g := s.graph()
	d := roundtriprank.NewDelta(g)
	for _, ns := range in.AddNodes {
		if ns.Label == "" {
			return nil, fmt.Errorf("add_nodes entry is missing a label")
		}
		var t roundtriprank.NodeType
		if ns.Type != "" {
			var err error
			if t, err = cliutil.TypeByName(g, ns.Type); err != nil {
				return nil, err
			}
		}
		d.AddNode(t, ns.Label)
	}
	node := func(label string) (roundtriprank.NodeID, error) {
		v := d.NodeByLabel(label)
		if v == roundtriprank.NoNode {
			return v, fmt.Errorf("node %q not found (add it via add_nodes first)", label)
		}
		return v, nil
	}
	for _, es := range in.Set {
		from, err := node(es.From)
		if err != nil {
			return nil, err
		}
		to, err := node(es.To)
		if err != nil {
			return nil, err
		}
		w := es.Weight
		if w == 0 {
			w = 1
		}
		if es.Undirected {
			err = d.SetUndirectedEdge(from, to, w)
		} else {
			err = d.SetEdge(from, to, w)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, es := range in.Remove {
		from, err := node(es.From)
		if err != nil {
			return nil, err
		}
		to, err := node(es.To)
		if err != nil {
			return nil, err
		}
		if es.Undirected {
			err = d.RemoveUndirectedEdge(from, to)
		} else {
			err = d.RemoveEdge(from, to)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, label := range in.RemoveNodes {
		v, err := node(label)
		if err != nil {
			return nil, err
		}
		if err := d.RemoveNode(v); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
