package distributed_test

import (
	"context"
	"fmt"
	"math"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Example stripes a graph across two in-process workers, connects a
// coordinator, and shows the distributed F-Rank solve agreeing bit for bit
// with the local kernel.
func Example() {
	b := graph.NewBuilder()
	var nodes []graph.NodeID
	for i := 0; i < 6; i++ {
		nodes = append(nodes, b.AddNode(0, fmt.Sprintf("n%d", i)))
	}
	for i := 0; i < 6; i++ {
		b.MustAddUndirectedEdge(nodes[i], nodes[(i+1)%6], 1+float64(i%3))
	}
	g := b.MustBuild()

	// One Transport per stripe; Loopback runs the worker in-process, an HTTP
	// deployment swaps in NewHTTPTransport with identical semantics.
	var transports []distributed.Transport
	for i := 0; i < 2; i++ {
		s, err := distributed.BuildStripe(g, i, 2)
		if err != nil {
			panic(err)
		}
		transports = append(transports, distributed.NewLoopback(distributed.NewWorker(s)))
	}
	coord, err := distributed.NewCoordinator(context.Background(), transports, nil)
	if err != nil {
		panic(err)
	}
	defer coord.Close()
	fmt.Printf("%d workers serving %d nodes at epoch %d\n", coord.Workers(), coord.NumNodes(), coord.Epoch())

	q := walk.SingleNode(nodes[0])
	p := walk.Params{Alpha: 0.25, Tol: 1e-10, MaxIter: 200}
	dist, err := coord.FRank(context.Background(), q, p)
	if err != nil {
		panic(err)
	}
	local, err := walk.FRank(context.Background(), g, q, p)
	if err != nil {
		panic(err)
	}
	identical := true
	for i := range local {
		if math.Float64bits(dist[i]) != math.Float64bits(local[i]) {
			identical = false
		}
	}
	fmt.Printf("distributed solve bit-identical to local kernel: %v\n", identical)
	// Output:
	// 2 workers serving 6 nodes at epoch 0
	// distributed solve bit-identical to local kernel: true
}

// ExampleWorker_Retag rolls one worker to a new epoch without re-shipping its
// stripe: after a commit that did not touch the stripe's rows, only the graph
// fingerprint and epoch need rebinding.
func ExampleWorker_Retag() {
	b := graph.NewBuilder()
	a := b.AddNode(0, "a")
	c := b.AddNode(0, "b")
	b.MustAddUndirectedEdge(a, c, 1)
	g := b.MustBuild()

	s, err := distributed.BuildStripe(g, 0, 1)
	if err != nil {
		panic(err)
	}
	w := distributed.NewWorker(s)

	info, _ := w.Info()
	fmt.Printf("serving epoch %d\n", info.Epoch)
	info, err = w.Retag(0xabcd1234, info.Epoch+1, s.ContentFingerprint())
	if err != nil {
		panic(err)
	}
	fmt.Printf("serving epoch %d (same payload, %d rows)\n", info.Epoch, info.Rows)
	// Output:
	// serving epoch 0
	// serving epoch 1 (same payload, 2 rows)
}
