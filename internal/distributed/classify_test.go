package distributed

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"roundtriprank/internal/testgraphs"
)

// TestHTTPStatusClassification pins the retry taxonomy of the wire layer:
// 5xx responses mean "the worker is unwell, try again" and classify
// transient, while 4xx responses mean "this request is wrong" (bad stripe
// selector, fingerprint conflict, malformed body) — retrying those would
// just repeat the mistake, so they classify permanent.
func TestHTTPStatusClassification(t *testing.T) {
	cases := []struct {
		status    int
		transient bool
	}{
		{http.StatusInternalServerError, true}, // 500: worker bug or dying
		{http.StatusBadGateway, true},          // 502: proxy lost the worker
		{http.StatusServiceUnavailable, true},  // 503: shedding or draining
		{http.StatusGatewayTimeout, true},      // 504: worker too slow
		{http.StatusBadRequest, false},         // 400: protocol violation
		{http.StatusNotFound, false},           // 404: no such stripe/route
		{http.StatusConflict, false},           // 409: fingerprint mismatch
		{http.StatusGone, false},               // 410: stripe removed
	}
	for _, tc := range cases {
		t.Run(http.StatusText(tc.status), func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, `{"error":"synthetic"}`, tc.status)
			}))
			defer srv.Close()
			tr := NewHTTPTransport(srv.URL, nil)
			defer tr.Close()
			_, err := tr.Info(context.Background())
			if err == nil {
				t.Fatalf("HTTP %d produced no error", tc.status)
			}
			if got := IsTransient(err); got != tc.transient {
				t.Errorf("HTTP %d: IsTransient = %v, want %v (err: %v)", tc.status, got, tc.transient, err)
			}
		})
	}
}

// TestNetErrorClassification pins the network-level half of the taxonomy:
// failures to reach the worker at all (connection refused, per-RPC timeout)
// are transient — the replica/retry machinery exists precisely for them —
// while a caller-initiated cancellation is not, because retrying a call the
// caller abandoned wastes a replica's time.
func TestNetErrorClassification(t *testing.T) {
	ctx := context.Background()

	t.Run("connection refused", func(t *testing.T) {
		// Grab a loopback port and close it again: dialing it now refuses.
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addr := lis.Addr().String()
		lis.Close()
		tr := NewHTTPTransport("http://"+addr, nil)
		defer tr.Close()
		_, err = tr.Info(ctx)
		if err == nil {
			t.Skip("something answered on the recycled port")
		}
		if !IsTransient(err) {
			t.Errorf("connection refused classified permanent: %v", err)
		}
	})

	t.Run("per-RPC timeout", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}))
		defer srv.Close()
		tr := NewHTTPTransport(srv.URL, &HTTPTransportOptions{Timeout: 30 * time.Millisecond})
		defer tr.Close()
		_, err := tr.Info(ctx)
		if err == nil {
			t.Fatalf("timed-out call succeeded")
		}
		if !IsTransient(err) {
			t.Errorf("per-RPC timeout classified permanent: %v", err)
		}
	})

	t.Run("caller cancellation", func(t *testing.T) {
		started := make(chan struct{}, 1)
		release := make(chan struct{})
		defer close(release)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			started <- struct{}{}
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}))
		defer srv.Close()
		tr := NewHTTPTransport(srv.URL, nil)
		defer tr.Close()
		cctx, cancel := context.WithCancel(ctx)
		go func() {
			<-started
			cancel()
		}()
		_, err := tr.Info(cctx)
		if err == nil {
			t.Fatalf("cancelled call succeeded")
		}
		if IsTransient(err) {
			t.Errorf("caller cancellation classified transient: %v", err)
		}
	})
}

// failNTransport fails every gated call with a transient error until its
// counter runs out, then delegates to the inner transport.
type failNTransport struct {
	Transport
	remaining atomic.Int64
}

func (f *failNTransport) Info(ctx context.Context) (WorkerInfo, error) {
	if f.remaining.Add(-1) >= 0 {
		return WorkerInfo{}, &TransientError{Err: errors.New("synthetic transient")}
	}
	return f.Transport.Info(ctx)
}

// TestRetryBackoffRecovers pins the coordinator's retry policy end to end: a
// worker that fails transiently fewer times than the retry budget is retried
// through and the connect succeeds; one that exhausts the budget fails with
// the last transient error.
func TestRetryBackoffRecovers(t *testing.T) {
	g := testgraphs.Cycle(12)
	ctx := context.Background()
	mk := func(fails int64) []Transport {
		s, err := BuildStripe(g, 0, 1)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		f := &failNTransport{Transport: NewLoopback(NewWorker(s))}
		f.remaining.Store(fails)
		return []Transport{f}
	}

	opts := &CoordinatorOptions{Retries: 2, RetryBackoff: time.Millisecond}
	if _, err := NewCoordinator(ctx, mk(2), opts); err != nil {
		t.Errorf("2 transient failures under a 2-retry budget: %v", err)
	}
	if _, err := NewCoordinator(ctx, mk(10), opts); err == nil {
		t.Errorf("10 transient failures under a 2-retry budget connected anyway")
	} else if !IsTransient(err) {
		t.Errorf("budget exhaustion should surface the transient cause, got: %v", err)
	}
}

// TestBackoffCancellation pins the liveness property of the retry loop: a
// context cancelled while the coordinator sleeps between attempts aborts the
// wait immediately instead of serving out the backoff.
func TestBackoffCancellation(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, err := BuildStripe(g, 0, 1)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	f := &failNTransport{Transport: NewLoopback(NewWorker(s))}
	f.remaining.Store(1 << 30) // never recovers

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// A huge backoff: if cancellation does not interrupt the sleep, the
		// test times out instead of passing slowly.
		_, err := NewCoordinator(ctx, []Transport{f}, &CoordinatorOptions{
			Retries: 10, RetryBackoff: time.Hour,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and the sleep start
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("cancelled connect succeeded")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancellation took %s to interrupt the backoff", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("cancellation never interrupted the backoff sleep")
	}
}
