package distributed

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// chaosTransport wraps a loopback transport with switchable failure modes for
// replica-set tests: down (every call fails transiently), permanentErr (every
// call fails permanently), and rowDelay (FetchRows sleeps before answering).
type chaosTransport struct {
	inner        *Loopback
	down         atomic.Bool
	permanentErr atomic.Bool
	rowDelay     time.Duration
	calls        atomic.Int64
	ships        atomic.Int64
	retags       atomic.Int64
}

func (c *chaosTransport) fail() error {
	if c.permanentErr.Load() {
		return errors.New("chaos: permanent failure")
	}
	if c.down.Load() {
		return &TransientError{Err: errors.New("chaos: member down")}
	}
	return nil
}

func (c *chaosTransport) Info(ctx context.Context) (WorkerInfo, error) {
	c.calls.Add(1)
	if err := c.fail(); err != nil {
		return WorkerInfo{}, err
	}
	return c.inner.Info(ctx)
}

func (c *chaosTransport) OutSums(ctx context.Context) ([]float64, error) {
	c.calls.Add(1)
	if err := c.fail(); err != nil {
		return nil, err
	}
	return c.inner.OutSums(ctx)
}

func (c *chaosTransport) Multiply(ctx context.Context, dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	c.calls.Add(1)
	if err := c.fail(); err != nil {
		return nil, err
	}
	return c.inner.Multiply(ctx, dir, graphSum, x)
}

func (c *chaosTransport) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	c.calls.Add(1)
	if c.rowDelay > 0 {
		select {
		case <-time.After(c.rowDelay):
		case <-ctx.Done():
			return RowBatch{}, ctx.Err()
		}
	}
	if err := c.fail(); err != nil {
		return RowBatch{}, err
	}
	return c.inner.FetchRows(ctx, graphSum, nodes)
}

func (c *chaosTransport) OutDegrees(ctx context.Context) ([]int32, error) {
	c.calls.Add(1)
	if err := c.fail(); err != nil {
		return nil, err
	}
	return c.inner.OutDegrees(ctx)
}

func (c *chaosTransport) SendStripe(ctx context.Context, s *Stripe) error {
	c.ships.Add(1)
	if err := c.fail(); err != nil {
		return err
	}
	return c.inner.SendStripe(ctx, s)
}

func (c *chaosTransport) RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error {
	c.retags.Add(1)
	if err := c.fail(); err != nil {
		return err
	}
	return c.inner.RetagStripe(ctx, graphSum, epoch, content)
}

func (c *chaosTransport) Close() error { return c.inner.Close() }

// replicaFixture builds R chaos-wrapped replicas of stripe `index` of g.
func replicaFixture(t *testing.T, g *graph.Graph, index, count, r int) (*Stripe, []*chaosTransport, []Transport) {
	t.Helper()
	s, err := BuildStripe(g, index, count)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	wrapped := make([]*chaosTransport, r)
	ts := make([]Transport, r)
	for i := range wrapped {
		wrapped[i] = &chaosTransport{inner: NewLoopbackAt(NewWorker(s), index)}
		ts[i] = wrapped[i]
	}
	return s, wrapped, ts
}

func TestReplicaSetFailsOverAndPromotes(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, wrapped, ts := replicaFixture(t, g, 0, 2, 2)
	rs := NewReplicaSet(0, ts, 0)
	ctx := context.Background()
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = 1
	}

	wrapped[0].down.Store(true)
	if _, err := rs.Multiply(ctx, DirIn, s.GraphFingerprint(), x); err != nil {
		t.Fatalf("Multiply with one dead replica: %v", err)
	}
	if got := rs.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}

	// The surviving replica is now preferred: another call must not touch the
	// dead member (no new failover, no new call on replica 0).
	before := wrapped[0].calls.Load()
	if _, err := rs.Multiply(ctx, DirIn, s.GraphFingerprint(), x); err != nil {
		t.Fatalf("Multiply after promotion: %v", err)
	}
	if rs.Failovers() != 1 {
		t.Errorf("promotion did not stick: failovers = %d", rs.Failovers())
	}
	if wrapped[0].calls.Load() != before {
		t.Errorf("dead replica was called again after promotion")
	}
}

func TestReplicaSetPermanentErrorDoesNotFailOver(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, wrapped, ts := replicaFixture(t, g, 0, 2, 2)
	rs := NewReplicaSet(0, ts, 0)
	wrapped[0].permanentErr.Store(true)

	x := make([]float64, g.NumNodes())
	_, err := rs.Multiply(context.Background(), DirIn, s.GraphFingerprint(), x)
	if err == nil {
		t.Fatalf("Multiply with a permanent error succeeded via failover")
	}
	if IsTransient(err) {
		t.Errorf("permanent error resurfaced as transient: %v", err)
	}
	if wrapped[1].calls.Load() != 0 {
		t.Errorf("permanent error still failed over to replica 1")
	}
}

func TestReplicaSetAllDownStaysTransient(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, wrapped, ts := replicaFixture(t, g, 0, 2, 2)
	rs := NewReplicaSet(0, ts, 0)
	for _, w := range wrapped {
		w.down.Store(true)
	}
	x := make([]float64, g.NumNodes())
	_, err := rs.Multiply(context.Background(), DirIn, s.GraphFingerprint(), x)
	if err == nil {
		t.Fatalf("Multiply with all replicas down succeeded")
	}
	if !IsTransient(err) {
		// The coordinator's retry loop must be able to re-enter the set.
		t.Errorf("all-down error not transient: %v", err)
	}
}

// TestReplicaSetSendStripeDelta pins the rebalance-cost property: a member
// already holding the payload is retagged (or skipped), never re-shipped.
func TestReplicaSetSendStripeDelta(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, err := BuildStripe(g, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	holder := &chaosTransport{inner: NewLoopbackAt(NewWorker(s), 0)}
	empty := &chaosTransport{inner: NewLoopbackAt(NewWorker(nil), 0)}
	rs := NewReplicaSet(0, []Transport{holder, empty}, 0)
	ctx := context.Background()

	// Same payload everywhere already: the holder is untouched, the empty
	// member receives the one full ship.
	if err := rs.SendStripe(ctx, s); err != nil {
		t.Fatalf("SendStripe: %v", err)
	}
	if holder.ships.Load() != 0 {
		t.Errorf("member already holding the payload was re-shipped")
	}
	if empty.ships.Load() != 1 {
		t.Errorf("empty member got %d ships, want 1", empty.ships.Load())
	}

	// A retagged variant of the same payload: both members hold the bytes, so
	// the redeploy is two retags and zero ships.
	moved := s.Data()
	moved.Graph, moved.Epoch = moved.Graph+1, moved.Epoch+7
	ns, err := StripeFromData(moved)
	if err != nil {
		t.Fatalf("StripeFromData: %v", err)
	}
	holder.ships.Store(0)
	empty.ships.Store(0)
	if err := rs.SendStripe(ctx, ns); err != nil {
		t.Fatalf("SendStripe (retag path): %v", err)
	}
	if holder.ships.Load()+empty.ships.Load() != 0 {
		t.Errorf("unchanged payload was re-shipped on epoch move (%d ships)", holder.ships.Load()+empty.ships.Load())
	}
	if holder.retags.Load() == 0 || empty.retags.Load() == 0 {
		t.Errorf("epoch move did not retag both members (%d, %d)", holder.retags.Load(), empty.retags.Load())
	}
	info, err := rs.Info(ctx)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Epoch != ns.Epoch() || info.Graph != ns.GraphFingerprint() {
		t.Errorf("retagged identity not served: %+v", info)
	}
}

func TestReplicaSetHedgedFetchRows(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, wrapped, ts := replicaFixture(t, g, 0, 2, 2)
	wrapped[0].rowDelay = 200 * time.Millisecond
	rs := NewReplicaSet(0, ts, 2*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	start := time.Now()
	batch, err := rs.FetchRows(ctx, s.GraphFingerprint(), []graph.NodeID{0, 2})
	if err != nil {
		t.Fatalf("hedged FetchRows: %v", err)
	}
	if len(batch.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(batch.Rows))
	}
	if elapsed := time.Since(start); elapsed >= wrapped[0].rowDelay {
		t.Errorf("hedge did not beat the slow primary (%v elapsed)", elapsed)
	}
	if rs.Hedges() == 0 {
		t.Errorf("hedge counter did not move")
	}
}

func TestReplicaSetFetchRowsFailsOverWithoutHedge(t *testing.T) {
	g := testgraphs.Cycle(12)
	s, wrapped, ts := replicaFixture(t, g, 0, 2, 2)
	rs := NewReplicaSet(0, ts, 0)
	wrapped[0].down.Store(true)
	batch, err := rs.FetchRows(context.Background(), s.GraphFingerprint(), []graph.NodeID{0})
	if err != nil {
		t.Fatalf("FetchRows with one dead replica: %v", err)
	}
	if len(batch.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(batch.Rows))
	}
	if rs.Failovers() != 1 {
		t.Errorf("Failovers = %d, want 1", rs.Failovers())
	}
}

// TestReplicaSetCoordinatorParity wires replica sets under a real coordinator
// and kills one member of each group: results must stay bit-identical to the
// plain single-replica run.
func TestReplicaSetCoordinatorParity(t *testing.T) {
	g := testgraphs.NewToy().Graph
	const stripes = 2
	ctx := context.Background()

	plain := loopbackTransports(t, g, stripes)
	sets := make([]Transport, stripes)
	var killable []*chaosTransport
	for i := 0; i < stripes; i++ {
		_, wrapped, ts := replicaFixture(t, g, i, stripes, 2)
		killable = append(killable, wrapped[0])
		sets[i] = NewReplicaSet(i, ts, 0)
	}
	for _, w := range killable {
		w.down.Store(true) // every group's first replica is dead
	}

	cPlain, err := NewCoordinator(ctx, plain, nil)
	if err != nil {
		t.Fatalf("NewCoordinator(plain): %v", err)
	}
	defer cPlain.Close()
	cRep, err := NewCoordinator(ctx, sets, nil)
	if err != nil {
		t.Fatalf("NewCoordinator(replicated): %v", err)
	}
	defer cRep.Close()

	q := walk.SingleNode(3)
	p := walk.DefaultParams()
	want, err := cPlain.FRank(ctx, q, p)
	if err != nil {
		t.Fatalf("plain FRank: %v", err)
	}
	got, err := cRep.FRank(ctx, q, p)
	if err != nil {
		t.Fatalf("replicated FRank: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("replicated FRank differs at node %d: %g != %g", v, got[v], want[v])
		}
	}
}

// TestMultiStripeWorker pins the stripe-addressed wire protocol: one worker
// serving two stripes answers per-stripe RPCs via explicit selectors and
// refuses ambiguous unselected calls.
func TestMultiStripeWorker(t *testing.T) {
	g := testgraphs.Cycle(12)
	w := NewWorker(nil)
	var stripes []*Stripe
	for _, idx := range []int{0, 2} {
		s, err := BuildStripe(g, idx, 3)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		stripes = append(stripes, s)
		w.SetStripe(s)
	}

	if w.Stripe() != nil {
		t.Errorf("Stripe() on a multi-stripe worker must return nil")
	}
	if got := len(w.Stripes()); got != 2 {
		t.Fatalf("Stripes() returned %d, want 2", got)
	}
	if _, err := w.Info(); err == nil {
		t.Errorf("unselected Info on a multi-stripe worker succeeded")
	}
	for i, idx := range []int{0, 2} {
		info, err := w.InfoAt(idx)
		if err != nil {
			t.Fatalf("InfoAt(%d): %v", idx, err)
		}
		if info.Index != idx || info.Count != 3 {
			t.Errorf("InfoAt(%d) = %+v", idx, info)
		}
		x := make([]float64, g.NumNodes())
		out, err := w.MultiplyAt(idx, DirIn, stripes[i].GraphFingerprint(), x)
		if err != nil {
			t.Fatalf("MultiplyAt(%d): %v", idx, err)
		}
		if len(out) != stripes[i].OwnedNodes() {
			t.Errorf("MultiplyAt(%d) returned %d rows, want %d", idx, len(out), stripes[i].OwnedNodes())
		}
	}
	if _, err := w.InfoAt(1); err == nil {
		t.Errorf("InfoAt for an unserved stripe succeeded")
	}

	if !w.RemoveStripe(2) {
		t.Fatalf("RemoveStripe(2) found nothing")
	}
	if w.RemoveStripe(2) {
		t.Errorf("RemoveStripe(2) removed twice")
	}
	// Down to one stripe: unselected calls resolve again.
	info, err := w.Info()
	if err != nil {
		t.Fatalf("Info after removal: %v", err)
	}
	if info.Index != 0 {
		t.Errorf("sole stripe is %d, want 0", info.Index)
	}
}

func TestMultiStripeWorkerOverHTTP(t *testing.T) {
	g := testgraphs.Cycle(12)
	w := NewWorker(nil)
	for _, idx := range []int{0, 1} {
		s, err := BuildStripe(g, idx, 2)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		w.SetStripe(s)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	base := NewHTTPTransport(srv.URL, nil)
	ctx := context.Background()

	// Unbound transport: ambiguous, must fail permanently.
	if _, err := base.Info(ctx); err == nil || IsTransient(err) {
		t.Fatalf("unbound Info on a 2-stripe worker: err=%v, want permanent", err)
	}
	for _, idx := range []int{0, 1} {
		tr := base.ForStripe(idx)
		info, err := tr.Info(ctx)
		if err != nil {
			t.Fatalf("ForStripe(%d).Info: %v", idx, err)
		}
		if info.Index != idx {
			t.Errorf("ForStripe(%d) answered stripe %d", idx, info.Index)
		}
		sums, err := tr.OutSums(ctx)
		if err != nil {
			t.Fatalf("ForStripe(%d).OutSums: %v", idx, err)
		}
		if len(sums) != info.Rows {
			t.Errorf("stripe %d: %d outsums for %d rows", idx, len(sums), info.Rows)
		}
		batch, err := tr.FetchRows(ctx, info.Graph, []graph.NodeID{graph.NodeID(idx)})
		if err != nil {
			t.Fatalf("ForStripe(%d).FetchRows: %v", idx, err)
		}
		if len(batch.Rows) != 1 || batch.Rows[0].Node != graph.NodeID(idx) {
			t.Errorf("stripe %d: wrong row batch %+v", idx, batch.Rows)
		}
	}

	// Remove stripe 1 over the wire; the worker drops to a sole stripe.
	if err := base.ForStripe(1).RemoveStripe(ctx); err != nil {
		t.Fatalf("RemoveStripe(1): %v", err)
	}
	if err := base.ForStripe(1).RemoveStripe(ctx); err == nil {
		t.Errorf("second RemoveStripe(1) succeeded")
	}
	info, err := base.Info(ctx)
	if err != nil {
		t.Fatalf("unbound Info after removal: %v", err)
	}
	if info.Index != 0 {
		t.Errorf("sole stripe is %d, want 0", info.Index)
	}
}

