// Row-fetch RPC: the worker-side half of the online-distributed serving path
// (internal/rowserve). Where /v1/multiply ships whole iteration vectors for
// the offline exact solver, /v1/rows ships individual CSR rows on demand —
// the paper's AP/GP interaction — so a coordinator can run the online top-K
// searcher while holding only the rows it touches.
package distributed

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"roundtriprank/internal/graph"
)

// RowData is one node's served adjacency plus its out-weight sum, the unit of
// the row-fetch RPC. Slices returned by in-process calls alias the stripe's
// CSR arrays (stripes are immutable, so sharing is safe); treat them as
// read-only.
type RowData struct {
	Node   graph.NodeID
	OutSum float64
	OutTo  []graph.NodeID
	OutW   []float64
	InFrom []graph.NodeID
	InW    []float64
}

// RowBatch is the row-fetch response: the requested rows in request order,
// stamped with the identity of the stripe snapshot that served them. Callers
// pin a graph fingerprint per call and additionally validate Epoch/Content
// against what they recorded at connect time, so a redeploy between RPCs
// fails loudly instead of mixing snapshots within one query.
type RowBatch struct {
	Epoch   uint64
	Content uint32
	Rows    []RowData
}

// RowFetcher is implemented by transports whose worker serves the row-fetch
// RPC. Like Multiply, FetchRows is a pure function of its inputs and safe to
// retry; OutDegrees is the row-granular analogue of OutSums (the out-degrees
// of the worker's owned rows, in local row order) and is fetched once at
// connect time to build the dense per-node metadata the searcher reads
// without row fetches.
type RowFetcher interface {
	FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (RowBatch, error)
	OutDegrees(ctx context.Context) ([]int32, error)
}

// MaxRowFetchNodes caps the node count of one row-fetch request; one
// expansion wave's misses for one stripe stay far below it.
const MaxRowFetchNodes = 1 << 20

// FetchRows implements the worker side of RowFetcher.FetchRows for the sole
// stripe; see FetchRowsAt.
func (w *Worker) FetchRows(graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	return w.FetchRowsAt(AnyStripe, graphSum, nodes)
}

// FetchRowsAt serves every requested row from one consistent snapshot of the
// stripe at index. graphSum pins the source graph like Multiply's; a node not
// owned by the stripe is a caller bug and fails the batch. The returned
// slices alias the stripe's arrays.
func (w *Worker) FetchRowsAt(index int, graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	s, err := w.stripeFor(index)
	if err != nil {
		return RowBatch{}, err
	}
	if s.graphSum != graphSum {
		return RowBatch{}, fmt.Errorf("%w (stripe has %08x, caller expects %08x)", ErrStripeReplaced, s.graphSum, graphSum)
	}
	if len(nodes) > MaxRowFetchNodes {
		return RowBatch{}, fmt.Errorf("distributed: row fetch asks for %d rows, cap is %d", len(nodes), MaxRowFetchNodes)
	}
	batch := RowBatch{Epoch: s.epoch, Content: s.content, Rows: make([]RowData, 0, len(nodes))}
	for _, v := range nodes {
		adj, ok := s.adjacency(v)
		if !ok {
			return RowBatch{}, fmt.Errorf("distributed: node %d is not owned by stripe %d of %d", v, s.Index, s.Count)
		}
		batch.Rows = append(batch.Rows, RowData{
			Node:   v,
			OutSum: s.out.Sum[int(v)/s.Count],
			OutTo:  adj.OutTo, OutW: adj.OutW,
			InFrom: adj.InFrom, InW: adj.InW,
		})
	}
	return batch, nil
}

// OutDegrees implements the worker side of RowFetcher.OutDegrees for the sole
// stripe; see OutDegreesAt.
func (w *Worker) OutDegrees() ([]int32, error) { return w.OutDegreesAt(AnyStripe) }

// OutDegreesAt returns the out-degree of every node owned by the stripe at
// index, indexed by local row.
func (w *Worker) OutDegreesAt(index int) ([]int32, error) {
	s, err := w.stripeFor(index)
	if err != nil {
		return nil, err
	}
	out := make([]int32, s.rows)
	for r := 0; r < s.rows; r++ {
		out[r] = int32(s.out.RowPtr[r+1] - s.out.RowPtr[r])
	}
	return out, nil
}

// Row-fetch wire format (all little-endian). Request body: the node IDs as a
// raw int32 array, count implied by length. Response body:
//
//	epoch   uint64
//	content uint32
//	count   uint32
//	count × {
//	    node   int32
//	    outSum float64
//	    outDeg uint32
//	    inDeg  uint32
//	    outDeg × int32    out-edge targets
//	    outDeg × float64  out-edge weights
//	    inDeg  × int32    in-edge sources
//	    inDeg  × float64  in-edge weights
//	}
//
// The out-degrees response is a raw int32 array over owned rows, like the
// outsums vector but 4 bytes per entry.

func appendNodeIDs(buf []byte, nodes []graph.NodeID) []byte {
	for _, v := range nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func appendRowBatch(buf []byte, b RowBatch) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, b.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, b.Content)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Rows)))
	for _, row := range b.Rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(row.Node))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row.OutSum))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(row.OutTo)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(row.InFrom)))
		buf = appendNodeIDs(buf, row.OutTo)
		buf = AppendVector(buf, row.OutW)
		buf = appendNodeIDs(buf, row.InFrom)
		buf = AppendVector(buf, row.InW)
	}
	return buf
}

// rowBatchSize returns the exact wire size of a batch, for Content-Length and
// one-shot buffer sizing.
func rowBatchSize(b RowBatch) int {
	n := 16
	for _, row := range b.Rows {
		n += 20 + 12*(len(row.OutTo)+len(row.InFrom))
	}
	return n
}

// rowDecoder is a bounds-checked cursor over a response buffer; the first
// failed read latches err and turns every later read into a no-op.
type rowDecoder struct {
	raw []byte
	off int
	err error
}

func (d *rowDecoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.raw)-d.off < n {
		d.err = fmt.Errorf("distributed: row batch truncated at byte %d of %d", d.off, len(d.raw))
		return false
	}
	return true
}

func (d *rowDecoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.raw[d.off:])
	d.off += 4
	return v
}

func (d *rowDecoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.raw[d.off:])
	d.off += 8
	return v
}

func (d *rowDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *rowDecoder) nodeIDs(n int) []graph.NodeID {
	if !d.need(4 * n) {
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(binary.LittleEndian.Uint32(d.raw[d.off+4*i:]))
	}
	d.off += 4 * n
	return out
}

func (d *rowDecoder) f64s(n int) []float64 {
	if !d.need(8 * n) {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.raw[d.off+8*i:]))
	}
	d.off += 8 * n
	return out
}

func decodeRowBatch(raw []byte) (RowBatch, error) {
	d := rowDecoder{raw: raw}
	batch := RowBatch{Epoch: d.u64(), Content: d.u32()}
	count := int(d.u32())
	if d.err == nil && count*20 > len(raw)-d.off {
		d.err = fmt.Errorf("distributed: row batch declares %d rows, body too short", count)
	}
	if d.err == nil {
		batch.Rows = make([]RowData, 0, count)
	}
	for i := 0; i < count && d.err == nil; i++ {
		row := RowData{Node: graph.NodeID(d.u32()), OutSum: d.f64()}
		outDeg, inDeg := int(d.u32()), int(d.u32())
		row.OutTo = d.nodeIDs(outDeg)
		row.OutW = d.f64s(outDeg)
		row.InFrom = d.nodeIDs(inDeg)
		row.InW = d.f64s(inDeg)
		batch.Rows = append(batch.Rows, row)
	}
	if d.err != nil {
		return RowBatch{}, d.err
	}
	if d.off != len(raw) {
		return RowBatch{}, fmt.Errorf("distributed: row batch has %d trailing bytes", len(raw)-d.off)
	}
	return batch, nil
}

// handleRows serves POST /v1/rows: a batched row fetch against the installed
// stripe. The optional graph parameter pins the stripe's source graph like
// /v1/multiply's; ad-hoc callers that omit it accept whatever is installed.
func (w *Worker) handleRows(rw http.ResponseWriter, r *http.Request) {
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s, err := w.stripeFor(index)
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	graphSum := s.graphSum
	if gp := r.URL.Query().Get("graph"); gp != "" {
		v, err := strconv.ParseUint(gp, 10, 32)
		if err != nil {
			workerError(rw, http.StatusBadRequest, "distributed: invalid graph fingerprint %q", gp)
			return
		}
		graphSum = uint32(v)
	}
	raw, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, MaxRowFetchNodes*4+1))
	if err != nil {
		workerError(rw, http.StatusBadRequest, "distributed: read rows request: %v", err)
		return
	}
	if len(raw)%4 != 0 {
		workerError(rw, http.StatusBadRequest, "distributed: rows request is %d bytes, not an int32 array", len(raw))
		return
	}
	nodes := make([]graph.NodeID, len(raw)/4)
	for i := range nodes {
		nodes[i] = graph.NodeID(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	batch, err := w.FetchRowsAt(s.Index, graphSum, nodes)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrStripeReplaced) {
			status = http.StatusConflict
		}
		workerError(rw, status, "%v", err)
		return
	}
	body := appendRowBatch(make([]byte, 0, rowBatchSize(batch)), batch)
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = rw.Write(body)
}

// handleOutDegs serves GET /v1/outdegs: the out-degrees of the owned rows as
// a raw little-endian int32 array.
func (w *Worker) handleOutDegs(rw http.ResponseWriter, r *http.Request) {
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	degs, err := w.OutDegreesAt(index)
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	buf := make([]byte, 0, len(degs)*4)
	for _, d := range degs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	_, _ = rw.Write(buf)
}

// FetchRows implements RowFetcher for the in-process transport.
func (l *Loopback) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	if err := ctx.Err(); err != nil {
		return RowBatch{}, err
	}
	return l.w.FetchRowsAt(l.index, graphSum, nodes)
}

// OutDegrees implements RowFetcher for the in-process transport.
func (l *Loopback) OutDegrees(ctx context.Context) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.w.OutDegreesAt(l.index)
}

// FetchRows implements RowFetcher over the gpserver wire protocol.
func (t *HTTPTransport) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	req := appendNodeIDs(make([]byte, 0, len(nodes)*4), nodes)
	path := t.withStripe(fmt.Sprintf("/v1/rows?graph=%d", graphSum))
	body, err := t.do(ctx, http.MethodPost, path, req, "application/octet-stream")
	if err != nil {
		return RowBatch{}, err
	}
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		return RowBatch{}, &TransientError{Err: fmt.Errorf("distributed: %s: read rows response: %w", t.base, err)}
	}
	batch, err := decodeRowBatch(raw)
	if err != nil {
		return RowBatch{}, fmt.Errorf("distributed: %s: %w", t.base, err)
	}
	return batch, nil
}

// OutDegrees implements RowFetcher over the gpserver wire protocol.
func (t *HTTPTransport) OutDegrees(ctx context.Context) ([]int32, error) {
	body, err := t.do(ctx, http.MethodGet, t.withStripe("/v1/outdegs"), nil, "")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, &TransientError{Err: fmt.Errorf("distributed: %s: read outdegs response: %w", t.base, err)}
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("distributed: %s: outdegs response is %d bytes, not an int32 array", t.base, len(raw))
	}
	out := make([]int32, len(raw)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}
