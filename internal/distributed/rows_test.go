package distributed

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

// TestFetchRowsMatchesStripe pins the row-fetch RPC end to end: every owned
// row served over both transports equals the source graph's CSR row, and the
// batch carries the stripe's snapshot identity.
func TestFetchRowsMatchesStripe(t *testing.T) {
	ctx := context.Background()
	for name, g := range coordGraphs() {
		for _, workers := range []int{1, 2, 3} {
			for _, mode := range []string{"loopback", "http"} {
				if mode == "http" && workers > 2 {
					continue // keep the HTTP matrix small, like the multiply tests
				}
				var ts []Transport
				if mode == "loopback" {
					ts = loopbackTransports(t, g, workers)
				} else {
					ts = httpWorkers(t, g, workers, nil)
				}
				fp := graph.GraphFingerprint(g)
				out, in := g.OutCSR(), g.InCSR()
				for i, tr := range ts {
					f := tr.(RowFetcher)
					var owned []graph.NodeID
					for v := i; v < g.NumNodes(); v += workers {
						owned = append(owned, graph.NodeID(v))
					}
					batch, err := f.FetchRows(ctx, fp, owned)
					if err != nil {
						t.Fatalf("%s/%s w%d stripe %d: FetchRows: %v", name, mode, workers, i, err)
					}
					if batch.Epoch != g.Epoch() {
						t.Fatalf("%s/%s stripe %d: batch epoch %d, graph epoch %d", name, mode, i, batch.Epoch, g.Epoch())
					}
					info, err := tr.Info(ctx)
					if err != nil {
						t.Fatalf("Info: %v", err)
					}
					if batch.Content != info.Content {
						t.Fatalf("%s/%s stripe %d: batch content %08x, info %08x", name, mode, i, batch.Content, info.Content)
					}
					if len(batch.Rows) != len(owned) {
						t.Fatalf("%s/%s stripe %d: %d rows for %d nodes", name, mode, i, len(batch.Rows), len(owned))
					}
					for j, row := range batch.Rows {
						v := owned[j]
						if row.Node != v {
							t.Fatalf("%s/%s stripe %d: row %d is node %d, want %d", name, mode, i, j, row.Node, v)
						}
						wantC, wantW := out.Row(v)
						if row.OutSum != out.Sum[v] {
							t.Fatalf("%s/%s node %d: OutSum %g, want %g", name, mode, v, row.OutSum, out.Sum[v])
						}
						checkRowHalf(t, name+"/"+mode+" out", v, row.OutTo, row.OutW, wantC, wantW)
						wantC, wantW = in.Row(v)
						checkRowHalf(t, name+"/"+mode+" in", v, row.InFrom, row.InW, wantC, wantW)
					}
				}
			}
		}
	}
}

func checkRowHalf(t *testing.T, label string, v graph.NodeID, gotC []graph.NodeID, gotW []float64, wantC []graph.NodeID, wantW []float64) {
	t.Helper()
	if len(gotC) != len(wantC) {
		t.Fatalf("%s row %d: %d entries, want %d", label, v, len(gotC), len(wantC))
	}
	for i := range wantC {
		if gotC[i] != wantC[i] || gotW[i] != wantW[i] {
			t.Fatalf("%s row %d entry %d: (%d,%g), want (%d,%g)", label, v, i, gotC[i], gotW[i], wantC[i], wantW[i])
		}
	}
}

// TestOutDegreesRoundTrip pins the connect-time metadata RPC on both
// transports.
func TestOutDegreesRoundTrip(t *testing.T) {
	ctx := context.Background()
	g := testgraphs.NewToy().Graph
	out := g.OutCSR()
	for _, mode := range []string{"loopback", "http"} {
		var ts []Transport
		if mode == "loopback" {
			ts = loopbackTransports(t, g, 2)
		} else {
			ts = httpWorkers(t, g, 2, nil)
		}
		for i, tr := range ts {
			degs, err := tr.(RowFetcher).OutDegrees(ctx)
			if err != nil {
				t.Fatalf("%s stripe %d: OutDegrees: %v", mode, i, err)
			}
			for r, d := range degs {
				v := i + r*2
				want := int32(out.RowPtr[v+1] - out.RowPtr[v])
				if d != want {
					t.Fatalf("%s stripe %d row %d (node %d): degree %d, want %d", mode, i, r, v, d, want)
				}
			}
		}
	}
}

// TestFetchRowsErrors pins the failure modes of the worker-side RPC.
func TestFetchRowsErrors(t *testing.T) {
	g := testgraphs.NewToy().Graph
	s, err := BuildStripe(g, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	w := NewWorker(s)
	fp := graph.GraphFingerprint(g)

	// Unowned node: stripe 0 of 2 owns even nodes only.
	if _, err := w.FetchRows(fp, []graph.NodeID{1}); err == nil {
		t.Errorf("unowned node accepted")
	}
	// Stale graph pin: replaced-stripe classification, not transient.
	_, err = w.FetchRows(fp+1, []graph.NodeID{0})
	if err == nil || !strings.Contains(err.Error(), "stripe has") {
		t.Errorf("stale pin accepted (err=%v)", err)
	}
	// Empty worker.
	if _, err := NewWorker(nil).FetchRows(fp, []graph.NodeID{0}); err == nil {
		t.Errorf("empty worker served rows")
	}
	if _, err := NewWorker(nil).OutDegrees(); err == nil {
		t.Errorf("empty worker served out-degrees")
	}
}

// TestRowsHTTPErrors pins the wire-level status codes of /v1/rows.
func TestRowsHTTPErrors(t *testing.T) {
	g := testgraphs.NewToy().Graph
	s, err := BuildStripe(g, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	ts := httpWorkers(t, g, 2, nil)
	srvURL := ts[0].(*HTTPTransport).base

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srvURL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	// Body not an int32 array.
	if resp := post("/v1/rows", []byte{1, 2, 3}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misaligned body: got %s, want 400", resp.Status)
	}
	// Stale graph pin answers 409 (the redeploy-in-progress signal).
	stale := appendNodeIDs(nil, []graph.NodeID{0})
	if resp := post("/v1/rows?graph=1", stale); resp.StatusCode != http.StatusConflict {
		t.Errorf("stale pin: got %s, want 409", resp.Status)
	}
	// Unowned node is a caller bug: 400.
	bad := appendNodeIDs(nil, []graph.NodeID{1})
	if resp := post("/v1/rows", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unowned node: got %s, want 400", resp.Status)
	}
	// The transport surfaces the stale pin as a replaced-stripe error, which
	// must not be classified transient (retry cannot help).
	if _, err := ts[0].(RowFetcher).FetchRows(context.Background(), s.GraphFingerprint()+1, []graph.NodeID{0}); err == nil || IsTransient(err) {
		t.Errorf("stale pin over HTTP: err=%v, want permanent replaced-stripe error", err)
	}
}

// TestRowBatchCodec round-trips a synthetic batch and pins the decoder's
// rejection of truncated, oversized and trailing-garbage bodies.
func TestRowBatchCodec(t *testing.T) {
	batch := RowBatch{
		Epoch:   7,
		Content: 0xdeadbeef,
		Rows: []RowData{
			{Node: 3, OutSum: 2.5, OutTo: []graph.NodeID{1, 4}, OutW: []float64{0.5, 2}, InFrom: []graph.NodeID{9}, InW: []float64{1.25}},
			{Node: 5, OutSum: 0}, // an isolated row: all slices empty
		},
	}
	raw := appendRowBatch(nil, batch)
	if len(raw) != rowBatchSize(batch) {
		t.Fatalf("encoded %d bytes, rowBatchSize says %d", len(raw), rowBatchSize(batch))
	}
	got, err := decodeRowBatch(raw)
	if err != nil {
		t.Fatalf("decodeRowBatch: %v", err)
	}
	if got.Epoch != batch.Epoch || got.Content != batch.Content || len(got.Rows) != len(batch.Rows) {
		t.Fatalf("decoded header %+v, want %+v", got, batch)
	}
	for i, row := range got.Rows {
		want := batch.Rows[i]
		if row.Node != want.Node || row.OutSum != want.OutSum {
			t.Fatalf("row %d decoded as %+v, want %+v", i, row, want)
		}
		checkRowHalf(t, "codec out", row.Node, row.OutTo, row.OutW, want.OutTo, want.OutW)
		checkRowHalf(t, "codec in", row.Node, row.InFrom, row.InW, want.InFrom, want.InW)
	}

	// Every proper prefix must fail cleanly, never panic or mis-decode.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeRowBatch(raw[:cut]); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := decodeRowBatch(append(append([]byte{}, raw...), 0)); err == nil {
		t.Errorf("trailing byte accepted")
	}
	// A row count promising more than the body holds must be rejected before
	// allocation.
	forged := append([]byte{}, raw...)
	forged[12] = 0xff
	forged[13] = 0xff
	forged[14] = 0xff
	forged[15] = 0x7f
	if _, err := decodeRowBatch(forged); err == nil {
		t.Errorf("forged row count accepted")
	}
}

// TestRowFetchTransientClassification pins the retry contract of the row path:
// 5xx answers are transient (the rowserve layer retries them), 4xx are not.
func TestRowFetchTransientClassification(t *testing.T) {
	g := testgraphs.NewToy().Graph
	var failures atomic.Int32
	ts := httpWorkers(t, g, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/rows") && failures.Add(1) <= 2 {
				http.Error(rw, `{"error":"restarting"}`, http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(rw, r)
		})
	})
	f := ts[0].(RowFetcher)
	ctx := context.Background()
	fp := graph.GraphFingerprint(g)

	_, err := f.FetchRows(ctx, fp, []graph.NodeID{0})
	if err == nil || !IsTransient(err) {
		t.Fatalf("503 on /v1/rows: err=%v, want transient", err)
	}
	_, err = f.FetchRows(ctx, fp, []graph.NodeID{0})
	if err == nil || !IsTransient(err) {
		t.Fatalf("second 503 on /v1/rows: err=%v, want transient", err)
	}
	// The worker has "restarted": the same call now succeeds.
	batch, err := f.FetchRows(ctx, fp, []graph.NodeID{0})
	if err != nil {
		t.Fatalf("FetchRows after recovery: %v", err)
	}
	if len(batch.Rows) != 1 || batch.Rows[0].Node != 0 {
		t.Fatalf("recovered fetch returned %+v", batch.Rows)
	}
	// A dead port is transient too (connection refused is retryable).
	dead := NewHTTPTransport("http://127.0.0.1:1", nil)
	if _, err := dead.FetchRows(ctx, fp, []graph.NodeID{0}); err == nil || !IsTransient(err) {
		t.Fatalf("connection refused on rows: err=%v, want transient", err)
	}
	if _, err := dead.OutDegrees(ctx); err == nil || !IsTransient(err) {
		t.Fatalf("connection refused on outdegs: err=%v, want transient", err)
	}
}
