package distributed

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Direction selects which adjacency a worker multiplies over.
type Direction uint8

const (
	// DirIn gathers over the transposed adjacency (the F-Rank pull step).
	DirIn Direction = iota + 1
	// DirOut gathers over the forward adjacency (the T-Rank step).
	DirOut
)

// String names the direction as used in the wire protocol's dir parameter.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return fmt.Sprintf("direction-%d", uint8(d))
	}
}

// ParseDirection parses the wire form of a Direction ("in" or "out").
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "in":
		return DirIn, nil
	case "out":
		return DirOut, nil
	default:
		return 0, fmt.Errorf("distributed: unknown direction %q", s)
	}
}

// ProtocolVersion is the version of the coordinator/worker wire protocol; a
// worker advertises it in WorkerInfo and the coordinator refuses mismatches.
const ProtocolVersion = 1

// WorkerInfo describes the stripe a worker serves. It is the JSON body of the
// worker's /v1/info endpoint.
type WorkerInfo struct {
	// Protocol is the wire protocol version the worker speaks.
	Protocol int `json:"protocol"`
	// Index and Count identify the served stripe within the partition.
	Index int `json:"stripe"`
	Count int `json:"of"`
	// Graph is the fingerprint of the graph the stripe was cut from; the
	// coordinator refuses to assemble workers reporting different values.
	Graph uint32 `json:"graph"`
	// Epoch is the snapshot version of the source graph.
	Epoch uint64 `json:"epoch"`
	// Content is the fingerprint of the stripe's own payload
	// (graph.StripeData.ContentFingerprint). Redeploys compare it against the
	// freshly cut stripe to decide between shipping and retagging.
	Content uint32 `json:"content"`
	// NumNodes is the node count of the full striped graph.
	NumNodes int `json:"nodes"`
	// Rows is the number of nodes the stripe owns.
	Rows int `json:"rows"`
	// OutEdges and InEdges are the stored edge counts, for capacity reporting.
	OutEdges int `json:"out_edges"`
	InEdges  int `json:"in_edges"`
}

// Transport is one coordinator-side connection to a worker serving a stripe.
// Multiply is a pure function of its inputs (the worker keeps no per-query
// state), so every call is idempotent and safe to retry; the coordinator
// relies on this when it retries transient failures mid-query.
//
// Two implementations exist: Loopback (in-process, for tests and single-host
// deployments) and HTTPTransport (the gpserver wire protocol).
type Transport interface {
	// Info returns the stripe topology the worker serves.
	Info(ctx context.Context) (WorkerInfo, error)
	// OutSums returns the out-weight sums of the worker's owned rows.
	OutSums(ctx context.Context) ([]float64, error)
	// Multiply streams the full iteration vector x to the worker and returns
	// the gathered partial vector over the worker's owned rows. graphSum is
	// the fingerprint the coordinator validated at connect time; the worker
	// refuses the call if its stripe has since been replaced with one cut
	// from a different graph, so a mid-lifetime redeploy fails loudly
	// instead of silently mixing graphs.
	Multiply(ctx context.Context, dir Direction, graphSum uint32, x []float64) ([]float64, error)
	// Close releases the connection; the Transport is unusable afterwards.
	Close() error
}

// StripeSender is implemented by transports that can install a stripe on
// their worker (the gpserver "receive a stripe" deployment mode).
type StripeSender interface {
	// SendStripe ships the stripe to the worker, replacing whatever it served.
	SendStripe(ctx context.Context, s *Stripe) error
}

// StripeRetagger is implemented by transports whose worker can rebind its
// served stripe to a new source-graph identity without re-receiving the
// payload. After a Commit, stripes whose rows the delta did not touch have
// identical payloads under the new graph — only the graph fingerprint and
// epoch moved — so the redeploy retags them in one tiny RPC instead of
// shipping megabytes of unchanged CSR arrays.
type StripeRetagger interface {
	// RetagStripe rebinds the worker's stripe to the given graph fingerprint
	// and epoch, provided the served payload's content fingerprint equals
	// content; a mismatch (or an empty worker) fails without side effects and
	// the caller falls back to SendStripe.
	RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error
}

// StripeRemover is implemented by transports whose worker can uninstall its
// served stripe. Fleet rebalancing uses it when placement moves a stripe off
// a member: the payload is dropped so the member stops answering (and paying
// memory) for rows it no longer owns.
type StripeRemover interface {
	// RemoveStripe uninstalls the transport's bound stripe (or the worker's
	// sole stripe for an unbound transport). Removing a stripe the worker does
	// not serve is an error.
	RemoveStripe(ctx context.Context) error
}

// TransientError marks a worker failure as retryable: the coordinator retries
// the idempotent call on the same worker instead of failing the query.
// Network-level failures and HTTP 5xx responses are transient; protocol
// violations and HTTP 4xx responses are not.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure.
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Vector wire format: a raw array of little-endian IEEE-754 float64 values,
// with the element count implied by the byte length. It is the body of the
// /v1/multiply request and response and of the /v1/outsums response.

// AppendVector appends the wire encoding of x to buf and returns the result.
func AppendVector(buf []byte, x []float64) []byte {
	for _, v := range x {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// ReadVector reads exactly n float64 values from r into dst (allocating when
// dst is too small) and errors on truncation.
func ReadVector(r io.Reader, n int, dst []float64) ([]float64, error) {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	buf := make([]byte, 1<<16)
	for off := 0; off < n; {
		chunk := n - off
		if chunk > len(buf)/8 {
			chunk = len(buf) / 8
		}
		b := buf[:chunk*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("distributed: vector truncated at %d of %d entries: %w", off, n, err)
		}
		for i := 0; i < chunk; i++ {
			dst[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		off += chunk
	}
	return dst, nil
}

// Loopback is an in-process Transport wrapping a Worker directly: no
// serialization, no network. It keeps tests and single-process deployments
// fast and deterministic while exercising the same coordinator code paths as
// the HTTP transport. A Loopback may be bound to one stripe of a multi-stripe
// worker (NewLoopbackAt); the zero binding addresses the worker's sole stripe.
type Loopback struct {
	w     *Worker
	index int
}

// NewLoopback returns a Transport that calls w in-process, addressing its
// sole stripe.
func NewLoopback(w *Worker) *Loopback { return &Loopback{w: w, index: AnyStripe} }

// NewLoopbackAt returns a Transport that calls w in-process, bound to the
// stripe with the given index.
func NewLoopbackAt(w *Worker, index int) *Loopback { return &Loopback{w: w, index: index} }

// Worker returns the wrapped worker.
func (l *Loopback) Worker() *Worker { return l.w }

// Info implements Transport.
func (l *Loopback) Info(ctx context.Context) (WorkerInfo, error) {
	if err := ctx.Err(); err != nil {
		return WorkerInfo{}, err
	}
	return l.w.InfoAt(l.index)
}

// OutSums implements Transport.
func (l *Loopback) OutSums(ctx context.Context) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.w.OutSumsAt(l.index)
}

// Multiply implements Transport.
func (l *Loopback) Multiply(ctx context.Context, dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.w.MultiplyAt(l.index, dir, graphSum, x)
}

// SendStripe implements StripeSender.
func (l *Loopback) SendStripe(ctx context.Context, s *Stripe) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.w.SetStripe(s)
	return nil
}

// RetagStripe implements StripeRetagger.
func (l *Loopback) RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := l.w.RetagAt(l.index, graphSum, epoch, content)
	return err
}

// RemoveStripe implements StripeRemover.
func (l *Loopback) RemoveStripe(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !l.w.RemoveStripe(l.index) {
		return fmt.Errorf("distributed: no stripe %d to remove", l.index)
	}
	return nil
}

// Close implements Transport; loopback transports hold no resources.
func (l *Loopback) Close() error { return nil }
