package distributed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// AnyStripe selects "the worker's sole stripe" in the stripe-addressed APIs:
// the classic one-stripe-per-process deployment never has to name its stripe,
// while replicated fleets (where one member serves several stripes) address
// each call with an explicit index.
const AnyStripe = -1

// Worker serves stripes of the distributed iteration: the stateless multiply
// and row-fetch RPCs the coordinator fans out, plus the topology metadata it
// needs to assemble global vectors. A Worker may start empty and receive
// stripes later (SetStripe, or the handler's stripe-install endpoint), and —
// since replicated fleets place several stripes on one member — may serve any
// number of stripes at once, keyed by stripe index. It is safe for concurrent
// use.
type Worker struct {
	mu      sync.RWMutex
	stripes map[int]*Stripe
}

// NewWorker returns a worker serving s; s may be nil for a worker that waits
// to receive its stripes.
func NewWorker(s *Stripe) *Worker {
	w := &Worker{stripes: make(map[int]*Stripe)}
	if s != nil {
		w.stripes[s.Index] = s
	}
	return w
}

// SetStripe installs (or replaces, keyed by stripe index) a served stripe.
func (w *Worker) SetStripe(s *Stripe) {
	if s == nil {
		return
	}
	w.mu.Lock()
	w.stripes[s.Index] = s
	w.mu.Unlock()
}

// RemoveStripe uninstalls the stripe at index (AnyStripe removes the sole
// served stripe) and reports whether a stripe was removed. A fleet manager
// calls it when rebalancing moves a stripe off this member.
func (w *Worker) RemoveStripe(index int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if index == AnyStripe {
		if len(w.stripes) != 1 {
			return false
		}
		for i := range w.stripes {
			index = i
		}
	}
	if _, ok := w.stripes[index]; !ok {
		return false
	}
	delete(w.stripes, index)
	return true
}

// Stripe returns the sole served stripe, or nil when the worker is empty or
// serves several stripes (address those with StripeAt).
func (w *Worker) Stripe() *Stripe {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if len(w.stripes) != 1 {
		return nil
	}
	for _, s := range w.stripes {
		return s
	}
	return nil
}

// StripeAt returns the served stripe with the given index, or nil.
func (w *Worker) StripeAt(index int) *Stripe {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stripes[index]
}

// Stripes returns the served stripes sorted by index.
func (w *Worker) Stripes() []*Stripe {
	w.mu.RLock()
	out := make([]*Stripe, 0, len(w.stripes))
	for _, s := range w.stripes {
		out = append(out, s)
	}
	w.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// errNoStripe is returned by RPCs on a worker that has not received a stripe.
var errNoStripe = errors.New("distributed: worker has no stripe installed")

// ErrStripeReplaced reports that a worker's stripe no longer matches the
// graph fingerprint the caller pinned at connect time — typically because a
// new epoch's stripe was installed (or the stripe retagged) after the
// coordinator connected. Callers reconnect to pick up the new snapshot.
var ErrStripeReplaced = errors.New("distributed: worker stripe does not match the pinned graph fingerprint")

// ErrContentMismatch reports that a retag was refused because the worker's
// served payload differs from the content fingerprint the caller expected;
// the caller must ship the full stripe instead.
var ErrContentMismatch = errors.New("distributed: stripe content does not match, retag refused")

// stripeFor resolves a stripe selector: a non-negative index looks the stripe
// up, AnyStripe resolves to the sole served stripe (and fails when the worker
// serves none or several — a replicated member's callers must address their
// stripe explicitly). Callers must hold at least the read lock or accept the
// returned snapshot.
func (w *Worker) stripeFor(index int) (*Stripe, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stripeForLocked(index)
}

func (w *Worker) stripeForLocked(index int) (*Stripe, error) {
	if index != AnyStripe {
		if s := w.stripes[index]; s != nil {
			return s, nil
		}
		if len(w.stripes) == 0 {
			return nil, errNoStripe
		}
		return nil, fmt.Errorf("distributed: worker does not serve stripe %d", index)
	}
	switch len(w.stripes) {
	case 0:
		return nil, errNoStripe
	case 1:
		for _, s := range w.stripes {
			return s, nil
		}
	}
	return nil, fmt.Errorf("distributed: worker serves %d stripes, select one with the stripe parameter", len(w.stripes))
}

// Retag rebinds the sole served stripe to a new source-graph identity; see
// RetagAt.
func (w *Worker) Retag(graphSum uint32, epoch uint64, content uint32) (WorkerInfo, error) {
	return w.RetagAt(AnyStripe, graphSum, epoch, content)
}

// RetagAt rebinds the served stripe at index to a new source-graph identity
// (fingerprint and epoch) without replacing its payload. The served payload's
// content fingerprint must equal content; otherwise the call fails with
// ErrContentMismatch and the stripe is left untouched. The rebind installs a
// fresh Stripe value, so in-flight multiplies keep their consistent snapshot
// (and fail their pinned-fingerprint check on the next call, as with a full
// replacement).
func (w *Worker) RetagAt(index int, graphSum uint32, epoch uint64, content uint32) (WorkerInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, err := w.stripeForLocked(index)
	if err != nil {
		return WorkerInfo{}, err
	}
	if s.ContentFingerprint() != content {
		return WorkerInfo{}, fmt.Errorf("%w (serving %08x, caller expects %08x)", ErrContentMismatch, s.ContentFingerprint(), content)
	}
	ns := s.retagged(graphSum, epoch)
	w.stripes[ns.Index] = ns
	return ns.info(), nil
}

// info assembles the wire metadata of one stripe.
func (s *Stripe) info() WorkerInfo {
	return WorkerInfo{
		Protocol: ProtocolVersion,
		Index:    s.Index,
		Count:    s.Count,
		Graph:    s.graphSum,
		Epoch:    s.epoch,
		Content:  s.content,
		NumNodes: s.NumNodes,
		Rows:     s.OwnedNodes(),
		OutEdges: len(s.out.Col),
		InEdges:  len(s.in.Col),
	}
}

// Info implements the worker side of Transport.Info for the sole stripe.
func (w *Worker) Info() (WorkerInfo, error) { return w.InfoAt(AnyStripe) }

// InfoAt returns the wire metadata of the stripe at index.
func (w *Worker) InfoAt(index int) (WorkerInfo, error) {
	s, err := w.stripeFor(index)
	if err != nil {
		return WorkerInfo{}, err
	}
	return s.info(), nil
}

// OutSums implements the worker side of Transport.OutSums for the sole
// stripe; see OutSumsAt.
func (w *Worker) OutSums() ([]float64, error) { return w.OutSumsAt(AnyStripe) }

// OutSumsAt returns the out-weight sums of the owned rows of the stripe at
// index. The result is a copy; callers may keep it.
func (w *Worker) OutSumsAt(index int) ([]float64, error) {
	s, err := w.stripeFor(index)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), s.OutSums()...), nil
}

// Multiply implements the worker side of Transport.Multiply for the sole
// stripe; see MultiplyAt.
func (w *Worker) Multiply(dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	return w.MultiplyAt(AnyStripe, dir, graphSum, x)
}

// MultiplyAt gathers over one consistent snapshot of the stripe at index.
// graphSum must match the snapshot's graph fingerprint: it pins the graph the
// caller validated at connect time, so a stripe replaced mid-lifetime with
// one from a different graph fails the call instead of producing silently
// mixed results.
func (w *Worker) MultiplyAt(index int, dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	s, err := w.stripeFor(index)
	if err != nil {
		return nil, err
	}
	if s.graphSum != graphSum {
		return nil, fmt.Errorf("%w (stripe has %08x, caller expects %08x)", ErrStripeReplaced, s.graphSum, graphSum)
	}
	dst := make([]float64, s.OwnedNodes())
	switch dir {
	case DirIn:
		err = s.MultiplyIn(x, dst)
	case DirOut:
		err = s.MultiplyOut(x, dst)
	default:
		err = fmt.Errorf("distributed: unknown multiply direction %d", dir)
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// MaxStripeUploadBytes caps the body of the stripe-install endpoint.
const MaxStripeUploadBytes = 4 << 30

// Handler returns the worker's HTTP API — the gpserver wire protocol (see
// docs/API.md):
//
//	GET    /healthz          — liveness and served-stripe summary (JSON)
//	GET    /v1/info          — WorkerInfo (JSON); 409 when no stripe is installed
//	GET    /v1/outsums       — owned rows' out-weight sums (binary vector)
//	GET    /v1/outdegs       — owned rows' out-degrees (binary int32 array)
//	POST   /v1/multiply      — ?dir=in|out, body and response binary vectors
//	POST   /v1/rows          — batched row fetch for the online serving path
//	                           (binary, see rows.go for the wire format)
//	POST   /v1/stripe        — install a stripe (binary stripe codec body)
//	POST   /v1/stripe/retag  — ?graph=F&epoch=E&content=C rebind an unchanged
//	                           stripe to a new epoch; 409 on content mismatch
//	DELETE /v1/stripe        — uninstall a stripe (fleet rebalance)
//
// Every per-stripe endpoint accepts an optional ?stripe=N selector; a worker
// serving a single stripe (the classic deployment) may omit it, a replicated
// member serving several stripes requires it. Binary vectors are raw
// little-endian float64 arrays; stripes use the checksummed format of
// graph.EncodeStripe.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /v1/info", w.handleInfo)
	mux.HandleFunc("GET /v1/outsums", w.handleOutSums)
	mux.HandleFunc("GET /v1/outdegs", w.handleOutDegs)
	mux.HandleFunc("POST /v1/multiply", w.handleMultiply)
	mux.HandleFunc("POST /v1/rows", w.handleRows)
	mux.HandleFunc("POST /v1/stripe", w.handleInstallStripe)
	mux.HandleFunc("POST /v1/stripe/retag", w.handleRetagStripe)
	mux.HandleFunc("DELETE /v1/stripe", w.handleRemoveStripe)
	return mux
}

// stripeParam parses the optional ?stripe=N selector (AnyStripe when absent).
func stripeParam(r *http.Request) (int, error) {
	sp := r.URL.Query().Get("stripe")
	if sp == "" {
		return AnyStripe, nil
	}
	v, err := strconv.Atoi(sp)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("distributed: invalid stripe selector %q", sp)
	}
	return v, nil
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	stripes := w.Stripes()
	if len(stripes) == 0 {
		workerJSON(rw, http.StatusOK, map[string]any{"status": "empty", "stripes": []any{}})
		return
	}
	list := make([]map[string]any, 0, len(stripes))
	for _, s := range stripes {
		list = append(list, map[string]any{
			"stripe":  s.Index,
			"of":      s.Count,
			"rows":    s.OwnedNodes(),
			"epoch":   s.epoch,
			"graph":   s.graphSum,
			"content": s.content,
		})
	}
	resp := map[string]any{"status": "ok", "stripes": list}
	if len(stripes) == 1 {
		// Classic single-stripe deployments keep the flat summary fields.
		s := stripes[0]
		resp["stripe"] = s.Index
		resp["of"] = s.Count
		resp["nodes"] = s.NumNodes
		resp["rows"] = s.OwnedNodes()
		resp["epoch"] = s.epoch
		resp["graph"] = s.graphSum
		resp["content"] = s.content
	}
	workerJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := w.InfoAt(index)
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	workerJSON(rw, http.StatusOK, info)
}

func (w *Worker) handleOutSums(rw http.ResponseWriter, r *http.Request) {
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	sums, err := w.OutSumsAt(index)
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(sums)*8))
	_, _ = rw.Write(AppendVector(make([]byte, 0, len(sums)*8), sums))
}

func (w *Worker) handleMultiply(rw http.ResponseWriter, r *http.Request) {
	dir, err := ParseDirection(r.URL.Query().Get("dir"))
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s, err := w.stripeFor(index)
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	// The optional graph parameter pins the stripe's source graph; callers
	// that omit it (ad-hoc curl) accept whatever stripe is installed.
	graphSum := s.graphSum
	if gp := r.URL.Query().Get("graph"); gp != "" {
		v, err := strconv.ParseUint(gp, 10, 32)
		if err != nil {
			workerError(rw, http.StatusBadRequest, "distributed: invalid graph fingerprint %q", gp)
			return
		}
		graphSum = uint32(v)
	}
	// The input is the full iteration vector: exactly NumNodes entries.
	body := http.MaxBytesReader(rw, r.Body, int64(s.NumNodes)*8+1)
	x, err := ReadVector(body, s.NumNodes, nil)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if extra := make([]byte, 1); readsOneByte(body, extra) {
		workerError(rw, http.StatusBadRequest, "distributed: multiply body longer than %d entries", s.NumNodes)
		return
	}
	out, err := w.MultiplyAt(s.Index, dir, graphSum, x)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrStripeReplaced) {
			status = http.StatusConflict
		}
		workerError(rw, status, "%v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(out)*8))
	_, _ = rw.Write(AppendVector(make([]byte, 0, len(out)*8), out))
}

func readsOneByte(r interface{ Read([]byte) (int, error) }, buf []byte) bool {
	n, _ := r.Read(buf)
	return n > 0
}

func (w *Worker) handleRetagStripe(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	graphSum, err1 := strconv.ParseUint(q.Get("graph"), 10, 32)
	epoch, err2 := strconv.ParseUint(q.Get("epoch"), 10, 64)
	content, err3 := strconv.ParseUint(q.Get("content"), 10, 32)
	if err1 != nil || err2 != nil || err3 != nil {
		workerError(rw, http.StatusBadRequest, "distributed: retag needs numeric graph, epoch and content parameters")
		return
	}
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := w.RetagAt(index, uint32(graphSum), epoch, uint32(content))
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	workerJSON(rw, http.StatusOK, info)
}

func (w *Worker) handleInstallStripe(rw http.ResponseWriter, r *http.Request) {
	s, err := DecodeStripe(http.MaxBytesReader(rw, r.Body, MaxStripeUploadBytes))
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	w.SetStripe(s)
	workerJSON(rw, http.StatusOK, s.info())
}

func (w *Worker) handleRemoveStripe(rw http.ResponseWriter, r *http.Request) {
	index, err := stripeParam(r)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if !w.RemoveStripe(index) {
		workerError(rw, http.StatusConflict, "distributed: no such stripe to remove")
		return
	}
	workerJSON(rw, http.StatusOK, map[string]any{"removed": true})
}

func workerJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func workerError(rw http.ResponseWriter, status int, format string, args ...any) {
	workerJSON(rw, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
