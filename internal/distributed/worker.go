package distributed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// Worker serves one stripe's share of the distributed iteration: the
// stateless multiply RPCs the coordinator fans out once per power iteration,
// plus the topology metadata it needs to assemble global vectors. A Worker
// may start empty and receive its stripe later (SetStripe, or the handler's
// stripe-install endpoint); it is safe for concurrent use.
type Worker struct {
	mu     sync.RWMutex
	stripe *Stripe
}

// NewWorker returns a worker serving s; s may be nil for a worker that waits
// to receive its stripe.
func NewWorker(s *Stripe) *Worker { return &Worker{stripe: s} }

// SetStripe installs (or replaces) the served stripe.
func (w *Worker) SetStripe(s *Stripe) {
	w.mu.Lock()
	w.stripe = s
	w.mu.Unlock()
}

// Stripe returns the currently served stripe, or nil.
func (w *Worker) Stripe() *Stripe {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stripe
}

// errNoStripe is returned by RPCs on a worker that has not received a stripe.
var errNoStripe = errors.New("distributed: worker has no stripe installed")

// ErrStripeReplaced reports that a worker's stripe no longer matches the
// graph fingerprint the caller pinned at connect time — typically because a
// new epoch's stripe was installed (or the stripe retagged) after the
// coordinator connected. Callers reconnect to pick up the new snapshot.
var ErrStripeReplaced = errors.New("distributed: worker stripe does not match the pinned graph fingerprint")

// ErrContentMismatch reports that a retag was refused because the worker's
// served payload differs from the content fingerprint the caller expected;
// the caller must ship the full stripe instead.
var ErrContentMismatch = errors.New("distributed: stripe content does not match, retag refused")

// Retag rebinds the served stripe to a new source-graph identity (fingerprint
// and epoch) without replacing its payload. The served payload's content
// fingerprint must equal content; otherwise the call fails with
// ErrContentMismatch and the stripe is left untouched. The rebind installs a
// fresh Stripe value, so in-flight multiplies keep their consistent snapshot
// (and fail their pinned-fingerprint check on the next call, as with a full
// replacement).
func (w *Worker) Retag(graphSum uint32, epoch uint64, content uint32) (WorkerInfo, error) {
	w.mu.Lock()
	s := w.stripe
	if s == nil {
		w.mu.Unlock()
		return WorkerInfo{}, errNoStripe
	}
	if s.ContentFingerprint() != content {
		w.mu.Unlock()
		return WorkerInfo{}, fmt.Errorf("%w (serving %08x, caller expects %08x)", ErrContentMismatch, s.ContentFingerprint(), content)
	}
	w.stripe = s.retagged(graphSum, epoch)
	w.mu.Unlock()
	return w.Info()
}

// Info implements the worker side of Transport.Info.
func (w *Worker) Info() (WorkerInfo, error) {
	s := w.Stripe()
	if s == nil {
		return WorkerInfo{}, errNoStripe
	}
	return WorkerInfo{
		Protocol: ProtocolVersion,
		Index:    s.Index,
		Count:    s.Count,
		Graph:    s.graphSum,
		Epoch:    s.epoch,
		Content:  s.content,
		NumNodes: s.NumNodes,
		Rows:     s.OwnedNodes(),
		OutEdges: len(s.out.Col),
		InEdges:  len(s.in.Col),
	}, nil
}

// OutSums implements the worker side of Transport.OutSums. The result is a
// copy; callers may keep it.
func (w *Worker) OutSums() ([]float64, error) {
	s := w.Stripe()
	if s == nil {
		return nil, errNoStripe
	}
	return append([]float64(nil), s.OutSums()...), nil
}

// Multiply implements the worker side of Transport.Multiply, gathering over
// one consistent stripe snapshot. graphSum must match the snapshot's graph
// fingerprint: it pins the graph the caller validated at connect time, so a
// stripe replaced mid-lifetime with one from a different graph fails the
// call instead of producing silently mixed results.
func (w *Worker) Multiply(dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	s := w.Stripe()
	if s == nil {
		return nil, errNoStripe
	}
	if s.graphSum != graphSum {
		return nil, fmt.Errorf("%w (stripe has %08x, caller expects %08x)", ErrStripeReplaced, s.graphSum, graphSum)
	}
	dst := make([]float64, s.OwnedNodes())
	var err error
	switch dir {
	case DirIn:
		err = s.MultiplyIn(x, dst)
	case DirOut:
		err = s.MultiplyOut(x, dst)
	default:
		err = fmt.Errorf("distributed: unknown multiply direction %d", dir)
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// MaxStripeUploadBytes caps the body of the stripe-install endpoint.
const MaxStripeUploadBytes = 4 << 30

// Handler returns the worker's HTTP API — the gpserver wire protocol (see
// docs/API.md):
//
//	GET  /healthz          — liveness and stripe summary (JSON)
//	GET  /v1/info          — WorkerInfo (JSON); 409 when no stripe is installed
//	GET  /v1/outsums       — owned rows' out-weight sums (binary vector)
//	GET  /v1/outdegs       — owned rows' out-degrees (binary int32 array)
//	POST /v1/multiply      — ?dir=in|out, body and response binary vectors
//	POST /v1/rows          — batched row fetch for the online serving path
//	                         (binary, see rows.go for the wire format)
//	POST /v1/stripe        — install a stripe (binary stripe codec body)
//	POST /v1/stripe/retag  — ?graph=F&epoch=E&content=C rebind an unchanged
//	                         stripe to a new epoch; 409 on content mismatch
//
// Binary vectors are raw little-endian float64 arrays; stripes use the
// checksummed format of graph.EncodeStripe.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /v1/info", w.handleInfo)
	mux.HandleFunc("GET /v1/outsums", w.handleOutSums)
	mux.HandleFunc("GET /v1/outdegs", w.handleOutDegs)
	mux.HandleFunc("POST /v1/multiply", w.handleMultiply)
	mux.HandleFunc("POST /v1/rows", w.handleRows)
	mux.HandleFunc("POST /v1/stripe", w.handleInstallStripe)
	mux.HandleFunc("POST /v1/stripe/retag", w.handleRetagStripe)
	return mux
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	s := w.Stripe()
	if s == nil {
		workerJSON(rw, http.StatusOK, map[string]any{"status": "empty"})
		return
	}
	workerJSON(rw, http.StatusOK, map[string]any{
		"status":  "ok",
		"stripe":  s.Index,
		"of":      s.Count,
		"nodes":   s.NumNodes,
		"rows":    s.OwnedNodes(),
		"epoch":   s.epoch,
		"graph":   s.graphSum,
		"content": s.content,
	})
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	info, err := w.Info()
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	workerJSON(rw, http.StatusOK, info)
}

func (w *Worker) handleOutSums(rw http.ResponseWriter, r *http.Request) {
	sums, err := w.OutSums()
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(sums)*8))
	_, _ = rw.Write(AppendVector(make([]byte, 0, len(sums)*8), sums))
}

func (w *Worker) handleMultiply(rw http.ResponseWriter, r *http.Request) {
	dir, err := ParseDirection(r.URL.Query().Get("dir"))
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s := w.Stripe()
	if s == nil {
		workerError(rw, http.StatusConflict, "%v", errNoStripe)
		return
	}
	// The optional graph parameter pins the stripe's source graph; callers
	// that omit it (ad-hoc curl) accept whatever stripe is installed.
	graphSum := s.graphSum
	if gp := r.URL.Query().Get("graph"); gp != "" {
		v, err := strconv.ParseUint(gp, 10, 32)
		if err != nil {
			workerError(rw, http.StatusBadRequest, "distributed: invalid graph fingerprint %q", gp)
			return
		}
		graphSum = uint32(v)
	}
	// The input is the full iteration vector: exactly NumNodes entries.
	body := http.MaxBytesReader(rw, r.Body, int64(s.NumNodes)*8+1)
	x, err := ReadVector(body, s.NumNodes, nil)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if extra := make([]byte, 1); readsOneByte(body, extra) {
		workerError(rw, http.StatusBadRequest, "distributed: multiply body longer than %d entries", s.NumNodes)
		return
	}
	out, err := w.Multiply(dir, graphSum, x)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrStripeReplaced) {
			status = http.StatusConflict
		}
		workerError(rw, status, "%v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(out)*8))
	_, _ = rw.Write(AppendVector(make([]byte, 0, len(out)*8), out))
}

func readsOneByte(r interface{ Read([]byte) (int, error) }, buf []byte) bool {
	n, _ := r.Read(buf)
	return n > 0
}

func (w *Worker) handleRetagStripe(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	graphSum, err1 := strconv.ParseUint(q.Get("graph"), 10, 32)
	epoch, err2 := strconv.ParseUint(q.Get("epoch"), 10, 64)
	content, err3 := strconv.ParseUint(q.Get("content"), 10, 32)
	if err1 != nil || err2 != nil || err3 != nil {
		workerError(rw, http.StatusBadRequest, "distributed: retag needs numeric graph, epoch and content parameters")
		return
	}
	info, err := w.Retag(uint32(graphSum), epoch, uint32(content))
	if err != nil {
		workerError(rw, http.StatusConflict, "%v", err)
		return
	}
	workerJSON(rw, http.StatusOK, info)
}

func (w *Worker) handleInstallStripe(rw http.ResponseWriter, r *http.Request) {
	s, err := DecodeStripe(http.MaxBytesReader(rw, r.Body, MaxStripeUploadBytes))
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	w.SetStripe(s)
	info, _ := w.Info()
	workerJSON(rw, http.StatusOK, info)
}

func workerJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func workerError(rw http.ResponseWriter, status int, format string, args ...any) {
	workerJSON(rw, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
