// Package distributed implements the AP/GP architecture of Sect. V-B: the
// graph is striped round-robin across Graph Processors (GPs), each holding a
// stripe in memory and answering adjacency requests over TCP, while the Active
// Processor (AP) runs 2SBound and incrementally assembles only the active set
// — the nodes and edges the query actually touches — in its local memory.
//
// The AP exposes the assembled active set as a graph.View, so the exact same
// 2SBound implementation runs unchanged on a single machine or on a cluster;
// only the source of adjacency data differs. There is no precomputation beyond
// segmenting the graph.
package distributed

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"roundtriprank/internal/graph"
)

// NodeAdjacency is the unit of transfer between a GP and the AP: one node's
// full in/out adjacency.
type NodeAdjacency struct {
	Node   graph.NodeID
	OutTo  []graph.NodeID
	OutW   []float64
	InFrom []graph.NodeID
	InW    []float64
}

// Request asks a GP for the adjacency of a set of nodes in its stripe.
type Request struct {
	Nodes []graph.NodeID
}

// Response carries the requested adjacency records.
type Response struct {
	Nodes []NodeAdjacency
	Err   string
}

// Stripe holds the subset of a graph assigned to one GP: every node v with
// v mod numStripes == index, along with its full adjacency. The adjacency is
// stored as two compact CSR structures over the stripe's local node index
// (node v maps to local row v/Count, since v = Index + row*Count), so a
// stripe is two offset arrays plus flat column/weight slices — the same
// layout the in-memory graph uses, with no per-node map or allocation.
type Stripe struct {
	Index    int
	Count    int
	NumNodes int
	rows     int
	out      graph.CSR
	in       graph.CSR
}

// BuildStripe extracts stripe `index` of `count` from g by round-robin node
// assignment (Sect. V-B2), slicing the owned rows out of g's CSR arrays.
func BuildStripe(g *graph.Graph, index, count int) (*Stripe, error) {
	if count <= 0 || index < 0 || index >= count {
		return nil, fmt.Errorf("distributed: invalid stripe %d of %d", index, count)
	}
	n := g.NumNodes()
	rows := 0
	if n > index {
		rows = (n - index + count - 1) / count
	}
	s := &Stripe{Index: index, Count: count, NumNodes: n, rows: rows}
	s.out = sliceRows(g.OutCSR(), index, count, rows)
	s.in = sliceRows(g.InCSR(), index, count, rows)
	return s, nil
}

// sliceRows copies every count-th row of src starting at first into a compact
// CSR over the local row index.
func sliceRows(src graph.CSR, first, count, rows int) graph.CSR {
	dst := graph.CSR{RowPtr: make([]int64, rows+1)}
	if rows > 0 {
		dst.Sum = make([]float64, rows)
	}
	var total int64
	for r := 0; r < rows; r++ {
		v := graph.NodeID(first + r*count)
		total += int64(src.Degree(v))
	}
	dst.Col = make([]graph.NodeID, 0, total)
	dst.Weight = make([]float64, 0, total)
	for r := 0; r < rows; r++ {
		v := graph.NodeID(first + r*count)
		cols, wts := src.Row(v)
		dst.Col = append(dst.Col, cols...)
		dst.Weight = append(dst.Weight, wts...)
		dst.Sum[r] = src.Sum[v]
		dst.RowPtr[r+1] = int64(len(dst.Col))
	}
	return dst
}

// adjacency returns the stored adjacency of node v as slices referencing the
// stripe's CSR arrays, or false when v is not assigned to this stripe.
func (s *Stripe) adjacency(v graph.NodeID) (NodeAdjacency, bool) {
	if v < 0 || int(v) >= s.NumNodes || int(v)%s.Count != s.Index {
		return NodeAdjacency{}, false
	}
	r := graph.NodeID(int(v) / s.Count)
	outTo, outW := s.out.Row(r)
	inFrom, inW := s.in.Row(r)
	return NodeAdjacency{Node: v, OutTo: outTo, OutW: outW, InFrom: inFrom, InW: inW}, true
}

// OwnedNodes returns the number of nodes assigned to this stripe.
func (s *Stripe) OwnedNodes() int { return s.rows }

// SizeBytes estimates the stripe's in-memory footprint.
func (s *Stripe) SizeBytes() int64 {
	edges := int64(len(s.out.Col) + len(s.in.Col))
	return int64(s.rows)*48 + edges*12
}

// GP is a graph processor serving one stripe over TCP.
type GP struct {
	stripe   *Stripe
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// ServeGP starts a GP listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and serving the given stripe. It returns immediately; call Close to
// stop.
func ServeGP(addr string, stripe *Stripe) (*GP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distributed: listen: %w", err)
	}
	gp := &GP{stripe: stripe, listener: ln}
	gp.wg.Add(1)
	go gp.acceptLoop()
	return gp, nil
}

// Addr returns the GP's listen address.
func (g *GP) Addr() string { return g.listener.Addr().String() }

// Close stops the GP.
func (g *GP) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	err := g.listener.Close()
	g.wg.Wait()
	return err
}

func (g *GP) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.listener.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveConn(conn)
		}()
	}
}

func (g *GP) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := Response{}
		for _, v := range req.Nodes {
			adj, ok := g.stripe.adjacency(v)
			if !ok {
				resp.Err = fmt.Sprintf("node %d not in stripe %d", v, g.stripe.Index)
				break
			}
			resp.Nodes = append(resp.Nodes, adj)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// AP is the active processor: a graph.View whose adjacency is fetched on
// demand from the GPs and cached locally. The cache is exactly the active set
// of Sect. V-B1.
type AP struct {
	numNodes int
	conns    []*gpConn
	mu       sync.Mutex
	cache    map[graph.NodeID]NodeAdjacency
	requests int
}

type gpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewAP connects to the GPs at the given addresses. numNodes is the total node
// count of the striped graph; addrs[i] must serve stripe i of len(addrs).
func NewAP(numNodes int, addrs []string) (*AP, error) {
	if numNodes <= 0 || len(addrs) == 0 {
		return nil, fmt.Errorf("distributed: AP needs nodes and at least one GP")
	}
	ap := &AP{numNodes: numNodes, cache: make(map[graph.NodeID]NodeAdjacency)}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			ap.Close()
			return nil, fmt.Errorf("distributed: dial %s: %w", addr, err)
		}
		ap.conns = append(ap.conns, &gpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)})
	}
	return ap, nil
}

// Close closes all GP connections.
func (a *AP) Close() error {
	var firstErr error
	for _, c := range a.conns {
		if c != nil && c.conn != nil {
			if err := c.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Requests returns the number of GP round trips performed so far.
func (a *AP) Requests() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.requests
}

// ActiveNodes returns the number of nodes currently in the active set.
func (a *AP) ActiveNodes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cache)
}

// ActiveSetBytes estimates the in-memory size of the assembled active set.
func (a *AP) ActiveSetBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var edges int64
	for _, adj := range a.cache {
		edges += int64(len(adj.OutTo) + len(adj.InFrom))
	}
	return int64(len(a.cache))*48 + edges*12
}

func (a *AP) fetch(v graph.NodeID) (NodeAdjacency, error) {
	a.mu.Lock()
	if adj, ok := a.cache[v]; ok {
		a.mu.Unlock()
		return adj, nil
	}
	a.mu.Unlock()

	c := a.conns[int(v)%len(a.conns)]
	c.mu.Lock()
	err := c.enc.Encode(&Request{Nodes: []graph.NodeID{v}})
	var resp Response
	if err == nil {
		err = c.dec.Decode(&resp)
	}
	c.mu.Unlock()
	if err != nil {
		return NodeAdjacency{}, fmt.Errorf("distributed: fetch node %d: %w", v, err)
	}
	if resp.Err != "" {
		return NodeAdjacency{}, fmt.Errorf("distributed: GP error: %s", resp.Err)
	}
	if len(resp.Nodes) != 1 {
		return NodeAdjacency{}, fmt.Errorf("distributed: unexpected response size %d", len(resp.Nodes))
	}
	adj := resp.Nodes[0]
	a.mu.Lock()
	a.cache[v] = adj
	a.requests++
	a.mu.Unlock()
	return adj, nil
}

func (a *AP) mustFetch(v graph.NodeID) NodeAdjacency {
	adj, err := a.fetch(v)
	if err != nil {
		// graph.View has no error channel; a network failure during query
		// processing is unrecoverable for this query, so panic with context
		// (callers in cmd/ recover and report).
		panic(err)
	}
	return adj
}

// NumNodes implements graph.View.
func (a *AP) NumNodes() int { return a.numNodes }

// OutDegree implements graph.View.
func (a *AP) OutDegree(v graph.NodeID) int { return len(a.mustFetch(v).OutTo) }

// InDegree implements graph.View.
func (a *AP) InDegree(v graph.NodeID) int { return len(a.mustFetch(v).InFrom) }

// OutWeightSum implements graph.View.
func (a *AP) OutWeightSum(v graph.NodeID) float64 {
	adj := a.mustFetch(v)
	sum := 0.0
	for _, w := range adj.OutW {
		sum += w
	}
	return sum
}

// InWeightSum implements graph.View.
func (a *AP) InWeightSum(v graph.NodeID) float64 {
	adj := a.mustFetch(v)
	sum := 0.0
	for _, w := range adj.InW {
		sum += w
	}
	return sum
}

// EachOut implements graph.View.
func (a *AP) EachOut(v graph.NodeID, fn func(to graph.NodeID, w float64) bool) {
	adj := a.mustFetch(v)
	for i, to := range adj.OutTo {
		if !fn(to, adj.OutW[i]) {
			return
		}
	}
}

// EachIn implements graph.View.
func (a *AP) EachIn(v graph.NodeID, fn func(from graph.NodeID, w float64) bool) {
	adj := a.mustFetch(v)
	for i, from := range adj.InFrom {
		if !fn(from, adj.InW[i]) {
			return
		}
	}
}

// Cluster is a convenience helper that runs every GP in-process (one per
// stripe) and returns a connected AP; it is used by tests, examples and the
// scalability experiments to simulate an n-machine deployment on localhost.
type Cluster struct {
	GPs []*GP
	AP  *AP
}

// StartCluster stripes g across n in-process GPs on loopback TCP and connects
// an AP to them.
func StartCluster(g *graph.Graph, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distributed: cluster needs at least one GP")
	}
	c := &Cluster{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		stripe, err := BuildStripe(g, i, n)
		if err != nil {
			c.Close()
			return nil, err
		}
		gp, err := ServeGP("127.0.0.1:0", stripe)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.GPs = append(c.GPs, gp)
		addrs = append(addrs, gp.Addr())
	}
	ap, err := NewAP(g.NumNodes(), addrs)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.AP = ap
	return c, nil
}

// Close shuts down the AP and every GP.
func (c *Cluster) Close() {
	if c.AP != nil {
		c.AP.Close()
	}
	for _, gp := range c.GPs {
		gp.Close()
	}
}
