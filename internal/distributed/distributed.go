// This file holds the Stripe structure and the legacy AP/GP topology; the
// package documentation lives in doc.go.
package distributed

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"roundtriprank/internal/graph"
)

// NodeAdjacency is the unit of transfer between a GP and the AP: one node's
// full in/out adjacency.
type NodeAdjacency struct {
	Node   graph.NodeID
	OutTo  []graph.NodeID
	OutW   []float64
	InFrom []graph.NodeID
	InW    []float64
}

// Request asks a GP for the adjacency of a set of nodes in its stripe.
type Request struct {
	Nodes []graph.NodeID
}

// Response carries the requested adjacency records.
type Response struct {
	Nodes []NodeAdjacency
	Err   string
}

// Stripe holds the subset of a graph assigned to one GP: every node v with
// v mod numStripes == index, along with its full adjacency. The adjacency is
// stored as two compact CSR structures over the stripe's local node index
// (node v maps to local row v/Count, since v = Index + row*Count), so a
// stripe is two offset arrays plus flat column/weight slices — the same
// layout the in-memory graph uses, with no per-node map or allocation.
type Stripe struct {
	Index    int
	Count    int
	NumNodes int
	graphSum uint32 // fingerprint of the source graph (graph.GraphFingerprint)
	epoch    uint64 // snapshot version of the source graph (graph.Graph.Epoch)
	content  uint32 // fingerprint of the stripe's own payload (StripeData.ContentFingerprint)
	rows     int
	out      graph.CSR
	in       graph.CSR
}

// BuildStripe extracts stripe `index` of `count` from g by round-robin node
// assignment (Sect. V-B2), slicing the owned rows out of g's CSR arrays.
func BuildStripe(g *graph.Graph, index, count int) (*Stripe, error) {
	d, err := graph.BuildStripeData(g, index, count)
	if err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	return StripeFromData(d)
}

// StripeFromData wraps a validated codec payload as a servable Stripe.
func StripeFromData(d *graph.StripeData) (*Stripe, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	return &Stripe{
		Index:    d.Index,
		Count:    d.Count,
		NumNodes: d.NumNodes,
		graphSum: d.Graph,
		epoch:    d.Epoch,
		content:  d.ContentFingerprint(),
		rows:     d.Rows(),
		out:      d.Out,
		in:       d.In,
	}, nil
}

// GraphFingerprint returns the fingerprint of the graph this stripe was cut
// from (graph.GraphFingerprint of the full graph, not of the slice).
func (s *Stripe) GraphFingerprint() uint32 { return s.graphSum }

// Epoch returns the snapshot version of the graph the stripe was cut from.
func (s *Stripe) Epoch() uint64 { return s.epoch }

// ContentFingerprint returns the fingerprint of the stripe's own payload
// (StripeData.ContentFingerprint), stable across commits that do not touch
// the stripe's rows. Redeploys compare it to skip shipping unchanged stripes.
func (s *Stripe) ContentFingerprint() uint32 { return s.content }

// retagged returns a copy of the stripe bound to a new source-graph identity,
// sharing the CSR arrays. Used when a commit left this stripe's rows
// unchanged: the payload is identical, only the graph fingerprint and epoch
// move. A fresh Stripe (rather than in-place mutation) keeps in-flight
// multiplies reading a consistent snapshot.
func (s *Stripe) retagged(graphSum uint32, epoch uint64) *Stripe {
	c := *s
	c.graphSum = graphSum
	c.epoch = epoch
	return &c
}

// Data returns the stripe's codec payload. The CSR slices are shared with the
// stripe, not copied; treat them as read-only.
func (s *Stripe) Data() *graph.StripeData {
	return &graph.StripeData{Index: s.Index, Count: s.Count, NumNodes: s.NumNodes, Graph: s.graphSum, Epoch: s.epoch, Out: s.out, In: s.in}
}

// Encode writes the stripe in the binary stripe format of
// graph.EncodeStripe, suitable for persisting to disk or shipping to a
// worker's stripe-install endpoint.
func (s *Stripe) Encode(w io.Writer) error { return graph.EncodeStripe(w, s.Data()) }

// DecodeStripe reads a stripe previously written with Stripe.Encode (or
// graph.EncodeStripe), verifying checksums and CSR invariants.
func DecodeStripe(r io.Reader) (*Stripe, error) {
	d, err := graph.DecodeStripe(r)
	if err != nil {
		return nil, err
	}
	return StripeFromData(d)
}

// adjacency returns the stored adjacency of node v as slices referencing the
// stripe's CSR arrays, or false when v is not assigned to this stripe.
func (s *Stripe) adjacency(v graph.NodeID) (NodeAdjacency, bool) {
	if v < 0 || int(v) >= s.NumNodes || int(v)%s.Count != s.Index {
		return NodeAdjacency{}, false
	}
	r := graph.NodeID(int(v) / s.Count)
	outTo, outW := s.out.Row(r)
	inFrom, inW := s.in.Row(r)
	return NodeAdjacency{Node: v, OutTo: outTo, OutW: outW, InFrom: inFrom, InW: inW}, true
}

// OwnedNodes returns the number of nodes assigned to this stripe.
func (s *Stripe) OwnedNodes() int { return s.rows }

// GlobalNode returns the global node ID of local row r (the inverse of the
// round-robin assignment: row r owns node Index + r*Count).
func (s *Stripe) GlobalNode(r int) graph.NodeID { return graph.NodeID(s.Index + r*s.Count) }

// OutSums returns the total outgoing edge weight of every owned node, indexed
// by local row. The coordinator assembles these into the global out-weight
// vector it needs for transition scaling and dangling-mass collection. The
// returned slice aliases the stripe; treat it as read-only.
func (s *Stripe) OutSums() []float64 { return s.out.Sum }

// MultiplyIn computes one owned slice of the pull-style gather that drives
// F-Rank: dst[r] = Σ_{u→v} w(u,v)·x[u] for each owned node v, reading v's
// transposed adjacency row. x must have NumNodes entries and dst OwnedNodes
// entries. Each output row is reduced sequentially in CSR order — the same
// order as the in-process kernels — so a distributed solve is bit-identical
// to a local one.
func (s *Stripe) MultiplyIn(x, dst []float64) error {
	return s.multiply(s.in, x, dst)
}

// MultiplyOut computes one owned slice of the forward gather that drives
// T-Rank: dst[r] = Σ_{v→to} w(v,to)·x[to] for each owned node v, reading v's
// forward adjacency row. The result is the raw row reduction; the coordinator
// applies the per-row 1/outSum normalization.
func (s *Stripe) MultiplyOut(x, dst []float64) error {
	return s.multiply(s.out, x, dst)
}

func (s *Stripe) multiply(c graph.CSR, x, dst []float64) error {
	if len(x) != s.NumNodes {
		return fmt.Errorf("distributed: multiply input has %d entries, stripe graph has %d nodes", len(x), s.NumNodes)
	}
	if len(dst) != s.rows {
		return fmt.Errorf("distributed: multiply output has %d entries, stripe owns %d rows", len(dst), s.rows)
	}
	for r := 0; r < s.rows; r++ {
		sum := 0.0
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			sum += c.Weight[i] * x[c.Col[i]]
		}
		dst[r] = sum
	}
	return nil
}

// SizeBytes estimates the stripe's in-memory footprint.
func (s *Stripe) SizeBytes() int64 {
	edges := int64(len(s.out.Col) + len(s.in.Col))
	return int64(s.rows)*48 + edges*12
}

// GP is a graph processor serving one stripe over TCP.
type GP struct {
	stripe   *Stripe
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// ServeGP starts a GP listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and serving the given stripe. It returns immediately; call Close to
// stop.
func ServeGP(addr string, stripe *Stripe) (*GP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distributed: listen: %w", err)
	}
	gp := &GP{stripe: stripe, listener: ln}
	gp.wg.Add(1)
	go gp.acceptLoop()
	return gp, nil
}

// Addr returns the GP's listen address.
func (g *GP) Addr() string { return g.listener.Addr().String() }

// Close stops the GP.
func (g *GP) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	err := g.listener.Close()
	g.wg.Wait()
	return err
}

func (g *GP) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.listener.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveConn(conn)
		}()
	}
}

func (g *GP) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := Response{}
		for _, v := range req.Nodes {
			adj, ok := g.stripe.adjacency(v)
			if !ok {
				resp.Err = fmt.Sprintf("node %d not in stripe %d", v, g.stripe.Index)
				break
			}
			resp.Nodes = append(resp.Nodes, adj)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// AP is the active processor: a graph.View whose adjacency is fetched on
// demand from the GPs and cached locally. The cache is exactly the active set
// of Sect. V-B1.
type AP struct {
	numNodes int
	conns    []*gpConn
	mu       sync.Mutex
	cache    map[graph.NodeID]NodeAdjacency
	requests int
}

type gpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewAP connects to the GPs at the given addresses. numNodes is the total node
// count of the striped graph; addrs[i] must serve stripe i of len(addrs).
func NewAP(numNodes int, addrs []string) (*AP, error) {
	if numNodes <= 0 || len(addrs) == 0 {
		return nil, fmt.Errorf("distributed: AP needs nodes and at least one GP")
	}
	ap := &AP{numNodes: numNodes, cache: make(map[graph.NodeID]NodeAdjacency)}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			ap.Close()
			return nil, fmt.Errorf("distributed: dial %s: %w", addr, err)
		}
		ap.conns = append(ap.conns, &gpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)})
	}
	return ap, nil
}

// Close closes all GP connections.
func (a *AP) Close() error {
	var firstErr error
	for _, c := range a.conns {
		if c != nil && c.conn != nil {
			if err := c.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Requests returns the number of GP round trips performed so far.
func (a *AP) Requests() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.requests
}

// ActiveNodes returns the number of nodes currently in the active set.
func (a *AP) ActiveNodes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cache)
}

// ActiveSetBytes estimates the in-memory size of the assembled active set.
func (a *AP) ActiveSetBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var edges int64
	for _, adj := range a.cache {
		edges += int64(len(adj.OutTo) + len(adj.InFrom))
	}
	return int64(len(a.cache))*48 + edges*12
}

func (a *AP) fetch(v graph.NodeID) (NodeAdjacency, error) {
	a.mu.Lock()
	if adj, ok := a.cache[v]; ok {
		a.mu.Unlock()
		return adj, nil
	}
	a.mu.Unlock()

	c := a.conns[int(v)%len(a.conns)]
	c.mu.Lock()
	err := c.enc.Encode(&Request{Nodes: []graph.NodeID{v}})
	var resp Response
	if err == nil {
		err = c.dec.Decode(&resp)
	}
	c.mu.Unlock()
	if err != nil {
		return NodeAdjacency{}, fmt.Errorf("distributed: fetch node %d: %w", v, err)
	}
	if resp.Err != "" {
		return NodeAdjacency{}, fmt.Errorf("distributed: GP error: %s", resp.Err)
	}
	if len(resp.Nodes) != 1 {
		return NodeAdjacency{}, fmt.Errorf("distributed: unexpected response size %d", len(resp.Nodes))
	}
	adj := resp.Nodes[0]
	a.mu.Lock()
	a.cache[v] = adj
	a.requests++
	a.mu.Unlock()
	return adj, nil
}

func (a *AP) mustFetch(v graph.NodeID) NodeAdjacency {
	adj, err := a.fetch(v)
	if err != nil {
		// graph.View has no error channel; a network failure during query
		// processing is unrecoverable for this query, so panic with context
		// (callers in cmd/ recover and report).
		panic(err)
	}
	return adj
}

// NumNodes implements graph.View.
func (a *AP) NumNodes() int { return a.numNodes }

// OutDegree implements graph.View.
func (a *AP) OutDegree(v graph.NodeID) int { return len(a.mustFetch(v).OutTo) }

// InDegree implements graph.View.
func (a *AP) InDegree(v graph.NodeID) int { return len(a.mustFetch(v).InFrom) }

// OutWeightSum implements graph.View.
func (a *AP) OutWeightSum(v graph.NodeID) float64 {
	adj := a.mustFetch(v)
	sum := 0.0
	for _, w := range adj.OutW {
		sum += w
	}
	return sum
}

// InWeightSum implements graph.View.
func (a *AP) InWeightSum(v graph.NodeID) float64 {
	adj := a.mustFetch(v)
	sum := 0.0
	for _, w := range adj.InW {
		sum += w
	}
	return sum
}

// EachOut implements graph.View.
func (a *AP) EachOut(v graph.NodeID, fn func(to graph.NodeID, w float64) bool) {
	adj := a.mustFetch(v)
	for i, to := range adj.OutTo {
		if !fn(to, adj.OutW[i]) {
			return
		}
	}
}

// EachIn implements graph.View.
func (a *AP) EachIn(v graph.NodeID, fn func(from graph.NodeID, w float64) bool) {
	adj := a.mustFetch(v)
	for i, from := range adj.InFrom {
		if !fn(from, adj.InW[i]) {
			return
		}
	}
}

// Cluster is a convenience helper that runs every GP in-process (one per
// stripe) and returns a connected AP; it is used by tests, examples and the
// scalability experiments to simulate an n-machine deployment on localhost.
type Cluster struct {
	GPs []*GP
	AP  *AP
}

// StartCluster stripes g across n in-process GPs on loopback TCP and connects
// an AP to them.
func StartCluster(g *graph.Graph, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distributed: cluster needs at least one GP")
	}
	c := &Cluster{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		stripe, err := BuildStripe(g, i, n)
		if err != nil {
			c.Close()
			return nil, err
		}
		gp, err := ServeGP("127.0.0.1:0", stripe)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.GPs = append(c.GPs, gp)
		addrs = append(addrs, gp.Addr())
	}
	ap, err := NewAP(g.NumNodes(), addrs)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.AP = ap
	return c, nil
}

// Close shuts down the AP and every GP.
func (c *Cluster) Close() {
	if c.AP != nil {
		c.AP.Close()
	}
	for _, gp := range c.GPs {
		gp.Close()
	}
}
