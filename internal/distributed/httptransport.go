package distributed

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"
)

// DefaultHTTPTimeout bounds each worker RPC when the caller's context carries
// no earlier deadline. One multiply call streams two vectors, so the bound is
// generous; coordinator retries handle the slow-worker case.
const DefaultHTTPTimeout = 30 * time.Second

// HTTPTransport talks the gpserver wire protocol: JSON metadata endpoints and
// binary vector bodies (see Worker.Handler and docs/API.md). Failures are
// classified for the coordinator's retry logic: connection errors and 5xx
// responses are transient, 4xx responses and malformed replies are not.
type HTTPTransport struct {
	base    string
	client  *http.Client
	timeout time.Duration
	// stripe is the bound stripe index appended to per-stripe RPCs, or
	// AnyStripe for the classic unbound transport (the worker's sole stripe).
	stripe int
}

// HTTPTransportOptions tune an HTTPTransport.
type HTTPTransportOptions struct {
	// Client overrides the HTTP client (default: a dedicated client using
	// http.DefaultTransport's connection pool).
	Client *http.Client
	// Timeout bounds each RPC (default DefaultHTTPTimeout).
	Timeout time.Duration
}

// NewHTTPTransport returns a Transport for the worker at baseURL (e.g.
// "http://10.0.0.7:7001"). opts may be nil for defaults.
func NewHTTPTransport(baseURL string, opts *HTTPTransportOptions) *HTTPTransport {
	t := &HTTPTransport{
		base:    strings.TrimRight(baseURL, "/"),
		client:  &http.Client{},
		timeout: DefaultHTTPTimeout,
		stripe:  AnyStripe,
	}
	if opts != nil {
		if opts.Client != nil {
			t.client = opts.Client
		}
		if opts.Timeout > 0 {
			t.timeout = opts.Timeout
		}
	}
	return t
}

// URL returns the worker base URL this transport dials.
func (t *HTTPTransport) URL() string { return t.base }

// ForStripe returns a copy of the transport bound to the stripe with the
// given index: per-stripe RPCs carry an explicit ?stripe=N selector, which a
// multi-stripe fleet member requires. The copy shares the HTTP client (and
// its connection pool) with the receiver.
func (t *HTTPTransport) ForStripe(index int) *HTTPTransport {
	nt := *t
	nt.stripe = index
	return &nt
}

// withStripe appends the bound stripe selector to an RPC path.
func (t *HTTPTransport) withStripe(path string) string {
	if t.stripe == AnyStripe {
		return path
	}
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	return fmt.Sprintf("%s%sstripe=%d", path, sep, t.stripe)
}

// Info implements Transport.
func (t *HTTPTransport) Info(ctx context.Context) (WorkerInfo, error) {
	var info WorkerInfo
	body, err := t.do(ctx, http.MethodGet, t.withStripe("/v1/info"), nil, "")
	if err != nil {
		return info, err
	}
	defer body.Close()
	if err := json.NewDecoder(io.LimitReader(body, 1<<16)).Decode(&info); err != nil {
		return info, fmt.Errorf("distributed: %s: decode info: %w", t.base, err)
	}
	return info, nil
}

// OutSums implements Transport. The wire format implies the length, and the
// coordinator validates it against the declared row count.
func (t *HTTPTransport) OutSums(ctx context.Context) ([]float64, error) {
	body, err := t.do(ctx, http.MethodGet, t.withStripe("/v1/outsums"), nil, "")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return t.readVectorBody(body, "outsums")
}

// Multiply implements Transport.
func (t *HTTPTransport) Multiply(ctx context.Context, dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	req := AppendVector(make([]byte, 0, len(x)*8), x)
	path := t.withStripe(fmt.Sprintf("/v1/multiply?dir=%s&graph=%d", dir, graphSum))
	body, err := t.do(ctx, http.MethodPost, path, req, "application/octet-stream")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return t.readVectorBody(body, "multiply")
}

// readVectorBody reads a length-implied binary vector response to EOF and
// decodes it in place — this runs once per worker per power iteration.
func (t *HTTPTransport) readVectorBody(body io.Reader, what string) ([]float64, error) {
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, &TransientError{Err: fmt.Errorf("distributed: %s: read %s response: %w", t.base, what, err)}
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("distributed: %s: %s response is %d bytes, not a float64 array", t.base, what, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

// SendStripe implements StripeSender by POSTing the binary stripe codec to
// the worker's install endpoint.
func (t *HTTPTransport) SendStripe(ctx context.Context, s *Stripe) error {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return err
	}
	body, err := t.do(ctx, http.MethodPost, "/v1/stripe", buf.Bytes(), "application/octet-stream")
	if err != nil {
		return err
	}
	return body.Close()
}

// RetagStripe implements StripeRetagger by POSTing to the worker's retag
// endpoint. The worker answers 409 on a content mismatch, which surfaces as a
// non-transient error so the caller falls back to shipping the full stripe.
func (t *HTTPTransport) RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error {
	path := t.withStripe(fmt.Sprintf("/v1/stripe/retag?graph=%d&epoch=%d&content=%d", graphSum, epoch, content))
	body, err := t.do(ctx, http.MethodPost, path, nil, "")
	if err != nil {
		return err
	}
	return body.Close()
}

// RemoveStripe implements StripeRemover by DELETEing the worker's stripe
// endpoint; the bound stripe selector names which stripe to drop.
func (t *HTTPTransport) RemoveStripe(ctx context.Context) error {
	body, err := t.do(ctx, http.MethodDelete, t.withStripe("/v1/stripe"), nil, "")
	if err != nil {
		return err
	}
	return body.Close()
}

// Close implements Transport.
func (t *HTTPTransport) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// do performs one HTTP RPC and classifies failures. The returned ReadCloser
// is the response body of a 200 response; the caller must close it.
func (t *HTTPTransport) do(ctx context.Context, method, path string, payload []byte, contentType string) (io.ReadCloser, error) {
	ctx, cancel := context.WithTimeout(ctx, t.timeout)
	// cancel must outlive the returned body: tie it to Close.
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, reqBody)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("distributed: %s: %w", t.base, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		// Read the cancellation state before cancel() below taints it: a call
		// aborted by the caller must not be retried, while connection
		// failures and per-RPC timeouts are transient.
		aborted := ctx.Err() != nil && context.Cause(ctx) == context.Canceled
		cancel()
		if aborted {
			return nil, err
		}
		return nil, &TransientError{Err: fmt.Errorf("distributed: %s: %w", t.base, err)}
	}
	if resp.StatusCode != http.StatusOK {
		msg := readWorkerError(resp.Body)
		resp.Body.Close()
		cancel()
		err := fmt.Errorf("distributed: %s: %s: %s", t.base, resp.Status, msg)
		if resp.StatusCode >= 500 {
			return nil, &TransientError{Err: err}
		}
		return nil, err
	}
	return &cancelingBody{ReadCloser: resp.Body, cancel: cancel}, nil
}

// cancelingBody releases the per-RPC timeout context when the response body
// is closed.
type cancelingBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelingBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// readWorkerError extracts the {"error": ...} message of a failed response,
// falling back to the raw body.
func readWorkerError(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<12))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &payload) == nil && payload.Error != "" {
		return payload.Error
	}
	return strings.TrimSpace(string(raw))
}
