package distributed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"roundtriprank/internal/walk"
)

// Coordinator drives the distributed exact solve: it owns one Transport per
// stripe, fans the per-iteration gather out to every worker in parallel,
// retries transient worker failures (multiply calls are idempotent), and
// merges the returned partial vectors back into the global iteration state.
//
// The arithmetic mirrors the in-process CSR kernels operation for operation —
// the same per-row reduction order, the same serial dangling-mass collection
// — so FRank and TRank return bit-identical vectors to walk.FRank/walk.TRank
// on the unstriped graph, for any number of workers. That is what lets the
// Engine route a query through the cluster and still satisfy the exact
// top-K contract.
type Coordinator struct {
	ts     []Transport
	n      int       // nodes in the full graph
	graph  uint32    // graph fingerprint every worker must agree on
	epoch  uint64    // snapshot version every worker must agree on
	rows   []int     // owned rows per stripe
	outSum []float64 // global out-weight sums, assembled from the stripes
	opts   CoordinatorOptions

	rpcs    atomic.Int64
	retries atomic.Int64
}

// CoordinatorOptions tune fan-out behavior; the zero value gives defaults.
type CoordinatorOptions struct {
	// Retries is how many times a failed transient call is retried on the
	// same worker before the query fails (default 2).
	Retries int
	// RetryBackoff is the base delay before a retry; attempt k waits
	// k*RetryBackoff (default 50ms).
	RetryBackoff time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	return o
}

// NewCoordinator connects to the given workers — transports[i] must serve
// stripe i of len(transports) — validates the topology they advertise, and
// assembles the global out-weight vector. It does not take ownership of the
// transports until it succeeds; on success Close releases them.
func NewCoordinator(ctx context.Context, transports []Transport, opts *CoordinatorOptions) (*Coordinator, error) {
	if len(transports) == 0 {
		return nil, fmt.Errorf("distributed: coordinator needs at least one worker")
	}
	c := &Coordinator{ts: transports, rows: make([]int, len(transports))}
	if opts != nil {
		c.opts = *opts
	}
	c.opts = c.opts.withDefaults()

	infos := make([]WorkerInfo, len(transports))
	err := c.fanOut(ctx, func(ctx context.Context, i int) error {
		info, err := call(c, ctx, i, func(ctx context.Context) (WorkerInfo, error) {
			return c.ts[i].Info(ctx)
		})
		infos[i] = info
		return err
	})
	if err != nil {
		return nil, err
	}
	count := len(transports)
	for i, info := range infos {
		if info.Protocol != ProtocolVersion {
			return nil, fmt.Errorf("distributed: worker %d speaks protocol %d, coordinator speaks %d", i, info.Protocol, ProtocolVersion)
		}
		if info.Index != i || info.Count != count {
			return nil, fmt.Errorf("distributed: worker %d serves stripe %d of %d, want %d of %d",
				i, info.Index, info.Count, i, count)
		}
		if i == 0 {
			c.n = info.NumNodes
			c.graph = info.Graph
			c.epoch = info.Epoch
		} else {
			if info.NumNodes != c.n {
				return nil, fmt.Errorf("distributed: worker %d serves a %d-node graph, worker 0 a %d-node one", i, info.NumNodes, c.n)
			}
			if info.Graph != c.graph {
				return nil, fmt.Errorf("distributed: worker %d was striped from a different graph (fingerprint %08x, worker 0 has %08x)",
					i, info.Graph, c.graph)
			}
			if info.Epoch != c.epoch {
				return nil, fmt.Errorf("distributed: worker %d serves epoch %d, worker 0 epoch %d (redeploy in progress?)",
					i, info.Epoch, c.epoch)
			}
		}
		// Never trust the advertised row count: the merge loops index global
		// vectors with i + r*count, so an oversized value would panic.
		wantRows := 0
		if c.n > i {
			wantRows = (c.n - i + count - 1) / count
		}
		if info.Rows != wantRows {
			return nil, fmt.Errorf("distributed: worker %d advertises %d rows, stripe %d of %d over %d nodes owns %d",
				i, info.Rows, i, count, c.n, wantRows)
		}
		c.rows[i] = info.Rows
	}
	if c.n <= 0 {
		return nil, fmt.Errorf("distributed: workers serve an empty graph")
	}

	c.outSum = make([]float64, c.n)
	sums := make([][]float64, len(transports))
	err = c.fanOut(ctx, func(ctx context.Context, i int) error {
		s, err := call(c, ctx, i, func(ctx context.Context) ([]float64, error) {
			return c.ts[i].OutSums(ctx)
		})
		if err != nil {
			return err
		}
		if len(s) != c.rows[i] {
			return fmt.Errorf("distributed: worker %d returned %d out-sums for %d rows", i, len(s), c.rows[i])
		}
		sums[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range sums {
		for r, v := range s {
			c.outSum[i+r*count] = v
		}
	}
	return c, nil
}

// NumNodes returns the node count of the striped graph.
func (c *Coordinator) NumNodes() int { return c.n }

// GraphFingerprint returns the fingerprint of the graph the cluster serves
// (graph.GraphFingerprint), agreed on by every worker at connect time.
func (c *Coordinator) GraphFingerprint() uint32 { return c.graph }

// Epoch returns the snapshot version of the graph the cluster serves, agreed
// on by every worker at connect time. A coordinator is pinned to its epoch:
// after a redeploy rolls the workers forward, its multiplies fail their
// fingerprint check and the caller connects a fresh coordinator.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Workers returns the number of workers in the cluster.
func (c *Coordinator) Workers() int { return len(c.ts) }

// Stats reports the cumulative worker RPC count and how many of those were
// retries after a transient failure.
func (c *Coordinator) Stats() (rpcs, retries int64) {
	return c.rpcs.Load(), c.retries.Load()
}

// Close closes every worker transport.
func (c *Coordinator) Close() error {
	var firstErr error
	for _, t := range c.ts {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// call runs one idempotent worker RPC with the coordinator's retry policy:
// transient failures are retried with linear backoff, everything else (and
// context cancellation) fails immediately.
func call[T any](c *Coordinator, ctx context.Context, i int, f func(ctx context.Context) (T, error)) (T, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			case <-time.After(time.Duration(attempt) * c.opts.RetryBackoff):
			}
		}
		c.rpcs.Add(1)
		out, err := f(ctx)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	var zero T
	return zero, fmt.Errorf("distributed: worker %d: %w", i, lastErr)
}

// fanOut runs fn(i) for every worker concurrently; the first failure cancels
// the rest. The reported error is the root cause: a sibling call that died
// of the fan-out's own cancellation is only blamed when nothing else failed.
func (c *Coordinator) fanOut(ctx context.Context, fn func(ctx context.Context, i int) error) error {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(c.ts))
	var wg sync.WaitGroup
	for i := range c.ts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(fctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return firstErr
}

// multiply fans one gather out to every worker and merges the partial
// vectors into next by the round-robin assignment. partials is reused across
// iterations to avoid re-allocating.
func (c *Coordinator) multiply(ctx context.Context, dir Direction, x []float64, partials [][]float64) error {
	err := c.fanOut(ctx, func(ctx context.Context, i int) error {
		out, err := call(c, ctx, i, func(ctx context.Context) ([]float64, error) {
			return c.ts[i].Multiply(ctx, dir, c.graph, x)
		})
		if err != nil {
			return err
		}
		if len(out) != c.rows[i] {
			return fmt.Errorf("distributed: worker %d returned %d entries for %d rows", i, len(out), c.rows[i])
		}
		partials[i] = out
		return nil
	})
	return err
}

// restartVector scatters the normalized query onto a dense vector.
func (c *Coordinator) restartVector(q walk.Query) ([]float64, error) {
	nq, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	restart := make([]float64, c.n)
	for i, v := range nq.Nodes {
		if int(v) < 0 || int(v) >= c.n {
			return nil, fmt.Errorf("distributed: query node %d out of range [0,%d)", v, c.n)
		}
		restart[v] += nq.Weights[i]
	}
	return restart, nil
}

// FRank computes the exact F-Rank vector of the query across the cluster: the
// distributed form of walk.FRank's pull-style power iteration, bit-identical
// to the in-process solve. Each iteration performs the transition scaling and
// dangling-mass collection locally (they need only the global out-sums) and
// fans the expensive gather out to the workers.
func (c *Coordinator) FRank(ctx context.Context, q walk.Query, p walk.Params) ([]float64, error) {
	ctx = walk.OrBackground(ctx)
	p, err := p.Normalized()
	if err != nil {
		return nil, err
	}
	restart, err := c.restartVector(q)
	if err != nil {
		return nil, err
	}
	n := c.n
	count := len(c.ts)
	cur := make([]float64, n)
	next := make([]float64, n)
	scaled := make([]float64, n)
	partials := make([][]float64, count)
	copy(cur, restart)
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Scale by inverse out-weight and collect dangling mass, serially, in
		// the same order as the local kernel.
		dangling := 0.0
		for u := 0; u < n; u++ {
			if c.outSum[u] > 0 {
				scaled[u] = cur[u] / c.outSum[u]
			} else {
				scaled[u] = 0
				dangling += cur[u]
			}
		}
		dadd := oneMinus * dangling
		if err := c.multiply(ctx, DirIn, scaled, partials); err != nil {
			return nil, err
		}
		for i, part := range partials {
			for r, sum := range part {
				v := i + r*count
				rv := restart[v]
				nv := p.Alpha*rv + oneMinus*sum
				if dadd > 0 && rv > 0 {
					nv += dadd * rv
				}
				next[v] = nv
			}
		}
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

// TRank computes the exact T-Rank vector of the query across the cluster: the
// distributed form of walk.TRank, bit-identical to the in-process solve. The
// workers reduce each owned node's forward row against the current vector;
// the coordinator applies the restart and the per-row 1/outSum normalization.
func (c *Coordinator) TRank(ctx context.Context, q walk.Query, p walk.Params) ([]float64, error) {
	ctx = walk.OrBackground(ctx)
	p, err := p.Normalized()
	if err != nil {
		return nil, err
	}
	restart, err := c.restartVector(q)
	if err != nil {
		return nil, err
	}
	n := c.n
	count := len(c.ts)
	cur := make([]float64, n)
	next := make([]float64, n)
	partials := make([][]float64, count)
	for i := range cur {
		cur[i] = p.Alpha * restart[i]
	}
	oneMinus := 1 - p.Alpha

	for iter := 0; iter < p.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.multiply(ctx, DirOut, cur, partials); err != nil {
			return nil, err
		}
		for i, part := range partials {
			for r, s := range part {
				v := i + r*count
				acc := p.Alpha * restart[v]
				if sum := c.outSum[v]; sum > 0 {
					acc += oneMinus * s / sum
				}
				next[v] = acc
			}
		}
		diff := l1Diff(cur, next)
		cur, next = next, cur
		if diff < p.Tol {
			break
		}
	}
	return cur, nil
}

func l1Diff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
