package distributed

import (
	"context"
	"testing"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

func TestBuildStripeCoversGraph(t *testing.T) {
	toy := testgraphs.NewToy()
	const n = 3
	total := 0
	for i := 0; i < n; i++ {
		s, err := BuildStripe(toy.Graph, i, n)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		total += s.OwnedNodes()
		if s.SizeBytes() <= 0 {
			t.Errorf("stripe size should be positive")
		}
	}
	if total != toy.Graph.NumNodes() {
		t.Errorf("stripes cover %d nodes, want %d", total, toy.Graph.NumNodes())
	}
	if _, err := BuildStripe(toy.Graph, 3, 3); err == nil {
		t.Errorf("out-of-range stripe index should error")
	}
	if _, err := BuildStripe(toy.Graph, 0, 0); err == nil {
		t.Errorf("zero stripe count should error")
	}
}

func TestClusterViewMatchesLocalGraph(t *testing.T) {
	toy := testgraphs.NewToy()
	cluster, err := StartCluster(toy.Graph, 3)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cluster.Close()
	ap := cluster.AP

	if ap.NumNodes() != toy.Graph.NumNodes() {
		t.Fatalf("NumNodes mismatch")
	}
	for v := 0; v < toy.Graph.NumNodes(); v++ {
		node := graph.NodeID(v)
		if ap.OutDegree(node) != toy.Graph.OutDegree(node) || ap.InDegree(node) != toy.Graph.InDegree(node) {
			t.Errorf("degree mismatch at %d", v)
		}
		if ap.OutWeightSum(node) != toy.Graph.OutWeightSum(node) {
			t.Errorf("out weight sum mismatch at %d", v)
		}
		if ap.InWeightSum(node) != toy.Graph.InWeightSum(node) {
			t.Errorf("in weight sum mismatch at %d", v)
		}
		localEdges := map[graph.NodeID]float64{}
		toy.Graph.EachOut(node, func(to graph.NodeID, w float64) bool {
			localEdges[to] = w
			return true
		})
		remote := map[graph.NodeID]float64{}
		ap.EachOut(node, func(to graph.NodeID, w float64) bool {
			remote[to] = w
			return true
		})
		if len(localEdges) != len(remote) {
			t.Errorf("out edge count mismatch at %d", v)
		}
		for to, w := range localEdges {
			if remote[to] != w {
				t.Errorf("edge weight mismatch %d->%d", v, to)
			}
		}
	}
	if ap.ActiveNodes() != toy.Graph.NumNodes() {
		t.Errorf("after touching every node the active set should cover the graph")
	}
	if ap.ActiveSetBytes() <= 0 || ap.Requests() == 0 {
		t.Errorf("active set accounting broken")
	}
}

func TestDistributedTopKMatchesSingleMachine(t *testing.T) {
	cfg := datasets.SmallBibNetConfig()
	cfg.Papers = 150
	cfg.Authors = 80
	net, err := datasets.GenerateBibNet(cfg)
	if err != nil {
		t.Fatalf("GenerateBibNet: %v", err)
	}
	g := net.Graph
	cluster, err := StartCluster(g, 4)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cluster.Close()

	opt := topk.Options{K: 5, Epsilon: 0.01, Alpha: walk.DefaultAlpha, Beta: 0.5}
	for _, q := range []graph.NodeID{net.Papers[0], net.Papers[37]} {
		local, err := topk.TopK(context.Background(), g, walk.SingleNode(q), opt)
		if err != nil {
			t.Fatalf("local TopK: %v", err)
		}
		remote, err := topk.TopK(context.Background(), cluster.AP, walk.SingleNode(q), opt)
		if err != nil {
			t.Fatalf("distributed TopK: %v", err)
		}
		if len(local.TopK) != len(remote.TopK) {
			t.Fatalf("result size mismatch: %d vs %d", len(local.TopK), len(remote.TopK))
		}
		for i := range local.TopK {
			if local.TopK[i].Node != remote.TopK[i].Node {
				t.Errorf("query %d rank %d: local %d vs distributed %d",
					q, i, local.TopK[i].Node, remote.TopK[i].Node)
			}
		}
	}
	// The active set must be a small fraction of the graph (the Sect. V-B
	// observation that motivates the architecture).
	if cluster.AP.ActiveNodes() >= g.NumNodes() {
		t.Errorf("active set should be a strict subset of the graph")
	}
}

func TestAPValidation(t *testing.T) {
	if _, err := NewAP(0, []string{"127.0.0.1:1"}); err == nil {
		t.Errorf("zero nodes should error")
	}
	if _, err := NewAP(10, nil); err == nil {
		t.Errorf("no GP addresses should error")
	}
	if _, err := NewAP(10, []string{"127.0.0.1:1"}); err == nil {
		t.Errorf("unreachable GP should error")
	}
	if _, err := StartCluster(testgraphs.NewToy().Graph, 0); err == nil {
		t.Errorf("zero GPs should error")
	}
}

func TestGPWrongStripeRequest(t *testing.T) {
	toy := testgraphs.NewToy()
	stripe, err := BuildStripe(toy.Graph, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	gp, err := ServeGP("127.0.0.1:0", stripe)
	if err != nil {
		t.Fatalf("ServeGP: %v", err)
	}
	defer gp.Close()
	ap, err := NewAP(toy.Graph.NumNodes(), []string{gp.Addr()})
	if err != nil {
		t.Fatalf("NewAP: %v", err)
	}
	defer ap.Close()
	// Node 1 belongs to stripe 1 of 2, which this single-GP AP wrongly maps to
	// the only connection; the GP must reject it and fetch must surface the
	// error.
	if _, err := ap.fetch(graph.NodeID(1)); err == nil {
		t.Errorf("fetching a node outside the stripe should error")
	}
}
