// Package distributed implements serving a round-robin-striped graph from
// multiple processes. It has two cooperating topologies.
//
// # Coordinator/worker (exact solves)
//
// The coordinator/worker subsystem executes exact solves across the cluster:
// each Worker holds one Stripe (compact CSR slices of the owned rows,
// loadable from the binary codec in internal/graph) and serves stateless
// per-iteration gather RPCs; the Coordinator fans each power iteration out
// over a Transport per worker — in-process Loopback or HTTPTransport (the
// cmd/gpserver wire protocol) — retries transient failures, and merges the
// partial vectors. The arithmetic mirrors the in-process CSR kernels exactly,
// so distributed F-Rank/T-Rank vectors are bit-identical to local ones.
//
// Stripes are immutable snapshots identified by the source graph's
// epoch-stamped fingerprint, which Multiply pins per call: when a commit
// rolls the graph to a new epoch, stale coordinators fail loudly instead of
// mixing snapshots. A fleet follows a commit via the stripe-install endpoint
// for changed stripes and the cheap retag RPC (StripeRetagger) for stripes
// whose content the commit did not touch.
//
// # AP/GP (online search)
//
// The AP/GP pair reproduces the paper's architecture of Sect. V-B for the
// online search: Graph Processors answer adjacency requests for their stripe
// over TCP while the Active Processor runs 2SBound and assembles only the
// active set — the nodes and edges the query actually touches — in local
// memory, exposed as a graph.View so the same 2SBound implementation runs
// unchanged on one machine or a cluster.
package distributed
