// Replica-aware transport: the failover layer between the coordinator (or the
// rowserve session) and an R-way replicated stripe. A ReplicaSet presents one
// stripe's replica group as a single Transport/RowFetcher, so everything
// above it — coordinator fan-out, retry accounting, the online row cache —
// keeps its one-transport-per-stripe worldview while calls transparently fail
// over between members.
package distributed

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"roundtriprank/internal/graph"
)

// ReplicaSet is a Transport (and RowFetcher, StripeSender, StripeRetagger)
// that multiplexes one stripe's RPCs over its replicas. Calls start at the
// preferred replica and advance to the next on transient error — permanent
// errors (protocol violations, 4xx) return immediately, since every replica
// would answer the same. A successful failover promotes the answering replica
// to preferred, so a dead member costs one timeout once, not once per call.
//
// The replica list is swappable at runtime (fleet reconciliation calls
// SetReplicas as placement moves stripes between members); in-flight calls
// finish on the list they started with. All methods are safe for concurrent
// use.
type ReplicaSet struct {
	stripe     int
	replicas   atomic.Pointer[[]Transport]
	preferred  atomic.Int64
	failovers  atomic.Int64
	hedges     atomic.Int64
	hedgeDelay time.Duration
}

// NewReplicaSet returns a ReplicaSet for the given stripe index over the
// given replica transports (each already bound to the stripe on its member).
// hedgeDelay, when positive, arms hedged row fetches: a FetchRows that has
// not answered within the delay is raced against the next replica and the
// first response wins. Zero disables hedging (multiply RPCs never hedge: the
// offline solver is throughput-bound and a duplicate full-vector stream is
// pure waste).
func NewReplicaSet(stripe int, replicas []Transport, hedgeDelay time.Duration) *ReplicaSet {
	rs := &ReplicaSet{stripe: stripe, hedgeDelay: hedgeDelay}
	rs.SetReplicas(replicas)
	return rs
}

// StripeIndex returns the stripe this replica set serves.
func (rs *ReplicaSet) StripeIndex() int { return rs.stripe }

// SetReplicas atomically replaces the replica list. The old transports are
// not closed — fleet reconciliation owns member connections and members
// usually persist across placement changes.
func (rs *ReplicaSet) SetReplicas(replicas []Transport) {
	list := append([]Transport(nil), replicas...)
	rs.replicas.Store(&list)
	rs.preferred.Store(0)
}

// Replicas returns the current replica list (read-only snapshot).
func (rs *ReplicaSet) Replicas() []Transport { return *rs.replicas.Load() }

// Failovers returns the number of calls that succeeded only after advancing
// past a failed replica — the fleet's "a member was down and we routed
// around it" counter.
func (rs *ReplicaSet) Failovers() int64 { return rs.failovers.Load() }

// Hedges returns the number of row fetches whose hedge fired.
func (rs *ReplicaSet) Hedges() int64 { return rs.hedges.Load() }

// errNoReplicas reports a replica set whose placement has no live member.
var errNoReplicas = errors.New("distributed: replica set has no members")

// replicaCall runs op against the replicas in preference order. Transient
// failures advance to the next replica (recording a failover and promoting
// the survivor); a permanent failure or a success returns immediately. When
// every replica fails transiently the last error is returned — still marked
// transient, so the coordinator's own retry loop re-enters and picks up any
// replica that recovered in the meantime.
func replicaCall[T any](ctx context.Context, rs *ReplicaSet, op func(Transport) (T, error)) (T, error) {
	var zero T
	replicas := *rs.replicas.Load()
	if len(replicas) == 0 {
		return zero, &TransientError{Err: errNoReplicas}
	}
	start := int(rs.preferred.Load()) % len(replicas)
	if start < 0 {
		start = 0
	}
	var lastErr error
	for i := 0; i < len(replicas); i++ {
		idx := (start + i) % len(replicas)
		out, err := op(replicas[idx])
		if err == nil {
			if i > 0 {
				rs.failovers.Add(1)
				rs.preferred.Store(int64(idx))
			}
			return out, nil
		}
		if !IsTransient(err) || ctx.Err() != nil {
			return zero, err
		}
		lastErr = err
	}
	return zero, lastErr
}

// Info implements Transport.
func (rs *ReplicaSet) Info(ctx context.Context) (WorkerInfo, error) {
	return replicaCall(ctx, rs, func(t Transport) (WorkerInfo, error) { return t.Info(ctx) })
}

// OutSums implements Transport.
func (rs *ReplicaSet) OutSums(ctx context.Context) ([]float64, error) {
	return replicaCall(ctx, rs, func(t Transport) ([]float64, error) { return t.OutSums(ctx) })
}

// Multiply implements Transport.
func (rs *ReplicaSet) Multiply(ctx context.Context, dir Direction, graphSum uint32, x []float64) ([]float64, error) {
	return replicaCall(ctx, rs, func(t Transport) ([]float64, error) {
		return t.Multiply(ctx, dir, graphSum, x)
	})
}

// OutDegrees implements RowFetcher.
func (rs *ReplicaSet) OutDegrees(ctx context.Context) ([]int32, error) {
	return replicaCall(ctx, rs, func(t Transport) ([]int32, error) {
		f, ok := t.(RowFetcher)
		if !ok {
			return nil, fmt.Errorf("distributed: replica transport %T serves no rows", t)
		}
		return f.OutDegrees(ctx)
	})
}

// FetchRows implements RowFetcher, with optional hedging: when the preferred
// replica has not answered within the hedge delay, the same fetch is issued
// to the next replica and the first response wins. Row fetches sit on the
// online query's latency path and are small, so the duplicate work is cheap
// insurance against a slow (not yet dead) member. Without hedging (or with a
// single replica) the fetch takes the plain failover path.
func (rs *ReplicaSet) FetchRows(ctx context.Context, graphSum uint32, nodes []graph.NodeID) (RowBatch, error) {
	fetch := func(t Transport) (RowBatch, error) {
		f, ok := t.(RowFetcher)
		if !ok {
			return RowBatch{}, fmt.Errorf("distributed: replica transport %T serves no rows", t)
		}
		return f.FetchRows(ctx, graphSum, nodes)
	}
	replicas := *rs.replicas.Load()
	if rs.hedgeDelay <= 0 || len(replicas) < 2 {
		return replicaCall(ctx, rs, fetch)
	}

	start := int(rs.preferred.Load()) % len(replicas)
	if start < 0 {
		start = 0
	}
	type result struct {
		batch RowBatch
		err   error
		idx   int
	}
	// Buffered so the loser's send never blocks; both goroutines exit on
	// their own once their RPC returns.
	results := make(chan result, 2)
	launch := func(idx int) {
		go func() {
			b, err := fetch(replicas[idx])
			results <- result{batch: b, err: err, idx: idx}
		}()
	}
	launch(start)
	timer := time.NewTimer(rs.hedgeDelay)
	defer timer.Stop()
	launched, pending := 1, 1
	var lastErr error
	for pending > 0 {
		select {
		case <-timer.C:
			if launched < 2 {
				rs.hedges.Add(1)
				launch((start + 1) % len(replicas))
				launched, pending = 2, pending+1
			}
		case r := <-results:
			pending--
			if r.err == nil {
				if r.idx != start {
					rs.failovers.Add(1)
					rs.preferred.Store(int64(r.idx))
				}
				return r.batch, nil
			}
			if !IsTransient(r.err) || ctx.Err() != nil {
				return RowBatch{}, r.err
			}
			lastErr = r.err
			if launched < 2 {
				// The primary failed before the hedge armed: fail over now.
				launch((start + 1) % len(replicas))
				launched, pending = 2, pending+1
			}
		case <-ctx.Done():
			return RowBatch{}, ctx.Err()
		}
	}
	// Both replicas failed transiently; walk any remaining replicas serially.
	for i := 2; i < len(replicas); i++ {
		b, err := fetch(replicas[(start+i)%len(replicas)])
		if err == nil {
			rs.failovers.Add(1)
			rs.preferred.Store(int64((start + i) % len(replicas)))
			return b, nil
		}
		if !IsTransient(err) || ctx.Err() != nil {
			return RowBatch{}, err
		}
		lastErr = err
	}
	return RowBatch{}, lastErr
}

// SendStripe implements StripeSender delta-aware across the replica group:
// each member that already serves the stripe's exact payload is retagged (or
// left alone when identity matches too); only members missing the payload
// get the full ship. This is what keeps rebalance cost proportional to the
// placement delta even with R-way replication.
func (rs *ReplicaSet) SendStripe(ctx context.Context, s *Stripe) error {
	replicas := *rs.replicas.Load()
	if len(replicas) == 0 {
		return &TransientError{Err: errNoReplicas}
	}
	var firstErr error
	for _, t := range replicas {
		if _, err := EnsureStripe(ctx, t, s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DeployAction is what EnsureStripe had to do to converge one member.
type DeployAction int

const (
	// DeployNone: the member already served the exact stripe identity.
	DeployNone DeployAction = iota
	// DeployRetag: the payload matched, only the graph identity was rebound.
	DeployRetag
	// DeployShip: the full stripe was shipped.
	DeployShip
)

// EnsureStripe installs s on one member with the cheapest sufficient RPC:
// nothing when the member already serves this exact stripe identity, a retag
// when the payload matches but the graph identity moved (an epoch rollover
// that left the stripe's rows untouched, or a rejoining member whose
// retained payload still fingerprint-matches), a full ship otherwise. It is
// the per-member primitive behind both ReplicaSet.SendStripe and fleet
// reconciliation, and what keeps redeploy cost proportional to the delta.
func EnsureStripe(ctx context.Context, t Transport, s *Stripe) (DeployAction, error) {
	sender, ok := t.(StripeSender)
	if !ok {
		return DeployNone, fmt.Errorf("distributed: replica transport %T cannot receive stripes", t)
	}
	if info, err := t.Info(ctx); err == nil && info.Index == s.Index && info.Count == s.Count && info.Content == s.ContentFingerprint() {
		if info.Graph == s.GraphFingerprint() && info.Epoch == s.Epoch() {
			return DeployNone, nil
		}
		if rt, ok := t.(StripeRetagger); ok {
			if err := rt.RetagStripe(ctx, s.GraphFingerprint(), s.Epoch(), s.ContentFingerprint()); err == nil {
				return DeployRetag, nil
			}
		}
	}
	if err := sender.SendStripe(ctx, s); err != nil {
		return DeployShip, err
	}
	return DeployShip, nil
}

// RetagStripe implements StripeRetagger: the rebind must land on every
// replica or the group's epochs diverge, so the first failure aborts and the
// caller falls back to SendStripe (whose delta logic retags the members that
// already took the rebind and ships the rest).
func (rs *ReplicaSet) RetagStripe(ctx context.Context, graphSum uint32, epoch uint64, content uint32) error {
	replicas := *rs.replicas.Load()
	if len(replicas) == 0 {
		return &TransientError{Err: errNoReplicas}
	}
	for _, t := range replicas {
		rt, ok := t.(StripeRetagger)
		if !ok {
			return fmt.Errorf("distributed: replica transport %T cannot retag", t)
		}
		if err := rt.RetagStripe(ctx, graphSum, epoch, content); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Transport, closing every replica transport.
func (rs *ReplicaSet) Close() error {
	var firstErr error
	for _, t := range *rs.replicas.Load() {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
