package distributed

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// loopbackTransports stripes g across n in-process workers.
func loopbackTransports(t testing.TB, g *graph.Graph, n int) []Transport {
	t.Helper()
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		s, err := BuildStripe(g, i, n)
		if err != nil {
			t.Fatalf("BuildStripe(%d,%d): %v", i, n, err)
		}
		ts[i] = NewLoopback(NewWorker(s))
	}
	return ts
}

// httpWorkers stripes g across n httptest servers speaking the worker wire
// protocol, optionally wrapping each handler.
func httpWorkers(t testing.TB, g *graph.Graph, n int, wrap func(i int, h http.Handler) http.Handler) []Transport {
	t.Helper()
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		s, err := BuildStripe(g, i, n)
		if err != nil {
			t.Fatalf("BuildStripe(%d,%d): %v", i, n, err)
		}
		h := NewWorker(s).Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		ts[i] = NewHTTPTransport(srv.URL, nil)
	}
	return ts
}

func coordGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"toy":   testgraphs.NewToy().Graph,
		"line":  testgraphs.Line(9), // has a dangling tail node
		"cycle": testgraphs.Cycle(12),
		"star":  testgraphs.Star(7),
	}
}

// TestCoordinatorBitIdenticalToLocal is the core guarantee of the subsystem:
// distributed F-Rank and T-Rank equal the local kernel output bit for bit,
// for every worker count and over both transports.
func TestCoordinatorBitIdenticalToLocal(t *testing.T) {
	ctx := context.Background()
	p := walk.DefaultParams()
	for name, g := range coordGraphs() {
		for _, workers := range []int{1, 2, 3, 5} {
			for _, mode := range []string{"loopback", "http"} {
				t.Run(name+"/"+mode+"/w"+string(rune('0'+workers)), func(t *testing.T) {
					var ts []Transport
					if mode == "loopback" {
						ts = loopbackTransports(t, g, workers)
					} else {
						if workers > 2 { // keep the HTTP matrix small
							t.Skip("http parity covered at 1-2 workers")
						}
						ts = httpWorkers(t, g, workers, nil)
					}
					c, err := NewCoordinator(ctx, ts, nil)
					if err != nil {
						t.Fatalf("NewCoordinator: %v", err)
					}
					defer c.Close()
					q := walk.SingleNode(graph.NodeID(g.NumNodes() / 2))
					wantF, err := walk.FRank(ctx, g, q, p)
					if err != nil {
						t.Fatalf("local FRank: %v", err)
					}
					gotF, err := c.FRank(ctx, q, p)
					if err != nil {
						t.Fatalf("distributed FRank: %v", err)
					}
					wantT, err := walk.TRank(ctx, g, q, p)
					if err != nil {
						t.Fatalf("local TRank: %v", err)
					}
					gotT, err := c.TRank(ctx, q, p)
					if err != nil {
						t.Fatalf("distributed TRank: %v", err)
					}
					for v := range wantF {
						if gotF[v] != wantF[v] {
							t.Fatalf("F-Rank differs at node %d: %g != %g", v, gotF[v], wantF[v])
						}
						if gotT[v] != wantT[v] {
							t.Fatalf("T-Rank differs at node %d: %g != %g", v, gotT[v], wantT[v])
						}
					}
				})
			}
		}
	}
}

// flakyHandler fails the first `failures` multiply calls with 503, then
// delegates. Multiply is idempotent, so the coordinator must absorb this.
type flakyHandler struct {
	inner    http.Handler
	failures int32
	failed   atomic.Int32
}

func (f *flakyHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/multiply") && f.failed.Add(1) <= f.failures {
		http.Error(rw, `{"error":"transient overload"}`, http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(rw, r)
}

func TestCoordinatorRetriesTransientWorkerFailure(t *testing.T) {
	g := testgraphs.NewToy().Graph
	var flaky *flakyHandler
	ts := httpWorkers(t, g, 2, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		flaky = &flakyHandler{inner: h, failures: 2}
		return flaky
	})
	ctx := context.Background()
	c, err := NewCoordinator(ctx, ts, &CoordinatorOptions{Retries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()

	q := walk.SingleNode(0)
	got, err := c.FRank(ctx, q, walk.DefaultParams())
	if err != nil {
		t.Fatalf("FRank through a flaky worker: %v", err)
	}
	want, err := walk.FRank(ctx, g, q, walk.DefaultParams())
	if err != nil {
		t.Fatalf("local FRank: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("retried solve differs at node %d", v)
		}
	}
	if _, retries := c.Stats(); retries < 2 {
		t.Errorf("expected at least 2 retries, got %d", retries)
	}
}

func TestCoordinatorFailsOnPersistentWorkerError(t *testing.T) {
	g := testgraphs.NewToy().Graph
	ts := httpWorkers(t, g, 2, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return &flakyHandler{inner: h, failures: 1 << 30} // never recovers
	})
	ctx := context.Background()
	c, err := NewCoordinator(ctx, ts, &CoordinatorOptions{Retries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	_, err = c.FRank(ctx, walk.SingleNode(0), walk.DefaultParams())
	if err == nil {
		t.Fatalf("FRank through a dead worker succeeded")
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("error does not identify the failing worker: %v", err)
	}
}

// TestConnectionFailureIsTransient pins the classification of
// connection-level failures: a worker that is down (connection refused) must
// yield a retryable error, while caller cancellation must not.
func TestConnectionFailureIsTransient(t *testing.T) {
	tr := NewHTTPTransport("http://127.0.0.1:1", nil) // nothing listens here
	_, err := tr.Multiply(context.Background(), DirIn, 0, []float64{1})
	if err == nil {
		t.Fatalf("Multiply against a closed port succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("connection refused not classified transient: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = tr.Multiply(ctx, DirIn, 0, []float64{1})
	if err == nil || IsTransient(err) {
		t.Fatalf("caller cancellation classified transient: %v", err)
	}
}

// TestCoordinatorBlamesDeadWorker pins the root-cause error: when one worker
// dies mid-query, the error must identify it, not a sibling whose call was
// merely cancelled by the fan-out.
func TestCoordinatorBlamesDeadWorker(t *testing.T) {
	g := testgraphs.Cycle(20)
	var srv1 *httptest.Server
	ts := make([]Transport, 2)
	for i := 0; i < 2; i++ {
		s, err := BuildStripe(g, i, 2)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		srv := httptest.NewServer(NewWorker(s).Handler())
		t.Cleanup(srv.Close)
		if i == 1 {
			srv1 = srv
		}
		ts[i] = NewHTTPTransport(srv.URL, nil)
	}
	ctx := context.Background()
	c, err := NewCoordinator(ctx, ts, &CoordinatorOptions{Retries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	srv1.Close() // worker 1 goes down before the query

	_, err = c.FRank(ctx, walk.SingleNode(0), walk.DefaultParams())
	if err == nil {
		t.Fatalf("FRank with a dead worker succeeded")
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("error blames the wrong worker: %v", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error reports the sibling cancellation, not the root cause: %v", err)
	}
	if _, retries := c.Stats(); retries < 1 {
		t.Errorf("dead-worker calls were not retried (retries=%d)", retries)
	}
}

func TestCoordinatorRejectsBadTopology(t *testing.T) {
	g := testgraphs.NewToy().Graph
	ctx := context.Background()

	// Stripes installed in the wrong order.
	ts := loopbackTransports(t, g, 2)
	if _, err := NewCoordinator(ctx, []Transport{ts[1], ts[0]}, nil); err == nil {
		t.Errorf("swapped stripes accepted")
	}

	// Worker from a different partition arity.
	s0of3, err := BuildStripe(g, 0, 3)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	ts = loopbackTransports(t, g, 2)
	if _, err := NewCoordinator(ctx, []Transport{NewLoopback(NewWorker(s0of3)), ts[1]}, nil); err == nil {
		t.Errorf("mixed stripe counts accepted")
	}

	// Worker with a different graph (different node count).
	other := testgraphs.Cycle(30)
	s0, err := BuildStripe(other, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	ts = loopbackTransports(t, g, 2)
	if _, err := NewCoordinator(ctx, []Transport{NewLoopback(NewWorker(s0)), ts[1]}, nil); err == nil {
		t.Errorf("mismatched node counts accepted")
	}

	// Worker with a different graph of the SAME node count: only the graph
	// fingerprint can tell them apart, and silently mixing them would return
	// wrong rankings.
	sameSize := testgraphs.Cycle(g.NumNodes())
	s0, err = BuildStripe(sameSize, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	ts = loopbackTransports(t, g, 2)
	_, err = NewCoordinator(ctx, []Transport{NewLoopback(NewWorker(s0)), ts[1]}, nil)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("same-sized different graph accepted (err=%v)", err)
	}

	// Worker advertising a forged row count: the merge loops index global
	// vectors by i + r*count, so this must be rejected, not trusted.
	ts = loopbackTransports(t, g, 2)
	if _, err := NewCoordinator(ctx, []Transport{ts[0], &forgedRows{Transport: ts[1], rows: g.NumNodes() * 3}}, nil); err == nil {
		t.Errorf("forged row count accepted")
	}

	// Empty worker.
	if _, err := NewCoordinator(ctx, []Transport{NewLoopback(NewWorker(nil))}, nil); err == nil {
		t.Errorf("empty worker accepted")
	}
	if _, err := NewCoordinator(ctx, nil, nil); err == nil {
		t.Errorf("zero workers accepted")
	}
}

// TestMultiplyRejectsReplacedStripe pins the mid-lifetime graph-identity
// guarantee: after a coordinator connects, installing a stripe from a
// different graph on a worker must fail subsequent queries loudly instead of
// silently mixing graphs.
func TestMultiplyRejectsReplacedStripe(t *testing.T) {
	g := testgraphs.Cycle(12)
	workers := make([]*Worker, 2)
	ts := make([]Transport, 2)
	for i := 0; i < 2; i++ {
		s, err := BuildStripe(g, i, 2)
		if err != nil {
			t.Fatalf("BuildStripe: %v", err)
		}
		workers[i] = NewWorker(s)
		srv := httptest.NewServer(workers[i].Handler())
		t.Cleanup(srv.Close)
		ts[i] = NewHTTPTransport(srv.URL, nil)
	}
	ctx := context.Background()
	c, err := NewCoordinator(ctx, ts, &CoordinatorOptions{Retries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	if _, err := c.FRank(ctx, walk.SingleNode(0), walk.DefaultParams()); err != nil {
		t.Fatalf("FRank before replacement: %v", err)
	}

	// Same node count, same striping, different adjacency: only the pinned
	// fingerprint can catch this.
	other := testgraphs.Star(g.NumNodes() - 1)
	s1, err := BuildStripe(other, 1, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	workers[1].SetStripe(s1)

	_, err = c.FRank(ctx, walk.SingleNode(0), walk.DefaultParams())
	if err == nil {
		t.Fatalf("FRank through a replaced stripe succeeded")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("replacement not reported as a fingerprint mismatch: %v", err)
	}
	if IsTransient(err) {
		t.Errorf("stripe replacement classified transient (would be retried forever): %v", err)
	}
}

// forgedRows wraps a Transport and lies about the owned row count.
type forgedRows struct {
	Transport
	rows int
}

func (f *forgedRows) Info(ctx context.Context) (WorkerInfo, error) {
	info, err := f.Transport.Info(ctx)
	info.Rows = f.rows
	return info, err
}

func TestCoordinatorHonorsCancellation(t *testing.T) {
	g := testgraphs.Cycle(50)
	ts := loopbackTransports(t, g, 2)
	c, err := NewCoordinator(context.Background(), ts, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FRank(ctx, walk.SingleNode(0), walk.DefaultParams()); err == nil {
		t.Errorf("FRank with a cancelled context succeeded")
	}
}

// TestWorkerReceivesStripeOverHTTP exercises the empty-worker deployment
// mode: a worker starts with no stripe, the coordinator-side transport ships
// one, and the worker then serves it.
func TestWorkerReceivesStripeOverHTTP(t *testing.T) {
	g := testgraphs.NewToy().Graph
	srv := httptest.NewServer(NewWorker(nil).Handler())
	defer srv.Close()
	tr := NewHTTPTransport(srv.URL, nil)
	ctx := context.Background()

	// Empty worker: info must fail with a non-transient error.
	if _, err := tr.Info(ctx); err == nil || IsTransient(err) {
		t.Fatalf("Info on an empty worker: got err=%v, want permanent error", err)
	}

	s, err := BuildStripe(g, 0, 1)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	if err := tr.SendStripe(ctx, s); err != nil {
		t.Fatalf("SendStripe: %v", err)
	}
	info, err := tr.Info(ctx)
	if err != nil {
		t.Fatalf("Info after install: %v", err)
	}
	if info.NumNodes != g.NumNodes() || info.Rows != g.NumNodes() || info.Protocol != ProtocolVersion {
		t.Errorf("unexpected info after install: %+v", info)
	}

	c, err := NewCoordinator(ctx, []Transport{tr}, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	q := walk.SingleNode(0)
	got, err := c.FRank(ctx, q, walk.DefaultParams())
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	want, err := walk.FRank(ctx, g, q, walk.DefaultParams())
	if err != nil {
		t.Fatalf("local FRank: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("shipped-stripe solve differs at node %d", v)
		}
	}
}

// TestWorkerHTTPProtocolErrors pins the wire protocol's failure modes.
func TestWorkerHTTPProtocolErrors(t *testing.T) {
	g := testgraphs.NewToy().Graph
	s, err := BuildStripe(g, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	srv := httptest.NewServer(NewWorker(s).Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %s", resp.Status)
	}
	if resp := get("/v1/info"); resp.StatusCode != http.StatusOK {
		t.Errorf("/v1/info: %s", resp.Status)
	}

	// Wrong vector length must be a 400, not a 5xx (it is not retryable).
	short := AppendVector(nil, make([]float64, 3))
	resp, err := http.Post(srv.URL+"/v1/multiply?dir=in", "application/octet-stream", strings.NewReader(string(short)))
	if err != nil {
		t.Fatalf("POST multiply: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short multiply body: got %s, want 400", resp.Status)
	}

	// Unknown direction.
	full := AppendVector(nil, make([]float64, g.NumNodes()))
	resp, err = http.Post(srv.URL+"/v1/multiply?dir=sideways", "application/octet-stream", strings.NewReader(string(full)))
	if err != nil {
		t.Fatalf("POST multiply: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad direction: got %s, want 400", resp.Status)
	}

	// Corrupt stripe upload.
	resp, err = http.Post(srv.URL+"/v1/stripe", "application/octet-stream", strings.NewReader("not a stripe"))
	if err != nil {
		t.Fatalf("POST stripe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt stripe: got %s, want 400", resp.Status)
	}
}

func TestStripeCodecThroughDistributed(t *testing.T) {
	g := testgraphs.NewToy().Graph
	s, err := BuildStripe(g, 1, 3)
	if err != nil {
		t.Fatalf("BuildStripe: %v", err)
	}
	var buf strings.Builder
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeStripe(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("DecodeStripe: %v", err)
	}
	if got.Index != s.Index || got.Count != s.Count || got.NumNodes != s.NumNodes || got.OwnedNodes() != s.OwnedNodes() {
		t.Errorf("stripe header changed across the codec")
	}
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = float64(i + 1)
	}
	a := make([]float64, s.OwnedNodes())
	b := make([]float64, s.OwnedNodes())
	if err := s.MultiplyIn(x, a); err != nil {
		t.Fatalf("MultiplyIn: %v", err)
	}
	if err := got.MultiplyIn(x, b); err != nil {
		t.Fatalf("decoded MultiplyIn: %v", err)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("decoded stripe multiplies differently at row %d", r)
		}
	}
}
