package baselines

import (
	"math"

	"roundtriprank/internal/graph"
)

// AdamicAdarMeasure is the common-neighbor measure of Adamic & Adar [7]:
// AA(q, v) = Σ_{z ∈ N(q) ∩ N(v)} 1/log(deg(z)), where N is the undirected
// neighborhood (union of in- and out-neighbors) and deg the undirected degree.
// It is a mono-sensed "closeness" baseline in Fig. 5; nodes more than two hops
// from the query all score zero, which is why it trails the random-walk
// measures in the paper.
type AdamicAdarMeasure struct{}

// NewAdamicAdar returns the AdamicAdar baseline.
func NewAdamicAdar() AdamicAdarMeasure { return AdamicAdarMeasure{} }

// Name implements Measure.
func (AdamicAdarMeasure) Name() string { return "AdamicAdar" }

// Score implements Measure.
func (AdamicAdarMeasure) Score(ctx *Context) ([]float64, error) {
	nq, err := ctx.Query.Normalize()
	if err != nil {
		return nil, err
	}
	n := ctx.View.NumNodes()
	out := make([]float64, n)
	for qi, qNode := range nq.Nodes {
		weight := nq.Weights[qi]
		for _, z := range undirectedNeighbors(ctx.View, qNode) {
			zNeighbors := undirectedNeighbors(ctx.View, z)
			deg := float64(len(zNeighbors))
			if deg < 2 {
				deg = 2 // avoid log(1) = 0 for leaves
			}
			credit := weight / math.Log(deg)
			for _, v := range zNeighbors {
				if v == qNode {
					continue
				}
				out[v] += credit
			}
		}
	}
	return out, nil
}

// undirectedNeighbors returns the distinct union of in- and out-neighbors.
func undirectedNeighbors(view graph.View, v graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	add := func(u graph.NodeID, _ float64) bool {
		if u != v && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
		return true
	}
	view.EachOut(v, add)
	view.EachIn(v, add)
	return out
}
