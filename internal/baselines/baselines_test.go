package baselines

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func newToyContext(seed int64) (*testgraphs.Toy, *Context) {
	toy := testgraphs.NewToy()
	ctx := NewContext(toy.Graph, walk.SingleNode(toy.T1))
	ctx.Rand = rand.New(rand.NewSource(seed))
	return toy, ctx
}

func TestMeasureNames(t *testing.T) {
	cases := map[string]Measure{
		"F-Rank/PPR":     NewFRank(),
		"T-Rank":         NewTRank(),
		"RoundTripRank":  NewRoundTripRank(),
		"RoundTripRank+": NewRoundTripRankPlus(0.3),
		"SimRank":        NewSimRank(),
		"AdamicAdar":     NewAdamicAdar(),
		"TCommute":       NewTCommute(10),
		"TCommute+":      NewTCommutePlus(10, 0.3),
		"ObjSqrtInv":     NewObjSqrtInv(0.25),
		"ObjSqrtInv+":    NewObjSqrtInvPlus(0.25, 0.3),
		"Harmonic":       NewHarmonic(),
		"Harmonic+":      NewHarmonicPlus(0.3),
		"Arithmetic":     NewArithmetic(),
		"Arithmetic+":    NewArithmeticPlus(0.3),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func TestFTAndRoundTripMeasuresAgreeWithCore(t *testing.T) {
	toy, ctx := newToyContext(1)
	scores, err := core.Compute(context.Background(), toy.Graph, walk.SingleNode(toy.T1), core.DefaultParams())
	if err != nil {
		t.Fatalf("core.Compute: %v", err)
	}
	fScores, err := NewFRank().Score(ctx)
	if err != nil {
		t.Fatalf("FRank: %v", err)
	}
	tScores, err := NewTRank().Score(ctx)
	if err != nil {
		t.Fatalf("TRank: %v", err)
	}
	rScores, err := NewRoundTripRank().Score(ctx)
	if err != nil {
		t.Fatalf("RoundTripRank: %v", err)
	}
	for v := range fScores {
		if math.Abs(fScores[v]-scores.F[v]) > 1e-9 || math.Abs(tScores[v]-scores.T[v]) > 1e-9 {
			t.Fatalf("measure F/T disagrees with core at node %d", v)
		}
		if math.Abs(rScores[v]-scores.R[v]) > 1e-9 {
			t.Fatalf("measure R disagrees with core at node %d", v)
		}
	}
	// Mutating the returned slice must not corrupt the memoized context state.
	fScores[0] = 42
	again, _ := NewFRank().Score(ctx)
	if again[0] == 42 {
		t.Errorf("Score should return a copy of the memoized vector")
	}
}

func TestRoundTripRankPlusBetaValidation(t *testing.T) {
	_, ctx := newToyContext(1)
	if _, err := NewRoundTripRankPlus(1.5).Score(ctx); err == nil {
		t.Errorf("invalid beta should error")
	}
}

func TestHarmonicAndArithmetic(t *testing.T) {
	toy, ctx := newToyContext(1)
	f, _ := ctx.F()
	tr, _ := ctx.T()
	h, err := NewHarmonic().Score(ctx)
	if err != nil {
		t.Fatalf("Harmonic: %v", err)
	}
	a, err := NewArithmetic().Score(ctx)
	if err != nil {
		t.Fatalf("Arithmetic: %v", err)
	}
	for v := range h {
		if f[v] > 0 && tr[v] > 0 {
			wantH := 2 * f[v] * tr[v] / (f[v] + tr[v])
			if math.Abs(h[v]-wantH) > 1e-9 {
				t.Errorf("harmonic at %d = %g, want %g", v, h[v], wantH)
			}
		} else if h[v] != 0 {
			t.Errorf("harmonic with a zero component should be zero at %d", v)
		}
		wantA := (f[v] + tr[v]) / 2
		if math.Abs(a[v]-wantA) > 1e-9 {
			t.Errorf("arithmetic at %d = %g, want %g", v, a[v], wantA)
		}
	}
	// Weighted variants at beta=0 reduce to F-Rank.
	h0, _ := NewHarmonicPlus(0).Score(ctx)
	a0, _ := NewArithmeticPlus(0).Score(ctx)
	for v := range h0 {
		if f[v] > 0 && tr[v] > 0 && math.Abs(h0[v]-f[v]) > 1e-9 {
			t.Errorf("Harmonic+ at beta=0 should equal F-Rank at %d", v)
		}
		if math.Abs(a0[v]-f[v]) > 1e-9 {
			t.Errorf("Arithmetic+ at beta=0 should equal F-Rank at %d", v)
		}
	}
	_ = toy
}

func TestObjSqrtInv(t *testing.T) {
	toy, ctx := newToyContext(1)
	scores, err := NewObjSqrtInv(0.25).Score(ctx)
	if err != nil {
		t.Fatalf("ObjSqrtInv: %v", err)
	}
	f, _ := ctx.F()
	global, err := walk.GlobalPageRank(context.Background(), toy.Graph, 0.25, 0, 0)
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	for v := range scores {
		if f[v] <= 0 {
			if scores[v] != 0 {
				t.Errorf("unreachable node %d should score 0", v)
			}
			continue
		}
		want := f[v] / math.Sqrt(global[v])
		if math.Abs(scores[v]-want) > 1e-6*(1+want) {
			t.Errorf("ObjSqrtInv at %d = %g, want %g", v, scores[v], want)
		}
	}
	if _, err := NewObjSqrtInv(0).Score(ctx); err == nil {
		t.Errorf("invalid damping should error")
	}
	// Supplying a precomputed global PageRank short-circuits the computation.
	ctx2 := NewContext(toy.Graph, walk.SingleNode(toy.T1))
	ctx2.GlobalPR = global
	scores2, err := NewObjSqrtInv(0.25).Score(ctx2)
	if err != nil {
		t.Fatalf("ObjSqrtInv with provided PR: %v", err)
	}
	for v := range scores {
		if math.Abs(scores[v]-scores2[v]) > 1e-9 {
			t.Errorf("provided global PR changed scores at %d", v)
		}
	}
}

func TestAdamicAdar(t *testing.T) {
	toy, ctx := newToyContext(1)
	scores, err := NewAdamicAdar().Score(ctx)
	if err != nil {
		t.Fatalf("AdamicAdar: %v", err)
	}
	// v2's common neighbors with t1 are p3, p4 (degree 2 each); same for v1
	// via p1, p2; v3 shares only p5.
	wantV2 := 2 / math.Log(2)
	if math.Abs(scores[toy.V2]-wantV2) > 1e-9 {
		t.Errorf("AA(v2) = %g, want %g", scores[toy.V2], wantV2)
	}
	if math.Abs(scores[toy.V1]-scores[toy.V2]) > 1e-9 {
		t.Errorf("AA(v1) should equal AA(v2)")
	}
	if !(scores[toy.V3] < scores[toy.V2]) {
		t.Errorf("AA(v3) should be smaller than AA(v2)")
	}
	// Nodes beyond two hops score zero (e.g. t2 shares no neighbor with t1).
	if scores[toy.T2] != 0 {
		t.Errorf("AA(t2) = %g, want 0", scores[toy.T2])
	}
}

func TestTCommute(t *testing.T) {
	toy, ctx := newToyContext(7)
	m := NewTCommute(10)
	m.Samples = 2000
	scores, err := m.Score(ctx)
	if err != nil {
		t.Fatalf("TCommute: %v", err)
	}
	// The query itself has commute time 0, hence the maximum score 1.
	if math.Abs(scores[toy.T1]-1) > 1e-9 {
		t.Errorf("score(q) = %g, want 1", scores[toy.T1])
	}
	// Venues with on-topic papers should be closer than the off-topic term t2.
	if !(scores[toy.V2] > scores[toy.T2]) {
		t.Errorf("v2 (%g) should be closer than t2 (%g)", scores[toy.V2], scores[toy.T2])
	}
	for v, s := range scores {
		if s < -1e-9 || s > 1+1e-9 {
			t.Errorf("score out of [0,1] at %d: %g", v, s)
		}
	}
	if _, err := NewTCommute(0).Score(ctx); err == nil {
		t.Errorf("zero horizon should error")
	}
	bad := NewTCommute(10)
	bad.Samples = 0
	if _, err := bad.Score(ctx); err == nil {
		t.Errorf("zero samples should error")
	}
}

func TestTCommuteHittingTimeExactOnCycle(t *testing.T) {
	// On a directed 3-cycle with query node 0, the exact truncated hitting
	// times to the query with T = 10 are h(1)=2, h(2)=1.
	g := testgraphs.Cycle(3)
	ctx := NewContext(g, walk.SingleNode(0))
	ctx.Rand = rand.New(rand.NewSource(3))
	m := NewTCommute(10)
	m.Samples = 4000
	m.Beta = 1 // score from the exact DP side only
	scores, err := m.Score(ctx)
	if err != nil {
		t.Fatalf("TCommute: %v", err)
	}
	want1 := 1 - 2.0/10
	want2 := 1 - 1.0/10
	if math.Abs(scores[1]-want1) > 1e-9 || math.Abs(scores[2]-want2) > 1e-9 {
		t.Errorf("cycle hitting scores = %g, %g; want %g, %g", scores[1], scores[2], want1, want2)
	}
}

func TestSimRankMonteCarloAgainstExact(t *testing.T) {
	toy, _ := newToyContext(1)
	exact, err := ExactSimRank(toy.Graph, 0.85, 15)
	if err != nil {
		t.Fatalf("ExactSimRank: %v", err)
	}
	ctx := NewContext(toy.Graph, walk.SingleNode(toy.T1))
	ctx.Rand = rand.New(rand.NewSource(11))
	m := NewSimRank()
	m.Samples = 4000
	m.Depth = 8
	scores, err := m.Score(ctx)
	if err != nil {
		t.Fatalf("SimRank: %v", err)
	}
	// The Monte-Carlo estimator should be within a few percent of the exact
	// fixed point for the venue nodes (all edges have weight 1, so weighted
	// backward steps equal the uniform steps assumed by SimRank).
	for _, v := range []graph.NodeID{toy.V1, toy.V2, toy.V3, toy.P[0]} {
		if math.Abs(scores[v]-exact[toy.T1][v]) > 0.05 {
			t.Errorf("SimRank MC at node %d = %.4f, exact %.4f", v, scores[v], exact[toy.T1][v])
		}
	}
	if scores[toy.T1] != 1 {
		t.Errorf("s(q,q) should be 1, got %g", scores[toy.T1])
	}
}

func TestSimRankValidation(t *testing.T) {
	_, ctx := newToyContext(1)
	if _, err := (SimRankMeasure{C: 1.5, Samples: 10, Depth: 3}).Score(ctx); err == nil {
		t.Errorf("invalid C should error")
	}
	if _, err := (SimRankMeasure{C: 0.8, Samples: 0, Depth: 3}).Score(ctx); err == nil {
		t.Errorf("zero samples should error")
	}
	if _, err := ExactSimRank(testgraphs.Cycle(3), 0, 5); err == nil {
		t.Errorf("ExactSimRank invalid C should error")
	}
}

func TestExactSimRankProperties(t *testing.T) {
	g := testgraphs.NewToy().Graph
	s, err := ExactSimRank(g, 0.85, 12)
	if err != nil {
		t.Fatalf("ExactSimRank: %v", err)
	}
	n := g.NumNodes()
	for a := 0; a < n; a++ {
		if s[a][a] != 1 {
			t.Errorf("s(%d,%d) = %g, want 1", a, a, s[a][a])
		}
		for b := 0; b < n; b++ {
			if s[a][b] < -1e-12 || s[a][b] > 1+1e-12 {
				t.Errorf("s(%d,%d) = %g out of range", a, b, s[a][b])
			}
			if math.Abs(s[a][b]-s[b][a]) > 1e-9 {
				t.Errorf("SimRank should be symmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestMeasuresOnMaskedView(t *testing.T) {
	// All measures must work on a MaskedView (the evaluation removes
	// query-to-ground-truth edges).
	toy := testgraphs.NewToy()
	masked := graph.NewMaskedView(toy.Graph, []graph.EdgeKey{
		{From: toy.T1, To: toy.P[0]}, {From: toy.P[0], To: toy.T1},
	})
	ctx := NewContext(masked, walk.SingleNode(toy.T1))
	ctx.Rand = rand.New(rand.NewSource(5))
	measures := []Measure{
		NewFRank(), NewTRank(), NewRoundTripRank(), NewRoundTripRankPlus(0.3),
		NewSimRank(), NewAdamicAdar(), NewTCommute(5), NewObjSqrtInv(0.25),
		NewHarmonic(), NewArithmetic(),
	}
	for _, m := range measures {
		scores, err := m.Score(ctx)
		if err != nil {
			t.Fatalf("%s on masked view: %v", m.Name(), err)
		}
		if len(scores) != toy.Graph.NumNodes() {
			t.Fatalf("%s returned %d scores", m.Name(), len(scores))
		}
	}
}
