// Package baselines implements every proximity measure the paper evaluates:
// the proposed RoundTripRank / RoundTripRank+ (delegating to internal/core),
// the mono-sensed baselines of Fig. 5 (F-Rank/PPR, T-Rank, SimRank,
// AdamicAdar) and the dual-sensed baselines of Fig. 9 / Fig. 10 (truncated
// commute time, ObjSqrtInv, harmonic and arithmetic means, plus their
// β-customized "+" variants).
//
// All measures implement the Measure interface and are evaluated through a
// per-query Context that memoizes the expensive shared quantities (F-Rank,
// T-Rank) so a single query's F/T vectors are reused by every measure that
// needs them — exactly how the paper's evaluation treats them as building
// blocks.
package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Measure scores every node of a graph for a query; higher scores rank first.
type Measure interface {
	// Name is the label used in the paper's tables.
	Name() string
	// Score computes a score for every node in ctx.View.
	Score(ctx *Context) ([]float64, error)
}

// Context carries one query's evaluation state and memoizes quantities shared
// by several measures.
type Context struct {
	// Ctx carries cancellation down into the iterative solvers; nil means
	// context.Background().
	Ctx context.Context
	// View is the graph (possibly an edge-masked view for ground-truth
	// removal).
	View graph.View
	// Query is the query distribution.
	Query walk.Query
	// Walk holds the random-walk parameters (α, tolerance).
	Walk walk.Params
	// GlobalPR optionally carries the global PageRank of the underlying
	// graph, used by ObjSqrtInv; when nil it is computed on demand from View.
	GlobalPR []float64
	// Rand is the random source for sampling-based measures; when nil a
	// deterministic default seed is used.
	Rand *rand.Rand

	f []float64
	t []float64
}

// NewContext builds a Context with the paper's default walk parameters.
func NewContext(view graph.View, q walk.Query) *Context {
	return &Context{View: view, Query: q, Walk: walk.DefaultParams()}
}

// F returns the memoized F-Rank vector for the query.
func (c *Context) F() ([]float64, error) {
	if c.f != nil {
		return c.f, nil
	}
	f, err := walk.FRank(c.Ctx, c.View, c.Query, c.Walk)
	if err != nil {
		return nil, err
	}
	c.f = f
	return f, nil
}

// T returns the memoized T-Rank vector for the query.
func (c *Context) T() ([]float64, error) {
	if c.t != nil {
		return c.t, nil
	}
	t, err := walk.TRank(c.Ctx, c.View, c.Query, c.Walk)
	if err != nil {
		return nil, err
	}
	c.t = t
	return t, nil
}

// globalPR returns the global PageRank, computing it if the caller did not
// supply one.
func (c *Context) globalPR(damping float64) ([]float64, error) {
	if c.GlobalPR != nil {
		return c.GlobalPR, nil
	}
	pr, err := walk.GlobalPageRank(c.Ctx, c.View, damping, 0, 0)
	if err != nil {
		return nil, err
	}
	c.GlobalPR = pr
	return pr, nil
}

// rng returns the sampling source, creating a deterministic one if unset.
func (c *Context) rng() *rand.Rand {
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c.Rand
}

// ---- Random-walk measures built on F-Rank / T-Rank ----

// FRankMeasure is the importance-only baseline (Personalized PageRank),
// labelled "F-Rank/PPR" in Fig. 5.
type FRankMeasure struct{}

// NewFRank returns the F-Rank/PPR baseline.
func NewFRank() FRankMeasure { return FRankMeasure{} }

// Name implements Measure.
func (FRankMeasure) Name() string { return "F-Rank/PPR" }

// Score implements Measure.
func (FRankMeasure) Score(ctx *Context) ([]float64, error) { return cloned(ctx.F()) }

// TRankMeasure is the specificity-only baseline.
type TRankMeasure struct{}

// NewTRank returns the T-Rank baseline.
func NewTRank() TRankMeasure { return TRankMeasure{} }

// Name implements Measure.
func (TRankMeasure) Name() string { return "T-Rank" }

// Score implements Measure.
func (TRankMeasure) Score(ctx *Context) ([]float64, error) { return cloned(ctx.T()) }

// RoundTripRankMeasure is the paper's proposal with a fixed specificity bias:
// β = 0.5 is RoundTripRank, other values are RoundTripRank+.
type RoundTripRankMeasure struct {
	Beta float64
	name string
}

// NewRoundTripRank returns the balanced RoundTripRank measure.
func NewRoundTripRank() RoundTripRankMeasure {
	return RoundTripRankMeasure{Beta: core.BalancedBeta, name: "RoundTripRank"}
}

// NewRoundTripRankPlus returns RoundTripRank+ with the given specificity bias.
func NewRoundTripRankPlus(beta float64) RoundTripRankMeasure {
	return RoundTripRankMeasure{Beta: beta, name: "RoundTripRank+"}
}

// Name implements Measure.
func (m RoundTripRankMeasure) Name() string { return m.name }

// Score implements Measure.
func (m RoundTripRankMeasure) Score(ctx *Context) ([]float64, error) {
	if m.Beta < 0 || m.Beta > 1 {
		return nil, fmt.Errorf("baselines: beta %g out of range", m.Beta)
	}
	f, err := ctx.F()
	if err != nil {
		return nil, err
	}
	t, err := ctx.T()
	if err != nil {
		return nil, err
	}
	return core.Combine(f, t, m.Beta), nil
}

// HarmonicMeasure is the harmonic mean of F-Rank and T-Rank, the fixed
// combination used by Agarwal et al. and Fang & Chang (refs [12], [13]).
// Beta customizes it into the weighted harmonic mean ("Harmonic+").
type HarmonicMeasure struct {
	Beta       float64
	customized bool
}

// NewHarmonic returns the fixed harmonic-mean baseline.
func NewHarmonic() HarmonicMeasure { return HarmonicMeasure{Beta: 0.5} }

// NewHarmonicPlus returns the β-customized harmonic baseline of Fig. 10.
func NewHarmonicPlus(beta float64) HarmonicMeasure {
	return HarmonicMeasure{Beta: beta, customized: true}
}

// Name implements Measure.
func (m HarmonicMeasure) Name() string {
	if m.customized {
		return "Harmonic+"
	}
	return "Harmonic"
}

// Score implements Measure.
func (m HarmonicMeasure) Score(ctx *Context) ([]float64, error) {
	f, err := ctx.F()
	if err != nil {
		return nil, err
	}
	t, err := ctx.T()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f))
	for i := range f {
		if f[i] <= 0 || t[i] <= 0 {
			continue
		}
		out[i] = 1.0 / ((1-m.Beta)/f[i] + m.Beta/t[i])
	}
	return out, nil
}

// ArithmeticMeasure is the arithmetic mean of F-Rank and T-Rank; Beta
// customizes it into the weighted mean ("Arithmetic+").
type ArithmeticMeasure struct {
	Beta       float64
	customized bool
}

// NewArithmetic returns the fixed arithmetic-mean baseline.
func NewArithmetic() ArithmeticMeasure { return ArithmeticMeasure{Beta: 0.5} }

// NewArithmeticPlus returns the β-customized arithmetic baseline of Fig. 10.
func NewArithmeticPlus(beta float64) ArithmeticMeasure {
	return ArithmeticMeasure{Beta: beta, customized: true}
}

// Name implements Measure.
func (m ArithmeticMeasure) Name() string {
	if m.customized {
		return "Arithmetic+"
	}
	return "Arithmetic"
}

// Score implements Measure.
func (m ArithmeticMeasure) Score(ctx *Context) ([]float64, error) {
	f, err := ctx.F()
	if err != nil {
		return nil, err
	}
	t, err := ctx.T()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f))
	for i := range f {
		out[i] = (1-m.Beta)*f[i] + m.Beta*t[i]
	}
	return out, nil
}

// ObjSqrtInvMeasure is the dual-sensed baseline of Hristidis et al. [5]:
// query-specific ObjectRank (realized as F-Rank with damping d) combined with
// the inverse of global ObjectRank (realized as global PageRank). The fixed
// form is ObjectRank/sqrt(global); the "+" form applies weights 1−β and β to
// the two sub-measures in a geometric combination.
type ObjSqrtInvMeasure struct {
	// D is the damping parameter d (the paper uses 0.25, mirroring α).
	D          float64
	Beta       float64
	customized bool
}

// NewObjSqrtInv returns the fixed ObjSqrtInv baseline with damping d.
func NewObjSqrtInv(d float64) ObjSqrtInvMeasure {
	return ObjSqrtInvMeasure{D: d, Beta: 0.5}
}

// NewObjSqrtInvPlus returns the β-customized ObjSqrtInv baseline.
func NewObjSqrtInvPlus(d, beta float64) ObjSqrtInvMeasure {
	return ObjSqrtInvMeasure{D: d, Beta: beta, customized: true}
}

// Name implements Measure.
func (m ObjSqrtInvMeasure) Name() string {
	if m.customized {
		return "ObjSqrtInv+"
	}
	return "ObjSqrtInv"
}

// Score implements Measure.
func (m ObjSqrtInvMeasure) Score(ctx *Context) ([]float64, error) {
	if m.D <= 0 || m.D >= 1 {
		return nil, fmt.Errorf("baselines: ObjSqrtInv damping %g out of range", m.D)
	}
	f, err := ctx.F()
	if err != nil {
		return nil, err
	}
	global, err := ctx.globalPR(m.D)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f))
	for i := range f {
		if f[i] <= 0 || global[i] <= 0 {
			continue
		}
		// Weighted geometric combination of ObjectRank and inverse global
		// ObjectRank with exponents 2(1−β) and β: at β = 0.5 this is exactly
		// ObjectRank/sqrt(global ObjectRank), the published ObjSqrtInv; at
		// β = 0 it is rank-equivalent to ObjectRank alone and at β = 1 to the
		// inverse global ObjectRank alone.
		out[i] = math.Pow(f[i], 2*(1-m.Beta)) * math.Pow(1/global[i], m.Beta)
	}
	return out, nil
}

func cloned(xs []float64, err error) ([]float64, error) {
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	copy(out, xs)
	return out, nil
}
