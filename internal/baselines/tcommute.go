package baselines

import (
	"fmt"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Default truncated-commute-time parameters: T = 10 as recommended by Sarkar &
// Moore and used in the paper, with Monte-Carlo settings for the outbound
// hitting times.
const (
	DefaultCommuteT       = 10
	DefaultCommuteSamples = 400
)

// TCommuteMeasure is the truncated commute time baseline [11], [14]:
// C_T(q, v) = h_T(q, v) + h_T(v, q), where h_T is the truncated hitting time
// (walks that do not hit the target within T steps are counted as T). Smaller
// commute times mean closer nodes, so the returned score is the negated,
// weighted combination; Beta = 0.5 is the fixed baseline of Fig. 9 and other
// values give the customized "TCommute+" of Fig. 10.
//
// h_T(·, q) — hitting the query — is computed exactly with the T-step dynamic
// program over out-edges. h_T(q, ·) — hitting each target from the query —
// would need one dynamic program per target, so it is estimated from sampled
// forward walks (first-visit times), a substitution documented in DESIGN.md.
type TCommuteMeasure struct {
	// T is the truncation horizon.
	T int
	// Samples is the number of forward walks used to estimate h_T(q, ·).
	Samples int
	// Beta weights the two directions: (1−β)·h_T(q,v) + β·h_T(v,q).
	Beta       float64
	customized bool
}

// NewTCommute returns the fixed truncated-commute-time baseline.
func NewTCommute(t int) TCommuteMeasure {
	return TCommuteMeasure{T: t, Samples: DefaultCommuteSamples, Beta: 0.5}
}

// NewTCommutePlus returns the β-customized variant of Fig. 10.
func NewTCommutePlus(t int, beta float64) TCommuteMeasure {
	return TCommuteMeasure{T: t, Samples: DefaultCommuteSamples, Beta: beta, customized: true}
}

// Name implements Measure.
func (m TCommuteMeasure) Name() string {
	if m.customized {
		return "TCommute+"
	}
	return "TCommute"
}

// Score implements Measure.
func (m TCommuteMeasure) Score(ctx *Context) ([]float64, error) {
	if m.T <= 0 {
		return nil, fmt.Errorf("baselines: TCommute horizon must be positive, got %d", m.T)
	}
	if m.Samples <= 0 {
		return nil, fmt.Errorf("baselines: TCommute needs positive sample count")
	}
	nq, err := ctx.Query.Normalize()
	if err != nil {
		return nil, err
	}
	n := ctx.View.NumNodes()

	// Exact truncated hitting time to the query set, h_T(v, Q), by dynamic
	// programming: h^0 = 0 everywhere; h^τ(v) = 0 for v in Q, otherwise
	// 1 + Σ_u M[v][u] h^{τ-1}(u).
	inQuery := make([]bool, n)
	for _, qv := range nq.Nodes {
		inQuery[qv] = true
	}
	hToQ := make([]float64, n)
	next := make([]float64, n)
	for step := 0; step < m.T; step++ {
		for v := 0; v < n; v++ {
			if inQuery[v] {
				next[v] = 0
				continue
			}
			outSum := ctx.View.OutWeightSum(graph.NodeID(v))
			if outSum <= 0 {
				// Dangling node: it can never hit the query.
				next[v] = float64(m.T)
				continue
			}
			exp := 0.0
			ctx.View.EachOut(graph.NodeID(v), func(to graph.NodeID, w float64) bool {
				exp += (w / outSum) * hToQ[to]
				return true
			})
			val := 1 + exp
			if val > float64(m.T) {
				val = float64(m.T)
			}
			next[v] = val
		}
		hToQ, next = next, hToQ
	}

	// Monte-Carlo estimate of h_T(Q, v): sample forward walks of length T from
	// the query distribution and record first-visit times; unvisited targets
	// count as T.
	rng := ctx.rng()
	sampler := walk.NewSampler(ctx.View, rng)
	sumFirstVisit := make([]float64, n)
	for i := range sumFirstVisit {
		sumFirstVisit[i] = float64(m.T) * float64(m.Samples)
	}
	for s := 0; s < m.Samples; s++ {
		start := pickQueryNode(nq, rng.Float64())
		visited := map[graph.NodeID]bool{}
		cur := start
		for step := 1; step <= m.T; step++ {
			nxt, ok := sampler.Step(cur)
			if !ok {
				break
			}
			cur = nxt
			if !visited[cur] {
				visited[cur] = true
				sumFirstVisit[cur] -= float64(m.T) - float64(step)
			}
		}
	}
	hFromQ := make([]float64, n)
	for v := range hFromQ {
		hFromQ[v] = sumFirstVisit[v] / float64(m.Samples)
	}
	for _, qv := range nq.Nodes {
		hFromQ[qv] = 0
	}

	// Combine: smaller commute time = higher score. The score is normalized to
	// [0, 1] by T so it is comparable across graphs.
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		commute := (1-m.Beta)*hFromQ[v] + m.Beta*hToQ[v]
		out[v] = 1 - commute/float64(m.T)
	}
	return out, nil
}
