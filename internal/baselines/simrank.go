package baselines

import (
	"fmt"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Default SimRank parameters: the decay factor recommended by Jeh & Widom and
// used in the paper's experiments, plus Monte-Carlo settings sized for the
// evaluation subgraphs.
const (
	DefaultSimRankC       = 0.85
	DefaultSimRankSamples = 120
	DefaultSimRankDepth   = 6
)

// SimRankMeasure is the structural-context similarity of Jeh & Widom [8], a
// mono-sensed "closeness" baseline in Fig. 5.
//
// The exact all-pairs iteration is quadratic in the number of nodes, which the
// paper itself notes is too expensive beyond small subgraphs; the single-source
// scores needed for ranking are therefore estimated with the first-meeting
// Monte-Carlo interpretation: s(a, b) = E[C^τ] where τ is the first time two
// independent backward random walks from a and b meet. ExactSimRank (below)
// provides the reference implementation used to validate the estimator in
// tests.
type SimRankMeasure struct {
	// C is the decay factor (paper: 0.85).
	C float64
	// Samples is the number of walk pairs per target node.
	Samples int
	// Depth is the walk truncation depth; C^Depth bounds the truncation error.
	Depth int
}

// NewSimRank returns the SimRank baseline with the paper's settings.
func NewSimRank() SimRankMeasure {
	return SimRankMeasure{C: DefaultSimRankC, Samples: DefaultSimRankSamples, Depth: DefaultSimRankDepth}
}

// Name implements Measure.
func (SimRankMeasure) Name() string { return "SimRank" }

// Score implements Measure.
func (m SimRankMeasure) Score(ctx *Context) ([]float64, error) {
	if m.C <= 0 || m.C >= 1 {
		return nil, fmt.Errorf("baselines: SimRank C %g out of range", m.C)
	}
	if m.Samples <= 0 || m.Depth <= 0 {
		return nil, fmt.Errorf("baselines: SimRank needs positive samples and depth")
	}
	nq, err := ctx.Query.Normalize()
	if err != nil {
		return nil, err
	}
	n := ctx.View.NumNodes()
	out := make([]float64, n)
	rng := ctx.rng()
	sampler := walk.NewSampler(ctx.View, rng)

	// Pre-sample the query-side backward walks once per sample index so every
	// target is compared against the same query trajectories (common random
	// numbers reduce variance across targets).
	queryPaths := make([][]graph.NodeID, m.Samples)
	for s := 0; s < m.Samples; s++ {
		start := pickQueryNode(nq, rng.Float64())
		queryPaths[s] = backwardPath(sampler, start, m.Depth)
	}
	powC := make([]float64, m.Depth+1)
	powC[0] = 1
	for i := 1; i <= m.Depth; i++ {
		powC[i] = powC[i-1] * m.C
	}
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		if ctx.Query.Contains(node) {
			out[v] = 1 // s(a, a) = 1
			continue
		}
		total := 0.0
		for s := 0; s < m.Samples; s++ {
			vPath := backwardPath(sampler, node, m.Depth)
			qPath := queryPaths[s]
			limit := len(vPath)
			if len(qPath) < limit {
				limit = len(qPath)
			}
			for step := 1; step < limit; step++ {
				if vPath[step] == qPath[step] {
					total += powC[step]
					break
				}
			}
		}
		out[v] = total / float64(m.Samples)
	}
	return out, nil
}

func pickQueryNode(q walk.Query, u float64) graph.NodeID {
	acc := 0.0
	for i, w := range q.Weights {
		acc += w
		if u <= acc {
			return q.Nodes[i]
		}
	}
	return q.Nodes[len(q.Nodes)-1]
}

// backwardPath samples a backward walk of the given depth starting at v and
// returns the visited nodes (position 0 is v). The walk stops early at nodes
// without in-neighbors.
func backwardPath(s *walk.Sampler, v graph.NodeID, depth int) []graph.NodeID {
	path := make([]graph.NodeID, 1, depth+1)
	path[0] = v
	cur := v
	for i := 0; i < depth; i++ {
		next, ok := s.StepBack(cur)
		if !ok {
			break
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// ExactSimRank computes the full SimRank matrix by the standard fixed-point
// iteration s(a,b) = C/(|In(a)||In(b)|) Σ Σ s(i_a, i_b). It is quadratic in
// memory and intended only for small validation graphs and tests.
func ExactSimRank(view graph.View, c float64, iterations int) ([][]float64, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("baselines: SimRank C %g out of range", c)
	}
	n := view.NumNodes()
	if n > 2000 {
		return nil, fmt.Errorf("baselines: ExactSimRank limited to small graphs, got %d nodes", n)
	}
	if iterations <= 0 {
		iterations = 10
	}
	cur := make([][]float64, n)
	next := make([][]float64, n)
	for i := 0; i < n; i++ {
		cur[i] = make([]float64, n)
		next[i] = make([]float64, n)
		cur[i][i] = 1
	}
	ins := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		view.EachIn(graph.NodeID(v), func(from graph.NodeID, _ float64) bool {
			ins[v] = append(ins[v], from)
			return true
		})
	}
	for iter := 0; iter < iterations; iter++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					next[a][b] = 1
					continue
				}
				if len(ins[a]) == 0 || len(ins[b]) == 0 {
					next[a][b] = 0
					continue
				}
				sum := 0.0
				for _, ia := range ins[a] {
					for _, ib := range ins[b] {
						sum += cur[ia][ib]
					}
				}
				next[a][b] = c * sum / float64(len(ins[a])*len(ins[b]))
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}
