package graph

import "sort"

// Subgraph is an induced subgraph of a parent Graph, together with the mapping
// between parent and subgraph node IDs.
type Subgraph struct {
	// Graph is the induced subgraph with its own dense node IDs.
	Graph *Graph
	// ToParent maps a subgraph node ID to its parent node ID.
	ToParent []NodeID
	// FromParent maps a parent node ID to its subgraph node ID, or NoNode when
	// the parent node is not part of the subgraph.
	FromParent map[NodeID]NodeID
}

// Induced builds the subgraph of g induced by the given parent node set: it
// keeps exactly those nodes, and every edge of g whose endpoints are both
// kept. Duplicate IDs in nodes are ignored. Labels and types are preserved.
func Induced(g *Graph, nodes []NodeID) *Subgraph {
	uniq := make(map[NodeID]bool, len(nodes))
	order := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= g.NumNodes() || uniq[v] {
			continue
		}
		uniq[v] = true
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	b := NewBuilder()
	for t, name := range g.typeNames {
		b.RegisterType(t, name)
	}
	fromParent := make(map[NodeID]NodeID, len(order))
	toParent := make([]NodeID, 0, len(order))
	for _, pv := range order {
		sv := b.AddNode(g.Type(pv), g.Label(pv))
		fromParent[pv] = sv
		toParent = append(toParent, pv)
	}
	for _, pv := range order {
		sv := fromParent[pv]
		g.EachOut(pv, func(to NodeID, w float64) bool {
			if st, ok := fromParent[to]; ok {
				b.MustAddEdge(sv, st, w)
			}
			return true
		})
	}
	return &Subgraph{Graph: b.MustBuild(), ToParent: toParent, FromParent: fromParent}
}

// ExpandHops returns the set of nodes reachable from the seeds within the
// given number of hops, treating edges as undirected (both out- and in-edges
// are followed). The seeds themselves are included.
func ExpandHops(g *Graph, seeds []NodeID, hops int) []NodeID {
	seen := make(map[NodeID]bool, len(seeds))
	frontier := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() || seen[s] {
			continue
		}
		seen[s] = true
		frontier = append(frontier, s)
	}
	for h := 0; h < hops; h++ {
		var next []NodeID
		for _, v := range frontier {
			add := func(u NodeID, _ float64) bool {
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
				return true
			}
			g.EachOut(v, add)
			g.EachIn(v, add)
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LargestStronglyConnectedComponent returns the node IDs of the largest
// strongly connected component of g, using Tarjan's algorithm (iterative).
// Graph proximity with T-Rank is only meaningful within an SCC (Sect. III-B of
// the paper), so dataset generators restrict evaluation graphs to their giant
// SCC or add dummy back-edges.
func LargestStronglyConnectedComponent(g *Graph) []NodeID {
	n := g.NumNodes()
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []NodeID
	var counter int32
	var compCount int32

	type frame struct {
		v    NodeID
		iter int
		outs []NodeID
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		callStack := []frame{newFrame(g, NodeID(start))}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			advanced := false
			for f.iter < len(f.outs) {
				w := f.outs[f.iter]
				f.iter++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, newFrame(g, w))
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// Finish v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == v {
						break
					}
				}
				compCount++
			}
		}
	}

	sizes := make([]int, compCount)
	for v := 0; v < n; v++ {
		sizes[comp[v]]++
	}
	best := int32(0)
	for c := int32(1); c < compCount; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	var out []NodeID
	for v := 0; v < n; v++ {
		if comp[v] == best {
			out = append(out, NodeID(v))
		}
	}
	return out
}

func newFrame(g *Graph, v NodeID) frame2 {
	outs, _ := g.OutNeighbors(v)
	cp := make([]NodeID, len(outs))
	copy(cp, outs)
	return frame2{v: v, outs: cp}
}

// frame2 mirrors the anonymous frame struct used by the iterative Tarjan
// implementation; declared at package scope so newFrame can return it.
type frame2 = struct {
	v    NodeID
	iter int
	outs []NodeID
}
