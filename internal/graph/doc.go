// Package graph provides the typed, directed, weighted graph substrate used by
// all proximity measures in this repository.
//
// A Graph is an immutable compressed-sparse-row (CSR) structure produced by a
// Builder. Nodes carry a small integer type (paper, author, term, venue,
// phrase, URL, ...) and a string label; edges are directed and weighted, and
// an undirected edge is represented by two directed edges. Both out- and
// in-adjacency are materialized so that forward walks (F-Rank), backward walks
// (T-Rank) and border-node expansions are all O(degree).
//
// Random-walk code operates on the View interface rather than on *Graph
// directly, which allows per-query edge masking (ground-truth edge removal in
// the evaluation tasks) without copying the graph. Views that can expose flat
// CSR arrays implement CSRView, the fast path of the parallel walk kernels;
// Compact flattens any other view into one.
//
// # Mutation and epochs
//
// Graphs never mutate in place. A Delta stages a batch of changes against one
// snapshot — node additions, edge upserts, edge removals, node isolations —
// and Commit merges it into a fresh Graph whose Epoch is one higher, with
// adjacency arrays laid out bit-identically to a from-scratch Build of the
// same edges. The Delta's View overlay serves the staged state read-only
// before commit. GraphFingerprint stamps the epoch into the snapshot's
// identity, and the stripe codec (stripeio.go) carries both the graph
// fingerprint and a per-stripe ContentFingerprint, which is what lets a
// worker fleet roll to a new epoch by re-shipping only the stripes a commit
// actually changed.
package graph
