package graph

import (
	"bytes"
	"testing"
)

// fuzzSeedGraphs builds a few valid encoded graphs for the seed corpus so the
// fuzzer starts from well-formed gob streams and mutates from there.
func fuzzSeedGraphs(f *testing.F) {
	f.Helper()
	builders := []func() *Graph{
		func() *Graph {
			b := NewBuilder()
			b.RegisterType(1, "paper")
			p := b.AddNode(1, "p1")
			q := b.AddNode(1, "p2")
			b.MustAddUndirectedEdge(p, q, 2.5)
			return b.MustBuild()
		},
		func() *Graph {
			b := NewBuilder()
			var prev NodeID
			for i := 0; i < 6; i++ {
				cur := b.AddNode(Untyped, "n"+string(rune('a'+i)))
				if i > 0 {
					b.MustAddEdge(prev, cur, float64(i))
				}
				prev = cur
			}
			return b.MustBuild()
		},
		func() *Graph {
			b := NewBuilder()
			b.AddNode(Untyped, "isolated")
			return b.MustBuild()
		},
	}
	for _, build := range builders {
		var buf bytes.Buffer
		if err := Encode(&buf, build()); err != nil {
			f.Fatalf("Encode seed: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
}

// FuzzDecode feeds arbitrary bytes to the graph decoder: it must never panic,
// and any graph it accepts must satisfy the CSR invariants and survive an
// encode/decode round trip.
func FuzzDecode(f *testing.F) {
	fuzzSeedGraphs(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input: gob length prefixes make the cost unbounded")
		}
		g, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph violates CSR invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g2.Label(NodeID(v)) != g.Label(NodeID(v)) || g2.Type(NodeID(v)) != g.Type(NodeID(v)) {
				t.Fatalf("round trip changed node %d metadata", v)
			}
		}
	})
}
