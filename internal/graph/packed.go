package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// This file implements the memory-lean packed CSR representation used by the
// million-node scale experiments: the same adjacency as the flat CSR arrays,
// but with each row's columns delta-encoded as varints and each weight packed
// as a varint of its byte-reversed IEEE bits (weights like 1.0 or 2.5 have
// almost all of their information in the exponent byte, which byte reversal
// moves into the low bits). Rows whose weights are all bit-identical — the
// overwhelmingly common case in unweighted graphs — store the weight once.
//
// Packing is exactly lossless: Pack followed by Unpack reproduces the source
// CSR arrays bit for bit (same columns in the same order, same float64 weight
// bits, same row offsets), which is what lets every solver result on a Packed
// view be pinned bit-identical to the flat representation.

// PackedCSR is one adjacency direction in packed form. Row v occupies
// Data[RowOff[v]:RowOff[v+1]]:
//
//	uvarint  header = degree<<1 | constWeightFlag
//	uvarint  packed weight bits        (only when constWeightFlag == 1, once)
//	repeated degree times:
//	    varint  column delta (zigzag of col − previous col, previous starts 0)
//	    uvarint packed weight bits     (only when constWeightFlag == 0)
//
// Sum caches the total edge weight per row, exactly as CSR.Sum does; the
// bounds frameworks read it on every expansion, so it stays unpacked.
type PackedCSR struct {
	RowOff []int64
	Data   []byte
	Sum    []float64
}

// packWeightBits maps a float64 to the varint-friendly integer written to the
// stream: byte-reversing the IEEE-754 bits moves the sign/exponent byte (the
// only populated byte of round weights) into the low bits.
func packWeightBits(w float64) uint64 {
	return bits.ReverseBytes64(math.Float64bits(w))
}

func unpackWeightBits(u uint64) float64 {
	return math.Float64frombits(bits.ReverseBytes64(u))
}

// Rows returns the number of rows.
func (c *PackedCSR) Rows() int { return len(c.RowOff) - 1 }

// Degree returns the number of entries in row v.
func (c *PackedCSR) Degree(v NodeID) int {
	hdr, _ := binary.Uvarint(c.Data[c.RowOff[v]:c.RowOff[v+1]])
	return int(hdr >> 1)
}

// SizeBytes returns the resident footprint of the packed arrays.
func (c *PackedCSR) SizeBytes() int64 {
	return int64(8*len(c.RowOff)) + int64(len(c.Data)) + int64(8*len(c.Sum))
}

// PackedIter streams one row of a PackedCSR without allocating. Obtain one
// with Iter; it is a value, so a kernel's inner loop keeps it on the stack.
type PackedIter struct {
	data   []byte
	rem    int
	prev   int64
	cw     float64
	constW bool
}

// Iter returns an iterator over row v. The data must have been produced by
// packRow (or validated by validatePackedCSR): Next performs no bounds or
// varint-error checking.
func (c *PackedCSR) Iter(v NodeID) PackedIter {
	b := c.Data[c.RowOff[v]:c.RowOff[v+1]]
	hdr, n := binary.Uvarint(b)
	b = b[n:]
	it := PackedIter{data: b, rem: int(hdr >> 1)}
	if hdr&1 == 1 && it.rem > 0 {
		wb, n := binary.Uvarint(b)
		it.data = b[n:]
		it.cw = unpackWeightBits(wb)
		it.constW = true
	}
	return it
}

// Next returns the next column and weight of the row, or ok == false when the
// row is exhausted.
func (it *PackedIter) Next() (col NodeID, w float64, ok bool) {
	if it.rem == 0 {
		return 0, 0, false
	}
	it.rem--
	d, n := binary.Varint(it.data)
	it.data = it.data[n:]
	it.prev += d
	w = it.cw
	if !it.constW {
		u, n := binary.Uvarint(it.data)
		it.data = it.data[n:]
		w = unpackWeightBits(u)
	}
	return NodeID(it.prev), w, true
}

// AppendRow decodes row v, appending its columns and weights to the caller's
// buffers (pass them resliced to length zero to reuse) and returning the
// extended slices.
func (c *PackedCSR) AppendRow(v NodeID, cols []NodeID, weights []float64) ([]NodeID, []float64) {
	it := c.Iter(v)
	for {
		col, w, ok := it.Next()
		if !ok {
			return cols, weights
		}
		cols = append(cols, col)
		weights = append(weights, w)
	}
}

// packCSR packs one CSR direction. The CSR must be compact: RowPtr[0] == 0 and
// cumulative (true for every CSR the Builder, Commit, Compact or the stripe
// cutter produce). Sum is aliased, not copied — both representations cache the
// identical row sums.
func packCSR(c CSR) PackedCSR {
	rows := len(c.RowPtr) - 1
	p := PackedCSR{RowOff: make([]int64, rows+1), Sum: c.Sum}
	// Varint columns are never larger than 5 bytes for int32 deltas; start at
	// roughly 2 bytes per edge plus row headers and grow as needed.
	p.Data = make([]byte, 0, 2*len(c.Col)+2*rows)
	for v := 0; v < rows; v++ {
		lo, hi := c.RowPtr[v], c.RowPtr[v+1]
		p.Data = packRow(p.Data, c.Col[lo:hi], c.Weight[lo:hi])
		p.RowOff[v+1] = int64(len(p.Data))
	}
	// Shrink a grossly over-sized buffer so SizeBytes reports honest numbers.
	if cap(p.Data)-len(p.Data) > len(p.Data)/4+64 {
		p.Data = append(make([]byte, 0, len(p.Data)), p.Data...)
	}
	return p
}

// packRow appends one row's encoding to buf.
func packRow(buf []byte, cols []NodeID, weights []float64) []byte {
	deg := len(cols)
	constW := deg > 0
	if constW {
		w0 := math.Float64bits(weights[0])
		for _, w := range weights[1:] {
			if math.Float64bits(w) != w0 {
				constW = false
				break
			}
		}
	}
	hdr := uint64(deg) << 1
	if constW {
		hdr |= 1
	}
	buf = binary.AppendUvarint(buf, hdr)
	if constW {
		buf = binary.AppendUvarint(buf, packWeightBits(weights[0]))
	}
	prev := int64(0)
	for i, col := range cols {
		buf = binary.AppendVarint(buf, int64(col)-prev)
		prev = int64(col)
		if !constW {
			buf = binary.AppendUvarint(buf, packWeightBits(weights[i]))
		}
	}
	return buf
}

// unpackCSR reconstructs the flat CSR arrays bit-identically to what packCSR
// consumed. It assumes the packed data was validated (or produced in-process).
func (c *PackedCSR) unpackCSR() CSR {
	rows := c.Rows()
	out := CSR{RowPtr: make([]int64, rows+1), Sum: c.Sum}
	total := 0
	for v := 0; v < rows; v++ {
		total += c.Degree(NodeID(v))
		out.RowPtr[v+1] = int64(total)
	}
	out.Col = make([]NodeID, 0, total)
	out.Weight = make([]float64, 0, total)
	for v := 0; v < rows; v++ {
		out.Col, out.Weight = c.AppendRow(NodeID(v), out.Col, out.Weight)
	}
	return out
}

// validatePackedCSR walks every row of a decoded PackedCSR with a paranoid
// decoder: malformed varints, truncated rows, trailing bytes, out-of-range
// columns, non-positive or non-finite weights and row-sum mismatches are all
// errors. Packed data that passes is safe for the unchecked Iter fast path.
func validatePackedCSR(name string, c *PackedCSR, rows, numNodes int) error {
	if len(c.RowOff) != rows+1 {
		return fmt.Errorf("graph: packed %s: %d offsets for %d rows", name, len(c.RowOff), rows)
	}
	if len(c.Sum) != rows {
		return fmt.Errorf("graph: packed %s: %d row sums for %d rows", name, len(c.Sum), rows)
	}
	if rows >= 0 && (len(c.RowOff) == 0 || c.RowOff[0] != 0) {
		return fmt.Errorf("graph: packed %s: offsets must start at zero", name)
	}
	if c.RowOff[rows] != int64(len(c.Data)) {
		return fmt.Errorf("graph: packed %s: offsets cover %d of %d data bytes", name, c.RowOff[rows], len(c.Data))
	}
	for v := 0; v < rows; v++ {
		lo, hi := c.RowOff[v], c.RowOff[v+1]
		if lo > hi || hi > int64(len(c.Data)) {
			return fmt.Errorf("graph: packed %s: row %d offsets [%d,%d) invalid", name, v, lo, hi)
		}
		if err := scanPackedRow(c.Data[lo:hi], numNodes, c.Sum[v]); err != nil {
			return fmt.Errorf("graph: packed %s: row %d: %w", name, v, err)
		}
	}
	return nil
}

// scanPackedRow decodes one row defensively and checks its invariants.
func scanPackedRow(b []byte, numNodes int, wantSum float64) error {
	hdr, n := binary.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("bad header varint")
	}
	b = b[n:]
	deg := hdr >> 1
	constW := hdr&1 == 1
	if deg > uint64(numNodes) {
		return fmt.Errorf("degree %d exceeds node count %d", deg, numNodes)
	}
	var cw float64
	if constW {
		if deg == 0 {
			return fmt.Errorf("const-weight flag on empty row")
		}
		u, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("bad const weight varint")
		}
		b = b[n:]
		cw = unpackWeightBits(u)
	}
	prev := int64(0)
	sum := 0.0
	for i := uint64(0); i < deg; i++ {
		d, n := binary.Varint(b)
		if n <= 0 {
			return fmt.Errorf("bad column varint at entry %d", i)
		}
		b = b[n:]
		prev += d
		if prev < 0 || prev >= int64(numNodes) {
			return fmt.Errorf("column %d out of range [0,%d)", prev, numNodes)
		}
		w := cw
		if !constW {
			u, n := binary.Uvarint(b)
			if n <= 0 {
				return fmt.Errorf("bad weight varint at entry %d", i)
			}
			b = b[n:]
			w = unpackWeightBits(u)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("non-positive or non-finite weight %g", w)
		}
		sum += w
	}
	if len(b) != 0 {
		return fmt.Errorf("%d trailing bytes after %d entries", len(b), deg)
	}
	if math.IsNaN(wantSum) || math.Abs(sum-wantSum) > 1e-9*(1+sum) {
		return fmt.Errorf("cached sum %g != %g", wantSum, sum)
	}
	return nil
}

// PackedCSRView is implemented by views that expose their adjacency as packed
// CSR blocks. The walk kernels type-assert for it (after CSRView) and run the
// same pull-style parallel matvecs over streaming row decodes, bit-identical
// to the flat kernels because rows decode in the identical entry order.
type PackedCSRView interface {
	View
	// OutPacked returns the forward adjacency.
	OutPacked() *PackedCSR
	// InPacked returns the transposed adjacency.
	InPacked() *PackedCSR
}

// RowsProvider is implemented by views that can mint a per-query Rows session
// (the flat searcher's row-streaming access pattern). topk.TopK uses it to
// route packed views onto the pooled scratch-state searcher, which is
// bit-identical to the flat-CSR path for the same graph content.
type RowsProvider interface {
	View
	// NewRows returns a fresh row session. Sessions are cheap, not safe for
	// concurrent use, and must not outlive the view.
	NewRows() Rows
}

// Packed is a whole graph in packed CSR form: the memory-lean counterpart of
// *Graph's flat arrays, built with Pack. It implements View (streaming row
// decodes), PackedCSRView (the walk kernels' packed fast path) and
// RowsProvider (the online searcher's row access), so every solver accepts it
// directly. It carries no labels or types — only adjacency — mirroring
// CompactedView.
type Packed struct {
	numNodes int
	numEdges int
	epoch    uint64
	out, in  PackedCSR

	// closer releases an mmap-backed Data region (LoadPackedFile with the
	// packedmmap build tag); nil for in-memory packs.
	closer func() error
}

// Pack converts a flat CSR view into its packed representation. The source
// arrays are only read; Sum arrays are shared between the two representations.
func Pack(v CSRView) *Packed {
	p := &Packed{
		numNodes: v.NumNodes(),
		out:      packCSR(v.OutCSR()),
		in:       packCSR(v.InCSR()),
	}
	p.numEdges = len(v.OutCSR().Col)
	if e, ok := v.(Epocher); ok {
		p.epoch = e.Epoch()
	}
	return p
}

// Unpack reconstructs the flat CSR arrays, bit-identical to the view Pack
// consumed: same RowPtr, Col, Weight and Sum contents in both directions.
func (p *Packed) Unpack() *CompactedView {
	return &CompactedView{n: p.numNodes, out: p.out.unpackCSR(), in: p.in.unpackCSR()}
}

// NumNodes implements View.
func (p *Packed) NumNodes() int { return p.numNodes }

// NumEdges returns the number of directed edges.
func (p *Packed) NumEdges() int { return p.numEdges }

// Epoch returns the snapshot version carried over from the packed view.
func (p *Packed) Epoch() uint64 { return p.epoch }

// OutPacked implements PackedCSRView.
func (p *Packed) OutPacked() *PackedCSR { return &p.out }

// InPacked implements PackedCSRView.
func (p *Packed) InPacked() *PackedCSR { return &p.in }

// OutDegree implements View.
func (p *Packed) OutDegree(v NodeID) int { return p.out.Degree(v) }

// InDegree implements View.
func (p *Packed) InDegree(v NodeID) int { return p.in.Degree(v) }

// OutWeightSum implements View.
func (p *Packed) OutWeightSum(v NodeID) float64 { return p.out.Sum[v] }

// InWeightSum implements View.
func (p *Packed) InWeightSum(v NodeID) float64 { return p.in.Sum[v] }

// EachOut implements View by streaming row v.
func (p *Packed) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	it := p.out.Iter(v)
	for {
		col, w, ok := it.Next()
		if !ok || !fn(col, w) {
			return
		}
	}
}

// EachIn implements View by streaming row v of the transposed adjacency.
func (p *Packed) EachIn(v NodeID, fn func(from NodeID, w float64) bool) {
	it := p.in.Iter(v)
	for {
		col, w, ok := it.Next()
		if !ok || !fn(col, w) {
			return
		}
	}
}

// SizeBytes returns the resident footprint of the packed adjacency (both
// directions: row offsets, packed data, row sums). Compare against the flat
// arrays' CSR.SizeBytes to compute the compression the scale figure reports.
func (p *Packed) SizeBytes() int64 {
	return p.out.SizeBytes() + p.in.SizeBytes()
}

// Close releases the mmap backing the packed data when the view was produced
// by LoadPackedFile under the packedmmap build tag; otherwise it is a no-op.
// The view must not be used after Close.
func (p *Packed) Close() error {
	if p.closer == nil {
		return nil
	}
	c := p.closer
	p.closer = nil
	return c()
}

// NewRows implements RowsProvider: a session that decodes rows on first
// access and caches them for its lifetime.
func (p *Packed) NewRows() Rows { return &packedRows{p: p} }

// packedRows is the Rows session of a Packed view. Each row is decoded once
// and cached for the session's lifetime: the searcher holds returned rows
// across further row calls (an expansion wave iterates one in-row while
// fetching the neighbors' rows), so single reusable buffers would be
// clobbered mid-iteration. The cache makes the session's working set
// O(distinct rows touched) — the same shape as the remote row cache
// (internal/rowserve), which pins cached rows for the same reason.
type packedRows struct {
	p   *Packed
	out map[NodeID]packedRow
	in  map[NodeID]packedRow
}

type packedRow struct {
	cols []NodeID
	wts  []float64
}

// NumNodes implements Rows.
func (r *packedRows) NumNodes() int { return r.p.numNodes }

// OutDegree implements Rows.
func (r *packedRows) OutDegree(v NodeID) int { return r.p.out.Degree(v) }

// OutSum implements Rows.
func (r *packedRows) OutSum(v NodeID) float64 { return r.p.out.Sum[v] }

// OutRow implements Rows.
func (r *packedRows) OutRow(v NodeID) ([]NodeID, []float64) {
	if r.out == nil {
		r.out = make(map[NodeID]packedRow)
	}
	return cachedRow(r.out, &r.p.out, v)
}

// InRow implements Rows.
func (r *packedRows) InRow(v NodeID) ([]NodeID, []float64) {
	if r.in == nil {
		r.in = make(map[NodeID]packedRow)
	}
	return cachedRow(r.in, &r.p.in, v)
}

func cachedRow(cache map[NodeID]packedRow, c *PackedCSR, v NodeID) ([]NodeID, []float64) {
	if row, ok := cache[v]; ok {
		return row.cols, row.wts
	}
	deg := c.Degree(v)
	row := packedRow{cols: make([]NodeID, 0, deg), wts: make([]float64, 0, deg)}
	row.cols, row.wts = c.AppendRow(v, row.cols, row.wts)
	cache[v] = row
	return row.cols, row.wts
}

// SizeBytes returns the resident footprint of one flat CSR direction
// (offsets, columns, weights, row sums). It exists so callers can compare
// flat and packed representations without re-deriving array layouts.
func (c CSR) SizeBytes() int64 {
	return int64(8*len(c.RowPtr)) + int64(4*len(c.Col)) + int64(8*len(c.Weight)) + int64(8*len(c.Sum))
}
