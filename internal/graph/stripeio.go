package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// This file implements the binary stripe codec: the on-disk and on-the-wire
// format for one stripe of a round-robin-partitioned graph. A stripe is two
// compact CSR blocks (the owned rows' out- and in-adjacency) plus the striping
// header (index, count, total node count), so a worker process can load or
// receive exactly its share of the graph without ever materializing the whole
// thing.
//
// Layout (all integers little-endian):
//
//	magic    [4]byte  "RTS1"
//	version  uint16   currently 1
//	reserved uint16   must be zero
//	index    uint32   stripe index in [0, count)
//	count    uint32   total number of stripes
//	graph    uint32   fingerprint of the source graph (GraphFingerprint)
//	numNodes uint64   node count of the full graph
//	rows     uint64   rows owned by this stripe
//	out CSR block, then in CSR block. Version ≤ 2 writes flat arrays:
//	    uint64 len(RowPtr) followed by int64 entries
//	    uint64 len(Col)    followed by int32 entries
//	    uint64 len(Weight) followed by float64 entries
//	    uint64 len(Sum)    followed by float64 entries
//	version 3 writes the packed form instead (see packed.go):
//	    uint64 len(RowOff) followed by int64 entries
//	    uint64 len(Sum)    followed by float64 entries
//	    uint64 len(Data)   followed by raw delta-varint row bytes
//	crc      uint32   CRC-32C (Castagnoli) of every preceding byte
//
// The trailing checksum makes truncation and bit corruption detectable before
// any structural validation runs; DecodeStripe additionally validates every
// CSR invariant (monotone offsets, in-range columns, finite positive weights,
// cached row sums), so a decoded stripe is safe to serve without re-checking.

// stripeMagic identifies a stripe stream; the trailing digit is bumped only on
// incompatible layout changes (compatible ones bump stripeVersion instead).
var stripeMagic = [4]byte{'R', 'T', 'S', '1'}

// stripeVersion is the current stripe codec version. Version 2 added the
// source graph's epoch to the header; version 3 switched the CSR blocks to
// the packed delta-varint form, shrinking stripe files and worker ships by
// roughly the same factor as graph.Pack shrinks resident adjacency. Version-1
// (no epoch, flat blocks) and version-2 (flat blocks) streams still decode.
const stripeVersion = 3

// StripeData is the codec-level content of one graph stripe. Row r of each CSR
// block holds the adjacency of global node Index + r*Count; Out lists the
// edges leaving the node, In the edges entering it (the transposed rows).
type StripeData struct {
	// Index is this stripe's position in the round-robin partition.
	Index int
	// Count is the total number of stripes the graph was split into.
	Count int
	// NumNodes is the node count of the full (unstriped) graph; column
	// entries are global node IDs in [0, NumNodes).
	NumNodes int
	// Graph is the fingerprint of the graph the stripe was cut from
	// (GraphFingerprint). Coordinators refuse to mix workers whose stripes
	// report different fingerprints — same-sized graphs with different
	// adjacency would otherwise produce silently wrong rankings.
	Graph uint32
	// Epoch is the snapshot version of the source graph (Graph.Epoch). It
	// rides along for operators; identity checks go through Graph, which
	// already folds the epoch in.
	Epoch uint64
	// Out and In are the owned rows' forward and transposed adjacency.
	Out CSR
	In  CSR
}

// ContentFingerprint hashes the stripe's own payload — the striping header
// (index, count, node count) and both CSR blocks — but not the source graph's
// fingerprint or epoch. It is therefore stable across commits that leave the
// stripe's rows (and the edges into them) untouched, which is what lets a
// redeploy after a Commit skip shipping unchanged stripes and merely retag
// them with the new graph fingerprint.
func (d *StripeData) ContentFingerprint() uint32 {
	crc := crc32.New(castagnoli)
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Index))
	binary.LittleEndian.PutUint64(b[8:], uint64(d.Count))
	binary.LittleEndian.PutUint64(b[16:], uint64(d.NumNodes))
	crc.Write(b[:])
	for _, c := range []CSR{d.Out, d.In} {
		_ = writeStripeCSR(crc, c)
	}
	return crc.Sum32()
}

// Rows returns the number of nodes owned by the stripe, derived from the
// header: the size of {v : v mod Count == Index, v < NumNodes}.
func (d *StripeData) Rows() int {
	if d.Count <= 0 || d.NumNodes <= d.Index {
		return 0
	}
	return (d.NumNodes - d.Index + d.Count - 1) / d.Count
}

// Validate checks the stripe's header and every CSR invariant. DecodeStripe
// calls it on every decoded stripe; EncodeStripe calls it before writing.
func (d *StripeData) Validate() error {
	if d.Count <= 0 || d.Index < 0 || d.Index >= d.Count {
		return fmt.Errorf("graph: stripe header: invalid stripe %d of %d", d.Index, d.Count)
	}
	if d.NumNodes < 0 {
		return fmt.Errorf("graph: stripe header: negative node count %d", d.NumNodes)
	}
	rows := d.Rows()
	if err := validateStripeCSR("out", d.Out, rows, d.NumNodes); err != nil {
		return err
	}
	return validateStripeCSR("in", d.In, rows, d.NumNodes)
}

func validateStripeCSR(name string, c CSR, rows, numNodes int) error {
	if len(c.RowPtr) != rows+1 {
		return fmt.Errorf("graph: stripe %s: %d offsets for %d rows", name, len(c.RowPtr), rows)
	}
	if c.RowPtr[0] != 0 {
		return fmt.Errorf("graph: stripe %s: offsets must start at zero", name)
	}
	if len(c.Weight) != len(c.Col) {
		return fmt.Errorf("graph: stripe %s: %d weights for %d columns", name, len(c.Weight), len(c.Col))
	}
	if len(c.Sum) != rows {
		return fmt.Errorf("graph: stripe %s: %d row sums for %d rows", name, len(c.Sum), rows)
	}
	if c.RowPtr[rows] != int64(len(c.Col)) {
		return fmt.Errorf("graph: stripe %s: offsets cover %d of %d columns", name, c.RowPtr[rows], len(c.Col))
	}
	for r := 0; r < rows; r++ {
		if c.RowPtr[r+1] < c.RowPtr[r] {
			return fmt.Errorf("graph: stripe %s: offsets decrease at row %d", name, r)
		}
		sum := 0.0
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			if col := c.Col[i]; col < 0 || int(col) >= numNodes {
				return fmt.Errorf("graph: stripe %s: row %d column %d out of range [0,%d)", name, r, col, numNodes)
			}
			w := c.Weight[i]
			if !(w > 0) || math.IsInf(w, 0) {
				return fmt.Errorf("graph: stripe %s: row %d has non-positive or non-finite weight %g", name, r, w)
			}
			sum += w
		}
		if math.IsNaN(c.Sum[r]) || math.Abs(sum-c.Sum[r]) > 1e-9*(1+sum) {
			return fmt.Errorf("graph: stripe %s: row %d cached sum %g != %g", name, r, c.Sum[r], sum)
		}
	}
	return nil
}

// EncodeStripe writes d to w in the versioned, checksummed binary stripe
// format (current version: 3, packed blocks). It validates d first, so only
// well-formed stripes reach the wire.
func EncodeStripe(w io.Writer, d *StripeData) error {
	return encodeStripeVersion(w, d, stripeVersion)
}

// encodeStripeVersion writes d at a specific codec version: 2 (flat CSR
// blocks) or 3 (packed blocks). It exists so the compatibility tests can
// produce genuine older streams; production callers go through EncodeStripe.
func encodeStripeVersion(w io.Writer, d *StripeData, version uint16) error {
	if version != 2 && version != stripeVersion {
		return fmt.Errorf("graph: encode stripe: cannot write version %d", version)
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("graph: encode stripe: %w", err)
	}
	bw := bufio.NewWriter(w)
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(stripeMagic[:]); err != nil {
		return err
	}
	hdr := []any{
		version, uint16(0),
		uint32(d.Index), uint32(d.Count), d.Graph, d.Epoch,
		uint64(d.NumNodes), uint64(d.Rows()),
	}
	for _, v := range hdr {
		if err := binary.Write(out, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, c := range []CSR{d.Out, d.In} {
		var err error
		if version >= 3 {
			err = writePackedStripeCSR(out, c)
		} else {
			err = writeStripeCSR(out, c)
		}
		if err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// writePackedStripeCSR writes one CSR block in the version-3 packed form:
// the block is packed row by row on the way out and unpacked on decode, so
// StripeData stays flat in memory while the wire carries varints.
func writePackedStripeCSR(w io.Writer, c CSR) error {
	p := packCSR(c)
	if err := writeSlice(w, len(p.RowOff), func(i int) uint64 { return uint64(p.RowOff[i]) }, 8); err != nil {
		return err
	}
	if err := writeSlice(w, len(p.Sum), func(i int) uint64 { return math.Float64bits(p.Sum[i]) }, 8); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p.Data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(p.Data)
	return err
}

func writeStripeCSR(w io.Writer, c CSR) error {
	if err := writeSlice(w, len(c.RowPtr), func(i int) uint64 { return uint64(c.RowPtr[i]) }, 8); err != nil {
		return err
	}
	if err := writeSlice(w, len(c.Col), func(i int) uint64 { return uint64(uint32(c.Col[i])) }, 4); err != nil {
		return err
	}
	if err := writeSlice(w, len(c.Weight), func(i int) uint64 { return math.Float64bits(c.Weight[i]) }, 8); err != nil {
		return err
	}
	return writeSlice(w, len(c.Sum), func(i int) uint64 { return math.Float64bits(c.Sum[i]) }, 8)
}

// writeSlice writes a length-prefixed array of fixed-width little-endian
// values, buffering chunks so a stripe encode does a handful of Write calls
// per array rather than one per element.
func writeSlice(w io.Writer, n int, elem func(i int) uint64, width int) error {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(n))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, stripeChunkBytes)
	for i := 0; i < n; i++ {
		v := elem(i)
		switch width {
		case 4:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		default:
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		if len(buf) >= stripeChunkBytes {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// stripeChunkBytes bounds the per-read/write buffer of the codec. Reading in
// chunks means a corrupt header claiming a huge array length fails with a
// truncation error after the actual bytes run out instead of attempting one
// enormous allocation.
const stripeChunkBytes = 1 << 16

// DecodeStripe reads a stripe previously written with EncodeStripe, verifying
// the magic, version, trailing checksum and every CSR invariant. Any
// truncation or corruption yields an error, never a malformed stripe.
func DecodeStripe(r io.Reader) (*StripeData, error) {
	cr := &crcReader{r: bufio.NewReader(r), crc: crc32.New(castagnoli)}

	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: decode stripe: magic: %w", err)
	}
	if magic != stripeMagic {
		return nil, fmt.Errorf("graph: decode stripe: bad magic %q", magic[:])
	}
	var version, reserved uint16
	var index, count, fingerprint uint32
	var epoch, numNodes, rows uint64
	for _, v := range []any{&version, &reserved, &index, &count, &fingerprint} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: header: %w", err)
		}
	}
	if version < 1 || version > stripeVersion {
		return nil, fmt.Errorf("graph: decode stripe: unsupported version %d", version)
	}
	if reserved != 0 {
		return nil, fmt.Errorf("graph: decode stripe: non-zero reserved field")
	}
	// The epoch field was added in version 2; version-1 stripes predate live
	// graphs and decode as epoch zero.
	fields := []any{&numNodes, &rows}
	if version >= 2 {
		fields = []any{&epoch, &numNodes, &rows}
	}
	for _, v := range fields {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: header: %w", err)
		}
	}
	const maxInt = int(^uint(0) >> 1)
	if numNodes > uint64(maxInt) || rows > uint64(maxInt) {
		return nil, fmt.Errorf("graph: decode stripe: header sizes overflow")
	}
	d := &StripeData{Index: int(index), Count: int(count), NumNodes: int(numNodes), Graph: fingerprint, Epoch: epoch}
	if int(rows) != d.Rows() {
		return nil, fmt.Errorf("graph: decode stripe: header claims %d rows, striping implies %d", rows, d.Rows())
	}
	var err error
	if version >= 3 {
		if d.Out, err = readPackedStripeCSR(cr, "out", int(rows), d.NumNodes); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: out block: %w", err)
		}
		if d.In, err = readPackedStripeCSR(cr, "in", int(rows), d.NumNodes); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: in block: %w", err)
		}
	} else {
		if d.Out, err = readStripeCSR(cr); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: out block: %w", err)
		}
		if d.In, err = readStripeCSR(cr); err != nil {
			return nil, fmt.Errorf("graph: decode stripe: in block: %w", err)
		}
	}

	sum := cr.crc.Sum32() // the stored checksum itself is not hashed
	var stored uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("graph: decode stripe: checksum: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("graph: decode stripe: checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decode stripe: %w", err)
	}
	return d, nil
}

// crcReader hashes everything read through it.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// readPackedStripeCSR reads one version-3 packed block and unpacks it to the
// flat CSR the rest of the system consumes. The packed rows are validated
// defensively (well-formed varints, in-range columns, positive finite
// weights, consistent cached sums) before the unchecked unpack runs; the
// caller's StripeData.Validate re-checks the flat invariants afterwards.
func readPackedStripeCSR(r io.Reader, name string, rows, numNodes int) (CSR, error) {
	var c CSR
	rowOff, err := readUint64s(r)
	if err != nil {
		return c, fmt.Errorf("offsets: %w", err)
	}
	p := PackedCSR{RowOff: make([]int64, len(rowOff))}
	for i, v := range rowOff {
		if v > uint64(math.MaxInt64) {
			return c, fmt.Errorf("offset %d overflows", i)
		}
		p.RowOff[i] = int64(v)
	}
	if p.Sum, err = readFloat64s(r); err != nil {
		return c, fmt.Errorf("row sums: %w", err)
	}
	if p.Data, err = readBytes(r); err != nil {
		return c, fmt.Errorf("row data: %w", err)
	}
	if err := validatePackedCSR(name, &p, rows, numNodes); err != nil {
		return c, err
	}
	return p.unpackCSR(), nil
}

// readBytes reads a length-prefixed byte array in bounded chunks, like
// readArray: a forged length fails on truncation instead of allocating.
func readBytes(r io.Reader) ([]byte, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if n > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("array length %d overflows", n)
	}
	out := []byte{}
	buf := make([]byte, stripeChunkBytes)
	remaining := int(n)
	for remaining > 0 {
		chunk := min(remaining, stripeChunkBytes)
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return nil, err
		}
		out = append(out, buf[:chunk]...)
		remaining -= chunk
	}
	return out, nil
}

func readStripeCSR(r io.Reader) (CSR, error) {
	var c CSR
	rowPtr, err := readUint64s(r)
	if err != nil {
		return c, fmt.Errorf("offsets: %w", err)
	}
	c.RowPtr = make([]int64, len(rowPtr))
	for i, v := range rowPtr {
		if v > uint64(math.MaxInt64) {
			return c, fmt.Errorf("offset %d overflows", i)
		}
		c.RowPtr[i] = int64(v)
	}
	if c.Col, err = readNodeIDs(r); err != nil {
		return c, fmt.Errorf("columns: %w", err)
	}
	if c.Weight, err = readFloat64s(r); err != nil {
		return c, fmt.Errorf("weights: %w", err)
	}
	if c.Sum, err = readFloat64s(r); err != nil {
		return c, fmt.Errorf("row sums: %w", err)
	}
	return c, nil
}

// readArray reads a length-prefixed array in bounded chunks: the slice grows
// only as bytes actually arrive, so a forged length prefix cannot force a
// large allocation.
func readArray[T any](r io.Reader, width int, decode func([]byte) T) ([]T, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if n > uint64(int(^uint(0)>>1))/uint64(width) {
		return nil, fmt.Errorf("array length %d overflows", n)
	}
	out := []T{}
	buf := make([]byte, stripeChunkBytes)
	remaining := int(n)
	for remaining > 0 {
		chunk := remaining
		if chunk > stripeChunkBytes/width {
			chunk = stripeChunkBytes / width
		}
		b := buf[:chunk*width]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out = append(out, decode(b[i*width:]))
		}
		remaining -= chunk
	}
	return out, nil
}

func readUint64s(r io.Reader) ([]uint64, error) {
	return readArray(r, 8, func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) })
}

func readFloat64s(r io.Reader) ([]float64, error) {
	return readArray(r, 8, func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) })
}

func readNodeIDs(r io.Reader) ([]NodeID, error) {
	return readArray(r, 4, func(b []byte) NodeID { return NodeID(int32(binary.LittleEndian.Uint32(b))) })
}

// BuildStripeData extracts stripe `index` of `count` from a CSR view by
// round-robin node assignment: the stripe owns every node v with
// v mod count == index, and row r of each block is the adjacency of global
// node index + r*count, copied into compact arrays.
func BuildStripeData(v CSRView, index, count int) (*StripeData, error) {
	if count <= 0 || index < 0 || index >= count {
		return nil, fmt.Errorf("graph: invalid stripe %d of %d", index, count)
	}
	d := &StripeData{Index: index, Count: count, NumNodes: v.NumNodes(), Graph: GraphFingerprint(v)}
	if e, ok := v.(Epocher); ok {
		d.Epoch = e.Epoch()
	}
	rows := d.Rows()
	d.Out = sliceStripeRows(v.OutCSR(), index, count, rows)
	d.In = sliceStripeRows(v.InCSR(), index, count, rows)
	return d, nil
}

// sliceStripeRows copies every count-th row of src starting at first into a
// compact CSR over the local row index.
func sliceStripeRows(src CSR, first, count, rows int) CSR {
	dst := CSR{RowPtr: make([]int64, rows+1), Sum: make([]float64, rows)}
	var total int64
	for r := 0; r < rows; r++ {
		total += int64(src.Degree(NodeID(first + r*count)))
	}
	dst.Col = make([]NodeID, 0, total)
	dst.Weight = make([]float64, 0, total)
	for r := 0; r < rows; r++ {
		v := NodeID(first + r*count)
		cols, wts := src.Row(v)
		dst.Col = append(dst.Col, cols...)
		dst.Weight = append(dst.Weight, wts...)
		dst.Sum[r] = src.Sum[v]
		dst.RowPtr[r+1] = int64(len(dst.Col))
	}
	return dst
}

// Epocher is implemented by views that carry a snapshot version; *Graph does.
// GraphFingerprint folds the epoch into the fingerprint when present.
type Epocher interface {
	// Epoch returns the snapshot version (zero for an unversioned view).
	Epoch() uint64
}

// GraphFingerprint returns a checksum identifying a graph snapshot: CRC-32C
// over the node count, the snapshot epoch and the forward CSR arrays
// (offsets, columns, weights). Every stripe cut from a graph records its
// fingerprint, so a coordinator can refuse to assemble workers that were
// striped from different graphs — even ones with identical node counts.
// Stamping the epoch makes every Commit a new identity: a cluster can never
// silently keep serving yesterday's snapshot of a graph whose adjacency a
// commit happened to restore.
//
// Epoch zero deliberately hashes exactly as the pre-epoch formula did (node
// count + CSR only), so stripes cut before epochs existed — version-1 codec
// files, workers still running an older build — remain valid against the
// epoch-0 graphs they were cut from.
//
// The result is cached on *Graph (snapshots are immutable), so polling
// endpoints and per-commit redeploys do not re-hash the edge arrays.
func GraphFingerprint(v CSRView) uint32 {
	if g, ok := v.(*Graph); ok {
		g.fpOnce.Do(func() { g.fp = computeFingerprint(g) })
		return g.fp
	}
	return computeFingerprint(v)
}

func computeFingerprint(v CSRView) uint32 {
	crc := crc32.New(castagnoli)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v.NumNodes()))
	crc.Write(b[:])
	if e, ok := v.(Epocher); ok && e.Epoch() != 0 {
		binary.LittleEndian.PutUint64(b[:], e.Epoch())
		crc.Write(b[:])
	}
	out := v.OutCSR()
	_ = writeSlice(crc, len(out.RowPtr), func(i int) uint64 { return uint64(out.RowPtr[i]) }, 8)
	_ = writeSlice(crc, len(out.Col), func(i int) uint64 { return uint64(uint32(out.Col[i])) }, 4)
	_ = writeSlice(crc, len(out.Weight), func(i int) uint64 { return math.Float64bits(out.Weight[i]) }, 8)
	return crc.Sum32()
}

// WriteStripeFile encodes d into the named file.
func WriteStripeFile(path string, d *StripeData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodeStripe(f, d); err != nil {
		return err
	}
	return f.Close()
}

// ReadStripeFile decodes a stripe from the named file.
func ReadStripeFile(path string) (*StripeData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeStripe(f)
}
